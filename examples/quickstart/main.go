// Quickstart: train a model, explain a batch of predictions with
// Shahin-LIME, and compare the cost against the sequential baseline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shahin"
)

func main() {
	// 1. Data: a synthetic twin of the Census-Income dataset (swap in
	// your own CSV via shahin.ReadCSV).
	data, err := shahin.GenerateDataset("census", 6000, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, test := shahin.SplitDataset(data, 1.0/3, 2)

	// 2. Model: the paper's random forest. Any shahin.Classifier works.
	model, err := shahin.TrainForest(train, shahin.ForestConfig{NumTrees: 50, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random forest: test accuracy %.3f\n\n", model.Accuracy(test))

	// 3. Explain a batch of 200 held-out predictions with Shahin.
	stats, err := shahin.ComputeStats(train)
	if err != nil {
		log.Fatal(err)
	}
	tuples := test.Rows(0, 200)

	batch, err := shahin.NewBatch(stats, model, shahin.Options{Explainer: shahin.LIME, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	res, err := batch.ExplainAll(tuples)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect a few explanations: top-3 attributes by |weight|.
	for i := 0; i < 3; i++ {
		att := res.Explanations[i].Attribution
		fmt.Printf("tuple %d -> %s, because:", i, test.Schema.Classes[att.Class])
		for _, a := range att.TopK(3) {
			fmt.Printf(" %s (%.3f)", test.Schema.Attrs[a].Name, att.Weights[a])
		}
		fmt.Println()
	}

	// 5. What did Shahin save? Run the sequential baseline on the same
	// batch and compare.
	seq, err := shahin.Sequential(stats, model, shahin.Options{Explainer: shahin.LIME, Seed: 4}, tuples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsequential: %8v wall, %7d classifier calls\n",
		seq.Report.WallTime.Round(1e6), seq.Report.Invocations)
	fmt.Printf("shahin:     %8v wall, %7d classifier calls (%d reused, overhead %.1f%%)\n",
		res.Report.WallTime.Round(1e6), res.Report.Invocations,
		res.Report.ReusedSamples, 100*res.Report.OverheadFraction())
	fmt.Printf("speedup: %.1fx wall, %.1fx invocations\n",
		float64(seq.Report.WallTime)/float64(res.Report.WallTime),
		float64(seq.Report.Invocations)/float64(res.Report.Invocations))
}

// Streaming explanations: an intrusion-detection service must explain
// each alert as it arrives (the paper's §3.5 scenario). Shahin-Streaming
// warms up on the first requests, then re-mines frequent itemsets
// periodically and serves most perturbations from its budgeted cache —
// watch the per-window cost fall as the stream progresses.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"shahin"
)

func main() {
	// A synthetic twin of the KDD Cup 1999 network-intrusion dataset.
	data, err := shahin.GenerateDataset("kddcup99", 8000, 20)
	if err != nil {
		log.Fatal(err)
	}
	train, events := shahin.SplitDataset(data, 1.0/3, 21)
	model, err := shahin.TrainForest(train, shahin.ForestConfig{NumTrees: 40, Seed: 22})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := shahin.ComputeStats(train)
	if err != nil {
		log.Fatal(err)
	}

	stream, err := shahin.NewStream(stats, model, shahin.Options{
		Explainer:       shahin.SHAP,
		SHAP:            shahin.SHAPConfig{NumSamples: 512, BaseSamples: 64},
		CacheBytes:      32 << 20, // the service's memory budget
		StreamRecompute: 100,
		Seed:            23,
	})
	if err != nil {
		log.Fatal(err)
	}

	const total, window = 500, 100
	fmt.Printf("explaining %d arriving connection alerts (window = %d)\n\n", total, window)
	fmt.Println("window      calls/alert   reused-total   cache-MB")

	var lastInv int64
	row := make([]float64, events.NumAttrs())
	for i := 0; i < total; i++ {
		row = events.Row(i, row)
		exp, err := stream.Explain(row)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			att := exp.Attribution
			fmt.Printf("first alert -> %s, top attribute %s\n\n",
				events.Schema.Classes[att.Class],
				events.Schema.Attrs[att.TopK(1)[0]].Name)
		}
		if (i+1)%window == 0 {
			rep := stream.Report()
			perAlert := (rep.Invocations - lastInv) / window
			fmt.Printf("%4d-%4d   %11d   %12d   %8.1f\n",
				i+1-window+1, i+1, perAlert, rep.ReusedSamples,
				float64(rep.Cache.BytesUsed)/(1<<20))
			lastInv = rep.Invocations
		}
	}

	rep := stream.Report()
	fmt.Printf("\ntotal: %v wall, %d classifier calls, %.1f%% housekeeping overhead\n",
		rep.WallTime.Round(1e6), rep.Invocations, 100*rep.OverheadFraction())
	fmt.Printf("cache: %d itemsets resident, hit rate %.2f\n",
		rep.Cache.Entries, rep.Cache.HitRate())
}

// Explanation summarisation: the paper's other motivating batch
// workload. Local LIME attributions are generated for an entire test set
// and then aggregated into a global picture of the model — mean |weight|
// per attribute overall and per predicted class — which is only feasible
// when batch explanation is fast.
//
// Run with: go run ./examples/summarize
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"shahin"
)

func main() {
	data, err := shahin.GenerateDataset("covertype", 6000, 30)
	if err != nil {
		log.Fatal(err)
	}
	train, test := shahin.SplitDataset(data, 1.0/3, 31)
	model, err := shahin.TrainForest(train, shahin.ForestConfig{NumTrees: 50, Seed: 32})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := shahin.ComputeStats(train)
	if err != nil {
		log.Fatal(err)
	}

	const n = 300
	tuples := test.Rows(0, n)
	batch, err := shahin.NewBatch(stats, model, shahin.Options{
		Explainer: shahin.LIME,
		LIME:      shahin.LIMEConfig{NumSamples: 600},
		Seed:      33,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := batch.ExplainAll(tuples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summarised %d local explanations in %v (%d classifier calls)\n\n",
		n, res.Report.WallTime.Round(1e6), res.Report.Invocations)

	// Global importance: mean |weight| per attribute, split by class.
	p := test.NumAttrs()
	global := make([]float64, p)
	perClass := [2][]float64{make([]float64, p), make([]float64, p)}
	classN := [2]int{}
	for _, e := range res.Explanations {
		att := e.Attribution
		classN[att.Class]++
		for a, w := range att.Weights {
			global[a] += math.Abs(w)
			perClass[att.Class][a] += math.Abs(w)
		}
	}
	order := make([]int, p)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return global[order[i]] > global[order[j]] })

	fmt.Println("global attribute importance (mean |LIME weight|):")
	fmt.Println("attribute     overall    class=neg  class=pos")
	for rank := 0; rank < 10; rank++ {
		a := order[rank]
		line := fmt.Sprintf("%-12s  %8.4f", test.Schema.Attrs[a].Name, global[a]/float64(n))
		for c := 0; c < 2; c++ {
			mean := 0.0
			if classN[c] > 0 {
				mean = perClass[c][a] / float64(classN[c])
			}
			line += fmt.Sprintf("   %8.4f", mean)
		}
		fmt.Println(line)
	}
	fmt.Printf("\n(class balance in the explained batch: %d neg, %d pos)\n", classN[0], classN[1])
}

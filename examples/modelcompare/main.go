// Model comparison: explain the same predictions under three different
// black boxes — random forest, gradient-boosted trees, and naive Bayes —
// and compare which attributes each model leans on. Anything satisfying
// the two-method Classifier interface plugs into the same Shahin batch
// pipeline. The run finishes by persisting the forest's explanations to
// an ExplanationStore, the pre-compute-then-serve pattern from the
// paper's introduction.
//
// Run with: go run ./examples/modelcompare
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	"shahin"
)

func main() {
	data, err := shahin.GenerateDataset("lending", 6000, 40)
	if err != nil {
		log.Fatal(err)
	}
	train, test := shahin.SplitDataset(data, 1.0/3, 41)
	stats, err := shahin.ComputeStats(train)
	if err != nil {
		log.Fatal(err)
	}

	forest, err := shahin.TrainForest(train, shahin.ForestConfig{NumTrees: 50, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	boosted, err := shahin.TrainGBT(train, shahin.GBTConfig{Rounds: 60, Seed: 43})
	if err != nil {
		log.Fatal(err)
	}
	bayes, err := shahin.TrainNaiveBayes(train)
	if err != nil {
		log.Fatal(err)
	}

	models := []struct {
		name string
		cls  shahin.Classifier
		acc  float64
	}{
		{"random-forest", forest, forest.Accuracy(test)},
		{"boosted-trees", boosted, boosted.Accuracy(test)},
		{"naive-bayes", bayes, bayes.Accuracy(test)},
	}

	const n = 120
	tuples := test.Rows(0, n)
	p := test.NumAttrs()

	fmt.Println("model           accuracy   top attributes by mean |LIME weight|")
	var forestExps []shahin.Explanation
	for _, m := range models {
		batch, err := shahin.NewBatch(stats, m.cls, shahin.Options{
			Explainer: shahin.LIME,
			LIME:      shahin.LIMEConfig{NumSamples: 500},
			Seed:      44,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := batch.ExplainAll(tuples)
		if err != nil {
			log.Fatal(err)
		}
		if m.name == "random-forest" {
			forestExps = res.Explanations
		}
		mean := make([]float64, p)
		for _, e := range res.Explanations {
			for a, w := range e.Attribution.Weights {
				mean[a] += math.Abs(w) / float64(n)
			}
		}
		line := fmt.Sprintf("%-14s  %.3f     ", m.name, m.acc)
		for k := 0; k < 4; k++ {
			best := 0
			for a := range mean {
				if mean[a] > mean[best] {
					best = a
				}
			}
			line += fmt.Sprintf(" %s(%.3f)", test.Schema.Attrs[best].Name, mean[best])
			mean[best] = -1
		}
		fmt.Println(line)
	}

	// Pre-compute-then-serve: persist the forest's explanations and look
	// one up as an explanation service would.
	st, err := shahin.BuildExplanationStore(tuples, forestExps)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		log.Fatal(err)
	}
	serialised := buf.Len()
	loaded, err := shahin.LoadExplanationStore(&buf)
	if err != nil {
		log.Fatal(err)
	}
	exp, ok := loaded.Get(tuples[7])
	if !ok {
		log.Fatal("stored explanation missing")
	}
	fmt.Printf("\nexplanation store: %d entries, %d bytes serialised\n", loaded.Len(), serialised)
	fmt.Printf("lookup tuple 7 -> class %s, top attribute %s\n",
		test.Schema.Classes[exp.Attribution.Class],
		test.Schema.Attrs[exp.Attribution.TopK(1)[0]].Name)
}

// Fairness audit: one of the paper's motivating scenarios for explaining
// multiple predictions. Every positive (high-risk) prediction a
// recidivism model makes is explained with an Anchor rule, and the audit
// aggregates which attributes the rules rely on — the batch setting where
// explaining tuples one at a time would be prohibitively slow.
//
// Run with: go run ./examples/fairnessaudit
package main

import (
	"fmt"
	"log"
	"sort"

	"shahin"
)

func main() {
	data, err := shahin.GenerateDataset("recidivism", 6000, 10)
	if err != nil {
		log.Fatal(err)
	}
	train, test := shahin.SplitDataset(data, 1.0/3, 11)
	model, err := shahin.TrainForest(train, shahin.ForestConfig{NumTrees: 50, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := shahin.ComputeStats(train)
	if err != nil {
		log.Fatal(err)
	}

	// Collect every tuple the model flags as high risk (class "pos").
	var flagged [][]float64
	row := make([]float64, test.NumAttrs())
	for i := 0; i < test.NumRows() && len(flagged) < 150; i++ {
		row = test.Row(i, row)
		if model.Predict(row) == 1 {
			flagged = append(flagged, append([]float64(nil), row...))
		}
	}
	fmt.Printf("auditing %d high-risk predictions\n\n", len(flagged))

	// Explain all of them in one Shahin-Anchor batch.
	batch, err := shahin.NewBatch(stats, model, shahin.Options{Explainer: shahin.Anchor, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	res, err := batch.ExplainAll(flagged)
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate: which attributes do the anchors lean on, and how precise
	// are they? An auditor scans this table for sensitive attributes.
	attrUse := map[string]int{}
	var precisionSum float64
	for _, e := range res.Explanations {
		precisionSum += e.Rule.Precision
		for _, it := range e.Rule.Items {
			attrUse[test.Schema.Attrs[it.Attr()].Name]++
		}
	}
	type use struct {
		name string
		n    int
	}
	var uses []use
	for name, n := range attrUse {
		uses = append(uses, use{name, n})
	}
	sort.Slice(uses, func(i, j int) bool { return uses[i].n > uses[j].n })

	fmt.Println("attributes anchoring high-risk decisions:")
	for _, u := range uses {
		fmt.Printf("  %-8s in %3d/%d rules (%.0f%%)\n", u.name, u.n, len(flagged),
			100*float64(u.n)/float64(len(flagged)))
	}
	fmt.Printf("\nmean anchor precision: %.3f\n", precisionSum/float64(len(res.Explanations)))

	// A couple of verbatim rules for the report appendix.
	fmt.Println("\nsample rules:")
	for i := 0; i < 3 && i < len(res.Explanations); i++ {
		fmt.Println(" ", res.Explanations[i].Rule.Describe(test.Schema))
	}
	fmt.Printf("\ncost: %v total, %d classifier calls for %d explanations\n",
		res.Report.WallTime.Round(1e6), res.Report.Invocations, res.Report.Tuples)
}

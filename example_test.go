package shahin_test

import (
	"fmt"

	"shahin"
)

// ExampleNewBatch shows the core workflow: train a model, explain a
// batch, inspect one attribution.
func ExampleNewBatch() {
	data, _ := shahin.GenerateDataset("recidivism", 1500, 7)
	train, test := shahin.SplitDataset(data, 1.0/3, 8)
	stats, _ := shahin.ComputeStats(train)
	model, _ := shahin.TrainForest(train, shahin.ForestConfig{NumTrees: 20, Seed: 9})

	batch, _ := shahin.NewBatch(stats, model, shahin.Options{
		Explainer: shahin.LIME,
		LIME:      shahin.LIMEConfig{NumSamples: 200},
		Seed:      10,
	})
	res, _ := batch.ExplainAll(test.Rows(0, 10))

	att := res.Explanations[0].Attribution
	fmt.Println(len(res.Explanations), "explanations")
	fmt.Println(len(att.Weights) == test.NumAttrs())
	// Output:
	// 10 explanations
	// true
}

// ExampleClassifierFunc demonstrates explaining an arbitrary model: any
// function from tuple to class index satisfies the Classifier interface.
func ExampleClassifierFunc() {
	data, _ := shahin.GenerateDataset("covertype", 1200, 11)
	train, test := shahin.SplitDataset(data, 1.0/3, 12)
	stats, _ := shahin.ComputeStats(train)

	model := shahin.ClassifierFunc{Classes: 2, F: func(x []float64) int {
		if int(x[0]) == 0 {
			return 1
		}
		return 0
	}}
	res, _ := shahin.Sequential(stats, model, shahin.Options{
		Explainer: shahin.LIME,
		LIME:      shahin.LIMEConfig{NumSamples: 150},
		Seed:      13,
	}, test.Rows(0, 1))

	top := res.Explanations[0].Attribution.TopK(1)[0]
	fmt.Println(test.Schema.Attrs[top].Name)
	// Output:
	// cat00
}

// ExampleRule_Describe renders an Anchor rule for humans.
func ExampleRule_Describe() {
	data, _ := shahin.GenerateDataset("recidivism", 1500, 14)
	train, test := shahin.SplitDataset(data, 1.0/3, 15)
	stats, _ := shahin.ComputeStats(train)

	model := shahin.ClassifierFunc{Classes: 2, F: func(x []float64) int {
		if int(x[0]) == 0 {
			return 1
		}
		return 0
	}}
	batch, _ := shahin.NewBatch(stats, model, shahin.Options{Explainer: shahin.Anchor, Tau: 30, Seed: 16})

	tuple := test.Rows(0, 1)[0]
	tuple[0] = 0 // ensure the decisive value
	res, err := batch.ExplainAll([][]float64{tuple})
	if err != nil {
		fmt.Println(err)
		return
	}
	rule := res.Explanations[0].Rule
	fmt.Println(len(rule.Items) >= 1, rule.Precision > 0.9)
	// Output:
	// true true
}

// Command shahin-bench regenerates the tables and figures of the paper's
// evaluation section (plus this repo's ablations) on the synthetic
// dataset twins.
//
// Usage:
//
//	shahin-bench                      # every experiment, laptop scale
//	shahin-bench -exp fig2,fig6      # specific experiments
//	shahin-bench -full               # larger workloads (minutes)
//	shahin-bench -list               # available experiments
//	shahin-bench -smoke -json BENCH_smoke.json   # CI artifact
//	shahin-bench -compare BENCH_baseline.json BENCH_smoke.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"shahin/internal/bench"
	"shahin/internal/fault"
	"shahin/internal/obs"
)

// experiments maps experiment ids to their runners.
var experiments = map[string]struct {
	desc string
	run  func(bench.Config) (*bench.Table, error)
}{
	"table1":       {"Table 1: dataset characteristics + per-tuple seconds", bench.Table1},
	"fig2":         {"Figure 2: Shahin vs DIST-k and GREEDY baselines", bench.Figure2},
	"fig3":         {"Figure 3: Shahin-Batch speedup across datasets", bench.Figure3},
	"fig4":         {"Figure 4: Shahin-Streaming speedup across datasets", bench.Figure4},
	"fig5":         {"Figure 5: housekeeping overhead", bench.Figure5},
	"fig6":         {"Figure 6: impact of tau", bench.Figure6},
	"fig7":         {"Figure 7: impact of cache size", bench.Figure7},
	"quality":      {"Explanation quality vs sequential baseline", bench.Quality},
	"abl-sample":   {"Ablation A1: FIM sample-size heuristic", bench.AblationSample},
	"abl-kernel":   {"Ablation A2: SHAP kernel size sampling", bench.AblationKernel},
	"abl-border":   {"Ablation A3: streaming negative border", bench.AblationBorder},
	"ext-sshap":    {"Extension: Sampling-Shapley under Shahin", bench.ExtSampleShapley},
	"ext-approx":   {"Extension: approximation via reuse fraction", bench.ExtApproximate},
	"ext-models":   {"Extension: speedup across classifiers", bench.ExtModels},
	"ext-parallel": {"Extension: worker parallelism", bench.ExtParallel},
	"smoke":        {"CI smoke: seq/batch/stream cost ledger at tiny scale", bench.Smoke},
	"chaos":        {"Robustness: batch/stream under fault injection, retry, and circuit breaking", bench.Chaos},
	"serving":      {"Serving: mixed request workload against a live shahin-serve pipeline", bench.Serving},
}

// order fixes the default execution order. The smoke experiment is a CI
// workload, selected explicitly with -smoke or -exp smoke.
var order = []string{
	"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
	"quality", "abl-sample", "abl-kernel", "abl-border",
	"ext-sshap", "ext-approx", "ext-models", "ext-parallel",
}

func main() {
	var (
		exp         = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		list        = flag.Bool("list", false, "list experiments and exit")
		full        = flag.Bool("full", false, "larger workloads (closer to paper scale; takes minutes)")
		smoke       = flag.Bool("smoke", false, "run only the CI smoke experiment at its tiny deterministic scale")
		rows        = flag.Int("rows", 0, "override dataset rows")
		batch       = flag.Int("batch", 0, "override single-batch size")
		seed        = flag.Int64("seed", 1, "master seed")
		delay       = flag.Duration("delay", 0, "override per-invocation classifier delay")
		obsAddr     = flag.String("obs-addr", "", "serve /metrics, /progress, /trace, /events and /debug/pprof on this address while experiments run (\":0\" picks a port)")
		traceOut    = flag.String("trace-out", "", "write the JSON span dump to this file when done")
		chromeTrace = flag.String("chrome-trace", "", "write a Chrome trace-event file (load via chrome://tracing or Perfetto) when done")
		eventsOut   = flag.String("events-out", "", "write the structured event log as JSONL to this file when done")
		jsonOut     = flag.String("json", "", "write the run ledger (config, env, metrics, tables) to this file when done")
		compare     = flag.Bool("compare", false, "compare two ledger files: shahin-bench -compare [-th-...] old.json new.json; exits 1 on regression")
		thInv       = flag.Float64("th-invocations", 0, "compare: allowed fractional increase in classifier invocations (0 = counts must not grow)")
		thWall      = flag.Float64("th-wall", 0.5, "compare: allowed fractional increase in wall time")
		thReuse     = flag.Float64("th-reuse", 0.001, "compare: allowed absolute drop in reuse ratio")
		thSLO       = flag.Float64("th-slo", 0.01, "compare: allowed absolute drop in per-objective SLO compliance (gated only when the baseline ledger has SLO data)")

		failRate       = flag.Float64("fail-rate", 0, "fault injection: probability a classifier call fails transiently")
		spikeRate      = flag.Float64("spike-rate", 0, "fault injection: probability a classifier call stalls for -spike-delay")
		spikeDelay     = flag.Duration("spike-delay", 20*time.Millisecond, "fault injection: stall duration for latency spikes")
		faultSeed      = flag.Int64("fault-seed", 0, "fault injection: RNG seed (0 derives one from -seed)")
		predictTimeout = flag.Duration("predict-timeout", 0, "per-call classifier deadline (0 disables)")
		retries        = flag.Int("retries", 3, "max retries of a transient classifier failure")
		breakerThresh  = flag.Int("breaker-threshold", 5, "consecutive failures that open the circuit breaker (-1 disables)")
		breakerCool    = flag.Duration("breaker-cooldown", 0, "wall-clock open->half-open breaker cooldown (0 = call-counted only)")
		breakerCalls   = flag.Int64("breaker-cooldown-calls", 200, "rejected calls before an open breaker probes again")
	)
	flag.Parse()

	if *compare {
		args := flag.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "shahin-bench: -compare needs exactly two ledger paths: old.json new.json")
			os.Exit(bench.CompareMalformed)
		}
		th := obs.Thresholds{Invocations: *thInv, Wall: *thWall, Reuse: *thReuse, SLO: *thSLO}
		os.Exit(bench.CompareFiles(os.Stdout, args[0], args[1], th))
	}

	if *list {
		ids := make([]string, 0, len(experiments))
		for id := range experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-12s %s\n", id, experiments[id].desc)
		}
		return
	}

	// Every experiment is instrumented: spans and counters cost a few
	// atomic operations per tuple, invisible next to the calibrated
	// per-invocation classifier delay.
	rec := obs.NewRecorder()
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shahin-bench:", err)
			os.Exit(1)
		}
		defer srv.Close() //shahinvet:allow errcheck — best-effort teardown at exit
		fmt.Printf("observability: http://%s/ (/metrics, /progress, /trace, /events, /debug/pprof/)\n", srv.Addr())
	}

	cfg := bench.Config{Seed: *seed, Recorder: rec}.Fill()
	name := "bench"
	if *smoke {
		cfg = bench.SmokeConfig(*seed)
		cfg.Recorder = rec
		name = "smoke"
	}
	if *full {
		cfg.Rows = 20000
		cfg.Batch = 1000
		cfg.Batches = []int{100, 500, 1000, 2000}
		cfg.LIMESamples = 1000
		cfg.SHAPSamples = 1024
	}
	if *rows > 0 {
		cfg.Rows = *rows
	}
	if *batch > 0 {
		cfg.Batch = *batch
	}
	if *delay > 0 {
		cfg.Delay = *delay
	}
	// A fault config is attached only when a fault flag is actually set,
	// so plain runs keep the infallible (and byte-identical) fast path.
	if *failRate > 0 || *spikeRate > 0 || *predictTimeout > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed + 17
		}
		cfg.Fault = &fault.Config{
			FailRate:             *failRate,
			SpikeRate:            *spikeRate,
			SpikeDelay:           *spikeDelay,
			Seed:                 fseed,
			PredictTimeout:       *predictTimeout,
			MaxRetries:           *retries,
			BreakerThreshold:     *breakerThresh,
			BreakerCooldown:      *breakerCool,
			BreakerCooldownCalls: *breakerCalls,
		}
	}

	ids := order
	if *smoke {
		ids = []string{"smoke"}
	}
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	runStart := time.Now() //shahinvet:allow walltime — run wall time recorded in the ledger
	var tables []*bench.Table
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "shahin-bench: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now() //shahinvet:allow walltime — experiment wall time shown to the user
		tab, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shahin-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
		tables = append(tables, tab)
		fmt.Printf("(%s took %v)\n", id, time.Since(start).Round(time.Millisecond))
	}
	wall := time.Since(runStart)

	fmt.Printf("\nper-stage totals: %s\n", obs.FormatStageTotals(rec.StageTotals()))
	if p := rec.Progress(); p.Invocations > 0 {
		fmt.Printf("classifier invocations: %d; %d samples reused (%.1f%% reuse)\n",
			p.Invocations, p.ReusedSamples, 100*p.ReuseRate)
	}

	if *jsonOut != "" {
		l := bench.BuildLedger(name, cfg, ids, tables, wall)
		if err := bench.WriteLedgerFile(*jsonOut, l); err != nil {
			fmt.Fprintln(os.Stderr, "shahin-bench: writing ledger:", err)
			os.Exit(1)
		}
		fmt.Printf("run ledger written to %s\n", *jsonOut)
	}
	writeArtifact(*traceOut, "span dump", rec.WriteTrace)
	writeArtifact(*chromeTrace, "chrome trace", rec.WriteChromeTrace)
	writeArtifact(*eventsOut, "event log", rec.WriteEvents)
}

// writeArtifact dumps one observability artifact to path via write,
// exiting non-zero on failure; empty path means the artifact was not
// requested.
func writeArtifact(path, what string, write func(io.Writer) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shahin-bench:", err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		f.Close() //shahinvet:allow errcheck — close error is secondary; the write error wins
		fmt.Fprintf(os.Stderr, "shahin-bench: writing %s: %v\n", what, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "shahin-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("%s written to %s\n", what, path)
}

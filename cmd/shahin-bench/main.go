// Command shahin-bench regenerates the tables and figures of the paper's
// evaluation section (plus this repo's ablations) on the synthetic
// dataset twins.
//
// Usage:
//
//	shahin-bench                      # every experiment, laptop scale
//	shahin-bench -exp fig2,fig6      # specific experiments
//	shahin-bench -full               # larger workloads (minutes)
//	shahin-bench -list               # available experiments
//	shahin-bench -smoke -json BENCH_smoke.json   # CI artifact
//	shahin-bench -compare BENCH_baseline.json BENCH_smoke.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"shahin/internal/bench"
	"shahin/internal/fault"
	"shahin/internal/obs"
)

func main() {
	var (
		exp         = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		list        = flag.Bool("list", false, "list experiments and exit")
		full        = flag.Bool("full", false, "larger workloads (closer to paper scale; takes minutes)")
		smoke       = flag.Bool("smoke", false, "run only the CI smoke experiment at its tiny deterministic scale")
		rows        = flag.Int("rows", 0, "override dataset rows")
		batch       = flag.Int("batch", 0, "override single-batch size")
		seed        = flag.Int64("seed", 1, "master seed")
		delay       = flag.Duration("delay", 0, "override per-invocation classifier delay")
		obsAddr     = flag.String("obs-addr", "", "serve /metrics, /progress, /trace, /events and /debug/pprof on this address while experiments run (\":0\" picks a port)")
		traceOut    = flag.String("trace-out", "", "write the JSON span dump to this file when done")
		chromeTrace = flag.String("chrome-trace", "", "write a Chrome trace-event file (load via chrome://tracing or Perfetto) when done")
		eventsOut   = flag.String("events-out", "", "write the structured event log as JSONL to this file when done")
		jsonOut     = flag.String("json", "", "write the run ledger (config, env, metrics, tables) to this file when done")
		compare     = flag.Bool("compare", false, "compare two ledger files: shahin-bench -compare [-th-...] old.json new.json; exits 1 on regression")
		thInv       = flag.Float64("th-invocations", 0, "compare: allowed fractional increase in classifier invocations (0 = counts must not grow)")
		thWall      = flag.Float64("th-wall", 0.5, "compare: allowed fractional increase in wall time")
		thReuse     = flag.Float64("th-reuse", 0.001, "compare: allowed absolute drop in reuse ratio")
		thSLO       = flag.Float64("th-slo", 0.01, "compare: allowed absolute drop in per-objective SLO compliance (gated only when the baseline ledger has SLO data)")
		thAllocs    = flag.Float64("th-allocs", 0.5, "compare: allowed fractional increase in per-benchmark allocs/op (gated only when the baseline ledger has benchmark data)")
		thBytes     = flag.Float64("th-bytes", 0.5, "compare: allowed fractional increase in per-benchmark bytes/op (gated only when the baseline ledger has benchmark data)")
		thGCCPU     = flag.Float64("th-gc-cpu", 0.25, "compare: allowed absolute increase in GC CPU fraction (gated only when the baseline ledger has runtime data)")

		hotpathBench  = flag.Bool("hotpath-bench", false, "run -benchmem benchmarks over every //shahin:hotpath function and record them in the ledger")
		runtimeSample = flag.Duration("runtime-sample", 100*time.Millisecond, "runtime telemetry sampling interval (heap, GC, goroutines, sched latency); 0 disables")

		failRate       = flag.Float64("fail-rate", 0, "fault injection: probability a classifier call fails transiently")
		spikeRate      = flag.Float64("spike-rate", 0, "fault injection: probability a classifier call stalls for -spike-delay")
		spikeDelay     = flag.Duration("spike-delay", 20*time.Millisecond, "fault injection: stall duration for latency spikes")
		faultSeed      = flag.Int64("fault-seed", 0, "fault injection: RNG seed (0 derives one from -seed)")
		predictTimeout = flag.Duration("predict-timeout", 0, "per-call classifier deadline (0 disables)")
		retries        = flag.Int("retries", 3, "max retries of a transient classifier failure")
		breakerThresh  = flag.Int("breaker-threshold", 5, "consecutive failures that open the circuit breaker (-1 disables)")
		breakerCool    = flag.Duration("breaker-cooldown", 0, "wall-clock open->half-open breaker cooldown (0 = call-counted only)")
		breakerCalls   = flag.Int64("breaker-cooldown-calls", 200, "rejected calls before an open breaker probes again")
	)
	flag.Parse()

	if *compare {
		args := flag.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "shahin-bench: -compare needs exactly two ledger paths: old.json new.json")
			os.Exit(bench.CompareMalformed)
		}
		th := obs.Thresholds{
			Invocations: *thInv, Wall: *thWall, Reuse: *thReuse, SLO: *thSLO,
			AllocsPerOp: *thAllocs, BytesPerOp: *thBytes, GCCPU: *thGCCPU,
		}
		os.Exit(bench.CompareFiles(os.Stdout, args[0], args[1], th))
	}

	if *list {
		for _, id := range bench.ExperimentIDs() {
			e, _ := bench.LookupExperiment(id)
			fmt.Printf("%-12s %s\n", id, e.Desc)
		}
		return
	}

	// Every experiment is instrumented: spans and counters cost a few
	// atomic operations per tuple, invisible next to the calibrated
	// per-invocation classifier delay.
	rec := obs.NewRecorder()
	if *runtimeSample > 0 {
		rec.StartRuntimeSampling(*runtimeSample)
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shahin-bench:", err)
			os.Exit(1)
		}
		defer srv.Close() //shahinvet:allow errcheck — best-effort teardown at exit
		fmt.Printf("observability: http://%s/ (/metrics, /progress, /trace, /events, /debug/pprof/)\n", srv.Addr())
	}

	cfg := bench.Config{Seed: *seed, Recorder: rec}.Fill()
	name := "bench"
	if *smoke {
		cfg = bench.SmokeConfig(*seed)
		cfg.Recorder = rec
		name = "smoke"
	}
	if *full {
		cfg.Rows = 20000
		cfg.Batch = 1000
		cfg.Batches = []int{100, 500, 1000, 2000}
		cfg.LIMESamples = 1000
		cfg.SHAPSamples = 1024
	}
	if *rows > 0 {
		cfg.Rows = *rows
	}
	if *batch > 0 {
		cfg.Batch = *batch
	}
	if *delay > 0 {
		cfg.Delay = *delay
	}
	// A fault config is attached only when a fault flag is actually set,
	// so plain runs keep the infallible (and byte-identical) fast path.
	if *failRate > 0 || *spikeRate > 0 || *predictTimeout > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed + 17
		}
		cfg.Fault = &fault.Config{
			FailRate:             *failRate,
			SpikeRate:            *spikeRate,
			SpikeDelay:           *spikeDelay,
			Seed:                 fseed,
			PredictTimeout:       *predictTimeout,
			MaxRetries:           *retries,
			BreakerThreshold:     *breakerThresh,
			BreakerCooldown:      *breakerCool,
			BreakerCooldownCalls: *breakerCalls,
		}
	}

	ids := bench.DefaultOrder()
	if *smoke {
		ids = []string{"smoke"}
	}
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	runStart := time.Now() //shahinvet:allow walltime — run wall time recorded in the ledger
	var tables []*bench.Table
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := bench.LookupExperiment(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "shahin-bench: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now() //shahinvet:allow walltime — experiment wall time shown to the user
		tab, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shahin-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
		tables = append(tables, tab)
		fmt.Printf("(%s took %v)\n", id, time.Since(start).Round(time.Millisecond))
	}
	wall := time.Since(runStart)

	var benchResults []obs.BenchmarkResult
	if *hotpathBench {
		results, err := bench.HotpathResults(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shahin-bench: hotpath benchmarks:", err)
			os.Exit(1)
		}
		fmt.Println("\nhotpath benchmarks (-benchmem):")
		for _, r := range results {
			fmt.Printf("  %-34s %12.1f ns/op %10d B/op %8d allocs/op\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		}
		benchResults = results
	}
	// Stop before snapshotting so the ledger's runtime section carries a
	// final sample covering the whole run.
	rec.StopRuntimeSampling()

	fmt.Printf("\nper-stage totals: %s\n", obs.FormatStageTotals(rec.StageTotals()))
	if p := rec.Progress(); p.Invocations > 0 {
		fmt.Printf("classifier invocations: %d; %d samples reused (%.1f%% reuse)\n",
			p.Invocations, p.ReusedSamples, 100*p.ReuseRate)
	}

	if *jsonOut != "" {
		l := bench.BuildLedger(name, cfg, ids, tables, wall)
		l.Benchmarks = benchResults
		if err := bench.WriteLedgerFile(*jsonOut, l); err != nil {
			fmt.Fprintln(os.Stderr, "shahin-bench: writing ledger:", err)
			os.Exit(1)
		}
		fmt.Printf("run ledger written to %s\n", *jsonOut)
	}
	writeArtifact(*traceOut, "span dump", rec.WriteTrace)
	writeArtifact(*chromeTrace, "chrome trace", rec.WriteChromeTrace)
	writeArtifact(*eventsOut, "event log", rec.WriteEvents)
}

// writeArtifact dumps one observability artifact to path via write,
// exiting non-zero on failure; empty path means the artifact was not
// requested.
func writeArtifact(path, what string, write func(io.Writer) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shahin-bench:", err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		f.Close() //shahinvet:allow errcheck — close error is secondary; the write error wins
		fmt.Fprintf(os.Stderr, "shahin-bench: writing %s: %v\n", what, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "shahin-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("%s written to %s\n", what, path)
}

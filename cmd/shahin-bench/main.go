// Command shahin-bench regenerates the tables and figures of the paper's
// evaluation section (plus this repo's ablations) on the synthetic
// dataset twins.
//
// Usage:
//
//	shahin-bench                      # every experiment, laptop scale
//	shahin-bench -exp fig2,fig6      # specific experiments
//	shahin-bench -full               # larger workloads (minutes)
//	shahin-bench -list               # available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"shahin/internal/bench"
	"shahin/internal/obs"
)

// experiments maps experiment ids to their runners.
var experiments = map[string]struct {
	desc string
	run  func(bench.Config) (*bench.Table, error)
}{
	"table1":       {"Table 1: dataset characteristics + per-tuple seconds", bench.Table1},
	"fig2":         {"Figure 2: Shahin vs DIST-k and GREEDY baselines", bench.Figure2},
	"fig3":         {"Figure 3: Shahin-Batch speedup across datasets", bench.Figure3},
	"fig4":         {"Figure 4: Shahin-Streaming speedup across datasets", bench.Figure4},
	"fig5":         {"Figure 5: housekeeping overhead", bench.Figure5},
	"fig6":         {"Figure 6: impact of tau", bench.Figure6},
	"fig7":         {"Figure 7: impact of cache size", bench.Figure7},
	"quality":      {"Explanation quality vs sequential baseline", bench.Quality},
	"abl-sample":   {"Ablation A1: FIM sample-size heuristic", bench.AblationSample},
	"abl-kernel":   {"Ablation A2: SHAP kernel size sampling", bench.AblationKernel},
	"abl-border":   {"Ablation A3: streaming negative border", bench.AblationBorder},
	"ext-sshap":    {"Extension: Sampling-Shapley under Shahin", bench.ExtSampleShapley},
	"ext-approx":   {"Extension: approximation via reuse fraction", bench.ExtApproximate},
	"ext-models":   {"Extension: speedup across classifiers", bench.ExtModels},
	"ext-parallel": {"Extension: worker parallelism", bench.ExtParallel},
}

// order fixes the default execution order.
var order = []string{
	"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
	"quality", "abl-sample", "abl-kernel", "abl-border",
	"ext-sshap", "ext-approx", "ext-models", "ext-parallel",
}

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		list     = flag.Bool("list", false, "list experiments and exit")
		full     = flag.Bool("full", false, "larger workloads (closer to paper scale; takes minutes)")
		rows     = flag.Int("rows", 0, "override dataset rows")
		batch    = flag.Int("batch", 0, "override single-batch size")
		seed     = flag.Int64("seed", 1, "master seed")
		delay    = flag.Duration("delay", 0, "override per-invocation classifier delay")
		obsAddr  = flag.String("obs-addr", "", "serve /metrics, /progress, /trace and /debug/pprof on this address while experiments run (\":0\" picks a port)")
		traceOut = flag.String("trace-out", "", "write the JSON span dump to this file when done")
	)
	flag.Parse()

	if *list {
		ids := make([]string, 0, len(experiments))
		for id := range experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-11s %s\n", id, experiments[id].desc)
		}
		return
	}

	// Every experiment is instrumented: spans and counters cost a few
	// atomic operations per tuple, invisible next to the calibrated
	// per-invocation classifier delay.
	rec := obs.NewRecorder()
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shahin-bench:", err)
			os.Exit(1)
		}
		defer srv.Close() //shahinvet:allow errcheck — best-effort teardown at exit
		fmt.Printf("observability: http://%s/ (/metrics, /progress, /trace, /debug/pprof/)\n", srv.Addr())
	}

	cfg := bench.Config{Seed: *seed, Recorder: rec}.Fill()
	if *full {
		cfg.Rows = 20000
		cfg.Batch = 1000
		cfg.Batches = []int{100, 500, 1000, 2000}
		cfg.LIMESamples = 1000
		cfg.SHAPSamples = 1024
	}
	if *rows > 0 {
		cfg.Rows = *rows
	}
	if *batch > 0 {
		cfg.Batch = *batch
	}
	if *delay > 0 {
		cfg.Delay = *delay
	}

	ids := order
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "shahin-bench: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now() //shahinvet:allow walltime — experiment wall time shown to the user
		tab, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shahin-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("(%s took %v)\n", id, time.Since(start).Round(time.Millisecond))
	}

	fmt.Printf("\nper-stage totals: %s\n", obs.FormatStageTotals(rec.StageTotals()))
	if p := rec.Progress(); p.Invocations > 0 {
		fmt.Printf("classifier invocations: %d; %d samples reused (%.1f%% reuse)\n",
			p.Invocations, p.ReusedSamples, 100*p.ReuseRate)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shahin-bench:", err)
			os.Exit(1)
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close() //shahinvet:allow errcheck — close error is secondary; the write error wins
			fmt.Fprintln(os.Stderr, "shahin-bench: writing trace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "shahin-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("span dump written to %s\n", *traceOut)
	}
}

// Command shahin-router runs the sharded-serving front tier: it
// consistent-hashes each tuple's discretised itemset signature onto a
// fleet of shahin-serve replicas so the warm-pool and store reuse that
// makes Shahin fast survives the split into shards.
//
//	POST /v1/explain        {"tuple": [..]}        route one tuple
//	POST /v1/explain/batch  {"tuples": [[..],..]}  route a batch
//	GET  /healthz           router liveness
//	GET  /readyz            readiness (503 until a replica is healthy)
//	GET  /replicas          per-replica health and breaker state
//
// Every replica is actively health-checked and guarded by a circuit
// breaker; a failing replica is failed over in ring order (the answer
// is marked degraded, never dropped) and requests are refused only
// when the whole fleet is down. The router must be given the same
// -dataset/-data/-rows/-seed as its replicas: affinity routing
// discretises tuples with the replicas' own statistics, and a schema
// mismatch breaks affinity silently. See OPERATIONS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"shahin"
	"shahin/internal/cli"
	"shahin/internal/datagen"
	"shahin/internal/router"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "HTTP listen address (\":0\" picks a port)")
		replicas = flag.String("replicas", "", "comma-separated shahin-serve base URLs, ring order (required)")
		name     = flag.String("dataset", "census", "dataset family (schema source): "+strings.Join(shahin.DatasetNames(), ", "))
		dataPath = flag.String("data", "", "CSV file to load (default: generate -rows synthetic tuples)")
		rows     = flag.Int("rows", 5000, "synthetic rows when -data is not given")
		seed     = flag.Int64("seed", 1, "seed for data generation; must match the replicas'")

		vnodes      = flag.Int("vnodes", router.DefaultVNodes, "virtual points per replica on the hash ring")
		policy      = flag.String("policy", string(router.PolicyAffinity), "routing policy: affinity or roundrobin")
		maxInflight = flag.Int("max-inflight", 256, "in-flight request bound; excess load is shed with 429")

		probeInterval  = flag.Duration("probe-interval", time.Second, "active health-check period")
		probeTimeout   = flag.Duration("probe-timeout", 0, "health-check deadline (0 = half the probe interval)")
		forwardTimeout = flag.Duration("forward-timeout", 30*time.Second, "deadline for one forward attempt to one replica")

		obsAddr   = flag.String("obs-addr", "", "serve /metrics, /progress, /trace, /events and /debug/pprof on this address (\":0\" picks a port)")
		eventsOut = flag.String("events-out", "", "write the structured event log as JSONL on shutdown")
	)
	flag.Parse()

	if *replicas == "" {
		fatal(errors.New("-replicas is required (comma-separated shahin-serve URLs)"))
	}
	urls := strings.Split(*replicas, ",")
	for i, u := range urls {
		urls[i] = strings.TrimSpace(u)
	}

	ctx, stop := cli.Shutdown(context.Background())
	defer stop()

	rec := shahin.NewRecorder()
	if *obsAddr != "" {
		osrv, err := shahin.ServeMetrics(*obsAddr, rec)
		if err != nil {
			fatal(err)
		}
		defer osrv.Close() //shahinvet:allow errcheck — best-effort teardown at exit
		fmt.Printf("observability: http://%s/ (/metrics, /progress, /trace, /events, /debug/pprof/)\n", osrv.Addr())
	}

	// The router discretises tuples with the same statistics its
	// replicas train on, rebuilt here from the same dataset flags.
	d, err := loadData(*name, *dataPath, *rows, *seed)
	if err != nil {
		fatal(err)
	}
	train, _ := shahin.SplitDataset(d, 1.0/3, *seed+1)
	stats, err := shahin.ComputeStats(train)
	if err != nil {
		fatal(err)
	}

	rt, err := router.New(router.Config{
		Replicas:       urls,
		Stats:          stats,
		VNodes:         *vnodes,
		Policy:         router.Policy(*policy),
		MaxInflight:    *maxInflight,
		ForwardTimeout: *forwardTimeout,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		Recorder:       rec,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hsrv := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 5 * time.Second}
	fmt.Printf("routing dataset %s over %d replicas on http://%s/ (policy %s, %d vnodes)\n",
		*name, len(urls), ln.Addr(), *policy, *vnodes)
	errc := make(chan error, 1)
	go func() { errc <- hsrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Println("\nshutdown: closing router")
	case err := <-errc:
		fatal(err)
	}

	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hsrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "shahin-router:", err)
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteEvents(f); err != nil {
			f.Close() //shahinvet:allow errcheck — close error is secondary; the write error wins
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("event log written to %s\n", *eventsOut)
	}
}

// loadData reads the CSV when given, else generates synthetic tuples —
// the same resolution shahin-serve performs, so stats match.
func loadData(name, path string, rows int, seed int64) (*shahin.Dataset, error) {
	if path == "" {
		return shahin.GenerateDataset(name, rows, seed)
	}
	cfg, err := datagen.Spec(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	return shahin.ReadCSV(f, cfg.Schema())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shahin-router:", err)
	os.Exit(1)
}

// Command shahin-explain runs the full pipeline on a CSV dataset: train a
// random forest on a split, explain a batch of held-out tuples with the
// selected algorithm and mode, and print the explanations plus the cost
// report.
//
// The CSV must carry the schema of one of the built-in dataset families
// (produce one with shahin-datagen); alternatively omit -data to generate
// tuples in memory.
//
// Usage:
//
//	shahin-explain -dataset census -rows 5000 -explainer lime -mode batch -n 100
//	shahin-explain -dataset census -data census.csv -explainer anchor -n 20
//
// Ctrl-C cancels the run: the explanations finished so far are printed
// with a partial cost report, and unattempted tuples are marked failed.
// A second Ctrl-C forces an immediate exit without the partial print.
// The -fail-rate/-predict-timeout family runs the same pipeline against
// a deliberately unreliable classifier backend (see README, Robustness).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"shahin"
	"shahin/internal/cli"
	"shahin/internal/datagen"
	"shahin/internal/obs"
)

func main() {
	var (
		name      = flag.String("dataset", "census", "dataset family (schema source): "+strings.Join(shahin.DatasetNames(), ", "))
		dataPath  = flag.String("data", "", "CSV file to load (default: generate -rows synthetic tuples)")
		rows      = flag.Int("rows", 5000, "synthetic rows when -data is not given")
		n         = flag.Int("n", 50, "number of held-out tuples to explain")
		explainer = flag.String("explainer", "lime", "lime, anchor, shap, or exactshap (exact TreeSHAP over the owned forest; falls back to shap when illegal)")
		mode      = flag.String("mode", "batch", "batch, stream, or seq")
		topK      = flag.Int("top", 5, "attributes to print per attribution")
		seed      = flag.Int64("seed", 1, "seed for data, training and explanation")
		trees     = flag.Int("trees", 50, "random forest size")
		workers   = flag.Int("workers", 1, "parallel explanation workers (batch mode, non-Anchor)")
		exactBG   = flag.Int("exact-background", 256, "background sample size for exactshap cover weights")
		obsAddr   = flag.String("obs-addr", "", "serve /metrics, /progress, /trace, /events and /debug/pprof on this address during the run (\":0\" picks a port)")
		traceOut  = flag.String("trace-out", "", "write the JSON span dump to this file when done")
		tparent   = flag.String("traceparent", "", "W3C traceparent to adopt: the run's root spans join the given trace (e.g. from a calling pipeline)")
		chromeOut = flag.String("chrome-trace", "", "write a Chrome trace-event file (chrome://tracing, Perfetto) when done")
		eventsOut = flag.String("events-out", "", "write the structured event log (per-explanation provenance) as JSONL when done")

		failRate       = flag.Float64("fail-rate", 0, "fault injection: probability a classifier call fails transiently")
		spikeRate      = flag.Float64("spike-rate", 0, "fault injection: probability a classifier call stalls for -spike-delay")
		spikeDelay     = flag.Duration("spike-delay", 20*time.Millisecond, "fault injection: stall duration for latency spikes")
		predictTimeout = flag.Duration("predict-timeout", 0, "per-call classifier deadline (0 disables)")
		retries        = flag.Int("retries", 3, "max retries of a transient classifier failure")
	)
	flag.Parse()

	// Ctrl-C cancels in-flight work; the finished explanations are still
	// printed below with a partial report. A second Ctrl-C skips the
	// partial print and exits immediately.
	ctx, stop := cli.Shutdown(context.Background())
	defer stop()
	if *tparent != "" {
		tc, err := obs.ParseTraceparent(*tparent)
		if err != nil {
			fatal(fmt.Errorf("-traceparent: %w", err))
		}
		ctx = obs.ContextWithTrace(ctx, tc)
	}

	var rec *shahin.Recorder
	if *obsAddr != "" || *traceOut != "" || *chromeOut != "" || *eventsOut != "" {
		rec = shahin.NewRecorder()
	}
	if *obsAddr != "" {
		srv, err := shahin.ServeMetrics(*obsAddr, rec)
		if err != nil {
			fatal(err)
		}
		defer srv.Close() //shahinvet:allow errcheck — best-effort teardown at exit
		fmt.Printf("observability: http://%s/ (/metrics, /progress, /trace, /events, /debug/pprof/)\n", srv.Addr())
	}

	kind, err := shahin.ParseKind(*explainer)
	if err != nil {
		fatal(err)
	}
	d, err := loadData(*name, *dataPath, *rows, *seed)
	if err != nil {
		fatal(err)
	}
	train, test := shahin.SplitDataset(d, 1.0/3, *seed+1)
	stats, err := shahin.ComputeStats(train)
	if err != nil {
		fatal(err)
	}
	model, err := shahin.TrainForest(train, shahin.ForestConfig{NumTrees: *trees, Seed: *seed + 2})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model: %d trees, train accuracy %.3f\n", *trees, model.Accuracy(train))

	if *n > test.NumRows() {
		*n = test.NumRows()
	}
	tuples := test.Rows(0, *n)
	opts := shahin.Options{Explainer: kind, Seed: *seed + 3, Workers: *workers, Recorder: rec}
	opts.Exact.Background = *exactBG
	if *failRate > 0 || *spikeRate > 0 || *predictTimeout > 0 {
		opts.Fault = &shahin.FaultConfig{
			FailRate:       *failRate,
			SpikeRate:      *spikeRate,
			SpikeDelay:     *spikeDelay,
			Seed:           *seed + 17,
			PredictTimeout: *predictTimeout,
			MaxRetries:     *retries,
		}
	}

	var (
		explanations []shahin.Explanation
		report       shahin.Report
		canceled     bool
	)
	switch *mode {
	case "batch":
		b, err := shahin.NewBatch(stats, model, opts)
		if err != nil {
			fatal(err)
		}
		res, err := b.ExplainAllCtx(ctx, tuples)
		if res == nil {
			fatal(err)
		}
		canceled = err != nil
		explanations, report = res.Explanations, res.Report
	case "stream":
		s, err := shahin.NewStream(stats, model, opts)
		if err != nil {
			fatal(err)
		}
		for _, tup := range tuples {
			exp, err := s.ExplainCtx(ctx, tup)
			if errors.Is(err, context.Canceled) {
				canceled = true
				break
			}
			if err != nil {
				fatal(err)
			}
			explanations = append(explanations, exp)
		}
		report = s.Report()
	case "seq":
		res, err := shahin.SequentialCtx(ctx, stats, model, opts, tuples)
		if res == nil {
			fatal(err)
		}
		canceled = err != nil
		explanations, report = res.Explanations, res.Report
	default:
		fatal(fmt.Errorf("unknown mode %q (want batch, stream, or seq)", *mode))
	}

	attempted := cli.FailUnattempted(explanations)
	for i, e := range explanations {
		fmt.Printf("tuple %3d: %s%s\n", i, render(e, test.Schema, *topK), statusMark(e.Status))
	}
	if canceled {
		fmt.Printf("\ninterrupted: %d of %d tuples explained before cancellation\n", attempted, len(tuples))
	}
	fmt.Printf("\n%s\n", report.String())
	if *traceOut != "" {
		if err := writeArtifact(*traceOut, rec.WriteTrace); err != nil {
			fatal(err)
		}
		fmt.Printf("span dump written to %s\n", *traceOut)
	}
	if *chromeOut != "" {
		if err := writeArtifact(*chromeOut, rec.WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome trace written to %s\n", *chromeOut)
	}
	if *eventsOut != "" {
		if err := writeArtifact(*eventsOut, rec.WriteEvents); err != nil {
			fatal(err)
		}
		fmt.Printf("event log written to %s\n", *eventsOut)
	}
}

// writeArtifact dumps one recorder artifact (span tree, chrome trace,
// event log) to path.
func writeArtifact(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close() //shahinvet:allow errcheck — close error is secondary; the write error wins
		return err
	}
	return f.Close()
}

// render formats one explanation for the terminal. Tuples left
// unattempted by a cancelled run have neither payload.
func render(e shahin.Explanation, schema *shahin.Schema, topK int) string {
	if e.Rule != nil {
		return e.Rule.Describe(schema)
	}
	att := e.Attribution
	if att == nil {
		return "(not explained)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "class=%s:", schema.Classes[att.Class])
	for _, a := range att.TopK(topK) {
		fmt.Fprintf(&b, " %s=%.3f", schema.Attrs[a].Name, att.Weights[a])
	}
	return b.String()
}

// statusMark annotates non-OK explanations in the tuple listing.
func statusMark(s shahin.Status) string {
	switch s {
	case shahin.StatusDegraded:
		return "  [degraded]"
	case shahin.StatusFailed:
		return "  [failed]"
	}
	return ""
}

// loadData reads the CSV when given, else generates synthetic tuples.
func loadData(name, path string, rows int, seed int64) (*shahin.Dataset, error) {
	if path == "" {
		return shahin.GenerateDataset(name, rows, seed)
	}
	cfg, err := datagen.Spec(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	return shahin.ReadCSV(f, cfg.Schema())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shahin-explain:", err)
	os.Exit(1)
}

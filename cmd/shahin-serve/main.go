// Command shahin-serve runs the online explanation service: it trains a
// model (or loads a CSV), builds a warm explainer whose frequent-itemset
// pool persists across requests, and serves explanations over HTTP
// through a micro-batching admission queue.
//
//	POST /v1/explain        {"tuple": [..]}        one explanation
//	POST /v1/explain/batch  {"tuples": [[..],..]}  many explanations
//	GET  /healthz           liveness
//	GET  /readyz            readiness (503 while draining)
//	GET  /slo               SLO objective status (compliance, burn rate)
//	GET  /requests          slow-request exemplars (?trace=<id> for one)
//
// Concurrent requests are gathered for up to -batch-window (or until
// -batch-max tuples queue) and flushed through the pipeline together,
// so unrelated requests share one pool of pre-labelled perturbations.
// Exact-repeat tuples are answered from an explanation store, which
// -store persists across restarts (loaded at startup, snapshotted on
// graceful shutdown).
//
// SIGINT/SIGTERM drains gracefully: queued requests are flushed and
// answered, then the store is snapshotted. A second signal forces an
// immediate exit. See OPERATIONS.md for the full operator guide.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"shahin"
	"shahin/internal/cli"
	"shahin/internal/datagen"
	"shahin/internal/obs"
	"shahin/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address (\":0\" picks a port)")
		name      = flag.String("dataset", "census", "dataset family (schema source): "+strings.Join(shahin.DatasetNames(), ", "))
		dataPath  = flag.String("data", "", "CSV file to load (default: generate -rows synthetic tuples)")
		rows      = flag.Int("rows", 5000, "synthetic rows when -data is not given")
		explainer = flag.String("explainer", "lime", "lime, anchor, shap, or exactshap (exact TreeSHAP over the owned forest; falls back to shap when illegal)")
		seed      = flag.Int64("seed", 1, "seed for data, training and explanation")
		trees     = flag.Int("trees", 50, "random forest size")
		workers   = flag.Int("workers", 0, "parallel workers sharding each flush (0 = GOMAXPROCS, non-Anchor)")
		exactBG   = flag.Int("exact-background", 256, "background sample size for exactshap cover weights")

		batchWindow = flag.Duration("batch-window", 10*time.Millisecond, "how long the first queued request waits for companions before its batch flushes")
		batchMax    = flag.Int("batch-max", 64, "flush a batch immediately at this many queued tuples")
		queueCap    = flag.Int("queue-cap", 1024, "admission queue bound; requests beyond it get 503")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request deadline, queue wait included (0 disables)")
		staleAfter  = flag.Int("stale-after", 0, "re-mine the itemset pool after this many explained tuples (0 = default 2048)")
		storePath   = flag.String("store", "", "explanation-store snapshot: loaded at startup, written on graceful shutdown")
		warmFrom    = flag.String("warm-from", "", "comma-separated peer URLs to fetch a store snapshot from at startup (first healthy peer wins)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits for in-flight flushes")

		obsAddr       = flag.String("obs-addr", "", "serve /metrics, /progress, /trace, /events and /debug/pprof on this address (\":0\" picks a port)")
		eventsOut     = flag.String("events-out", "", "write the structured event log as JSONL on shutdown")
		runtimeSample = flag.Duration("runtime-sample", time.Second, "runtime telemetry sampling interval (heap, GC, goroutines, sched latency); 0 disables")

		sloWindow    = flag.Duration("slo-window", 5*time.Minute, "rolling window for SLO tracking (0 disables the tracker)")
		sloLatTarget = flag.Duration("slo-latency-target", 250*time.Millisecond, "latency objective: requests slower than this count against the goal")
		sloLatGoal   = flag.Float64("slo-latency-goal", 0.99, "latency objective: fraction of requests that must meet -slo-latency-target")
		sloAvailGoal = flag.Float64("slo-availability-goal", 0.999, "availability objective: fraction of requests that must answer without a 5xx")

		failRate       = flag.Float64("fail-rate", 0, "fault injection: probability a classifier call fails transiently")
		spikeRate      = flag.Float64("spike-rate", 0, "fault injection: probability a classifier call stalls for -spike-delay")
		spikeDelay     = flag.Duration("spike-delay", 20*time.Millisecond, "fault injection: stall duration for latency spikes")
		predictTimeout = flag.Duration("predict-timeout", 0, "per-call classifier deadline (0 disables)")
		retries        = flag.Int("retries", 3, "max retries of a transient classifier failure")
	)
	flag.Parse()

	ctx, stop := cli.Shutdown(context.Background())
	defer stop()

	// The serving stack is always instrumented: request tracing, the
	// slow-request ring, and SLO tracking need a recorder even when no
	// observability endpoint is mounted.
	rec := shahin.NewRecorder()
	if *runtimeSample > 0 {
		rec.StartRuntimeSampling(*runtimeSample)
		defer rec.StopRuntimeSampling()
	}
	if *sloWindow > 0 {
		rec.SetSLO(obs.NewSLOTracker(obs.SLOConfig{
			Window:           *sloWindow,
			LatencyTarget:    *sloLatTarget,
			LatencyGoal:      *sloLatGoal,
			AvailabilityGoal: *sloAvailGoal,
		}))
	}
	if *obsAddr != "" {
		osrv, err := shahin.ServeMetrics(*obsAddr, rec)
		if err != nil {
			fatal(err)
		}
		defer osrv.Close() //shahinvet:allow errcheck — best-effort teardown at exit
		fmt.Printf("observability: http://%s/ (/metrics, /progress, /trace, /events, /debug/pprof/)\n", osrv.Addr())
	}

	kind, err := shahin.ParseKind(*explainer)
	if err != nil {
		fatal(err)
	}
	d, err := loadData(*name, *dataPath, *rows, *seed)
	if err != nil {
		fatal(err)
	}
	train, _ := shahin.SplitDataset(d, 1.0/3, *seed+1)
	stats, err := shahin.ComputeStats(train)
	if err != nil {
		fatal(err)
	}
	model, err := shahin.TrainForest(train, shahin.ForestConfig{NumTrees: *trees, Seed: *seed + 2})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model: %d trees, train accuracy %.3f\n", *trees, model.Accuracy(train))

	opts := shahin.Options{Explainer: kind, Seed: *seed + 3, Workers: *workers, Recorder: rec}
	opts.Exact.Background = *exactBG
	if *failRate > 0 || *spikeRate > 0 || *predictTimeout > 0 {
		opts.Fault = &shahin.FaultConfig{
			FailRate:       *failRate,
			SpikeRate:      *spikeRate,
			SpikeDelay:     *spikeDelay,
			Seed:           *seed + 17,
			PredictTimeout: *predictTimeout,
			MaxRetries:     *retries,
		}
	}
	warm, err := shahin.NewWarm(stats, model, opts, *staleAfter)
	if err != nil {
		fatal(err)
	}
	srv, err := serve.New(warm, serve.Config{
		BatchWindow:    *batchWindow,
		BatchMax:       *batchMax,
		QueueCap:       *queueCap,
		RequestTimeout: *reqTimeout,
		StorePath:      *storePath,
		Recorder:       rec,
	})
	if err != nil {
		fatal(err)
	}
	if *storePath != "" && srv.StoreLen() > 0 {
		fmt.Printf("store: restored %d explanations from %s\n", srv.StoreLen(), *storePath)
	}
	if *warmFrom != "" {
		peers := strings.Split(*warmFrom, ",")
		for i, p := range peers {
			peers[i] = strings.TrimSpace(p)
		}
		n, err := srv.RestoreFromPeers(ctx, peers, nil)
		if err != nil {
			// Peer recovery is best-effort: a replica with no healthy
			// neighbours still serves, it just starts cold.
			fmt.Fprintln(os.Stderr, "shahin-serve: peer warm-up failed:", err)
		} else {
			fmt.Printf("store: warmed %d explanations from peer snapshot\n", n)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hsrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	fmt.Printf("serving %s explanations for dataset %s on http://%s/ (batch window %v, batch max %d)\n",
		kind, *name, ln.Addr(), *batchWindow, *batchMax)
	errc := make(chan error, 1)
	go func() { errc <- hsrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Println("\nshutdown: draining queued requests (second signal forces exit)")
	case err := <-errc:
		fatal(err)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "shahin-serve:", err)
	}
	if err := hsrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "shahin-serve:", err)
	}
	if *storePath != "" {
		fmt.Printf("store: %d explanations snapshotted to %s\n", srv.StoreLen(), *storePath)
	}
	rep := warm.Report()
	fmt.Printf("\n%s\n", rep.String())
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteEvents(f); err != nil {
			f.Close() //shahinvet:allow errcheck — close error is secondary; the write error wins
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("event log written to %s\n", *eventsOut)
	}
}

// loadData reads the CSV when given, else generates synthetic tuples.
func loadData(name, path string, rows int, seed int64) (*shahin.Dataset, error) {
	if path == "" {
		return shahin.GenerateDataset(name, rows, seed)
	}
	cfg, err := datagen.Spec(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	return shahin.ReadCSV(f, cfg.Schema())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shahin-serve:", err)
	os.Exit(1)
}

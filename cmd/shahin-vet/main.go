// Command shahin-vet runs the project's static-analysis suite: six
// analyzers enforcing the determinism, error-handling, nil-recorder,
// and documentation invariants the reproduction depends on (see
// internal/analysis). It prints go-vet-style diagnostics (or JSON with
// -json) and exits non-zero when anything is flagged:
//
//	go run ./cmd/shahin-vet ./...
//	go run ./cmd/shahin-vet -json ./internal/...
//	go run ./cmd/shahin-vet -run walltime,maporder ./internal/core
//
// Findings are suppressed per line with //shahinvet:allow <analyzer>.
package main

import (
	"os"

	"shahin/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:], os.Stdout, os.Stderr))
}

// Command shahin-vet runs the project's static-analysis suite: eleven
// analyzers enforcing the determinism, error-handling, nil-recorder,
// and documentation invariants the reproduction depends on, plus the
// CFG-backed flow checks — context propagation (ctxflow), span and
// lock lifecycles (spanend, lockguard), hot-path allocation discipline
// (hotalloc), and an audit of the suppression inventory itself
// (allowaudit). See internal/analysis. It prints go-vet-style
// diagnostics (or JSON with -json) and exits non-zero when anything is
// flagged:
//
//	go run ./cmd/shahin-vet ./...
//	go run ./cmd/shahin-vet -json ./internal/...
//	go run ./cmd/shahin-vet -run walltime,maporder ./internal/core
//	go run ./cmd/shahin-vet -tests ./internal/serve
//
// Findings are suppressed per line with //shahinvet:allow <analyzer>;
// allowaudit flags any such directive that no longer suppresses
// anything. -tests additionally analyzes in-package _test.go files.
package main

import (
	"os"

	"shahin/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:], os.Stdout, os.Stderr))
}

// Command shahin-prof runs one bench experiment under Go's execution
// profilers and turns the raw profiles into ledger-recordable top-N
// hot-function tables, using the stdlib-only pprof decoder in
// internal/prof (no `go tool pprof` required).
//
// Usage:
//
//	shahin-prof                          # profile the CI smoke experiment
//	shahin-prof -exp fig3 -top 20        # profile a paper experiment
//	shahin-prof -mutex -block            # add contention profiles
//	shahin-prof -bench -json BENCH_prof.json   # CI artifact with hotpath benchmarks
//
// CPU and heap profiles are on by default; mutex and block profiles
// are opt-in because their collection rates perturb the workload. The
// raw .pb.gz files land in -dir for offline `go tool pprof` sessions.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"shahin/internal/bench"
	"shahin/internal/obs"
	"shahin/internal/prof"
)

// profileSpec describes one collected profile: its pprof lookup name,
// the sample-value type to rank by, and how the table labels it.
type profileSpec struct {
	kind      string // file stem and table label
	valueType string // preferred Sample value dimension (see prof.Profile.ValueIndex)
	path      string
}

func main() {
	var (
		exp           = flag.String("exp", "smoke", "experiment id to profile (see shahin-bench -list)")
		seed          = flag.Int64("seed", 1, "master seed")
		dir           = flag.String("dir", "prof", "directory the raw .pb.gz profiles are written to")
		topN          = flag.Int("top", 10, "hot functions reported per profile")
		cpu           = flag.Bool("cpu", true, "collect a CPU profile")
		heap          = flag.Bool("heap", true, "collect a heap allocation profile")
		mutex         = flag.Bool("mutex", false, "collect a mutex-contention profile")
		block         = flag.Bool("block", false, "collect a goroutine-blocking profile")
		blockRate     = flag.Int("block-rate", 10000, "runtime.SetBlockProfileRate argument (ns) while -block is set")
		mutexFraction = flag.Int("mutex-fraction", 5, "runtime.SetMutexProfileFraction argument while -mutex is set")
		benchFlag     = flag.Bool("bench", false, "also run the hotpath -benchmem benchmarks (after profiling stops, so they are unperturbed) and record them in the ledger")
		jsonOut       = flag.String("json", "", "write the run ledger (tables, runtime telemetry, benchmarks) to this file when done")
		runtimeSample = flag.Duration("runtime-sample", 100*time.Millisecond, "runtime telemetry sampling interval (heap, GC, goroutines, sched latency); 0 disables")
	)
	flag.Parse()

	e, ok := bench.LookupExperiment(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "shahin-prof: unknown experiment %q (see shahin-bench -list)\n", *exp)
		os.Exit(1)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "shahin-prof:", err)
		os.Exit(1)
	}

	rec := obs.NewRecorder()
	if *runtimeSample > 0 {
		rec.StartRuntimeSampling(*runtimeSample)
	}
	var cfg bench.Config
	if *exp == "smoke" {
		cfg = bench.SmokeConfig(*seed)
	} else {
		cfg = bench.Config{Seed: *seed}.Fill()
	}
	cfg.Recorder = rec

	// Contention profiling rates are armed before the workload and
	// disarmed right after it, so the benchmarks below run unperturbed.
	if *mutex {
		runtime.SetMutexProfileFraction(*mutexFraction)
	}
	if *block {
		runtime.SetBlockProfileRate(*blockRate)
	}

	var cpuFile *os.File
	var specs []profileSpec
	if *cpu {
		path := filepath.Join(*dir, "cpu.pb.gz")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shahin-prof:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "shahin-prof: starting CPU profile:", err)
			os.Exit(1)
		}
		cpuFile = f
		specs = append(specs, profileSpec{kind: "cpu", valueType: "cpu", path: path})
	}

	start := time.Now() //shahinvet:allow walltime — run wall time recorded in the ledger
	tab, runErr := e.Run(cfg)
	wall := time.Since(start)

	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "shahin-prof:", err)
			os.Exit(1)
		}
	}
	if *mutex {
		runtime.SetMutexProfileFraction(0)
	}
	if *block {
		runtime.SetBlockProfileRate(0)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "shahin-prof: %s: %v\n", *exp, runErr)
		os.Exit(1)
	}
	tab.Fprint(os.Stdout)

	if *heap {
		// A forced GC first, so alloc_space covers everything the run
		// allocated rather than whatever happens to be live.
		runtime.GC()
		specs = append(specs, writeLookup(*dir, "heap", "alloc_space", "heap"))
	}
	if *mutex {
		specs = append(specs, writeLookup(*dir, "mutex", "delay", "mutex"))
	}
	if *block {
		specs = append(specs, writeLookup(*dir, "block", "delay", "block"))
	}

	tables := []*bench.Table{tab}
	for _, spec := range specs {
		t, err := topTable(spec, *topN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shahin-prof: decoding %s profile: %v\n", spec.kind, err)
			os.Exit(1)
		}
		t.Fprint(os.Stdout)
		tables = append(tables, t)
	}

	var benchResults []obs.BenchmarkResult
	if *benchFlag {
		results, err := bench.HotpathResults(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shahin-prof: hotpath benchmarks:", err)
			os.Exit(1)
		}
		fmt.Println("\nhotpath benchmarks (-benchmem):")
		for _, r := range results {
			fmt.Printf("  %-34s %12.1f ns/op %10d B/op %8d allocs/op\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		}
		benchResults = results
	}

	// Stop before snapshotting so the ledger's runtime section carries a
	// final sample covering the whole profiled run.
	rec.StopRuntimeSampling()

	if *jsonOut != "" {
		l := bench.BuildLedger("prof-"+*exp, cfg, []string{*exp}, tables, wall)
		l.Benchmarks = benchResults
		if err := bench.WriteLedgerFile(*jsonOut, l); err != nil {
			fmt.Fprintln(os.Stderr, "shahin-prof: writing ledger:", err)
			os.Exit(1)
		}
		fmt.Printf("run ledger written to %s\n", *jsonOut)
	}
}

// writeLookup dumps the named runtime profile into dir as gzipped
// protobuf (debug=0) and returns its spec for decoding.
func writeLookup(dir, name, valueType, kind string) profileSpec {
	path := filepath.Join(dir, name+".pb.gz")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shahin-prof:", err)
		os.Exit(1)
	}
	p := pprof.Lookup(name)
	if p == nil {
		fmt.Fprintf(os.Stderr, "shahin-prof: no runtime profile named %q\n", name)
		os.Exit(1)
	}
	if err := p.WriteTo(f, 0); err != nil {
		f.Close() //shahinvet:allow errcheck — close error is secondary; the write error wins
		fmt.Fprintf(os.Stderr, "shahin-prof: writing %s profile: %v\n", name, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "shahin-prof:", err)
		os.Exit(1)
	}
	return profileSpec{kind: kind, valueType: valueType, path: path}
}

// topTable decodes one raw profile and renders its top-N hot functions
// by flat value.
func topTable(spec profileSpec, n int) (*bench.Table, error) {
	data, err := os.ReadFile(spec.path)
	if err != nil {
		return nil, err
	}
	p, err := prof.Parse(data)
	if err != nil {
		return nil, err
	}
	idx := p.ValueIndex(spec.valueType)
	unit := spec.valueType
	if idx < 0 {
		// Fall back to the profile's last value dimension (the
		// conventional default_sample_type slot).
		idx = len(p.SampleTypes) - 1
	}
	if idx >= 0 && idx < len(p.SampleTypes) {
		unit = p.SampleTypes[idx].Unit
	}
	rows := p.Top(idx, n)
	t := &bench.Table{
		Title:  fmt.Sprintf("Profile %s (%s): top %d functions by flat %s", spec.kind, filepath.Base(spec.path), n, unit),
		Header: []string{"Function", "Flat (" + unit + ")", "Cum (" + unit + ")"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("%d", r.Flat), fmt.Sprintf("%d", r.Cum))
	}
	if len(rows) == 0 {
		t.AddNote("profile recorded no samples at this workload scale")
	}
	return t, nil
}

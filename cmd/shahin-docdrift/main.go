// Command shahin-docdrift runs the doc-drift gate from the command
// line: it inventories every binary under cmd/ and every flag the
// module registers, then verifies each is documented in OPERATIONS.md
// (flags must appear backticked, `-like-this`). It prints one line per
// missing item and exits 1 on drift, so CI can call it directly:
//
//	go run ./cmd/shahin-docdrift
//	go run ./cmd/shahin-docdrift -dir /path/to/module -ops OPERATIONS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"shahin/internal/docs"
)

func main() {
	var (
		dir = flag.String("dir", ".", "module root to scan")
		ops = flag.String("ops", "OPERATIONS.md", "operator guide path, relative to -dir unless absolute")
	)
	flag.Parse()

	opsPath := *ops
	if !filepath.IsAbs(opsPath) {
		opsPath = filepath.Join(*dir, opsPath)
	}
	missing, err := docs.Check(*dir, opsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shahin-docdrift:", err)
		os.Exit(2)
	}
	for _, m := range missing {
		fmt.Println(m)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "shahin-docdrift: %d undocumented item(s); update OPERATIONS.md\n", len(missing))
		os.Exit(1)
	}
	fmt.Println("shahin-docdrift: OPERATIONS.md covers every binary and flag")
}

// Command shahin-datagen emits one of the built-in synthetic datasets
// (shaped after the paper's five benchmarks) as CSV.
//
// Usage:
//
//	shahin-datagen -dataset census -rows 10000 -seed 1 -o census.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"shahin"
)

func main() {
	var (
		name = flag.String("dataset", "census", "dataset family: "+strings.Join(shahin.DatasetNames(), ", "))
		rows = flag.Int("rows", 10000, "number of tuples (0 = paper scale; beware: up to 4M)")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	d, err := shahin.GenerateDataset(*name, *rows, *seed)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w = f
	}
	if err := shahin.WriteCSV(w, d); err != nil {
		fatal(err)
	}
	if w != os.Stdout {
		// A failed close can lose buffered rows (e.g. ENOSPC); surface it.
		if err := w.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows of %s (%d attributes)\n", d.NumRows(), *name, d.NumAttrs())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shahin-datagen:", err)
	os.Exit(1)
}

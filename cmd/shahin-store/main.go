// Command shahin-store pre-computes explanations for a whole dataset with
// a Shahin batch run and persists them, then serves lookups from the
// store — the pre-compute-then-retrieve deployment the paper's
// introduction motivates.
//
// Usage:
//
//	shahin-store -mode build -dataset census -rows 5000 -n 500 -o exps.gob
//	shahin-store -mode lookup -dataset census -rows 5000 -store exps.gob -tuple 17
//
// Ctrl-C during a build cancels the batch run and flushes the
// explanations finished so far, so a long pre-compute interrupted near
// the end still yields a usable (partial) store.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"shahin"
	"shahin/internal/cli"
)

func main() {
	var (
		mode      = flag.String("mode", "build", "build or lookup")
		name      = flag.String("dataset", "census", "dataset family: "+strings.Join(shahin.DatasetNames(), ", "))
		rows      = flag.Int("rows", 5000, "synthetic rows")
		n         = flag.Int("n", 500, "held-out tuples to pre-compute (build mode)")
		explainer = flag.String("explainer", "lime", "lime, anchor, shap, or sshap")
		out       = flag.String("o", "explanations.gob", "store output path (build mode)")
		storePath = flag.String("store", "explanations.gob", "store path (lookup mode)")
		tupleIdx  = flag.Int("tuple", 0, "held-out tuple index to look up (lookup mode)")
		seed      = flag.Int64("seed", 1, "seed for data, training and explanation")
		obsAddr   = flag.String("obs-addr", "", "serve /metrics, /progress, /trace, /events and /debug/pprof on this address during the build (\":0\" picks a port)")
		traceOut  = flag.String("trace-out", "", "write the JSON span dump to this file when the build finishes")
		eventsOut = flag.String("events-out", "", "write the structured event log (per-explanation provenance) as JSONL when the build finishes")
	)
	flag.Parse()

	var rec *shahin.Recorder
	if *obsAddr != "" || *traceOut != "" || *eventsOut != "" {
		rec = shahin.NewRecorder()
	}
	if *obsAddr != "" {
		srv, err := shahin.ServeMetrics(*obsAddr, rec)
		if err != nil {
			fatal(err)
		}
		defer srv.Close() //shahinvet:allow errcheck — best-effort teardown at exit
		fmt.Printf("observability: http://%s/ (/metrics, /progress, /trace, /events, /debug/pprof/)\n", srv.Addr())
	}

	kind, err := shahin.ParseKind(*explainer)
	if err != nil {
		fatal(err)
	}
	// Both modes rebuild the same deterministic environment from the
	// seed, so lookup indexes refer to the same held-out tuples.
	data, err := shahin.GenerateDataset(*name, *rows, *seed)
	if err != nil {
		fatal(err)
	}
	train, test := shahin.SplitDataset(data, 1.0/3, *seed+1)

	switch *mode {
	case "build":
		stats, err := shahin.ComputeStats(train)
		if err != nil {
			fatal(err)
		}
		model, err := shahin.TrainForest(train, shahin.ForestConfig{NumTrees: 50, Seed: *seed + 2})
		if err != nil {
			fatal(err)
		}
		if *n > test.NumRows() {
			*n = test.NumRows()
		}
		tuples := test.Rows(0, *n)
		batch, err := shahin.NewBatch(stats, model, shahin.Options{Explainer: kind, Seed: *seed + 3, Recorder: rec})
		if err != nil {
			fatal(err)
		}
		// Ctrl-C cancels the run; whatever finished is still flushed. A
		// second Ctrl-C forces an immediate exit without flushing.
		ctx, stop := cli.Shutdown(context.Background())
		res, err := batch.ExplainAllCtx(ctx, tuples)
		stop()
		if res == nil {
			fatal(err)
		}
		doneTuples, doneExps := tuples, res.Explanations
		if err != nil {
			doneTuples, doneExps = cli.Finished(tuples, res.Explanations)
			fmt.Printf("interrupted: flushing %d of %d explanations\n", len(doneExps), len(tuples))
		}
		st, err := shahin.BuildExplanationStore(doneTuples, doneExps)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := st.Save(f); err != nil {
			f.Close() //shahinvet:allow errcheck — close error is secondary; the save error wins
			fatal(err)
		}
		// A failed close can lose buffered store bytes (e.g. ENOSPC).
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s\nstore -> %s\n", res.Report.String(), *out)
		if *traceOut != "" {
			if err := writeArtifact(*traceOut, rec.WriteTrace); err != nil {
				fatal(err)
			}
			fmt.Printf("span dump written to %s\n", *traceOut)
		}
		if *eventsOut != "" {
			if err := writeArtifact(*eventsOut, rec.WriteEvents); err != nil {
				fatal(err)
			}
			fmt.Printf("event log written to %s\n", *eventsOut)
		}

	case "lookup":
		f, err := os.Open(*storePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close() //shahinvet:allow errcheck — read-only close cannot lose data
		st, err := shahin.LoadExplanationStore(f)
		if err != nil {
			fatal(err)
		}
		if *tupleIdx < 0 || *tupleIdx >= test.NumRows() {
			fatal(fmt.Errorf("tuple index %d outside held-out set [0,%d)", *tupleIdx, test.NumRows()))
		}
		tuple := test.Row(*tupleIdx, nil)
		exp, ok := st.Get(tuple)
		if !ok {
			fatal(fmt.Errorf("tuple %d not in store (was it within -n at build time?)", *tupleIdx))
		}
		if exp.Rule != nil {
			fmt.Println(exp.Rule.Describe(test.Schema))
			return
		}
		att := exp.Attribution
		fmt.Printf("tuple %d -> class %s:", *tupleIdx, test.Schema.Classes[att.Class])
		for _, a := range att.TopK(5) {
			fmt.Printf(" %s=%.3f", test.Schema.Attrs[a].Name, att.Weights[a])
		}
		fmt.Println()

	default:
		fatal(fmt.Errorf("unknown mode %q (want build or lookup)", *mode))
	}
}

// writeArtifact dumps one recorder artifact (span tree, event log) to
// path.
func writeArtifact(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close() //shahinvet:allow errcheck — close error is secondary; the write error wins
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shahin-store:", err)
	os.Exit(1)
}

module shahin

go 1.22

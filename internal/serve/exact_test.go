package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"shahin/internal/core"
	"shahin/internal/datagen"
	"shahin/internal/dataset"
	"shahin/internal/explain/lime"
	"shahin/internal/obs"
	"shahin/internal/rf"
)

// newForestEnv is the exact-path fixture: the classifier is an owned
// random forest, so ExactAvailable holds on the warm server.
func newForestEnv(t *testing.T, seed int64, batch int) *testEnv {
	t.Helper()
	cfg, err := datagen.Spec("recidivism")
	if err != nil {
		t.Fatal(err)
	}
	d, err := cfg.Generate(1500, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := rf.Train(d, rf.Config{NumTrees: 10, MaxDepth: 6, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{st: st, cls: forest, tuples: d.Rows(0, batch)}
}

// postExplainKind is postExplain with an explicit explainer field.
func postExplainKind(t *testing.T, url string, tuple []float64, kind string) (ExplainResponse, int) {
	t.Helper()
	body, err := json.Marshal(ExplainRequest{Tuple: tuple, Explainer: kind})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ExplainResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding /v1/explain response: %v", err)
	}
	return out, resp.StatusCode
}

// TestServeExactFastPath requests exact SHAP from a LIME-kind server
// over an owned forest: the answer must come from the exact path —
// never the queue — and leave the exact_shap provenance event.
func TestServeExactFastPath(t *testing.T) {
	env := newForestEnv(t, 70, 6)
	opts := core.Options{
		Explainer:  core.LIME,
		LIME:       lime.Config{NumSamples: 300},
		MinSupport: 0.1,
		Tau:        50,
		Seed:       71,
	}
	warm, err := core.NewWarm(env.st, env.cls, opts, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	s, err := New(warm, Config{BatchWindow: time.Millisecond, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test

	out, code := postExplainKind(t, ts.URL, env.tuples[0], "exactshap")
	if code != http.StatusOK {
		t.Fatalf("exact request: HTTP %d", code)
	}
	if out.Source != "exact" || out.Status != "ok" || out.Explanation.Attribution == nil {
		t.Fatalf("exact request: source=%q status=%q attribution=%v",
			out.Source, out.Status, out.Explanation.Attribution)
	}
	if out.Stages == nil || out.Stages.Solve <= 0 {
		t.Fatalf("exact request missing solve-stage attribution: %+v", out.Stages)
	}
	events, _ := rec.Events()
	found := false
	for _, e := range events {
		if e.Type == obs.EventExactShap {
			found = true
			if e.NodeVisits <= 0 || e.Fresh != 1 {
				t.Fatalf("exact_shap event visits=%d fresh=%d", e.NodeVisits, e.Fresh)
			}
		}
	}
	if !found {
		t.Fatal("no exact_shap event emitted")
	}

	// The same tuple without the field still goes through the server's
	// configured LIME pipeline — the fast path is opt-in per request.
	computed, code := postExplain(t, ts.URL, env.tuples[0])
	if code != http.StatusOK || computed.Source != "computed" {
		t.Fatalf("default request: HTTP %d source=%q, want computed", code, computed.Source)
	}

	// Batch requests carry the field too.
	body, err := json.Marshal(BatchRequest{Tuples: env.tuples[1:4], Explainer: "exactshap"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/explain/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var batch BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || batch.Count != 3 {
		t.Fatalf("batch: HTTP %d count=%d", resp.StatusCode, batch.Count)
	}
	for i, e := range batch.Explanations {
		if e.Source != "exact" || e.Explanation.Attribution == nil {
			t.Fatalf("batch tuple %d: source=%q", i, e.Source)
		}
	}
}

// TestServeExactFallsThroughToQueue requests exact SHAP from a server
// whose classifier is opaque: the request must still be answered, via
// the normal queue, with Source "computed".
func TestServeExactFallsThroughToQueue(t *testing.T) {
	env := newEnv(t, 72, 5)
	s, err := New(newWarm(t, env, 73), Config{BatchWindow: time.Millisecond, Recorder: obs.NewRecorder()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test

	out, code := postExplainKind(t, ts.URL, env.tuples[0], "exactshap")
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if out.Source != "computed" || out.Explanation.Attribution == nil {
		t.Fatalf("source=%q, want computed fallback", out.Source)
	}
}

// TestServeExplainerMismatch rejects a named non-exact kind that the
// server was not started with.
func TestServeExplainerMismatch(t *testing.T) {
	env := newEnv(t, 74, 5)
	s, err := New(newWarm(t, env, 75), Config{BatchWindow: time.Millisecond, Recorder: obs.NewRecorder()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test

	if _, code := postExplainKind(t, ts.URL, env.tuples[0], "anchor"); code != http.StatusBadRequest {
		t.Fatalf("mismatched explainer: HTTP %d, want 400", code)
	}
	if _, code := postExplainKind(t, ts.URL, env.tuples[0], "nonsense"); code != http.StatusBadRequest {
		t.Fatalf("unknown explainer: HTTP %d, want 400", code)
	}
	// The server's own kind is always accepted by name.
	if out, code := postExplainKind(t, ts.URL, env.tuples[0], "lime"); code != http.StatusOK || out.Source != "computed" {
		t.Fatalf("matching explainer: HTTP %d source=%q", code, out.Source)
	}
}

// Package serve implements the online explanation service behind
// cmd/shahin-serve: an HTTP API whose requests flow through a
// micro-batching admission queue into a single long-lived core.Warm
// explainer, so tuples from unrelated requests share one warm pool of
// frequent itemsets, pre-labelled perturbations, and cached labels.
//
// Requests are accumulated until either BatchWindow elapses or BatchMax
// tuples are queued, then the whole batch is flushed as one
// Warm.ExplainAllCtx call. The warm pool persists across flushes and is
// re-mined on the Warm explainer's staleness schedule, so steady-state
// flushes spend no classifier calls on pool construction. An optional
// explanation store (internal/store) answers exact-repeat tuples at
// lookup latency before they ever reach the queue, is restored from
// disk at startup, and is snapshotted back on graceful drain.
//
// Determinism: one flush is deterministic in its composition — the same
// sequence of flush compositions yields byte-identical explanations
// (see core.Warm). How concurrent requests group into flushes is
// timing-dependent; DESIGN.md §11 spells out the exact guarantee.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"shahin/internal/cli"
	"shahin/internal/core"
	"shahin/internal/obs"
	"shahin/internal/store"
)

// Config tunes the admission queue and warm store of a Server. Zero
// values select the noted defaults.
type Config struct {
	// BatchWindow is how long the first queued request waits for
	// companions before a partial batch is flushed (default 10ms).
	BatchWindow time.Duration
	// BatchMax flushes a batch immediately once this many tuples are
	// queued, without waiting out the window (default 64).
	BatchMax int
	// QueueCap bounds the admission queue; requests beyond it are
	// rejected with 503 instead of queuing unboundedly (default 1024).
	QueueCap int
	// RequestTimeout bounds how long one request may wait for its
	// explanation, queue time included. The latest deadline of a flush's
	// requests also bounds the flush itself, threading into the
	// fault-chain cancellation ladder: a flush that outlives every
	// waiter is cancelled and its unattempted tuples marked failed.
	// 0 disables deadlines.
	RequestTimeout time.Duration
	// StorePath, when set, names the explanation-store snapshot: loaded
	// on New if the file exists, written back on Drain. Empty disables
	// persistence (the in-memory store still answers repeats).
	StorePath string
	// Recorder receives serving metrics, spans, and events; nil disables
	// instrumentation. Pass the same recorder in the Warm explainer's
	// Options so pipeline and serving telemetry land in one place.
	Recorder *obs.Recorder
}

// withDefaults fills zero Config fields.
func (c Config) withDefaults() Config {
	if c.BatchWindow <= 0 {
		c.BatchWindow = 10 * time.Millisecond
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	return c
}

// request is one admitted tuple waiting for its flush.
type request struct {
	tuple []float64
	ctx   context.Context
	enq   time.Time
	done  chan outcome
}

// outcome is what a flush delivers back to a waiting request.
type outcome struct {
	exp core.Explanation
	err error
	// bd is the request's latency attribution: queue wait and batch
	// assembly measured here, pool/classify/solve inherited from the
	// flush's core breakdowns (zero when the run had no recorder).
	bd obs.StageBreakdown
	// flush is the warm-flush sequence number that answered the request,
	// joining its trace to the shared fan-in (0 for store hits).
	flush int
}

// Server owns the admission queue, the warm explainer, and the
// explanation store. Create one with New, mount Handler on an HTTP
// server, and call Drain on shutdown.
type Server struct {
	cfg  Config
	warm *core.Warm
	rec  *obs.Recorder

	// admitMu makes admission and drain mutually exclusive: admitters
	// hold it shared while sending, Drain holds it exclusively while
	// flipping draining and closing the queue, so no send can race the
	// close.
	admitMu sync.RWMutex
	queue   chan *request
	depth   atomic.Int64 // queued tuples, mirrored into GaugeServeQueueDepth

	storeMu sync.RWMutex
	store   *store.Store

	lifecycle context.Context
	endLife   context.CancelFunc
	batcherWG sync.WaitGroup

	ready    atomic.Bool
	draining atomic.Bool
	drainOne sync.Once
	drainErr error
}

// New builds a Server around a warm explainer, restores the explanation
// store from cfg.StorePath when the snapshot exists, and starts the
// batcher goroutine. The caller keeps ownership of warm (for Report()
// and friends) but must route all explanation traffic through the
// Server while it is running.
func New(warm *core.Warm, cfg Config) (*Server, error) {
	if warm == nil {
		return nil, errors.New("serve: New needs a warm explainer")
	}
	cfg = cfg.withDefaults()
	st := store.New()
	if cfg.StorePath != "" {
		f, err := os.Open(cfg.StorePath)
		switch {
		case err == nil:
			st, err = store.Load(f)
			f.Close() //shahinvet:allow errcheck — read-only close cannot lose data
			if err != nil {
				return nil, fmt.Errorf("serve: restoring store %s: %w", cfg.StorePath, err)
			}
		case !errors.Is(err, os.ErrNotExist):
			return nil, fmt.Errorf("serve: opening store %s: %w", cfg.StorePath, err)
		}
	}
	// The lifecycle root is deliberately detached from any request
	// context: it ends when Close runs, not when a caller gives up.
	ctx, cancel := context.WithCancel(obs.RootContext())
	s := &Server{
		cfg:       cfg,
		warm:      warm,
		rec:       cfg.Recorder,
		queue:     make(chan *request, cfg.QueueCap),
		store:     st,
		lifecycle: ctx,
		endLife:   cancel,
	}
	// Publish the restored store size up front so the gauge is truthful
	// before the first flush lands.
	s.rec.Gauge(obs.GaugeServeStoreSize).Set(int64(st.Len()))
	s.batcherWG.Add(1)
	go s.runBatcher()
	s.ready.Store(true)
	return s, nil
}

// StoreLen reports how many explanations the warm store currently holds.
func (s *Server) StoreLen() int {
	s.storeMu.RLock()
	defer s.storeMu.RUnlock()
	return s.store.Len()
}

// lookup answers a tuple from the explanation store, if present.
func (s *Server) lookup(tuple []float64) (core.Explanation, bool) {
	s.storeMu.RLock()
	defer s.storeMu.RUnlock()
	return s.store.Get(tuple)
}

// admit enqueues one tuple for the next flush. It fails when the server
// is draining or the queue is full; the caller maps both to 503.
func (s *Server) admit(ctx context.Context, tuple []float64) (*request, error) {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		return nil, errDraining
	}
	req := &request{
		tuple: tuple,
		ctx:   ctx,
		enq:   time.Now(), //shahinvet:allow walltime — queue-wait latency feeds the serving histograms
		done:  make(chan outcome, 1),
	}
	select {
	case s.queue <- req:
		s.rec.Gauge(obs.GaugeServeQueueDepth).Set(s.depth.Add(1))
		return req, nil
	default:
		s.rec.Counter(obs.CounterServeRejected).Inc()
		return nil, errQueueFull
	}
}

var (
	errDraining  = errors.New("serve: draining, not accepting new requests")
	errQueueFull = errors.New("serve: admission queue full")
)

// runBatcher is the single consumer of the admission queue: it gathers
// requests into batches bounded by BatchWindow and BatchMax and flushes
// each batch through the warm explainer.
func (s *Server) runBatcher() {
	defer s.batcherWG.Done()
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := []*request{first}
		timer := time.NewTimer(s.cfg.BatchWindow)
	gather:
		for len(batch) < s.cfg.BatchMax {
			select {
			case req, open := <-s.queue:
				if !open {
					break gather
				}
				batch = append(batch, req)
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		s.rec.Gauge(obs.GaugeServeQueueDepth).Set(s.depth.Add(-int64(len(batch))))
		s.flush(batch)
	}
}

// flush explains one batch of admitted requests as a single warm-pool
// call and delivers each request its explanation.
func (s *Server) flush(batch []*request) {
	start := time.Now() //shahinvet:allow walltime — flush latency feeds the serving event log
	var waitHist, flushHist *obs.Histogram
	if s.rec != nil {
		waitHist = s.rec.Histogram(obs.HistServeWait)
		flushHist = s.rec.Histogram(obs.HistServeFlushSize)
	}

	// Requests whose waiter already gave up (deadline, disconnect) are
	// answered with their context error instead of spending compute.
	live := batch[:0:len(batch)]
	for _, req := range batch {
		if waitHist != nil {
			waitHist.Observe(start.Sub(req.enq))
		}
		if err := req.ctx.Err(); err != nil {
			s.rec.Counter(obs.CounterServeTimeouts).Inc()
			req.done <- outcome{err: err}
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}

	// The flush context outlives any single request only up to the
	// latest per-request deadline: past that point nobody is waiting,
	// so the fault ladder's cancellation path kicks in and the
	// remaining tuples come back StatusFailed.
	fctx := s.lifecycle
	if s.cfg.RequestTimeout > 0 {
		latest := live[0].enq
		for _, req := range live[1:] {
			if req.enq.After(latest) {
				latest = req.enq
			}
		}
		var cancel context.CancelFunc
		fctx, cancel = context.WithDeadline(fctx, latest.Add(s.cfg.RequestTimeout))
		defer cancel()
	}

	tuples := make([][]float64, len(live))
	for i, req := range live {
		tuples[i] = req.tuple
	}
	res, err := s.warm.ExplainAllCtx(fctx, tuples)
	if res == nil {
		for _, req := range live {
			req.done <- outcome{err: err}
		}
		return
	}
	cli.FailUnattempted(res.Explanations)

	s.storeMu.Lock()
	for i, req := range live {
		if res.Explanations[i].Status != core.StatusFailed {
			s.store.Put(req.tuple, res.Explanations[i])
		}
	}
	s.rec.Gauge(obs.GaugeServeStoreSize).Set(int64(s.store.Len()))
	s.storeMu.Unlock()

	// Latency attribution: each request inherits its tuple's core stage
	// breakdown (pool_sample / classify / solve), plus the two stages
	// only the serving layer can see — time queued before the flush
	// started, and the flush residue (batching, store writes, fan-out)
	// not attributed to any core stage. Core already observed its stages
	// into the histograms, so only the serving stages are observed here.
	deliver := time.Now() //shahinvet:allow walltime — flush latency attribution feeds the serving histograms
	flushDur := deliver.Sub(start)
	for i, req := range live {
		var bd obs.StageBreakdown
		if res.Breakdowns != nil {
			bd = res.Breakdowns[i]
		}
		bd.QueueWait = start.Sub(req.enq)
		if bd.QueueWait < 0 {
			bd.QueueWait = 0
		}
		bd.BatchAssembly = flushDur - bd.PoolSample - bd.Classify - bd.Solve
		if bd.BatchAssembly < 0 {
			bd.BatchAssembly = 0
		}
		s.rec.ObserveStages(obs.StageBreakdown{QueueWait: bd.QueueWait, BatchAssembly: bd.BatchAssembly})
		req.done <- outcome{exp: res.Explanations[i], bd: bd, flush: res.Flush}
	}

	s.rec.Counter(obs.CounterServeFlushes).Inc()
	if flushHist != nil {
		// Units are tuples, not time: the log2 histogram just needs an
		// integer-valued observation.
		flushHist.Observe(time.Duration(len(live)))
	}
	s.rec.Emit(obs.Event{
		Type: obs.EventServeFlush, Tuple: -1,
		Itemsets: len(live),
		Pooled:   res.Report.ReusedSamples,
		Fresh:    res.Report.Invocations,
		DurMS:    float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// Drain shuts the server down gracefully: readiness flips to false, new
// admissions are rejected, the requests already queued are flushed and
// answered, and the explanation store is snapshotted to StorePath. It
// is idempotent; concurrent calls share one drain. The context bounds
// only the wait for in-flight flushes — the store snapshot is always
// attempted so answered work is never lost.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOne.Do(func() {
		s.ready.Store(false)
		s.admitMu.Lock()
		s.draining.Store(true)
		close(s.queue)
		s.admitMu.Unlock()
		queued := int(s.depth.Load())

		flushed := make(chan struct{})
		go func() {
			s.batcherWG.Wait()
			close(flushed)
		}()
		select {
		case <-flushed:
		case <-ctx.Done():
			s.drainErr = fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
		}
		s.endLife()

		s.rec.Emit(obs.Event{Type: obs.EventServeDrain, Tuple: -1, Itemsets: queued})
		if err := s.saveStore(); err != nil && s.drainErr == nil {
			s.drainErr = err
		}
	})
	return s.drainErr
}

// maxPeerSnapshotBytes bounds a peer snapshot download (64 MiB — far
// above any store a bench or serving deployment produces today).
const maxPeerSnapshotBytes = 64 << 20

// RestoreFromPeers warms this server's explanation store from a ring
// neighbour: it fetches GET <peer>/snapshot from each peer URL in
// order and installs the first snapshot that passes the transport
// checksum, the schema-version gate, and store.Load's own header
// validation. The installed snapshot replaces the current store
// wholesale, so call it right after New — before traffic — on a
// restarted replica. It returns the number of explanations restored.
func (s *Server) RestoreFromPeers(ctx context.Context, peers []string, client *http.Client) (int, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var errs []error
	for _, peer := range peers {
		n, err := s.restoreFromPeer(ctx, peer, client)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", peer, err))
			continue
		}
		return n, nil
	}
	if len(errs) == 0 {
		return 0, errors.New("serve: RestoreFromPeers: no peers given")
	}
	return 0, fmt.Errorf("serve: no peer could supply a snapshot: %w", errors.Join(errs...))
}

// restoreFromPeer fetches and installs one peer's snapshot.
func (s *Server) restoreFromPeer(ctx context.Context, peer string, client *http.Client) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/snapshot", nil)
	if err != nil {
		return 0, fmt.Errorf("building snapshot request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("fetching snapshot: %w", err)
	}
	defer resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("snapshot endpoint answered %s", resp.Status)
	}
	if v := resp.Header.Get(headerStoreVersion); v != "" && v != strconv.FormatUint(uint64(store.SnapshotVersion), 10) {
		return 0, fmt.Errorf("peer snapshot schema version %s, this binary reads version %d", v, store.SnapshotVersion)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerSnapshotBytes+1))
	if err != nil {
		return 0, fmt.Errorf("reading snapshot body: %w", err)
	}
	if len(body) > maxPeerSnapshotBytes {
		return 0, fmt.Errorf("snapshot body exceeds the %d-byte cap", maxPeerSnapshotBytes)
	}
	if want := resp.Header.Get(headerStoreChecksum); want != "" {
		if got := fmt.Sprintf("%016x", store.Fingerprint(body)); got != want {
			return 0, fmt.Errorf("snapshot transport checksum mismatch: header %s, body %s", want, got)
		}
	}
	st, err := store.Load(bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("decoding snapshot: %w", err)
	}
	s.storeMu.Lock()
	s.store = st
	s.storeMu.Unlock()
	s.rec.Gauge(obs.GaugeServeStoreSize).Set(int64(st.Len()))
	return st.Len(), nil
}

// saveStore snapshots the explanation store to StorePath (no-op when
// persistence is disabled). The write goes through a temp file and
// rename so a crash mid-snapshot never truncates the previous one.
func (s *Server) saveStore() error {
	if s.cfg.StorePath == "" {
		return nil
	}
	s.storeMu.RLock()
	defer s.storeMu.RUnlock()
	tmp := s.cfg.StorePath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serve: snapshotting store: %w", err)
	}
	if err := s.store.Save(f); err != nil {
		f.Close()      //shahinvet:allow errcheck — close error is secondary; the write error wins
		os.Remove(tmp) //shahinvet:allow errcheck — best-effort cleanup of the failed snapshot
		return fmt.Errorf("serve: snapshotting store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //shahinvet:allow errcheck — best-effort cleanup of the failed snapshot
		return fmt.Errorf("serve: snapshotting store: %w", err)
	}
	if err := os.Rename(tmp, s.cfg.StorePath); err != nil {
		return fmt.Errorf("serve: snapshotting store: %w", err)
	}
	return nil
}

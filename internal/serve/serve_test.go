package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"shahin/internal/core"
	"shahin/internal/datagen"
	"shahin/internal/dataset"
	"shahin/internal/explain/lime"
	"shahin/internal/obs"
	"shahin/internal/rf"
)

// testEnv bundles the fixtures the serving tests share.
type testEnv struct {
	st     *dataset.Stats
	cls    rf.Classifier
	tuples [][]float64
}

func newEnv(t *testing.T, seed int64, batch int) *testEnv {
	t.Helper()
	cfg := &datagen.Config{
		Name: "serve",
		Cat: []datagen.CatSpec{
			{Card: 4, Skew: 1.2}, {Card: 3, Skew: 1.0}, {Card: 5, Skew: 1.2},
			{Card: 4, Skew: 1.0}, {Card: 6, Skew: 1.4},
		},
		Num: []datagen.NumSpec{{Mean: 0, Std: 1}},
	}
	d, err := cfg.Generate(4000, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	cls := rf.Func{Classes: 2, F: func(x []float64) int {
		if int(x[0]) == 0 {
			return 1
		}
		return 0
	}}
	return &testEnv{st: st, cls: cls, tuples: d.Rows(0, batch)}
}

func newWarm(t *testing.T, env *testEnv, seed int64) *core.Warm {
	t.Helper()
	opts := core.Options{
		Explainer:  core.LIME,
		LIME:       lime.Config{NumSamples: 300},
		MinSupport: 0.1,
		Tau:        50,
		Seed:       seed,
	}
	w, err := core.NewWarm(env.st, env.cls, opts, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// postExplain sends one tuple to /v1/explain and decodes the response.
func postExplain(t *testing.T, url string, tuple []float64) (ExplainResponse, int) {
	t.Helper()
	body, err := json.Marshal(ExplainRequest{Tuple: tuple})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ExplainResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding /v1/explain response: %v", err)
	}
	return out, resp.StatusCode
}

// TestServeSingleThenStoreHit answers one tuple through a flush, then
// repeats it and requires the store fast path to answer.
func TestServeSingleThenStoreHit(t *testing.T) {
	env := newEnv(t, 1, 10)
	rec := obs.NewRecorder()
	s, err := New(newWarm(t, env, 1), Config{BatchWindow: time.Millisecond, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test

	first, code := postExplain(t, ts.URL, env.tuples[0])
	if code != http.StatusOK {
		t.Fatalf("first request: HTTP %d", code)
	}
	if first.Source != "computed" || first.Status != "ok" || first.Explanation.Attribution == nil {
		t.Fatalf("first request: source=%q status=%q attribution=%v", first.Source, first.Status, first.Explanation.Attribution)
	}
	again, code := postExplain(t, ts.URL, env.tuples[0])
	if code != http.StatusOK || again.Source != "store" {
		t.Fatalf("repeat request: HTTP %d source=%q, want store hit", code, again.Source)
	}
	if got := rec.Counter(obs.CounterServeStoreHits).Value(); got != 1 {
		t.Fatalf("store-hit counter = %d, want 1", got)
	}
	if s.StoreLen() != 1 {
		t.Fatalf("StoreLen = %d, want 1", s.StoreLen())
	}
}

// TestServeBatchSharesFlushes drives concurrent requests through a wide
// batch window and requires them to group into fewer flushes than
// requests — the whole point of the admission queue.
func TestServeBatchSharesFlushes(t *testing.T) {
	env := newEnv(t, 2, 40)
	warm := newWarm(t, env, 2)
	rec := obs.NewRecorder()
	s, err := New(warm, Config{BatchWindow: 50 * time.Millisecond, BatchMax: 64, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test

	var wg sync.WaitGroup
	codes := make([]int, len(env.tuples))
	for i, tuple := range env.tuples {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, codes[i] = postExplain(t, ts.URL, tuple)
		}()
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: HTTP %d", i, code)
		}
	}
	if f := warm.Flushes(); f >= len(env.tuples)/2 {
		t.Fatalf("%d requests took %d flushes; micro-batching is not grouping", len(env.tuples), f)
	}
	if rep := warm.Report(); rep.ReusedSamples == 0 {
		t.Fatalf("no cross-request sample reuse through the warm pool")
	}
	if got := rec.Counter(obs.CounterServeFlushes).Value(); got != int64(warm.Flushes()) {
		t.Fatalf("flush counter = %d, warm reports %d", got, warm.Flushes())
	}
}

// TestServeBatchEndpoint exercises POST /v1/explain/batch ordering and
// the per-tuple response statuses.
func TestServeBatchEndpoint(t *testing.T) {
	env := newEnv(t, 3, 12)
	s, err := New(newWarm(t, env, 3), Config{BatchWindow: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test

	body, err := json.Marshal(BatchRequest{Tuples: env.tuples})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/explain/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch endpoint: HTTP %d", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != len(env.tuples) || len(out.Explanations) != len(env.tuples) {
		t.Fatalf("batch answered %d/%d tuples", len(out.Explanations), len(env.tuples))
	}
	for i, e := range out.Explanations {
		if e.Status != "ok" || e.Explanation.Attribution == nil {
			t.Fatalf("batch tuple %d: status=%q", i, e.Status)
		}
	}
}

// TestServeDrainAnswersQueuedAndSnapshotsStore is the graceful-drain
// contract: queued requests are flushed and answered, the store lands
// on disk, readiness flips, and new requests are rejected.
func TestServeDrainAnswersQueuedAndSnapshotsStore(t *testing.T) {
	env := newEnv(t, 4, 9)
	// The first 8 tuples are explained through the queue; the 9th stays
	// unseen so the post-drain probe cannot hit the store fast path.
	extra := env.tuples[8]
	env.tuples = env.tuples[:8]
	storePath := filepath.Join(t.TempDir(), "serve.store")
	rec := obs.NewRecorder()
	// A wide window so the requests are still queued when Drain starts.
	s, err := New(newWarm(t, env, 4), Config{BatchWindow: 2 * time.Second, BatchMax: 64, StorePath: storePath, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: HTTP %d", code)
	}
	var wg sync.WaitGroup
	results := make([]ExplainResponse, len(env.tuples))
	codes := make([]int, len(env.tuples))
	for i, tuple := range env.tuples {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], codes[i] = postExplain(t, ts.URL, tuple)
		}()
	}
	// Give the requests time to enqueue, then drain while they wait out
	// the long batch window.
	deadline := time.Now().Add(2 * time.Second)
	for s.depth.Load() < int64(len(env.tuples)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := s.Drain(t.Context()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK || results[i].Status != "ok" {
			t.Fatalf("queued request %d after drain: HTTP %d status=%q", i, code, results[i].Status)
		}
	}

	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: HTTP %d, want 503", code)
	}
	if code := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during drain: HTTP %d, want 200", code)
	}
	if _, code := postExplain(t, ts.URL, extra); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: HTTP %d, want 503", code)
	}
	// Store hits are read-only and keep answering during drain.
	if out, code := postExplain(t, ts.URL, env.tuples[0]); code != http.StatusOK || out.Source != "store" {
		t.Fatalf("post-drain store hit: HTTP %d source=%q, want 200/store", code, out.Source)
	}

	if _, err := os.Stat(storePath); err != nil {
		t.Fatalf("store snapshot missing: %v", err)
	}
	events, _ := rec.Events()
	var drains int
	for _, e := range events {
		if e.Type == obs.EventServeDrain {
			drains++
		}
	}
	if drains != 1 {
		t.Fatalf("serve_drain events = %d, want 1", drains)
	}

	// A fresh server restores the snapshot and answers the same tuples
	// from the store without a single flush.
	warm2 := newWarm(t, env, 4)
	s2, err := New(warm2, Config{StorePath: storePath})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Drain(t.Context()) //shahinvet:allow errcheck — second drain is teardown only
	if s2.StoreLen() != len(env.tuples) {
		t.Fatalf("restored store holds %d explanations, want %d", s2.StoreLen(), len(env.tuples))
	}
	out, code := postExplain(t, ts2.URL, env.tuples[3])
	if code != http.StatusOK || out.Source != "store" {
		t.Fatalf("restored lookup: HTTP %d source=%q", code, out.Source)
	}
	if warm2.Flushes() != 0 {
		t.Fatalf("restored store hit still flushed %d times", warm2.Flushes())
	}

	// The snapshot must be byte-stable: draining the restored server
	// rewrites an identical file (store contents unchanged).
	before, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("store snapshot not deterministic across save/load/save")
	}
}

// TestServeRequestTimeout bounds a request's wait: with a microscopic
// deadline and a long batch window, the request times out with 504.
func TestServeRequestTimeout(t *testing.T) {
	env := newEnv(t, 5, 4)
	rec := obs.NewRecorder()
	s, err := New(newWarm(t, env, 5), Config{
		BatchWindow:    500 * time.Millisecond,
		RequestTimeout: 5 * time.Millisecond,
		Recorder:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test

	out, code := postExplain(t, ts.URL, env.tuples[0])
	if code != http.StatusGatewayTimeout || out.Status != "failed" {
		t.Fatalf("timed-out request: HTTP %d status=%q, want 504/failed", code, out.Status)
	}
	if rec.Counter(obs.CounterServeTimeouts).Value() == 0 {
		t.Fatalf("timeout counter not incremented")
	}
}

// TestServeRejectsWhenQueueFull caps admission at QueueCap.
func TestServeRejectsWhenQueueFull(t *testing.T) {
	env := newEnv(t, 6, 8)
	rec := obs.NewRecorder()
	s, err := New(newWarm(t, env, 6), Config{
		BatchWindow: 2 * time.Second, // park the batcher on the window
		BatchMax:    64,
		QueueCap:    2,
		Recorder:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test

	// Fill the queue directly (the batcher takes one for its pending
	// batch, so overfill by a few to guarantee a rejection).
	rejected := 0
	for i := 0; i < 6; i++ {
		if _, err := s.admit(t.Context(), env.tuples[i%len(env.tuples)]); err != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatalf("no admissions rejected with QueueCap=2")
	}
	if rec.Counter(obs.CounterServeRejected).Value() == 0 {
		t.Fatalf("rejection counter not incremented")
	}
}

// TestServeBadRequests covers the 400 paths.
func TestServeBadRequests(t *testing.T) {
	env := newEnv(t, 7, 2)
	s, err := New(newWarm(t, env, 7), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test

	for _, tc := range []struct{ path, body string }{
		{"/v1/explain", `{"tuple": []}`},
		{"/v1/explain", `{"tuple": [1, 2]}`}, // wrong width for the schema
		{"/v1/explain", `not json`},
		{"/v1/explain", `{"unknown_field": 1}`},
		{"/v1/explain/batch", `{"tuples": []}`},
		{"/v1/explain/batch", `{"tuples": [[1]]}`},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s %q: HTTP %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
}

// getStatus GETs a URL and returns the status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestServeConfigDefaults pins the documented defaults.
func TestServeConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	want := fmt.Sprintf("%v/%d/%d", 10*time.Millisecond, 64, 1024)
	got := fmt.Sprintf("%v/%d/%d", c.BatchWindow, c.BatchMax, c.QueueCap)
	if got != want {
		t.Fatalf("defaults = %s, want %s", got, want)
	}
}

// TestServeStoreSizeGauge: the store-size gauge is truthful at startup
// (restored snapshots included) and after each flush's store writes.
func TestServeStoreSizeGauge(t *testing.T) {
	env := newEnv(t, 9, 10)
	rec := obs.NewRecorder()
	s, err := New(newWarm(t, env, 9), Config{BatchWindow: time.Millisecond, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test

	g := rec.Gauge(obs.GaugeServeStoreSize)
	if g.Value() != 0 {
		t.Fatalf("gauge at startup = %d, want 0", g.Value())
	}
	for i := 0; i < 3; i++ {
		if _, code := postExplain(t, ts.URL, env.tuples[i]); code != http.StatusOK {
			t.Fatalf("request %d: HTTP %d", i, code)
		}
		if got := g.Value(); got != int64(s.StoreLen()) {
			t.Fatalf("after request %d: gauge = %d, StoreLen = %d", i, got, s.StoreLen())
		}
	}
	if g.Value() != 3 {
		t.Fatalf("gauge after 3 distinct tuples = %d, want 3", g.Value())
	}
	// A store hit leaves the size unchanged.
	if _, code := postExplain(t, ts.URL, env.tuples[0]); code != http.StatusOK {
		t.Fatal("repeat request failed")
	}
	if g.Value() != 3 {
		t.Fatalf("gauge after store hit = %d, want 3", g.Value())
	}
}

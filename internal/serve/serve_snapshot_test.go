package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"shahin/internal/rf"
	"shahin/internal/store"
)

// httpBody captures the parts of a raw HTTP answer these tests assert.
type httpBody struct {
	code        int
	contentType string
	retryAfter  string
	raw         []byte
}

// postJSON posts a raw JSON body and returns the undecoded answer.
func postJSON(url, body string) (httpBody, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return httpBody{}, err
	}
	defer resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return httpBody{}, err
	}
	return httpBody{
		code:        resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		raw:         raw,
	}, nil
}

// mustUnmarshal decodes raw JSON or fails the test.
func mustUnmarshal(t *testing.T, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("unmarshalling %q: %v", raw, err)
	}
}

// gatedClassifier returns a classifier whose first Predict call closes
// entered and every call blocks until release is closed, so a test can
// hold a flush in flight deterministically.
func gatedClassifier(entered, release chan struct{}) rf.Func {
	var once sync.Once
	return rf.Func{Classes: 2, F: func(x []float64) int {
		once.Do(func() { close(entered) })
		<-release
		if int(x[0]) == 0 {
			return 1
		}
		return 0
	}}
}

// TestServeDrainRejects503JSON: a request arriving while the server is
// mid-drain is answered immediately with a 503, a JSON body naming the
// reason, and a Retry-After header — never a hung connection.
func TestServeDrainRejects503JSON(t *testing.T) {
	env := newEnv(t, 31, 4)
	entered := make(chan struct{})
	release := make(chan struct{})
	env.cls = gatedClassifier(entered, release)
	s, err := New(newWarm(t, env, 31), Config{BatchWindow: time.Millisecond, BatchMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Park a flush inside the classifier so the drain stays in flight.
	inFlight := make(chan int, 1)
	go func() {
		_, code := postExplain(t, ts.URL, env.tuples[0])
		inFlight <- code
	}()
	<-entered

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(t.Context()) }()
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}

	// The server is draining and its batcher is busy: a fresh tuple must
	// be turned away right now, with the full JSON contract.
	body, err := postJSON(ts.URL+"/v1/explain", `{"tuple": [1,1,1,1,1,0.5]}`)
	if err != nil {
		t.Fatal(err)
	}
	if body.code != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain request: HTTP %d, want 503", body.code)
	}
	if ct := body.contentType; !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("mid-drain request: Content-Type %q, want application/json", ct)
	}
	if body.retryAfter == "" {
		t.Fatal("mid-drain request: no Retry-After header")
	}
	var resp ExplainResponse
	mustUnmarshal(t, body.raw, &resp)
	if resp.Source != "rejected" || !strings.Contains(resp.Error, "draining") {
		t.Fatalf("mid-drain request: source=%q error=%q, want rejected/draining", resp.Source, resp.Error)
	}

	// Release the flush: the in-flight request is still answered (drain
	// never drops admitted work) and the drain completes cleanly.
	close(release)
	if code := <-inFlight; code != http.StatusOK {
		t.Fatalf("in-flight request: HTTP %d, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServeShedsWithRetryAfter: a full admission queue is load-shed
// with 429 + Retry-After (the replica is saturated, not going away).
func TestServeShedsWithRetryAfter(t *testing.T) {
	env := newEnv(t, 32, 4)
	entered := make(chan struct{})
	release := make(chan struct{})
	env.cls = gatedClassifier(entered, release)
	s, err := New(newWarm(t, env, 32), Config{BatchWindow: time.Millisecond, BatchMax: 1, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		_, code := postExplain(t, ts.URL, env.tuples[0])
		first <- code
	}()
	<-entered // the batcher is parked inside the flush

	// Fill the single queue slot directly, then overflow it over HTTP.
	if _, err := s.admit(t.Context(), env.tuples[1]); err != nil {
		t.Fatalf("filling queue: %v", err)
	}
	body, err := postJSON(ts.URL+"/v1/explain", `{"tuple": [1,1,1,1,1,0.5]}`)
	if err != nil {
		t.Fatal(err)
	}
	if body.code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: HTTP %d, want 429", body.code)
	}
	if body.retryAfter == "" {
		t.Fatal("overflow request: no Retry-After header")
	}
	var resp ExplainResponse
	mustUnmarshal(t, body.raw, &resp)
	if resp.Source != "rejected" || !strings.Contains(resp.Error, "queue full") {
		t.Fatalf("overflow request: source=%q error=%q, want rejected/queue full", resp.Source, resp.Error)
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request: HTTP %d, want 200", code)
	}
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotEndpointAndPeerRestore: GET /snapshot serves the store in
// the versioned format with transport headers, and a fresh server warms
// from it through RestoreFromPeers, answering the restored tuple from
// its store without recomputing.
func TestSnapshotEndpointAndPeerRestore(t *testing.T) {
	env := newEnv(t, 33, 4)
	a, err := New(newWarm(t, env, 33), Config{BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	defer a.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test

	if _, code := postExplain(t, tsA.URL, env.tuples[0]); code != http.StatusOK {
		t.Fatalf("seeding request: HTTP %d", code)
	}

	resp, err := http.Get(tsA.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot: HTTP %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v := resp.Header.Get(headerStoreVersion); v != "1" {
		t.Fatalf("%s=%q, want 1", headerStoreVersion, v)
	}
	if resp.Header.Get(headerStoreChecksum) == "" {
		t.Fatalf("missing %s header", headerStoreChecksum)
	}
	if c := resp.Header.Get(headerStoreCount); c != "1" {
		t.Fatalf("%s=%q, want 1", headerStoreCount, c)
	}
	st, err := store.Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decoding /snapshot body: %v", err)
	}
	if st.Len() != 1 {
		t.Fatalf("snapshot holds %d entries, want 1", st.Len())
	}

	// A fresh peer warms from A and serves the tuple from its store.
	b, err := New(newWarm(t, env, 33), Config{BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	defer b.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test
	n, err := b.RestoreFromPeers(t.Context(), []string{tsA.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("RestoreFromPeers restored %d entries, want 1", n)
	}
	out, code := postExplain(t, tsB.URL, env.tuples[0])
	if code != http.StatusOK || out.Source != "store" {
		t.Fatalf("restored tuple: HTTP %d source=%q, want 200/store", code, out.Source)
	}

	// A peer serving a corrupted body must be rejected, and the error
	// must name the checksum, not a gob panic.
	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set(headerStoreChecksum, "0000000000000000")
		w.Write(raw) //shahinvet:allow errcheck — test fixture write
	}))
	defer corrupt.Close()
	if _, err := b.RestoreFromPeers(t.Context(), []string{corrupt.URL}, nil); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt peer: err=%v, want checksum error", err)
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"shahin/internal/core"
	"shahin/internal/obs"
	"shahin/internal/store"
)

// ExplainRequest is the POST /v1/explain body: one raw tuple in the
// dataset's column order (categorical cells as value indices, numeric
// cells as values — the same encoding shahin-datagen CSVs use).
//
// Explainer optionally names the explainer to answer with. Empty means
// the server's configured kind. "exactshap" requests the exact TreeSHAP
// fast path: when the backend qualifies (owned tree ensemble, no fault
// chain) the tuple is answered directly — no queueing, no perturbation
// sampling — with Source "exact"; otherwise it falls through to the
// admission queue and the server's configured kind answers. Any other
// name must match the server's kind or the request is rejected with
// 400.
type ExplainRequest struct {
	Tuple     []float64 `json:"tuple"`
	Explainer string    `json:"explainer,omitempty"`
}

// BatchRequest is the POST /v1/explain/batch body. Explainer applies to
// every tuple in the batch, with the same semantics as
// ExplainRequest.Explainer.
type BatchRequest struct {
	Tuples    [][]float64 `json:"tuples"`
	Explainer string      `json:"explainer,omitempty"`
}

// ExplainResponse is the per-tuple answer. Status mirrors
// core.Explanation.Status ("ok", "degraded", "failed"); Source is
// "store" for exact-repeat hits answered from the explanation store,
// "exact" for tuples answered by the exact TreeSHAP fast path, and
// "computed" for tuples that went through a flush. WaitMS is the time
// the request spent in the service, queueing included; Stages breaks it
// down per pipeline stage, and TraceID is the request's trace identity
// (resolvable via GET /requests?trace=<id> while retained).
type ExplainResponse struct {
	Explanation core.Explanation    `json:"explanation"`
	Status      string              `json:"status"`
	Source      string              `json:"source"`
	WaitMS      float64             `json:"wait_ms"`
	TraceID     string              `json:"trace_id,omitempty"`
	Stages      *obs.StageBreakdown `json:"stages,omitempty"`
	// Error explains a rejected tuple (source "rejected"): "draining"
	// rejections answer 503, queue-full load shedding answers 429, both
	// with a Retry-After header. Empty on served tuples.
	Error string `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/explain/batch answer: one
// ExplainResponse per input tuple, in input order.
type BatchResponse struct {
	Explanations []ExplainResponse `json:"explanations"`
	Count        int               `json:"count"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies; a batch of a few thousand wide
// tuples fits comfortably.
const maxBodyBytes = 8 << 20

// Handler returns the service's HTTP API:
//
//	POST /v1/explain        explain one tuple
//	POST /v1/explain/batch  explain a batch of tuples
//	GET  /healthz           liveness (200 while the process runs)
//	GET  /readyz            readiness (503 before start and while draining)
//	GET  /snapshot          explanation-store snapshot (checksummed, versioned)
//	GET  /slo               SLO objective status (compliance, burn rate)
//	GET  /requests          slow-request exemplars (?trace=<id> for one)
//
// The explain endpoints honour an incoming W3C traceparent header (the
// response joins the caller's trace as a child) and always echo the
// resolved identity back via traceparent and X-Shahin-Trace-Id headers.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("POST /v1/explain/batch", s.handleBatch)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /slo", obs.SLOHandler(s.rec))
	mux.HandleFunc("GET /requests", obs.RequestsHandler(s.rec))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// Transport headers on GET /snapshot answers: the snapshot's schema
// version and an FNV-64a checksum over the response body, so a peer
// can reject a damaged or incompatible transfer before decoding it.
const (
	headerStoreVersion  = "X-Shahin-Store-Version"
	headerStoreChecksum = "X-Shahin-Store-Checksum"
	headerStoreCount    = "X-Shahin-Store-Count"
)

// handleSnapshot answers GET /snapshot with the explanation store in
// the versioned snapshot format store.Save writes, plus transport
// headers (version, checksum, entry count). It keeps answering during
// drain — a draining replica is exactly the peer a restarted neighbour
// wants to warm from.
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	s.storeMu.RLock()
	err := s.store.Save(&buf)
	count := s.store.Len()
	s.storeMu.RUnlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerStoreVersion, strconv.FormatUint(uint64(store.SnapshotVersion), 10))
	w.Header().Set(headerStoreChecksum, fmt.Sprintf("%016x", store.Fingerprint(buf.Bytes())))
	w.Header().Set(headerStoreCount, strconv.Itoa(count))
	w.Write(buf.Bytes()) //shahinvet:allow errcheck — the status line is already sent; a broken client pipe has no recovery
}

// setRetryAfter marks shed and draining answers as retryable so
// clients and front tiers back off instead of hammering.
func setRetryAfter(w http.ResponseWriter, code int) {
	if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
}

// handleExplain answers POST /v1/explain.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.checkTuple(req.Tuple); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wantExact, err := s.resolveExplainer(req.Explainer)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tc, parent := requestTrace(r)
	setTraceHeaders(w, tc)
	resp, code := s.explainOne(r, req.Tuple, wantExact, tc, parent)
	setRetryAfter(w, code)
	writeJSON(w, code, resp)
}

// handleBatch answers POST /v1/explain/batch. The tuples are admitted
// individually — so they micro-batch with concurrent requests exactly
// like singles do — and the response preserves input order. The overall
// HTTP status is the worst per-tuple status.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Tuples) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty tuple batch"))
		return
	}
	for i, tuple := range req.Tuples {
		if err := s.checkTuple(tuple); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("tuple %d: %w", i, err))
			return
		}
	}
	wantExact, err := s.resolveExplainer(req.Explainer)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The batch shares one trace: the batch identity (echoed in the
	// response headers) parents one child trace context per tuple, so
	// every tuple's span carries the same trace ID with its own span ID.
	tc, _ := requestTrace(r)
	setTraceHeaders(w, tc)
	resp := BatchResponse{Explanations: make([]ExplainResponse, len(req.Tuples)), Count: len(req.Tuples)}
	codes := make([]int, len(req.Tuples))
	var wg sync.WaitGroup
	for i, tuple := range req.Tuples {
		itc := tc.Child()
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp.Explanations[i], codes[i] = s.explainOne(r, tuple, wantExact, itc, tc.SpanID)
		}()
	}
	wg.Wait()
	code := http.StatusOK
	for _, c := range codes {
		if c > code {
			code = c
		}
	}
	setRetryAfter(w, code)
	writeJSON(w, code, resp)
}

// resolveExplainer validates a request's optional explainer field
// against the server's configuration. An exact-SHAP request is always
// admissible (it degrades to the queue when the backend does not
// qualify); any other named kind must match the kind the warm server
// was started with, because the flush pipeline computes with exactly
// one explainer.
func (s *Server) resolveExplainer(name string) (wantExact bool, err error) {
	if name == "" {
		return false, nil
	}
	kind, err := core.ParseKind(name)
	if err != nil {
		return false, err
	}
	if kind == core.ExactSHAP {
		return true, nil
	}
	if kind != s.warm.Kind() {
		return false, fmt.Errorf("explainer %q not served here (server runs %s)", name, s.warm.Kind())
	}
	return false, nil
}

// checkTuple validates a request tuple's width against the explainer's
// schema so malformed requests get 400 instead of a failed flush.
func (s *Server) checkTuple(tuple []float64) error {
	if want := s.warm.NumAttrs(); len(tuple) != want {
		return fmt.Errorf("tuple has %d cells, schema expects %d", len(tuple), want)
	}
	return nil
}

// explainOne runs one tuple through the exact fast path, the store fast
// path, or the admission queue, and maps the outcome to an HTTP status
// code. Every path — exact, hit, computed, rejected, timed out — closes
// the request's detached root span, offers it to the slow-request ring,
// and feeds the SLO tracker.
func (s *Server) explainOne(r *http.Request, tuple []float64, wantExact bool, tc obs.TraceContext, parent string) (ExplainResponse, int) {
	start := time.Now() //shahinvet:allow walltime — request latency feeds the serving histograms
	s.rec.Counter(obs.CounterServeRequests).Inc()
	root := s.rec.StartDetachedSpan("request")
	root.SetTrace(tc.TraceID, tc.SpanID, parent)
	defer func() {
		if s.rec != nil {
			s.rec.Histogram(obs.HistServeRequest).Observe(time.Since(start))
		}
	}()

	// An exact-SHAP request bypasses both the store (which holds the
	// server kind's answers) and the admission queue: the polynomial
	// tree walk is cheaper than either. When the backend does not
	// qualify, the request silently degrades to the normal queue path —
	// the serving analogue of core's exact_fallback.
	if wantExact && s.warm.ExactAvailable() {
		if at, visits, err := s.warm.ExplainExact(tuple); err == nil {
			dur := time.Since(start)
			s.rec.Emit(obs.Event{
				Type: obs.EventExactShap, Tuple: -1,
				Explainer:  core.ExactSHAP.String(),
				Fresh:      1,
				NodeVisits: visits,
				DurMS:      float64(dur) / float64(time.Millisecond),
			})
			exp := core.Explanation{Attribution: at, Status: core.StatusOK}
			bd := obs.StageBreakdown{Solve: dur}
			wait := s.finishRequest(root, tc, parent, start, &bd, "exact", exp.Status.String(), 0, http.StatusOK)
			return ExplainResponse{
				Explanation: exp,
				Status:      exp.Status.String(),
				Source:      "exact",
				WaitMS:      wait,
				TraceID:     tc.TraceID,
				Stages:      stagesPtr(bd),
			}, http.StatusOK
		}
	}

	if exp, ok := s.lookup(tuple); ok {
		s.rec.Counter(obs.CounterServeStoreHits).Inc()
		// A store hit never queues or classifies: the whole elapsed time
		// is lookup, attributed to the solve stage so coverage stays total.
		bd := obs.StageBreakdown{Solve: time.Since(start)}
		wait := s.finishRequest(root, tc, parent, start, &bd, "store", exp.Status.String(), 0, http.StatusOK)
		return ExplainResponse{
			Explanation: exp,
			Status:      exp.Status.String(),
			Source:      "store",
			WaitMS:      wait,
			TraceID:     tc.TraceID,
			Stages:      stagesPtr(bd),
		}, http.StatusOK
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	req, err := s.admit(ctx, tuple)
	if err != nil {
		// Draining is 503 (the replica is going away; a front tier
		// should fail over); a full queue is 429 load shedding (the
		// replica is alive but saturated; the caller should back off).
		// Both answer a JSON body naming the reason, never a hang.
		code := http.StatusServiceUnavailable
		if errors.Is(err, errQueueFull) {
			code = http.StatusTooManyRequests
		}
		wait := s.finishRequest(root, tc, parent, start, nil, "rejected", core.StatusFailed.String(), 0, code)
		return ExplainResponse{Status: core.StatusFailed.String(), Source: "rejected", WaitMS: wait, TraceID: tc.TraceID, Error: err.Error()},
			code
	}
	select {
	case out := <-req.done:
		if out.err != nil {
			wait := s.finishRequest(root, tc, parent, start, nil, "computed", core.StatusFailed.String(), out.flush, http.StatusGatewayTimeout)
			return ExplainResponse{Status: core.StatusFailed.String(), Source: "computed", WaitMS: wait, TraceID: tc.TraceID},
				http.StatusGatewayTimeout
		}
		code := http.StatusOK
		if out.exp.Status == core.StatusFailed {
			code = http.StatusInternalServerError
		}
		bd := out.bd
		wait := s.finishRequest(root, tc, parent, start, &bd, "computed", out.exp.Status.String(), out.flush, code)
		return ExplainResponse{
			Explanation: out.exp,
			Status:      out.exp.Status.String(),
			Source:      "computed",
			WaitMS:      wait,
			TraceID:     tc.TraceID,
			Stages:      stagesPtr(bd),
		}, code
	case <-ctx.Done():
		s.rec.Counter(obs.CounterServeTimeouts).Inc()
		wait := s.finishRequest(root, tc, parent, start, nil, "computed", core.StatusFailed.String(), 0, http.StatusGatewayTimeout)
		return ExplainResponse{Status: core.StatusFailed.String(), Source: "computed", WaitMS: wait, TraceID: tc.TraceID},
			http.StatusGatewayTimeout
	}
}

// finishRequest closes a request's root span, lays its non-zero stages
// out as sequential child spans, offers the trace to the slow-request
// exemplar ring, and records the outcome against the SLO objectives
// (availability counts 5xx answers as bad). It returns the request's
// wall time in milliseconds for the response's wait_ms field.
//
// When bd is a non-zero breakdown it is topped up in place: time the
// stages cannot see (admission before enqueue, wake-up after delivery,
// store-lookup bookkeeping) is serving overhead too, folded into the
// stage that owns the path so the breakdown explains the whole wait
// measured by the same clock reading that produces wait_ms.
func (s *Server) finishRequest(root *obs.Span, tc obs.TraceContext, parent string, start time.Time, bd *obs.StageBreakdown, source, status string, flush, code int) float64 {
	elapsed := time.Since(start)
	s.rec.RecordSLO(elapsed, code < http.StatusInternalServerError)
	ms := float64(elapsed) / float64(time.Millisecond)
	var sbd obs.StageBreakdown
	if bd != nil && !bd.IsZero() {
		if residual := elapsed - bd.Total(); residual > 0 {
			if source == "store" || source == "exact" {
				bd.Solve += residual
			} else {
				bd.BatchAssembly += residual
			}
		}
		sbd = *bd
	}
	if root == nil {
		return ms
	}
	addStageChildren(root, start, sbd)
	root.SetAttr("source", source)
	if status != "" {
		root.SetAttr("status", status)
	}
	if flush > 0 {
		root.SetAttr("flush", flush)
	}
	root.End()
	s.rec.OfferRequest(obs.RequestTrace{
		TraceID:  tc.TraceID,
		SpanID:   tc.SpanID,
		ParentID: parent,
		Name:     "request",
		Source:   source,
		Status:   status,
		Flush:    flush,
		DurMS:    ms,
		Stages:   sbd,
		Root:     root.Dump(),
	})
	return ms
}

// addStageChildren lays the request's non-zero stages under root as
// sequential child spans. The layout is synthesised after the fact —
// the real work interleaves with the shared flush — so children line up
// end to end from the request's start and their sum never exceeds the
// root's duration.
func addStageChildren(root *obs.Span, start time.Time, bd obs.StageBreakdown) {
	if root == nil || bd.IsZero() {
		return
	}
	t := start
	for _, st := range []struct {
		name string
		d    time.Duration
	}{
		{obs.StageQueueWait, bd.QueueWait},
		{obs.StageBatchAssembly, bd.BatchAssembly},
		{obs.StagePoolSample, bd.PoolSample},
		{obs.StageClassify, bd.Classify},
		{obs.StageSolve, bd.Solve},
	} {
		if st.d <= 0 {
			continue
		}
		root.AddChild(st.name, t, st.d, nil)
		t = t.Add(st.d)
	}
}

// requestTrace resolves a request's trace identity: a child of the
// caller's W3C traceparent header when a valid one is present (the
// service's spans join the caller's trace), otherwise a fresh root
// trace. parent is the caller's span ID, empty for fresh traces.
func requestTrace(r *http.Request) (tc obs.TraceContext, parent string) {
	if in, err := obs.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
		return in.Child(), in.SpanID
	}
	return obs.NewTraceContext(), ""
}

// setTraceHeaders echoes the resolved trace identity on the response:
// the full traceparent for propagation-aware callers and the bare trace
// ID for humans correlating against GET /requests.
func setTraceHeaders(w http.ResponseWriter, tc obs.TraceContext) {
	w.Header().Set("Traceparent", tc.Traceparent())
	w.Header().Set("X-Shahin-Trace-Id", tc.TraceID)
}

// stagesPtr boxes a non-zero breakdown for the response's omitempty
// stages field (nil hides the field entirely on zero breakdowns).
func stagesPtr(bd obs.StageBreakdown) *obs.StageBreakdown {
	if bd.IsZero() {
		return nil
	}
	return &bd
}

// decodeBody parses a bounded JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //shahinvet:allow errcheck — the status line is already sent; a broken client pipe has no recovery
}

// writeError writes a JSON error body with the given status code.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"shahin/internal/core"
	"shahin/internal/obs"
)

// ExplainRequest is the POST /v1/explain body: one raw tuple in the
// dataset's column order (categorical cells as value indices, numeric
// cells as values — the same encoding shahin-datagen CSVs use).
type ExplainRequest struct {
	Tuple []float64 `json:"tuple"`
}

// BatchRequest is the POST /v1/explain/batch body.
type BatchRequest struct {
	Tuples [][]float64 `json:"tuples"`
}

// ExplainResponse is the per-tuple answer. Status mirrors
// core.Explanation.Status ("ok", "degraded", "failed"); Source is
// "store" for exact-repeat hits answered from the explanation store and
// "computed" for tuples that went through a flush. WaitMS is the time
// the request spent in the service, queueing included.
type ExplainResponse struct {
	Explanation core.Explanation `json:"explanation"`
	Status      string           `json:"status"`
	Source      string           `json:"source"`
	WaitMS      float64          `json:"wait_ms"`
}

// BatchResponse is the POST /v1/explain/batch answer: one
// ExplainResponse per input tuple, in input order.
type BatchResponse struct {
	Explanations []ExplainResponse `json:"explanations"`
	Count        int               `json:"count"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies; a batch of a few thousand wide
// tuples fits comfortably.
const maxBodyBytes = 8 << 20

// Handler returns the service's HTTP API:
//
//	POST /v1/explain        explain one tuple
//	POST /v1/explain/batch  explain a batch of tuples
//	GET  /healthz           liveness (200 while the process runs)
//	GET  /readyz            readiness (503 before start and while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("POST /v1/explain/batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// handleExplain answers POST /v1/explain.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.checkTuple(req.Tuple); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, code := s.explainOne(r, req.Tuple)
	writeJSON(w, code, resp)
}

// handleBatch answers POST /v1/explain/batch. The tuples are admitted
// individually — so they micro-batch with concurrent requests exactly
// like singles do — and the response preserves input order. The overall
// HTTP status is the worst per-tuple status.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Tuples) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty tuple batch"))
		return
	}
	for i, tuple := range req.Tuples {
		if err := s.checkTuple(tuple); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("tuple %d: %w", i, err))
			return
		}
	}
	resp := BatchResponse{Explanations: make([]ExplainResponse, len(req.Tuples)), Count: len(req.Tuples)}
	codes := make([]int, len(req.Tuples))
	var wg sync.WaitGroup
	for i, tuple := range req.Tuples {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp.Explanations[i], codes[i] = s.explainOne(r, tuple)
		}()
	}
	wg.Wait()
	code := http.StatusOK
	for _, c := range codes {
		if c > code {
			code = c
		}
	}
	writeJSON(w, code, resp)
}

// checkTuple validates a request tuple's width against the explainer's
// schema so malformed requests get 400 instead of a failed flush.
func (s *Server) checkTuple(tuple []float64) error {
	if want := s.warm.NumAttrs(); len(tuple) != want {
		return fmt.Errorf("tuple has %d cells, schema expects %d", len(tuple), want)
	}
	return nil
}

// explainOne runs one tuple through the store fast path or the
// admission queue and maps the outcome to an HTTP status code.
func (s *Server) explainOne(r *http.Request, tuple []float64) (ExplainResponse, int) {
	start := time.Now() //shahinvet:allow walltime — request latency feeds the serving histograms
	s.rec.Counter(obs.CounterServeRequests).Inc()
	defer func() {
		if s.rec != nil {
			s.rec.Histogram(obs.HistServeRequest).Observe(time.Since(start))
		}
	}()

	if exp, ok := s.lookup(tuple); ok {
		s.rec.Counter(obs.CounterServeStoreHits).Inc()
		return ExplainResponse{
			Explanation: exp,
			Status:      exp.Status.String(),
			Source:      "store",
			WaitMS:      msSince(start),
		}, http.StatusOK
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	req, err := s.admit(ctx, tuple)
	if err != nil {
		return ExplainResponse{Status: core.StatusFailed.String(), Source: "rejected", WaitMS: msSince(start)},
			http.StatusServiceUnavailable
	}
	select {
	case out := <-req.done:
		if out.err != nil {
			return ExplainResponse{Status: core.StatusFailed.String(), Source: "computed", WaitMS: msSince(start)},
				http.StatusGatewayTimeout
		}
		code := http.StatusOK
		if out.exp.Status == core.StatusFailed {
			code = http.StatusInternalServerError
		}
		return ExplainResponse{
			Explanation: out.exp,
			Status:      out.exp.Status.String(),
			Source:      "computed",
			WaitMS:      msSince(start),
		}, code
	case <-ctx.Done():
		s.rec.Counter(obs.CounterServeTimeouts).Inc()
		return ExplainResponse{Status: core.StatusFailed.String(), Source: "computed", WaitMS: msSince(start)},
			http.StatusGatewayTimeout
	}
}

// msSince reports elapsed milliseconds for response latency fields.
func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// decodeBody parses a bounded JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //shahinvet:allow errcheck — the status line is already sent; a broken client pipe has no recovery
}

// writeError writes a JSON error body with the given status code.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"shahin/internal/obs"
)

// postTraced sends one explain request, optionally carrying a
// traceparent header, and returns the decoded response, status code,
// and response headers.
func postTraced(url string, tuple []float64, traceparent string) (ExplainResponse, int, http.Header, error) {
	var out ExplainResponse
	body, err := json.Marshal(ExplainRequest{Tuple: tuple})
	if err != nil {
		return out, 0, nil, err
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/explain", bytes.NewReader(body))
	if err != nil {
		return out, 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return out, 0, nil, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, resp.StatusCode, resp.Header, err
}

// TestServeTraceReconciliation fires concurrent requests and reconciles
// every answer against the tracing surfaces: each request carries a
// unique trace ID, resolves to exactly one retained root span whose
// children's durations sum to no more than the root's, its stage
// breakdown explains at least 90% of the reported wait, the exemplar
// ring retains one entry per request, no request root leaks into the
// recorder's span forest, and the SLO tracker saw every request.
func TestServeTraceReconciliation(t *testing.T) {
	const n = 16
	env := newEnv(t, 3, n)
	rec := obs.NewRecorder()
	rec.SetSLO(obs.NewSLOTracker(obs.SLOConfig{Window: time.Minute, LatencyTarget: 2 * time.Second}))
	s, err := New(newWarm(t, env, 3), Config{BatchWindow: 2 * time.Millisecond, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test

	resps := make([]ExplainResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var code int
			resps[i], code, _, errs[i] = postTraced(ts.URL, env.tuples[i], "")
			if errs[i] == nil && code != http.StatusOK {
				errs[i] = fmt.Errorf("HTTP %d", code)
			}
		}()
	}
	wg.Wait()

	seen := make(map[string]bool, n)
	for i, r := range resps {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if r.TraceID == "" {
			t.Fatalf("request %d: no trace id in response", i)
		}
		if seen[r.TraceID] {
			t.Fatalf("request %d: duplicate trace id %s", i, r.TraceID)
		}
		seen[r.TraceID] = true

		rt, ok := rec.RequestByTrace(r.TraceID)
		if !ok {
			t.Fatalf("request %d: trace %s not retained in the ring", i, r.TraceID)
		}
		if rt.Root == nil || rt.Root.Name != "request" || rt.Root.TraceID != r.TraceID {
			t.Fatalf("request %d: malformed root %+v", i, rt.Root)
		}
		var childSum float64
		for _, c := range rt.Root.Children {
			childSum += c.DurMS
		}
		if childSum > rt.Root.DurMS*1.001+0.01 {
			t.Fatalf("request %d: children sum %.3fms exceeds root %.3fms", i, childSum, rt.Root.DurMS)
		}
		if r.Stages == nil {
			t.Fatalf("request %d: no stage breakdown", i)
		}
		stageSum := float64(r.Stages.Total()) / float64(time.Millisecond)
		if stageSum < 0.9*r.WaitMS {
			t.Fatalf("request %d: stages %.3fms explain <90%% of wait %.3fms", i, stageSum, r.WaitMS)
		}
	}

	if sum := rec.RequestsSummary(); sum.Count != n {
		t.Fatalf("ring retains %d requests, want %d", sum.Count, n)
	}
	for _, d := range rec.Trace() {
		if d.Name == "request" {
			t.Fatal("request root leaked into the recorder's span forest")
		}
	}
	st, ok := rec.SLOStatus()
	if !ok || st.Objectives[0].Total != n {
		t.Fatalf("SLO tracker saw %d requests (ok=%v), want %d", st.Objectives[0].Total, ok, n)
	}
}

// TestServeTraceparentEcho checks W3C trace propagation end to end: an
// incoming traceparent is adopted (same trace, fresh span), echoed on
// the response headers and body, resolvable through /requests?trace=,
// shared by every tuple of a batch call, and replaced by a fresh valid
// identity when the incoming header is malformed.
func TestServeTraceparentEcho(t *testing.T) {
	env := newEnv(t, 4, 8)
	rec := obs.NewRecorder()
	rec.SetSLO(obs.NewSLOTracker(obs.SLOConfig{Window: time.Minute}))
	s, err := New(newWarm(t, env, 4), Config{BatchWindow: time.Millisecond, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(t.Context()) //shahinvet:allow errcheck — drain errors surface in the dedicated drain test

	const (
		upTrace = "0af7651916cd43dd8448eb211c80319c"
		upSpan  = "b7ad6b7169203331"
	)
	out, code, hdr, err := postTraced(ts.URL, env.tuples[0], "00-"+upTrace+"-"+upSpan+"-01")
	if err != nil || code != http.StatusOK {
		t.Fatalf("traced request: HTTP %d, %v", code, err)
	}
	if got := hdr.Get("X-Shahin-Trace-Id"); got != upTrace {
		t.Fatalf("X-Shahin-Trace-Id = %q, want %q", got, upTrace)
	}
	echoed, err := obs.ParseTraceparent(hdr.Get("Traceparent"))
	if err != nil {
		t.Fatalf("echoed traceparent %q: %v", hdr.Get("Traceparent"), err)
	}
	if echoed.TraceID != upTrace || echoed.SpanID == upSpan {
		t.Fatalf("echoed traceparent %+v must keep the trace and mint a new span", echoed)
	}
	if out.TraceID != upTrace {
		t.Fatalf("response body trace %q, want %q", out.TraceID, upTrace)
	}

	// The retained exemplar names the caller's span as its parent.
	resp, err := http.Get(ts.URL + "/requests?trace=" + upTrace)
	if err != nil {
		t.Fatal(err)
	}
	var rt obs.RequestTrace
	if err := json.NewDecoder(resp.Body).Decode(&rt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rt.TraceID != upTrace || rt.ParentID != upSpan {
		t.Fatalf("/requests?trace: HTTP %d, %+v", resp.StatusCode, rt)
	}

	// An unknown trace answers 404.
	resp, err = http.Get(ts.URL + "/requests?trace=ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: HTTP %d, want 404", resp.StatusCode)
	}

	// /slo reports the enabled tracker with both objectives.
	resp, err = http.Get(ts.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	var slo struct {
		Enabled    bool               `json:"enabled"`
		Objectives []obs.SLOObjective `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&slo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !slo.Enabled || len(slo.Objectives) != 2 {
		t.Fatalf("/slo: %+v", slo)
	}

	// Every tuple of a batch call shares the caller's trace ID.
	body, err := json.Marshal(BatchRequest{Tuples: env.tuples[1:4]})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/explain/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+upTrace+"-"+upSpan+"-01")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var batch BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Shahin-Trace-Id"); got != upTrace {
		t.Fatalf("batch X-Shahin-Trace-Id = %q", got)
	}
	for i, e := range batch.Explanations {
		if e.TraceID != upTrace {
			t.Fatalf("batch tuple %d trace %q, want shared %q", i, e.TraceID, upTrace)
		}
	}

	// A malformed traceparent falls back to a fresh valid identity.
	out, code, hdr, err = postTraced(ts.URL, env.tuples[4], "garbage")
	if err != nil || code != http.StatusOK {
		t.Fatalf("malformed traceparent request: HTTP %d, %v", code, err)
	}
	fresh, err := obs.ParseTraceparent(hdr.Get("Traceparent"))
	if err != nil {
		t.Fatalf("fresh traceparent %q: %v", hdr.Get("Traceparent"), err)
	}
	if fresh.TraceID == upTrace || out.TraceID != fresh.TraceID {
		t.Fatalf("fresh trace %+v vs body %q", fresh, out.TraceID)
	}
}

package fault

import (
	"context"
	"sync"
	"time"

	"shahin/internal/obs"
)

// Injector is the deterministic chaos layer: it fails, stalls, or
// blacks out calls to the inner classifier according to Config,
// drawing every decision from a seeded RNG keyed by call order. Two
// runs with the same seed and the same (serial) call sequence inject
// exactly the same faults.
//
// Under concurrent callers the RNG draw order follows scheduling, so
// *which* call gets a fault is no longer reproducible — but every
// fault is transient, so retried calls still return the same label and
// serial runs stay byte-identical.
type Injector struct {
	inner FallibleClassifier
	cfg   Config

	mu  sync.Mutex
	rng *deterministicRNG

	calls    atomicInt64
	injected atomicInt64
	outages  atomicInt64

	injectedCtr *obs.Counter
	outagesCtr  *obs.Counter
}

// deterministicRNG is a splitmix64 stream: unlike math/rand it costs
// nothing to construct and its state is one word, which keeps the
// injector's critical section tiny.
type deterministicRNG struct{ state uint64 }

func (r *deterministicRNG) float64() float64 {
	r.state = splitmix64(r.state)
	return float64(r.state>>11) / float64(1<<53)
}

// NewInjector wraps inner with fault injection per cfg.
func NewInjector(inner FallibleClassifier, cfg Config, rec *obs.Recorder) *Injector {
	ctrs := newChainCounters(rec)
	return &Injector{
		inner:       inner,
		cfg:         cfg,
		rng:         &deterministicRNG{state: splitmix64(uint64(cfg.Seed) ^ 0x53686168696e21)},
		injectedCtr: ctrs.injected,
		outagesCtr:  ctrs.outages,
	}
}

// PredictCtx implements FallibleClassifier, possibly injecting a
// fault. The RNG is always advanced the same number of times per call
// (one draw per configured fault kind) so the decision stream stays
// aligned whether or not earlier faults fired.
func (i *Injector) PredictCtx(ctx context.Context, x []float64) (int, error) {
	i.mu.Lock()
	call := i.calls.Add(1) - 1
	fail := i.cfg.FailRate > 0 && i.rng.float64() < i.cfg.FailRate
	spike := i.cfg.SpikeRate > 0 && i.rng.float64() < i.cfg.SpikeRate
	i.mu.Unlock()

	if i.cfg.OutageCalls > 0 && call >= i.cfg.OutageStart && call < i.cfg.OutageStart+i.cfg.OutageCalls {
		i.outages.Add(1)
		i.outagesCtr.Inc()
		return 0, ErrOutage
	}
	if fail {
		i.injected.Add(1)
		i.injectedCtr.Inc()
		return 0, ErrInjected
	}
	if spike && i.cfg.SpikeDelay > 0 {
		t := time.NewTimer(i.cfg.SpikeDelay)
		select {
		case <-ctx.Done():
			t.Stop()
			return 0, ctx.Err()
		case <-t.C:
		}
	}
	return i.inner.PredictCtx(ctx, x)
}

// NumClasses implements FallibleClassifier.
func (i *Injector) NumClasses() int { return i.inner.NumClasses() }

// Calls reports how many predictions have passed through the injector.
func (i *Injector) Calls() int64 { return i.calls.Load() }

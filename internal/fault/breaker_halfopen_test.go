package fault

import (
	"context"
	"errors"
	"sync"
	"testing"

	"shahin/internal/obs"
)

// gated is a backend whose call blocks until the test releases it, so
// the test can hold a half-open probe in flight while other calls race
// the admission path.
type gated struct {
	entered chan struct{}
	release chan error
}

func (g *gated) NumClasses() int { return 2 }

func (g *gated) PredictCtx(ctx context.Context, x []float64) (int, error) {
	g.entered <- struct{}{}
	if err := <-g.release; err != nil {
		return 0, err
	}
	return 1, nil
}

// openAndBurnCooldown drives b open via one scripted failure from g and
// burns the single-call cooldown, leaving the breaker ready to probe.
func openAndBurnCooldown(t *testing.T, b *Breaker, g *gated) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := b.PredictCtx(context.Background(), nil)
		done <- err
	}()
	<-g.entered
	g.release <- ErrInjected
	if err := <-done; !errors.Is(err, ErrInjected) {
		t.Fatalf("opening call err=%v, want ErrInjected", err)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state=%v, want open", b.State())
	}
	if _, err := b.PredictCtx(context.Background(), nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("cooldown-burning call err=%v, want ErrBreakerOpen", err)
	}
}

// TestBreakerHalfOpenSingleProbe: with the cooldown elapsed, N
// concurrent calls race into the half-open breaker; exactly one trial
// reaches the backend, every loser gets ErrBreakerOpen, and the
// winning probe's success closes the breaker. Run under -race.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	g := &gated{entered: make(chan struct{}), release: make(chan error)}
	b := NewBreaker(g, Config{BreakerThreshold: 1, BreakerCooldownCalls: 1}, nil)
	openAndBurnCooldown(t, b, g)

	const racers = 8
	results := make(chan error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := b.PredictCtx(context.Background(), nil)
			results <- err
		}()
	}
	// The winning probe is now parked inside the backend; every other
	// racer must already have been turned away.
	<-g.entered
	for i := 0; i < racers-1; i++ {
		if err := <-results; !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("loser %d err=%v, want ErrBreakerOpen", i, err)
		}
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%v while probe in flight, want half-open", b.State())
	}
	g.release <- nil
	if err := <-results; err != nil {
		t.Fatalf("winning probe err=%v, want nil", err)
	}
	wg.Wait()
	if b.State() != BreakerClosed {
		t.Fatalf("state=%v after successful probe, want closed", b.State())
	}
}

// TestBreakerHalfOpenProbeFailureReopens: a failing trial sends the
// breaker straight back to open while concurrent losers are rejected.
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	g := &gated{entered: make(chan struct{}), release: make(chan error)}
	b := NewBreaker(g, Config{BreakerThreshold: 1, BreakerCooldownCalls: 1}, nil)
	openAndBurnCooldown(t, b, g)

	probeErr := make(chan error, 1)
	go func() {
		_, err := b.PredictCtx(context.Background(), nil)
		probeErr <- err
	}()
	<-g.entered
	if _, err := b.PredictCtx(context.Background(), nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("concurrent call during probe err=%v, want ErrBreakerOpen", err)
	}
	g.release <- ErrInjected
	if err := <-probeErr; !errors.Is(err, ErrInjected) {
		t.Fatalf("probe err=%v, want ErrInjected", err)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state=%v after failed probe, want open", b.State())
	}
	if got := b.opens.Load(); got != 2 {
		t.Errorf("opens=%d, want 2", got)
	}
}

// TestBreakerCancelledProbeFreesSlot: a probe whose caller gives up
// neither closes nor re-opens the breaker, but it must release the
// probing slot so the next call can trial the backend.
func TestBreakerCancelledProbeFreesSlot(t *testing.T) {
	g := &gated{entered: make(chan struct{}), release: make(chan error)}
	b := NewBreaker(g, Config{BreakerThreshold: 1, BreakerCooldownCalls: 1}, nil)
	openAndBurnCooldown(t, b, g)

	probeErr := make(chan error, 1)
	go func() {
		_, err := b.PredictCtx(context.Background(), nil)
		probeErr <- err
	}()
	<-g.entered
	g.release <- context.Canceled
	if err := <-probeErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled probe err=%v, want context.Canceled", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%v after cancelled probe, want half-open", b.State())
	}
	// The slot must be free: the next call probes and closes the breaker.
	done := make(chan error, 1)
	go func() {
		_, err := b.PredictCtx(context.Background(), nil)
		done <- err
	}()
	<-g.entered
	g.release <- nil
	if err := <-done; err != nil {
		t.Fatalf("follow-up probe err=%v, want nil", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state=%v, want closed", b.State())
	}
}

// TestOpBreakerDo: the classifier-free breaker guards arbitrary
// operations with the same state machine, and its transitions carry
// the instance name on both the event and the gauge.
func TestOpBreakerDo(t *testing.T) {
	rec := obs.NewRecorder()
	b := NewOpBreaker(Config{BreakerThreshold: 2, BreakerCooldownCalls: 1}, rec, "replica0")

	boom := errors.New("backend down")
	fail := func(context.Context) error { return boom }
	ok := func(context.Context) error { return nil }

	for i := 0; i < 2; i++ {
		if err := b.Do(context.Background(), fail); !errors.Is(err, boom) {
			t.Fatalf("failing op %d err=%v", i, err)
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state=%v after threshold failures, want open", b.State())
	}
	if err := b.Do(context.Background(), ok); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("rejected op err=%v, want ErrBreakerOpen", err)
	}
	// Cooldown burnt; the next Do probes and closes.
	if err := b.Do(context.Background(), ok); err != nil {
		t.Fatalf("probe op err=%v, want nil", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state=%v after probe, want closed", b.State())
	}
	if got := rec.Gauge(obs.GaugeBreakerState + "_replica0").Value(); got != int64(BreakerClosed) {
		t.Errorf("named state gauge=%d, want %d", got, BreakerClosed)
	}
	events, _ := rec.Events()
	var edges int
	for _, e := range events {
		if e.Type == obs.EventBreakerState && e.Name == "replica0" {
			edges++
		}
	}
	if edges < 3 { // closed->open, open->half-open, half-open->closed
		t.Errorf("named breaker_state events=%d, want >= 3", edges)
	}
	if b.NumClasses() != 0 {
		t.Errorf("op breaker NumClasses=%d, want 0", b.NumClasses())
	}
}

// TestOpBreakerDoConcurrentHalfOpen: Do's admission shares the
// single-probe guarantee — concurrent ops during a trial are rejected.
func TestOpBreakerDoConcurrentHalfOpen(t *testing.T) {
	b := NewOpBreaker(Config{BreakerThreshold: 1, BreakerCooldownCalls: 1}, nil, "r")
	boom := errors.New("backend down")
	if err := b.Do(context.Background(), func(context.Context) error { return boom }); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if err := b.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("cooldown-burning op err=%v, want ErrBreakerOpen", err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	const racers = 8
	results := make(chan error, racers)
	for i := 0; i < racers; i++ {
		go func() {
			results <- b.Do(context.Background(), func(context.Context) error {
				entered <- struct{}{}
				<-release
				return nil
			})
		}()
	}
	<-entered
	for i := 0; i < racers-1; i++ {
		if err := <-results; !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("loser %d err=%v, want ErrBreakerOpen", i, err)
		}
	}
	close(release)
	if err := <-results; err != nil {
		t.Fatalf("winning probe err=%v", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state=%v, want closed", b.State())
	}
}

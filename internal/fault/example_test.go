package fault_test

import (
	"fmt"

	"shahin/internal/fault"
)

// ExampleRetryable shows which chain errors the retrier re-attempts:
// everything wrapping ErrTransient (injected faults, outages, per-call
// deadline misses) is retryable; an open circuit breaker is not — the
// degradation ladder answers instead of hammering a failing backend.
func ExampleRetryable() {
	fmt.Println(fault.Retryable(fault.ErrInjected))
	fmt.Println(fault.Retryable(fault.ErrTimeout))
	fmt.Println(fault.Retryable(fault.ErrBreakerOpen))
	// Output:
	// true
	// true
	// false
}

package fault

import (
	"context"
	"time"

	"shahin/internal/obs"
)

// retrier re-attempts transient failures with capped exponential
// backoff and deterministic jitter. Jitter is a pure hash of
// (seed, call, attempt) — not an RNG draw — so concurrent callers
// cannot perturb each other's delays and the backoff schedule of any
// given call is reproducible.
type retrier struct {
	inner   FallibleClassifier
	max     int
	base    time.Duration
	cap     time.Duration
	jitter  float64
	seed    int64
	calls   atomicInt64
	retries atomicInt64
	spanned atomicInt64 // "retry" marker spans attached so far

	retriesCtr *obs.Counter
}

// maxRetrySpans bounds per-retrier "retry" marker spans: enough to see
// the backoff schedule in a trace, bounded against outage storms.
const maxRetrySpans = 64

func newRetrier(inner FallibleClassifier, cfg Config, rec *obs.Recorder) *retrier {
	r := &retrier{
		inner:      inner,
		max:        cfg.MaxRetries,
		base:       cfg.RetryBase,
		cap:        cfg.RetryMax,
		jitter:     cfg.RetryJitter,
		seed:       cfg.Seed,
		retriesCtr: newChainCounters(rec).retries,
	}
	if r.base <= 0 {
		r.base = time.Millisecond
	}
	if r.cap <= 0 {
		r.cap = 50 * time.Millisecond
	}
	if r.jitter <= 0 {
		r.jitter = 0.2
	}
	return r
}

// NumClasses implements FallibleClassifier.
func (r *retrier) NumClasses() int { return r.inner.NumClasses() }

// PredictCtx implements FallibleClassifier with up to max retries of
// transient failures. Backoff sleeps respect the caller's context. When
// the caller's context carries a span, each retry attaches a bounded
// "retry" marker child covering the backoff window before the reattempt.
func (r *retrier) PredictCtx(ctx context.Context, x []float64) (int, error) {
	call := r.calls.Add(1) - 1
	var retrySpan *obs.Span
	for attempt := 0; ; attempt++ {
		retrySpan.End() // close the previous backoff window (nil-safe)
		retrySpan = nil
		y, err := r.inner.PredictCtx(ctx, x)
		if err == nil {
			return y, nil
		}
		if attempt >= r.max || !Retryable(err) {
			return 0, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return 0, cerr
		}
		r.retries.Add(1)
		r.retriesCtr.Inc()
		retrySpan = r.noteRetry(ctx, attempt)
		if d := r.backoff(call, attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				retrySpan.End()
				return 0, ctx.Err()
			case <-t.C:
			}
		}
	}
}

// noteRetry attaches a "retry" marker child to the span carried by ctx
// (nil without one), bounded by maxRetrySpans across the retrier's
// lifetime. The caller ends the returned span once the backoff window
// closes.
func (r *retrier) noteRetry(ctx context.Context, attempt int) *obs.Span {
	sp := obs.SpanFromContext(ctx)
	if sp == nil {
		return nil
	}
	n := r.spanned.Add(1)
	if n > maxRetrySpans {
		return nil
	}
	c := sp.Child("retry")
	c.SetAttr("attempt", attempt+1)
	if n == maxRetrySpans {
		c.SetAttr("truncated", true)
	}
	return c
}

// backoff returns the delay before retry number attempt+1: capped
// exponential growth from base, jittered by ±jitter of the delay.
func (r *retrier) backoff(call int64, attempt int) time.Duration {
	d := r.base << uint(attempt)
	if d > r.cap || d <= 0 { // <= 0 guards shift overflow
		d = r.cap
	}
	frac := 1 + r.jitter*(2*hash01(r.seed, call, attempt)-1)
	return time.Duration(float64(d) * frac)
}

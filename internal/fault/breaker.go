package fault

import (
	"context"
	"sync"
	"time"

	"shahin/internal/obs"
)

// BreakerState is the circuit breaker's three-state machine.
type BreakerState uint8

const (
	// BreakerClosed passes calls through, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects calls without touching the backend until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one trial call through at a time:
	// its success closes the breaker, its failure re-opens it, and
	// concurrent calls arriving while the trial is in flight are
	// rejected with ErrBreakerOpen.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a three-state circuit breaker: BreakerThreshold
// consecutive failures open it; while open every call is rejected with
// ErrBreakerOpen (the caller degrades instead of waiting on a dead
// backend); after the cooldown — wall-clock, call-counted, or both —
// it half-opens and probes, closing again on the first success.
//
// The call-counted cooldown (BreakerCooldownCalls) exists for
// determinism: a breaker timed purely by the wall clock would make
// chaos runs irreproducible. Every transition emits an obs event and
// bumps the breaker counters.
type Breaker struct {
	inner         FallibleClassifier
	name          string // labels events and the state gauge; "" for the chain breaker
	threshold     int
	cooldown      time.Duration
	cooldownCalls int64

	mu       sync.Mutex
	state    BreakerState
	probing  bool      // a half-open trial call is in flight
	fails    int       // consecutive failures while closed/half-open
	rejected int64     // rejections since the breaker last opened
	reopenAt time.Time // wall-clock probe time while open

	opens         atomicInt64
	rejectedTotal atomicInt64

	rec         *obs.Recorder
	opensCtr    *obs.Counter
	rejectedCtr *obs.Counter
	stateGauge  *obs.Gauge
}

// NewBreaker wraps inner with a circuit breaker per cfg.
func NewBreaker(inner FallibleClassifier, cfg Config, rec *obs.Recorder) *Breaker {
	ctrs := newChainCounters(rec)
	b := &Breaker{
		inner:         inner,
		threshold:     cfg.BreakerThreshold,
		cooldown:      cfg.BreakerCooldown,
		cooldownCalls: cfg.BreakerCooldownCalls,
		rec:           rec,
		opensCtr:      ctrs.opens,
		rejectedCtr:   ctrs.rejected,
		stateGauge:    rec.Gauge(obs.GaugeBreakerState),
	}
	// Publish the initial (closed) state so scrapes can tell "closed"
	// from "no breaker in the chain" by the gauge's presence.
	b.stateGauge.Set(int64(BreakerClosed))
	if b.threshold <= 0 {
		b.threshold = 5
	}
	if b.cooldown <= 0 && b.cooldownCalls <= 0 {
		b.cooldownCalls = 100 // an open breaker must always recover
	}
	return b
}

// NewOpBreaker builds a named, classifier-free breaker for arbitrary
// operations driven through Do — the router uses one per replica to
// guard forwarded requests and health probes. The name labels the
// breaker's state gauge (GaugeBreakerState plus a "_<name>" suffix)
// and its transition events, so multiple op breakers on one recorder
// stay distinguishable. NumClasses reports zero; PredictCtx must not
// be used.
func NewOpBreaker(cfg Config, rec *obs.Recorder, name string) *Breaker {
	ctrs := newChainCounters(rec)
	gaugeName := obs.GaugeBreakerState
	if name != "" {
		gaugeName += "_" + name
	}
	b := &Breaker{
		name:          name,
		threshold:     cfg.BreakerThreshold,
		cooldown:      cfg.BreakerCooldown,
		cooldownCalls: cfg.BreakerCooldownCalls,
		rec:           rec,
		opensCtr:      ctrs.opens,
		rejectedCtr:   ctrs.rejected,
		stateGauge:    rec.Gauge(gaugeName),
	}
	b.stateGauge.Set(int64(BreakerClosed))
	if b.threshold <= 0 {
		b.threshold = 5
	}
	if b.cooldown <= 0 && b.cooldownCalls <= 0 {
		b.cooldownCalls = 100
	}
	return b
}

// NumClasses implements FallibleClassifier (zero for an op breaker).
func (b *Breaker) NumClasses() int {
	if b.inner == nil {
		return 0
	}
	return b.inner.NumClasses()
}

// State returns the current breaker state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// PredictCtx implements FallibleClassifier: fail fast while open,
// otherwise pass through and track the outcome.
func (b *Breaker) PredictCtx(ctx context.Context, x []float64) (int, error) {
	wasProbe, err := b.admit(ctx)
	if err != nil {
		return 0, err
	}
	y, err := b.inner.PredictCtx(ctx, x)
	if err := b.settle(ctx, err, wasProbe); err != nil {
		return 0, err
	}
	return y, nil
}

// Do runs op under the breaker's admission and outcome accounting:
// rejected with ErrBreakerOpen while open (or while another half-open
// trial is in flight), otherwise op's error trips the breaker exactly
// like a failed predict. Context-cancellation errors from op are
// passed through without counting against the backend.
func (b *Breaker) Do(ctx context.Context, op func(context.Context) error) error {
	wasProbe, err := b.admit(ctx)
	if err != nil {
		return err
	}
	return b.settle(ctx, op(ctx), wasProbe)
}

// admit decides whether a call may reach the backend. It returns
// wasProbe=true when this call is the single half-open trial — the
// caller must hand that flag back to settle so the probing slot is
// released whatever the outcome.
func (b *Breaker) admit(ctx context.Context) (wasProbe bool, err error) {
	b.mu.Lock()
	if b.state == BreakerOpen {
		ready := b.cooldownCalls > 0 && b.rejected >= b.cooldownCalls
		if !ready && b.cooldown > 0 {
			ready = !time.Now().Before(b.reopenAt) //shahinvet:allow walltime — breaker cooldown clock (timing-only, never affects labels)
		}
		if !ready {
			b.rejected++
			b.mu.Unlock()
			b.rejectedTotal.Add(1)
			b.rejectedCtr.Inc()
			return false, ErrBreakerOpen
		}
		b.transition(ctx, BreakerHalfOpen)
	}
	if b.state == BreakerHalfOpen {
		// Exactly one trial call probes the backend; concurrent calls
		// lose the race and are rejected as if the breaker were open.
		if b.probing {
			b.mu.Unlock()
			b.rejectedTotal.Add(1)
			b.rejectedCtr.Inc()
			return false, ErrBreakerOpen
		}
		b.probing = true
		wasProbe = true
	}
	b.mu.Unlock()
	return wasProbe, nil
}

// settle records a call's outcome and returns err unchanged. A probe
// always releases the probing slot, even when the caller gave up:
// cancellation neither closes nor re-opens the breaker, it just frees
// the slot for the next trial.
func (b *Breaker) settle(ctx context.Context, err error, wasProbe bool) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if wasProbe {
		b.probing = false
	}
	if err != nil {
		if canceled(err) {
			return err // the caller gave up; not the backend's fault
		}
		b.fails++
		if (b.state == BreakerHalfOpen && wasProbe) || (b.state == BreakerClosed && b.fails >= b.threshold) {
			b.open(ctx)
		}
		return err
	}
	b.fails = 0
	if b.state == BreakerHalfOpen && wasProbe {
		b.transition(ctx, BreakerClosed)
	}
	return nil
}

// open moves to BreakerOpen, arming both cooldown clocks. Caller holds mu.
func (b *Breaker) open(ctx context.Context) {
	b.rejected = 0
	if b.cooldown > 0 {
		b.reopenAt = time.Now().Add(b.cooldown) //shahinvet:allow walltime — breaker cooldown clock (timing-only, never affects labels)
	}
	b.opens.Add(1)
	b.opensCtr.Inc()
	b.transition(ctx, BreakerOpen)
}

// transition records a state change: it emits the breaker_state event
// and, when the triggering call's context carries a span, attaches a
// "breaker" marker child naming the state edge. Caller holds mu; the
// recorder and spans have their own locks (taken parent-before-child,
// never back into mu), so both are deadlock-free under mu.
func (b *Breaker) transition(ctx context.Context, to BreakerState) {
	from := b.state
	b.state = to
	b.stateGauge.Set(int64(to))
	edge := from.String() + "->" + to.String()
	b.rec.Emit(obs.Event{
		Type:  obs.EventBreakerState,
		Tuple: -1,
		State: edge,
		Name:  b.name,
	})
	if sp := obs.SpanFromContext(ctx); sp != nil {
		c := sp.Child("breaker")
		c.SetAttr("state", edge)
		c.End()
	}
}

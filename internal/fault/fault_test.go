package fault

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"shahin/internal/obs"
	"shahin/internal/rf"
)

// constant is the trivially reliable backend the chain wraps in tests.
var constant = rf.Func{Classes: 3, F: func(x []float64) int { return 1 }}

// scripted is a FallibleClassifier whose per-call outcomes follow a
// script: errs[i] is call i's error (nil succeeds); calls past the end
// of the script succeed. Safe for the single-goroutine tests below.
type scripted struct {
	errs  []error
	calls int
}

func (s *scripted) NumClasses() int { return 3 }

func (s *scripted) PredictCtx(ctx context.Context, x []float64) (int, error) {
	i := s.calls
	s.calls++
	if i < len(s.errs) && s.errs[i] != nil {
		return 0, s.errs[i]
	}
	return 1, nil
}

// slow is a backend that takes d per call but honours cancellation.
type slow struct{ d time.Duration }

func (s slow) NumClasses() int { return 2 }

func (s slow) PredictCtx(ctx context.Context, x []float64) (int, error) {
	t := time.NewTimer(s.d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-t.C:
		return 1, nil
	}
}

func TestErrorTaxonomy(t *testing.T) {
	for _, err := range []error{ErrInjected, ErrOutage, ErrTimeout} {
		if !Retryable(err) {
			t.Errorf("%v should be retryable", err)
		}
	}
	for _, err := range []error{ErrBreakerOpen, context.Canceled, context.DeadlineExceeded, errors.New("other")} {
		if Retryable(err) {
			t.Errorf("%v should not be retryable", err)
		}
	}
	if !canceled(context.Canceled) || !canceled(context.DeadlineExceeded) {
		t.Error("context errors should classify as canceled")
	}
	if canceled(ErrInjected) {
		t.Error("injected errors are not cancellations")
	}
}

func TestAdapter(t *testing.T) {
	a := Adapt(constant)
	if a.NumClasses() != 3 {
		t.Fatalf("NumClasses=%d", a.NumClasses())
	}
	y, err := a.PredictCtx(context.Background(), nil)
	if err != nil || y != 1 {
		t.Fatalf("PredictCtx=(%d,%v)", y, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.PredictCtx(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled PredictCtx err=%v", err)
	}
}

// TestInjectorDeterminism is the determinism contract: two injectors
// with the same seed fault exactly the same call indices.
func TestInjectorDeterminism(t *testing.T) {
	pattern := func(seed int64) []bool {
		inj := NewInjector(Adapt(constant), Config{FailRate: 0.3, Seed: seed}, nil)
		p := make([]bool, 200)
		for i := range p {
			_, err := inj.PredictCtx(context.Background(), nil)
			p[i] = err != nil
		}
		return p
	}
	a, b := pattern(42), pattern(42)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs across same-seed runs", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("degenerate fault pattern: %d/%d failures", fails, len(a))
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault patterns")
	}
}

func TestInjectorOutageWindow(t *testing.T) {
	inj := NewInjector(Adapt(constant), Config{OutageStart: 3, OutageCalls: 4, Seed: 1}, nil)
	for i := 0; i < 10; i++ {
		_, err := inj.PredictCtx(context.Background(), nil)
		inWindow := i >= 3 && i < 7
		if inWindow && !errors.Is(err, ErrOutage) {
			t.Errorf("call %d: want ErrOutage, got %v", i, err)
		}
		if !inWindow && err != nil {
			t.Errorf("call %d: unexpected error %v", i, err)
		}
	}
	if got := inj.outages.Load(); got != 4 {
		t.Errorf("outages=%d, want 4", got)
	}
}

func TestRetrierRecoversTransients(t *testing.T) {
	inner := &scripted{errs: []error{ErrInjected, ErrInjected, nil}}
	r := newRetrier(inner, Config{MaxRetries: 3, RetryBase: time.Microsecond}, nil)
	y, err := r.PredictCtx(context.Background(), nil)
	if err != nil || y != 1 {
		t.Fatalf("PredictCtx=(%d,%v), want (1,nil)", y, err)
	}
	if got := r.retries.Load(); got != 2 {
		t.Errorf("retries=%d, want 2", got)
	}
}

func TestRetrierExhaustsBudget(t *testing.T) {
	inner := &scripted{errs: []error{ErrInjected, ErrInjected, ErrInjected, ErrInjected}}
	r := newRetrier(inner, Config{MaxRetries: 2, RetryBase: time.Microsecond}, nil)
	if _, err := r.PredictCtx(context.Background(), nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("err=%v, want ErrInjected after exhausting retries", err)
	}
	if inner.calls != 3 {
		t.Errorf("inner saw %d calls, want 3 (1 + 2 retries)", inner.calls)
	}
}

func TestRetrierSkipsNonRetryable(t *testing.T) {
	inner := &scripted{errs: []error{ErrBreakerOpen}}
	r := newRetrier(inner, Config{MaxRetries: 5, RetryBase: time.Microsecond}, nil)
	if _, err := r.PredictCtx(context.Background(), nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err=%v, want ErrBreakerOpen", err)
	}
	if inner.calls != 1 {
		t.Errorf("non-retryable error was retried (%d calls)", inner.calls)
	}
}

// TestBackoffBounds checks the schedule: exponential growth from base,
// capped, jitter within ±jitter, and deterministic per (call, attempt).
func TestBackoffBounds(t *testing.T) {
	r := newRetrier(&scripted{}, Config{
		MaxRetries: 3, RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
		RetryJitter: 0.2, Seed: 9,
	}, nil)
	for attempt := 0; attempt < 10; attempt++ {
		want := time.Millisecond << uint(attempt)
		if want > 4*time.Millisecond || want <= 0 {
			want = 4 * time.Millisecond
		}
		d := r.backoff(7, attempt)
		lo := time.Duration(float64(want) * 0.8)
		hi := time.Duration(float64(want) * 1.2)
		if d < lo || d > hi {
			t.Errorf("backoff(7,%d)=%v outside [%v,%v]", attempt, d, lo, hi)
		}
		if d2 := r.backoff(7, attempt); d2 != d {
			t.Errorf("backoff(7,%d) not deterministic: %v vs %v", attempt, d, d2)
		}
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	inner := &scripted{errs: []error{ErrInjected, ErrInjected, ErrInjected}}
	b := NewBreaker(inner, Config{BreakerThreshold: 3, BreakerCooldownCalls: 2}, nil)

	for i := 0; i < 3; i++ {
		if _, err := b.PredictCtx(context.Background(), nil); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d err=%v", i, err)
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state=%v after %d failures, want open", b.State(), 3)
	}
	// Two rejections burn the call-counted cooldown.
	for i := 0; i < 2; i++ {
		if _, err := b.PredictCtx(context.Background(), nil); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("rejection %d err=%v, want ErrBreakerOpen", i, err)
		}
	}
	// The next call probes half-open; the scripted backend has recovered,
	// so the probe succeeds and the breaker closes.
	y, err := b.PredictCtx(context.Background(), nil)
	if err != nil || y != 1 {
		t.Fatalf("probe=(%d,%v), want (1,nil)", y, err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state=%v after successful probe, want closed", b.State())
	}
	if got := b.opens.Load(); got != 1 {
		t.Errorf("opens=%d, want 1", got)
	}
	if got := b.rejectedTotal.Load(); got != 2 {
		t.Errorf("rejected=%d, want 2", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	inner := &scripted{errs: []error{ErrInjected, ErrInjected, ErrInjected, ErrInjected}}
	b := NewBreaker(inner, Config{BreakerThreshold: 3, BreakerCooldownCalls: 1}, nil)
	for i := 0; i < 3; i++ {
		b.PredictCtx(context.Background(), nil) //shahinvet:allow errcheck — driving the breaker to open
	}
	b.PredictCtx(context.Background(), nil) //shahinvet:allow errcheck — rejection burns the cooldown
	// Probe fails (4th scripted error): straight back to open.
	if _, err := b.PredictCtx(context.Background(), nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("probe err=%v, want ErrInjected", err)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state=%v after failed probe, want open", b.State())
	}
	if got := b.opens.Load(); got != 2 {
		t.Errorf("opens=%d, want 2", got)
	}
}

func TestBreakerIgnoresCancellation(t *testing.T) {
	b := NewBreaker(Adapt(constant), Config{BreakerThreshold: 2}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 5; i++ {
		if _, err := b.PredictCtx(ctx, nil); !errors.Is(err, context.Canceled) {
			t.Fatalf("err=%v, want context.Canceled", err)
		}
	}
	if b.State() != BreakerClosed {
		t.Fatalf("cancellations tripped the breaker (state=%v)", b.State())
	}
}

func TestBreakerEmitsTransitions(t *testing.T) {
	rec := obs.NewRecorder()
	inner := &scripted{errs: []error{ErrInjected, ErrInjected}}
	b := NewBreaker(inner, Config{BreakerThreshold: 2, BreakerCooldownCalls: 1}, rec)
	b.PredictCtx(context.Background(), nil) //shahinvet:allow errcheck — driving the breaker
	b.PredictCtx(context.Background(), nil) //shahinvet:allow errcheck — opens here
	events, _ := rec.Events()
	var states []string
	for _, e := range events {
		if e.Type == obs.EventBreakerState {
			states = append(states, e.State)
		}
	}
	if len(states) != 1 || states[0] != "closed->open" {
		t.Fatalf("transition events=%v, want [closed->open]", states)
	}
}

func TestDeadlineGuardTimesOut(t *testing.T) {
	g := &deadlineGuard{inner: slow{d: time.Second}, timeout: 5 * time.Millisecond}
	start := time.Now() //shahinvet:allow walltime — bounding the guard's return latency is the point of the test
	_, err := g.PredictCtx(context.Background(), nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err=%v, want ErrTimeout", err)
	}
	if !Retryable(err) {
		t.Error("ErrTimeout must be retryable")
	}
	if took := time.Since(start); took > 500*time.Millisecond {
		t.Errorf("guard took %v to give up on a 5ms deadline", took)
	}
}

func TestDeadlineGuardParentCancelWins(t *testing.T) {
	g := &deadlineGuard{inner: slow{d: time.Second}, timeout: time.Minute}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.PredictCtx(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled (not ErrTimeout)", err)
	}
}

func TestDeadlineGuardPassThrough(t *testing.T) {
	g := &deadlineGuard{inner: Adapt(constant), timeout: time.Second}
	y, err := g.PredictCtx(context.Background(), nil)
	if err != nil || y != 1 {
		t.Fatalf("PredictCtx=(%d,%v)", y, err)
	}
}

// TestChainZeroConfig: the zero config builds a pure pass-through chain
// that still honours cancellation.
func TestChainZeroConfig(t *testing.T) {
	ch := Build(constant, Config{}, nil)
	if ch.CanFail() {
		t.Error("zero config must not be able to fail")
	}
	y, err := ch.PredictCtx(context.Background(), nil)
	if err != nil || y != 1 {
		t.Fatalf("PredictCtx=(%d,%v)", y, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ch.PredictCtx(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled PredictCtx err=%v", err)
	}
	if s := ch.Stats(); s != (Stats{}) {
		t.Errorf("zero-config stats=%+v", s)
	}
	var nilChain *Chain
	if s := nilChain.Stats(); s != (Stats{}) {
		t.Errorf("nil chain stats=%+v", s)
	}
}

// TestChainFullStack drives the assembled stack end to end: injected
// faults are retried to success and the stats tally every layer.
func TestChainFullStack(t *testing.T) {
	ch := Build(constant, Config{
		FailRate:   0.3,
		Seed:       5,
		MaxRetries: 8,
		RetryBase:  time.Microsecond,
		// Retries always outlast a fault streak at this rate, so the
		// breaker must never open.
		BreakerThreshold: 20,
	}, nil)
	if !ch.CanFail() {
		t.Fatal("chain with FailRate should report CanFail")
	}
	for i := 0; i < 100; i++ {
		y, err := ch.PredictCtx(context.Background(), nil)
		if err != nil || y != 1 {
			t.Fatalf("call %d: (%d,%v)", i, y, err)
		}
	}
	s := ch.Stats()
	if s.Injected == 0 || s.Retries == 0 {
		t.Errorf("stats=%+v: expected injected faults and retries", s)
	}
	if s.Retries != s.Injected {
		t.Errorf("retries=%d injected=%d: every injected fault should cost exactly one retry", s.Retries, s.Injected)
	}
	if s.Opens != 0 {
		t.Errorf("breaker opened %d times under a generous retry budget", s.Opens)
	}
}

// TestChainConcurrentCalls hammers the shared chain from many
// goroutines; under -race it proves the stack is goroutine-safe.
func TestChainConcurrentCalls(t *testing.T) {
	rec := obs.NewRecorder()
	ch := Build(constant, Config{
		FailRate:         0.2,
		Seed:             11,
		MaxRetries:       6,
		RetryBase:        time.Microsecond,
		BreakerThreshold: 50,
	}, rec)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if y, err := ch.PredictCtx(context.Background(), nil); err == nil && y != 1 {
					t.Errorf("wrong label %d", y)
				}
			}
		}()
	}
	wg.Wait()
	if ch.Stats().Calls < 400 {
		t.Errorf("injector saw %d calls, want >= 400", ch.Stats().Calls)
	}
	if got := rec.Counter(obs.CounterFaultsInjected).Value(); got != ch.Stats().Injected {
		t.Errorf("obs counter %d != chain stat %d", got, ch.Stats().Injected)
	}
}

// TestBreakerStateGauge: the breaker mirrors every transition into the
// Prometheus state gauge (0 closed, 1 open, 2 half-open), starting from
// an explicit 0 at construction.
func TestBreakerStateGauge(t *testing.T) {
	rec := obs.NewRecorder()
	g := rec.Gauge(obs.GaugeBreakerState)
	inner := &scripted{errs: []error{ErrInjected, ErrInjected, ErrInjected}}
	b := NewBreaker(inner, Config{BreakerThreshold: 2, BreakerCooldownCalls: 1}, rec)
	if g.Value() != int64(BreakerClosed) {
		t.Fatalf("gauge at construction = %d, want %d (closed)", g.Value(), BreakerClosed)
	}
	b.PredictCtx(context.Background(), nil) //shahinvet:allow errcheck — driving the breaker
	b.PredictCtx(context.Background(), nil) //shahinvet:allow errcheck — second failure opens
	if g.Value() != int64(BreakerOpen) {
		t.Fatalf("gauge after opening = %d, want %d (open)", g.Value(), BreakerOpen)
	}
	b.PredictCtx(context.Background(), nil) //shahinvet:allow errcheck — rejection burns the cooldown
	// Next call probes half-open; the third scripted error fails the
	// probe, but the gauge must have passed through half-open first. The
	// probe transition is synchronous, so observe the final reopened
	// state and the transition events for the half-open hop.
	b.PredictCtx(context.Background(), nil) //shahinvet:allow errcheck — failing probe
	if g.Value() != int64(BreakerOpen) {
		t.Fatalf("gauge after failed probe = %d, want %d (open)", g.Value(), BreakerOpen)
	}
	events, _ := rec.Events()
	var sawHalfOpen bool
	for _, e := range events {
		if e.Type == obs.EventBreakerState && e.State == "open->half-open" {
			sawHalfOpen = true
		}
	}
	if !sawHalfOpen {
		t.Error("no half-open transition event recorded")
	}
	// A successful probe closes the breaker and zeroes the gauge.
	inner.errs = nil
	b.PredictCtx(context.Background(), nil) //shahinvet:allow errcheck — rejection burns the cooldown
	if _, err := b.PredictCtx(context.Background(), nil); err != nil {
		t.Fatalf("recovered probe err=%v", err)
	}
	if g.Value() != int64(BreakerClosed) {
		t.Fatalf("gauge after recovery = %d, want %d (closed)", g.Value(), BreakerClosed)
	}
}

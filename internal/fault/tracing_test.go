package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"shahin/internal/obs"
)

// retryChildren collects the "retry" marker children of a span dump in
// order.
func retryChildren(d *obs.SpanDump) []*obs.SpanDump {
	var out []*obs.SpanDump
	for _, c := range d.Children {
		if c.Name == "retry" {
			out = append(out, c)
		}
	}
	return out
}

// TestRetrySpans checks that a context-carried span gains one "retry"
// marker child per reattempt, stamped with the 1-based attempt number.
func TestRetrySpans(t *testing.T) {
	rec := obs.NewRecorder()
	root := rec.StartDetachedSpan("request")
	ctx := obs.ContextWithSpan(context.Background(), root)

	inner := &scripted{errs: []error{ErrInjected, ErrInjected, nil}}
	r := newRetrier(inner, Config{MaxRetries: 3, RetryBase: time.Microsecond}, nil)
	if y, err := r.PredictCtx(ctx, nil); err != nil || y != 1 {
		t.Fatalf("PredictCtx=(%d,%v), want (1,nil)", y, err)
	}
	root.End()

	got := retryChildren(root.Dump())
	if len(got) != 2 {
		t.Fatalf("retry spans=%d, want 2", len(got))
	}
	for i, c := range got {
		if c.Attrs["attempt"] != i+1 {
			t.Errorf("retry span %d: attempt=%v, want %d", i, c.Attrs["attempt"], i+1)
		}
	}
}

// TestRetrySpansWithoutContextSpan checks the retrier stays silent (and
// does not panic) when the context carries no span.
func TestRetrySpansWithoutContextSpan(t *testing.T) {
	inner := &scripted{errs: []error{ErrInjected, nil}}
	r := newRetrier(inner, Config{MaxRetries: 2, RetryBase: time.Microsecond}, nil)
	if _, err := r.PredictCtx(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if got := r.spanned.Load(); got != 0 {
		t.Errorf("spanned=%d without a context span, want 0", got)
	}
}

// TestRetrySpanCap drives an outage storm past maxRetrySpans and checks
// the marker spans stop at the cap, with the last one flagged truncated,
// while the retry counter keeps the true total.
func TestRetrySpanCap(t *testing.T) {
	rec := obs.NewRecorder()
	root := rec.StartDetachedSpan("request")
	ctx := obs.ContextWithSpan(context.Background(), root)

	const calls = 40 // 2 retries each = 80 attempts, past the 64-span cap
	errsAll := make([]error, 3*calls)
	for i := range errsAll {
		errsAll[i] = ErrInjected
	}
	r := newRetrier(&scripted{errs: errsAll}, Config{MaxRetries: 2, RetryBase: time.Microsecond}, nil)
	for i := 0; i < calls; i++ {
		if _, err := r.PredictCtx(ctx, nil); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d err=%v, want ErrInjected", i, err)
		}
	}
	root.End()

	if got := r.retries.Load(); got != 2*calls {
		t.Fatalf("retries=%d, want %d", got, 2*calls)
	}
	got := retryChildren(root.Dump())
	if len(got) != maxRetrySpans {
		t.Fatalf("retry spans=%d, want cap %d", len(got), maxRetrySpans)
	}
	last := got[len(got)-1]
	if last.Attrs["truncated"] != true {
		t.Errorf("final capped span lacks the truncated flag: %v", last.Attrs)
	}
}

// TestBreakerTransitionSpans trips a breaker and walks it back to
// closed, checking each state edge leaves a "breaker" marker child on
// the span carried by the triggering call's context.
func TestBreakerTransitionSpans(t *testing.T) {
	rec := obs.NewRecorder()
	root := rec.StartDetachedSpan("request")
	ctx := obs.ContextWithSpan(context.Background(), root)

	inner := &scripted{errs: []error{ErrInjected, ErrInjected}}
	b := NewBreaker(inner, Config{BreakerThreshold: 2, BreakerCooldownCalls: 1}, nil)

	for i := 0; i < 2; i++ {
		if _, err := b.PredictCtx(ctx, nil); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d err=%v", i, err)
		}
	}
	if _, err := b.PredictCtx(ctx, nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("cooldown rejection err=%v, want ErrBreakerOpen", err)
	}
	if y, err := b.PredictCtx(ctx, nil); err != nil || y != 1 {
		t.Fatalf("probe=(%d,%v), want (1,nil)", y, err)
	}
	root.End()

	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	var got []string
	for _, c := range root.Dump().Children {
		if c.Name == "breaker" {
			got = append(got, c.Attrs["state"].(string))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("breaker spans=%v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("breaker edge %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// Package fault is the failure model of the classifier backend: the
// pipeline above it assumes rf.Classifier.Predict can never fail, but
// the production target is a remote model server that times out,
// throttles, and goes down for whole windows. This package expresses
// those failures as errors on a context-aware interface and stacks the
// standard resilience layers on top — deterministic fault injection
// (for chaos testing), per-call deadlines, retry with capped
// exponential backoff and deterministic jitter, and a three-state
// circuit breaker — so the core pipeline can degrade gracefully
// instead of failing a whole batch.
//
// Determinism contract: every fault decision is drawn from a seeded
// RNG keyed by call index, never from the wall clock, so two runs with
// the same fault seed inject the same faults at the same calls.
// Wall-clock reads are confined to the breaker's cooldown clock and
// the backoff timer, which affect only timing, never which label a
// call returns.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"shahin/internal/obs"
	"shahin/internal/rf"
)

// FallibleClassifier is the failure-aware classifier interface: like
// rf.Classifier, but Predict can be cancelled and can fail.
type FallibleClassifier interface {
	NumClasses() int
	PredictCtx(ctx context.Context, x []float64) (int, error)
}

// ErrTransient is the class of failures worth retrying: injected
// errors, outage windows, and per-call timeouts all wrap it. Context
// cancellation and breaker rejections do not.
var ErrTransient = errors.New("transient classifier failure")

// ErrInjected marks a fault-injector transient error.
var ErrInjected = fmt.Errorf("%w: injected error", ErrTransient)

// ErrOutage marks a call landing inside an injected outage window.
var ErrOutage = fmt.Errorf("%w: injected outage", ErrTransient)

// ErrTimeout marks a call that exceeded its per-call deadline while
// the parent context was still live.
var ErrTimeout = fmt.Errorf("%w: predict deadline exceeded", ErrTransient)

// ErrBreakerOpen is returned without touching the backend while the
// circuit breaker is open. Not retryable: the caller should degrade.
var ErrBreakerOpen = errors.New("circuit breaker open")

// Retryable reports whether a retry can plausibly fix err.
func Retryable(err error) bool { return errors.Is(err, ErrTransient) }

// canceled reports whether err is the caller giving up rather than
// the backend failing; such errors must not trip the breaker.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Adapter lifts a plain rf.Classifier into the fallible interface:
// it honours context cancellation before invoking the backend and
// never fails otherwise.
type Adapter struct {
	inner rf.Classifier
}

// Adapt wraps c.
func Adapt(c rf.Classifier) *Adapter { return &Adapter{inner: c} }

// NumClasses implements FallibleClassifier.
func (a *Adapter) NumClasses() int { return a.inner.NumClasses() }

// PredictCtx implements FallibleClassifier.
func (a *Adapter) PredictCtx(ctx context.Context, x []float64) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return a.inner.Predict(x), nil
}

// Config assembles the whole resilience stack. The zero value builds a
// pass-through chain (context honoured, nothing injected, no retries,
// no breaker) so callers can thread one configuration value
// unconditionally.
type Config struct {
	// FailRate is the probability that a call fails with ErrInjected.
	FailRate float64
	// SpikeRate is the probability that a call stalls for SpikeDelay
	// before reaching the backend (tail-latency injection; pair with
	// PredictTimeout to turn spikes into timeouts).
	SpikeRate  float64
	SpikeDelay time.Duration
	// OutageStart/OutageCalls define a hard outage window in call
	// indices: calls [OutageStart, OutageStart+OutageCalls) fail with
	// ErrOutage. Call-indexed (not timed) so the window is
	// deterministic under any scheduling. OutageCalls <= 0 disables.
	OutageStart int64
	OutageCalls int64
	// Seed drives the injector RNG; 0 keeps injection deterministic
	// with seed 0 (callers normally derive it from the run seed).
	Seed int64

	// PredictTimeout is the per-attempt deadline. Predict runs on a
	// goroutine so even an uninterruptible backend call returns to the
	// caller within the deadline; <= 0 disables the guard (and its
	// per-call goroutine cost).
	PredictTimeout time.Duration

	// MaxRetries is how many times a transient failure is retried
	// (0 = fail on first error). Backoff between attempts is capped
	// exponential with deterministic jitter: base RetryBase (default
	// 1ms), doubling per attempt, capped at RetryMax (default 50ms),
	// jittered by ±RetryJitter (default 0.2) of the delay.
	MaxRetries  int
	RetryBase   time.Duration
	RetryMax    time.Duration
	RetryJitter float64

	// BreakerThreshold opens the breaker after this many consecutive
	// failures (default 5; < 0 disables the breaker entirely).
	BreakerThreshold int
	// BreakerCooldown is the wall-clock open→half-open delay.
	// BreakerCooldownCalls is the deterministic alternative: the
	// breaker probes after rejecting this many calls. Either (or both)
	// may be set; when both are zero the calls-based cooldown defaults
	// to 100 so an open breaker always recovers.
	BreakerCooldown      time.Duration
	BreakerCooldownCalls int64
}

// active reports whether the config can produce failures at all.
func (c Config) active() bool {
	return c.FailRate > 0 || c.SpikeRate > 0 || c.OutageCalls > 0 || c.PredictTimeout > 0
}

// Chain is the assembled resilience stack over a classifier. From the
// outside in: circuit breaker → retry/backoff → per-call deadline →
// fault injector → context adapter → the real classifier. Layers not
// configured are simply absent.
type Chain struct {
	top     FallibleClassifier
	classes int
	canFail bool

	injector *Injector
	retrier  *retrier
	breaker  *Breaker
}

// Build assembles the chain for cls under cfg, wiring transition
// events and counters into rec (nil disables instrumentation).
func Build(cls rf.Classifier, cfg Config, rec *obs.Recorder) *Chain {
	ch := &Chain{classes: cls.NumClasses(), canFail: cfg.active()}
	var top FallibleClassifier = Adapt(cls)
	if cfg.FailRate > 0 || cfg.SpikeRate > 0 || cfg.OutageCalls > 0 {
		ch.injector = NewInjector(top, cfg, rec)
		top = ch.injector
	}
	if cfg.PredictTimeout > 0 {
		top = &deadlineGuard{inner: top, timeout: cfg.PredictTimeout}
	}
	if cfg.MaxRetries > 0 {
		ch.retrier = newRetrier(top, cfg, rec)
		top = ch.retrier
	}
	if cfg.BreakerThreshold >= 0 && ch.canFail {
		ch.breaker = NewBreaker(top, cfg, rec)
		top = ch.breaker
	}
	ch.top = top
	return ch
}

// NumClasses implements FallibleClassifier.
func (c *Chain) NumClasses() int { return c.classes }

// PredictCtx implements FallibleClassifier through the full stack.
func (c *Chain) PredictCtx(ctx context.Context, x []float64) (int, error) {
	return c.top.PredictCtx(ctx, x)
}

// CanFail reports whether this chain can return backend errors (vs
// only context cancellation); callers skip fallback bookkeeping when
// it cannot.
func (c *Chain) CanFail() bool { return c.canFail }

// Stats is a point-in-time tally of everything the chain did.
type Stats struct {
	Calls    int64 `json:"calls"`
	Injected int64 `json:"injected_errors"`
	Outages  int64 `json:"outage_errors"`
	Retries  int64 `json:"retries"`
	Opens    int64 `json:"breaker_opens"`
	Rejected int64 `json:"breaker_rejected"`
}

// Stats snapshots the chain's counters (zero value on a nil chain).
func (c *Chain) Stats() Stats {
	var s Stats
	if c == nil {
		return s
	}
	if c.injector != nil {
		s.Calls = c.injector.calls.Load()
		s.Injected = c.injector.injected.Load()
		s.Outages = c.injector.outages.Load()
	}
	if c.retrier != nil {
		s.Retries = c.retrier.retries.Load()
	}
	if c.breaker != nil {
		s.Opens = c.breaker.opens.Load()
		s.Rejected = c.breaker.rejectedTotal.Load()
	}
	return s
}

// deadlineGuard enforces a per-call deadline around an inner call that
// may itself be uninterruptible: the call runs on a goroutine and the
// guard returns ErrTimeout when the deadline fires first (the
// abandoned attempt finishes on its own and is discarded).
type deadlineGuard struct {
	inner   FallibleClassifier
	timeout time.Duration
}

// NumClasses implements FallibleClassifier.
func (g *deadlineGuard) NumClasses() int { return g.inner.NumClasses() }

// PredictCtx implements FallibleClassifier with the per-call deadline.
func (g *deadlineGuard) PredictCtx(ctx context.Context, x []float64) (int, error) {
	dctx, cancel := context.WithTimeout(ctx, g.timeout)
	defer cancel()
	type result struct {
		y   int
		err error
	}
	done := make(chan result, 1) // buffered: the abandoned attempt must not block
	go func() {
		y, err := g.inner.PredictCtx(dctx, x)
		done <- result{y, err}
	}()
	select {
	case r := <-done:
		if r.err != nil && errors.Is(r.err, context.DeadlineExceeded) && ctx.Err() == nil {
			return 0, ErrTimeout
		}
		return r.y, r.err
	case <-dctx.Done():
		if err := ctx.Err(); err != nil {
			return 0, err // the caller gave up, not the deadline
		}
		return 0, ErrTimeout
	}
}

// splitmix64 is the deterministic hash behind backoff jitter: cheap,
// stateless, and independent of goroutine interleaving.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash01 maps (seed, call, attempt) to [0,1) deterministically.
func hash01(seed int64, call int64, attempt int) float64 {
	h := splitmix64(uint64(seed) ^ uint64(call)<<16 ^ uint64(attempt))
	return float64(h>>11) / float64(1<<53)
}

var _ FallibleClassifier = (*Chain)(nil)

// counters shared by the layers; resolved once at build time.
type chainCounters struct {
	injected *obs.Counter
	outages  *obs.Counter
	retries  *obs.Counter
	opens    *obs.Counter
	rejected *obs.Counter
}

func newChainCounters(rec *obs.Recorder) chainCounters {
	return chainCounters{
		injected: rec.Counter(obs.CounterFaultsInjected),
		outages:  rec.Counter(obs.CounterFaultOutages),
		retries:  rec.Counter(obs.CounterRetries),
		opens:    rec.Counter(obs.CounterBreakerOpens),
		rejected: rec.Counter(obs.CounterBreakerRejected),
	}
}

// atomicInt64 is a tiny alias to keep struct fields compact.
type atomicInt64 = atomic.Int64

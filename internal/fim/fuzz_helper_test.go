package fim

import "math/rand"

// newRand builds a deterministic RNG for fuzz inputs.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Package fim implements the frequent itemset mining substrate Shahin uses
// to decide which perturbations are worth materialising. It is a classic
// Apriori over discretised tuples with bitmap tid-lists for support
// counting, extended with the negative border (itemsets that are
// infrequent but whose immediate subsets are all frequent), which the
// streaming variant of Shahin tracks (paper §3.5).
package fim

import (
	"fmt"
	"sort"

	"shahin/internal/bitset"
	"shahin/internal/dataset"
)

// Config controls a mining run.
type Config struct {
	// MinSupport is the relative support threshold in (0, 1].
	MinSupport float64
	// MaxLen caps itemset length; 0 means dataset.MaxItemsetLen. Values
	// above dataset.MaxItemsetLen are rejected because downstream caches
	// key on fixed-width itemset keys.
	MaxLen int
	// WithBorder also computes the negative border (needed by the
	// streaming variant; the batch variant can skip it).
	WithBorder bool
	// MaxPerLevel keeps only the top-K itemsets by support at each level
	// (0 = unlimited). Shahin only materialises the highest-support
	// itemsets, so bounding each level caps the candidate explosion on
	// datasets with many correlated low-cardinality attributes. When
	// trimming occurs, results (and the border) are the top slice of the
	// true answer, not the complete set.
	MaxPerLevel int
}

func (c *Config) validate() error {
	if c.MinSupport <= 0 || c.MinSupport > 1 {
		return fmt.Errorf("fim: MinSupport %g outside (0,1]", c.MinSupport)
	}
	if c.MaxLen < 0 || c.MaxLen > dataset.MaxItemsetLen {
		return fmt.Errorf("fim: MaxLen %d outside [0,%d]", c.MaxLen, dataset.MaxItemsetLen)
	}
	if c.MaxPerLevel < 0 {
		return fmt.Errorf("fim: negative MaxPerLevel %d", c.MaxPerLevel)
	}
	return nil
}

// Mined is one itemset with its measured support.
type Mined struct {
	Set     dataset.Itemset
	Count   int     // absolute support in the mined rows
	Support float64 // Count / number of rows
}

// Result holds the frequent itemsets and (optionally) the negative border,
// both sorted by ascending length then descending support.
type Result struct {
	Rows     int // how many transactions were mined
	Frequent []Mined
	Border   []Mined
}

// SampleSize returns the paper's heuristic for how many tuples of a batch
// to mine: max(1000, 1% of the batch), capped at the batch size.
func SampleSize(batch int) int {
	n := batch / 100
	if n < 1000 {
		n = 1000
	}
	if n > batch {
		n = batch
	}
	return n
}

// Mine runs Apriori over itemised transactions. Each row must be in
// canonical order (ascending item, at most one item per attribute), as
// produced by Stats.ItemizeRow.
func Mine(rows []dataset.Itemset, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	maxLen := cfg.MaxLen
	if maxLen == 0 {
		maxLen = dataset.MaxItemsetLen
	}
	res := &Result{Rows: len(rows)}
	if len(rows) == 0 {
		return res, nil
	}
	minCount := int(cfg.MinSupport * float64(len(rows)))
	if float64(minCount) < cfg.MinSupport*float64(len(rows)) {
		minCount++
	}
	if minCount < 1 {
		minCount = 1
	}

	// Level 1: count every observed item and build tid-lists for the
	// frequent ones.
	counts := make(map[dataset.Item]int)
	for _, row := range rows {
		for _, it := range row {
			counts[it]++
		}
	}
	itemBM := make(map[dataset.Item]*bitset.Set)
	var level []node
	for it, c := range counts {
		if c < minCount {
			if cfg.WithBorder {
				// Every immediate subset of a 1-itemset is the empty set,
				// which is trivially frequent, so all observed infrequent
				// items are border members.
				res.Border = append(res.Border, Mined{
					Set:     dataset.Itemset{it},
					Count:   c,
					Support: float64(c) / float64(len(rows)),
				})
			}
			continue
		}
		bm := bitset.New(len(rows))
		itemBM[it] = bm
		level = append(level, node{set: dataset.Itemset{it}, cnt: c})
	}
	// Fill tid-lists in one pass over the data.
	for ti, row := range rows {
		for _, it := range row {
			if bm, ok := itemBM[it]; ok {
				bm.Set(ti)
			}
		}
	}
	for i := range level {
		level[i].bm = itemBM[level[i].set[0]]
	}
	level = trimLevel(level, cfg.MaxPerLevel)
	sortNodes(level)
	appendFrequent(res, level, len(rows))

	frequentKeys := make(map[dataset.ItemsetKey]bool)
	for _, nd := range level {
		frequentKeys[nd.set.Key()] = true
	}

	// Levels 2..maxLen: candidate generation by prefix join + Apriori
	// pruning, support by bitmap intersection.
	for k := 2; k <= maxLen && len(level) > 1; k++ {
		var next []node
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i].set, level[j].set
				if !samePrefix(a, b) {
					break // nodes are sorted; once prefixes diverge, stop
				}
				la, lb := a[len(a)-1], b[len(b)-1]
				if la.Attr() == lb.Attr() {
					continue // one item per attribute
				}
				cand := make(dataset.Itemset, len(a)+1)
				copy(cand, a)
				cand[len(a)] = lb
				if !allSubsetsFrequent(cand, frequentKeys) {
					continue
				}
				cnt := bitset.AndCount(level[i].bm, itemBM[lb])
				if cnt >= minCount {
					next = append(next, node{
						set: cand,
						bm:  bitset.And(level[i].bm, itemBM[lb]),
						cnt: cnt,
					})
				} else if cfg.WithBorder {
					res.Border = append(res.Border, Mined{
						Set:     cand,
						Count:   cnt,
						Support: float64(cnt) / float64(len(rows)),
					})
				}
			}
		}
		next = trimLevel(next, cfg.MaxPerLevel)
		sortNodes(next)
		appendFrequent(res, next, len(rows))
		for _, nd := range next {
			frequentKeys[nd.set.Key()] = true
		}
		level = next
	}
	sortMined(res.Frequent)
	sortMined(res.Border)
	return res, nil
}

// trimLevel keeps the top-k nodes by support (all of them when k is 0 or
// the level is small enough). Ties at the cut are broken by canonical
// itemset order: level-1 nodes arrive in map-iteration order, and an
// unstable count-only sort would let that order pick which equal-support
// itemsets survive — nondeterministic mining results.
func trimLevel(nodes []node, k int) []node {
	if k <= 0 || len(nodes) <= k {
		return nodes
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].cnt != nodes[j].cnt {
			return nodes[i].cnt > nodes[j].cnt
		}
		return lessItemsets(nodes[i].set, nodes[j].set)
	})
	return nodes[:k]
}

// samePrefix reports whether a and b agree on all but their last item.
func samePrefix(a, b dataset.Itemset) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent applies the Apriori pruning rule: every (k-1)-subset
// of cand must already be frequent.
func allSubsetsFrequent(cand dataset.Itemset, frequent map[dataset.ItemsetKey]bool) bool {
	if len(cand) <= 2 {
		return true // both 1-subsets are the joined nodes, known frequent
	}
	sub := make(dataset.Itemset, 0, len(cand)-1)
	for skip := 0; skip < len(cand)-2; skip++ {
		// Subsets missing one of the first len-2 items; the two subsets
		// missing the last items are the join parents, already frequent.
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !frequent[sub.Key()] {
			return false
		}
	}
	return true
}

// node is a frequent itemset at the current Apriori level together with
// its tid-list bitmap.
type node struct {
	set dataset.Itemset
	bm  *bitset.Set
	cnt int
}

func sortNodes(nodes []node) {
	sort.Slice(nodes, func(i, j int) bool {
		return lessItemsets(nodes[i].set, nodes[j].set)
	})
}

func appendFrequent(res *Result, nodes []node, rows int) {
	for _, nd := range nodes {
		res.Frequent = append(res.Frequent, Mined{
			Set:     nd.set,
			Count:   nd.cnt,
			Support: float64(nd.cnt) / float64(rows),
		})
	}
}

// lessItemsets orders itemsets lexicographically (which, with
// attribute-major item encoding, is the canonical Apriori order).
func lessItemsets(a, b dataset.Itemset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// sortMined orders by ascending length, then descending support, then
// lexicographic, so callers get the most shareable itemsets first within
// each length.
func sortMined(ms []Mined) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := &ms[i], &ms[j]
		if len(a.Set) != len(b.Set) {
			return len(a.Set) < len(b.Set)
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return lessItemsets(a.Set, b.Set)
	})
}

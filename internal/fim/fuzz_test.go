package fim

import (
	"testing"

	"shahin/internal/dataset"
)

// FuzzMine feeds randomly-shaped transaction sets to the miner and checks
// the structural invariants that must hold on any input: supports within
// [minCount, rows], canonical itemsets (sorted, one item per attribute),
// and a border disjoint from the frequent set.
func FuzzMine(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(2), false)
	f.Add(int64(2), uint8(20), uint8(5), uint8(4), true)
	f.Add(int64(3), uint8(1), uint8(1), uint8(1), true)
	f.Fuzz(func(t *testing.T, seed int64, nRows, nAttr, nBins uint8, border bool) {
		rows := int(nRows%64) + 1
		attrs := int(nAttr%8) + 1
		bins := int(nBins%5) + 1
		rng := newRand(seed)
		txs := make([]dataset.Itemset, rows)
		for i := range txs {
			row := make(dataset.Itemset, attrs)
			for a := 0; a < attrs; a++ {
				row[a] = dataset.MakeItem(a, rng.Intn(bins))
			}
			txs[i] = row
		}
		minSup := 0.05 + float64(seed%90)/100
		res, err := Mine(txs, Config{MinSupport: minSup, MaxLen: 3, WithBorder: border})
		if err != nil {
			t.Fatal(err)
		}
		minCount := int(minSup * float64(rows))
		if float64(minCount) < minSup*float64(rows) {
			minCount++
		}
		if minCount < 1 {
			minCount = 1
		}
		seen := map[dataset.ItemsetKey]bool{}
		for _, m := range res.Frequent {
			if m.Count < minCount || m.Count > rows {
				t.Fatalf("frequent %v count %d outside [%d,%d]", m.Set, m.Count, minCount, rows)
			}
			checkCanonical(t, m.Set)
			seen[m.Set.Key()] = true
		}
		for _, m := range res.Border {
			if m.Count >= minCount {
				t.Fatalf("border %v count %d >= %d", m.Set, m.Count, minCount)
			}
			checkCanonical(t, m.Set)
			if seen[m.Set.Key()] {
				t.Fatalf("itemset %v in both frequent and border", m.Set)
			}
		}
	})
}

func checkCanonical(t *testing.T, is dataset.Itemset) {
	t.Helper()
	for i := 1; i < len(is); i++ {
		if is[i] <= is[i-1] {
			t.Fatalf("itemset %v not canonical", is)
		}
		if is[i].Attr() == is[i-1].Attr() {
			t.Fatalf("itemset %v repeats attribute", is)
		}
	}
}

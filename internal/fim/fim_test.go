package fim

import (
	"math/rand"
	"sort"
	"testing"

	"shahin/internal/dataset"
)

// it is shorthand for building items in tests.
func it(attr, bin int) dataset.Item { return dataset.MakeItem(attr, bin) }

// trans builds transactions from per-row (attr, bin) pairs over 4 attrs.
func rows4(bins ...[4]int) []dataset.Itemset {
	out := make([]dataset.Itemset, len(bins))
	for i, b := range bins {
		out[i] = dataset.Itemset{it(0, b[0]), it(1, b[1]), it(2, b[2]), it(3, b[3])}
	}
	return out
}

func findSet(ms []Mined, want dataset.Itemset) *Mined {
	for i := range ms {
		if len(ms[i].Set) != len(want) {
			continue
		}
		match := true
		for j := range want {
			if ms[i].Set[j] != want[j] {
				match = false
				break
			}
		}
		if match {
			return &ms[i]
		}
	}
	return nil
}

func TestMineConfigErrors(t *testing.T) {
	rows := rows4([4]int{0, 0, 0, 0})
	for name, cfg := range map[string]Config{
		"zero support": {MinSupport: 0},
		"over one":     {MinSupport: 1.5},
		"neg maxlen":   {MinSupport: 0.5, MaxLen: -1},
		"huge maxlen":  {MinSupport: 0.5, MaxLen: dataset.MaxItemsetLen + 1},
	} {
		if _, err := Mine(rows, cfg); err == nil {
			t.Errorf("config %q should be rejected", name)
		}
	}
}

func TestMineEmpty(t *testing.T) {
	res, err := Mine(nil, Config{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequent) != 0 || len(res.Border) != 0 {
		t.Fatal("mining nothing produced itemsets")
	}
}

func TestMineKnownSupports(t *testing.T) {
	// 10 transactions; item (0,0) appears in 8, (1,1) in 6, both together
	// in 5; (2,*) is scattered; attr 3 constant.
	rows := rows4(
		[4]int{0, 1, 0, 0},
		[4]int{0, 1, 1, 0},
		[4]int{0, 1, 2, 0},
		[4]int{0, 1, 3, 0},
		[4]int{0, 1, 4, 0},
		[4]int{0, 0, 5, 0},
		[4]int{0, 0, 6, 0},
		[4]int{0, 0, 7, 0},
		[4]int{1, 1, 8, 0},
		[4]int{1, 2, 9, 0},
	)
	res, err := Mine(rows, Config{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if m := findSet(res.Frequent, dataset.Itemset{it(0, 0)}); m == nil || m.Count != 8 {
		t.Fatalf("item (0,0): %+v", m)
	}
	if m := findSet(res.Frequent, dataset.Itemset{it(1, 1)}); m == nil || m.Count != 6 {
		t.Fatalf("item (1,1): %+v", m)
	}
	if m := findSet(res.Frequent, dataset.Itemset{it(3, 0)}); m == nil || m.Count != 10 {
		t.Fatalf("item (3,0): %+v", m)
	}
	if m := findSet(res.Frequent, dataset.Itemset{it(0, 0), it(1, 1)}); m == nil || m.Count != 5 {
		t.Fatalf("pair (0,0)(1,1): %+v", m)
	}
	// The triple {(0,0),(1,1),(3,0)} also has support 5 and must be found.
	if m := findSet(res.Frequent, dataset.Itemset{it(0, 0), it(1, 1), it(3, 0)}); m == nil || m.Count != 5 {
		t.Fatalf("triple: %+v", m)
	}
	// No (2,*) item is frequent at 50%.
	for _, m := range res.Frequent {
		for _, item := range m.Set {
			if item.Attr() == 2 {
				t.Fatalf("attr-2 item mined as frequent: %v", m.Set)
			}
		}
	}
}

func TestMineMaxLen(t *testing.T) {
	rows := rows4(
		[4]int{0, 0, 0, 0},
		[4]int{0, 0, 0, 0},
		[4]int{0, 0, 0, 0},
	)
	res, err := Mine(rows, Config{MinSupport: 0.9, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Frequent {
		if len(m.Set) > 2 {
			t.Fatalf("MaxLen=2 violated: %v", m.Set)
		}
	}
	// With 4 identical attributes: 4 singletons + C(4,2)=6 pairs.
	if len(res.Frequent) != 10 {
		t.Fatalf("got %d frequent sets want 10", len(res.Frequent))
	}
}

func TestMineOneItemPerAttribute(t *testing.T) {
	rows := rows4(
		[4]int{0, 0, 0, 0},
		[4]int{1, 0, 0, 0},
		[4]int{0, 0, 0, 0},
		[4]int{1, 0, 0, 0},
	)
	res, err := Mine(rows, Config{MinSupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Frequent {
		seen := map[int]bool{}
		for _, item := range m.Set {
			if seen[item.Attr()] {
				t.Fatalf("itemset %v repeats attribute %d", m.Set, item.Attr())
			}
			seen[item.Attr()] = true
		}
	}
	// (0,0) and (0,1) both have support 0.5 but must never co-occur in a
	// mined itemset; this is implied by the loop above but make the
	// specific pair explicit.
	if findSet(res.Frequent, dataset.Itemset{it(0, 0), it(0, 1)}) != nil {
		t.Fatal("mined itemset with two bins of the same attribute")
	}
}

func TestNegativeBorder(t *testing.T) {
	// (0,0) support 1.0 frequent; (1,0) support 1.0 frequent;
	// pair {(0,0),(1,0)} support 1.0 frequent; (2,k) all infrequent.
	// Make attr 2 alternate so each bin has support 0.5 with min 0.6:
	// those singletons are border members.
	rows := rows4(
		[4]int{0, 0, 0, 0},
		[4]int{0, 0, 1, 0},
		[4]int{0, 0, 0, 1},
		[4]int{0, 0, 1, 1},
	)
	res, err := Mine(rows, Config{MinSupport: 0.6, WithBorder: true})
	if err != nil {
		t.Fatal(err)
	}
	// Border must contain the infrequent singletons (2,0), (2,1), (3,0), (3,1).
	for _, want := range []dataset.Itemset{
		{it(2, 0)}, {it(2, 1)}, {it(3, 0)}, {it(3, 1)},
	} {
		if findSet(res.Border, want) == nil {
			t.Errorf("border missing %v", want)
		}
	}
	// Nothing in the border may be frequent.
	minCount := 3 // ceil(0.6*4)
	for _, m := range res.Border {
		if m.Count >= minCount {
			t.Fatalf("border itemset %v has count %d >= %d", m.Set, m.Count, minCount)
		}
	}
}

func TestBorderPairs(t *testing.T) {
	// (0,0) and (1,0) each support 0.5 (frequent at 0.5), but they never
	// co-occur: the pair has support 0 yet both subsets are frequent -> it
	// is generated as a candidate and lands in the border.
	rows := rows4(
		[4]int{0, 1, 0, 0},
		[4]int{1, 0, 1, 1},
		[4]int{0, 1, 2, 2},
		[4]int{1, 0, 3, 3},
	)
	res, err := Mine(rows, Config{MinSupport: 0.5, WithBorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if m := findSet(res.Border, dataset.Itemset{it(0, 0), it(1, 0)}); m == nil || m.Count != 0 {
		t.Fatalf("pair border: %+v; border=%v", m, res.Border)
	}
}

func TestSampleSize(t *testing.T) {
	cases := []struct{ batch, want int }{
		{10, 10},
		{500, 500},
		{1000, 1000},
		{50000, 1000},
		{100000, 1000},
		{200000, 2000},
		{1000000, 10000},
	}
	for _, tc := range cases {
		if got := SampleSize(tc.batch); got != tc.want {
			t.Errorf("SampleSize(%d)=%d want %d", tc.batch, got, tc.want)
		}
	}
}

// Brute-force reference: count support of every candidate itemset up to
// length 3 and compare with Mine's output on random small inputs.
func TestMineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		nRows := 8 + rng.Intn(24)
		nAttr := 3 + rng.Intn(3)
		rows := make([]dataset.Itemset, nRows)
		for i := range rows {
			row := make(dataset.Itemset, nAttr)
			for a := 0; a < nAttr; a++ {
				row[a] = it(a, rng.Intn(3))
			}
			rows[i] = row
		}
		minSup := 0.2 + rng.Float64()*0.5
		res, err := Mine(rows, Config{MinSupport: minSup, MaxLen: 3})
		if err != nil {
			t.Fatal(err)
		}
		got := map[dataset.ItemsetKey]int{}
		for _, m := range res.Frequent {
			got[m.Set.Key()] = m.Count
		}
		want := bruteForce(rows, nAttr, minSup)
		if len(got) != len(want) {
			t.Fatalf("trial %d: mined %d sets, brute force %d (minSup=%.2f)", trial, len(got), len(want), minSup)
		}
		for k, cnt := range want {
			if got[k] != cnt {
				t.Fatalf("trial %d: set %v count=%d want %d", trial, k.Itemset(), got[k], cnt)
			}
		}
	}
}

// bruteForce enumerates all itemsets of length 1..3 drawn from observed
// items (one per attribute) and returns those meeting the threshold.
func bruteForce(rows []dataset.Itemset, nAttr int, minSup float64) map[dataset.ItemsetKey]int {
	minCount := int(minSup * float64(len(rows)))
	if float64(minCount) < minSup*float64(len(rows)) {
		minCount++
	}
	if minCount < 1 {
		minCount = 1
	}
	// Observed items per attribute.
	perAttr := make([][]dataset.Item, nAttr)
	seen := map[dataset.Item]bool{}
	for _, row := range rows {
		for _, item := range row {
			if !seen[item] {
				seen[item] = true
				perAttr[item.Attr()] = append(perAttr[item.Attr()], item)
			}
		}
	}
	support := func(is dataset.Itemset) int {
		c := 0
		for _, row := range rows {
			if is.ContainsAll(row) {
				c++
			}
		}
		return c
	}
	out := map[dataset.ItemsetKey]int{}
	consider := func(is dataset.Itemset) {
		if c := support(is); c >= minCount {
			out[is.Key()] = c
		}
	}
	for a := 0; a < nAttr; a++ {
		for _, i1 := range perAttr[a] {
			consider(dataset.Itemset{i1})
			for b := a + 1; b < nAttr; b++ {
				for _, i2 := range perAttr[b] {
					consider(dataset.Itemset{i1, i2})
					for c := b + 1; c < nAttr; c++ {
						for _, i3 := range perAttr[c] {
							consider(dataset.Itemset{i1, i2, i3})
						}
					}
				}
			}
		}
	}
	return out
}

// Property: every reported support equals a direct recount, and results
// respect the threshold.
func TestMineSupportsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := make([]dataset.Itemset, 200)
	for i := range rows {
		row := make(dataset.Itemset, 5)
		for a := 0; a < 5; a++ {
			row[a] = it(a, rng.Intn(2)) // dense, lots of co-occurrence
		}
		rows[i] = row
	}
	res, err := Mine(rows, Config{MinSupport: 0.3, WithBorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequent) == 0 {
		t.Fatal("expected frequent itemsets on dense data")
	}
	recount := func(is dataset.Itemset) int {
		c := 0
		for _, row := range rows {
			if is.ContainsAll(row) {
				c++
			}
		}
		return c
	}
	minCount := 60 // 0.3 * 200
	for _, m := range res.Frequent {
		if got := recount(m.Set); got != m.Count {
			t.Fatalf("frequent %v count=%d recount=%d", m.Set, m.Count, got)
		}
		if m.Count < minCount {
			t.Fatalf("frequent %v below threshold: %d", m.Set, m.Count)
		}
	}
	for _, m := range res.Border {
		if got := recount(m.Set); got != m.Count {
			t.Fatalf("border %v count=%d recount=%d", m.Set, m.Count, got)
		}
		if m.Count >= minCount {
			t.Fatalf("border %v meets threshold: %d", m.Set, m.Count)
		}
	}
}

func TestResultOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := make([]dataset.Itemset, 100)
	for i := range rows {
		row := make(dataset.Itemset, 4)
		for a := 0; a < 4; a++ {
			row[a] = it(a, rng.Intn(2))
		}
		rows[i] = row
	}
	res, err := Mine(rows, Config{MinSupport: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Frequent); i++ {
		a, b := &res.Frequent[i-1], &res.Frequent[i]
		if len(a.Set) > len(b.Set) {
			t.Fatal("frequent sets not ordered by length")
		}
		if len(a.Set) == len(b.Set) && a.Count < b.Count {
			t.Fatal("frequent sets not ordered by support within a length")
		}
	}
}

func BenchmarkMine1000x20(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	rows := make([]dataset.Itemset, 1000)
	for i := range rows {
		row := make(dataset.Itemset, 20)
		for a := 0; a < 20; a++ {
			row[a] = it(a, rng.Intn(4))
		}
		rows[i] = row
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(rows, Config{MinSupport: 0.2, MaxLen: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMaxPerLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rows := make([]dataset.Itemset, 100)
	for i := range rows {
		row := make(dataset.Itemset, 8)
		for a := 0; a < 8; a++ {
			row[a] = it(a, rng.Intn(2))
		}
		rows[i] = row
	}
	full, err := Mine(rows, Config{MinSupport: 0.2, MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	trimmed, err := Mine(rows, Config{MinSupport: 0.2, MaxLen: 3, MaxPerLevel: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(trimmed.Frequent) > 15 { // <= 5 per level x 3 levels
		t.Fatalf("trimmed run returned %d itemsets", len(trimmed.Frequent))
	}
	if len(trimmed.Frequent) >= len(full.Frequent) {
		t.Fatalf("trimming had no effect: %d vs %d", len(trimmed.Frequent), len(full.Frequent))
	}
	// Per level, the trimmed result must be the top-5 supports of the full
	// result at that level.
	perLevel := map[int][]int{}
	for _, m := range full.Frequent {
		perLevel[len(m.Set)] = append(perLevel[len(m.Set)], m.Count)
	}
	for _, counts := range perLevel {
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	}
	trimCount := map[int]int{}
	for _, m := range trimmed.Frequent {
		trimCount[len(m.Set)]++
		// The itemset's support must be at least the 5th-highest full
		// support at this level (trimming keeps the top of level 1; deeper
		// levels depend on what survived above, so only level 1 is exact).
		if len(m.Set) == 1 {
			counts := perLevel[1]
			floor := counts[min(4, len(counts)-1)]
			if m.Count < floor {
				t.Fatalf("level-1 itemset %v count %d below top-5 floor %d", m.Set, m.Count, floor)
			}
		}
	}
	for l, n := range trimCount {
		if n > 5 {
			t.Fatalf("level %d kept %d > 5 itemsets", l, n)
		}
	}
}

func TestMaxPerLevelRejectsNegative(t *testing.T) {
	if _, err := Mine(nil, Config{MinSupport: 0.5, MaxPerLevel: -1}); err == nil {
		t.Fatal("negative MaxPerLevel accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package nb

import (
	"math"
	"math/rand"
	"testing"

	"shahin/internal/datagen"
	"shahin/internal/dataset"
)

func mixedData(n int, seed int64) *dataset.Dataset {
	s := &dataset.Schema{
		Attrs: []dataset.Attr{
			{Name: "c", Kind: dataset.Categorical, Values: []string{"a", "b", "c"}},
			{Name: "x", Kind: dataset.Numeric},
		},
		Classes: []string{"neg", "pos"},
	}
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(s, n)
	for i := 0; i < n; i++ {
		label := rng.Intn(2)
		// Class-conditional structure NB can learn: class 1 prefers
		// category 0 and larger x.
		var c float64
		if label == 1 && rng.Float64() < 0.8 {
			c = 0
		} else {
			c = float64(1 + rng.Intn(2))
		}
		x := rng.NormFloat64() + 3*float64(label)
		d.AppendRow([]float64{c, x}, label)
	}
	return d
}

func TestTrainErrors(t *testing.T) {
	d := mixedData(10, 1)
	d.Labels = nil
	if _, err := Train(d); err == nil {
		t.Fatal("unlabelled data accepted")
	}
	empty := dataset.New(d.Schema, 0)
	empty.Labels = []int{}
	if _, err := Train(empty); err == nil {
		t.Fatal("empty data accepted")
	}
}

func TestLearnsClassConditional(t *testing.T) {
	train := mixedData(3000, 2)
	test := mixedData(800, 3)
	m, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(test); acc < 0.85 {
		t.Fatalf("accuracy %.3f < 0.85", acc)
	}
	if m.NumClasses() != 2 {
		t.Fatalf("NumClasses=%d", m.NumClasses())
	}
}

func TestPredictAgreesWithPosterior(t *testing.T) {
	m, err := Train(mixedData(1000, 4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		x := []float64{float64(rng.Intn(3)), rng.NormFloat64() * 3}
		lp := m.LogPosterior(x)
		best := 0
		if lp[1] > lp[0] {
			best = 1
		}
		if m.Predict(x) != best {
			t.Fatal("Predict disagrees with LogPosterior argmax")
		}
	}
}

func TestUnseenCategoryStaysFinite(t *testing.T) {
	m, err := Train(mixedData(500, 6))
	if err != nil {
		t.Fatal(err)
	}
	lp := m.LogPosterior([]float64{99, 0}) // category index way out of range
	for c, v := range lp {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("class %d posterior %g not finite", c, v)
		}
	}
}

func TestLaplaceSmoothing(t *testing.T) {
	// Category "c" never occurs with class 1 in training; its likelihood
	// must still be positive (finite log).
	s := &dataset.Schema{
		Attrs:   []dataset.Attr{{Name: "c", Kind: dataset.Categorical, Values: []string{"a", "b", "c"}}},
		Classes: []string{"neg", "pos"},
	}
	d := dataset.New(s, 8)
	d.AppendRow([]float64{0}, 1)
	d.AppendRow([]float64{0}, 1)
	d.AppendRow([]float64{1}, 0)
	d.AppendRow([]float64{2}, 0)
	m, err := Train(d)
	if err != nil {
		t.Fatal(err)
	}
	if v := m.CatLL[0][1][2]; math.IsInf(v, 0) {
		t.Fatal("unsmoothed zero-count likelihood")
	}
}

func TestVarianceFloor(t *testing.T) {
	// Constant numeric column must not produce zero variance.
	s := &dataset.Schema{
		Attrs:   []dataset.Attr{{Name: "x", Kind: dataset.Numeric}},
		Classes: []string{"neg", "pos"},
	}
	d := dataset.New(s, 4)
	for i := 0; i < 4; i++ {
		d.AppendRow([]float64{5}, i%2)
	}
	m, err := Train(d)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		if m.Var[0][c] <= 0 {
			t.Fatalf("class %d variance %g", c, m.Var[0][c])
		}
	}
	if got := m.Predict([]float64{5}); got < 0 || got > 1 {
		t.Fatalf("degenerate prediction %d", got)
	}
}

func TestOnSyntheticDataset(t *testing.T) {
	cfg, err := datagen.Spec("recidivism")
	if err != nil {
		t.Fatal(err)
	}
	data, err := cfg.Generate(3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	train, test := data.Split(1.0/3, rng)
	m, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	// NB is a weak learner on the planted concept but must beat chance.
	if acc := m.Accuracy(test); acc < 0.6 {
		t.Fatalf("accuracy %.3f < 0.6", acc)
	}
}

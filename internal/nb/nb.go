// Package nb implements a naive Bayes classifier over mixed tabular data:
// categorical attributes use Laplace-smoothed multinomial likelihoods and
// numeric attributes Gaussian likelihoods. It is a second black-box model
// for the explanation experiments — the paper evaluates on a random
// forest but argues its conclusions are classifier-independent because
// Shahin's speedup comes from reducing the *number* of classifier
// invocations; having a structurally different model lets this repo test
// that claim.
package nb

import (
	"fmt"
	"math"

	"shahin/internal/dataset"
	"shahin/internal/rf"
)

// Model is a fitted naive Bayes classifier.
type Model struct {
	Schema *dataset.Schema
	Prior  []float64 // log prior per class

	// Categorical: CatLL[a][class][value] is the log likelihood of the
	// value given the class (nil slot for numeric attributes).
	CatLL [][][]float64
	// Numeric: per attribute per class Gaussian parameters (unused slots
	// for categorical attributes).
	Mean [][]float64
	Var  [][]float64
}

var _ rf.Classifier = (*Model)(nil)

// Train fits the model on a labelled dataset with Laplace smoothing
// (alpha = 1) for categorical attributes and a variance floor for
// numerics.
func Train(d *dataset.Dataset) (*Model, error) {
	if d.Labels == nil {
		return nil, fmt.Errorf("nb: training data has no labels")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := d.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("nb: empty training data")
	}
	k := d.Schema.NumClasses()
	m := &Model{
		Schema: d.Schema,
		Prior:  make([]float64, k),
		CatLL:  make([][][]float64, d.NumAttrs()),
		Mean:   make([][]float64, d.NumAttrs()),
		Var:    make([][]float64, d.NumAttrs()),
	}

	classN := make([]float64, k)
	for _, l := range d.Labels {
		classN[l]++
	}
	for c := 0; c < k; c++ {
		// Laplace-smoothed prior so empty classes stay finite.
		m.Prior[c] = math.Log((classN[c] + 1) / (float64(n) + float64(k)))
	}

	for a := 0; a < d.NumAttrs(); a++ {
		attr := &d.Schema.Attrs[a]
		col := d.Cols[a]
		switch attr.Kind {
		case dataset.Categorical:
			card := attr.Cardinality()
			counts := make([][]float64, k)
			for c := range counts {
				counts[c] = make([]float64, card)
			}
			for i, v := range col {
				counts[d.Labels[i]][int(v)]++
			}
			ll := make([][]float64, k)
			for c := 0; c < k; c++ {
				ll[c] = make([]float64, card)
				denom := classN[c] + float64(card) // alpha = 1
				for v := 0; v < card; v++ {
					ll[c][v] = math.Log((counts[c][v] + 1) / denom)
				}
			}
			m.CatLL[a] = ll
		case dataset.Numeric:
			mean := make([]float64, k)
			variance := make([]float64, k)
			for i, v := range col {
				mean[d.Labels[i]] += v
			}
			for c := 0; c < k; c++ {
				if classN[c] > 0 {
					mean[c] /= classN[c]
				}
			}
			for i, v := range col {
				dlt := v - mean[d.Labels[i]]
				variance[d.Labels[i]] += dlt * dlt
			}
			for c := 0; c < k; c++ {
				if classN[c] > 1 {
					variance[c] /= classN[c]
				}
				if variance[c] < 1e-9 {
					variance[c] = 1e-9
				}
			}
			m.Mean[a] = mean
			m.Var[a] = variance
		}
	}
	return m, nil
}

// NumClasses implements rf.Classifier.
func (m *Model) NumClasses() int { return m.Schema.NumClasses() }

// Predict implements rf.Classifier: argmax over class log posteriors.
func (m *Model) Predict(x []float64) int {
	best, bestLP := 0, math.Inf(-1)
	for c := range m.Prior {
		lp := m.logPosterior(x, c)
		if lp > bestLP {
			best, bestLP = c, lp
		}
	}
	return best
}

// LogPosterior returns the unnormalised class log posteriors for x. The
// slice is freshly allocated.
func (m *Model) LogPosterior(x []float64) []float64 {
	out := make([]float64, len(m.Prior))
	for c := range out {
		out[c] = m.logPosterior(x, c)
	}
	return out
}

func (m *Model) logPosterior(x []float64, c int) float64 {
	lp := m.Prior[c]
	for a, v := range x {
		switch m.Schema.Attrs[a].Kind {
		case dataset.Categorical:
			ll := m.CatLL[a][c]
			vi := int(v)
			if vi < 0 || vi >= len(ll) {
				// Unseen category index: treat as maximally surprising but
				// finite, so prediction still works on noisy inputs.
				lp += math.Log(1e-9)
				continue
			}
			lp += ll[vi]
		case dataset.Numeric:
			mean, variance := m.Mean[a][c], m.Var[a][c]
			d := v - mean
			lp += -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
		}
	}
	return lp
}

// Accuracy returns the fraction of rows classified correctly.
func (m *Model) Accuracy(d *dataset.Dataset) float64 {
	if d.NumRows() == 0 {
		return 0
	}
	correct := 0
	row := make([]float64, d.NumAttrs())
	for i := 0; i < d.NumRows(); i++ {
		row = d.Row(i, row)
		if m.Predict(row) == d.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.NumRows())
}

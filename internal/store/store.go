// Package store implements the pre-computed explanation store the paper's
// introduction motivates: "an organization might pre-compute all the
// explanations in a batch setting and retrieve them as needed". It maps
// raw tuples to their explanations with exact-match lookup and gob
// persistence, so a nightly Shahin batch run can serve explanation
// requests at memory-lookup latency during the day.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"shahin/internal/core"
)

// Store is an in-memory tuple → explanation map. The zero value is
// unusable; create one with New or Build.
type Store struct {
	buckets map[uint64][]entry
	n       int
}

type entry struct {
	Row []float64
	Exp core.Explanation
}

// New returns an empty store.
func New() *Store {
	return &Store{buckets: make(map[uint64][]entry)}
}

// Build creates a store from parallel slices of tuples and explanations,
// as produced by Batch.ExplainAll.
func Build(tuples [][]float64, exps []core.Explanation) (*Store, error) {
	if len(tuples) != len(exps) {
		return nil, fmt.Errorf("store: %d tuples for %d explanations", len(tuples), len(exps))
	}
	s := New()
	for i := range tuples {
		s.Put(tuples[i], exps[i])
	}
	return s, nil
}

// Put inserts (or replaces) the explanation for a tuple. The tuple is
// copied.
func (s *Store) Put(tuple []float64, exp core.Explanation) {
	h := hashRow(tuple)
	chain := s.buckets[h]
	for i := range chain {
		if equalRows(chain[i].Row, tuple) {
			chain[i].Exp = exp
			return
		}
	}
	s.buckets[h] = append(chain, entry{Row: append([]float64(nil), tuple...), Exp: exp})
	s.n++
}

// Get retrieves the explanation for an exactly matching tuple.
func (s *Store) Get(tuple []float64) (core.Explanation, bool) {
	for _, e := range s.buckets[hashRow(tuple)] {
		if equalRows(e.Row, tuple) {
			return e.Exp, true
		}
	}
	return core.Explanation{}, false
}

// Len returns the number of stored explanations.
func (s *Store) Len() int { return s.n }

// hashRow is FNV-1a over the IEEE-754 bits of the cells, so lookup treats
// tuples as exact value vectors (NaNs normalise to one pattern).
func hashRow(row []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range row {
		bits := math.Float64bits(v)
		if v != v { // normalise NaN payloads
			bits = math.Float64bits(math.NaN())
		}
		binary.LittleEndian.PutUint64(buf[:], bits)
		h.Write(buf[:]) //shahinvet:allow errcheck — hash.Hash.Write never fails
	}
	return h.Sum64()
}

func equalRows(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) && !(a[i] != a[i] && b[i] != b[i]) {
			return false
		}
	}
	return true
}

// persisted is the gob wire format.
type persisted struct {
	Entries []entry
}

// SnapshotVersion is the schema version stamped into every snapshot
// header. Bump it whenever the gob wire format changes incompatibly;
// Load rejects snapshots written under any other version instead of
// decoding garbage.
const SnapshotVersion uint32 = 1

// snapshotMagic opens every snapshot so Load can tell a headered
// snapshot from a legacy (pre-header) gob stream or arbitrary bytes.
var snapshotMagic = [4]byte{'S', 'H', 'S', 'T'}

// headerLen is magic(4) + version(4) + payload length(8) + checksum(8).
const headerLen = 4 + 4 + 8 + 8

// Fingerprint returns the FNV-64a checksum Save stamps into the
// snapshot header, computed over the gob payload bytes. Callers
// shipping snapshots over the network can use it to label or verify a
// payload without decoding it.
func Fingerprint(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload) //shahinvet:allow errcheck — hash.Hash.Write never fails
	return h.Sum64()
}

// Save serialises the store: a fixed header (magic, schema version,
// payload length, FNV-64a checksum) followed by the gob payload.
// Entries are sorted by tuple so the byte stream is identical for
// identical contents — map iteration order must not leak into
// persisted artifacts.
func (s *Store) Save(w io.Writer) error {
	var p persisted
	for _, chain := range s.buckets {
		p.Entries = append(p.Entries, chain...)
	}
	sortEntries(p.Entries)
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&p); err != nil {
		return fmt.Errorf("store: encoding: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:4], snapshotMagic[:])
	binary.BigEndian.PutUint32(hdr[4:8], SnapshotVersion)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(payload.Len()))
	binary.BigEndian.PutUint64(hdr[16:24], Fingerprint(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: writing snapshot header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("store: writing snapshot payload: %w", err)
	}
	return nil
}

// sortEntries orders entries by their tuple's IEEE-754 bit patterns
// (cell by cell, shorter rows first), a total order even with NaNs.
func sortEntries(entries []entry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].Row, entries[j].Row
		for k := 0; k < len(a) && k < len(b); k++ {
			ab, bb := math.Float64bits(a[k]), math.Float64bits(b[k])
			if ab != bb {
				return ab < bb
			}
		}
		return len(a) < len(b)
	})
}

// Load deserialises a store written by Save, validating the header
// before decoding: wrong magic (legacy or corrupt snapshots), a
// mismatched schema version, a truncated payload, and a checksum
// mismatch each fail with a distinct, clear error instead of
// gob-decoding garbage.
func Load(r io.Reader) (*Store, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: snapshot shorter than its %d-byte header (corrupt or truncated): %w", headerLen, err)
	}
	if !bytes.Equal(hdr[:4], snapshotMagic[:]) {
		return nil, fmt.Errorf("store: snapshot missing magic %q: not a shahin store snapshot (legacy pre-v%d format or corrupt file)", snapshotMagic, SnapshotVersion)
	}
	version := binary.BigEndian.Uint32(hdr[4:8])
	if version != SnapshotVersion {
		return nil, fmt.Errorf("store: snapshot schema version %d, this binary reads version %d: refusing stale snapshot", version, SnapshotVersion)
	}
	size := binary.BigEndian.Uint64(hdr[8:16])
	const maxSnapshotBytes = 1 << 33 // 8 GiB sanity cap on the declared length
	if size > maxSnapshotBytes {
		return nil, fmt.Errorf("store: snapshot declares %d payload bytes (over the %d-byte cap): corrupt header", size, uint64(maxSnapshotBytes))
	}
	want := binary.BigEndian.Uint64(hdr[16:24])
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("store: snapshot truncated: header declares %d payload bytes: %w", size, err)
	}
	if got := Fingerprint(payload); got != want {
		return nil, fmt.Errorf("store: snapshot checksum mismatch: header %#016x, payload %#016x: corrupt snapshot", want, got)
	}
	var p persisted
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("store: decoding: %w", err)
	}
	s := New()
	for _, e := range p.Entries {
		s.Put(e.Row, e.Exp)
	}
	return s, nil
}

package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"shahin/internal/core"
	"shahin/internal/dataset"
	"shahin/internal/explain"
)

func attribution(class int, w ...float64) core.Explanation {
	return core.Explanation{Attribution: &explain.Attribution{Weights: w, Class: class}}
}

func rule(class int) core.Explanation {
	return core.Explanation{Rule: &explain.Rule{
		Items:     dataset.Itemset{dataset.MakeItem(0, 1)},
		Class:     class,
		Precision: 0.96,
		Coverage:  0.3,
	}}
}

func TestPutGet(t *testing.T) {
	s := New()
	tup := []float64{1, 2.5, 0}
	if _, ok := s.Get(tup); ok {
		t.Fatal("empty store hit")
	}
	s.Put(tup, attribution(1, 0.5, -0.1, 0))
	got, ok := s.Get(tup)
	if !ok || got.Attribution == nil || got.Attribution.Class != 1 {
		t.Fatalf("Get=(%+v,%v)", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len=%d", s.Len())
	}
	// A near-but-not-equal tuple must miss.
	if _, ok := s.Get([]float64{1, 2.5000001, 0}); ok {
		t.Fatal("near-miss tuple hit")
	}
}

func TestPutReplaces(t *testing.T) {
	s := New()
	tup := []float64{3, 4}
	s.Put(tup, attribution(0, 0.1, 0.2))
	s.Put(tup, attribution(1, 0.9, 0.8))
	got, _ := s.Get(tup)
	if got.Attribution.Class != 1 {
		t.Fatal("replacement lost")
	}
	if s.Len() != 1 {
		t.Fatalf("Len=%d after replace", s.Len())
	}
}

func TestPutCopiesTuple(t *testing.T) {
	s := New()
	tup := []float64{7, 8}
	s.Put(tup, attribution(0, 1, 2))
	tup[0] = 99
	if _, ok := s.Get([]float64{7, 8}); !ok {
		t.Fatal("store aliased the caller's slice")
	}
}

func TestBuild(t *testing.T) {
	tuples := [][]float64{{1, 0}, {2, 0}, {3, 0}}
	exps := []core.Explanation{attribution(0, 1, 0), rule(1), attribution(1, 0, 1)}
	s, err := Build(tuples, exps)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len=%d", s.Len())
	}
	got, ok := s.Get([]float64{2, 0})
	if !ok || got.Rule == nil || got.Rule.Precision != 0.96 {
		t.Fatalf("rule entry lost: %+v", got)
	}
	if _, err := Build(tuples, exps[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestNaNTuples(t *testing.T) {
	s := New()
	nan := math.NaN()
	s.Put([]float64{nan, 1}, attribution(0, 1, 1))
	if _, ok := s.Get([]float64{nan, 1}); !ok {
		t.Fatal("NaN tuple not retrievable")
	}
	if _, ok := s.Get([]float64{nan, 2}); ok {
		t.Fatal("wrong NaN tuple hit")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(1))
	tuples := make([][]float64, 50)
	for i := range tuples {
		tuples[i] = []float64{float64(i), rng.NormFloat64()}
		if i%2 == 0 {
			s.Put(tuples[i], attribution(i%2, rng.Float64(), rng.Float64()))
		} else {
			s.Put(tuples[i], rule(i%2))
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 50 {
		t.Fatalf("round trip Len=%d", back.Len())
	}
	for i, tup := range tuples {
		got, ok := back.Get(tup)
		if !ok {
			t.Fatalf("tuple %d lost", i)
		}
		if i%2 == 1 && (got.Rule == nil || got.Rule.Items[0] != dataset.MakeItem(0, 1)) {
			t.Fatalf("tuple %d rule corrupted: %+v", i, got.Rule)
		}
	}
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("Load(junk) should fail")
	}
}

// Property: whatever was Put is Get-able, and random other tuples miss.
func TestQuickStore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		n := 1 + rng.Intn(40)
		tuples := make([][]float64, n)
		for i := range tuples {
			tuples[i] = []float64{float64(rng.Intn(5)), float64(rng.Intn(5)), rng.Float64()}
			s.Put(tuples[i], attribution(i%2, 1))
		}
		for _, tup := range tuples {
			if _, ok := s.Get(tup); !ok {
				return false
			}
		}
		// A tuple with an extra dimension must always miss.
		_, ok := s.Get(append(append([]float64(nil), tuples[0]...), 1))
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotHeaderValidation: the headered format rejects corrupt,
// stale, truncated, and legacy snapshots with distinct, clear errors.
func TestSnapshotHeaderValidation(t *testing.T) {
	s := New()
	s.Put([]float64{1, 2}, attribution(0, 0.5, 0.5))
	s.Put([]float64{3, 4}, rule(1))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("round trip", func(t *testing.T) {
		back, err := Load(bytes.NewReader(good))
		if err != nil {
			t.Fatal(err)
		}
		if back.Len() != 2 {
			t.Fatalf("Len=%d", back.Len())
		}
	})

	t.Run("byte stable", func(t *testing.T) {
		var again bytes.Buffer
		if err := s.Save(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(good, again.Bytes()) {
			t.Fatal("two saves of identical contents differ")
		}
	})

	t.Run("corrupt payload", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-1] ^= 0xff
		_, err := Load(bytes.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("flipped payload byte: err=%v, want checksum mismatch", err)
		}
	})

	t.Run("stale schema version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		binary.BigEndian.PutUint32(bad[4:8], SnapshotVersion+7)
		_, err := Load(bytes.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "schema version") {
			t.Fatalf("bumped version: err=%v, want schema version error", err)
		}
	})

	t.Run("legacy headerless gob", func(t *testing.T) {
		// A pre-header snapshot is a bare gob stream; it must be named
		// as such, not fed to the decoder.
		var legacy bytes.Buffer
		p := persisted{Entries: []entry{{Row: []float64{1}, Exp: rule(0)}}}
		if err := gob.NewEncoder(&legacy).Encode(&p); err != nil {
			t.Fatal(err)
		}
		_, err := Load(&legacy)
		if err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("legacy gob: err=%v, want magic error", err)
		}
	})

	t.Run("truncated payload", func(t *testing.T) {
		_, err := Load(bytes.NewReader(good[:len(good)-5]))
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("truncated: err=%v, want truncated error", err)
		}
	})

	t.Run("short header", func(t *testing.T) {
		_, err := Load(bytes.NewReader(good[:10]))
		if err == nil || !strings.Contains(err.Error(), "header") {
			t.Fatalf("short header: err=%v, want header error", err)
		}
	})

	t.Run("fingerprint matches header", func(t *testing.T) {
		want := binary.BigEndian.Uint64(good[16:24])
		if got := Fingerprint(good[headerLen:]); got != want {
			t.Fatalf("Fingerprint=%#x, header says %#x", got, want)
		}
	})
}

package core

import (
	"sort"
	"time"

	"shahin/internal/cache"
	"shahin/internal/dataset"
	"shahin/internal/explain"
	"shahin/internal/obs"
	"shahin/internal/perturb"
)

// sampleSource abstracts where pooled samples live: the live
// byte-budgeted repository (single-worker runs, streaming) or an
// immutable snapshot (parallel workers).
type sampleSource interface {
	Get(key dataset.ItemsetKey) ([]perturb.Sample, bool)
}

var (
	_ sampleSource = (*cache.Repo)(nil)
	_ sampleSource = cache.Snapshot(nil)
)

// itemsetPool serves Shahin's materialised perturbations to the
// explainers. It fronts the sample source with per-tuple consumption
// tracking (a pooled sample is served at most once per explanation, but
// freely again for the next tuple) and accounts retrieval time toward the
// housekeeping overhead of Figure 5.
type itemsetPool struct {
	repo sampleSource
	// itemsets the pool materialised, in mining priority order (shortest
	// first, then highest support) for ForTuple, and a longest-first view
	// for ForItemset (a longer frozen itemset satisfies more of the
	// required items by construction).
	itemsets    []dataset.Itemset
	longestView []dataset.Itemset

	cursors  map[dataset.ItemsetKey]int    // ForTuple consumption
	consumed map[dataset.ItemsetKey][]bool // ForItemset consumption

	reused         int64
	retrieval      time.Duration
	tupleRetrieval time.Duration // retrieval since beginTuple; feeds pool_sample attribution
	reusedCtr      *obs.Counter  // live reuse counter; nil (no-op) without a recorder

	// Per-tuple provenance, reset by beginTuple: samples served, repo
	// hits, and the first itemset that served this tuple (the unit the
	// tuple_explained event credits the reuse to).
	tupleReused int64
	tupleHits   int64
	matched     dataset.Itemset
}

var _ explain.Pool = (*itemsetPool)(nil)

func newItemsetPool(repo sampleSource, itemsets []dataset.Itemset, rec *obs.Recorder) *itemsetPool {
	longest := append([]dataset.Itemset(nil), itemsets...)
	sort.SliceStable(longest, func(i, j int) bool { return len(longest[i]) > len(longest[j]) })
	return &itemsetPool{
		repo:        repo,
		itemsets:    itemsets,
		longestView: longest,
		cursors:     make(map[dataset.ItemsetKey]int),
		consumed:    make(map[dataset.ItemsetKey][]bool),
		reusedCtr:   rec.Counter(obs.CounterReusedSamples),
	}
}

// beginTuple resets the per-tuple consumption allowance and provenance.
func (p *itemsetPool) beginTuple() {
	clear(p.cursors)
	clear(p.consumed)
	p.tupleReused = 0
	p.tupleHits = 0
	p.tupleRetrieval = 0
	p.matched = nil
}

// provenance reports what the pool did for the current tuple since
// beginTuple: samples served, repository hits, and the first matched
// itemset ("" when nothing hit).
func (p *itemsetPool) provenance() (pooled, hits int64, matched string) {
	if p.matched != nil {
		matched = p.matched.String()
	}
	return p.tupleReused, p.tupleHits, matched
}

// ForTuple implements explain.Pool: samples of every pooled itemset the
// tuple contains, best itemsets first.
func (p *itemsetPool) ForTuple(tupleItems []dataset.Item, max int) []perturb.Sample {
	start := time.Now() //shahinvet:allow walltime — retrieval overhead accounting (Figure 5)
	defer func() {
		d := time.Since(start)
		p.retrieval += d
		p.tupleRetrieval += d
	}()

	var out []perturb.Sample
	for _, f := range p.itemsets {
		if len(out) >= max {
			break
		}
		if !f.ContainsAll(tupleItems) {
			continue
		}
		key := f.Key()
		samples, ok := p.repo.Get(key)
		if !ok {
			continue
		}
		p.tupleHits++
		if p.matched == nil {
			p.matched = f
		}
		cur := p.cursors[key]
		for cur < len(samples) && len(out) < max {
			out = append(out, samples[cur])
			cur++
		}
		p.cursors[key] = cur
	}
	p.reused += int64(len(out))
	p.tupleReused += int64(len(out))
	p.reusedCtr.Add(int64(len(out)))
	return out
}

// ForItemset implements explain.Pool: samples from pooled itemsets that
// are subsets of the required items, filtered to rows matching all
// required items.
func (p *itemsetPool) ForItemset(required dataset.Itemset, max int) []perturb.Sample {
	start := time.Now() //shahinvet:allow walltime — retrieval overhead accounting (Figure 5)
	defer func() {
		d := time.Since(start)
		p.retrieval += d
		p.tupleRetrieval += d
	}()

	var out []perturb.Sample
	for _, f := range p.longestView {
		if len(out) >= max {
			break
		}
		// A pooled sample only guarantees the bins of its frozen itemset;
		// the remaining required items must match by chance, which is
		// hopeless beyond a couple of extra attributes — skip rather than
		// scan (keeps retrieval overhead linear in what can actually hit).
		if len(required) > len(f)+2 {
			continue
		}
		if !f.SubsetOf(required) {
			continue
		}
		key := f.Key()
		samples, ok := p.repo.Get(key)
		if !ok {
			continue
		}
		p.tupleHits++
		if p.matched == nil {
			p.matched = f
		}
		used := p.consumed[key]
		if used == nil {
			used = make([]bool, len(samples))
			p.consumed[key] = used
		}
		for i := range samples {
			if len(out) >= max {
				break
			}
			if i < len(used) && used[i] {
				continue
			}
			if perturb.MatchesBins(required, samples[i].Items) {
				out = append(out, samples[i])
				if i < len(used) {
					used[i] = true
				}
			}
		}
	}
	p.reused += int64(len(out))
	p.tupleReused += int64(len(out))
	p.reusedCtr.Add(int64(len(out)))
	return out
}

package core

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"shahin/internal/datagen"
	"shahin/internal/dataset"
	"shahin/internal/obs"
	"shahin/internal/rf"
)

// exactEnv trains a real (small) random forest so the exact TreeSHAP
// walker has owned tree structure to recurse over; rf.Func in newEnv is
// deliberately opaque and exercises the fallback path instead.
type exactEnv struct {
	st     *dataset.Stats
	forest *rf.Forest
	tuples [][]float64
}

func newExactEnv(t *testing.T, seed int64, batch int) *exactEnv {
	t.Helper()
	cfg, err := datagen.Spec("recidivism")
	if err != nil {
		t.Fatal(err)
	}
	d, err := cfg.Generate(1500, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	trainD, testD := d.Split(1.0/3, rng)
	st, err := dataset.Compute(trainD)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := rf.Train(trainD, rf.Config{NumTrees: 12, MaxDepth: 6, Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	return &exactEnv{st: st, forest: forest, tuples: testD.Rows(0, batch)}
}

// TestBatchExactSHAP is the exact-path acceptance check on the batch
// pipeline: zero pool usage, one classifier invocation per tuple, the
// exact_shap provenance events reconciling against the report, and the
// efficiency identity tying each attribution to the forest's own vote
// fraction.
func TestBatchExactSHAP(t *testing.T) {
	env := newExactEnv(t, 50, 20)
	rec := obs.NewRecorder()
	opts := smallOpts(ExactSHAP, 51)
	opts.Recorder = rec

	b, err := NewBatch(env.st, env.forest, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.ExactFallback {
		t.Fatal("exact path fell back on an owned forest")
	}
	if rep.NodeVisits == 0 {
		t.Fatal("exact run recorded zero tree-node visits")
	}
	if rep.PoolInvocations != 0 || rep.ReusedSamples != 0 {
		t.Fatalf("exact path touched the perturbation pool: pool=%d reused=%d",
			rep.PoolInvocations, rep.ReusedSamples)
	}
	if rep.Invocations != int64(len(env.tuples)) {
		t.Fatalf("Invocations = %d, want one Predict per tuple = %d",
			rep.Invocations, len(env.tuples))
	}

	events, dropped := rec.Events()
	if dropped != 0 {
		t.Fatalf("event log dropped %d events", dropped)
	}
	var (
		exactEvents int
		sumFresh    int64
		sumVisits   int64
	)
	for _, e := range events {
		switch e.Type {
		case obs.EventPoolBuild:
			t.Error("exact run emitted pool_build")
		case obs.EventTupleExplained:
			t.Error("exact run emitted tuple_explained instead of exact_shap")
		case obs.EventExactShap:
			exactEvents++
			sumFresh += e.Fresh
			sumVisits += e.NodeVisits
			if e.NodeVisits <= 0 {
				t.Errorf("exact_shap event for tuple %d carries %d node visits", e.Tuple, e.NodeVisits)
			}
		}
	}
	if exactEvents != len(env.tuples) {
		t.Fatalf("%d exact_shap events for %d tuples", exactEvents, len(env.tuples))
	}
	if sumFresh != rep.Invocations {
		t.Errorf("sum of exact_shap fresh samples = %d, want Invocations = %d", sumFresh, rep.Invocations)
	}
	if sumVisits != rep.NodeVisits {
		t.Errorf("sum of exact_shap node visits = %d, want Report.NodeVisits = %d", sumVisits, rep.NodeVisits)
	}

	// Efficiency: Σφ + intercept must equal the forest's vote fraction
	// for the explained class, exactly (up to float round-off).
	for i, e := range res.Explanations {
		at := e.Attribution
		if at == nil {
			t.Fatalf("tuple %d has no attribution", i)
		}
		sum := at.Intercept
		for _, w := range at.Weights {
			sum += w
		}
		want := env.forest.Prob(env.tuples[i])[at.Class]
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("tuple %d efficiency gap %g (sum %g, vote fraction %g)",
				i, sum-want, sum, want)
		}
	}
}

// TestExactParallelMatchesSerial pins the determinism regression: exact
// values do not depend on worker count or on re-running, byte for byte.
func TestExactParallelMatchesSerial(t *testing.T) {
	env := newExactEnv(t, 52, 24)
	run := func(workers int) []byte {
		opts := smallOpts(ExactSHAP, 53)
		opts.Workers = workers
		b, err := NewBatch(env.st, env.forest, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.ExplainAll(env.tuples)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(res.Explanations)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	serial := run(1)
	if string(run(4)) != string(serial) {
		t.Fatal("parallel exact run differs from serial")
	}
	if string(run(1)) != string(serial) {
		t.Fatal("exact run is not reproducible under the same seed")
	}
}

// TestExactFallbackUnsupported drives ExactSHAP at an opaque classifier
// (rf.Func has no tree structure): the run must silently degrade to
// KernelSHAP, mark the report, and leave the exact_fallback provenance
// event naming the reason.
func TestExactFallbackUnsupported(t *testing.T) {
	env := newEnv(t, 54, 15)
	rec := obs.NewRecorder()
	opts := smallOpts(ExactSHAP, 55)
	opts.Recorder = rec

	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.ExactFallback {
		t.Fatal("Report.ExactFallback not set for opaque classifier")
	}
	if res.Report.NodeVisits != 0 {
		t.Fatalf("fallback run recorded %d node visits", res.Report.NodeVisits)
	}
	for i, e := range res.Explanations {
		if e.Attribution == nil {
			t.Fatalf("tuple %d unanswered after fallback", i)
		}
	}
	assertFallbackEvent(t, rec, "unsupported_classifier")
}

// TestExactFallbackFaultChain checks the legality rule from DESIGN.md
// §16: a fault-injected (remote-like) backend cannot use the exact
// walker even when the underlying model is an owned forest.
func TestExactFallbackFaultChain(t *testing.T) {
	env := newExactEnv(t, 56, 10)
	rec := obs.NewRecorder()
	opts := smallOpts(ExactSHAP, 57)
	opts.Fault = chaosFaults(58)
	opts.Recorder = rec

	res, err := Sequential(env.st, env.forest, opts, env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.ExactFallback {
		t.Fatal("Report.ExactFallback not set under a fault chain")
	}
	if res.Report.NodeVisits != 0 {
		t.Fatalf("fault-chain run recorded %d node visits", res.Report.NodeVisits)
	}
	assertFallbackEvent(t, rec, "fault_chain")
}

func assertFallbackEvent(t *testing.T, rec *obs.Recorder, reason string) {
	t.Helper()
	events, _ := rec.Events()
	found := false
	for _, e := range events {
		switch e.Type {
		case obs.EventExactFallback:
			found = true
			if e.State != reason {
				t.Errorf("exact_fallback reason %q, want %q", e.State, reason)
			}
		case obs.EventExactShap:
			t.Error("fallback run still emitted exact_shap")
		}
	}
	if !found {
		t.Error("no exact_fallback event emitted")
	}
}

// TestStreamExactSHAP smoke-tests the per-tuple entry point: no pool or
// windowing machinery runs, and every answer carries node visits.
func TestStreamExactSHAP(t *testing.T) {
	env := newExactEnv(t, 59, 12)
	s, err := NewStream(env.st, env.forest, smallOpts(ExactSHAP, 60))
	if err != nil {
		t.Fatal(err)
	}
	for i, tup := range env.tuples {
		exp, err := s.Explain(tup)
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if exp.Attribution == nil {
			t.Fatalf("tuple %d unanswered", i)
		}
	}
	rep := s.Report()
	if rep.ExactFallback {
		t.Fatal("stream fell back on an owned forest")
	}
	if rep.NodeVisits == 0 {
		t.Fatal("stream exact run recorded zero node visits")
	}
	if rep.Invocations != int64(len(env.tuples)) {
		t.Fatalf("Invocations = %d, want %d", rep.Invocations, len(env.tuples))
	}
	if rep.PoolInvocations != 0 || rep.ReusedSamples != 0 {
		t.Fatal("stream exact run touched the pool")
	}
}

// TestWarmExactSHAP covers both warm paths: batched flushes through an
// ExactSHAP server, and the single-tuple ExplainExact side door that
// any tree-backed warm server exposes regardless of its batch kind.
func TestWarmExactSHAP(t *testing.T) {
	env := newExactEnv(t, 61, 16)
	w, err := NewWarm(env.st, env.forest, smallOpts(ExactSHAP, 62), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind() != ExactSHAP {
		t.Fatalf("Kind = %v", w.Kind())
	}
	if !w.ExactAvailable() {
		t.Fatal("ExactAvailable false on an owned forest")
	}
	res, err := w.ExplainAll(env.tuples[:8])
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.NodeVisits == 0 || res.Report.PoolInvocations != 0 {
		t.Fatalf("warm flush: visits=%d pool=%d", res.Report.NodeVisits, res.Report.PoolInvocations)
	}
	at, visits, err := w.ExplainExact(env.tuples[8])
	if err != nil {
		t.Fatal(err)
	}
	if at == nil || visits <= 0 {
		t.Fatalf("ExplainExact: at=%v visits=%d", at, visits)
	}
	cum := w.Report()
	if cum.Tuples != 9 {
		t.Fatalf("cumulative Tuples = %d, want 9", cum.Tuples)
	}
	if cum.NodeVisits <= res.Report.NodeVisits {
		t.Fatal("ExplainExact visits not folded into the cumulative report")
	}

	// A LIME warm server over the same forest still answers exact
	// one-offs: availability is structural, not kind-gated.
	wl, err := NewWarm(env.st, env.forest, smallOpts(LIME, 63), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !wl.ExactAvailable() {
		t.Fatal("LIME warm server over a forest should still offer exact one-offs")
	}
	if _, visits, err := wl.ExplainExact(env.tuples[0]); err != nil || visits <= 0 {
		t.Fatalf("LIME-kind ExplainExact: visits=%d err=%v", visits, err)
	}
}

// TestExactUnderCancellableContext pins the CLI shape: a cancellable
// context forces the cancellation bridge between the engine and the
// classifier even with no fault config, and the exact path must see
// through it (via Inner) rather than silently degrading to pool-free
// KernelSHAP.
func TestExactUnderCancellableContext(t *testing.T) {
	env := newExactEnv(t, 64, 12)
	rec := obs.NewRecorder()
	opts := smallOpts(ExactSHAP, 65)
	opts.Recorder = rec

	b, err := NewBatch(env.st, env.forest, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := b.ExplainAllCtx(ctx, env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.ExactFallback {
		t.Fatal("exact path fell back under a cancellable context")
	}
	if res.Report.Invocations != int64(len(env.tuples)) {
		t.Fatalf("Invocations = %d, want %d (one Predict per tuple)",
			res.Report.Invocations, len(env.tuples))
	}
	if res.Report.NodeVisits == 0 {
		t.Fatal("exact run under cancellable context recorded zero node visits")
	}
	var exactEvents, sampled int
	events, _ := rec.Events()
	for _, ev := range events {
		switch ev.Type {
		case obs.EventExactShap:
			exactEvents++
		case obs.EventTupleExplained, obs.EventPoolBuild:
			sampled++
		}
	}
	if exactEvents != len(env.tuples) || sampled != 0 {
		t.Fatalf("events: %d exact_shap (want %d), %d sampled-path (want 0)",
			exactEvents, len(env.tuples), sampled)
	}

	// The stream variant builds its bridge unconditionally; it must
	// stay on the exact path too.
	s, err := NewStream(env.st, env.forest, smallOpts(ExactSHAP, 66))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := s.ExplainCtx(ctx, env.tuples[0])
	if err != nil || exp.Attribution == nil {
		t.Fatalf("stream exact under cancellable context: exp=%+v err=%v", exp, err)
	}
	if rep := s.Report(); rep.NodeVisits == 0 || rep.ExactFallback {
		t.Fatalf("stream report: visits=%d fallback=%v, want exact path", rep.NodeVisits, rep.ExactFallback)
	}
}

package core

import (
	"fmt"
	"math/rand"
	"time"

	"shahin/internal/dataset"
	"shahin/internal/explain"
	"shahin/internal/explain/anchor"
	"shahin/internal/explain/exact"
	"shahin/internal/explain/lime"
	"shahin/internal/explain/shap"
	"shahin/internal/explain/sshap"
	"shahin/internal/obs"
	"shahin/internal/rf"
)

// engine bundles one configured explainer of the selected kind together
// with the classifier instrumentation every run needs.
type engine struct {
	kind Kind
	st   *dataset.Stats
	cls  *rf.Counting
	fb   *fallibleBridge // nil on the infallible fast path

	// classify accumulates in-classifier time via the predict hook.
	// The counting wrapper sits at the top of the chain, so the hook
	// fires on the explainer's own goroutine — no lock needed (each
	// parallel worker owns its engine).
	classify time.Duration

	lime   *lime.Explainer
	anchor *anchor.Explainer
	shap   *shap.Explainer
	sshap  *sshap.Explainer
	exact  *exact.Explainer
}

// newEngine wires up the explainer of the requested kind. covRows feeds
// Anchor's coverage estimates (may be nil for LIME/SHAP). When a
// recorder is attached, every Predict through this engine also feeds
// the recorder's invocation counter and latency histogram.
func newEngine(opts Options, st *dataset.Stats, cls rf.Classifier, covRows []dataset.Itemset, rng *rand.Rand) *engine {
	return newEngineBridge(opts, st, cls, covRows, rng, nil)
}

// newEngineBridge is newEngine with an optional fallible bridge between
// the counting wrapper and the classifier. The counting wrapper sits
// *above* the bridge so every logical prediction — including ones the
// degradation ladder answers — counts toward the invocation ledger,
// keeping the event-reconciliation identity intact under faults.
func newEngineBridge(opts Options, st *dataset.Stats, cls rf.Classifier, covRows []dataset.Itemset, rng *rand.Rand, fb *fallibleBridge) *engine {
	base := cls
	if fb != nil {
		base = fb
	}
	counting := rf.NewCounting(base)
	e := &engine{kind: opts.Explainer, st: st, cls: counting, fb: fb}
	if rec := opts.Recorder; rec != nil {
		invocations := rec.Counter(obs.CounterInvocations)
		latency := rec.Histogram(obs.HistPredict)
		counting.SetPredictHook(func(d time.Duration) {
			invocations.Inc()
			latency.Observe(d)
			e.classify += d
		})
	}
	switch opts.Explainer {
	case LIME:
		e.lime = lime.New(st, counting, opts.LIME, rng)
	case Anchor:
		e.anchor = anchor.New(st, counting, covRows, opts.Anchor, rng)
	case SHAP:
		e.shap = shap.New(st, counting, opts.SHAP, rng)
	case SampleSHAP:
		e.sshap = sshap.New(st, counting, opts.SSHAP, rng)
	case ExactSHAP:
		ex, err := exact.New(st, counting, opts.Exact)
		if err != nil {
			// Eligibility is decided at the run entry points (see
			// exactEligible); an unchecked caller degrades to KernelSHAP
			// rather than crashing mid-run. The marker event keeps even
			// this defensive degrade visible in provenance.
			if rec := opts.Recorder; rec != nil {
				rec.Emit(obs.Event{
					Type: obs.EventExactFallback, Tuple: -1,
					Explainer: ExactSHAP.String(), State: "unsupported_classifier",
				})
			}
			e.kind = SHAP
			e.shap = shap.New(st, counting, opts.SHAP, rng)
			break
		}
		e.exact = ex
	}
	return e
}

// explain runs one explanation. pool may be nil (sequential); sh is the
// Anchor shared state — nil makes Anchor run with fresh per-tuple caches.
func (e *engine) explain(t []float64, pool explain.Pool, sh *anchor.Shared) (Explanation, error) {
	switch e.kind {
	case LIME:
		att, err := e.lime.ExplainWithPool(t, pool)
		if err != nil {
			return Explanation{}, err
		}
		return Explanation{Attribution: att}, nil
	case Anchor:
		rule, err := e.anchor.ExplainShared(t, sh)
		if err != nil {
			return Explanation{}, err
		}
		return Explanation{Rule: rule}, nil
	case SHAP:
		att, err := e.shap.ExplainWithPool(t, pool)
		if err != nil {
			return Explanation{}, err
		}
		return Explanation{Attribution: att}, nil
	case SampleSHAP:
		att, err := e.sshap.ExplainWithPool(t, pool)
		if err != nil {
			return Explanation{}, err
		}
		return Explanation{Attribution: att}, nil
	case ExactSHAP:
		att, err := e.exact.Explain(t)
		if err != nil {
			return Explanation{}, err
		}
		return Explanation{Attribution: att}, nil
	default:
		return Explanation{}, fmt.Errorf("core: unknown explainer kind %d", e.kind)
	}
}

// invocations reports the classifier calls made through this engine.
func (e *engine) invocations() int64 { return e.cls.Invocations() }

// nodeVisits reports the cumulative tree nodes walked by the exact
// explainer (0 for sampled kinds); per-tuple deltas ride exact_shap
// provenance events.
func (e *engine) nodeVisits() int64 {
	if e.exact == nil {
		return 0
	}
	return e.exact.NodeVisits()
}

// classifyTime reports cumulative in-classifier time through this
// engine (0 without a recorder — the predict hook is where timing is
// measured). Per-tuple deltas feed the classify stage of latency
// attribution.
func (e *engine) classifyTime() time.Duration { return e.classify }

// tupleBreakdown attributes one tuple's explanation time across the
// core stages: pool sampling, classification, and the solver remainder
// (clamped at zero against rounding between the measurements).
func tupleBreakdown(dur, classify time.Duration, pool *itemsetPool) obs.StageBreakdown {
	bd := obs.StageBreakdown{Classify: classify}
	if pool != nil {
		bd.PoolSample = pool.tupleRetrieval
	}
	bd.Solve = dur - bd.Classify - bd.PoolSample
	if bd.Solve < 0 {
		bd.Solve = 0
	}
	return bd
}

// beginTuple resets the bridge's per-tuple outcome flags (no-op on the
// infallible fast path).
func (e *engine) beginTuple() {
	if e.fb != nil {
		e.fb.beginTuple()
	}
}

// tupleStatus reports how the current tuple's predictions were answered.
func (e *engine) tupleStatus() Status {
	if e.fb == nil {
		return StatusOK
	}
	return e.fb.status()
}

package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"shahin/internal/cache"
	"shahin/internal/dataset"
	"shahin/internal/explain"
	"shahin/internal/explain/anchor"
	"shahin/internal/fault"
	"shahin/internal/fim"
	"shahin/internal/obs"
	"shahin/internal/perturb"
	"shahin/internal/rf"
)

// Stream is Shahin's streaming variant (paper §3.5): explanation requests
// arrive one at a time, the perturbation repository lives under a byte
// budget with LRU eviction, frequent itemsets are re-mined every
// StreamRecompute tuples over the tuples seen since the last recompute,
// and (optionally) the negative border is tracked so that a border
// itemset whose running frequency crosses the support threshold is
// promoted — and materialised — without waiting for the next re-mine.
type Stream struct {
	opts Options
	st   *dataset.Stats
	eng  *engine
	gen  *perturb.Generator

	repo *cache.Repo
	pool *itemsetPool
	sh   *anchor.Shared // Anchor-only persistent shared state

	// chain and fb are the failure model: the stream always routes
	// predictions through a fault chain (a pass-through one when
	// Options.Fault is nil, preserving byte-identical labels) so any
	// tuple can be explained under a cancellable context.
	chain    *fault.Chain
	fb       *fallibleBridge
	poolSets []dataset.Itemset // materialised itemsets, for the fallback ladder
	degraded int
	failed   int

	window    []dataset.Itemset // itemised tuples since the last re-mine
	tracked   []*trackedSet     // frequent itemsets + negative border
	mines     int
	maxPooled int // itemset cap derived from the per-window budget

	tuples   int
	wall     time.Duration
	overhead time.Duration
	poolInv  int64 // Predict calls spent materialising pooled perturbations
	// exactFallback records a construction-time downgrade of an
	// ExactSHAP request to KernelSHAP.
	exactFallback bool

	// Stage accounting and live instrumentation (root/tupleHist/doneCtr
	// are nil — and no-ops — without a recorder).
	mineTime    time.Duration
	poolTime    time.Duration
	explainTime time.Duration
	root        *obs.Span
	tupleHist   *obs.Histogram
	doneCtr     *obs.Counter
}

// trackedSet is one itemset whose running frequency the stream maintains
// between re-mines.
type trackedSet struct {
	set      dataset.Itemset
	count    int  // occurrences in the current window
	frequent bool // currently materialised
}

// NewStream creates a streaming explainer. Coverage rows for Anchor are
// accumulated from the stream itself.
func NewStream(st *dataset.Stats, cls rf.Classifier, opts Options) (*Stream, error) {
	if st == nil || cls == nil {
		return nil, fmt.Errorf("core: NewStream needs stats and a classifier")
	}
	opts = opts.withDefaults()
	opts, fellBack := applyExactFallback(opts, cls)
	rng := rand.New(rand.NewSource(opts.Seed))
	rec := opts.Recorder
	s := &Stream{
		opts: opts,
		st:   st,
		repo: cache.NewRepo(opts.CacheBytes),
		// The stream root span stays open for the explainer's lifetime;
		// trace dumps report it in-flight with its running duration.
		root:      rec.StartSpan(obs.StageStream),
		tupleHist: rec.Histogram(obs.HistExplainTuple),
		doneCtr:   rec.Counter(obs.CounterTuplesDone),
	}
	s.exactFallback = fellBack
	s.repo.SetHooks(cacheHooks(rec))
	// The stream is fallible from birth: a zero fault.Config builds a
	// pass-through chain (context honoured, nothing injected) whose
	// labels are byte-identical to calling the classifier directly, so
	// ExplainCtx works whether or not faults are configured.
	var fcfg fault.Config
	if opts.Fault != nil {
		fcfg = *opts.Fault
	}
	s.chain = fault.Build(cls, fcfg, rec)
	s.fb = newFallibleBridge(context.Background(), s.chain, st, cls, rec)
	// Anchor's coverage sample grows with the stream: the engine holds a
	// reference to the slice header, so rebuild the engine lazily instead.
	// Simpler: give Anchor the window slice at first mine; coverage of a
	// rule is memoised on first use, so early tuples use window coverage.
	// An ExactSHAP stream keeps the bridge too: a pass-through chain
	// exposes the ensemble via Inner(), so the unwrap sees the trees
	// while the walker's single target Predict stays cancellable.
	s.eng = newEngineBridge(opts, st, cls, nil, rng, s.fb)
	s.gen = perturb.NewGenerator(st, rng)
	// Same resource rule as the batch variant: never spend more than
	// ~20 % of a window's sequential classifier budget on materialising
	// pooled perturbations, or small windows drown in pool construction.
	s.maxPooled = opts.MaxItemsets
	if cap := poolBudget(opts, opts.StreamRecompute) / opts.Tau; cap < s.maxPooled {
		if cap < 10 {
			cap = 10
		}
		s.maxPooled = cap
	}
	switch opts.Explainer {
	case Anchor:
		s.sh = anchor.NewShared(s.eng.cls.NumClasses(), opts.CacheBytes)
		s.sh.Repo.SetHooks(cacheHooks(rec))
	case ExactSHAP:
		// No pool: the exact path neither perturbs nor reuses samples.
	default:
		s.pool = newItemsetPool(s.repo, nil, rec)
	}
	return s, nil
}

// Explain processes one arriving tuple and returns its explanation.
func (s *Stream) Explain(t []float64) (Explanation, error) {
	return s.ExplainCtx(context.Background(), t)
}

// ExplainCtx is Explain under a context. A context already cancelled on
// entry returns a StatusFailed explanation and ctx.Err() without
// touching the stream's state; cancellation mid-tuple finishes the
// tuple quickly on fallback labels (marked StatusFailed) so the stream
// and its Report stay consistent. Explain calls must not overlap —
// the stream is a serial consumer by contract.
func (s *Stream) ExplainCtx(ctx context.Context, t []float64) (Explanation, error) {
	if err := ctx.Err(); err != nil {
		return Explanation{Status: StatusFailed}, err
	}
	// Carry the stream root span on the bridge's context so fault-chain
	// children (degrade markers, retry spans) attach under it, and adopt
	// the caller's trace identity when one is present (last caller wins —
	// the root is shared across the stream's lifetime).
	if tc, ok := obs.TraceFromContext(ctx); ok {
		c := tc.Child()
		s.root.SetTrace(c.TraceID, c.SpanID, tc.SpanID)
	}
	s.fb.ctx = obs.ContextWithSpan(ctx, s.root)
	defer func() { s.fb.ctx = s.fb.base }()
	start := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	defer func() { s.wall += time.Since(start) }()

	trackStart := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	// The exact path never mines, pools, or tracks the border; its only
	// per-tuple bookkeeping is the walk itself.
	if s.eng.exact == nil {
		items := append(dataset.Itemset(nil), s.st.ItemizeRow(t, nil)...)
		s.window = append(s.window, items)
		for _, ts := range s.tracked {
			if ts.set.ContainsAll(items) {
				ts.count++
			}
		}
	}
	// Border promotion between re-mines: an itemset whose running window
	// frequency clears the threshold gets materialised immediately. The
	// window must be large enough (and the count high enough in absolute
	// terms) that small-sample variance does not promote marginal
	// itemsets, and the pool size cap still applies.
	if s.eng.exact == nil && *s.opts.StreamBorder && len(s.window) >= 50 {
		minCount := int(s.opts.MinSupport * float64(len(s.window)))
		if minCount < 5 {
			minCount = 5
		}
		for _, ts := range s.tracked {
			if ts.frequent || ts.count < minCount {
				continue
			}
			if s.pooledCount() >= s.maxPooled {
				break
			}
			s.materialize(ts.set, -1)
			ts.frequent = true
			s.poolSets = appendItemset(s.poolSets, ts.set)
			if s.pool != nil {
				s.pool.itemsets = appendItemset(s.pool.itemsets, ts.set)
				s.pool.longestView = appendLongest(s.pool.longestView, ts.set)
			}
		}
	}
	s.overhead += time.Since(trackStart)

	if s.eng.exact == nil && len(s.window) >= s.opts.StreamRecompute {
		s.remine()
	}

	var pl explain.Pool
	if s.pool != nil && len(s.pool.itemsets) > 0 {
		s.pool.beginTuple()
		pl = s.pool
	}
	// Point the degradation ladder at whatever is materialised right now.
	if s.sh != nil {
		s.fb.setPool(s.sh.Repo, s.poolSets)
	} else {
		s.fb.setPool(s.repo, s.poolSets)
	}
	s.eng.beginTuple()
	rec := s.opts.Recorder
	var (
		inv0       int64
		nv0        int64
		anchorHits int64
	)
	if rec != nil {
		inv0 = s.eng.invocations()
		nv0 = s.eng.nodeVisits()
		if s.sh != nil {
			anchorHits = s.sh.Repo.Stats().Hits
		}
	}
	cls0 := s.eng.classifyTime()
	explainStart := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	exp, err := s.eng.explain(t, pl, s.sh)
	dur := time.Since(explainStart)
	s.explainTime += dur
	if err != nil {
		return Explanation{}, err
	}
	exp.Status = s.eng.tupleStatus()
	switch exp.Status {
	case StatusDegraded:
		s.degraded++
	case StatusFailed:
		s.failed++
	}
	s.tupleHist.Observe(dur)
	s.doneCtr.Inc()
	if rec != nil {
		ev := obs.Event{
			Type: obs.EventTupleExplained, Tuple: s.tuples,
			Explainer: s.opts.Explainer.String(),
			Fresh:     s.eng.invocations() - inv0,
			DurMS:     float64(dur) / float64(time.Millisecond),
		}
		if s.eng.exact != nil {
			ev.Type = obs.EventExactShap
			ev.NodeVisits = s.eng.nodeVisits() - nv0
		} else if pl != nil {
			ev.Pooled, ev.CacheHits, ev.Itemset = s.pool.provenance()
		} else if s.sh != nil {
			ev.CacheHits = s.sh.Repo.Stats().Hits - anchorHits
		}
		if exp.Status != StatusOK {
			ev.Status = exp.Status.String()
		}
		var tp *itemsetPool
		if pl != nil {
			tp = s.pool
		}
		bd := tupleBreakdown(dur, s.eng.classifyTime()-cls0, tp)
		rec.ObserveStages(bd)
		ev.Stages = &bd
		rec.Emit(ev)
	}
	s.tuples++
	return exp, nil
}

// remine recomputes the frequent itemsets (and negative border) over the
// window, materialises newly frequent itemsets, evicts ones that fell out
// of fashion, and resets the window.
func (s *Stream) remine() {
	remineSpan := s.root.Child(obs.StageRemine)
	defer remineSpan.End()
	remineStart := time.Now() //shahinvet:allow walltime — re-mine timing feeds the obs event log
	frequentAfter := 0
	defer func() {
		s.opts.Recorder.Emit(obs.Event{
			Type: obs.EventRemine, Tuple: -1, Itemsets: frequentAfter,
			DurMS: float64(time.Since(remineStart)) / float64(time.Millisecond),
		})
	}()
	mineSpan := remineSpan.Child(obs.StageMine)
	mineStart := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	res, err := fim.Mine(s.window, fim.Config{
		MinSupport:  effectiveSupport(s.opts.MinSupport, len(s.window)),
		MaxLen:      s.opts.MaxItemsetLen,
		WithBorder:  *s.opts.StreamBorder,
		MaxPerLevel: 4 * s.opts.MaxItemsets,
	})
	s.overhead += time.Since(mineStart)
	s.mineTime += time.Since(mineStart)
	mineSpan.End()
	if err != nil {
		// Config is validated at construction; mining over a non-empty
		// window cannot fail. Keep the old state if it somehow does.
		return
	}
	mineSpan.SetAttr("frequent_itemsets", len(res.Frequent))
	frequent := res.Frequent
	if len(frequent) > s.maxPooled {
		frequent = frequent[:s.maxPooled]
	}
	frequentAfter = len(frequent)

	// Evict repository entries whose itemset is no longer frequent
	// ("any frequent itemset that becomes infrequent is kicked out along
	// its perturbations", §3.5).
	keep := make(map[dataset.ItemsetKey]bool, len(frequent))
	for _, m := range frequent {
		keep[m.Set.Key()] = true
	}
	repo := s.repo
	if s.sh != nil {
		repo = s.sh.Repo
	}
	for _, key := range repo.Keys() {
		if !keep[key] {
			repo.Delete(key)
		}
	}

	// Materialise newly frequent itemsets and rebuild the tracked list
	// (frequent itemsets + negative border).
	poolSpan := remineSpan.Child(obs.StagePoolBuild)
	preLabelSpan := poolSpan.Child(obs.StagePreLabel)
	poolStart := time.Now() //shahinvet:allow walltime — pool-build timing feeds the obs event log
	poolInv0 := s.poolInv
	materialised := 0
	s.tracked = s.tracked[:0]
	var sets []dataset.Itemset
	for _, m := range frequent {
		if !repo.Contains(m.Set.Key()) {
			s.materialize(m.Set, m.Support)
			materialised++
		}
		sets = append(sets, m.Set)
		s.tracked = append(s.tracked, &trackedSet{set: m.Set, frequent: true})
	}
	preLabelSpan.End()
	poolSpan.End()
	if materialised > 0 {
		s.opts.Recorder.Emit(obs.Event{
			Type: obs.EventPoolBuild, Tuple: -1, Itemsets: materialised,
			Fresh: s.poolInv - poolInv0,
			DurMS: float64(time.Since(poolStart)) / float64(time.Millisecond),
		})
	}
	if *s.opts.StreamBorder {
		// Track only the most promising border itemsets (the mined border
		// is sorted by support within each length); an unbounded border
		// would make per-tuple count maintenance expensive.
		border := res.Border
		if len(border) > s.opts.MaxItemsets {
			border = border[:s.opts.MaxItemsets]
		}
		for _, m := range border {
			s.tracked = append(s.tracked, &trackedSet{set: m.Set})
		}
	}
	s.poolSets = sets
	if s.pool != nil {
		s.pool.itemsets = sets
		longest := append([]dataset.Itemset(nil), sets...)
		sort.SliceStable(longest, func(i, j int) bool { return len(longest[i]) > len(longest[j]) })
		s.pool.longestView = longest
	}
	s.window = s.window[:0]
	s.mines++
}

// materialize generates and labels τ perturbations for an itemset,
// storing them in the active repository (and, for Anchor, seeding the
// invariant cache). support < 0 means unknown (border promotion).
func (s *Stream) materialize(set dataset.Itemset, support float64) {
	poolStart := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	inv0 := s.eng.invocations()
	defer func() {
		s.poolTime += time.Since(poolStart)
		delta := s.eng.invocations() - inv0
		s.poolInv += delta
		s.opts.Recorder.Counter(obs.CounterPoolInvocations).Add(delta)
	}()
	defer func(inv0 int64, setStart time.Time) {
		rec := s.opts.Recorder
		if rec == nil {
			return
		}
		rec.Emit(obs.Event{
			Type: obs.EventPreLabel, Tuple: -1, Itemset: set.String(),
			Fresh: s.eng.invocations() - inv0,
			DurMS: float64(time.Since(setStart)) / float64(time.Millisecond),
		})
	}(inv0, poolStart)
	tau := s.opts.Tau
	if s.sh != nil {
		rr, _ := s.sh.Inv.Lookup(set.Key())
		hist := make([]int, s.eng.cls.NumClasses())
		samples := make([]perturb.Sample, tau)
		for j := range samples {
			smp := s.gen.ForItemset(set)
			smp.Label = s.eng.cls.Predict(smp.Row)
			hist[smp.Label]++
			samples[j] = smp
		}
		rr.AddTrials(hist)
		if support >= 0 {
			rr.Coverage = support
			rr.HasCoverage = true
		}
		s.sh.Repo.Put(set.Key(), samples)
	} else {
		samples := make([]perturb.Sample, tau)
		for j := range samples {
			smp := s.gen.ForItemset(set)
			smp.Label = s.eng.cls.Predict(smp.Row)
			samples[j] = smp
		}
		s.repo.Put(set.Key(), samples)
	}
}

// Report returns a snapshot of the stream's accumulated cost accounting.
func (s *Stream) Report() Report {
	rep := Report{
		Tuples:          s.tuples,
		WallTime:        s.wall,
		OverheadTime:    s.overhead,
		MineTime:        s.mineTime,
		PoolTime:        s.poolTime,
		ExplainTime:     s.explainTime,
		Invocations:     s.eng.invocations(),
		PoolInvocations: s.poolInv,
		NodeVisits:      s.eng.nodeVisits(),
		ExactFallback:   s.exactFallback,
	}
	if s.pool != nil {
		rep.OverheadTime += s.pool.retrieval
		rep.ReusedSamples = s.pool.reused
		rep.Cache = s.repo.Stats()
		rep.FrequentItemsets = len(s.pool.itemsets)
	}
	if s.sh != nil {
		rep.Cache = s.sh.Repo.Stats()
		rep.FrequentItemsets = s.sh.Repo.Len()
	}
	rep.Retries = s.chain.Stats().Retries
	rep.Degraded = s.degraded
	rep.Failed = s.failed
	return rep
}

// Mines reports how many itemset recomputations have run (diagnostics and
// tests).
func (s *Stream) Mines() int { return s.mines }

// pooledCount returns how many itemsets currently have materialised
// perturbations.
func (s *Stream) pooledCount() int {
	if s.sh != nil {
		return s.sh.Repo.Len()
	}
	return s.repo.Len()
}

// appendItemset adds set to list if not already present.
func appendItemset(list []dataset.Itemset, set dataset.Itemset) []dataset.Itemset {
	key := set.Key()
	for _, f := range list {
		if f.Key() == key {
			return list
		}
	}
	return append(list, set)
}

// appendLongest inserts set keeping the longest-first ordering.
func appendLongest(list []dataset.Itemset, set dataset.Itemset) []dataset.Itemset {
	list = appendItemset(list, set)
	sort.SliceStable(list, func(i, j int) bool { return len(list[i]) > len(list[j]) })
	return list
}

// statsFor exposes the active repository stats (tests).
func (s *Stream) statsFor() cache.Stats {
	if s.sh != nil {
		return s.sh.Repo.Stats()
	}
	return s.repo.Stats()
}

var _ rf.Classifier = (*rf.Counting)(nil)

package core_test

import (
	"encoding/json"
	"fmt"

	"shahin/internal/core"
)

// ExampleStatus shows the three answer classes of the failure model and
// their JSON wire form: the zero value marshals as "ok", so explanation
// documents from infallible runs are byte-identical to the pre-failure-
// model era.
func ExampleStatus() {
	fmt.Println(core.StatusOK, core.StatusDegraded, core.StatusFailed)

	wire, _ := json.Marshal(core.StatusDegraded)
	fmt.Println(string(wire))

	var back core.Status
	_ = json.Unmarshal([]byte(`"failed"`), &back)
	fmt.Println(back == core.StatusFailed)
	// Output:
	// ok degraded failed
	// "degraded"
	// true
}

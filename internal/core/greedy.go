package core

import (
	"fmt"
	"math/rand"
	"time"

	"shahin/internal/dataset"
	"shahin/internal/explain"
	"shahin/internal/obs"
	"shahin/internal/perturb"
	"shahin/internal/rf"
)

// Greedy is the paper's GREEDY baseline (§4.1): it blindly persists every
// perturbation generated while explaining, under a byte budget with LRU
// (oldest-first) eviction, and reuses any stored perturbation that is
// compatible with the tuple at hand. It has no notion of which
// perturbations are worth keeping — the contrast that motivates Shahin's
// frequent-itemset materialisation.
func Greedy(st *dataset.Stats, cls rf.Classifier, opts Options, tuples [][]float64, budgetBytes int64) (*Result, error) {
	if len(tuples) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	opts = opts.withDefaults()
	if opts.Explainer == Anchor {
		// GREEDY for Anchor degenerates to sequential with a sample store;
		// the paper evaluates GREEDY on the perturbation-pool explainers.
		// Run it as sequential so the comparison is still well defined.
		return Sequential(st, cls, opts, tuples)
	}
	start := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	rng := rand.New(rand.NewSource(opts.Seed))
	eng := newEngine(opts, st, cls, nil, rng)

	rec := opts.Recorder
	root := rec.StartSpan(obs.StageGreedy)
	root.SetAttr("tuples", len(tuples))
	defer root.End()
	rec.Gauge(obs.GaugeTuplesTotal).Set(int64(len(tuples)))
	explainSpan := root.Child(obs.StageExplain)
	var (
		tupleHist *obs.Histogram
		doneCtr   *obs.Counter
	)
	if rec != nil {
		tupleHist = rec.Histogram(obs.HistExplainTuple)
		doneCtr = rec.Counter(obs.CounterTuplesDone)
	}

	store := newGreedyStore(budgetBytes)
	store.reusedCtr = rec.Counter(obs.CounterReusedSamples)
	out := make([]Explanation, 0, len(tuples))
	for i, t := range tuples {
		store.beginTuple()
		var tupleStart time.Time
		if tupleHist != nil {
			tupleStart = time.Now() //shahinvet:allow walltime — per-tuple latency feeds the obs histogram
		}
		exp, err := eng.explain(t, store, nil)
		if err != nil {
			return nil, fmt.Errorf("core: explaining tuple %d: %w", i, err)
		}
		if tupleHist != nil {
			tupleHist.Observe(time.Since(tupleStart))
			doneCtr.Inc()
		}
		out = append(out, exp)
	}
	explainSpan.End()
	wall := time.Since(start)
	return &Result{
		Explanations: out,
		Report: Report{
			Tuples:        len(tuples),
			WallTime:      wall,
			ExplainTime:   wall,
			OverheadTime:  store.retrieval,
			Invocations:   eng.invocations(),
			ReusedSamples: store.reused,
		},
	}, nil
}

// greedyStore is a flat FIFO of labelled perturbations under a byte
// budget. Reuse scans newest-first: any stored sample sharing at least
// one bin with the tuple may be served for ForTuple, and ForItemset
// requires a full match of the required items — the same compatibility
// rules as Shahin's pool, minus the curation.
type greedyStore struct {
	budget int64
	used   int64

	samples []storedSample
	nextID  int64
	head    int // index of the oldest live sample

	consumed  map[int64]bool // per-tuple allowance
	reused    int64
	retrieval time.Duration
	reusedCtr *obs.Counter // live reuse counter; nil (no-op) without a recorder
}

type storedSample struct {
	id int64
	s  perturb.Sample
}

var (
	_ explain.Pool     = (*greedyStore)(nil)
	_ explain.Observer = (*greedyStore)(nil)
)

func newGreedyStore(budget int64) *greedyStore {
	return &greedyStore{budget: budget, consumed: make(map[int64]bool)}
}

func (g *greedyStore) beginTuple() { clear(g.consumed) }

// Observe implements explain.Observer: every fresh labelled perturbation
// is persisted, evicting oldest entries past the budget.
func (g *greedyStore) Observe(s perturb.Sample) {
	g.samples = append(g.samples, storedSample{id: g.nextID, s: s})
	g.nextID++
	g.used += s.Bytes()
	for g.budget > 0 && g.used > g.budget && g.head < len(g.samples) {
		g.used -= g.samples[g.head].s.Bytes()
		g.samples[g.head] = storedSample{} // release for GC
		g.head++
	}
	// Compact the slice occasionally so memory is actually reclaimed.
	if g.head > 0 && g.head*2 > len(g.samples) {
		g.samples = append(g.samples[:0], g.samples[g.head:]...)
		g.head = 0
	}
}

// ForTuple implements explain.Pool: newest-first scan for stored samples
// that agree with the tuple on at least half of the attributes — samples
// that carry locality for this tuple. Most leftovers from other tuples'
// explanations do not qualify, which (together with the deepening scans
// as the cache grows) is exactly why the paper finds GREEDY's speedup
// fades at larger batches.
func (g *greedyStore) ForTuple(tupleItems []dataset.Item, max int) []perturb.Sample {
	startT := time.Now() //shahinvet:allow walltime — retrieval overhead accounting (Figure 5)
	defer func() { g.retrieval += time.Since(startT) }()

	minMatch := (len(tupleItems) + 1) / 2
	var out []perturb.Sample
	for i := len(g.samples) - 1; i >= g.head && len(out) < max; i-- {
		ss := &g.samples[i]
		if g.consumed[ss.id] {
			continue
		}
		if matchingBins(tupleItems, ss.s.Items) >= minMatch {
			out = append(out, ss.s)
			g.consumed[ss.id] = true
		}
	}
	g.reused += int64(len(out))
	g.reusedCtr.Add(int64(len(out)))
	return out
}

// ForItemset implements explain.Pool: newest-first scan for samples
// matching all required items. Requirements beyond a few items cannot
// match product-marginal samples by chance, so the scan is skipped.
func (g *greedyStore) ForItemset(required dataset.Itemset, max int) []perturb.Sample {
	if len(required) > 3 {
		return nil
	}
	startT := time.Now() //shahinvet:allow walltime — retrieval overhead accounting (Figure 5)
	defer func() { g.retrieval += time.Since(startT) }()

	var out []perturb.Sample
	for i := len(g.samples) - 1; i >= g.head && len(out) < max; i-- {
		ss := &g.samples[i]
		if g.consumed[ss.id] {
			continue
		}
		if perturb.MatchesBins(required, ss.s.Items) {
			out = append(out, ss.s)
			g.consumed[ss.id] = true
		}
	}
	g.reused += int64(len(out))
	g.reusedCtr.Add(int64(len(out)))
	return out
}

// matchingBins counts the attributes on which the sample agrees with the
// tuple's bin.
func matchingBins(tupleItems, sampleItems []dataset.Item) int {
	n := 0
	for a := range tupleItems {
		if tupleItems[a] == sampleItems[a] {
			n++
		}
	}
	return n
}

package core

import (
	"context"
	"encoding/json"
	"testing"

	"shahin/internal/obs"
)

// TestWarmReusesPoolAcrossFlushes is the warm variant's core claim:
// after the first flush mines and materialises the pool, later flushes
// spend zero pool invocations yet still reuse pooled samples.
func TestWarmReusesPoolAcrossFlushes(t *testing.T) {
	env := newEnv(t, 1, 60)
	w, err := NewWarm(env.st, env.cls, smallOpts(LIME, 1), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	first, err := w.ExplainAll(env.tuples[:20])
	if err != nil {
		t.Fatal(err)
	}
	if first.Report.PoolInvocations == 0 {
		t.Fatalf("first flush should mine and build the pool")
	}
	if w.Remines() != 1 {
		t.Fatalf("Remines = %d, want 1", w.Remines())
	}
	second, err := w.ExplainAll(env.tuples[20:40])
	if err != nil {
		t.Fatal(err)
	}
	if second.Report.PoolInvocations != 0 {
		t.Fatalf("second flush rebuilt the pool (%d pool invocations); the warm store should persist",
			second.Report.PoolInvocations)
	}
	if second.Report.ReusedSamples == 0 {
		t.Fatalf("second flush reused nothing; cross-flush sharing is broken")
	}
	if w.Flushes() != 2 {
		t.Fatalf("Flushes = %d, want 2", w.Flushes())
	}
	cum := w.Report()
	if cum.Tuples != 40 {
		t.Fatalf("cumulative Tuples = %d, want 40", cum.Tuples)
	}
	if cum.ReusedSamples < second.Report.ReusedSamples {
		t.Fatalf("cumulative reuse %d < flush reuse %d", cum.ReusedSamples, second.Report.ReusedSamples)
	}
}

// TestWarmStalenessRemine drives enough tuples past the staleness
// threshold that a second mine fires.
func TestWarmStalenessRemine(t *testing.T) {
	env := newEnv(t, 2, 90)
	w, err := NewWarm(env.st, env.cls, smallOpts(LIME, 2), 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.ExplainAll(env.tuples[30*i : 30*i+30]); err != nil {
			t.Fatal(err)
		}
	}
	// Flush 1 mines (never mined); flush 2 re-mines (30 >= 30 stale);
	// flush 3 re-mines again.
	if w.Remines() != 3 {
		t.Fatalf("Remines = %d, want 3 with staleAfter=30 and 3x30 tuples", w.Remines())
	}
	if w.PooledItemsets() == 0 {
		t.Fatalf("no pooled itemsets after re-mine")
	}
}

// TestWarmDeterministicFlushSequence re-runs the same sequence of flush
// compositions and requires byte-identical explanations — the guarantee
// DESIGN.md §11 documents for the serving layer.
func TestWarmDeterministicFlushSequence(t *testing.T) {
	env := newEnv(t, 3, 50)
	run := func() []byte {
		w, err := NewWarm(env.st, env.cls, smallOpts(LIME, 3), 10_000)
		if err != nil {
			t.Fatal(err)
		}
		var all []Explanation
		for _, cut := range [][2]int{{0, 17}, {17, 31}, {31, 50}} {
			res, err := w.ExplainAll(env.tuples[cut[0]:cut[1]])
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, res.Explanations...)
		}
		b, err := json.Marshal(all)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same flush sequence produced different explanations")
	}
}

// TestWarmParallelMatchesSerial checks the worker-sharded flush path
// produces the same per-flush accounting shape and no failed tuples.
func TestWarmParallelMatchesSerial(t *testing.T) {
	env := newEnv(t, 4, 40)
	opts := smallOpts(LIME, 4)
	opts.Workers = 4
	w, err := NewWarm(env.st, env.cls, opts, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ExplainAll(env.tuples[:20]); err != nil {
		t.Fatal(err)
	}
	res, err := w.ExplainAll(env.tuples[20:])
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Failed != 0 {
		t.Fatalf("%d failed tuples on the parallel warm path", res.Report.Failed)
	}
	for i, e := range res.Explanations {
		if e.Attribution == nil {
			t.Fatalf("tuple %d missing attribution", i)
		}
	}
	if res.Report.ReusedSamples == 0 {
		t.Fatalf("parallel flush reused nothing from the warm pool")
	}
}

// TestWarmCancelMarksUnattempted cancels before a flush and requires
// every tuple of that flush to come back StatusFailed.
func TestWarmCancelMarksUnattempted(t *testing.T) {
	env := newEnv(t, 5, 30)
	w, err := NewWarm(env.st, env.cls, smallOpts(LIME, 5), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ExplainAll(env.tuples[:10]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := w.ExplainAllCtx(ctx, env.tuples[10:])
	if err == nil {
		t.Fatalf("cancelled flush returned nil error")
	}
	if res == nil {
		t.Fatalf("cancelled flush returned nil result; partials are part of the contract")
	}
	for i, e := range res.Explanations {
		if e.Status != StatusFailed {
			t.Fatalf("tuple %d status = %v, want failed", i, e.Status)
		}
	}
}

// TestWarmEmitsRemineEvents checks the provenance trail: a warm run
// with a recorder produces re_mine and tuple_explained events.
func TestWarmEmitsRemineEvents(t *testing.T) {
	env := newEnv(t, 6, 20)
	opts := smallOpts(LIME, 6)
	rec := obs.NewRecorder()
	opts.Recorder = rec
	w, err := NewWarm(env.st, env.cls, opts, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ExplainAll(env.tuples); err != nil {
		t.Fatal(err)
	}
	events, _ := rec.Events()
	var remines, explained int
	for _, e := range events {
		switch e.Type {
		case obs.EventRemine:
			remines++
		case obs.EventTupleExplained:
			explained++
		}
	}
	if remines != 1 {
		t.Fatalf("re_mine events = %d, want 1", remines)
	}
	if explained != len(env.tuples) {
		t.Fatalf("tuple_explained events = %d, want %d", explained, len(env.tuples))
	}
}

// TestWarmPoolOccupancyGauge: each instrumented flush publishes the
// pool's itemset count into the occupancy gauge, and it agrees with
// PooledItemsets.
func TestWarmPoolOccupancyGauge(t *testing.T) {
	env := newEnv(t, 71, 30)
	rec := obs.NewRecorder()
	opts := smallOpts(LIME, 72)
	opts.Recorder = rec
	w, err := NewWarm(env.st, env.cls, opts, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	g := rec.Gauge(obs.GaugeWarmPooledItemsets)
	if g.Value() != 0 {
		t.Fatalf("gauge before any flush = %d, want 0", g.Value())
	}
	if _, err := w.ExplainAll(env.tuples[:15]); err != nil {
		t.Fatal(err)
	}
	got := g.Value()
	if got <= 0 {
		t.Fatalf("gauge after first flush = %d, want positive", got)
	}
	if want := w.PooledItemsets(); got != int64(want) {
		t.Fatalf("gauge = %d, PooledItemsets = %d", got, want)
	}
	// A second flush over the warm pool republishes the same occupancy.
	if _, err := w.ExplainAll(env.tuples[15:30]); err != nil {
		t.Fatal(err)
	}
	if g.Value() != int64(w.PooledItemsets()) {
		t.Fatalf("gauge after second flush = %d, PooledItemsets = %d", g.Value(), w.PooledItemsets())
	}
}

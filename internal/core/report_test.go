package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"shahin/internal/cache"
)

func TestReportZeroValues(t *testing.T) {
	var r Report
	if got := r.OverheadFraction(); got != 0 {
		t.Fatalf("OverheadFraction with zero wall time = %v, want 0", got)
	}
	if got := r.PerTuple(); got != 0 {
		t.Fatalf("PerTuple with zero tuples = %v, want 0", got)
	}
	if got := r.ReuseRate(); got != 0 {
		t.Fatalf("ReuseRate with no traffic = %v, want 0", got)
	}
	// Overhead recorded but nothing explained: still no division by zero.
	r.OverheadTime = time.Second
	if got := r.OverheadFraction(); got != 0 {
		t.Fatalf("OverheadFraction with zero wall time = %v, want 0", got)
	}
}

func TestReportDerivedMetrics(t *testing.T) {
	r := Report{
		Tuples:        4,
		WallTime:      2 * time.Second,
		OverheadTime:  200 * time.Millisecond,
		Invocations:   300,
		ReusedSamples: 700,
	}
	if got := r.PerTuple(); got != 500*time.Millisecond {
		t.Fatalf("PerTuple = %v", got)
	}
	if got := r.OverheadFraction(); got != 0.1 {
		t.Fatalf("OverheadFraction = %v", got)
	}
	if got := r.ReuseRate(); got != 0.7 {
		t.Fatalf("ReuseRate = %v", got)
	}
}

func TestReportMarshalJSON(t *testing.T) {
	r := Report{
		Tuples:           10,
		WallTime:         time.Second,
		OverheadTime:     100 * time.Millisecond,
		MineTime:         40 * time.Millisecond,
		PoolTime:         60 * time.Millisecond,
		ExplainTime:      900 * time.Millisecond,
		Invocations:      1000,
		PoolInvocations:  400,
		ReusedSamples:    3000,
		FrequentItemsets: 25,
		Cache:            cache.Stats{Hits: 9, Misses: 1, Entries: 25, BytesUsed: 2048, Budget: 4096},
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"tuples":            10,
		"wall_ms":           1000,
		"per_tuple_ms":      100,
		"overhead_ms":       100,
		"overhead_fraction": 0.1,
		"mine_ms":           40,
		"pool_ms":           60,
		"explain_ms":        900,
		"invocations":       1000,
		"pool_invocations":  400,
		"reused_samples":    3000,
		"reuse_rate":        0.75,
		"frequent_itemsets": 25,
		"cache_hit_rate":    0.9,
	}
	for key, v := range want {
		got, ok := m[key].(float64)
		if !ok || got != v {
			t.Errorf("%s = %v, want %v", key, m[key], v)
		}
	}
	cacheObj, ok := m["cache"].(map[string]any)
	if !ok || cacheObj["hits"].(float64) != 9 || cacheObj["bytes_used"].(float64) != 2048 {
		t.Fatalf("cache = %v", m["cache"])
	}

	// The zero report must also marshal without NaN/Inf from divisions.
	if _, err := json.Marshal(Report{}); err != nil {
		t.Fatalf("zero report: %v", err)
	}

	// Human-readable duration strings ride alongside the numeric fields.
	if m["wall"] != "1s" || m["mine"] != "40ms" || m["per_tuple"] != "100ms" {
		t.Errorf("duration strings wall=%v mine=%v per_tuple=%v", m["wall"], m["mine"], m["per_tuple"])
	}
}

// TestReportRoundTrip proves MarshalJSON/UnmarshalJSON are lossless: the
// exact nanosecond fields reconstruct every duration, and the raw counts
// survive, so a ledger-embedded report equals the original.
func TestReportRoundTrip(t *testing.T) {
	orig := Report{
		Tuples:           40,
		WallTime:         1284*time.Millisecond + 567*time.Nanosecond,
		OverheadTime:     93*time.Millisecond + 1,
		MineTime:         17 * time.Millisecond,
		PoolTime:         76 * time.Millisecond,
		ExplainTime:      1191 * time.Millisecond,
		Invocations:      14700,
		PoolInvocations:  9500,
		ReusedSamples:    43200,
		FrequentItemsets: 95,
		Cache:            cache.Stats{Hits: 3800, Misses: 95, Entries: 95, BytesUsed: 123456, Budget: 1 << 27, Evictions: 2},
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, orig)
	}
	if back.ReuseRate() != orig.ReuseRate() {
		t.Fatalf("derived reuse rate differs after round trip")
	}
}

func TestReportString(t *testing.T) {
	r := Report{
		Tuples:           5,
		WallTime:         time.Second,
		OverheadTime:     50 * time.Millisecond,
		MineTime:         10 * time.Millisecond,
		PoolTime:         40 * time.Millisecond,
		ExplainTime:      950 * time.Millisecond,
		Invocations:      100,
		PoolInvocations:  60,
		ReusedSamples:    300,
		FrequentItemsets: 7,
		Cache:            cache.Stats{Hits: 3, Misses: 1, Entries: 7, BytesUsed: 1 << 20},
	}
	s := r.String()
	for _, want := range []string{
		"5 explanations",
		"stages: mine",
		"classifier invocations: 100 (60 pre-labelling the pool)",
		"300 samples reused (75.0% reuse)",
		"7 frequent itemsets",
		"1.0MiB used",
		"75.0% hit rate",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}

	// A baseline report (no stage split, no pool) stays terse.
	seq := Report{Tuples: 3, WallTime: 300 * time.Millisecond, Invocations: 900}
	if s := seq.String(); strings.Contains(s, "stages:") || strings.Contains(s, "pool:") {
		t.Errorf("baseline String() should omit stages and pool:\n%s", s)
	}
}

func TestFormatBytes(t *testing.T) {
	for n, want := range map[int64]string{
		512:     "512B",
		2 << 10: "2.0KiB",
		3 << 20: "3.0MiB",
		5 << 30: "5.0GiB",
	} {
		if got := formatBytes(n); got != want {
			t.Errorf("formatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

package core

import (
	"testing"

	"shahin/internal/obs"
)

// collectNames flattens a span dump forest into the set of span names.
func collectNames(dumps []*obs.SpanDump, into map[string]int) {
	for _, d := range dumps {
		into[d.Name]++
		collectNames(d.Children, into)
	}
}

// TestBatchRecorderAcceptance is the observability acceptance check: a
// Batch run with a recorder attached must produce a span tree covering
// mining, pool construction, pre-labelling, and the explain loop, and
// the recorder's invocation counter must agree exactly with the run's
// Report (every Predict call flows through the same hook).
func TestBatchRecorderAcceptance(t *testing.T) {
	env := newEnv(t, 11, 40)
	opts := smallOpts(LIME, 12)
	rec := obs.NewRecorder()
	opts.Recorder = rec

	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report

	names := map[string]int{}
	collectNames(rec.Trace(), names)
	for _, stage := range []string{obs.StageBatch, obs.StageMine, obs.StagePoolBuild, obs.StagePreLabel, obs.StageExplain} {
		if names[stage] == 0 {
			t.Errorf("span tree missing stage %q (got %v)", stage, names)
		}
	}

	if got := rec.Counter(obs.CounterInvocations).Value(); got != rep.Invocations {
		t.Errorf("recorder invocations = %d, report says %d", got, rep.Invocations)
	}
	if got := rec.Counter(obs.CounterPoolInvocations).Value(); got != rep.PoolInvocations {
		t.Errorf("recorder pool invocations = %d, report says %d", got, rep.PoolInvocations)
	}
	if got := rec.Counter(obs.CounterReusedSamples).Value(); got != rep.ReusedSamples {
		t.Errorf("recorder reused samples = %d, report says %d", got, rep.ReusedSamples)
	}
	if got := rec.Counter(obs.CounterTuplesDone).Value(); got != int64(rep.Tuples) {
		t.Errorf("tuples done = %d, want %d", got, rep.Tuples)
	}
	if got := rec.Gauge(obs.GaugeTuplesTotal).Value(); got != int64(rep.Tuples) {
		t.Errorf("tuples total gauge = %d, want %d", got, rep.Tuples)
	}

	if got := rec.Histogram(obs.HistPredict).Count(); got != rep.Invocations {
		t.Errorf("predict histogram count = %d, want %d", got, rep.Invocations)
	}
	if got := rec.Histogram(obs.HistExplainTuple).Count(); got != int64(rep.Tuples) {
		t.Errorf("explain histogram count = %d, want %d", got, rep.Tuples)
	}

	totals := rec.StageTotals()
	if totals[obs.StageBatch] <= 0 || totals[obs.StageExplain] <= 0 {
		t.Errorf("stage totals incomplete: %v", totals)
	}

	p := rec.Progress()
	if p.TuplesDone != int64(rep.Tuples) || p.Invocations != rep.Invocations {
		t.Errorf("progress %+v disagrees with report", p)
	}
	if rep.ReusedSamples > 0 && p.ReuseRate <= 0 {
		t.Errorf("reuse rate = %v with %d reused samples", p.ReuseRate, rep.ReusedSamples)
	}
}

// TestBatchRecorderMatchesBare proves instrumentation does not change
// results: the same seeded run with and without a recorder must produce
// identical explanations and invocation counts.
func TestBatchRecorderMatchesBare(t *testing.T) {
	env := newEnv(t, 13, 30)

	run := func(rec *obs.Recorder) *Result {
		opts := smallOpts(LIME, 14)
		opts.Recorder = rec
		b, err := NewBatch(env.st, env.cls, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.ExplainAll(env.tuples)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	bare := run(nil)
	instrumented := run(obs.NewRecorder())
	if bare.Report.Invocations != instrumented.Report.Invocations {
		t.Errorf("invocations differ: bare %d vs instrumented %d",
			bare.Report.Invocations, instrumented.Report.Invocations)
	}
	if len(bare.Explanations) != len(instrumented.Explanations) {
		t.Fatal("explanation counts differ")
	}
	for i := range bare.Explanations {
		a, b := bare.Explanations[i].Attribution, instrumented.Explanations[i].Attribution
		for j := range a.Weights {
			if a.Weights[j] != b.Weights[j] {
				t.Fatalf("tuple %d weight %d differs: %v vs %v", i, j, a.Weights[j], b.Weights[j])
			}
		}
	}
}

// TestParallelBatchRecorderRace exercises a parallel ExplainAll with a
// live recorder; under -race it proves the shared counters, histograms,
// and span tree are goroutine-safe, and the counter/report agreement
// holds across workers.
func TestParallelBatchRecorderRace(t *testing.T) {
	env := newEnv(t, 17, 64)
	opts := smallOpts(LIME, 18)
	opts.Workers = 4
	rec := obs.NewRecorder()
	opts.Recorder = rec

	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if got := rec.Counter(obs.CounterInvocations).Value(); got != rep.Invocations {
		t.Errorf("parallel run: recorder invocations = %d, report says %d", got, rep.Invocations)
	}
	if got := rec.Counter(obs.CounterTuplesDone).Value(); got != int64(rep.Tuples) {
		t.Errorf("parallel run: tuples done = %d, want %d", got, rep.Tuples)
	}
	if got := rec.Counter(obs.CounterReusedSamples).Value(); got != rep.ReusedSamples {
		t.Errorf("parallel run: reused = %d, report says %d", got, rep.ReusedSamples)
	}
	if got := rec.Histogram(obs.HistExplainTuple).Count(); got != int64(rep.Tuples) {
		t.Errorf("parallel run: explain histogram count = %d, want %d", got, rep.Tuples)
	}
}

// TestStreamRecorder checks the streaming variant: the long-lived
// "stream" root span must grow re-mine children as itemsets are
// recomputed, and the live counters must track the report.
func TestStreamRecorder(t *testing.T) {
	env := newEnv(t, 19, 50)
	opts := smallOpts(LIME, 20)
	opts.StreamRecompute = 20 // force at least two re-mines over 50 tuples
	rec := obs.NewRecorder()
	opts.Recorder = rec

	s, err := NewStream(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tup := range env.tuples {
		if _, err := s.Explain(tup); err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
	}
	rep := s.Report()

	names := map[string]int{}
	collectNames(rec.Trace(), names)
	if names[obs.StageStream] == 0 {
		t.Errorf("missing stream root span (got %v)", names)
	}
	if names[obs.StageRemine] < 2 {
		t.Errorf("expected >= 2 re-mine spans, got %d (%v)", names[obs.StageRemine], names)
	}
	if got := rec.Counter(obs.CounterInvocations).Value(); got != rep.Invocations {
		t.Errorf("stream: recorder invocations = %d, report says %d", got, rep.Invocations)
	}
	if got := rec.Counter(obs.CounterTuplesDone).Value(); got != int64(rep.Tuples) {
		t.Errorf("stream: tuples done = %d, want %d", got, rep.Tuples)
	}
	// PoolInvocations accumulates deltas across materialisations; it must
	// match the live counter and stay a strict subset of all invocations.
	if got := rec.Counter(obs.CounterPoolInvocations).Value(); got != rep.PoolInvocations {
		t.Errorf("stream: recorder pool invocations = %d, report says %d", got, rep.PoolInvocations)
	}
	if rep.PoolInvocations <= 0 || rep.PoolInvocations >= rep.Invocations {
		t.Errorf("stream: pool invocations = %d of %d total", rep.PoolInvocations, rep.Invocations)
	}
}

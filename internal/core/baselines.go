package core

import (
	"fmt"
	"math/rand"
	"time"

	"shahin/internal/dataset"
	"shahin/internal/fim"
	"shahin/internal/obs"
	"shahin/internal/rf"
)

// Sequential explains the batch one tuple at a time with no reuse at all:
// the baseline every speedup ratio in the paper is measured against.
// Anchor runs with fresh per-tuple caches; LIME and SHAP get no pool.
func Sequential(st *dataset.Stats, cls rf.Classifier, opts Options, tuples [][]float64) (*Result, error) {
	if len(tuples) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	opts = opts.withDefaults()
	start := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	rng := rand.New(rand.NewSource(opts.Seed))

	rec := opts.Recorder
	root := rec.StartSpan(obs.StageSequential)
	root.SetAttr("tuples", len(tuples))
	defer root.End()
	rec.Gauge(obs.GaugeTuplesTotal).Set(int64(len(tuples)))

	// Anchor still needs a coverage sample; its cost is part of setup for
	// both baseline and Shahin, so the comparison stays fair.
	var covRows []dataset.Itemset
	if opts.Explainer == Anchor {
		covRows = itemizeSample(st, tuples, fim.SampleSize(len(tuples)), rng)
	}
	eng := newEngine(opts, st, cls, covRows, rng)

	explainSpan := root.Child(obs.StageExplain)
	var (
		tupleHist *obs.Histogram
		doneCtr   *obs.Counter
	)
	if rec != nil {
		tupleHist = rec.Histogram(obs.HistExplainTuple)
		doneCtr = rec.Counter(obs.CounterTuplesDone)
	}
	out := make([]Explanation, 0, len(tuples))
	for i, t := range tuples {
		var (
			tupleStart time.Time
			inv0       int64
		)
		if tupleHist != nil {
			tupleStart = time.Now() //shahinvet:allow walltime — per-tuple latency feeds the obs histogram
			inv0 = eng.invocations()
		}
		exp, err := eng.explain(t, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("core: explaining tuple %d: %w", i, err)
		}
		if tupleHist != nil {
			dur := time.Since(tupleStart)
			tupleHist.Observe(dur)
			doneCtr.Inc()
			rec.Emit(obs.Event{
				Type: obs.EventTupleExplained, Tuple: i,
				Explainer: opts.Explainer.String(),
				Fresh:     eng.invocations() - inv0,
				DurMS:     float64(dur) / float64(time.Millisecond),
			})
		}
		out = append(out, exp)
	}
	explainSpan.End()
	wall := time.Since(start)
	return &Result{
		Explanations: out,
		Report: Report{
			Tuples:      len(tuples),
			WallTime:    wall,
			ExplainTime: wall,
			Invocations: eng.invocations(),
		},
	}, nil
}

// Dist is the paper's DIST-k baseline: the batch is split evenly across k
// *machines*, each running the sequential algorithm, and the reported
// wall time is the average machine time (§4.1). Each machine has the
// whole box to itself in the paper's model, so the simulation runs the
// chunks one after another — timing each in isolation — rather than as
// contending goroutines, which would measure local core count instead of
// cluster size.
func Dist(st *dataset.Stats, cls rf.Classifier, opts Options, tuples [][]float64, k int) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: Dist needs k >= 1, got %d", k)
	}
	if len(tuples) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	opts = opts.withDefaults()
	if k > len(tuples) {
		k = len(tuples)
	}

	var (
		all      []Explanation
		invs     int64
		total    time.Duration
		machines int
	)
	chunk := (len(tuples) + k - 1) / k
	for w := 0; w < k; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(tuples) {
			hi = len(tuples)
		}
		if lo >= hi {
			continue
		}
		wopts := opts
		wopts.Seed = opts.Seed + int64(w)*1_000_003
		res, err := Sequential(st, cls, wopts, tuples[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("core: Dist machine %d: %w", w, err)
		}
		all = append(all, res.Explanations...)
		invs += res.Report.Invocations
		total += res.Report.WallTime
		machines++
	}
	// Each machine's Sequential run set the gauge to its chunk size;
	// restore the batch-wide total for live progress readers.
	opts.Recorder.Gauge(obs.GaugeTuplesTotal).Set(int64(len(tuples)))
	wall := total / time.Duration(machines)
	return &Result{
		Explanations: all,
		Report: Report{
			Tuples:      len(tuples),
			WallTime:    wall,
			ExplainTime: wall,
			Invocations: invs,
		},
	}, nil
}

package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"shahin/internal/dataset"
	"shahin/internal/fim"
	"shahin/internal/obs"
	"shahin/internal/rf"
)

// Sequential explains the batch one tuple at a time with no reuse at all:
// the baseline every speedup ratio in the paper is measured against.
// Anchor runs with fresh per-tuple caches; LIME and SHAP get no pool.
func Sequential(st *dataset.Stats, cls rf.Classifier, opts Options, tuples [][]float64) (*Result, error) {
	return SequentialCtx(context.Background(), st, cls, opts, tuples)
}

// SequentialCtx is Sequential under a context: cancellation stops the
// loop between tuples and returns the finished explanations as a
// partial *Result alongside ctx.Err(); unattempted tuples carry
// StatusFailed.
func SequentialCtx(ctx context.Context, st *dataset.Stats, cls rf.Classifier, opts Options, tuples [][]float64) (*Result, error) {
	if len(tuples) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	opts = opts.withDefaults()
	opts, fellBack := applyExactFallback(opts, cls)
	start := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	rng := rand.New(rand.NewSource(opts.Seed))
	fb := buildBridge(ctx, opts, st, cls)

	rec := opts.Recorder
	root := rec.StartSpan(obs.StageSequential)
	root.SetAttr("tuples", len(tuples))
	defer root.End()
	rec.Gauge(obs.GaugeTuplesTotal).Set(int64(len(tuples)))

	// Anchor still needs a coverage sample; its cost is part of setup for
	// both baseline and Shahin, so the comparison stays fair.
	var covRows []dataset.Itemset
	if opts.Explainer == Anchor {
		covRows = itemizeSample(st, tuples, fim.SampleSize(len(tuples)), rng)
	}
	eng := newEngineBridge(opts, st, cls, covRows, rng, fb)

	explainSpan := root.Child(obs.StageExplain)
	var (
		tupleHist *obs.Histogram
		doneCtr   *obs.Counter
	)
	if rec != nil {
		tupleHist = rec.Histogram(obs.HistExplainTuple)
		doneCtr = rec.Counter(obs.CounterTuplesDone)
	}
	out := make([]Explanation, len(tuples))
	for i, t := range tuples {
		if ctx.Err() != nil {
			for j := i; j < len(tuples); j++ {
				out[j].Status = StatusFailed
			}
			break
		}
		eng.beginTuple()
		var (
			tupleStart time.Time
			inv0       int64
			nv0        int64
		)
		if tupleHist != nil {
			tupleStart = time.Now() //shahinvet:allow walltime — per-tuple latency feeds the obs histogram
			inv0 = eng.invocations()
			nv0 = eng.nodeVisits()
		}
		exp, err := eng.explain(t, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("core: explaining tuple %d: %w", i, err)
		}
		exp.Status = eng.tupleStatus()
		if tupleHist != nil {
			dur := time.Since(tupleStart)
			tupleHist.Observe(dur)
			doneCtr.Inc()
			ev := obs.Event{
				Type: obs.EventTupleExplained, Tuple: i,
				Explainer: opts.Explainer.String(),
				Fresh:     eng.invocations() - inv0,
				DurMS:     float64(dur) / float64(time.Millisecond),
			}
			if eng.exact != nil {
				ev.Type = obs.EventExactShap
				ev.NodeVisits = eng.nodeVisits() - nv0
			}
			if exp.Status != StatusOK {
				ev.Status = exp.Status.String()
			}
			rec.Emit(ev)
		}
		out[i] = exp
	}
	explainSpan.End()
	wall := time.Since(start)
	rep := Report{
		Tuples:        len(tuples),
		WallTime:      wall,
		ExplainTime:   wall,
		Invocations:   eng.invocations(),
		NodeVisits:    eng.nodeVisits(),
		ExactFallback: fellBack,
	}
	for i := range out {
		switch out[i].Status {
		case StatusDegraded:
			rep.Degraded++
		case StatusFailed:
			rep.Failed++
		}
	}
	if fb != nil {
		rep.Retries = fb.chain.Stats().Retries
	}
	return &Result{Explanations: out, Report: rep}, ctx.Err()
}

// Dist is the paper's DIST-k baseline: the batch is split evenly across k
// *machines*, each running the sequential algorithm, and the reported
// wall time is the average machine time (§4.1). Each machine has the
// whole box to itself in the paper's model, so the simulation runs the
// chunks one after another — timing each in isolation — rather than as
// contending goroutines, which would measure local core count instead of
// cluster size.
func Dist(st *dataset.Stats, cls rf.Classifier, opts Options, tuples [][]float64, k int) (*Result, error) {
	return DistCtx(context.Background(), st, cls, opts, tuples, k)
}

// DistCtx is Dist under a context: cancellation stops the simulation
// between (and inside) machines, returning the explanations finished so
// far as a partial *Result alongside ctx.Err().
func DistCtx(ctx context.Context, st *dataset.Stats, cls rf.Classifier, opts Options, tuples [][]float64, k int) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: Dist needs k >= 1, got %d", k)
	}
	if len(tuples) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	opts = opts.withDefaults()
	if k > len(tuples) {
		k = len(tuples)
	}

	out := make([]Explanation, len(tuples))
	var (
		rep      Report
		total    time.Duration
		machines int
	)
	chunk := (len(tuples) + k - 1) / k
	for w := 0; w < k; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(tuples) {
			hi = len(tuples)
		}
		if lo >= hi {
			continue
		}
		if ctx.Err() != nil {
			for j := lo; j < len(tuples); j++ {
				out[j].Status = StatusFailed
			}
			break
		}
		wopts := opts
		wopts.Seed = opts.Seed + int64(w)*1_000_003
		res, err := SequentialCtx(ctx, st, cls, wopts, tuples[lo:hi])
		if res != nil {
			copy(out[lo:hi], res.Explanations)
			rep.Invocations += res.Report.Invocations
			rep.NodeVisits += res.Report.NodeVisits
			rep.ExactFallback = rep.ExactFallback || res.Report.ExactFallback
			rep.Retries += res.Report.Retries
			total += res.Report.WallTime
			machines++
		}
		if err != nil && ctx.Err() == nil {
			return nil, fmt.Errorf("core: Dist machine %d: %w", w, err)
		}
	}
	// Each machine's Sequential run set the gauge to its chunk size;
	// restore the batch-wide total for live progress readers.
	opts.Recorder.Gauge(obs.GaugeTuplesTotal).Set(int64(len(tuples)))
	var wall time.Duration
	if machines > 0 {
		wall = total / time.Duration(machines)
	}
	rep.Tuples = len(tuples)
	rep.WallTime = wall
	rep.ExplainTime = wall
	for i := range out {
		switch out[i].Status {
		case StatusDegraded:
			rep.Degraded++
		case StatusFailed:
			rep.Failed++
		}
	}
	return &Result{Explanations: out, Report: rep}, ctx.Err()
}

package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"shahin/internal/dataset"
	"shahin/internal/fault"
	"shahin/internal/obs"
	"shahin/internal/rf"
)

// Status classifies how a tuple's explanation was answered. The zero
// value is StatusOK so explanations from infallible runs marshal exactly
// as before the failure model existed.
type Status uint8

const (
	// StatusOK means every classifier call behind the explanation
	// succeeded (possibly after retries).
	StatusOK Status = iota
	// StatusDegraded means at least one prediction was answered by the
	// degradation ladder — the label cache, pooled labels, or the running
	// majority class — because the backend was failing or the breaker
	// was open.
	StatusDegraded
	// StatusFailed means the tuple was cancelled mid-explanation, never
	// attempted, or needed a prediction no fallback could answer.
	StatusFailed
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDegraded:
		return "degraded"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// MarshalJSON renders the status as its string form.
func (s Status) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the string form back.
func (s *Status) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "ok", "":
		*s = StatusOK
	case "degraded":
		*s = StatusDegraded
	case "failed":
		*s = StatusFailed
	default:
		return fmt.Errorf("core: unknown explanation status %q", name)
	}
	return nil
}

// bridgeLabelCacheCap bounds the exact-row label cache the degradation
// ladder consults first (FIFO eviction; ~8k rows is plenty to cover the
// perturbations in flight around an outage).
const bridgeLabelCacheCap = 8192

// fallibleBridge lifts a *fault.Chain back into the infallible
// rf.Classifier interface the explainers consume. Successful calls pass
// straight through (optionally recording the label for later fallback);
// failed calls walk the degradation ladder instead of surfacing an
// error the explainers cannot handle:
//
//  1. exact-row label cache — the same perturbation was labelled before;
//  2. pooled labels — the majority class of the materialised samples of
//     a frequent itemset containing the row;
//  3. the running majority class of all successful predictions.
//
// The bridge sits *below* the rf.Counting wrapper, so every logical
// prediction — including degraded ones — still counts toward the
// invocation ledger and the event-reconciliation identity holds
// unchanged. One bridge serves one goroutine; parallel workers fork
// their own (the chain underneath is shared and internally locked).
type fallibleBridge struct {
	ctx   context.Context
	base  context.Context // construction-time context; ctx resets to it between tuples
	chain *fault.Chain
	st    *dataset.Stats
	inner rf.Classifier // the pre-chain classifier the bridge was built over
	track bool          // bookkeeping only when the chain can actually fail

	// Fallback sources: the live repository (or a frozen snapshot) and
	// the itemsets it has materialised samples for.
	pooled   sampleSource
	poolSets []dataset.Itemset

	labels   map[uint64]int // exact-row label cache
	order    []uint64       // FIFO eviction order of the cache
	majority []int64        // successful predictions per class

	itemBuf []dataset.Item // scratch for itemising fallback rows

	degradedCtr *obs.Counter
	failedCtr   *obs.Counter

	// Per-tuple outcome flags, reset by beginTuple.
	tupleDegraded bool
	tupleFailed   bool
	tupleCanceled bool

	// degradeSpans counts "degrade" child spans attached to the run's
	// span so far; capped so a long outage cannot grow the span tree
	// without bound.
	degradeSpans int
}

// maxDegradeSpans bounds per-bridge degradation marker spans: enough to
// see the ladder working in a trace, bounded against outage storms.
const maxDegradeSpans = 32

var _ rf.Classifier = (*fallibleBridge)(nil)

func newFallibleBridge(ctx context.Context, chain *fault.Chain, st *dataset.Stats, inner rf.Classifier, rec *obs.Recorder) *fallibleBridge {
	fb := &fallibleBridge{
		ctx:         ctx,
		base:        ctx,
		chain:       chain,
		st:          st,
		inner:       inner,
		track:       chain.CanFail(),
		degradedCtr: rec.Counter(obs.CounterDegradedAnswers),
		failedCtr:   rec.Counter(obs.CounterFailedAnswers),
	}
	if fb.track {
		fb.labels = make(map[uint64]int)
		fb.majority = make([]int64, chain.NumClasses())
	}
	return fb
}

// fork returns a bridge for another goroutine: same chain, context, and
// fallback pool, but private caches and per-tuple flags.
func (fb *fallibleBridge) fork() *fallibleBridge {
	nb := &fallibleBridge{
		ctx:         fb.ctx,
		base:        fb.base,
		chain:       fb.chain,
		st:          fb.st,
		inner:       fb.inner,
		track:       fb.track,
		pooled:      fb.pooled,
		poolSets:    fb.poolSets,
		degradedCtr: fb.degradedCtr,
		failedCtr:   fb.failedCtr,
	}
	if nb.track {
		nb.labels = make(map[uint64]int)
		nb.majority = make([]int64, len(fb.majority))
	}
	return nb
}

// setPool points the degradation ladder at the materialised samples.
func (fb *fallibleBridge) setPool(src sampleSource, sets []dataset.Itemset) {
	fb.pooled = src
	fb.poolSets = sets
}

// beginTuple resets the per-tuple outcome flags.
func (fb *fallibleBridge) beginTuple() {
	fb.tupleDegraded, fb.tupleFailed, fb.tupleCanceled = false, false, false
}

// status reports the current tuple's outcome.
func (fb *fallibleBridge) status() Status {
	switch {
	case fb.tupleFailed || fb.tupleCanceled:
		return StatusFailed
	case fb.tupleDegraded:
		return StatusDegraded
	default:
		return StatusOK
	}
}

// NumClasses implements rf.Classifier.
func (fb *fallibleBridge) NumClasses() int { return fb.chain.NumClasses() }

// Predict implements rf.Classifier over the fallible chain. It never
// fails: cancelled and unanswerable calls fall back quietly (so the
// in-flight explanation finishes fast and well-formed) and the tuple is
// marked failed or degraded instead.
func (fb *fallibleBridge) Predict(x []float64) int {
	if fb.ctx.Err() != nil {
		fb.tupleCanceled = true
		y, _, _ := fb.fallback(x)
		return y
	}
	y, err := fb.chain.PredictCtx(fb.ctx, x)
	if err == nil {
		if fb.track {
			fb.noteSuccess(x, y)
		}
		return y
	}
	if fb.ctx.Err() != nil {
		fb.tupleCanceled = true
		fy, _, _ := fb.fallback(x)
		return fy
	}
	fy, rung, ok := fb.fallback(x)
	if ok {
		fb.tupleDegraded = true
		fb.degradedCtr.Inc()
	} else {
		fb.tupleFailed = true
		fb.failedCtr.Inc()
	}
	fb.noteDegrade(rung)
	return fy
}

// noteDegrade attaches a degradation-rung marker span to the run's span
// (carried by the bridge's context), bounded by maxDegradeSpans.
func (fb *fallibleBridge) noteDegrade(rung string) {
	if fb.degradeSpans >= maxDegradeSpans {
		return
	}
	sp := obs.SpanFromContext(fb.ctx)
	if sp == nil {
		return
	}
	fb.degradeSpans++
	c := sp.Child("degrade")
	if rung == "" {
		rung = "none"
	}
	c.SetAttr("rung", rung)
	if fb.degradeSpans == maxDegradeSpans {
		c.SetAttr("truncated", true)
	}
	c.End()
}

// fallback walks the degradation ladder, reporting which rung answered;
// ok is false when none could (the caller gets class 0 and the tuple is
// marked failed).
func (fb *fallibleBridge) fallback(x []float64) (y int, rung string, ok bool) {
	if fb.labels != nil {
		if y, ok := fb.labels[hashRow(x)]; ok {
			return y, "label-cache", true
		}
	}
	if fb.pooled != nil && fb.st != nil && len(fb.poolSets) > 0 {
		fb.itemBuf = fb.st.ItemizeRow(x, fb.itemBuf[:0])
		for _, set := range fb.poolSets {
			if !set.ContainsAll(fb.itemBuf) {
				continue
			}
			samples, ok := fb.pooled.Get(set.Key())
			if !ok || len(samples) == 0 {
				continue
			}
			counts := make([]int, fb.chain.NumClasses())
			for _, s := range samples {
				if s.Label >= 0 && s.Label < len(counts) {
					counts[s.Label]++
				}
			}
			best := 0
			for c := 1; c < len(counts); c++ {
				if counts[c] > counts[best] {
					best = c
				}
			}
			return best, "pooled-majority", true
		}
	}
	if fb.majority != nil {
		best, total := 0, int64(0)
		for c, n := range fb.majority {
			total += n
			if n > fb.majority[best] {
				best = c
			}
		}
		if total > 0 {
			return best, "global-majority", true
		}
	}
	return 0, "", false
}

// noteSuccess records a successful prediction for later fallback.
func (fb *fallibleBridge) noteSuccess(x []float64, y int) {
	if y >= 0 && y < len(fb.majority) {
		fb.majority[y]++
	}
	key := hashRow(x)
	if _, ok := fb.labels[key]; ok {
		return
	}
	if len(fb.order) >= bridgeLabelCacheCap {
		delete(fb.labels, fb.order[0])
		fb.order = fb.order[1:]
	}
	fb.labels[key] = y
	fb.order = append(fb.order, key)
}

// hashRow is FNV-1a over the bit patterns of the row's values: exact
// (bitwise) row identity, which is what the label cache needs — the
// same perturbation re-labelled, not a nearest neighbour.
func hashRow(x []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range x {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// buildBridge assembles the fault chain and bridge for a run, or nil
// when the run is infallible and uncancellable (opts.Fault unset and a
// background context) — the hot path then pays nothing at all.
func buildBridge(ctx context.Context, opts Options, st *dataset.Stats, cls rf.Classifier) *fallibleBridge {
	if opts.Fault == nil && ctx.Done() == nil {
		return nil
	}
	var cfg fault.Config
	if opts.Fault != nil {
		cfg = *opts.Fault
	}
	return newFallibleBridge(ctx, fault.Build(cls, cfg, opts.Recorder), st, cls, opts.Recorder)
}

// Inner exposes the wrapped classifier to instrumentation unwrappers
// (see exact.Supported) — but only when the chain cannot fail, i.e. the
// bridge exists purely for context cancellation. A bridge with a live
// fault configuration stays opaque: the exact TreeSHAP walker must not
// see through the degradation ladder to trees it would read without
// fault handling.
func (fb *fallibleBridge) Inner() rf.Classifier {
	if fb.track {
		return nil
	}
	return fb.inner
}

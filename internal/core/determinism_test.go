package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

// marshalRun builds a fresh Batch, explains the tuples, and returns the
// marshaled explanations. A fresh Batch per run ensures no state (cache,
// RNG) leaks between the two runs being compared.
func marshalRun(t *testing.T, env *testEnv, opts Options) []byte {
	t.Helper()
	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(res.Explanations)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestExplainAllDeterministic pins the reproducibility contract: two
// runs with the same seed produce byte-identical explanations, for
// every explainer kind and on both the serial and parallel paths.
// This guards the map-iteration and tie-break fixes in fim and the
// per-worker derived seeding in explainParallel.
func TestExplainAllDeterministic(t *testing.T) {
	env := newEnv(t, 11, 8)
	for _, kind := range []Kind{LIME, Anchor, SHAP} {
		for _, workers := range []int{1, 4} {
			opts := smallOpts(kind, 42)
			opts.Workers = workers
			first := marshalRun(t, env, opts)
			second := marshalRun(t, env, opts)
			if !bytes.Equal(first, second) {
				t.Errorf("%v workers=%d: same seed produced different explanations\nrun1: %.200s\nrun2: %.200s",
					kind, workers, first, second)
			}
		}
	}
}

// TestExplainAllParallelMatchesSerial checks that worker count only
// affects wall time, never output: the parallel path must return the
// same explanations in the same order as the serial one.
func TestExplainAllParallelMatchesSerial(t *testing.T) {
	env := newEnv(t, 13, 8)
	opts := smallOpts(Anchor, 7)
	opts.Workers = 1
	serial := marshalRun(t, env, opts)
	opts.Workers = 4
	parallel := marshalRun(t, env, opts)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("parallel output diverges from serial\nserial:   %.200s\nparallel: %.200s", serial, parallel)
	}
}

package core

import (
	"math/rand"
	"testing"

	"shahin/internal/datagen"
	"shahin/internal/dataset"
	"shahin/internal/explain/lime"
	"shahin/internal/explain/shap"
	"shahin/internal/rf"
)

// testEnv bundles the fixtures the integration tests share.
type testEnv struct {
	st     *dataset.Stats
	cls    rf.Classifier
	tuples [][]float64
}

// newEnv builds a skewed categorical dataset, a deterministic classifier
// driven by attribute 0, and a batch of tuples to explain.
func newEnv(t *testing.T, seed int64, batch int) *testEnv {
	t.Helper()
	cfg := &datagen.Config{
		Name: "ct",
		Cat: []datagen.CatSpec{
			{Card: 4, Skew: 1.2}, {Card: 3, Skew: 1.0}, {Card: 5, Skew: 1.2},
			{Card: 4, Skew: 1.0}, {Card: 6, Skew: 1.4},
		},
		Num: []datagen.NumSpec{{Mean: 0, Std: 1}},
	}
	d, err := cfg.Generate(4000, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	cls := rf.Func{Classes: 2, F: func(x []float64) int {
		if int(x[0]) == 0 { // the most frequent value under the Zipf skew
			return 1
		}
		return 0
	}}
	tuples := d.Rows(0, batch)
	return &testEnv{st: st, cls: cls, tuples: tuples}
}

// smallOpts keeps explainer budgets modest so tests stay fast.
func smallOpts(kind Kind, seed int64) Options {
	return Options{
		Explainer:  kind,
		LIME:       lime.Config{NumSamples: 300},
		SHAP:       shap.Config{NumSamples: 256, BaseSamples: 40},
		MinSupport: 0.1,
		Tau:        50,
		Seed:       seed,
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{
		"lime": LIME, "LIME": LIME, "Anchor": Anchor, "shap": SHAP, "KernelSHAP": SHAP,
	} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q)=(%v,%v) want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind(nope) should fail")
	}
	for _, k := range Kinds() {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MinSupport != 0.1 || o.Tau != 100 || o.MaxItemsets != 200 {
		t.Fatalf("defaults %+v", o)
	}
	if o.CacheBytes != 128<<20 || o.StreamRecompute != 100 {
		t.Fatalf("defaults %+v", o)
	}
	if o.StreamBorder == nil || !*o.StreamBorder {
		t.Fatal("StreamBorder should default on")
	}
	if o.MaxItemsetLen != 3 {
		t.Fatalf("MaxItemsetLen=%d", o.MaxItemsetLen)
	}
}

func TestBatchEmpty(t *testing.T) {
	env := newEnv(t, 1, 10)
	b, err := NewBatch(env.st, env.cls, smallOpts(LIME, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ExplainAll(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// Shahin-Batch must explain every tuple and use substantially fewer
// classifier invocations per tuple than the sequential baseline.
func TestBatchLIMESavesInvocations(t *testing.T) {
	env := newEnv(t, 3, 60)
	opts := smallOpts(LIME, 4)

	seq, err := Sequential(env.st, env.cls, opts, env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) != len(env.tuples) {
		t.Fatalf("explained %d of %d", len(res.Explanations), len(env.tuples))
	}
	for i, e := range res.Explanations {
		if e.Attribution == nil {
			t.Fatalf("tuple %d has no attribution", i)
		}
	}
	if res.Report.ReusedSamples == 0 {
		t.Fatal("no samples reused")
	}
	// With τ=50 over a 60-tuple batch the pool build is amortised poorly,
	// but marginal cost must still drop well below sequential.
	if res.Report.Invocations >= seq.Report.Invocations {
		t.Fatalf("Shahin used %d invocations, sequential %d", res.Report.Invocations, seq.Report.Invocations)
	}
	if res.Report.FrequentItemsets == 0 {
		t.Fatal("no frequent itemsets mined on skewed data")
	}
	// Explanations agree with the baseline on the decisive feature for
	// positively-predicted tuples.
	for i, e := range res.Explanations {
		if e.Attribution.Class != seq.Explanations[i].Attribution.Class {
			t.Fatalf("tuple %d class mismatch", i)
		}
	}
}

func TestBatchSHAP(t *testing.T) {
	env := newEnv(t, 5, 40)
	opts := smallOpts(SHAP, 6)
	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Sequential(env.st, env.cls, opts, env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Invocations >= seq.Report.Invocations {
		t.Fatalf("Shahin-SHAP %d invocations vs sequential %d", res.Report.Invocations, seq.Report.Invocations)
	}
	if res.Report.ReusedSamples == 0 {
		t.Fatal("no SHAP reuse")
	}
	// Attribution sanity: additivity per tuple.
	for i, e := range res.Explanations {
		sum := e.Attribution.Intercept
		for _, w := range e.Attribution.Weights {
			sum += w
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("tuple %d additivity %g", i, sum)
		}
	}
}

func TestBatchAnchor(t *testing.T) {
	env := newEnv(t, 7, 40)
	opts := smallOpts(Anchor, 8)
	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Sequential(env.st, env.cls, opts, env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Invocations >= seq.Report.Invocations/2 {
		t.Fatalf("Shahin-Anchor %d invocations vs sequential %d: shared caches ineffective",
			res.Report.Invocations, seq.Report.Invocations)
	}
	for i, e := range res.Explanations {
		if e.Rule == nil {
			t.Fatalf("tuple %d has no rule", i)
		}
		if e.Rule.Precision < 0.8 {
			t.Fatalf("tuple %d rule precision %.2f", i, e.Rule.Precision)
		}
		// The concept is decided by attribute 0: every rule must pin it.
		found := false
		for _, it := range e.Rule.Items {
			if it.Attr() == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("tuple %d rule %v does not pin attr 0", i, e.Rule.Items)
		}
	}
}

func TestDist(t *testing.T) {
	env := newEnv(t, 9, 40)
	opts := smallOpts(LIME, 10)
	seq, err := Sequential(env.st, env.cls, opts, env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	d4, err := Dist(env.st, env.cls, opts, env.tuples, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(d4.Explanations) != len(env.tuples) {
		t.Fatalf("Dist explained %d of %d", len(d4.Explanations), len(env.tuples))
	}
	// Average worker time must be well under the sequential wall time.
	if d4.Report.WallTime >= seq.Report.WallTime {
		t.Fatalf("Dist-4 avg worker %v not faster than sequential %v", d4.Report.WallTime, seq.Report.WallTime)
	}
	// Same total work (same number of invocations modulo RNG paths).
	if d4.Report.Invocations < seq.Report.Invocations/2 {
		t.Fatalf("Dist invocations %d suspiciously low vs %d", d4.Report.Invocations, seq.Report.Invocations)
	}
	if _, err := Dist(env.st, env.cls, opts, env.tuples, 0); err == nil {
		t.Fatal("Dist with k=0 accepted")
	}
}

func TestDistMoreWorkersThanTuples(t *testing.T) {
	env := newEnv(t, 11, 3)
	res, err := Dist(env.st, env.cls, smallOpts(LIME, 12), env.tuples, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) != 3 {
		t.Fatalf("explained %d of 3", len(res.Explanations))
	}
}

func TestGreedyReusesAndEvicts(t *testing.T) {
	env := newEnv(t, 13, 30)
	opts := smallOpts(LIME, 14)
	// Small budget forces eviction churn.
	res, err := Greedy(env.st, env.cls, opts, env.tuples, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) != len(env.tuples) {
		t.Fatalf("explained %d", len(res.Explanations))
	}
	if res.Report.ReusedSamples == 0 {
		t.Fatal("greedy never reused")
	}
	seq, err := Sequential(env.st, env.cls, opts, env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Invocations >= seq.Report.Invocations {
		t.Fatal("greedy saved nothing")
	}
}

func TestGreedyAnchorFallsBackToSequential(t *testing.T) {
	env := newEnv(t, 15, 5)
	res, err := Greedy(env.st, env.cls, smallOpts(Anchor, 16), env.tuples, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Explanations {
		if e.Rule == nil {
			t.Fatal("anchor greedy produced no rules")
		}
	}
}

func TestStreamWarmupAndReuse(t *testing.T) {
	env := newEnv(t, 17, 150)
	opts := smallOpts(LIME, 18)
	opts.StreamRecompute = 50
	s, err := NewStream(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tup := range env.tuples {
		exp, err := s.Explain(tup)
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if exp.Attribution == nil {
			t.Fatalf("tuple %d: no attribution", i)
		}
	}
	if s.Mines() < 2 {
		t.Fatalf("expected >= 2 re-mines, got %d", s.Mines())
	}
	rep := s.Report()
	if rep.Tuples != 150 {
		t.Fatalf("Tuples=%d", rep.Tuples)
	}
	if rep.ReusedSamples == 0 {
		t.Fatal("stream never reused after warmup")
	}
	if rep.FrequentItemsets == 0 {
		t.Fatal("stream tracked no frequent itemsets")
	}
}

func TestStreamAnchor(t *testing.T) {
	env := newEnv(t, 19, 80)
	opts := smallOpts(Anchor, 20)
	opts.StreamRecompute = 40
	s, err := NewStream(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tup := range env.tuples {
		exp, err := s.Explain(tup)
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if exp.Rule == nil {
			t.Fatalf("tuple %d: no rule", i)
		}
	}
	rep := s.Report()
	// Late-stream tuples must be cheaper than a cold sequential run of the
	// same size would be; just require that invocations/tuple is below the
	// cold per-tuple cost.
	seq, err := Sequential(env.st, env.cls, opts, env.tuples[:20])
	if err != nil {
		t.Fatal(err)
	}
	coldPer := seq.Report.Invocations / 20
	streamPer := rep.Invocations / int64(rep.Tuples)
	if streamPer >= coldPer {
		t.Fatalf("stream per-tuple %d not below cold %d", streamPer, coldPer)
	}
}

// The streaming variant must stay within its cache budget.
func TestStreamRespectsBudget(t *testing.T) {
	env := newEnv(t, 21, 120)
	opts := smallOpts(LIME, 22)
	opts.StreamRecompute = 40
	opts.CacheBytes = 32 << 10
	s, err := NewStream(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range env.tuples {
		if _, err := s.Explain(tup); err != nil {
			t.Fatal(err)
		}
	}
	if used := s.statsFor().BytesUsed; used > 32<<10 {
		t.Fatalf("cache used %d bytes over 32KiB budget", used)
	}
}

// Reports: overhead fraction must be sane and small relative to wall time.
func TestReportAccounting(t *testing.T) {
	env := newEnv(t, 23, 50)
	b, err := NewBatch(env.st, env.cls, smallOpts(LIME, 24))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Report.OverheadFraction()
	if f < 0 || f > 0.9 {
		t.Fatalf("overhead fraction %g out of sane range", f)
	}
	if res.Report.PerTuple() <= 0 {
		t.Fatal("PerTuple not positive")
	}
	if res.Report.PoolInvocations <= 0 || res.Report.PoolInvocations > res.Report.Invocations {
		t.Fatalf("PoolInvocations=%d of %d", res.Report.PoolInvocations, res.Report.Invocations)
	}
	var empty Report
	if empty.OverheadFraction() != 0 || empty.PerTuple() != 0 {
		t.Fatal("empty report accounting")
	}
}

// End-to-end with a real random forest (slower; keeps the full pipeline
// honest).
func TestBatchWithRandomForest(t *testing.T) {
	cfg, err := datagen.Spec("recidivism")
	if err != nil {
		t.Fatal(err)
	}
	d, err := cfg.Generate(2500, 25)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(26))
	trainD, testD := d.Split(1.0/3, rng)
	st, err := dataset.Compute(trainD)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := rf.Train(trainD, rf.Config{NumTrees: 30, MaxDepth: 8, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	tuples := testD.Rows(0, 25)
	opts := smallOpts(LIME, 28)
	b, err := NewBatch(st, forest, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(tuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) != 25 {
		t.Fatalf("explained %d", len(res.Explanations))
	}
	seq, err := Sequential(st, forest, opts, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Invocations >= seq.Report.Invocations {
		t.Fatalf("no invocation savings on RF: %d vs %d", res.Report.Invocations, seq.Report.Invocations)
	}
}

func TestBatchSampleSHAP(t *testing.T) {
	env := newEnv(t, 30, 40)
	opts := smallOpts(SampleSHAP, 31)
	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Sequential(env.st, env.cls, opts, env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse is structurally limited for permutation walks (only short
	// prefixes hit the pool), and at batch=40 the one-time pool build is
	// not yet amortised; the per-tuple marginal cost is what must drop.
	marginal := res.Report.Invocations - res.Report.PoolInvocations
	if marginal >= seq.Report.Invocations*9/10 {
		t.Fatalf("SampleSHAP marginal %d invocations vs sequential %d: reuse saved <10%%",
			marginal, seq.Report.Invocations)
	}
	for i, e := range res.Explanations {
		if e.Attribution == nil {
			t.Fatalf("tuple %d has no attribution", i)
		}
		sum := e.Attribution.Intercept
		for _, w := range e.Attribution.Weights {
			sum += w
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("tuple %d additivity %g", i, sum)
		}
	}
}

func TestParseKindSampleSHAP(t *testing.T) {
	for _, s := range []string{"sshap", "SampleShapley", "sampleshap"} {
		k, err := ParseKind(s)
		if err != nil || k != SampleSHAP {
			t.Fatalf("ParseKind(%q)=(%v,%v)", s, k, err)
		}
	}
	if len(AllKinds()) != 5 || len(Kinds()) != 3 {
		t.Fatal("kind lists wrong")
	}
}

func TestBatchParallelWorkers(t *testing.T) {
	env := newEnv(t, 40, 80)
	opts := smallOpts(LIME, 41)
	opts.Workers = 4
	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) != len(env.tuples) {
		t.Fatalf("explained %d of %d", len(res.Explanations), len(env.tuples))
	}
	for i, e := range res.Explanations {
		if e.Attribution == nil {
			t.Fatalf("tuple %d missing (worker assignment hole)", i)
		}
	}
	if res.Report.ReusedSamples == 0 {
		t.Fatal("parallel run reused nothing")
	}
	// Classes must agree with the single-worker run tuple by tuple (the
	// prediction is deterministic; only perturbation RNG differs).
	single, err := NewBatch(env.st, env.cls, smallOpts(LIME, 41))
	if err != nil {
		t.Fatal(err)
	}
	sres, err := single.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	for i := range env.tuples {
		if res.Explanations[i].Attribution.Class != sres.Explanations[i].Attribution.Class {
			t.Fatalf("tuple %d class mismatch across worker counts", i)
		}
	}
}

func TestBatchParallelRace(t *testing.T) {
	// Exercised under -race in CI; many workers over a small batch
	// maximises interleaving on the shared snapshot.
	env := newEnv(t, 42, 24)
	opts := smallOpts(SHAP, 43)
	opts.Workers = 8
	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ExplainAll(env.tuples); err != nil {
		t.Fatal(err)
	}
}

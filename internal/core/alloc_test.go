package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"shahin/internal/obs"
)

// TestBatchAllocAttribution: an instrumented batch run records nonzero
// process-wide and per-stage allocation deltas, and the stage columns
// stay within the run-wide total (all read the same monotone counters).
func TestBatchAllocAttribution(t *testing.T) {
	env := newEnv(t, 61, 20)
	opts := smallOpts(LIME, 62)
	opts.Recorder = obs.NewRecorder()

	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.AllocBytes <= 0 || rep.AllocObjects <= 0 {
		t.Fatalf("instrumented run recorded no allocations: bytes=%d objects=%d", rep.AllocBytes, rep.AllocObjects)
	}
	if rep.PoolAllocBytes <= 0 || rep.ExplainAllocBytes <= 0 {
		t.Fatalf("stage columns empty: pool=%d explain=%d", rep.PoolAllocBytes, rep.ExplainAllocBytes)
	}
	if rep.PoolAllocBytes > rep.AllocBytes || rep.ExplainAllocBytes > rep.AllocBytes {
		t.Errorf("stage bytes exceed run total: pool=%d explain=%d total=%d",
			rep.PoolAllocBytes, rep.ExplainAllocBytes, rep.AllocBytes)
	}
	bpt, opt := rep.AllocPerTuple()
	if bpt <= 0 || opt <= 0 {
		t.Fatalf("AllocPerTuple = (%v, %v), want positive", bpt, opt)
	}

	// The derived per-tuple bytes figure rides in the JSON next to the
	// raw counters.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if got := m["alloc_bytes_per_tuple"].(float64); got != bpt {
		t.Errorf("alloc_bytes_per_tuple = %v, want %v", got, bpt)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.AllocBytes != rep.AllocBytes || back.ExplainAllocObjects != rep.ExplainAllocObjects {
		t.Errorf("alloc columns lost in round trip: got %+v", back)
	}
}

// TestUninstrumentedReportOmitsAllocColumns: a run without a recorder
// serialises byte-identically to the pre-allocation-column schema.
func TestUninstrumentedReportOmitsAllocColumns(t *testing.T) {
	env := newEnv(t, 63, 8)
	b, err := NewBatch(env.st, env.cls, smallOpts(LIME, 64))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.AllocBytes != 0 || res.Report.PoolAllocBytes != 0 {
		t.Fatalf("uninstrumented run recorded allocations: %+v", res.Report)
	}
	data, err := json.Marshal(res.Report)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("alloc_")) {
		t.Errorf("uninstrumented report leaks alloc columns: %s", data)
	}
}

package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"shahin/internal/obs"
	"shahin/internal/rf"
)

// cancelAfter wraps a classifier and fires cancel on the n-th Predict
// call, so cancellation lands mid-run deterministically regardless of
// timing. Safe for concurrent workers.
type cancelAfter struct {
	inner  rf.Classifier
	cancel context.CancelFunc
	after  int64
	n      atomic.Int64
}

func (c *cancelAfter) NumClasses() int { return c.inner.NumClasses() }

func (c *cancelAfter) Predict(x []float64) int {
	if c.n.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Predict(x)
}

// reconcilePartial checks the invocation identities of the event log
// against a partial report. A cancelled run stops emitting
// tuple_explained events at the cut, so the per-tuple event count is
// bounded by (not equal to) Report.Tuples — but every classifier
// invocation that did happen must still be accounted for exactly.
func reconcilePartial(t *testing.T, s eventSums, rep Report) {
	t.Helper()
	if s.explained > rep.Tuples {
		t.Errorf("%d tuple_explained events for %d tuples", s.explained, rep.Tuples)
	}
	if want := rep.Invocations - rep.PoolInvocations; s.explainedFresh != want {
		t.Errorf("sum of per-tuple fresh samples = %d, want Invocations-PoolInvocations = %d", s.explainedFresh, want)
	}
	if s.explainedPooled != rep.ReusedSamples {
		t.Errorf("sum of per-tuple pooled samples = %d, want ReusedSamples = %d", s.explainedPooled, rep.ReusedSamples)
	}
	if s.preLabelFresh != rep.PoolInvocations {
		t.Errorf("sum of pre_label fresh samples = %d, want PoolInvocations = %d", s.preLabelFresh, rep.PoolInvocations)
	}
}

// checkPartial asserts the shape of a cancelled run's partial result:
// full-length output, a mix of finished and failed tuples, failed slots
// tallied in the report, and no payload on unattempted slots.
func checkPartial(t *testing.T, res *Result, n int) {
	t.Helper()
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if len(res.Explanations) != n {
		t.Fatalf("partial result has %d slots for %d tuples", len(res.Explanations), n)
	}
	finished, failed := 0, 0
	for _, e := range res.Explanations {
		if e.Status == StatusFailed {
			failed++
		} else if e.Attribution != nil || e.Rule != nil {
			finished++
		} else {
			t.Error("non-failed explanation with no payload")
		}
	}
	if failed == 0 {
		t.Error("mid-run cancellation marked no tuple failed")
	}
	if finished == 0 {
		t.Error("mid-run cancellation finished no tuple at all (cancelled too early for the test to mean anything)")
	}
	if res.Report.Failed != failed {
		t.Errorf("Report.Failed=%d but %d explanations carry StatusFailed", res.Report.Failed, failed)
	}
}

// TestBatchCancelMidRun cancels a serial batch run from inside the
// classifier and checks the partial result and report.
func TestBatchCancelMidRun(t *testing.T) {
	env := newEnv(t, 81, 30)
	rec := obs.NewRecorder()
	opts := smallOpts(LIME, 82)
	opts.Recorder = rec

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Fire a few tuples into the explain phase: past the pool build
	// (≈ pooled itemsets × τ calls) plus a few hundred per-tuple samples.
	cls := &cancelAfter{inner: env.cls, cancel: cancel, after: 2500}
	b, err := NewBatch(env.st, cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAllCtx(ctx, env.tuples)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	checkPartial(t, res, len(env.tuples))
	reconcilePartial(t, sumEvents(t, rec), res.Report)
}

// TestBatchCancelParallel is the same check across parallel workers,
// under -race: every worker must stop, unattempted slots must be marked
// failed, and the merged report must still reconcile with the events.
func TestBatchCancelParallel(t *testing.T) {
	env := newEnv(t, 83, 48)
	rec := obs.NewRecorder()
	opts := smallOpts(LIME, 84)
	opts.Recorder = rec
	opts.Workers = 4

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cls := &cancelAfter{inner: env.cls, cancel: cancel, after: 3000}
	b, err := NewBatch(env.st, cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAllCtx(ctx, env.tuples)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	checkPartial(t, res, len(env.tuples))
	reconcilePartial(t, sumEvents(t, rec), res.Report)
}

// TestBatchCancelBeforeStart: a context cancelled on entry yields a
// full-length all-failed result without invoking the classifier for
// any tuple explanation.
func TestBatchCancelBeforeStart(t *testing.T) {
	env := newEnv(t, 85, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, err := NewBatch(env.st, env.cls, smallOpts(LIME, 86))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAllCtx(ctx, env.tuples)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if res == nil || len(res.Explanations) != len(env.tuples) {
		t.Fatal("want a full-length all-failed result")
	}
	for i, e := range res.Explanations {
		if e.Status != StatusFailed {
			t.Errorf("tuple %d status=%v, want failed", i, e.Status)
		}
	}
	if res.Report.Failed != len(env.tuples) {
		t.Errorf("Report.Failed=%d, want %d", res.Report.Failed, len(env.tuples))
	}
}

// TestStreamCancelMidStream cancels between stream tuples and checks
// the stream keeps serving afterwards and its report stays consistent
// with the event log.
func TestStreamCancelMidStream(t *testing.T) {
	env := newEnv(t, 87, 40)
	rec := obs.NewRecorder()
	opts := smallOpts(LIME, 88)
	opts.Recorder = rec
	opts.StreamRecompute = 10

	s, err := NewStream(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for i, tup := range env.tuples {
		if i == 25 {
			// One request arrives with an already-dead context: it is
			// refused without touching stream state.
			dead, cancel := context.WithCancel(context.Background())
			cancel()
			exp, err := s.ExplainCtx(dead, tup)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("dead-context err=%v", err)
			}
			if exp.Status != StatusFailed {
				t.Fatalf("dead-context status=%v, want failed", exp.Status)
			}
			continue
		}
		exp, err := s.ExplainCtx(context.Background(), tup)
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if exp.Status != StatusOK {
			t.Errorf("tuple %d status=%v, want ok", i, exp.Status)
		}
		served++
	}
	rep := s.Report()
	if rep.Tuples != served {
		t.Errorf("Report.Tuples=%d, want %d (the refused request must not count)", rep.Tuples, served)
	}
	if rep.Failed != 0 {
		t.Errorf("Report.Failed=%d, want 0 (the refused request never entered the stream)", rep.Failed)
	}
	s2 := sumEvents(t, rec)
	if s2.explained != served {
		t.Errorf("%d tuple_explained events for %d served tuples", s2.explained, served)
	}
	reconcilePartial(t, s2, rep)
}

// TestStreamCancelMidTuple cancels from inside the classifier while a
// stream tuple is being explained: the tuple must finish promptly on
// fallback labels, be marked failed, and later tuples must succeed.
func TestStreamCancelMidTuple(t *testing.T) {
	env := newEnv(t, 89, 20)
	opts := smallOpts(LIME, 90)
	opts.StreamRecompute = 5

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cls := &cancelAfter{inner: env.cls, cancel: cancel, after: 1200}
	s, err := NewStream(env.st, cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	sawFailed := false
	for i, tup := range env.tuples {
		c := ctx
		if sawFailed {
			c = context.Background() // the caller moves on with a fresh context
		}
		exp, err := s.ExplainCtx(c, tup)
		if errors.Is(err, context.Canceled) {
			continue // refused on entry; try the next tuple fresh
		}
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if exp.Status == StatusFailed {
			sawFailed = true
		}
	}
	if !sawFailed {
		t.Fatal("cancellation never landed mid-tuple; lower cancelAfter.after")
	}
	rep := s.Report()
	if rep.Failed == 0 {
		t.Error("Report.Failed=0 despite a mid-tuple cancellation")
	}
	// The stream survives: one more tuple under a live context is OK.
	exp, err := s.ExplainCtx(context.Background(), env.tuples[0])
	if err != nil {
		t.Fatal(err)
	}
	if exp.Status != StatusOK {
		t.Errorf("post-cancel tuple status=%v, want ok", exp.Status)
	}
}

// TestSequentialCancelMidRun covers the baseline's partial result.
func TestSequentialCancelMidRun(t *testing.T) {
	env := newEnv(t, 91, 25)
	opts := smallOpts(LIME, 92)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cls := &cancelAfter{inner: env.cls, cancel: cancel, after: 1500}
	res, err := SequentialCtx(ctx, env.st, cls, opts, env.tuples)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	checkPartial(t, res, len(env.tuples))
}

// TestCancelReturnsPromptly: once cancel fires, the run must wrap up in
// fallback time, not finish the remaining workload. The classifier is
// slowed so that "kept going" and "stopped" are clearly separated.
func TestCancelReturnsPromptly(t *testing.T) {
	env := newEnv(t, 93, 40)
	opts := smallOpts(LIME, 94)
	slow := rf.NewDelayed(env.cls, 50*time.Microsecond)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cls := &cancelAfter{inner: slow, cancel: cancel, after: 3000}
	b, err := NewBatch(env.st, cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now() //shahinvet:allow walltime — the test bounds post-cancel latency
	res, err := b.ExplainAllCtx(ctx, env.tuples)
	took := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	checkPartial(t, res, len(env.tuples))
	// Full run ≈ 40 tuples × 300 samples × 50µs = 600ms of classifier
	// time alone; a prompt cancellation at call 3000 should cut well
	// below half of it even on a slow CI box.
	if took > 2*time.Second {
		t.Errorf("cancelled run took %v", took)
	}
}

// Package core implements Shahin itself: the batch variant (Algorithms
// 1–3 of the paper) that mines frequent itemsets over a sample of the
// batch, materialises and labels τ perturbations per itemset, and reuses
// them across every tuple's explanation; the streaming variant (§3.5)
// with a byte-budgeted LRU repository, periodic itemset re-mining, and
// negative-border promotion; and the two baselines the evaluation
// compares against (GREEDY and DIST-k).
package core

import (
	"fmt"

	"shahin/internal/cache"
	"shahin/internal/dataset"
	"shahin/internal/explain/anchor"
	"shahin/internal/explain/exact"
	"shahin/internal/explain/lime"
	"shahin/internal/explain/shap"
	"shahin/internal/explain/sshap"
	"shahin/internal/fault"
	"shahin/internal/obs"
)

// Kind selects which explanation algorithm a run uses.
type Kind uint8

const (
	// LIME produces feature-weight attributions via a local surrogate.
	LIME Kind = iota
	// Anchor produces IF-THEN rules with precision/coverage guarantees.
	Anchor
	// SHAP produces Shapley-value attributions.
	SHAP
	// SampleSHAP produces Shapley-value attributions via permutation
	// sampling (Štrumbelj & Kononenko) — an extension beyond the paper's
	// three algorithms that demonstrates the generality of the reuse
	// framework.
	SampleSHAP
	// ExactSHAP produces exact Shapley-value attributions by walking the
	// owned tree ensemble directly (TreeSHAP): polynomial time, zero
	// perturbation sampling, one classifier invocation per tuple. Only
	// legal on a local tree backend — runs whose classifier does not
	// unwrap to an owned ensemble, or with a fault chain installed, fall
	// back to (Kernel)SHAP and record an exact_fallback event.
	ExactSHAP
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case LIME:
		return "LIME"
	case Anchor:
		return "Anchor"
	case SHAP:
		return "SHAP"
	case SampleSHAP:
		return "SampleSHAP"
	case ExactSHAP:
		return "ExactSHAP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Kinds lists the paper's three explainer kinds in display order (the
// tables and figures of the evaluation iterate these).
func Kinds() []Kind { return []Kind{LIME, Anchor, SHAP} }

// AllKinds additionally includes the extension explainers.
func AllKinds() []Kind { return []Kind{LIME, Anchor, SHAP, SampleSHAP, ExactSHAP} }

// ParseKind converts a name ("lime", "anchor", "shap", any case) to a Kind.
func ParseKind(s string) (Kind, error) {
	switch lower(s) {
	case "lime":
		return LIME, nil
	case "anchor":
		return Anchor, nil
	case "shap", "kernelshap":
		return SHAP, nil
	case "sshap", "sampleshap", "sampleshapley":
		return SampleSHAP, nil
	case "exact", "exactshap", "treeshap":
		return ExactSHAP, nil
	default:
		return 0, fmt.Errorf("core: unknown explainer %q (want lime, anchor, or shap)", s)
	}
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// Options configures a Shahin run. Zero values select the noted defaults.
type Options struct {
	// Explainer picks the algorithm (default LIME).
	Explainer Kind
	// LIME / Anchor / SHAP / SSHAP / Exact configure the underlying
	// explainers.
	LIME   lime.Config
	Anchor anchor.Config
	SHAP   shap.Config
	SSHAP  sshap.Config
	Exact  exact.Config

	// MinSupport is the frequent-itemset threshold over the batch sample
	// (default 0.1).
	MinSupport float64
	// MaxItemsetLen caps mined itemset length (default 3).
	MaxItemsetLen int
	// MaxItemsets caps how many frequent itemsets get pooled
	// perturbations, taken in mining order — shortest first, then highest
	// support (default 200).
	MaxItemsets int
	// Tau is the number of perturbations materialised per frequent
	// itemset (default 100, the paper's τ).
	Tau int
	// MineSample overrides how many tuples of the batch are mined for
	// frequent itemsets: 0 uses the paper's max(1000, 1%) heuristic, -1
	// mines the whole batch (the A1 ablation), > 0 is an explicit size.
	MineSample int
	// DisablePoolBudget turns off the automatic resource cap that limits
	// pool construction to ~20 % of the sequential classifier budget.
	// Exists so parameter sweeps (Figure 6's τ sweep) can hold the
	// itemset count fixed; leave it off in production.
	DisablePoolBudget bool
	// CacheBytes is the perturbation repository budget (default 128 MiB,
	// the knee of the paper's Figure 7; <= 0 keeps the default — use
	// Figure 7's sweep to vary it).
	CacheBytes int64
	// Seed drives every random choice (sampling, perturbation, bandits).
	Seed int64
	// Workers runs per-tuple explanation on this many goroutines over a
	// frozen pool snapshot (default 1 — the paper measures single-core to
	// isolate algorithmic gains). Anchor ignores Workers: its shared
	// caches are mutated during explanation.
	Workers int

	// Recorder receives live observability data from the run:
	// stage-scoped spans (mine, pool-build, pre-label, explain), atomic
	// progress counters, and latency histograms for classifier Predict
	// calls and per-tuple explain times. nil — the default — disables
	// all instrumentation; the pipeline's hot paths then pay only nil
	// checks. The same recorder may be shared across runs (counters
	// accumulate) and served over HTTP with obs.Serve.
	Recorder *obs.Recorder

	// Fault configures the failure model of the classifier backend:
	// deterministic fault injection for chaos runs, per-call deadlines,
	// retry with capped exponential backoff, and a circuit breaker.
	// nil — the default — assumes an infallible in-process classifier
	// and keeps the fault machinery entirely off the hot path (the run
	// then takes the exact pre-fault code path and produces
	// byte-identical explanations).
	Fault *fault.Config

	// StreamRecompute is the streaming variant's re-mining period in
	// tuples (default 100, the paper's threshold).
	StreamRecompute int
	// StreamBorder enables negative-border tracking in the streaming
	// variant, promoting border itemsets that become frequent between
	// re-mines (default on; the A3 ablation turns it off).
	StreamBorder *bool
}

// withDefaults returns a copy with defaults filled in.
func (o Options) withDefaults() Options {
	if o.MinSupport <= 0 || o.MinSupport > 1 {
		o.MinSupport = 0.1
	}
	if o.MaxItemsetLen <= 0 || o.MaxItemsetLen > dataset.MaxItemsetLen {
		o.MaxItemsetLen = 3
	}
	if o.MaxItemsets <= 0 {
		o.MaxItemsets = 200
	}
	if o.Tau <= 0 {
		o.Tau = 100
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 128 << 20
	}
	if o.StreamRecompute <= 0 {
		o.StreamRecompute = 100
	}
	if o.StreamBorder == nil {
		on := true
		o.StreamBorder = &on
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Explainer == ExactSHAP {
		// Pin the background seed before per-worker seed perturbation so
		// parallel workers and distributed machines draw the identical
		// background sample (parallel == serial, byte for byte).
		if o.Exact.Seed == 0 {
			o.Exact.Seed = o.Seed + 31
		}
		if o.Exact.Background <= 0 {
			o.Exact.Background = 256
		}
	}
	return o
}

// cacheHooks builds repository event hooks feeding the recorder's cache
// counters (zero Hooks — all callbacks nil — when rec is nil). Evictions
// additionally land in the structured event log: under a tight byte
// budget they explain where reuse went.
func cacheHooks(rec *obs.Recorder) cache.Hooks {
	if rec == nil {
		return cache.Hooks{}
	}
	evictions := rec.Counter(obs.CounterCacheEvictions)
	return cache.Hooks{
		Hit:  rec.Counter(obs.CounterCacheHits).Inc,
		Miss: rec.Counter(obs.CounterCacheMisses).Inc,
		Evict: func() {
			evictions.Inc()
			rec.Emit(obs.Event{Type: obs.EventCacheEvict, Tuple: -1})
		},
	}
}

package core

import (
	"testing"
	"time"

	"shahin/internal/obs"
)

// checkEventStages asserts every tuple_explained event carries a stage
// breakdown free of serving-only stages (core cannot see queueing) and
// that the solve histogram saw the same population. It returns the
// summed solve time across events for cross-checks.
func checkEventStages(t *testing.T, rec *obs.Recorder, wantTuples int) time.Duration {
	t.Helper()
	events, _ := rec.Events()
	stamped, solved := 0, 0
	var eventSolve time.Duration
	for _, e := range events {
		if e.Type != obs.EventTupleExplained {
			continue
		}
		if e.Stages == nil {
			t.Fatalf("tuple_explained for tuple %d lacks a stage breakdown", e.Tuple)
		}
		if e.Stages.QueueWait != 0 || e.Stages.BatchAssembly != 0 {
			t.Errorf("tuple %d: core stamped serving-only stages %+v", e.Tuple, *e.Stages)
		}
		stamped++
		eventSolve += e.Stages.Solve
		if e.Stages.Solve > 0 {
			solved++
		}
	}
	if stamped != wantTuples {
		t.Fatalf("%d stage-stamped events for %d tuples", stamped, wantTuples)
	}
	if solved == 0 {
		t.Error("no tuple attributed any solve time")
	}
	if got := rec.Histogram(obs.HistStageSolve).Snapshot().Count; int(got) != solved {
		t.Errorf("solve histogram count=%d, want %d", got, solved)
	}
	return eventSolve
}

// TestBatchBreakdowns checks latency attribution on the batch pipeline:
// one aligned breakdown per tuple, agreeing with the stamps on the
// tuple_explained events and the stage histograms.
func TestBatchBreakdowns(t *testing.T) {
	env := newEnv(t, 51, 30)
	rec := obs.NewRecorder()
	opts := smallOpts(LIME, 52)
	opts.Recorder = rec

	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Breakdowns) != len(res.Explanations) {
		t.Fatalf("%d breakdowns for %d explanations", len(res.Breakdowns), len(res.Explanations))
	}
	var resultSolve time.Duration
	for i, bd := range res.Breakdowns {
		if bd.QueueWait != 0 || bd.BatchAssembly != 0 {
			t.Errorf("tuple %d: core stamped serving-only stages %+v", i, bd)
		}
		resultSolve += bd.Solve
	}
	eventSolve := checkEventStages(t, rec, len(res.Explanations))
	if eventSolve != resultSolve {
		t.Errorf("event solve total %v != result solve total %v", eventSolve, resultSolve)
	}
}

// TestStreamBreakdowns checks the streaming variant keeps stamping
// per-tuple stages onto events across pool rebuilds (stream calls
// return no Result, so events and histograms are the contract).
func TestStreamBreakdowns(t *testing.T) {
	env := newEnv(t, 53, 24)
	rec := obs.NewRecorder()
	opts := smallOpts(LIME, 54)
	opts.Recorder = rec
	opts.StreamRecompute = 8

	s, err := NewStream(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tuple := range env.tuples {
		if _, err := s.Explain(tuple); err != nil {
			t.Fatal(err)
		}
	}
	checkEventStages(t, rec, len(env.tuples))
}

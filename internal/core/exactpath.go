package core

import (
	"shahin/internal/explain/exact"
	"shahin/internal/obs"
	"shahin/internal/rf"
)

// exactEligible reports whether the exact TreeSHAP fast path is legal
// for this run: no fault chain (the exact walker reads tree structure
// directly and cannot route through the degradation ladder) and a
// classifier that unwraps to an owned tree ensemble.
func exactEligible(opts Options, cls rf.Classifier) bool {
	return opts.Fault == nil && exact.Supported(cls)
}

// applyExactFallback downgrades an ExactSHAP request to KernelSHAP when
// the backend does not qualify, emitting the exact_fallback provenance
// marker with the reason. It returns the (possibly rewritten) options
// and whether the fallback fired; every run entry point calls it after
// withDefaults so the silent degradation is decided in exactly one
// place.
func applyExactFallback(opts Options, cls rf.Classifier) (Options, bool) {
	if opts.Explainer != ExactSHAP || exactEligible(opts, cls) {
		return opts, false
	}
	reason := "unsupported_classifier"
	if opts.Fault != nil {
		reason = "fault_chain"
	}
	if rec := opts.Recorder; rec != nil {
		rec.Emit(obs.Event{
			Type: obs.EventExactFallback, Tuple: -1,
			Explainer: ExactSHAP.String(), State: reason,
		})
	}
	opts.Explainer = SHAP
	return opts, true
}

package core

import (
	"testing"

	"shahin/internal/obs"
)

// eventSums aggregates an event log into the totals the reconciliation
// identities are stated over.
type eventSums struct {
	explained       int
	explainedFresh  int64
	explainedPooled int64
	preLabelFresh   int64
	poolBuilds      int
	remines         int
}

func sumEvents(t *testing.T, rec *obs.Recorder) eventSums {
	t.Helper()
	events, dropped := rec.Events()
	if dropped != 0 {
		t.Fatalf("event log dropped %d events; raise capacity for this test", dropped)
	}
	var s eventSums
	for _, e := range events {
		switch e.Type {
		case obs.EventTupleExplained:
			s.explained++
			s.explainedFresh += e.Fresh
			s.explainedPooled += e.Pooled
			if e.Tuple < 0 {
				t.Errorf("tuple_explained with tuple %d", e.Tuple)
			}
		case obs.EventPreLabel:
			s.preLabelFresh += e.Fresh
		case obs.EventPoolBuild:
			s.poolBuilds++
		case obs.EventRemine:
			s.remines++
		}
	}
	return s
}

// reconcile checks the provenance identities that tie the event log to
// the cost report: per-tuple fresh samples account for every classifier
// invocation outside pool pre-labelling, per-tuple pooled samples
// account for every reused sample, and pre-label events account for the
// pool's invocations — so summed event samples equal
// Invocations + ReusedSamples exactly.
func reconcile(t *testing.T, s eventSums, rep Report) {
	t.Helper()
	if s.explained != rep.Tuples {
		t.Errorf("%d tuple_explained events for %d tuples", s.explained, rep.Tuples)
	}
	if want := rep.Invocations - rep.PoolInvocations; s.explainedFresh != want {
		t.Errorf("sum of per-tuple fresh samples = %d, want Invocations-PoolInvocations = %d", s.explainedFresh, want)
	}
	if s.explainedPooled != rep.ReusedSamples {
		t.Errorf("sum of per-tuple pooled samples = %d, want ReusedSamples = %d", s.explainedPooled, rep.ReusedSamples)
	}
	if s.preLabelFresh != rep.PoolInvocations {
		t.Errorf("sum of pre_label fresh samples = %d, want PoolInvocations = %d", s.preLabelFresh, rep.PoolInvocations)
	}
	if got, want := s.explainedFresh+s.explainedPooled+s.preLabelFresh, rep.Invocations+rep.ReusedSamples; got != want {
		t.Errorf("event-accounted samples = %d, want Invocations+ReusedSamples = %d", got, want)
	}
}

// TestBatchEventReconciliation is the end-to-end provenance acceptance
// check on the batch pipeline.
func TestBatchEventReconciliation(t *testing.T) {
	env := newEnv(t, 31, 40)
	rec := obs.NewRecorder()
	opts := smallOpts(LIME, 32)
	opts.Recorder = rec

	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.ReusedSamples == 0 {
		t.Fatal("batch run reused nothing; reconciliation would be vacuous")
	}
	s := sumEvents(t, rec)
	if s.poolBuilds != 1 {
		t.Errorf("%d pool_build events, want 1", s.poolBuilds)
	}
	reconcile(t, s, res.Report)

	// Per-tuple provenance: at least one explanation should name the
	// frequent itemset that served it.
	events, _ := rec.Events()
	matched := 0
	for _, e := range events {
		if e.Type == obs.EventTupleExplained && e.Itemset != "" {
			matched++
		}
	}
	if matched == 0 {
		t.Error("no tuple_explained event carries a matched itemset")
	}
}

// TestSequentialEventReconciliation covers the baseline: no pool, so
// every invocation is a per-tuple fresh sample.
func TestSequentialEventReconciliation(t *testing.T) {
	env := newEnv(t, 33, 25)
	rec := obs.NewRecorder()
	opts := smallOpts(LIME, 34)
	opts.Recorder = rec

	res, err := Sequential(env.st, env.cls, opts, env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	reconcile(t, sumEvents(t, rec), res.Report)
}

// TestStreamEventReconciliation covers the streaming variant, forcing
// re-mines so pool materialisation and reuse both happen mid-stream.
func TestStreamEventReconciliation(t *testing.T) {
	env := newEnv(t, 35, 60)
	rec := obs.NewRecorder()
	opts := smallOpts(LIME, 36)
	opts.Recorder = rec
	opts.StreamRecompute = 20

	st, err := NewStream(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tup := range env.tuples {
		if _, err := st.Explain(tup); err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
	}
	rep := st.Report()
	if rep.ReusedSamples == 0 {
		t.Fatal("stream run reused nothing; raise batch or lower StreamRecompute")
	}
	s := sumEvents(t, rec)
	if s.remines == 0 {
		t.Error("no re_mine events despite forced recomputes")
	}
	if s.poolBuilds == 0 {
		t.Error("no pool_build events despite materialisation")
	}
	reconcile(t, s, rep)
}

// TestParallelBatchEventReconciliation hammers the shared event log from
// parallel explain workers; under -race it proves Emit is goroutine-safe
// and the identities still hold when provenance comes from per-worker
// pools.
func TestParallelBatchEventReconciliation(t *testing.T) {
	env := newEnv(t, 37, 64)
	rec := obs.NewRecorder()
	opts := smallOpts(LIME, 38)
	opts.Recorder = rec
	opts.Workers = 4

	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	reconcile(t, sumEvents(t, rec), res.Report)
}

// TestAnchorEventCacheHits checks the Anchor path reports cache-hit
// provenance (it reuses via shared caches, not the perturbation pool).
func TestAnchorEventCacheHits(t *testing.T) {
	env := newEnv(t, 39, 20)
	rec := obs.NewRecorder()
	opts := smallOpts(Anchor, 40)
	opts.Recorder = rec

	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	events, _ := rec.Events()
	explained, hits := 0, int64(0)
	for _, e := range events {
		if e.Type == obs.EventTupleExplained {
			explained++
			hits += e.CacheHits
		}
	}
	if explained != res.Report.Tuples {
		t.Errorf("%d tuple_explained events for %d tuples", explained, res.Report.Tuples)
	}
	if res.Report.ReusedSamples > 0 && hits == 0 {
		t.Error("anchor reuse happened but no tuple_explained event carries cache hits")
	}
}

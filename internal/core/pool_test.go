package core

import (
	"testing"

	"shahin/internal/cache"
	"shahin/internal/dataset"
	"shahin/internal/perturb"
)

// mk builds a labelled sample over 4 attributes with the given bins.
func mk(label int, bins ...int) perturb.Sample {
	items := make([]dataset.Item, len(bins))
	row := make([]float64, len(bins))
	for a, b := range bins {
		items[a] = dataset.MakeItem(a, b)
		row[a] = float64(b)
	}
	return perturb.Sample{Row: row, Items: items, Label: label}
}

func poolWith(t *testing.T) (*itemsetPool, dataset.Itemset, dataset.Itemset) {
	t.Helper()
	f1 := dataset.Itemset{dataset.MakeItem(0, 1)}                         // singleton
	f2 := dataset.Itemset{dataset.MakeItem(0, 1), dataset.MakeItem(1, 2)} // pair
	repo := cache.NewRepo(0)
	repo.Put(f1.Key(), []perturb.Sample{mk(1, 1, 0, 0, 0), mk(0, 1, 2, 3, 0)})
	repo.Put(f2.Key(), []perturb.Sample{mk(1, 1, 2, 0, 1), mk(1, 1, 2, 2, 2)})
	return newItemsetPool(repo, []dataset.Itemset{f1, f2}, nil), f1, f2
}

func TestPoolForTupleServesContainedItemsets(t *testing.T) {
	p, _, _ := poolWith(t)
	p.beginTuple()
	// Tuple contains both f1 and f2.
	tuple := []dataset.Item{
		dataset.MakeItem(0, 1), dataset.MakeItem(1, 2),
		dataset.MakeItem(2, 9), dataset.MakeItem(3, 9),
	}
	got := p.ForTuple(tuple, 10)
	if len(got) != 4 {
		t.Fatalf("served %d samples want 4", len(got))
	}
	// Tuple containing only f1.
	p.beginTuple()
	tuple2 := []dataset.Item{
		dataset.MakeItem(0, 1), dataset.MakeItem(1, 9),
		dataset.MakeItem(2, 9), dataset.MakeItem(3, 9),
	}
	if got := p.ForTuple(tuple2, 10); len(got) != 2 {
		t.Fatalf("served %d samples want 2 (only f1)", len(got))
	}
	// Tuple containing neither.
	p.beginTuple()
	tuple3 := []dataset.Item{
		dataset.MakeItem(0, 0), dataset.MakeItem(1, 0),
		dataset.MakeItem(2, 0), dataset.MakeItem(3, 0),
	}
	if got := p.ForTuple(tuple3, 10); len(got) != 0 {
		t.Fatalf("served %d samples want 0", len(got))
	}
}

func TestPoolForTupleConsumption(t *testing.T) {
	p, _, _ := poolWith(t)
	p.beginTuple()
	tuple := []dataset.Item{
		dataset.MakeItem(0, 1), dataset.MakeItem(1, 2),
		dataset.MakeItem(2, 9), dataset.MakeItem(3, 9),
	}
	first := p.ForTuple(tuple, 3)
	second := p.ForTuple(tuple, 3)
	if len(first) != 3 || len(second) != 1 {
		t.Fatalf("consumption wrong: %d then %d", len(first), len(second))
	}
	// A new tuple resets the allowance.
	p.beginTuple()
	if got := p.ForTuple(tuple, 10); len(got) != 4 {
		t.Fatalf("after reset served %d want 4", len(got))
	}
	if p.reused != int64(3+1+4) {
		t.Fatalf("reused counter=%d", p.reused)
	}
}

func TestPoolForItemsetMatchesRequired(t *testing.T) {
	p, f1, f2 := poolWith(t)
	p.beginTuple()
	// Required exactly f2: both f2 samples match; f1's second sample
	// (bins 1,2,3,0) also contains f2's items.
	got := p.ForItemset(f2, 10)
	if len(got) != 3 {
		t.Fatalf("served %d want 3", len(got))
	}
	for _, s := range got {
		if !perturb.MatchesBins(f2, s.Items) {
			t.Fatalf("served sample %v does not match %v", s.Items, f2)
		}
	}
	// Required f1 only: f2-frozen samples are NOT eligible even though
	// their rows contain f1 — their extra frozen attribute biases the
	// coalition's free attributes. Only f1's own samples qualify.
	p.beginTuple()
	if got := p.ForItemset(f1, 10); len(got) != 2 {
		t.Fatalf("served %d want 2", len(got))
	}
}

func TestPoolForItemsetSkipsHopelessRequirements(t *testing.T) {
	// Pool holds only a singleton itemset, but its sample coincidentally
	// matches a 4-item requirement. The gap guard (|required| > |f|+2)
	// must skip the scan anyway, so nothing is served.
	f1 := dataset.Itemset{dataset.MakeItem(0, 1)}
	repo := cache.NewRepo(0)
	repo.Put(f1.Key(), []perturb.Sample{mk(1, 1, 2, 0, 1)})
	p := newItemsetPool(repo, []dataset.Itemset{f1}, nil)
	p.beginTuple()
	required := dataset.Itemset{
		dataset.MakeItem(0, 1), dataset.MakeItem(1, 2),
		dataset.MakeItem(2, 0), dataset.MakeItem(3, 1),
	}
	if got := p.ForItemset(required, 10); len(got) != 0 {
		t.Fatalf("hopeless requirement served %d samples", len(got))
	}
	// A 3-item requirement (gap exactly 2) is scanned and hits.
	p.beginTuple()
	req3 := dataset.Itemset{
		dataset.MakeItem(0, 1), dataset.MakeItem(1, 2), dataset.MakeItem(3, 1),
	}
	if got := p.ForItemset(req3, 10); len(got) != 1 {
		t.Fatalf("in-gap requirement served %d samples", len(got))
	}
}

func TestPoolForItemsetConsumption(t *testing.T) {
	p, f1, _ := poolWith(t)
	p.beginTuple()
	a := p.ForItemset(f1, 1)
	b := p.ForItemset(f1, 10)
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("consumption wrong: %d then %d", len(a), len(b))
	}
	if got := p.ForItemset(f1, 10); len(got) != 0 {
		t.Fatalf("exhausted itemset served %d", len(got))
	}
	// A new tuple resets the allowance.
	p.beginTuple()
	if got := p.ForItemset(f1, 10); len(got) != 2 {
		t.Fatalf("after reset served %d want 2", len(got))
	}
}

func TestGreedyStoreEviction(t *testing.T) {
	s := mk(0, 0, 0, 0, 0)
	g := newGreedyStore(3 * s.Bytes())
	for i := 0; i < 10; i++ {
		g.Observe(mk(i%2, i%3, 0, 0, 0))
	}
	live := len(g.samples) - g.head
	if live != 3 {
		t.Fatalf("live samples=%d want 3", live)
	}
	if g.used > 3*s.Bytes() {
		t.Fatalf("used %d over budget", g.used)
	}
}

func TestGreedyStoreNewestFirst(t *testing.T) {
	g := newGreedyStore(0)
	g.Observe(mk(0, 1, 5, 5, 5))
	g.Observe(mk(1, 1, 5, 5, 5))
	g.beginTuple()
	// The tuple agrees with the stored samples on 2 of 4 attributes,
	// meeting the 50% locality threshold.
	tuple := []dataset.Item{
		dataset.MakeItem(0, 1), dataset.MakeItem(1, 5),
		dataset.MakeItem(2, 9), dataset.MakeItem(3, 9),
	}
	got := g.ForTuple(tuple, 1)
	if len(got) != 1 || got[0].Label != 1 {
		t.Fatalf("expected newest sample first, got %+v", got)
	}
	// Second request must serve the remaining (older) sample.
	got = g.ForTuple(tuple, 1)
	if len(got) != 1 || got[0].Label != 0 {
		t.Fatalf("expected older sample second, got %+v", got)
	}
}

func TestGreedyStoreForItemsetGuard(t *testing.T) {
	g := newGreedyStore(0)
	g.Observe(mk(1, 1, 2, 3, 0))
	g.beginTuple()
	big := dataset.Itemset{
		dataset.MakeItem(0, 1), dataset.MakeItem(1, 2),
		dataset.MakeItem(2, 3), dataset.MakeItem(3, 0),
	}
	if got := g.ForItemset(big, 1); len(got) != 0 {
		t.Fatal("4-item requirement should be skipped")
	}
	small := dataset.Itemset{dataset.MakeItem(0, 1), dataset.MakeItem(2, 3)}
	if got := g.ForItemset(small, 1); len(got) != 1 {
		t.Fatalf("matching requirement served %d", len(got))
	}
}

func TestMatchingBins(t *testing.T) {
	a := []dataset.Item{dataset.MakeItem(0, 1), dataset.MakeItem(1, 2)}
	b := []dataset.Item{dataset.MakeItem(0, 9), dataset.MakeItem(1, 2)}
	c := []dataset.Item{dataset.MakeItem(0, 9), dataset.MakeItem(1, 9)}
	if got := matchingBins(a, b); got != 1 {
		t.Fatalf("matchingBins=%d want 1", got)
	}
	if got := matchingBins(a, c); got != 0 {
		t.Fatalf("matchingBins=%d want 0", got)
	}
	if got := matchingBins(a, a); got != 2 {
		t.Fatalf("matchingBins=%d want 2", got)
	}
}

func TestEffectiveSupport(t *testing.T) {
	cases := []struct {
		min  float64
		rows int
		want float64
	}{
		{0.1, 1000, 0.1}, // heuristic already above floor
		{0.1, 10, 0.5},   // floor = 5/10
		{0.1, 3, 1},      // floor clamps at 1
		{0.1, 0, 0.1},    // degenerate rows
	}
	for _, tc := range cases {
		if got := effectiveSupport(tc.min, tc.rows); got != tc.want {
			t.Errorf("effectiveSupport(%g, %d)=%g want %g", tc.min, tc.rows, got, tc.want)
		}
	}
}

package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"shahin/internal/fault"
	"shahin/internal/obs"
)

// chaosFaults is the acceptance fault profile: 5 % transient errors
// under a 5 ms per-call deadline with three retries, plus a hard
// call-indexed outage window that trips the circuit breaker.
func chaosFaults(seed int64) *fault.Config {
	return &fault.Config{
		FailRate:             0.05,
		Seed:                 seed,
		PredictTimeout:       5 * time.Millisecond,
		MaxRetries:           3,
		OutageStart:          800,
		OutageCalls:          300,
		BreakerThreshold:     5,
		BreakerCooldownCalls: 100,
	}
}

// TestChaosBatchNoFailedTuples is the batch acceptance check: under a
// 5 % fault rate every tuple must still be answered (degraded at worst,
// never failed), retries must be visible in the report, and the
// event-reconciliation identity must hold with the bridge in place.
func TestChaosBatchNoFailedTuples(t *testing.T) {
	env := newEnv(t, 61, 40)
	rec := obs.NewRecorder()
	opts := smallOpts(LIME, 62)
	opts.Fault = chaosFaults(63)
	opts.Recorder = rec

	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Failed > 0 {
		t.Fatalf("%d tuples failed; the degradation ladder should have answered them", rep.Failed)
	}
	for i, e := range res.Explanations {
		if e.Status == StatusFailed {
			t.Errorf("tuple %d marked failed", i)
		}
		if e.Attribution == nil {
			t.Errorf("tuple %d has no attribution", i)
		}
	}
	if rep.Retries == 0 {
		t.Error("no retries recorded at a 5% fault rate")
	}
	if rep.Degraded == 0 {
		t.Error("the outage window should have degraded some tuples")
	}
	if got := rec.Counter(obs.CounterBreakerOpens).Value(); got == 0 {
		t.Error("the outage window should have opened the breaker")
	}
	if got := rec.Counter(obs.CounterDegradedAnswers).Value(); got == 0 {
		t.Error("no degraded answers counted despite degraded tuples")
	}
	reconcile(t, sumEvents(t, rec), rep)
}

// TestChaosStreamNoFailedTuples is the same acceptance check on the
// streaming path.
func TestChaosStreamNoFailedTuples(t *testing.T) {
	env := newEnv(t, 64, 60)
	opts := smallOpts(LIME, 65)
	opts.Fault = chaosFaults(66)
	opts.StreamRecompute = 15

	s, err := NewStream(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tup := range env.tuples {
		exp, err := s.Explain(tup)
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if exp.Status == StatusFailed {
			t.Errorf("tuple %d marked failed", i)
		}
	}
	rep := s.Report()
	if rep.Failed > 0 {
		t.Fatalf("%d tuples failed in the stream", rep.Failed)
	}
	if rep.Retries == 0 {
		t.Error("no retries recorded at a 5% fault rate")
	}
}

// TestChaosByteDeterminism: the same fault seed injects the same faults
// at the same calls, so two runs marshal byte-identically.
func TestChaosByteDeterminism(t *testing.T) {
	env := newEnv(t, 67, 30)
	run := func() []byte {
		opts := smallOpts(LIME, 68)
		opts.Fault = chaosFaults(69)
		b, err := NewBatch(env.st, env.cls, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.ExplainAll(env.tuples)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res.Explanations)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatal("explanations differ across two chaos runs with the same fault seed")
	}
}

// TestFaultDisabledByteIdentical: threading a live (cancellable) context
// with no fault config must not change a single byte of the output —
// the pass-through chain returns exactly the classifier's labels.
func TestFaultDisabledByteIdentical(t *testing.T) {
	env := newEnv(t, 70, 30)
	opts := smallOpts(LIME, 71)

	b, err := NewBatch(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := b.ExplainAll(env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bridged, err := b.ExplainAllCtx(ctx, env.tuples)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(plain.Explanations)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(bridged.Explanations)
	if err != nil {
		t.Fatal(err)
	}
	if string(pj) != string(bj) {
		t.Fatal("bridged (fault-free) run differs from the plain pipeline")
	}
	if plain.Report.Invocations != bridged.Report.Invocations {
		t.Fatalf("invocations differ: plain=%d bridged=%d",
			plain.Report.Invocations, bridged.Report.Invocations)
	}
}

// TestStatusJSONRoundTrip covers the Status wire format, including the
// omitempty contract that keeps infallible output byte-stable.
func TestStatusJSONRoundTrip(t *testing.T) {
	for _, s := range []Status{StatusOK, StatusDegraded, StatusFailed} {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Status
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Errorf("round trip %v -> %s -> %v", s, data, back)
		}
	}
	var legacy Status
	if err := json.Unmarshal([]byte(`""`), &legacy); err != nil || legacy != StatusOK {
		t.Errorf("empty status should parse as ok, got (%v,%v)", legacy, err)
	}
	if err := json.Unmarshal([]byte(`"melted"`), &legacy); err == nil {
		t.Error("unknown status should fail to parse")
	}
	// The zero status must vanish from marshalled explanations (so
	// infallible output is byte-identical to the pre-robustness format),
	// while non-zero statuses must appear.
	data, err := json.Marshal(Explanation{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "Status") {
		t.Errorf("zero status leaked into %s", data)
	}
	data, err = json.Marshal(Explanation{Status: StatusDegraded})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"Status":"degraded"`) {
		t.Errorf("degraded status missing from %s", data)
	}
}

// TestBridgeFallbackLadder exercises the ladder directly: label cache
// first, then the running majority, and failure when nothing has been
// seen yet.
func TestBridgeFallbackLadder(t *testing.T) {
	env := newEnv(t, 72, 4)
	cfg := fault.Config{FailRate: 1, Seed: 1} // everything fails, no retries
	chain := fault.Build(env.cls, cfg, nil)
	fb := newFallibleBridge(context.Background(), chain, env.st, env.cls, nil)
	fb.beginTuple()

	// Nothing seen yet: the ladder has no rung and the tuple fails.
	if y := fb.Predict(env.tuples[0]); y != 0 {
		t.Errorf("empty-ladder fallback=%d, want 0", y)
	}
	if fb.status() != StatusFailed {
		t.Errorf("status=%v, want failed", fb.status())
	}

	// Seed the caches through a success, then fail the same row: the
	// exact-row cache answers and the tuple is only degraded.
	fb.beginTuple()
	fb.noteSuccess(env.tuples[1], 1)
	if y := fb.Predict(env.tuples[1]); y != 1 {
		t.Errorf("cached fallback=%d, want 1", y)
	}
	if fb.status() != StatusDegraded {
		t.Errorf("status=%v, want degraded", fb.status())
	}

	// A row never seen exactly falls through to the majority class.
	fb.beginTuple()
	fb.noteSuccess(env.tuples[2], 1)
	if y := fb.Predict(env.tuples[3]); y != 1 {
		t.Errorf("majority fallback=%d, want 1", y)
	}
	if fb.status() != StatusDegraded {
		t.Errorf("status=%v, want degraded", fb.status())
	}
}

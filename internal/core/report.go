package core

import (
	"time"

	"shahin/internal/cache"
	"shahin/internal/explain"
)

// Explanation is the per-tuple output: an attribution for LIME/SHAP or a
// rule for Anchor (exactly one field is set).
type Explanation struct {
	Attribution *explain.Attribution
	Rule        *explain.Rule
}

// Report captures the cost accounting of one run: wall time, classifier
// invocations, reuse, and the housekeeping overhead the paper's Figure 5
// measures (itemset mining plus pooled-perturbation retrieval).
type Report struct {
	Tuples int

	// WallTime is the end-to-end time of the run, including pool
	// construction.
	WallTime time.Duration
	// OverheadTime is the housekeeping share: frequent itemset mining and
	// retrieval of pooled perturbations (not their generation or
	// labelling, which replace baseline work rather than adding to it).
	OverheadTime time.Duration

	// Invocations is the total classifier Predict calls, including pool
	// pre-labelling.
	Invocations int64
	// PoolInvocations is the subset of Invocations spent labelling pooled
	// perturbations up front.
	PoolInvocations int64
	// ReusedSamples counts labelled perturbations served from the pool
	// instead of fresh classifier calls.
	ReusedSamples int64

	// FrequentItemsets is how many itemsets received pooled perturbations.
	FrequentItemsets int
	// Cache summarises the perturbation repository at the end of the run.
	Cache cache.Stats
}

// OverheadFraction returns OverheadTime / WallTime (the paper's Figure 5
// metric), 0 for an empty run.
func (r *Report) OverheadFraction() float64 {
	if r.WallTime <= 0 {
		return 0
	}
	return float64(r.OverheadTime) / float64(r.WallTime)
}

// PerTuple returns the average wall time per explanation.
func (r *Report) PerTuple() time.Duration {
	if r.Tuples == 0 {
		return 0
	}
	return r.WallTime / time.Duration(r.Tuples)
}

// Result is the output of a batch-style run over a set of tuples.
type Result struct {
	Explanations []Explanation
	Report       Report
}

package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"shahin/internal/cache"
	"shahin/internal/explain"
	"shahin/internal/obs"
)

// Explanation is the per-tuple output: an attribution for LIME/SHAP or a
// rule for Anchor (exactly one field is set). Status reports whether the
// explanation was answered cleanly; its zero value (StatusOK) marshals
// away so infallible runs serialise exactly as before the failure model.
type Explanation struct {
	Attribution *explain.Attribution
	Rule        *explain.Rule
	Status      Status `json:",omitempty"`
}

// Report captures the cost accounting of one run: wall time, classifier
// invocations, reuse, and the housekeeping overhead the paper's Figure 5
// measures (itemset mining plus pooled-perturbation retrieval).
type Report struct {
	Tuples int

	// WallTime is the end-to-end time of the run, including pool
	// construction.
	WallTime time.Duration
	// OverheadTime is the housekeeping share: frequent itemset mining and
	// retrieval of pooled perturbations (not their generation or
	// labelling, which replace baseline work rather than adding to it).
	OverheadTime time.Duration

	// MineTime, PoolTime, and ExplainTime break the wall time into
	// pipeline stages: frequent-itemset mining (re-mining for streams),
	// pool construction including perturbation pre-labelling, and the
	// per-tuple explain loop.
	MineTime    time.Duration
	PoolTime    time.Duration
	ExplainTime time.Duration

	// Invocations is the total classifier Predict calls, including pool
	// pre-labelling.
	Invocations int64
	// PoolInvocations is the subset of Invocations spent labelling pooled
	// perturbations up front.
	PoolInvocations int64
	// ReusedSamples counts labelled perturbations served from the pool
	// instead of fresh classifier calls.
	ReusedSamples int64

	// FrequentItemsets is how many itemsets received pooled perturbations.
	FrequentItemsets int
	// Cache summarises the perturbation repository at the end of the run.
	Cache cache.Stats

	// NodeVisits counts tree nodes walked by the exact TreeSHAP path
	// recursion (0 for sampled explainers) — the exact path's unit of
	// work, mirroring what ReusedSamples measures for the pooled paths.
	NodeVisits int64
	// ExactFallback records that the run requested the ExactSHAP
	// explainer but the backend did not qualify (fault chain installed,
	// or the classifier is not an owned tree ensemble) and the run
	// silently proceeded with KernelSHAP. An exact_fallback event with
	// the reason accompanies it when a recorder is attached.
	ExactFallback bool

	// Retries counts classifier re-attempts after transient failures.
	Retries int64
	// Degraded counts tuples answered at least partly by the degradation
	// ladder (label cache, pooled labels, majority class); Failed counts
	// tuples cancelled, never attempted, or unanswerable by any fallback.
	Degraded int
	Failed   int

	// AllocBytes / AllocObjects is the heap allocation activity during
	// the run, measured from runtime/metrics deltas around the run when
	// a recorder is attached (zero — and omitted from JSON — otherwise,
	// so uninstrumented runs serialise byte-identically). The counters
	// are process-wide: on the gate-serialised flush paths that is the
	// run's own work plus whatever background goroutines allocate, which
	// is the documented precision of these columns.
	AllocBytes   int64
	AllocObjects int64
	// PoolAllocBytes / PoolAllocObjects covers the mine + pool-build
	// stage; ExplainAllocBytes / ExplainAllocObjects the per-tuple
	// explain loop — the allocation mirror of MineTime+PoolTime and
	// ExplainTime.
	PoolAllocBytes      int64
	PoolAllocObjects    int64
	ExplainAllocBytes   int64
	ExplainAllocObjects int64
}

// AllocPerTuple returns the average heap bytes and objects allocated
// per explanation (zero for an empty or uninstrumented run) — the
// steady-state number the zero-alloc perturbation work gates on.
func (r *Report) AllocPerTuple() (bytes, objects float64) {
	if r.Tuples == 0 {
		return 0, 0
	}
	n := float64(r.Tuples)
	return float64(r.AllocBytes) / n, float64(r.AllocObjects) / n
}

// OverheadFraction returns OverheadTime / WallTime (the paper's Figure 5
// metric), 0 for an empty run.
func (r *Report) OverheadFraction() float64 {
	if r.WallTime <= 0 {
		return 0
	}
	return float64(r.OverheadTime) / float64(r.WallTime)
}

// PerTuple returns the average wall time per explanation.
func (r *Report) PerTuple() time.Duration {
	if r.Tuples == 0 {
		return 0
	}
	return r.WallTime / time.Duration(r.Tuples)
}

// ReuseRate returns the fraction of labelled perturbations served from
// the pool instead of fresh classifier calls:
// ReusedSamples / (ReusedSamples + Invocations), 0 with no traffic.
func (r *Report) ReuseRate() float64 {
	total := r.ReusedSamples + r.Invocations
	if total == 0 {
		return 0
	}
	return float64(r.ReusedSamples) / float64(total)
}

// reportJSON is the MarshalJSON shape: flat snake_case fields with the
// derived metrics (per-tuple time, reuse rate, overhead fraction)
// pre-computed, so dashboards need no duration arithmetic. Every
// duration appears three ways: milliseconds (dashboards), exact
// nanoseconds (lossless round-trips — the _ns fields are what
// UnmarshalJSON reads back), and a human-readable string ("1.284s").
type reportJSON struct {
	Tuples           int         `json:"tuples"`
	WallMS           float64     `json:"wall_ms"`
	WallNS           int64       `json:"wall_ns"`
	Wall             string      `json:"wall"`
	PerTupleMS       float64     `json:"per_tuple_ms"`
	PerTuple         string      `json:"per_tuple"`
	OverheadMS       float64     `json:"overhead_ms"`
	OverheadNS       int64       `json:"overhead_ns"`
	Overhead         string      `json:"overhead"`
	OverheadFraction float64     `json:"overhead_fraction"`
	MineMS           float64     `json:"mine_ms"`
	MineNS           int64       `json:"mine_ns"`
	Mine             string      `json:"mine"`
	PoolMS           float64     `json:"pool_ms"`
	PoolNS           int64       `json:"pool_ns"`
	Pool             string      `json:"pool"`
	ExplainMS        float64     `json:"explain_ms"`
	ExplainNS        int64       `json:"explain_ns"`
	Explain          string      `json:"explain"`
	Invocations      int64       `json:"invocations"`
	PoolInvocations  int64       `json:"pool_invocations"`
	ReusedSamples    int64       `json:"reused_samples"`
	ReuseRate        float64     `json:"reuse_rate"`
	FrequentItemsets int         `json:"frequent_itemsets"`
	Cache            cache.Stats `json:"cache"`
	CacheHitRate     float64     `json:"cache_hit_rate"`
	NodeVisits       int64       `json:"node_visits,omitempty"`
	ExactFallback    bool        `json:"exact_fallback,omitempty"`
	Retries          int64       `json:"retries,omitempty"`
	Degraded         int         `json:"degraded_tuples,omitempty"`
	Failed           int         `json:"failed_tuples,omitempty"`
	// Allocation columns (omitted when the run was uninstrumented, so
	// pre-existing reports stay byte-identical). The per-tuple bytes
	// figure is derived on marshal and not read back.
	AllocBytes          int64   `json:"alloc_bytes,omitempty"`
	AllocObjects        int64   `json:"alloc_objects,omitempty"`
	AllocBytesPerTuple  float64 `json:"alloc_bytes_per_tuple,omitempty"`
	PoolAllocBytes      int64   `json:"pool_alloc_bytes,omitempty"`
	PoolAllocObjects    int64   `json:"pool_alloc_objects,omitempty"`
	ExplainAllocBytes   int64   `json:"explain_alloc_bytes,omitempty"`
	ExplainAllocObjects int64   `json:"explain_alloc_objects,omitempty"`
}

// MarshalJSON implements json.Marshaler with the flat reportJSON shape.
func (r Report) MarshalJSON() ([]byte, error) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return json.Marshal(reportJSON{
		Tuples:           r.Tuples,
		WallMS:           ms(r.WallTime),
		WallNS:           r.WallTime.Nanoseconds(),
		Wall:             r.WallTime.String(),
		PerTupleMS:       ms(r.PerTuple()),
		PerTuple:         r.PerTuple().String(),
		OverheadMS:       ms(r.OverheadTime),
		OverheadNS:       r.OverheadTime.Nanoseconds(),
		Overhead:         r.OverheadTime.String(),
		OverheadFraction: r.OverheadFraction(),
		MineMS:           ms(r.MineTime),
		MineNS:           r.MineTime.Nanoseconds(),
		Mine:             r.MineTime.String(),
		PoolMS:           ms(r.PoolTime),
		PoolNS:           r.PoolTime.Nanoseconds(),
		Pool:             r.PoolTime.String(),
		ExplainMS:        ms(r.ExplainTime),
		ExplainNS:        r.ExplainTime.Nanoseconds(),
		Explain:          r.ExplainTime.String(),
		Invocations:      r.Invocations,
		PoolInvocations:  r.PoolInvocations,
		ReusedSamples:    r.ReusedSamples,
		ReuseRate:        r.ReuseRate(),
		FrequentItemsets: r.FrequentItemsets,
		Cache:            r.Cache,
		CacheHitRate:     r.Cache.HitRate(),
		NodeVisits:       r.NodeVisits,
		ExactFallback:    r.ExactFallback,
		Retries:          r.Retries,
		Degraded:         r.Degraded,
		Failed:           r.Failed,
		AllocBytes:       r.AllocBytes,
		AllocObjects:     r.AllocObjects,
		AllocBytesPerTuple: func() float64 {
			b, _ := r.AllocPerTuple()
			return b
		}(),
		PoolAllocBytes:      r.PoolAllocBytes,
		PoolAllocObjects:    r.PoolAllocObjects,
		ExplainAllocBytes:   r.ExplainAllocBytes,
		ExplainAllocObjects: r.ExplainAllocObjects,
	})
}

// UnmarshalJSON implements json.Unmarshaler: the exact _ns duration
// fields and the raw counts reconstruct the Report losslessly (derived
// fields — rates, fractions, human strings — are recomputed on demand),
// so ledgers and stored reports round-trip.
func (r *Report) UnmarshalJSON(data []byte) error {
	var j reportJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*r = Report{
		Tuples:           j.Tuples,
		WallTime:         time.Duration(j.WallNS),
		OverheadTime:     time.Duration(j.OverheadNS),
		MineTime:         time.Duration(j.MineNS),
		PoolTime:         time.Duration(j.PoolNS),
		ExplainTime:      time.Duration(j.ExplainNS),
		Invocations:      j.Invocations,
		PoolInvocations:  j.PoolInvocations,
		ReusedSamples:    j.ReusedSamples,
		FrequentItemsets: j.FrequentItemsets,
		Cache:            j.Cache,
		NodeVisits:       j.NodeVisits,
		ExactFallback:    j.ExactFallback,
		Retries:          j.Retries,
		Degraded:         j.Degraded,
		Failed:           j.Failed,

		AllocBytes:          j.AllocBytes,
		AllocObjects:        j.AllocObjects,
		PoolAllocBytes:      j.PoolAllocBytes,
		PoolAllocObjects:    j.PoolAllocObjects,
		ExplainAllocBytes:   j.ExplainAllocBytes,
		ExplainAllocObjects: j.ExplainAllocObjects,
	}
	return nil
}

// String renders the human-readable end-of-run summary the CLIs print.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d explanations in %v (%.2f ms/tuple)",
		r.Tuples, r.WallTime.Round(time.Millisecond),
		float64(r.PerTuple().Microseconds())/1000)
	if r.MineTime > 0 || r.PoolTime > 0 || r.ExplainTime > 0 {
		fmt.Fprintf(&b, "\nstages: mine %v · pool pre-label %v · explain %v; housekeeping overhead %.1f%%",
			r.MineTime.Round(time.Microsecond), r.PoolTime.Round(time.Microsecond),
			r.ExplainTime.Round(time.Microsecond), 100*r.OverheadFraction())
	}
	fmt.Fprintf(&b, "\nclassifier invocations: %d (%d pre-labelling the pool); %d samples reused (%.1f%% reuse)",
		r.Invocations, r.PoolInvocations, r.ReusedSamples, 100*r.ReuseRate())
	if r.FrequentItemsets > 0 {
		fmt.Fprintf(&b, "\npool: %d frequent itemsets", r.FrequentItemsets)
		if total := r.Cache.Hits + r.Cache.Misses; total > 0 || r.Cache.Entries > 0 {
			fmt.Fprintf(&b, "; cache: %d entries, %s used", r.Cache.Entries, formatBytes(r.Cache.BytesUsed))
			if r.Cache.Budget > 0 {
				fmt.Fprintf(&b, " of %s", formatBytes(r.Cache.Budget))
			}
			fmt.Fprintf(&b, ", %.1f%% hit rate, %d evictions",
				100*r.Cache.HitRate(), r.Cache.Evictions)
		}
	}
	if r.NodeVisits > 0 {
		fmt.Fprintf(&b, "\nexact path: %d tree-node visits, zero perturbation sampling", r.NodeVisits)
	}
	if r.ExactFallback {
		b.WriteString("\nexact path unavailable: fell back to KernelSHAP")
	}
	if r.Retries > 0 || r.Degraded > 0 || r.Failed > 0 {
		fmt.Fprintf(&b, "\nrobustness: %d retries · %d degraded tuples · %d failed tuples",
			r.Retries, r.Degraded, r.Failed)
	}
	if r.AllocBytes > 0 {
		perBytes, perObjs := r.AllocPerTuple()
		fmt.Fprintf(&b, "\nallocation: %s total (%s/tuple, %.0f objects/tuple); pool %s · explain %s",
			formatBytes(r.AllocBytes), formatBytes(int64(perBytes)), perObjs,
			formatBytes(r.PoolAllocBytes), formatBytes(r.ExplainAllocBytes))
	}
	return b.String()
}

// formatBytes renders a byte count with a binary unit suffix.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Result is the output of a batch-style run over a set of tuples.
type Result struct {
	Explanations []Explanation
	Report       Report
	// Breakdowns is the per-tuple latency attribution aligned with
	// Explanations (pool_sample / classify / solve); nil when the run
	// had no recorder. It lives beside Explanations rather than on them
	// so explanation JSON stays byte-identical across same-seed runs.
	Breakdowns []obs.StageBreakdown
	// Flush is the warm-flush sequence number that produced this result
	// (0 for plain batch runs); the serving layer stamps it onto request
	// spans so traces join the shared flush fan-in.
	Flush int
}

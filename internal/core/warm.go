package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"shahin/internal/cache"
	"shahin/internal/dataset"
	"shahin/internal/explain"
	"shahin/internal/explain/anchor"
	"shahin/internal/explain/exact"
	"shahin/internal/fim"
	"shahin/internal/obs"
	"shahin/internal/perturb"
	"shahin/internal/rf"
)

// Warm is the serving variant of Shahin: a long-lived explainer whose
// frequent-itemset pool, pre-labelled perturbations, and cache persist
// across ExplainAllCtx calls. Where Batch mines and materialises a pool
// per call and Stream pays per-tuple bookkeeping, Warm amortises one
// pool across many small flushes — the shape a micro-batching
// explanation service produces — so a tuple arriving in flush 40 reuses
// samples labelled for flush 1.
//
// The pool is re-mined when stale: after StaleAfter tuples have been
// explained since the last mine, the next flush re-mines over the
// window of recently seen tuples, materialises newly frequent itemsets,
// and evicts ones that fell out of fashion (same policy as the
// streaming variant, §3.5 of the paper).
//
// ExplainAllCtx is safe for concurrent use; flushes serialise on an
// internal admission gate so they never interleave and the same
// sequence of flush compositions reproduces byte-identical
// explanations. The gate is a channel rather than a mutex so a caller
// waiting for the flush slot honours cancellation, and so the cheap
// accessors (Report, Flushes, Remines) never block behind a running
// flush — they share a separate short-hold mutex with the counters.
type Warm struct {
	opts       Options
	st         *dataset.Stats
	cls        rf.Classifier
	staleAfter int
	maxPooled  int

	// gate admits one flush at a time (capacity-1 channel; send to
	// acquire, receive to release). Everything the flush path mutates —
	// the repositories and the mining state below — is owned by the
	// gate holder.
	gate   chan struct{}
	repo   *cache.Repo
	sh     *anchor.Shared // Anchor-only persistent shared state
	sets   []dataset.Itemset
	window []dataset.Itemset // itemised tuples since the last re-mine
	mined  bool
	since  int // tuples explained since the last re-mine

	// mu guards only the cross-flush counters, held for nanoseconds at
	// a time so accessors stay responsive mid-flush.
	mu      sync.Mutex
	flushes int
	remines int
	cum     Report

	// exactFallback records a construction-time downgrade of an
	// ExactSHAP request to KernelSHAP (stamped onto every flush report).
	exactFallback bool
	// exactMu guards the lazily built per-request exact engine serving
	// layers use through ExplainExact (separate from the flush gate so
	// single-tuple exact answers never queue behind a flush).
	exactMu  sync.Mutex
	exactEng *exact.Explainer
	exactCls *rf.Counting
}

// DefaultStaleAfter is the re-mine staleness threshold (in explained
// tuples) a Warm explainer uses when the caller passes staleAfter <= 0.
const DefaultStaleAfter = 2048

// NewWarm creates a warm explainer over the training statistics and a
// black-box classifier. staleAfter is the number of tuples explained
// between pool re-mines (<= 0 selects DefaultStaleAfter).
func NewWarm(st *dataset.Stats, cls rf.Classifier, opts Options, staleAfter int) (*Warm, error) {
	if st == nil || cls == nil {
		return nil, fmt.Errorf("core: NewWarm needs stats and a classifier")
	}
	opts = opts.withDefaults()
	opts, fellBack := applyExactFallback(opts, cls)
	if staleAfter <= 0 {
		staleAfter = DefaultStaleAfter
	}
	w := &Warm{
		opts:       opts,
		st:         st,
		cls:        cls,
		staleAfter: staleAfter,
		gate:       make(chan struct{}, 1),
		repo:       cache.NewRepo(opts.CacheBytes),
	}
	w.exactFallback = fellBack
	w.repo.SetHooks(cacheHooks(opts.Recorder))
	// Same resource rule as the other variants: cap how many itemsets get
	// materialised so pool construction never swamps a re-mine window.
	w.maxPooled = opts.MaxItemsets
	if cap := poolBudget(opts, staleAfter) / opts.Tau; cap < w.maxPooled {
		if cap < 10 {
			cap = 10
		}
		w.maxPooled = cap
	}
	if opts.Explainer == Anchor {
		w.sh = anchor.NewShared(cls.NumClasses(), opts.CacheBytes)
		w.sh.Repo.SetHooks(cacheHooks(opts.Recorder))
	}
	return w, nil
}

// ExplainAll explains one flush of tuples against the warm pool.
func (w *Warm) ExplainAll(tuples [][]float64) (*Result, error) {
	return w.ExplainAllCtx(context.Background(), tuples)
}

// ExplainAllCtx explains one flush of tuples, reusing the pool
// materialised by earlier flushes and re-mining it first if stale.
// Cancellation semantics match Batch.ExplainAllCtx: a cancelled ctx
// stops the flush between predictions, unattempted tuples carry
// StatusFailed, and the partial Result is returned alongside ctx.Err().
// The returned Report covers this flush only; Report() accumulates
// across flushes.
func (w *Warm) ExplainAllCtx(ctx context.Context, tuples [][]float64) (*Result, error) {
	if len(tuples) == 0 {
		return nil, fmt.Errorf("core: empty flush")
	}
	// Acquire the flush slot; a caller cancelled before admission
	// leaves without touching any state — it does not count as a flush
	// — but still honours the partial-result contract: every tuple
	// comes back StatusFailed alongside ctx.Err().
	if err := ctx.Err(); err != nil {
		return unadmittedResult(tuples), err
	}
	select {
	case w.gate <- struct{}{}:
	case <-ctx.Done():
		return unadmittedResult(tuples), ctx.Err()
	}
	defer func() { <-w.gate }()

	opts := w.opts
	start := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	w.mu.Lock()
	w.flushes++
	flush := w.flushes
	w.mu.Unlock()
	// Every flush gets a fresh deterministic RNG derived from the flush
	// index, so the same sequence of flush compositions reproduces
	// byte-identical explanations regardless of wall-clock timing.
	rng := rand.New(rand.NewSource(opts.Seed + 104729*int64(flush)))
	rec := opts.Recorder
	// Allocation attribution mirrors the stage clocks: one mark around
	// the whole flush, one around each stage (remine takes its own).
	var runMark obs.AllocMark
	if rec != nil {
		runMark = obs.NowAllocs()
	}
	root := rec.StartSpan(obs.StageWarmFlush)
	root.SetAttr("tuples", len(tuples))
	root.SetAttr("flush", flush)
	defer root.End()
	if tc, ok := obs.TraceFromContext(ctx); ok {
		c := tc.Child()
		root.SetTrace(c.TraceID, c.SpanID, tc.SpanID)
	}
	// The flush span rides the context so the fault chain (retries,
	// breaker transitions, degradation rungs) can attach child spans.
	ctx = obs.ContextWithSpan(ctx, root)
	fb := buildBridge(ctx, opts, w.st, w.cls)
	eng := newEngineBridge(opts, w.st, w.cls, w.window, rng, fb)

	// Track the incoming tuples for the next re-mine window. The exact
	// path never mines or pools, so it skips the window bookkeeping too.
	if opts.Explainer != ExactSHAP {
		for _, t := range tuples {
			w.window = append(w.window, append(dataset.Itemset(nil), w.st.ItemizeRow(t, nil)...))
		}
		if max := 4 * w.staleAfter; len(w.window) > max {
			w.window = append(w.window[:0:0], w.window[len(w.window)-max:]...)
		}
	}

	rep := Report{Tuples: len(tuples), ExactFallback: w.exactFallback}
	if opts.Explainer != ExactSHAP && (!w.mined || w.since >= w.staleAfter) {
		w.remine(ctx, eng, rng, root, &rep)
	}
	if fb != nil {
		if w.sh != nil {
			fb.setPool(w.sh.Repo, w.sets)
		} else {
			fb.setPool(w.repo, w.sets)
		}
	}

	// Explain the flush against the (now fresh enough) warm pool.
	explainSpan := root.Child(obs.StageExplain)
	explainStart := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	var explainMark obs.AllocMark
	if rec != nil {
		explainMark = obs.NowAllocs()
	}
	out := make([]Explanation, len(tuples))
	var bds []obs.StageBreakdown
	if rec != nil {
		bds = make([]obs.StageBreakdown, len(tuples))
	}
	poolInv := rep.PoolInvocations
	if w.sh == nil && opts.Workers > 1 {
		if err := explainParallel(ctx, w.st, w.cls, tuples, out, bds, w.repo.Snapshot(), w.sets, opts, &rep, fb); err != nil {
			return nil, err
		}
		rep.Invocations += poolInv
	} else {
		if err := w.explainSerial(ctx, eng, tuples, out, bds, &rep); err != nil {
			return nil, err
		}
	}
	rep.ExplainTime = time.Since(explainStart)
	if rec != nil {
		d := explainMark.Since()
		rep.ExplainAllocBytes, rep.ExplainAllocObjects = d.Bytes, d.Objects
	}
	explainSpan.End()
	w.since += len(tuples)

	if w.sh != nil {
		rep.Cache = w.sh.Repo.Stats()
	} else {
		rep.Cache = w.repo.Stats()
	}
	rep.FrequentItemsets = len(w.sets)
	for i := range out {
		switch out[i].Status {
		case StatusDegraded:
			rep.Degraded++
		case StatusFailed:
			rep.Failed++
		}
	}
	if fb != nil {
		rep.Retries = fb.chain.Stats().Retries
	}
	rep.WallTime = time.Since(start)
	if rec != nil {
		d := runMark.Since()
		rep.AllocBytes, rep.AllocObjects = d.Bytes, d.Objects
		// Pool occupancy is owned by the gate holder, so the flush sets
		// the gauge itself rather than having scrapes contend for the
		// gate the way PooledItemsets does.
		rec.Gauge(obs.GaugeWarmPooledItemsets).Set(int64(sampleRepo(w.repo, w.sh).Len()))
	}
	w.accumulate(rep)
	return &Result{Explanations: out, Report: rep, Breakdowns: bds, Flush: flush}, ctx.Err()
}

// unadmittedResult is the partial result for a flush cancelled before
// it acquired the flush slot: nothing was attempted, so every tuple is
// StatusFailed and no warm state was touched.
func unadmittedResult(tuples [][]float64) *Result {
	out := make([]Explanation, len(tuples))
	for i := range out {
		out[i].Status = StatusFailed
	}
	return &Result{
		Explanations: out,
		Report:       Report{Tuples: len(tuples), Failed: len(tuples)},
	}
}

// explainSerial runs the per-tuple phase on the caller's goroutine
// against the live repository (the path Anchor and Workers == 1 take).
// bds, when non-nil, receives each tuple's latency attribution.
func (w *Warm) explainSerial(ctx context.Context, eng *engine, tuples [][]float64, out []Explanation, bds []obs.StageBreakdown, rep *Report) error {
	opts := w.opts
	rec := opts.Recorder
	var (
		tupleHist *obs.Histogram
		doneCtr   *obs.Counter
	)
	if rec != nil {
		tupleHist = rec.Histogram(obs.HistExplainTuple)
		doneCtr = rec.Counter(obs.CounterTuplesDone)
	}
	var pool *itemsetPool
	if w.sh == nil && eng.exact == nil {
		pool = newItemsetPool(w.repo, w.sets, rec)
	}
	for i, t := range tuples {
		if ctx.Err() != nil {
			for j := i; j < len(tuples); j++ {
				out[j].Status = StatusFailed
			}
			break
		}
		var pl explain.Pool
		if pool != nil {
			pool.beginTuple()
			pl = pool
		}
		eng.beginTuple()
		var (
			tupleStart time.Time
			inv0       int64
			nv0        int64
			cls0       time.Duration
			anchorHits int64
		)
		if tupleHist != nil {
			tupleStart = time.Now() //shahinvet:allow walltime — per-tuple latency feeds the obs histogram
			inv0 = eng.invocations()
			nv0 = eng.nodeVisits()
			cls0 = eng.classifyTime()
			if w.sh != nil {
				anchorHits = w.sh.Repo.Stats().Hits
			}
		}
		exp, err := eng.explain(t, pl, w.sh)
		if err != nil {
			return fmt.Errorf("core: explaining tuple %d: %w", i, err)
		}
		exp.Status = eng.tupleStatus()
		if tupleHist != nil {
			dur := time.Since(tupleStart)
			tupleHist.Observe(dur)
			doneCtr.Inc()
			ev := obs.Event{
				Type: obs.EventTupleExplained, Tuple: i,
				Explainer: opts.Explainer.String(),
				Fresh:     eng.invocations() - inv0,
				DurMS:     float64(dur) / float64(time.Millisecond),
			}
			if eng.exact != nil {
				ev.Type = obs.EventExactShap
				ev.NodeVisits = eng.nodeVisits() - nv0
			} else if pool != nil {
				ev.Pooled, ev.CacheHits, ev.Itemset = pool.provenance()
			} else if w.sh != nil {
				ev.CacheHits = w.sh.Repo.Stats().Hits - anchorHits
			}
			if exp.Status != StatusOK {
				ev.Status = exp.Status.String()
			}
			bd := tupleBreakdown(dur, eng.classifyTime()-cls0, pool)
			if bds != nil {
				bds[i] = bd
			}
			rec.ObserveStages(bd)
			ev.Stages = &bd
			rec.Emit(ev)
		}
		out[i] = exp
	}
	rep.Invocations += eng.invocations()
	rep.NodeVisits += eng.nodeVisits()
	if pool != nil {
		rep.OverheadTime += pool.retrieval
		rep.ReusedSamples = pool.reused
	}
	return nil
}

// remine recomputes the frequent itemsets over the recent-tuple window,
// materialises newly frequent itemsets through eng (so pool labels count
// toward the invocation ledger), evicts no-longer-frequent entries, and
// resets the staleness clock.
func (w *Warm) remine(ctx context.Context, eng *engine, rng *rand.Rand, root *obs.Span, rep *Report) {
	opts := w.opts
	rec := opts.Recorder
	var poolMark obs.AllocMark
	if rec != nil {
		poolMark = obs.NowAllocs()
	}
	mineSpan := root.Child(obs.StageMine)
	mineStart := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	rows := w.window
	if n := fim.SampleSize(len(rows)); n < len(rows) {
		idx := rng.Perm(len(rows))[:n]
		sort.Ints(idx)
		sampled := make([]dataset.Itemset, n)
		for i, j := range idx {
			sampled[i] = rows[j]
		}
		rows = sampled
	}
	mined, err := fim.Mine(rows, fim.Config{
		MinSupport:  effectiveSupport(opts.MinSupport, len(rows)),
		MaxLen:      opts.MaxItemsetLen,
		MaxPerLevel: 4 * opts.MaxItemsets,
	})
	rep.MineTime = time.Since(mineStart)
	rep.OverheadTime += rep.MineTime
	mineSpan.End()
	if err != nil {
		// Mining over a non-empty window cannot fail with a validated
		// config; keep the previous pool if it somehow does.
		return
	}
	frequent := mined.Frequent
	if len(frequent) > w.maxPooled {
		frequent = frequent[:w.maxPooled]
	}
	mineSpan.SetAttr("frequent_itemsets", len(frequent))

	repo := sampleRepo(w.repo, w.sh)
	keep := make(map[dataset.ItemsetKey]bool, len(frequent))
	for _, m := range frequent {
		keep[m.Set.Key()] = true
	}
	for _, key := range repo.Keys() {
		if !keep[key] {
			repo.Delete(key)
		}
	}

	poolSpan := root.Child(obs.StagePoolBuild)
	preLabelSpan := poolSpan.Child(obs.StagePreLabel)
	poolStart := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	inv0 := eng.invocations()
	gen := perturb.NewGenerator(w.st, rng)
	sets := make([]dataset.Itemset, 0, len(frequent))
	materialised := 0
	for _, m := range frequent {
		if ctx.Err() != nil {
			break
		}
		if !repo.Contains(m.Set.Key()) {
			w.materialize(eng, gen, m.Set, m.Support)
			materialised++
		}
		sets = append(sets, m.Set)
	}
	rep.PoolTime = time.Since(poolStart)
	rep.PoolInvocations = eng.invocations() - inv0
	if rec != nil {
		d := poolMark.Since()
		rep.PoolAllocBytes, rep.PoolAllocObjects = d.Bytes, d.Objects
	}
	preLabelSpan.End()
	poolSpan.SetAttr("pool_invocations", rep.PoolInvocations)
	poolSpan.End()
	rec.Counter(obs.CounterPoolInvocations).Add(rep.PoolInvocations)
	rec.Emit(obs.Event{
		Type: obs.EventRemine, Tuple: -1, Itemsets: len(sets),
		Fresh: rep.PoolInvocations,
		DurMS: float64(rep.MineTime+rep.PoolTime) / float64(time.Millisecond),
	})
	if materialised > 0 {
		rec.Emit(obs.Event{
			Type: obs.EventPoolBuild, Tuple: -1, Itemsets: materialised,
			Fresh: rep.PoolInvocations, DurMS: float64(rep.PoolTime) / float64(time.Millisecond),
		})
	}
	w.sets = sets
	w.window = w.window[:0]
	w.since = 0
	w.mined = true
	w.mu.Lock()
	w.remines++
	w.mu.Unlock()
}

// materialize generates and labels τ perturbations for one itemset in
// the persistent repository (and, for Anchor, the invariant cache).
func (w *Warm) materialize(eng *engine, gen *perturb.Generator, set dataset.Itemset, support float64) {
	tau := w.opts.Tau
	var setStart time.Time
	rec := w.opts.Recorder
	if rec != nil {
		setStart = time.Now() //shahinvet:allow walltime — per-itemset pre-label timing feeds the obs event log
	}
	inv0 := eng.invocations()
	if w.sh != nil {
		rr, _ := w.sh.Inv.Lookup(set.Key())
		hist := make([]int, eng.cls.NumClasses())
		samples := make([]perturb.Sample, tau)
		for j := range samples {
			s := gen.ForItemset(set)
			s.Label = eng.cls.Predict(s.Row)
			hist[s.Label]++
			samples[j] = s
		}
		rr.AddTrials(hist)
		rr.Coverage = support
		rr.HasCoverage = true
		w.sh.Repo.Put(set.Key(), samples)
	} else {
		samples := make([]perturb.Sample, tau)
		for j := range samples {
			s := gen.ForItemset(set)
			s.Label = eng.cls.Predict(s.Row)
			samples[j] = s
		}
		w.repo.Put(set.Key(), samples)
	}
	if rec != nil {
		rec.Emit(obs.Event{
			Type: obs.EventPreLabel, Tuple: -1, Itemset: set.String(),
			Fresh: eng.invocations() - inv0,
			DurMS: float64(time.Since(setStart)) / float64(time.Millisecond),
		})
	}
}

// accumulate folds one flush report into the cumulative one.
func (w *Warm) accumulate(rep Report) {
	w.mu.Lock()
	defer w.mu.Unlock()
	c := &w.cum
	c.Tuples += rep.Tuples
	c.WallTime += rep.WallTime
	c.OverheadTime += rep.OverheadTime
	c.MineTime += rep.MineTime
	c.PoolTime += rep.PoolTime
	c.ExplainTime += rep.ExplainTime
	c.Invocations += rep.Invocations
	c.PoolInvocations += rep.PoolInvocations
	c.ReusedSamples += rep.ReusedSamples
	c.FrequentItemsets = rep.FrequentItemsets
	c.Cache = rep.Cache
	c.NodeVisits += rep.NodeVisits
	c.ExactFallback = c.ExactFallback || rep.ExactFallback
	c.Retries += rep.Retries
	c.Degraded += rep.Degraded
	c.Failed += rep.Failed
	c.AllocBytes += rep.AllocBytes
	c.AllocObjects += rep.AllocObjects
	c.PoolAllocBytes += rep.PoolAllocBytes
	c.PoolAllocObjects += rep.PoolAllocObjects
	c.ExplainAllocBytes += rep.ExplainAllocBytes
	c.ExplainAllocObjects += rep.ExplainAllocObjects
}

// Report returns the cost accounting accumulated across every flush.
func (w *Warm) Report() Report {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cum
}

// Flushes reports how many ExplainAllCtx calls have run.
func (w *Warm) Flushes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushes
}

// Remines reports how many staleness-triggered pool re-mines have run.
func (w *Warm) Remines() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.remines
}

// NumAttrs reports the tuple width the explainer expects — the number
// of attributes of the training statistics it was built over.
func (w *Warm) NumAttrs() int { return w.st.NumAttrs() }

// PooledItemsets reports how many itemsets currently hold materialised
// perturbations. The repositories are owned by the flush gate, so this
// accessor waits for any in-flight flush to finish.
func (w *Warm) PooledItemsets() int {
	w.gate <- struct{}{}
	defer func() { <-w.gate }()
	return sampleRepo(w.repo, w.sh).Len()
}

// Kind reports the explainer kind this warm explainer was built with
// (after any construction-time exact fallback).
func (w *Warm) Kind() Kind { return w.opts.Explainer }

// ExactAvailable reports whether single-tuple exact TreeSHAP answers
// are legal for this explainer's backend: no fault chain and a
// classifier that unwraps to an owned tree ensemble. Serving layers
// check it before routing a request to ExplainExact.
func (w *Warm) ExactAvailable() bool {
	return w.opts.Fault == nil && exact.Supported(w.cls)
}

// ExplainExact answers one tuple with the exact TreeSHAP fast path,
// bypassing the flush gate, the batching queue, and the perturbation
// pool entirely. The exact engine is built lazily on first use and
// reused under its own lock. It returns the attribution and the number
// of tree nodes the recursion visited (the exact path's provenance
// unit); the tuple and its single classifier invocation are folded into
// the cumulative Report. Callers must check ExactAvailable first.
func (w *Warm) ExplainExact(t []float64) (*explain.Attribution, int64, error) {
	w.exactMu.Lock()
	defer w.exactMu.Unlock()
	if w.exactEng == nil {
		cnt := rf.NewCounting(w.cls)
		ex, err := exact.New(w.st, cnt, w.opts.Exact)
		if err != nil {
			return nil, 0, err
		}
		w.exactCls, w.exactEng = cnt, ex
	}
	inv0, nv0 := w.exactCls.Invocations(), w.exactEng.NodeVisits()
	at, err := w.exactEng.Explain(t)
	if err != nil {
		return nil, 0, err
	}
	visits := w.exactEng.NodeVisits() - nv0
	w.mu.Lock()
	w.cum.Tuples++
	w.cum.Invocations += w.exactCls.Invocations() - inv0
	w.cum.NodeVisits += visits
	w.mu.Unlock()
	return at, visits, nil
}

// sampleRepo picks the active repository: Anchor runs share sh.Repo,
// everything else the plain perturbation repo.
func sampleRepo(repo *cache.Repo, sh *anchor.Shared) *cache.Repo {
	if sh != nil {
		return sh.Repo
	}
	return repo
}

package core

import (
	"testing"

	"shahin/internal/dataset"
)

// TestStreamBorderPromotion drives the stream with tuples engineered so
// that an itemset is infrequent in the first window (landing on the
// negative border) and then becomes frequent, triggering mid-window
// promotion without waiting for the next re-mine.
func TestStreamBorderPromotion(t *testing.T) {
	env := newEnv(t, 60, 0)
	opts := smallOpts(LIME, 61)
	opts.StreamRecompute = 60
	opts.MinSupport = 0.3
	s, err := NewStream(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Two tuple flavours over the 6-attribute test schema. Flavour B has
	// category 3 on attribute 0; it appears in 10% of the first window
	// (border), then makes up 100% of the follow-up traffic.
	flavourA := []float64{0, 0, 0, 0, 0, 0.1}
	flavourB := []float64{3, 1, 1, 1, 1, -0.1}

	// First window: 54 A, 6 B -> re-mine at tuple 60 puts B's singleton
	// items on the border (support 0.1 < 0.3).
	for i := 0; i < 60; i++ {
		tup := flavourA
		if i%10 == 0 {
			tup = flavourB
		}
		if _, err := s.Explain(tup); err != nil {
			t.Fatal(err)
		}
	}
	if s.Mines() != 1 {
		t.Fatalf("mines=%d want 1", s.Mines())
	}
	borderTracked := 0
	for _, ts := range s.tracked {
		if !ts.frequent {
			borderTracked++
		}
	}
	if borderTracked == 0 {
		t.Fatal("no border itemsets tracked after re-mine")
	}

	// Pure flavour-B traffic: after >= 50 tuples the border itemset
	// {a0=b3} must be promoted before the second re-mine completes the
	// window.
	key := dataset.Itemset{dataset.MakeItem(0, 3)}.Key()
	promoted := false
	for i := 0; i < 55; i++ {
		if _, err := s.Explain(flavourB); err != nil {
			t.Fatal(err)
		}
		if s.Mines() == 1 && s.repo.Contains(key) {
			promoted = true
			break
		}
	}
	if !promoted {
		t.Fatal("border itemset never promoted between re-mines")
	}
}

// Border tracking off: the same traffic must NOT promote mid-window.
func TestStreamBorderDisabled(t *testing.T) {
	env := newEnv(t, 62, 0)
	opts := smallOpts(LIME, 63)
	opts.StreamRecompute = 60
	opts.MinSupport = 0.3
	off := false
	opts.StreamBorder = &off
	s, err := NewStream(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	flavourA := []float64{0, 0, 0, 0, 0, 0.1}
	flavourB := []float64{3, 1, 1, 1, 1, -0.1}
	for i := 0; i < 60; i++ {
		tup := flavourA
		if i%10 == 0 {
			tup = flavourB
		}
		if _, err := s.Explain(tup); err != nil {
			t.Fatal(err)
		}
	}
	key := dataset.Itemset{dataset.MakeItem(0, 3)}.Key()
	for i := 0; i < 55; i++ {
		if _, err := s.Explain(flavourB); err != nil {
			t.Fatal(err)
		}
		if s.Mines() == 1 && s.repo.Contains(key) {
			t.Fatal("promotion happened with border tracking disabled")
		}
	}
}

// Re-mining must evict itemsets that stopped being frequent.
func TestStreamEvictsStaleItemsets(t *testing.T) {
	env := newEnv(t, 64, 0)
	opts := smallOpts(LIME, 65)
	opts.StreamRecompute = 50
	opts.MinSupport = 0.4
	s, err := NewStream(env.st, env.cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	flavourA := []float64{0, 0, 0, 0, 0, 0.1}
	flavourB := []float64{3, 1, 1, 1, 1, -0.1}
	for i := 0; i < 50; i++ {
		if _, err := s.Explain(flavourA); err != nil {
			t.Fatal(err)
		}
	}
	keyA := dataset.Itemset{dataset.MakeItem(0, 0)}.Key()
	if !s.repo.Contains(keyA) {
		t.Fatal("flavour-A itemset not materialised after first window")
	}
	// A full window of flavour B: the second re-mine must drop A's
	// itemsets and install B's.
	for i := 0; i < 50; i++ {
		if _, err := s.Explain(flavourB); err != nil {
			t.Fatal(err)
		}
	}
	if s.Mines() < 2 {
		t.Fatalf("mines=%d want >= 2", s.Mines())
	}
	if s.repo.Contains(keyA) {
		t.Fatal("stale itemset survived re-mine eviction")
	}
	keyB := dataset.Itemset{dataset.MakeItem(0, 3)}.Key()
	if !s.repo.Contains(keyB) {
		t.Fatal("fresh itemset not materialised")
	}
}

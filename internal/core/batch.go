package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"shahin/internal/cache"
	"shahin/internal/dataset"
	"shahin/internal/explain"
	"shahin/internal/explain/anchor"
	"shahin/internal/fim"
	"shahin/internal/obs"
	"shahin/internal/perturb"
	"shahin/internal/rf"
	"shahin/internal/sample"
)

// Batch is Shahin's batch variant: given the whole set of tuples up
// front, it mines frequent itemsets over a uniform sample, materialises τ
// labelled perturbations per itemset, and serves them to every tuple's
// explanation (Algorithms 1–3 of the paper).
type Batch struct {
	opts Options
	st   *dataset.Stats
	cls  rf.Classifier
	// exactFallback records that an ExactSHAP request was downgraded to
	// KernelSHAP at construction (fault chain, or not an owned ensemble).
	exactFallback bool
}

// NewBatch creates a batch explainer over the training statistics and a
// black-box classifier.
func NewBatch(st *dataset.Stats, cls rf.Classifier, opts Options) (*Batch, error) {
	if st == nil || cls == nil {
		return nil, fmt.Errorf("core: NewBatch needs stats and a classifier")
	}
	opts, fellBack := applyExactFallback(opts.withDefaults(), cls)
	return &Batch{opts: opts, st: st, cls: cls, exactFallback: fellBack}, nil
}

// ExplainAll explains every tuple of the batch and returns the
// explanations in input order together with the run's cost report.
func (b *Batch) ExplainAll(tuples [][]float64) (*Result, error) {
	return b.ExplainAllCtx(context.Background(), tuples)
}

// ExplainAllCtx is ExplainAll under a context: cancelling ctx stops the
// run between predictions and returns the explanations finished so far
// as a partial *Result alongside ctx.Err(). Tuples not attempted (and
// ones cut off mid-explanation) carry StatusFailed; the partial Report
// still satisfies the event-reconciliation identity. With a background
// context and no Options.Fault the run takes the exact pre-fault code
// path and produces byte-identical explanations.
func (b *Batch) ExplainAllCtx(ctx context.Context, tuples [][]float64) (*Result, error) {
	if len(tuples) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	opts := b.opts
	start := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	rng := rand.New(rand.NewSource(opts.Seed))

	rec := opts.Recorder
	root := rec.StartSpan(obs.StageBatch)
	root.SetAttr("tuples", len(tuples))
	root.SetAttr("explainer", opts.Explainer.String())
	defer root.End()
	if tc, ok := obs.TraceFromContext(ctx); ok {
		c := tc.Child()
		root.SetTrace(c.TraceID, c.SpanID, tc.SpanID)
	}
	// The batch span rides the context so the fault chain (retries,
	// breaker transitions, degradation rungs) can attach child spans.
	ctx = obs.ContextWithSpan(ctx, root)
	fb := buildBridge(ctx, opts, b.st, b.cls)
	rec.Gauge(obs.GaugeTuplesTotal).Set(int64(len(tuples)))

	// Allocation attribution mirrors the stage clocks: one mark around
	// the whole run, one around mine + pool build, one around explain.
	var runMark obs.AllocMark
	if rec != nil {
		runMark = obs.NowAllocs()
	}

	// Step 1 (overhead): itemise a uniform sample of the batch and mine
	// frequent itemsets — max(1000, 1%) per the paper's heuristic.
	mineSpan := root.Child(obs.StageMine)
	mineStart := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	var (
		rows     []dataset.Itemset
		frequent []fim.Mined
	)
	// The exact TreeSHAP path neither perturbs nor pools, so it skips
	// mining entirely; the empty frequent set flows through Step 2 and
	// builds an empty (but non-nil) pool the engines never draw from.
	if opts.Explainer != ExactSHAP {
		sampleN := fim.SampleSize(len(tuples))
		switch {
		case opts.MineSample < 0:
			sampleN = len(tuples)
		case opts.MineSample > 0:
			sampleN = opts.MineSample
		}
		rows = itemizeSample(b.st, tuples, sampleN, rng)
		mined, err := fim.Mine(rows, fim.Config{
			MinSupport:  effectiveSupport(opts.MinSupport, len(rows)),
			MaxLen:      opts.MaxItemsetLen,
			MaxPerLevel: 4 * opts.MaxItemsets,
		})
		if err != nil {
			return nil, fmt.Errorf("core: mining batch sample: %w", err)
		}
		frequent = mined.Frequent
		if len(frequent) > opts.MaxItemsets {
			frequent = frequent[:opts.MaxItemsets]
		}
		// Resource-constrained pool sizing (the paper sets τ "automatically
		// based on the resource constraints"): never spend more than ~20 % of
		// the estimated sequential classifier budget on pre-labelling, so
		// small batches are not swamped by pool construction.
		if maxSets := poolBudget(opts, len(tuples)) / opts.Tau; !opts.DisablePoolBudget && len(frequent) > maxSets {
			if maxSets < 10 {
				maxSets = 10
			}
			if len(frequent) > maxSets {
				frequent = frequent[:maxSets]
			}
		}
	}
	mineTime := time.Since(mineStart)
	mineSpan.SetAttr("frequent_itemsets", len(frequent))
	mineSpan.End()

	eng := newEngineBridge(opts, b.st, b.cls, rows, rng, fb)
	gen := perturb.NewGenerator(b.st, rng)

	// Step 2: materialise and label τ perturbations per frequent itemset.
	poolSpan := root.Child(obs.StagePoolBuild)
	preLabelSpan := poolSpan.Child(obs.StagePreLabel)
	poolStart := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	var (
		pool *itemsetPool
		repo *cache.Repo
		sets []dataset.Itemset
		sh   *anchor.Shared
	)
	switch opts.Explainer {
	case Anchor:
		sh = anchor.NewShared(eng.cls.NumClasses(), opts.CacheBytes)
		sh.Repo.SetHooks(cacheHooks(rec))
		seedAnchor(ctx, sh, eng.cls, gen, frequent, opts.Tau, rec)
		if fb != nil {
			anchorSets := make([]dataset.Itemset, len(frequent))
			for i, mnd := range frequent {
				anchorSets[i] = mnd.Set
			}
			fb.setPool(sh.Repo, anchorSets)
		}
	default:
		repo = cache.NewRepo(opts.CacheBytes)
		repo.SetHooks(cacheHooks(rec))
		sets = make([]dataset.Itemset, len(frequent))
		for i, mnd := range frequent {
			if ctx.Err() != nil {
				sets = sets[:i]
				break
			}
			var setStart time.Time
			if rec != nil {
				setStart = time.Now() //shahinvet:allow walltime — per-itemset pre-label timing feeds the obs event log
			}
			inv0 := eng.invocations()
			samples := make([]perturb.Sample, opts.Tau)
			for j := range samples {
				s := gen.ForItemset(mnd.Set)
				s.Label = eng.cls.Predict(s.Row)
				samples[j] = s
			}
			repo.Put(mnd.Set.Key(), samples)
			sets[i] = mnd.Set
			if rec != nil {
				rec.Emit(obs.Event{
					Type: obs.EventPreLabel, Tuple: -1, Itemset: mnd.Set.String(),
					Fresh: eng.invocations() - inv0,
					DurMS: float64(time.Since(setStart)) / float64(time.Millisecond),
				})
			}
		}
		pool = newItemsetPool(repo, sets, rec)
		if fb != nil {
			fb.setPool(repo, sets)
		}
	}
	poolInv := eng.invocations()
	poolTime := time.Since(poolStart)
	var poolAlloc obs.AllocDelta
	if rec != nil {
		// The mark at run start also covers mining; folding mine into
		// the pool column matches how OverheadTime accounts the stage.
		poolAlloc = runMark.Since()
	}
	preLabelSpan.End()
	poolSpan.SetAttr("pool_invocations", poolInv)
	poolSpan.End()
	rec.Counter(obs.CounterPoolInvocations).Add(poolInv)
	if opts.Explainer != ExactSHAP {
		rec.Emit(obs.Event{
			Type: obs.EventPoolBuild, Tuple: -1, Itemsets: len(frequent),
			Fresh: poolInv, DurMS: float64(poolTime) / float64(time.Millisecond),
		})
	}

	// Step 3: explain every tuple, reusing pooled work.
	rep := Report{
		Tuples:           len(tuples),
		OverheadTime:     mineTime,
		MineTime:         mineTime,
		PoolTime:         poolTime,
		PoolInvocations:  poolInv,
		FrequentItemsets: len(frequent),
		PoolAllocBytes:   poolAlloc.Bytes,
		PoolAllocObjects: poolAlloc.Objects,
	}
	explainSpan := root.Child(obs.StageExplain)
	explainStart := time.Now() //shahinvet:allow walltime — stage timing feeds the obs report layer
	var explainMark obs.AllocMark
	if rec != nil {
		explainMark = obs.NowAllocs()
	}
	var (
		tupleHist *obs.Histogram
		doneCtr   *obs.Counter
	)
	if rec != nil {
		tupleHist = rec.Histogram(obs.HistExplainTuple)
		doneCtr = rec.Counter(obs.CounterTuplesDone)
	}
	out := make([]Explanation, len(tuples))
	var bds []obs.StageBreakdown
	if rec != nil {
		bds = make([]obs.StageBreakdown, len(tuples))
	}
	if pool != nil && opts.Workers > 1 {
		if err := explainParallel(ctx, b.st, b.cls, tuples, out, bds, repo.Snapshot(), sets, opts, &rep, fb); err != nil {
			return nil, err
		}
		rep.Invocations += poolInv
	} else {
		for i, t := range tuples {
			if ctx.Err() != nil {
				for j := i; j < len(tuples); j++ {
					out[j].Status = StatusFailed
				}
				break
			}
			var pl explain.Pool
			if pool != nil {
				pool.beginTuple()
				pl = pool
			}
			eng.beginTuple()
			var (
				tupleStart time.Time
				inv0       int64
				nv0        int64
				cls0       time.Duration
				anchorHits int64
			)
			if tupleHist != nil {
				tupleStart = time.Now() //shahinvet:allow walltime — per-tuple latency feeds the obs histogram
				inv0 = eng.invocations()
				nv0 = eng.nodeVisits()
				cls0 = eng.classifyTime()
				if sh != nil {
					anchorHits = sh.Repo.Stats().Hits
				}
			}
			exp, err := eng.explain(t, pl, sh)
			if err != nil {
				return nil, fmt.Errorf("core: explaining tuple %d: %w", i, err)
			}
			exp.Status = eng.tupleStatus()
			if tupleHist != nil {
				dur := time.Since(tupleStart)
				tupleHist.Observe(dur)
				doneCtr.Inc()
				ev := obs.Event{
					Type: obs.EventTupleExplained, Tuple: i,
					Explainer: opts.Explainer.String(),
					Fresh:     eng.invocations() - inv0,
					DurMS:     float64(dur) / float64(time.Millisecond),
				}
				if eng.exact != nil {
					// The exact path's provenance unit is tree-node
					// visits, not pooled samples.
					ev.Type = obs.EventExactShap
					ev.NodeVisits = eng.nodeVisits() - nv0
				} else if pool != nil {
					ev.Pooled, ev.CacheHits, ev.Itemset = pool.provenance()
				} else if sh != nil {
					ev.CacheHits = sh.Repo.Stats().Hits - anchorHits
				}
				if exp.Status != StatusOK {
					ev.Status = exp.Status.String()
				}
				bd := tupleBreakdown(dur, eng.classifyTime()-cls0, pool)
				if bds != nil {
					bds[i] = bd
				}
				rec.ObserveStages(bd)
				ev.Stages = &bd
				rec.Emit(ev)
			}
			out[i] = exp
		}
		rep.Invocations = eng.invocations()
		rep.NodeVisits = eng.nodeVisits()
		if pool != nil {
			rep.OverheadTime += pool.retrieval
			rep.ReusedSamples = pool.reused
		}
	}
	rep.ExactFallback = b.exactFallback
	rep.ExplainTime = time.Since(explainStart)
	if rec != nil {
		d := explainMark.Since()
		rep.ExplainAllocBytes, rep.ExplainAllocObjects = d.Bytes, d.Objects
	}
	explainSpan.End()
	if repo != nil {
		rep.Cache = repo.Stats()
	}
	if sh != nil {
		rep.Cache = sh.Repo.Stats()
	}
	for i := range out {
		switch out[i].Status {
		case StatusDegraded:
			rep.Degraded++
		case StatusFailed:
			rep.Failed++
		}
	}
	if fb != nil {
		rep.Retries = fb.chain.Stats().Retries
	}
	rep.WallTime = time.Since(start)
	if rec != nil {
		d := runMark.Since()
		rep.AllocBytes, rep.AllocObjects = d.Bytes, d.Objects
	}
	return &Result{Explanations: out, Report: rep, Breakdowns: bds}, ctx.Err()
}

// explainParallel runs the per-tuple phase on opts.Workers goroutines,
// filling out in place. Each worker gets its own engine (with an
// independent RNG and invocation counter), its own pool view over a
// frozen snapshot of the repository, and — when the run is fallible —
// its own fork of the bridge (the fault chain underneath is shared and
// internally locked), so no synchronisation is needed on the hot path.
// Cancelling ctx stops every worker between tuples; slots never
// attempted are marked StatusFailed. Shared by the batch and warm
// (serving) variants, which is why it is a free function over an
// immutable snapshot rather than a Batch method.
// bds, when non-nil, receives each tuple's latency attribution; the
// strided index partition keeps writes disjoint across workers.
func explainParallel(ctx context.Context, st *dataset.Stats, cls rf.Classifier, tuples [][]float64, out []Explanation, bds []obs.StageBreakdown, snap cache.Snapshot, sets []dataset.Itemset, opts Options, rep *Report, fb *fallibleBridge) error {
	workers := opts.Workers
	if workers > len(tuples) {
		workers = len(tuples)
	}
	rec := opts.Recorder
	var (
		tupleHist *obs.Histogram
		doneCtr   *obs.Counter
	)
	if rec != nil {
		tupleHist = rec.Histogram(obs.HistExplainTuple)
		doneCtr = rec.Counter(obs.CounterTuplesDone)
	}
	engines := make([]*engine, workers)
	pools := make([]*itemsetPool, workers)
	errs := make([]error, workers)
	attempted := make([][]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wopts := opts
		wopts.Seed = opts.Seed + 7919*int64(w+1)
		var wfb *fallibleBridge
		if fb != nil {
			wfb = fb.fork()
			wfb.setPool(snap, sets)
		}
		engines[w] = newEngineBridge(wopts, st, cls, nil, rand.New(rand.NewSource(wopts.Seed)), wfb)
		pools[w] = newItemsetPool(snap, sets, rec)
		attempted[w] = make([]bool, len(tuples))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(tuples); i += workers {
				if ctx.Err() != nil {
					return
				}
				attempted[w][i] = true
				pools[w].beginTuple()
				engines[w].beginTuple()
				var (
					tupleStart time.Time
					inv0       int64
					nv0        int64
					cls0       time.Duration
				)
				if tupleHist != nil {
					tupleStart = time.Now() //shahinvet:allow walltime — per-tuple latency feeds the obs histogram
					inv0 = engines[w].invocations()
					nv0 = engines[w].nodeVisits()
					cls0 = engines[w].classifyTime()
				}
				exp, err := engines[w].explain(tuples[i], pools[w], nil)
				if err != nil {
					errs[w] = fmt.Errorf("core: explaining tuple %d: %w", i, err)
					return
				}
				exp.Status = engines[w].tupleStatus()
				if tupleHist != nil {
					dur := time.Since(tupleStart)
					tupleHist.Observe(dur)
					doneCtr.Inc()
					ev := obs.Event{
						Type: obs.EventTupleExplained, Tuple: i,
						Explainer: opts.Explainer.String(),
						Fresh:     engines[w].invocations() - inv0,
						DurMS:     float64(dur) / float64(time.Millisecond),
					}
					if engines[w].exact != nil {
						ev.Type = obs.EventExactShap
						ev.NodeVisits = engines[w].nodeVisits() - nv0
					} else {
						ev.Pooled, ev.CacheHits, ev.Itemset = pools[w].provenance()
					}
					if exp.Status != StatusOK {
						ev.Status = exp.Status.String()
					}
					bd := tupleBreakdown(dur, engines[w].classifyTime()-cls0, pools[w])
					if bds != nil {
						bds[i] = bd
					}
					rec.ObserveStages(bd)
					ev.Stages = &bd
					rec.Emit(ev)
				}
				out[i] = exp
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if ctx.Err() != nil {
		for i := range out {
			if !attempted[i%workers][i] {
				out[i].Status = StatusFailed
			}
		}
	}
	for w := 0; w < workers; w++ {
		rep.Invocations += engines[w].invocations()
		rep.NodeVisits += engines[w].nodeVisits()
		rep.ReusedSamples += pools[w].reused
		if pools[w].retrieval > 0 {
			rep.OverheadTime += pools[w].retrieval / time.Duration(workers)
		}
	}
	return nil
}

// effectiveSupport raises the relative support threshold so that the
// absolute count is at least 5: on tiny mining samples a minimum count of
// one or two would declare almost every observed item frequent and blow
// up candidate generation.
func effectiveSupport(minSupport float64, rows int) float64 {
	if rows <= 0 {
		return minSupport
	}
	if floor := 5.0 / float64(rows); floor > minSupport {
		if floor > 1 {
			return 1
		}
		return floor
	}
	return minSupport
}

// poolBudget estimates how many classifier invocations pool construction
// may spend: one fifth of the expected sequential cost of the batch.
func poolBudget(opts Options, batch int) int {
	perTuple := 0
	switch opts.Explainer {
	case LIME:
		perTuple = opts.LIME.NumSamples
		if perTuple <= 0 {
			perTuple = 1000
		}
	case SHAP:
		perTuple = opts.SHAP.NumSamples
		if perTuple <= 0 {
			perTuple = 1024
		}
	case Anchor:
		// Sequential Anchor's per-tuple cost is workload dependent; a few
		// hundred pulls is typical for easy concepts at default (ε, δ).
		perTuple = 300
	case SampleSHAP:
		// Each permutation costs roughly one call per attribute; assume a
		// few dozen attributes.
		k := opts.SSHAP.Permutations
		if k <= 0 {
			k = 20
		}
		perTuple = 30 * k
	}
	return batch * perTuple / 5
}

// itemizeSample itemises a uniform sample of n tuples.
func itemizeSample(st *dataset.Stats, tuples [][]float64, n int, rng *rand.Rand) []dataset.Itemset {
	idx := sample.UniformIndices(rng, len(tuples), n)
	rows := make([]dataset.Itemset, len(idx))
	for i, ti := range idx {
		rows[i] = append(dataset.Itemset(nil), st.ItemizeRow(tuples[ti], nil)...)
	}
	return rows
}

// seedAnchor pre-estimates the precision of every frequent-itemset rule
// (Algorithm 2, line 3): τ labelled perturbations per rule go into the
// shared repository, their class histogram into the invariant cache, and
// the mined support doubles as the rule's coverage. Each seeded rule
// emits a pre_label provenance event when a recorder is attached.
// Cancelling ctx stops seeding between itemsets.
func seedAnchor(ctx context.Context, sh *anchor.Shared, cls rf.Classifier, gen *perturb.Generator, frequent []fim.Mined, tau int, rec *obs.Recorder) {
	nClasses := cls.NumClasses()
	for _, mnd := range frequent {
		if ctx.Err() != nil {
			return
		}
		var setStart time.Time
		if rec != nil {
			setStart = time.Now() //shahinvet:allow walltime — per-itemset pre-label timing feeds the obs event log
		}
		rr, _ := sh.Inv.Lookup(mnd.Set.Key())
		hist := make([]int, nClasses)
		samples := make([]perturb.Sample, tau)
		for j := range samples {
			s := gen.ForItemset(mnd.Set)
			s.Label = cls.Predict(s.Row)
			hist[s.Label]++
			samples[j] = s
		}
		rr.AddTrials(hist)
		rr.Coverage = mnd.Support
		rr.HasCoverage = true
		sh.Repo.Put(mnd.Set.Key(), samples)
		if rec != nil {
			rec.Emit(obs.Event{
				Type: obs.EventPreLabel, Tuple: -1, Itemset: mnd.Set.String(),
				Fresh: int64(tau),
				DurMS: float64(time.Since(setStart)) / float64(time.Millisecond),
			})
		}
	}
}

// Package dataset implements the tabular-data substrate every other
// component builds on: schemas with categorical and numerical attributes,
// column-major datasets, training-distribution statistics, quartile
// discretisation, and the packed (attribute, bin) item encoding shared by
// the frequent itemset miner, the perturbation engine, and the explainers.
package dataset

import "fmt"

// Kind distinguishes categorical from numerical attributes.
type Kind uint8

const (
	// Categorical attributes take one of a fixed set of values; cells store
	// the value's index.
	Categorical Kind = iota
	// Numeric attributes take real values; for itemisation they are
	// discretised into quartile bins (paper §3.6).
	Numeric
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attr describes a single attribute (column).
type Attr struct {
	Name   string
	Kind   Kind
	Values []string // categorical value labels; index is the stored cell value
}

// Cardinality returns the domain size of a categorical attribute and 0 for
// numeric attributes.
func (a *Attr) Cardinality() int {
	if a.Kind != Categorical {
		return 0
	}
	return len(a.Values)
}

// Schema describes the columns of a dataset plus the class labels the
// classifier predicts.
type Schema struct {
	Attrs   []Attr
	Classes []string // class label names; predictions index into this
}

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// NumClasses returns the number of target classes.
func (s *Schema) NumClasses() int { return len(s.Classes) }

// CategoricalIdx returns the indices of the categorical attributes.
func (s *Schema) CategoricalIdx() []int {
	var out []int
	for i := range s.Attrs {
		if s.Attrs[i].Kind == Categorical {
			out = append(out, i)
		}
	}
	return out
}

// NumericIdx returns the indices of the numeric attributes.
func (s *Schema) NumericIdx() []int {
	var out []int
	for i := range s.Attrs {
		if s.Attrs[i].Kind == Numeric {
			out = append(out, i)
		}
	}
	return out
}

// MaxCardinality returns the largest categorical domain size (the paper's
// #MaxDC column in Table 1), or 0 when there are no categorical attributes.
func (s *Schema) MaxCardinality() int {
	m := 0
	for i := range s.Attrs {
		if c := s.Attrs[i].Cardinality(); c > m {
			m = c
		}
	}
	return m
}

// Validate checks internal consistency: unique non-empty attribute names,
// categorical attributes with at least one value, and at least two classes.
func (s *Schema) Validate() error {
	if len(s.Attrs) == 0 {
		return fmt.Errorf("dataset: schema has no attributes")
	}
	if len(s.Classes) < 2 {
		return fmt.Errorf("dataset: schema needs at least 2 classes, has %d", len(s.Classes))
	}
	seen := make(map[string]bool, len(s.Attrs))
	for i := range s.Attrs {
		a := &s.Attrs[i]
		if a.Name == "" {
			return fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
		switch a.Kind {
		case Categorical:
			if len(a.Values) == 0 {
				return fmt.Errorf("dataset: categorical attribute %q has no values", a.Name)
			}
		case Numeric:
			if len(a.Values) != 0 {
				return fmt.Errorf("dataset: numeric attribute %q has value labels", a.Name)
			}
		default:
			return fmt.Errorf("dataset: attribute %q has unknown kind %d", a.Name, a.Kind)
		}
	}
	return nil
}

package dataset

import "fmt"

// Item is a packed (attribute, bin) pair: the unit the frequent itemset
// miner, the perturbation cache and Anchor predicates all speak. The
// attribute index lives in the high 16 bits and the bin in the low 16, so
// items sort by attribute first, which keeps itemsets canonically ordered.
type Item uint32

// MakeItem packs an (attribute, bin) pair. It panics if either component
// exceeds 16 bits; real tabular schemas are nowhere near that.
func MakeItem(attr, bin int) Item {
	if attr < 0 || attr >= 1<<16 || bin < 0 || bin >= 1<<16 {
		panic(fmt.Sprintf("dataset: MakeItem(%d, %d) out of 16-bit range", attr, bin))
	}
	return Item(uint32(attr)<<16 | uint32(bin))
}

// Attr returns the attribute index.
func (it Item) Attr() int { return int(it >> 16) }

// Bin returns the bin index.
func (it Item) Bin() int { return int(it & 0xffff) }

// String renders the item for debugging, e.g. "a3=b1".
func (it Item) String() string { return fmt.Sprintf("a%d=b%d", it.Attr(), it.Bin()) }

// ItemizeRow discretises a raw tuple into its items, one per attribute, in
// ascending attribute order. buf is reused when large enough.
func (s *Stats) ItemizeRow(row []float64, buf []Item) []Item {
	n := len(row)
	if cap(buf) < n {
		buf = make([]Item, n)
	}
	buf = buf[:n]
	for a, v := range row {
		buf[a] = MakeItem(a, s.Bin(a, v))
	}
	return buf
}

// Itemset is a canonically ordered (ascending Item value, hence ascending
// attribute) set of items with at most one item per attribute.
type Itemset []Item

// Key returns a comparable map key for the itemset. Itemsets of up to four
// items pack losslessly into the returned value's array; longer itemsets
// never arise in this system (the miner caps length), and Key panics if
// one does so the cap is enforced rather than silently collided.
func (is Itemset) Key() ItemsetKey {
	if len(is) > maxItemsetLen {
		panic(fmt.Sprintf("dataset: Itemset.Key on %d items (max %d)", len(is), maxItemsetLen))
	}
	var k ItemsetKey
	k.n = uint8(len(is))
	copy(k.items[:], is)
	return k
}

// maxItemsetLen bounds mined itemset length; see Itemset.Key.
const maxItemsetLen = 4

// MaxItemsetLen is the longest itemset the system mines or caches.
const MaxItemsetLen = maxItemsetLen

// ItemsetKey is a comparable encoding of an Itemset, usable as a map key.
type ItemsetKey struct {
	items [maxItemsetLen]Item
	n     uint8
}

// Itemset reconstructs the itemset encoded by the key.
func (k ItemsetKey) Itemset() Itemset {
	out := make(Itemset, k.n)
	copy(out, k.items[:k.n])
	return out
}

// Len returns the number of items in the key.
func (k ItemsetKey) Len() int { return int(k.n) }

// ContainsAll reports whether the (attribute-sorted) row items include
// every item of the itemset. Both sides must be in canonical order; the
// scan is a linear merge.
func (is Itemset) ContainsAll(rowItems []Item) bool {
	j := 0
	for _, want := range is {
		for j < len(rowItems) && rowItems[j] < want {
			j++
		}
		if j >= len(rowItems) || rowItems[j] != want {
			return false
		}
		j++
	}
	return true
}

// SubsetOf reports whether is ⊆ other, both in canonical order.
func (is Itemset) SubsetOf(other Itemset) bool {
	return is.ContainsAll(other)
}

// Attrs returns the attribute indices covered by the itemset.
func (is Itemset) Attrs() []int {
	out := make([]int, len(is))
	for i, it := range is {
		out[i] = it.Attr()
	}
	return out
}

// String renders the itemset for debugging.
func (is Itemset) String() string {
	s := "{"
	for i, it := range is {
		if i > 0 {
			s += " "
		}
		s += it.String()
	}
	return s + "}"
}

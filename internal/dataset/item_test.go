package dataset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMakeItemRoundTrip(t *testing.T) {
	for _, tc := range []struct{ attr, bin int }{
		{0, 0}, {1, 2}, {65535, 65535}, {42, 7},
	} {
		it := MakeItem(tc.attr, tc.bin)
		if it.Attr() != tc.attr || it.Bin() != tc.bin {
			t.Fatalf("MakeItem(%d,%d) -> (%d,%d)", tc.attr, tc.bin, it.Attr(), it.Bin())
		}
	}
}

func TestMakeItemRangePanics(t *testing.T) {
	for _, tc := range []struct{ attr, bin int }{
		{-1, 0}, {0, -1}, {1 << 16, 0}, {0, 1 << 16},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeItem(%d,%d) did not panic", tc.attr, tc.bin)
				}
			}()
			MakeItem(tc.attr, tc.bin)
		}()
	}
}

func TestItemOrderingByAttr(t *testing.T) {
	// Items must sort by attribute first regardless of bin.
	a := MakeItem(1, 65535)
	b := MakeItem(2, 0)
	if a >= b {
		t.Fatal("item ordering is not attribute-major")
	}
}

func TestItemizeRow(t *testing.T) {
	d := testData(500, 20)
	st, err := Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	row := d.Row(3, nil)
	items := st.ItemizeRow(row, nil)
	if len(items) != d.NumAttrs() {
		t.Fatalf("ItemizeRow len=%d want %d", len(items), d.NumAttrs())
	}
	if !sort.SliceIsSorted(items, func(i, j int) bool { return items[i] < items[j] }) {
		t.Fatal("ItemizeRow output not sorted")
	}
	for a, it := range items {
		if it.Attr() != a {
			t.Fatalf("item %d has attr %d", a, it.Attr())
		}
		if it.Bin() != st.Bin(a, row[a]) {
			t.Fatalf("item %d bin=%d want %d", a, it.Bin(), st.Bin(a, row[a]))
		}
	}
	// Reuse path: a big enough buffer must be reused.
	buf := make([]Item, 10)
	out := st.ItemizeRow(row, buf)
	if &out[0] != &buf[0] {
		t.Fatal("ItemizeRow did not reuse buffer")
	}
}

func TestItemsetKeyRoundTrip(t *testing.T) {
	is := Itemset{MakeItem(0, 1), MakeItem(3, 2), MakeItem(9, 0)}
	k := is.Key()
	if k.Len() != 3 {
		t.Fatalf("key len=%d", k.Len())
	}
	back := k.Itemset()
	if len(back) != len(is) {
		t.Fatalf("round trip len=%d", len(back))
	}
	for i := range is {
		if back[i] != is[i] {
			t.Fatalf("round trip item %d = %v want %v", i, back[i], is[i])
		}
	}
	// Distinct itemsets yield distinct keys.
	other := Itemset{MakeItem(0, 1), MakeItem(3, 2)}
	if other.Key() == k {
		t.Fatal("distinct itemsets collided")
	}
}

func TestItemsetKeyTooLongPanics(t *testing.T) {
	is := Itemset{MakeItem(0, 0), MakeItem(1, 0), MakeItem(2, 0), MakeItem(3, 0), MakeItem(4, 0)}
	defer func() {
		if recover() == nil {
			t.Fatal("Key on over-long itemset did not panic")
		}
	}()
	is.Key()
}

func TestContainsAll(t *testing.T) {
	row := []Item{MakeItem(0, 1), MakeItem(1, 0), MakeItem(2, 3), MakeItem(3, 2)}
	cases := []struct {
		is   Itemset
		want bool
	}{
		{Itemset{}, true},
		{Itemset{MakeItem(1, 0)}, true},
		{Itemset{MakeItem(0, 1), MakeItem(3, 2)}, true},
		{Itemset{MakeItem(0, 2)}, false},
		{Itemset{MakeItem(1, 0), MakeItem(4, 0)}, false},
		{Itemset{MakeItem(0, 1), MakeItem(1, 0), MakeItem(2, 3), MakeItem(3, 2)}, true},
	}
	for i, tc := range cases {
		if got := tc.is.ContainsAll(row); got != tc.want {
			t.Errorf("case %d: ContainsAll=%v want %v", i, got, tc.want)
		}
	}
}

func TestSubsetOf(t *testing.T) {
	a := Itemset{MakeItem(1, 1), MakeItem(3, 0)}
	b := Itemset{MakeItem(0, 2), MakeItem(1, 1), MakeItem(3, 0)}
	if !a.SubsetOf(b) {
		t.Fatal("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Fatal("b should not be subset of a")
	}
}

func TestItemsetAttrsAndString(t *testing.T) {
	is := Itemset{MakeItem(2, 1), MakeItem(5, 0)}
	attrs := is.Attrs()
	if len(attrs) != 2 || attrs[0] != 2 || attrs[1] != 5 {
		t.Fatalf("Attrs=%v", attrs)
	}
	if got := is.String(); got != "{a2=b1 a5=b0}" {
		t.Fatalf("String=%q", got)
	}
}

// Property: Key round-trips any valid itemset of length <= max, and
// ContainsAll(row) agrees with a naive map-based check.
func TestQuickItemsetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Build a random row over 8 attributes, 4 bins each.
		row := make([]Item, 8)
		inRow := map[Item]bool{}
		for a := range row {
			row[a] = MakeItem(a, r.Intn(4))
			inRow[row[a]] = true
		}
		// Random candidate itemset.
		n := r.Intn(MaxItemsetLen + 1)
		attrs := rng.Perm(8)[:n]
		sort.Ints(attrs)
		is := make(Itemset, 0, n)
		for _, a := range attrs {
			is = append(is, MakeItem(a, r.Intn(4)))
		}
		want := true
		for _, it := range is {
			if !inRow[it] {
				want = false
			}
		}
		if is.ContainsAll(row) != want {
			return false
		}
		back := is.Key().Itemset()
		if len(back) != len(is) {
			return false
		}
		for i := range is {
			if back[i] != is[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// labelColumn is the header name of the class column in CSV round-trips.
const labelColumn = "class"

// WriteCSV writes the dataset with a header row. Categorical cells are
// written as their value labels, numeric cells with %g, and labels (when
// present) as a trailing "class" column holding the class name.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	hasLabels := d.Labels != nil

	header := make([]string, 0, d.NumAttrs()+1)
	for i := range d.Schema.Attrs {
		header = append(header, d.Schema.Attrs[i].Name)
	}
	if hasLabels {
		header = append(header, labelColumn)
	}
	if err := cw.Write(header); err != nil {
		return err
	}

	rec := make([]string, len(header))
	row := make([]float64, d.NumAttrs())
	for i := 0; i < d.NumRows(); i++ {
		row = d.Row(i, row)
		for a, v := range row {
			attr := &d.Schema.Attrs[a]
			if attr.Kind == Categorical {
				rec[a] = attr.Values[int(v)]
			} else {
				rec[a] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		if hasLabels {
			rec[len(rec)-1] = d.Schema.Classes[d.Labels[i]]
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset in the format produced by WriteCSV, validating
// the header against the schema. A trailing "class" column, when present,
// is parsed into labels.
func ReadCSV(r io.Reader, schema *Schema) (*Dataset, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	hasLabels := false
	switch {
	case len(header) == schema.NumAttrs():
	case len(header) == schema.NumAttrs()+1 && header[len(header)-1] == labelColumn:
		hasLabels = true
	default:
		return nil, fmt.Errorf("dataset: CSV header has %d columns, schema has %d attributes", len(header), schema.NumAttrs())
	}
	for i := range schema.Attrs {
		if header[i] != schema.Attrs[i].Name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q", i, header[i], schema.Attrs[i].Name)
		}
	}

	// Value and class lookup tables.
	valueIdx := make([]map[string]int, schema.NumAttrs())
	for a := range schema.Attrs {
		if schema.Attrs[a].Kind != Categorical {
			continue
		}
		m := make(map[string]int, len(schema.Attrs[a].Values))
		for i, v := range schema.Attrs[a].Values {
			m[v] = i
		}
		valueIdx[a] = m
	}
	classIdx := make(map[string]int, schema.NumClasses())
	for i, c := range schema.Classes {
		classIdx[c] = i
	}

	d := New(schema, 0)
	row := make([]float64, schema.NumAttrs())
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line+1, err)
		}
		line++
		for a := 0; a < schema.NumAttrs(); a++ {
			attr := &schema.Attrs[a]
			if attr.Kind == Categorical {
				vi, ok := valueIdx[a][rec[a]]
				if !ok {
					return nil, fmt.Errorf("dataset: line %d: unknown value %q for attribute %q", line, rec[a], attr.Name)
				}
				row[a] = float64(vi)
			} else {
				v, err := strconv.ParseFloat(rec[a], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: attribute %q: %v", line, attr.Name, err)
				}
				row[a] = v
			}
		}
		label := -1
		if hasLabels {
			ci, ok := classIdx[rec[len(rec)-1]]
			if !ok {
				return nil, fmt.Errorf("dataset: line %d: unknown class %q", line, rec[len(rec)-1])
			}
			label = ci
		}
		d.AppendRow(row, label)
	}
	return d, nil
}

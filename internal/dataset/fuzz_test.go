package dataset

import (
	"bytes"
	"testing"
)

// FuzzInferSchema checks that arbitrary CSV input never panics the
// inference path and that anything it accepts validates.
func FuzzInferSchema(f *testing.F) {
	f.Add([]byte("a,b\nx,1\ny,2\n"))
	f.Add([]byte("a,b,class\nx,1,p\ny,2,q\n"))
	f.Add([]byte("h\n\n"))
	f.Add([]byte(",,,\n,,,\n"))
	f.Add([]byte("a\n\"unterminated\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := InferSchema(bytes.NewReader(data), InferOptions{})
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("inferred dataset invalid: %v", err)
		}
	})
}

// FuzzReadCSV checks that parsing arbitrary bytes against a fixed schema
// never panics and that accepted datasets validate.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("color,size,shape\nred,1,circle\n"))
	f.Add([]byte("color,size,shape,class\nred,1,circle,pos\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadCSV(bytes.NewReader(data), testSchema())
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("parsed dataset invalid: %v", err)
		}
	})
}

package dataset

import (
	"strings"
	"testing"
)

const inferCSV = `city,age,income,vip,class
paris,34,51000.5,yes,pos
tokyo,29,48000,no,neg
paris,41,60000,no,pos
lima,34,39000,yes,neg
tokyo,55,72000.25,no,pos
paris,23,31000,yes,neg
lima,37,45500,no,pos
tokyo,48,58000,yes,neg
paris,31,47250,no,pos
lima,26,36800,yes,neg
paris,52,69000,no,pos
tokyo,39,52750,yes,neg
lima,44,61500,no,pos
paris,28,41000,yes,neg
tokyo,33,49900,no,pos
lima,47,63250,yes,neg
paris,36,53000,no,pos
tokyo,25,38500,yes,neg
lima,51,67800,no,pos
paris,42,59400,yes,neg
tokyo,30,46200,no,pos
paris,60,71300,yes,neg
`

func TestInferSchemaTypes(t *testing.T) {
	d, err := InferSchema(strings.NewReader(inferCSV), InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Attr{}
	for i := range d.Schema.Attrs {
		byName[d.Schema.Attrs[i].Name] = &d.Schema.Attrs[i]
	}
	if a := byName["city"]; a == nil || a.Kind != Categorical || a.Cardinality() != 3 {
		t.Fatalf("city: %+v", a)
	}
	if a := byName["vip"]; a == nil || a.Kind != Categorical || a.Cardinality() != 2 {
		t.Fatalf("vip: %+v", a)
	}
	// age has 21 distinct numeric values (> MaxCategories = 20) -> numeric.
	if a := byName["age"]; a == nil || a.Kind != Numeric {
		t.Fatalf("age: %+v", a)
	}
	if a := byName["income"]; a == nil || a.Kind != Numeric {
		t.Fatalf("income: %+v", a)
	}
	if len(d.Schema.Classes) != 2 {
		t.Fatalf("classes: %v", d.Schema.Classes)
	}
	if d.NumRows() != 22 || len(d.Labels) != 22 {
		t.Fatalf("rows=%d labels=%d", d.NumRows(), len(d.Labels))
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("inferred dataset invalid: %v", err)
	}
}

func TestInferSchemaLowCardinalityNumeric(t *testing.T) {
	// A numeric-looking column with few distinct values becomes
	// categorical (like the 0/1 indicator columns of Covertype).
	csvData := "flag,x,class\n0,1.5,a\n1,2.5,b\n0,3.5,a\n1,4.5,b\n0,5.5,a\n"
	d, err := InferSchema(strings.NewReader(csvData), InferOptions{MaxCategories: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema.Attrs[0].Kind != Categorical {
		t.Fatalf("flag should be categorical: %+v", d.Schema.Attrs[0])
	}
	if d.Schema.Attrs[1].Kind != Numeric {
		t.Fatalf("x should be numeric: %+v", d.Schema.Attrs[1])
	}
}

func TestInferSchemaNoClass(t *testing.T) {
	csvData := "a,b\nx,1\ny,2\n"
	d, err := InferSchema(strings.NewReader(csvData), InferOptions{NoClass: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Labels != nil {
		t.Fatal("NoClass produced labels")
	}
	if d.Schema.NumAttrs() != 2 {
		t.Fatalf("attrs=%d", d.Schema.NumAttrs())
	}
}

func TestInferSchemaCustomClassColumn(t *testing.T) {
	csvData := "a,outcome\nx,good\ny,bad\nz,good\n"
	d, err := InferSchema(strings.NewReader(csvData), InferOptions{ClassColumn: "outcome"})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Schema.Classes) != 2 || d.Schema.Classes[0] != "bad" {
		t.Fatalf("classes=%v", d.Schema.Classes)
	}
	if d.Schema.NumAttrs() != 1 {
		t.Fatalf("attrs=%d (class column leaked in)", d.Schema.NumAttrs())
	}
	// Deterministic lexicographic labels: bad=0, good=1.
	if d.Labels[0] != 1 || d.Labels[1] != 0 {
		t.Fatalf("labels=%v", d.Labels)
	}
}

func TestInferSchemaErrors(t *testing.T) {
	cases := map[string]string{
		"empty body": "a,b\n",
		"ragged":     "a,b\nx\n",
	}
	for name, data := range cases {
		if _, err := InferSchema(strings.NewReader(data), InferOptions{}); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
}

// Round trip: a dataset written by WriteCSV must be inferable and the
// inferred categorical values must match (lexicographic order).
func TestInferSchemaRoundTripWithWriteCSV(t *testing.T) {
	orig := testData(60, 30)
	var sb strings.Builder
	if err := WriteCSV(&sb, orig); err != nil {
		t.Fatal(err)
	}
	d, err := InferSchema(strings.NewReader(sb.String()), InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != orig.NumRows() {
		t.Fatalf("rows=%d want %d", d.NumRows(), orig.NumRows())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// The size column must come back numeric.
	for i := range d.Schema.Attrs {
		if d.Schema.Attrs[i].Name == "size" && d.Schema.Attrs[i].Kind != Numeric {
			t.Fatal("size inferred as categorical")
		}
	}
}

package dataset

import (
	"fmt"
	"math/rand"
)

// Dataset is a column-major table of tuples plus optional class labels.
// Categorical cells store float64(valueIndex); numeric cells store the raw
// value. Column-major layout keeps per-attribute statistics and split
// search cache-friendly.
type Dataset struct {
	Schema *Schema
	Cols   [][]float64 // len == NumAttrs, each of length NumRows
	Labels []int       // class index per row; nil for unlabelled data
}

// New creates an empty dataset with capacity hint n rows.
func New(schema *Schema, n int) *Dataset {
	cols := make([][]float64, schema.NumAttrs())
	for i := range cols {
		cols[i] = make([]float64, 0, n)
	}
	return &Dataset{Schema: schema, Cols: cols}
}

// NumRows returns the number of tuples.
func (d *Dataset) NumRows() int {
	if len(d.Cols) == 0 {
		return 0
	}
	return len(d.Cols[0])
}

// NumAttrs returns the number of attributes.
func (d *Dataset) NumAttrs() int { return len(d.Cols) }

// AppendRow appends one tuple (and, if label >= 0 or Labels is already in
// use, its label). The row slice is copied.
func (d *Dataset) AppendRow(row []float64, label int) {
	if len(row) != d.NumAttrs() {
		panic(fmt.Sprintf("dataset: AppendRow got %d cells want %d", len(row), d.NumAttrs()))
	}
	for i, v := range row {
		d.Cols[i] = append(d.Cols[i], v)
	}
	if label >= 0 || d.Labels != nil {
		d.Labels = append(d.Labels, label)
	}
}

// Row copies tuple i into buf (allocating if buf is too small) and returns
// it.
func (d *Dataset) Row(i int, buf []float64) []float64 {
	n := d.NumAttrs()
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for a := 0; a < n; a++ {
		buf[a] = d.Cols[a][i]
	}
	return buf
}

// Rows materialises rows [lo, hi) as a slice of tuples. Used by callers
// that need row-major access (the classifiers, the explainers).
func (d *Dataset) Rows(lo, hi int) [][]float64 {
	out := make([][]float64, 0, hi-lo)
	flat := make([]float64, (hi-lo)*d.NumAttrs())
	for i := lo; i < hi; i++ {
		row := flat[:d.NumAttrs():d.NumAttrs()]
		flat = flat[d.NumAttrs():]
		out = append(out, d.Row(i, row))
	}
	return out
}

// Subset returns a new dataset containing the given row indices, in order.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := New(d.Schema, len(idx))
	if d.Labels != nil {
		out.Labels = make([]int, 0, len(idx))
	}
	for a := range d.Cols {
		col := out.Cols[a]
		src := d.Cols[a]
		for _, i := range idx {
			col = append(col, src[i])
		}
		out.Cols[a] = col
	}
	if d.Labels != nil {
		for _, i := range idx {
			out.Labels = append(out.Labels, d.Labels[i])
		}
	}
	return out
}

// Split partitions the dataset into train (first fraction frac, after a
// seeded shuffle) and test, mirroring the paper's 1/3 train, 2/3 explain
// protocol.
func (d *Dataset) Split(frac float64, rng *rand.Rand) (train, test *Dataset) {
	if frac <= 0 || frac >= 1 {
		panic(fmt.Sprintf("dataset: Split fraction %g outside (0,1)", frac))
	}
	perm := rng.Perm(d.NumRows())
	cut := int(frac * float64(len(perm)))
	if cut == 0 {
		cut = 1
	}
	return d.Subset(perm[:cut]), d.Subset(perm[cut:])
}

// Validate checks that all columns are the same length, labels (when
// present) match the row count and class range, and categorical cells are
// integral values inside their domain.
func (d *Dataset) Validate() error {
	if err := d.Schema.Validate(); err != nil {
		return err
	}
	if len(d.Cols) != d.Schema.NumAttrs() {
		return fmt.Errorf("dataset: %d columns for %d attributes", len(d.Cols), d.Schema.NumAttrs())
	}
	n := d.NumRows()
	for a, col := range d.Cols {
		if len(col) != n {
			return fmt.Errorf("dataset: column %d has %d rows want %d", a, len(col), n)
		}
	}
	if d.Labels != nil && len(d.Labels) != n {
		return fmt.Errorf("dataset: %d labels for %d rows", len(d.Labels), n)
	}
	for a := range d.Cols {
		attr := &d.Schema.Attrs[a]
		if attr.Kind != Categorical {
			continue
		}
		k := attr.Cardinality()
		for i, v := range d.Cols[a] {
			iv := int(v)
			if float64(iv) != v || iv < 0 || iv >= k {
				return fmt.Errorf("dataset: row %d attr %q: %g is not a valid category in [0,%d)", i, attr.Name, v, k)
			}
		}
	}
	for i, l := range d.Labels {
		if l < 0 || l >= d.Schema.NumClasses() {
			return fmt.Errorf("dataset: row %d label %d outside [0,%d)", i, l, d.Schema.NumClasses())
		}
	}
	return nil
}

package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// testSchema returns a small mixed schema used across the package tests.
func testSchema() *Schema {
	return &Schema{
		Attrs: []Attr{
			{Name: "color", Kind: Categorical, Values: []string{"red", "green", "blue"}},
			{Name: "size", Kind: Numeric},
			{Name: "shape", Kind: Categorical, Values: []string{"circle", "square"}},
		},
		Classes: []string{"neg", "pos"},
	}
}

// testData builds a deterministic labelled dataset on testSchema.
func testData(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	s := testSchema()
	d := New(s, n)
	for i := 0; i < n; i++ {
		color := float64(rng.Intn(3))
		size := rng.NormFloat64()*2 + 10
		shape := float64(rng.Intn(2))
		label := 0
		if color == 1 && size > 10 {
			label = 1
		}
		d.AppendRow([]float64{color, size, shape}, label)
	}
	return d
}

func TestSchemaValidate(t *testing.T) {
	if err := testSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	cases := map[string]*Schema{
		"no attrs":    {Classes: []string{"a", "b"}},
		"one class":   {Attrs: []Attr{{Name: "x", Kind: Numeric}}, Classes: []string{"a"}},
		"empty name":  {Attrs: []Attr{{Kind: Numeric}}, Classes: []string{"a", "b"}},
		"dup name":    {Attrs: []Attr{{Name: "x", Kind: Numeric}, {Name: "x", Kind: Numeric}}, Classes: []string{"a", "b"}},
		"cat no vals": {Attrs: []Attr{{Name: "x", Kind: Categorical}}, Classes: []string{"a", "b"}},
		"num w/ vals": {Attrs: []Attr{{Name: "x", Kind: Numeric, Values: []string{"v"}}}, Classes: []string{"a", "b"}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("schema %q should be invalid", name)
		}
	}
}

func TestSchemaIndexHelpers(t *testing.T) {
	s := testSchema()
	if got := s.CategoricalIdx(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("CategoricalIdx=%v", got)
	}
	if got := s.NumericIdx(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("NumericIdx=%v", got)
	}
	if got := s.MaxCardinality(); got != 3 {
		t.Fatalf("MaxCardinality=%d want 3", got)
	}
}

func TestAppendRowAndAccess(t *testing.T) {
	d := testData(50, 1)
	if d.NumRows() != 50 || d.NumAttrs() != 3 {
		t.Fatalf("NumRows=%d NumAttrs=%d", d.NumRows(), d.NumAttrs())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	row := d.Row(7, nil)
	for a := 0; a < 3; a++ {
		if row[a] != d.Cols[a][7] {
			t.Fatalf("Row mismatch at attr %d", a)
		}
	}
	rows := d.Rows(5, 10)
	if len(rows) != 5 {
		t.Fatalf("Rows len=%d", len(rows))
	}
	for a := 0; a < 3; a++ {
		if rows[2][a] != d.Cols[a][7] {
			t.Fatalf("Rows mismatch at attr %d", a)
		}
	}
}

func TestAppendRowWrongArity(t *testing.T) {
	d := New(testSchema(), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRow with wrong arity did not panic")
		}
	}()
	d.AppendRow([]float64{1, 2}, 0)
}

func TestSubsetAndSplit(t *testing.T) {
	d := testData(90, 2)
	sub := d.Subset([]int{3, 1, 4})
	if sub.NumRows() != 3 {
		t.Fatalf("Subset rows=%d", sub.NumRows())
	}
	if sub.Cols[1][0] != d.Cols[1][3] || sub.Labels[1] != d.Labels[1] {
		t.Fatal("Subset copied wrong rows")
	}

	rng := rand.New(rand.NewSource(3))
	train, test := d.Split(1.0/3, rng)
	if train.NumRows()+test.NumRows() != 90 {
		t.Fatalf("Split sizes %d + %d != 90", train.NumRows(), test.NumRows())
	}
	if train.NumRows() != 30 {
		t.Fatalf("train rows=%d want 30", train.NumRows())
	}
	if err := train.Validate(); err != nil {
		t.Fatalf("train invalid: %v", err)
	}
}

func TestSplitBadFraction(t *testing.T) {
	d := testData(10, 4)
	for _, f := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Split(%g) did not panic", f)
				}
			}()
			d.Split(f, rand.New(rand.NewSource(1)))
		}()
	}
}

func TestValidateCatchesBadCells(t *testing.T) {
	d := testData(5, 5)
	d.Cols[0][2] = 7 // category out of range
	if err := d.Validate(); err == nil {
		t.Fatal("Validate missed out-of-range category")
	}
	d = testData(5, 5)
	d.Cols[0][2] = 0.5 // non-integral category
	if err := d.Validate(); err == nil {
		t.Fatal("Validate missed non-integral category")
	}
	d = testData(5, 5)
	d.Labels[0] = 9
	if err := d.Validate(); err == nil {
		t.Fatal("Validate missed out-of-range label")
	}
}

func TestComputeStatsCategorical(t *testing.T) {
	d := testData(2000, 6)
	st, err := Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	// Frequencies sum to 1 per attribute and roughly match the uniform
	// generator for the categorical columns.
	for a := range d.Cols {
		sum := 0.0
		for _, f := range st.Freq[a] {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("attr %d freq sums to %g", a, sum)
		}
	}
	for v := 0; v < 3; v++ {
		if math.Abs(st.Freq[0][v]-1.0/3) > 0.05 {
			t.Errorf("color freq[%d]=%.3f want ~0.333", v, st.Freq[0][v])
		}
	}
}

func TestComputeStatsNumeric(t *testing.T) {
	d := testData(4000, 7)
	st, err := Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Mean[1]-10) > 0.2 {
		t.Errorf("mean=%.3f want ~10", st.Mean[1])
	}
	if math.Abs(st.Std[1]-2) > 0.2 {
		t.Errorf("std=%.3f want ~2", st.Std[1])
	}
	if nb := st.NumBins(1); nb != 4 {
		t.Errorf("numeric bins=%d want 4 (quartiles)", nb)
	}
	// Quartile bins should each hold ~25% of the data.
	for b := 0; b < st.NumBins(1); b++ {
		if math.Abs(st.Freq[1][b]-0.25) > 0.03 {
			t.Errorf("bin %d freq=%.3f want ~0.25", b, st.Freq[1][b])
		}
	}
	// Edges ascend and lie within [Lo, Hi].
	edges := st.Edges[1]
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("edges not ascending: %v", edges)
		}
	}
	if len(edges) > 0 && (edges[0] < st.Lo[1] || edges[len(edges)-1] > st.Hi[1]) {
		t.Fatalf("edges %v outside [%g, %g]", edges, st.Lo[1], st.Hi[1])
	}
}

func TestConstantNumericColumn(t *testing.T) {
	s := &Schema{
		Attrs:   []Attr{{Name: "x", Kind: Numeric}},
		Classes: []string{"a", "b"},
	}
	d := New(s, 10)
	for i := 0; i < 10; i++ {
		d.AppendRow([]float64{5}, 0)
	}
	st, err := Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumBins(0) != 1 {
		t.Fatalf("constant column bins=%d want 1", st.NumBins(0))
	}
	if st.Bin(0, 5) != 0 {
		t.Fatal("constant column value not in bin 0")
	}
	if v := st.ValueInBin(0, 0, rand.New(rand.NewSource(1))); v != 5 {
		t.Fatalf("ValueInBin on constant column = %g want 5", v)
	}
}

func TestBinRoundTrip(t *testing.T) {
	d := testData(3000, 8)
	st, err := Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	// Any value drawn from ValueInBin must discretise back to that bin.
	for a := 0; a < d.NumAttrs(); a++ {
		for b := 0; b < st.NumBins(a); b++ {
			for trial := 0; trial < 20; trial++ {
				v := st.ValueInBin(a, b, rng)
				if got := st.Bin(a, v); got != b {
					t.Fatalf("attr %d: ValueInBin(%d) -> %g -> Bin %d", a, b, v, got)
				}
			}
		}
	}
}

func TestSampleValueMatchesDistribution(t *testing.T) {
	d := testData(3000, 10)
	st, err := Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const n = 60000
	counts := make([]int, st.NumBins(0))
	for i := 0; i < n; i++ {
		counts[int(st.SampleValue(0, rng))]++
	}
	for v := range counts {
		got := float64(counts[v]) / n
		if math.Abs(got-st.Freq[0][v]) > 0.02 {
			t.Errorf("sampled freq[%d]=%.3f want %.3f", v, got, st.Freq[0][v])
		}
	}
}

func TestComputeEmpty(t *testing.T) {
	if _, err := Compute(New(testSchema(), 0)); err == nil {
		t.Fatal("Compute on empty dataset should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := testData(37, 12)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != d.NumRows() {
		t.Fatalf("round trip rows=%d want %d", got.NumRows(), d.NumRows())
	}
	for a := range d.Cols {
		for i := range d.Cols[a] {
			if math.Abs(got.Cols[a][i]-d.Cols[a][i]) > 1e-12 {
				t.Fatalf("cell (%d,%d) = %g want %g", i, a, got.Cols[a][i], d.Cols[a][i])
			}
		}
	}
	for i := range d.Labels {
		if got.Labels[i] != d.Labels[i] {
			t.Fatalf("label %d = %d want %d", i, got.Labels[i], d.Labels[i])
		}
	}
}

func TestCSVUnlabelled(t *testing.T) {
	d := testData(5, 13)
	d.Labels = nil
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "class") {
		t.Fatal("unlabelled CSV has class column")
	}
	got, err := ReadCSV(&buf, d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if got.Labels != nil {
		t.Fatal("unlabelled round trip produced labels")
	}
}

func TestCSVErrors(t *testing.T) {
	s := testSchema()
	cases := map[string]string{
		"bad header":    "x,y,z\nred,1,circle\n",
		"unknown value": "color,size,shape\npurple,1,circle\n",
		"bad number":    "color,size,shape\nred,abc,circle\n",
		"unknown class": "color,size,shape,class\nred,1,circle,maybe\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data), s); err == nil {
			t.Errorf("ReadCSV(%s) expected error", name)
		}
	}
}

package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"shahin/internal/sample"
)

// Stats holds the training-distribution statistics all perturbation-based
// explainers sample from: per-attribute value (or bin) frequencies, numeric
// moments, and quartile cut points for discretisation. It is computed once
// over the training split and shared read-only by every explainer, which is
// what makes pooled perturbations interchangeable (paper §3, "the
// perturbations are performed for each feature independently and based on
// a distribution that is fixed").
type Stats struct {
	Schema *Schema
	Freq   [][]float64 // per attr: relative frequency of each bin
	Mean   []float64   // per attr; 0 for categorical
	Std    []float64   // per attr; 0 for categorical
	Edges  [][]float64 // per attr: ascending internal quartile cut points (numeric only)
	Lo     []float64   // per attr: min observed value (numeric only)
	Hi     []float64   // per attr: max observed value (numeric only)

	samplers []*sample.Alias // per attr, over bins
}

// Compute derives Stats from a (training) dataset. The dataset must be
// non-empty and valid.
func Compute(d *Dataset) (*Stats, error) {
	if d.NumRows() == 0 {
		return nil, fmt.Errorf("dataset: Compute on empty dataset")
	}
	s := &Stats{
		Schema:   d.Schema,
		Freq:     make([][]float64, d.NumAttrs()),
		Mean:     make([]float64, d.NumAttrs()),
		Std:      make([]float64, d.NumAttrs()),
		Edges:    make([][]float64, d.NumAttrs()),
		Lo:       make([]float64, d.NumAttrs()),
		Hi:       make([]float64, d.NumAttrs()),
		samplers: make([]*sample.Alias, d.NumAttrs()),
	}
	n := float64(d.NumRows())
	for a := range d.Cols {
		attr := &d.Schema.Attrs[a]
		col := d.Cols[a]
		switch attr.Kind {
		case Categorical:
			freq := make([]float64, attr.Cardinality())
			for _, v := range col {
				freq[int(v)]++
			}
			for i := range freq {
				freq[i] /= n
			}
			s.Freq[a] = freq
		case Numeric:
			mean, std, lo, hi := moments(col)
			s.Mean[a], s.Std[a], s.Lo[a], s.Hi[a] = mean, std, lo, hi
			s.Edges[a] = quartileEdges(col)
			nb := len(s.Edges[a]) + 1
			freq := make([]float64, nb)
			for _, v := range col {
				freq[binOf(s.Edges[a], v)]++
			}
			for i := range freq {
				freq[i] /= n
			}
			s.Freq[a] = freq
		}
		al, err := sample.NewAlias(s.Freq[a])
		if err != nil {
			return nil, fmt.Errorf("dataset: attribute %q: %v", attr.Name, err)
		}
		s.samplers[a] = al
	}
	return s, nil
}

// moments returns mean, population std deviation, min, and max of xs.
func moments(xs []float64) (mean, std, lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		mean += x
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std, lo, hi
}

// quartileEdges returns the distinct internal cut points at the 25th, 50th
// and 75th percentiles. Constant or low-diversity columns yield fewer
// edges (possibly none), i.e. fewer bins.
func quartileEdges(xs []float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var edges []float64
	for _, q := range []float64{0.25, 0.50, 0.75} {
		e := quantile(sorted, q)
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	// An edge equal to the maximum would create a permanently empty top
	// bin; drop such edges.
	maxV := sorted[len(sorted)-1]
	for len(edges) > 0 && edges[len(edges)-1] >= maxV {
		edges = edges[:len(edges)-1]
	}
	return edges
}

// quantile returns the q-quantile of sorted xs with linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// binOf returns the bin of v given ascending internal edges: bin i holds
// values in (edges[i-1], edges[i]], with bin 0 = (-inf, edges[0]] and the
// last bin = (edges[last], +inf).
func binOf(edges []float64, v float64) int {
	b := 0
	for _, e := range edges {
		if v > e {
			b++
		} else {
			break
		}
	}
	return b
}

// NumAttrs returns how many attributes (tuple cells) the statistics
// cover — the width every explained tuple must have.
func (s *Stats) NumAttrs() int { return len(s.Freq) }

// NumBins returns how many discretised bins attribute a has: the domain
// cardinality for categorical attributes, quartile-bin count for numeric.
func (s *Stats) NumBins(a int) int { return len(s.Freq[a]) }

// Bin discretises value v of attribute a into its bin index.
func (s *Stats) Bin(a int, v float64) int {
	if s.Schema.Attrs[a].Kind == Categorical {
		return int(v)
	}
	return binOf(s.Edges[a], v)
}

// SampleBin draws a bin for attribute a from the training frequency
// distribution.
func (s *Stats) SampleBin(a int, rng *rand.Rand) int {
	return s.samplers[a].Draw(rng)
}

// BinProb returns the training-frequency probability of (a, bin).
func (s *Stats) BinProb(a, bin int) float64 { return s.Freq[a][bin] }

// SampleValue draws a raw cell value for attribute a from the training
// distribution: categorical attributes get a value index, numeric
// attributes get a bin drawn by frequency and then a value within the bin.
func (s *Stats) SampleValue(a int, rng *rand.Rand) float64 {
	bin := s.SampleBin(a, rng)
	return s.ValueInBin(a, bin, rng)
}

// ValueInBin draws a raw value for attribute a that falls in the given
// bin. For categorical attributes the bin is the value. For numeric
// attributes a value is drawn uniformly within the bin's edges (the
// outermost bins are clamped to the observed min/max), which is the
// standard "undiscretise" step of tabular LIME.
func (s *Stats) ValueInBin(a, bin int, rng *rand.Rand) float64 {
	if s.Schema.Attrs[a].Kind == Categorical {
		return float64(bin)
	}
	edges := s.Edges[a]
	lo, hi := s.Lo[a], s.Hi[a]
	if bin > 0 {
		lo = edges[bin-1]
	}
	if bin < len(edges) {
		hi = edges[bin]
	}
	if hi <= lo {
		return lo
	}
	return lo + rng.Float64()*(hi-lo)
}

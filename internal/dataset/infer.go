package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// InferOptions tunes schema inference.
type InferOptions struct {
	// MaxCategories caps the distinct values a column may have and still
	// be treated as categorical when its cells parse as numbers
	// (default 20). Non-numeric columns are categorical regardless.
	MaxCategories int
	// ClassColumn names the label column (default "class"; empty string
	// is replaced by the default, use NoClass to disable).
	ClassColumn string
	// NoClass disables label detection entirely.
	NoClass bool
}

func (o InferOptions) fill() InferOptions {
	if o.MaxCategories <= 0 {
		o.MaxCategories = 20
	}
	if o.ClassColumn == "" {
		o.ClassColumn = labelColumn
	}
	return o
}

// InferSchema reads a headered CSV and derives a Schema plus the parsed
// Dataset in one pass: a column whose cells all parse as floats is
// numeric, unless it has at most MaxCategories distinct values (then it
// is treated as a low-cardinality categorical, matching how the paper
// treats discretised attributes). A column matching ClassColumn becomes
// the label. Categorical value order is lexicographic, so inference is
// deterministic.
func InferSchema(r io.Reader, opts InferOptions) (*Dataset, error) {
	opts = opts.fill()
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV body: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: CSV has no data rows")
	}

	classCol := -1
	if !opts.NoClass {
		for i, h := range header {
			if h == opts.ClassColumn {
				classCol = i
			}
		}
	}

	// Column typing pass.
	type colInfo struct {
		numeric  bool
		distinct map[string]bool
	}
	infos := make([]colInfo, len(header))
	for c := range header {
		infos[c] = colInfo{numeric: true, distinct: make(map[string]bool)}
	}
	for _, rec := range records {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: ragged CSV row (have %d cells want %d)", len(rec), len(header))
		}
		for c, cell := range rec {
			infos[c].distinct[cell] = true
			if infos[c].numeric {
				if _, err := strconv.ParseFloat(cell, 64); err != nil {
					infos[c].numeric = false
				}
			}
		}
	}

	schema := &Schema{}
	// valueIdx maps column -> value -> index for categorical columns.
	valueIdx := make([]map[string]int, len(header))
	for c, h := range header {
		if c == classCol {
			continue
		}
		info := &infos[c]
		if info.numeric && len(info.distinct) > opts.MaxCategories {
			schema.Attrs = append(schema.Attrs, Attr{Name: h, Kind: Numeric})
			continue
		}
		values := sortedKeys(info.distinct)
		idx := make(map[string]int, len(values))
		for i, v := range values {
			idx[v] = i
		}
		valueIdx[c] = idx
		schema.Attrs = append(schema.Attrs, Attr{Name: h, Kind: Categorical, Values: values})
	}
	if classCol >= 0 {
		schema.Classes = sortedKeys(infos[classCol].distinct)
	} else {
		// No labels: a placeholder binary class set keeps the schema valid.
		schema.Classes = []string{"class0", "class1"}
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}

	classIdx := make(map[string]int, len(schema.Classes))
	for i, cls := range schema.Classes {
		classIdx[cls] = i
	}
	d := New(schema, len(records))
	row := make([]float64, schema.NumAttrs())
	for _, rec := range records {
		a := 0
		label := -1
		for c, cell := range rec {
			if c == classCol {
				label = classIdx[cell]
				continue
			}
			if idx := valueIdx[c]; idx != nil {
				row[a] = float64(idx[cell])
			} else {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: column %q: %v", header[c], err)
				}
				row[a] = v
			}
			a++
		}
		d.AppendRow(row, label)
	}
	if classCol < 0 {
		d.Labels = nil
	}
	return d, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Package docs is the doc-drift gate: it inventories everything the
// operator guide must cover — every binary under cmd/ and every flag
// the module registers — straight from the source, then checks each
// item is actually mentioned in OPERATIONS.md. The inventory is
// syntactic (go/parser only, no type checking): a flag registration is
// any 3-argument String/Bool/Int/Int64/Uint/Uint64/Float64/Duration
// call whose first argument is a string literal, which covers both the
// package-level flag.* helpers the binaries use and the
// flag.FlagSet methods the shahin-vet driver uses.
//
// Coverage is deliberately strict about form: a flag -name counts as
// documented only when OPERATIONS.md contains `-name` in backticks
// (optionally opening a `-name=value` or `-name value` span), so prose
// that happens to contain the substring cannot mask a missing entry.
// The package's tests run the gate over a drifted fixture (must fail)
// and over this repository (must pass), so `go test ./...` and the
// docs CI job both catch a new binary or flag that lands without
// documentation.
package docs

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Flag is one registered command-line flag and where it is declared;
// File is relative to the scanned module root.
type Flag struct {
	Name string
	File string
	Line int
}

// Inventory is the set of documentation obligations scanned from a
// module: binary names (cmd/ subdirectories) and registered flags,
// deduplicated by name with the first declaration winning.
type Inventory struct {
	Binaries []string
	Flags    []Flag
}

// flagFuncs are the registration method names recognised on both the
// flag package and a flag.FlagSet.
var flagFuncs = map[string]bool{
	"String": true, "Bool": true, "Int": true, "Int64": true,
	"Uint": true, "Uint64": true, "Float64": true, "Duration": true,
}

// Scan walks the module rooted at root and builds its inventory.
// Test files, testdata, vendor, and hidden directories are skipped,
// matching what ships in the binaries.
func Scan(root string) (*Inventory, error) {
	inv := &Inventory{}
	cmdDir := filepath.Join(root, "cmd")
	if entries, err := os.ReadDir(cmdDir); err == nil {
		for _, e := range entries {
			if e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
				inv.Binaries = append(inv.Binaries, e.Name())
			}
		}
	}
	sort.Strings(inv.Binaries)

	fset := token.NewFileSet()
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("docs: parsing %s: %w", path, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !flagFuncs[sel.Sel.Name] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			fname, err := strconv.Unquote(lit.Value)
			if err != nil || fname == "" || seen[fname] {
				return true
			}
			seen[fname] = true
			pos := fset.Position(lit.Pos())
			rel, rerr := filepath.Rel(root, pos.Filename)
			if rerr != nil {
				rel = pos.Filename
			}
			inv.Flags = append(inv.Flags, Flag{Name: fname, File: filepath.ToSlash(rel), Line: pos.Line})
			return true
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(inv.Flags, func(i, j int) bool { return inv.Flags[i].Name < inv.Flags[j].Name })
	return inv, nil
}

// flagDocumented reports whether ops mentions the flag in its
// canonical backticked form: `-name` closed by a backtick, or opening
// a `-name=value` / `-name value` span.
func flagDocumented(ops, name string) bool {
	needle := "`-" + name
	for at := 0; ; {
		i := strings.Index(ops[at:], needle)
		if i < 0 {
			return false
		}
		rest := ops[at+i+len(needle):]
		if rest == "" {
			return false
		}
		switch rest[0] {
		case '`', '=', ' ':
			return true
		}
		at += i + len(needle)
	}
}

// Missing diffs an inventory against the operator guide's contents and
// returns one human-readable finding per undocumented binary or flag;
// an empty slice means the guide is complete.
func Missing(inv *Inventory, ops string) []string {
	var out []string
	for _, bin := range inv.Binaries {
		if !strings.Contains(ops, bin) {
			out = append(out, fmt.Sprintf("binary %s is not mentioned in OPERATIONS.md", bin))
		}
	}
	for _, f := range inv.Flags {
		if !flagDocumented(ops, f.Name) {
			out = append(out, fmt.Sprintf("flag -%s (%s:%d) is not documented in OPERATIONS.md (want `-%s`)",
				f.Name, f.File, f.Line, f.Name))
		}
	}
	return out
}

// Check scans the module rooted at root and diffs it against the
// operator guide at opsPath, returning the findings.
func Check(root, opsPath string) ([]string, error) {
	inv, err := Scan(root)
	if err != nil {
		return nil, err
	}
	ops, err := os.ReadFile(opsPath)
	if err != nil {
		return nil, fmt.Errorf("docs: %w", err)
	}
	return Missing(inv, string(ops)), nil
}

// Command fakebin is a doc-drift fixture whose flags are all covered
// by the sibling OPERATIONS.md.
package main

import (
	"flag"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	window := flag.Duration("window", 10*time.Millisecond, "batch window")
	n := flag.Int("n", 500, "tuples")
	flag.Parse()
	_, _, _ = addr, window, n
}

// Command driftbin is the deliberately drifted doc fixture: its
// -undocumented flag is missing from the sibling OPERATIONS.md, and
// -prose is mentioned only in prose (not backticked), so the gate must
// flag both.
package main

import "flag"

func main() {
	seed := flag.Int64("seed", 1, "rng seed")
	bad := flag.Bool("undocumented", false, "this flag never made it into the guide")
	prose := flag.String("prose", "", "mentioned without backticks only")
	flag.Parse()
	_, _, _ = seed, bad, prose
}

package docs

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestCoveredFixturePasses pins the positive case: a module whose
// OPERATIONS.md mentions every binary and backticks every flag
// produces no findings.
func TestCoveredFixturePasses(t *testing.T) {
	root := filepath.Join("testdata", "covered")
	missing, err := Check(root, filepath.Join(root, "OPERATIONS.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("covered fixture produced findings: %v", missing)
	}
}

// TestDriftFixtureFails pins the gate's teeth: the deliberately
// undocumented flag must be flagged, as must a flag mentioned only in
// prose without backticks — while the documented ones stay quiet.
func TestDriftFixtureFails(t *testing.T) {
	root := filepath.Join("testdata", "drift")
	missing, err := Check(root, filepath.Join(root, "OPERATIONS.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 2 {
		t.Fatalf("drift fixture produced %d findings, want 2: %v", len(missing), missing)
	}
	joined := strings.Join(missing, "\n")
	for _, want := range []string{"flag -undocumented", "flag -prose", "cmd/driftbin/main.go"} {
		if !strings.Contains(joined, want) {
			t.Errorf("findings missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "-seed") {
		t.Errorf("documented flag -seed was flagged:\n%s", joined)
	}
}

// TestScanInventory sanity-checks the scanner's shape on the drift
// fixture: the binary is found and flags are deduplicated and sorted.
func TestScanInventory(t *testing.T) {
	inv, err := Scan(filepath.Join("testdata", "drift"))
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Binaries) != 1 || inv.Binaries[0] != "driftbin" {
		t.Fatalf("binaries = %v, want [driftbin]", inv.Binaries)
	}
	var names []string
	for _, f := range inv.Flags {
		names = append(names, f.Name)
	}
	if got, want := strings.Join(names, ","), "prose,seed,undocumented"; got != want {
		t.Fatalf("flags = %s, want %s", got, want)
	}
}

// TestRepoOperationsComplete runs the gate over this repository: every
// binary under cmd/ and every registered flag must appear in the real
// OPERATIONS.md. A new flag or binary that lands without documentation
// fails tier-1 here and the docs CI job.
func TestRepoOperationsComplete(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	missing, err := Check(root, filepath.Join(root, "OPERATIONS.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Error(m)
	}
	inv, err := Scan(root)
	if err != nil {
		t.Fatal(err)
	}
	// The scanner must keep seeing the real module: if it ever reports
	// implausibly few obligations, the gate has gone blind, not green.
	if len(inv.Binaries) < 6 {
		t.Errorf("scanner found only %d binaries under cmd/", len(inv.Binaries))
	}
	if len(inv.Flags) < 40 {
		t.Errorf("scanner found only %d flags module-wide", len(inv.Flags))
	}
}

// Package datagen generates synthetic datasets that mirror the shape of
// the five benchmarks in the paper's Table 1 (Census-Income KDD,
// Recidivism, LendingClub, KDD Cup 1999, Covertype): the same number of
// categorical and numerical attributes and the same maximum categorical
// domain cardinality, with Zipf-skewed categorical marginals so that
// frequent itemsets exist — the property Shahin's speedup depends on.
//
// Labels come from a planted, seed-deterministic decision rule over a few
// attributes plus flip noise, so the random-forest substrate has real
// signal to learn and the explainers have real structure to surface.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"shahin/internal/dataset"
	"shahin/internal/sample"
)

// CatSpec describes one categorical attribute.
type CatSpec struct {
	Card int     // domain cardinality (>= 2)
	Skew float64 // Zipf exponent of the marginal; 0 = uniform
}

// NumSpec describes one numeric attribute (values ~ Normal(Mean, Std)).
type NumSpec struct {
	Mean, Std float64
}

// Config fully describes a synthetic dataset family. Generate is
// deterministic given (Config, rows, seed).
type Config struct {
	Name      string
	Rows      int // the paper-scale row count; Generate may use fewer
	Cat       []CatSpec
	Num       []NumSpec
	FlipNoise float64 // probability a label is flipped after the rule
	// Correlation couples adjacent categorical attributes: with this
	// probability attribute i copies attribute i-1's drawn *rank* (both
	// truncated to the smaller domain) instead of sampling independently.
	// Real tabular data has exactly this structure — correlated columns
	// are what make multi-attribute frequent itemsets common — so raising
	// it strengthens pair/triple reuse. 0 (the default) keeps attributes
	// independent.
	Correlation float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("datagen: config has no name")
	}
	if len(c.Cat)+len(c.Num) == 0 {
		return fmt.Errorf("datagen: config %q has no attributes", c.Name)
	}
	for i, cs := range c.Cat {
		if cs.Card < 2 {
			return fmt.Errorf("datagen: %q cat attr %d cardinality %d < 2", c.Name, i, cs.Card)
		}
		if cs.Skew < 0 {
			return fmt.Errorf("datagen: %q cat attr %d negative skew", c.Name, i)
		}
	}
	for i, ns := range c.Num {
		if ns.Std <= 0 {
			return fmt.Errorf("datagen: %q num attr %d std %g <= 0", c.Name, i, ns.Std)
		}
	}
	if c.FlipNoise < 0 || c.FlipNoise >= 0.5 {
		return fmt.Errorf("datagen: %q flip noise %g outside [0, 0.5)", c.Name, c.FlipNoise)
	}
	if c.Correlation < 0 || c.Correlation > 1 {
		return fmt.Errorf("datagen: %q correlation %g outside [0, 1]", c.Name, c.Correlation)
	}
	return nil
}

// Schema materialises the dataset.Schema for the config: categorical
// attributes first (c0..), then numeric (n0..), binary classes.
func (c *Config) Schema() *dataset.Schema {
	s := &dataset.Schema{Classes: []string{"neg", "pos"}}
	for i, cs := range c.Cat {
		vals := make([]string, cs.Card)
		for v := range vals {
			vals[v] = fmt.Sprintf("c%d_v%d", i, v)
		}
		s.Attrs = append(s.Attrs, dataset.Attr{
			Name:   fmt.Sprintf("cat%02d", i),
			Kind:   dataset.Categorical,
			Values: vals,
		})
	}
	for i := range c.Num {
		s.Attrs = append(s.Attrs, dataset.Attr{
			Name: fmt.Sprintf("num%02d", i),
			Kind: dataset.Numeric,
		})
	}
	return s
}

// Generate produces rows tuples with labels. rows <= 0 uses the config's
// paper-scale Rows. The labelling rule depends only on the seed, so two
// generations with the same seed agree on the concept being learned.
func (c *Config) Generate(rows int, seed int64) (*dataset.Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if rows <= 0 {
		rows = c.Rows
	}
	rng := rand.New(rand.NewSource(seed))
	schema := c.Schema()
	d := dataset.New(schema, rows)

	samplers := make([]*sample.Zipf, len(c.Cat))
	for i, cs := range c.Cat {
		z, err := sample.NewZipf(cs.Card, cs.Skew)
		if err != nil {
			return nil, err
		}
		samplers[i] = z
	}

	rule := plantRule(c, rng)
	row := make([]float64, schema.NumAttrs())
	for r := 0; r < rows; r++ {
		for i := range c.Cat {
			if i > 0 && c.Correlation > 0 && rng.Float64() < c.Correlation {
				// Copy the previous attribute's rank, folded into this
				// attribute's domain. Because Zipf ranks are
				// frequency-ordered, copying ranks couples the *frequent*
				// values of adjacent columns.
				row[i] = float64(int(row[i-1]) % c.Cat[i].Card)
				continue
			}
			row[i] = float64(samplers[i].Draw(rng))
		}
		for i, ns := range c.Num {
			row[len(c.Cat)+i] = ns.Mean + ns.Std*rng.NormFloat64()
		}
		label := rule.label(row)
		if rng.Float64() < c.FlipNoise {
			label = 1 - label
		}
		d.AppendRow(row, label)
	}
	return d, nil
}

// rule is a planted labelling concept: a weighted vote over a handful of
// attribute tests, thresholded at zero.
type rule struct {
	catTests []catTest
	numTests []numTest
}

type catTest struct {
	attr   int
	below  int // test passes when value < below (the frequent head values)
	weight float64
}

type numTest struct {
	attr      int // index into the full row
	threshold float64
	weight    float64
}

// plantRule derives a deterministic concept from the generator's RNG
// stream. It tests the head (most frequent) values of up to three
// categorical attributes and the sign region of up to two numeric ones,
// which makes the concept both learnable and aligned with frequent
// itemsets — mirroring real tabular data where predictive values are
// often also common values.
func plantRule(c *Config, rng *rand.Rand) rule {
	var ru rule
	nCat := len(c.Cat)
	catPick := min(3, nCat)
	for _, a := range pickDistinct(rng, nCat, catPick) {
		head := c.Cat[a].Card / 3
		if head < 1 {
			head = 1
		}
		ru.catTests = append(ru.catTests, catTest{
			attr:   a,
			below:  head,
			weight: 1 + rng.Float64(),
		})
	}
	numPick := min(2, len(c.Num))
	for _, a := range pickDistinct(rng, len(c.Num), numPick) {
		ru.numTests = append(ru.numTests, numTest{
			attr:      nCat + a,
			threshold: c.Num[a].Mean,
			weight:    1 + rng.Float64(),
		})
	}
	return ru
}

func (ru rule) label(row []float64) int {
	score := 0.0
	total := 0.0
	for _, t := range ru.catTests {
		total += t.weight
		if int(row[t.attr]) < t.below {
			score += t.weight
		} else {
			score -= t.weight
		}
	}
	for _, t := range ru.numTests {
		total += t.weight
		if row[t.attr] > t.threshold {
			score += t.weight
		} else {
			score -= t.weight
		}
	}
	if total == 0 {
		return 0
	}
	if score > 0 {
		return 1
	}
	return 0
}

// pickDistinct returns k distinct values in [0, n), deterministically from
// rng, in ascending order.
func pickDistinct(rng *rand.Rand, n, k int) []int {
	out := sample.UniformIndices(rng, n, k)
	sort.Ints(out)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

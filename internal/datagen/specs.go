package datagen

import (
	"fmt"
	"math"
	"sort"
)

// The named configurations mirror Table 1 of the paper: per dataset, the
// number of tuples, categorical attributes (#CatA), numerical attributes
// (#NumA), and the largest categorical domain cardinality (#MaxDC).
// Cardinalities of the remaining categorical attributes are interpolated
// geometrically between 2 and #MaxDC, and marginals get a moderate Zipf
// skew so value co-occurrence (and hence frequent itemsets) resembles
// real-world tabular data.

// specs maps dataset name to its paper-shaped configuration.
var specs = map[string]*Config{
	"census":     shaped("census", 299285, 27, 15, 18, 1.1),
	"recidivism": shaped("recidivism", 9549, 14, 5, 20, 1.1),
	"lending":    shaped("lending", 42536, 26, 24, 837, 1.3),
	"kddcup99":   shaped("kddcup99", 4000000, 13, 27, 490, 1.5),
	"covertype":  shaped("covertype", 581012, 44, 10, 7, 0.9),
}

// Names returns the available named configs in a stable order.
func Names() []string {
	out := make([]string, 0, len(specs))
	for n := range specs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Spec returns a copy of a named configuration.
func Spec(name string) (*Config, error) {
	c, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown dataset %q (have %v)", name, Names())
	}
	out := *c
	out.Cat = append([]CatSpec(nil), c.Cat...)
	out.Num = append([]NumSpec(nil), c.Num...)
	return &out, nil
}

// shaped builds a config with nCat categorical attributes whose
// cardinalities ramp geometrically from 2 up to maxDC, and nNum standard
// normal numeric attributes.
func shaped(name string, rows, nCat, nNum, maxDC int, skew float64) *Config {
	c := &Config{Name: name, Rows: rows, FlipNoise: 0.05}
	for i := 0; i < nCat; i++ {
		c.Cat = append(c.Cat, CatSpec{Card: geomCard(i, nCat, maxDC), Skew: skew})
	}
	for i := 0; i < nNum; i++ {
		// Spread the scales a little so quartile bins differ per column.
		c.Num = append(c.Num, NumSpec{Mean: float64(i), Std: 1 + float64(i%5)})
	}
	return c
}

// geomCard interpolates cardinalities geometrically from 2 (i = 0) to
// maxDC (i = n-1).
func geomCard(i, n, maxDC int) int {
	if n == 1 {
		return maxDC
	}
	lo, hi := 2.0, float64(maxDC)
	frac := float64(i) / float64(n-1)
	card := int(lo*math.Pow(hi/lo, frac) + 0.5)
	if card < 2 {
		card = 2
	}
	if card > maxDC {
		card = maxDC
	}
	return card
}

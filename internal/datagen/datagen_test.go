package datagen

import (
	"math"
	"testing"

	"shahin/internal/dataset"
)

func TestNamesAndSpec(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("Names()=%v want 5 datasets", names)
	}
	for _, n := range names {
		c, err := Spec(n)
		if err != nil {
			t.Fatalf("Spec(%q): %v", n, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("Spec(%q) invalid: %v", n, err)
		}
	}
	if _, err := Spec("nope"); err == nil {
		t.Fatal("Spec(nope) should fail")
	}
}

func TestSpecReturnsCopy(t *testing.T) {
	a, _ := Spec("census")
	a.Cat[0].Card = 9999
	b, _ := Spec("census")
	if b.Cat[0].Card == 9999 {
		t.Fatal("Spec returned shared state")
	}
}

// Table 1 shape: attribute counts and max domain cardinality must match
// the paper for every named dataset.
func TestSpecsMatchTable1(t *testing.T) {
	want := map[string]struct{ rows, cat, num, maxDC int }{
		"census":     {299285, 27, 15, 18},
		"recidivism": {9549, 14, 5, 20},
		"lending":    {42536, 26, 24, 837},
		"kddcup99":   {4000000, 13, 27, 490},
		"covertype":  {581012, 44, 10, 7},
	}
	for name, w := range want {
		c, err := Spec(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Rows != w.rows {
			t.Errorf("%s rows=%d want %d", name, c.Rows, w.rows)
		}
		if len(c.Cat) != w.cat {
			t.Errorf("%s #CatA=%d want %d", name, len(c.Cat), w.cat)
		}
		if len(c.Num) != w.num {
			t.Errorf("%s #NumA=%d want %d", name, len(c.Num), w.num)
		}
		maxDC := 0
		for _, cs := range c.Cat {
			if cs.Card > maxDC {
				maxDC = cs.Card
			}
		}
		if maxDC != w.maxDC {
			t.Errorf("%s #MaxDC=%d want %d", name, maxDC, w.maxDC)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := map[string]*Config{
		"no name":    {Cat: []CatSpec{{Card: 2}}},
		"no attrs":   {Name: "x"},
		"card 1":     {Name: "x", Cat: []CatSpec{{Card: 1}}},
		"neg skew":   {Name: "x", Cat: []CatSpec{{Card: 2, Skew: -1}}},
		"zero std":   {Name: "x", Num: []NumSpec{{Std: 0}}},
		"high noise": {Name: "x", Cat: []CatSpec{{Card: 2}}, FlipNoise: 0.5},
	}
	for name, c := range cases {
		if c.Validate() == nil {
			t.Errorf("config %q should be invalid", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c, _ := Spec("recidivism")
	a, err := c.Generate(200, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Generate(200, 42)
	if err != nil {
		t.Fatal(err)
	}
	for col := range a.Cols {
		for i := range a.Cols[col] {
			if a.Cols[col][i] != b.Cols[col][i] {
				t.Fatalf("generation not deterministic at (%d,%d)", i, col)
			}
		}
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels not deterministic")
		}
	}
	diff, err := c.Generate(200, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Cols[0] {
		if a.Cols[0][i] != diff.Cols[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateValidAndShaped(t *testing.T) {
	for _, name := range Names() {
		c, _ := Spec(name)
		d, err := c.Generate(300, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.NumRows() != 300 {
			t.Fatalf("%s: rows=%d", name, d.NumRows())
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: invalid dataset: %v", name, err)
		}
		if d.Schema.MaxCardinality() != maxCard(c) {
			t.Fatalf("%s: schema maxDC=%d want %d", name, d.Schema.MaxCardinality(), maxCard(c))
		}
	}
}

func maxCard(c *Config) int {
	m := 0
	for _, cs := range c.Cat {
		if cs.Card > m {
			m = cs.Card
		}
	}
	return m
}

func TestGenerateDefaultRows(t *testing.T) {
	c := &Config{Name: "tiny", Rows: 25, Cat: []CatSpec{{Card: 3, Skew: 1}}}
	d, err := c.Generate(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 25 {
		t.Fatalf("default rows=%d want 25", d.NumRows())
	}
}

// Zipf skew must show up in the data: the most frequent value of a skewed
// categorical attribute should be substantially more common than uniform.
func TestGenerateSkewedMarginals(t *testing.T) {
	c, _ := Spec("census")
	d, err := c.Generate(5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	// The last categorical attribute has the largest cardinality (18).
	a := len(c.Cat) - 1
	card := c.Cat[a].Card
	uniform := 1.0 / float64(card)
	top := 0.0
	for _, f := range st.Freq[a] {
		if f > top {
			top = f
		}
	}
	if top < 2*uniform {
		t.Fatalf("top value freq %.3f not skewed vs uniform %.3f", top, uniform)
	}
}

// Labels must carry signal: both classes present, and the planted rule
// must beat random guessing when re-applied (it generated the labels
// modulo 5% noise).
func TestGenerateLabelsHaveSignal(t *testing.T) {
	c, _ := Spec("covertype")
	d, err := c.Generate(2000, 13)
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, l := range d.Labels {
		pos += l
	}
	frac := float64(pos) / float64(len(d.Labels))
	if frac < 0.05 || frac > 0.95 {
		t.Fatalf("degenerate class balance %.3f", frac)
	}
	// A trivially learnable concept: a depth-limited lookup of the row
	// itself reproduces labels at >= 1 - noise on average. We approximate
	// by checking the generator's noise bound holds: regenerate with the
	// same seed and count agreement (must be identical, noise included).
	d2, _ := c.Generate(2000, 13)
	for i := range d.Labels {
		if d.Labels[i] != d2.Labels[i] {
			t.Fatal("same-seed labels disagree")
		}
	}
}

// Numeric attributes must follow their configured moments.
func TestGenerateNumericMoments(t *testing.T) {
	c := &Config{
		Name: "m",
		Num:  []NumSpec{{Mean: 10, Std: 2}, {Mean: -3, Std: 0.5}},
	}
	d, err := c.Generate(20000, 17)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Mean[0]-10) > 0.1 || math.Abs(st.Std[0]-2) > 0.1 {
		t.Fatalf("attr 0 moments (%g, %g) want (10, 2)", st.Mean[0], st.Std[0])
	}
	if math.Abs(st.Mean[1]+3) > 0.05 || math.Abs(st.Std[1]-0.5) > 0.05 {
		t.Fatalf("attr 1 moments (%g, %g) want (-3, 0.5)", st.Mean[1], st.Std[1])
	}
}

func TestGeomCardEndpoints(t *testing.T) {
	if got := geomCard(0, 10, 100); got != 2 {
		t.Fatalf("first card=%d want 2", got)
	}
	if got := geomCard(9, 10, 100); got != 100 {
		t.Fatalf("last card=%d want 100", got)
	}
	if got := geomCard(0, 1, 50); got != 50 {
		t.Fatalf("single attr card=%d want 50", got)
	}
	for i := 1; i < 10; i++ {
		if geomCard(i, 10, 100) < geomCard(i-1, 10, 100) {
			t.Fatal("cardinalities not monotone")
		}
	}
}

func TestCorrelationValidation(t *testing.T) {
	c := &Config{Name: "x", Cat: []CatSpec{{Card: 2}}, Correlation: 1.5}
	if c.Validate() == nil {
		t.Fatal("correlation > 1 accepted")
	}
	c.Correlation = -0.1
	if c.Validate() == nil {
		t.Fatal("negative correlation accepted")
	}
}

// Correlated generation must make adjacent attributes co-occur far more
// often than independent generation does.
func TestCorrelationCouplesAdjacentColumns(t *testing.T) {
	base := &Config{
		Name: "corr",
		Cat:  []CatSpec{{Card: 5, Skew: 1}, {Card: 5, Skew: 1}},
	}
	agree := func(corr float64) float64 {
		c := *base
		c.Correlation = corr
		d, err := c.Generate(4000, 50)
		if err != nil {
			t.Fatal(err)
		}
		same := 0
		for i := 0; i < d.NumRows(); i++ {
			if d.Cols[0][i] == d.Cols[1][i] {
				same++
			}
		}
		return float64(same) / float64(d.NumRows())
	}
	indep := agree(0)
	coupled := agree(0.8)
	if coupled < indep+0.3 {
		t.Fatalf("correlation did not couple columns: %.3f vs %.3f", coupled, indep)
	}
}

// Package cli holds the small pieces of behaviour the shahin binaries
// share so they cannot drift apart: the two-stage signal protocol
// (first SIGINT/SIGTERM cancels gracefully, a second one forces exit)
// and the rule for marking tuples a cancelled run never attempted.
//
// Both shahin-explain's Ctrl-C partial print and shahin-serve's
// graceful drain go through this package, so an unattempted tuple is
// reported as StatusFailed identically no matter which binary — or
// which shutdown path — produced it.
package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"shahin/internal/core"
)

// Shutdown returns a context cancelled by the first SIGINT or SIGTERM.
// A second signal does not wait for graceful teardown: it prints a note
// to stderr and exits the process immediately with status 1. Call stop
// to release the signal handler once shutdown is complete.
func Shutdown(parent context.Context) (ctx context.Context, stop func()) {
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	ctx, cancel := shutdownContext(parent, sigs, os.Exit, os.Stderr)
	return ctx, func() {
		signal.Stop(sigs)
		cancel()
	}
}

// shutdownContext implements Shutdown against an injected signal
// channel and exit function so the double-signal path is testable.
// The first signal cancels the returned context; the second calls
// exit(1) after noting the forced shutdown on logw.
func shutdownContext(parent context.Context, sigs <-chan os.Signal, exit func(int), logw io.Writer) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	// Both selects below can have a signal and a finished run ready at
	// once, and select picks arbitrarily — so a signal received while
	// the run is already over must be re-checked against parent.Done()
	// before it counts, or a late Ctrl-C could force-exit a process
	// that finished cleanly.
	parentLive := func() bool {
		select {
		case <-parent.Done():
			return false
		default:
			return true
		}
	}
	go func() {
		select {
		case <-sigs:
			if !parentLive() {
				return
			}
		case <-ctx.Done():
			return
		}
		cancel()
		select {
		case <-sigs:
			if !parentLive() {
				return
			}
			fmt.Fprintln(logw, "second signal: forcing exit without graceful drain")
			exit(1)
		case <-parent.Done():
		}
	}()
	return ctx, cancel
}

// Finished keeps only the tuple/explanation pairs a cancelled run
// actually answered, applying FailUnattempted first so the filter and
// the status marking can never disagree. shahin-store uses it to flush
// the partial result of an interrupted pre-compute; shahin-serve's
// drain path persists through the same status rule.
func Finished(tuples [][]float64, exps []core.Explanation) ([][]float64, []core.Explanation) {
	FailUnattempted(exps)
	var (
		ts [][]float64
		es []core.Explanation
	)
	for i, e := range exps {
		if e.Status != core.StatusFailed {
			ts = append(ts, tuples[i])
			es = append(es, e)
		}
	}
	return ts, es
}

// FailUnattempted marks every explanation that carries no payload and
// no status — the shape a cancelled run leaves behind for tuples it
// never reached — as StatusFailed, and reports how many explanations
// were actually attempted (OK or degraded). Explanations that already
// carry a status are left untouched.
func FailUnattempted(exps []core.Explanation) (attempted int) {
	for i := range exps {
		e := &exps[i]
		if e.Status == core.StatusOK && e.Attribution == nil && e.Rule == nil {
			e.Status = core.StatusFailed
		}
		if e.Status != core.StatusFailed {
			attempted++
		}
	}
	return attempted
}

package cli

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"shahin/internal/core"
	"shahin/internal/explain"
)

// TestDoubleSignalForcesExit is the regression test for the forced-exit
// path: the first signal cancels the context (graceful drain), the
// second must call exit immediately instead of waiting for the drain.
func TestDoubleSignalForcesExit(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	var log strings.Builder
	ctx, cancel := shutdownContext(context.Background(), sigs, func(code int) { exited <- code }, &log)
	defer cancel()

	sigs <- os.Interrupt
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("first signal did not cancel the context")
	}
	select {
	case code := <-exited:
		t.Fatalf("exit(%d) called after a single signal", code)
	default:
	}

	sigs <- os.Interrupt
	select {
	case code := <-exited:
		if code != 1 {
			t.Fatalf("forced exit code = %d, want 1", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second signal did not force an exit")
	}
	if !strings.Contains(log.String(), "forcing exit") {
		t.Fatalf("forced exit left no note, log = %q", log.String())
	}
}

// TestShutdownContextParentCancel checks the signal goroutine stands
// down when the parent finishes first instead of leaking.
func TestShutdownContextParentCancel(t *testing.T) {
	parent, stopParent := context.WithCancel(context.Background())
	sigs := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, cancel := shutdownContext(parent, sigs, func(code int) { exited <- code }, new(strings.Builder))
	defer cancel()

	stopParent()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("parent cancellation did not propagate")
	}
	// Signals after the run ended must not force an exit.
	sigs <- os.Interrupt
	sigs <- os.Interrupt
	select {
	case code := <-exited:
		t.Fatalf("exit(%d) called after the parent already finished", code)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestFailUnattempted(t *testing.T) {
	exps := []core.Explanation{
		{Attribution: &explain.Attribution{}},                // attempted, ok
		{Rule: &explain.Rule{}, Status: core.StatusDegraded}, // attempted, degraded
		{},                          // unattempted → failed
		{Status: core.StatusFailed}, // already failed
		{Attribution: &explain.Attribution{}, Status: core.StatusOK}, // attempted
	}
	attempted := FailUnattempted(exps)
	if attempted != 3 {
		t.Fatalf("attempted = %d, want 3", attempted)
	}
	if exps[2].Status != core.StatusFailed {
		t.Fatalf("unattempted tuple not marked failed: %v", exps[2].Status)
	}
	if exps[0].Status != core.StatusOK || exps[1].Status != core.StatusDegraded {
		t.Fatalf("attempted tuples were rewritten: %v %v", exps[0].Status, exps[1].Status)
	}
}

package linmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSymAccessors(t *testing.T) {
	s := NewSym(3)
	s.Set(0, 0, 1)
	s.Set(2, 1, 5)
	s.Add(1, 2, 2) // mirror of (2,1)
	if got := s.At(1, 2); got != 7 {
		t.Fatalf("At(1,2)=%g want 7", got)
	}
	if got := s.At(2, 1); got != 7 {
		t.Fatalf("At(2,1)=%g want 7", got)
	}
	if s.N() != 3 {
		t.Fatalf("N=%d", s.N())
	}
	s.Set(1, 1, 4)
	s.Set(2, 2, 9)
	if got := s.MaxDiag(); got != 9 {
		t.Fatalf("MaxDiag=%g want 9", got)
	}
}

func TestSolveIdentity(t *testing.T) {
	s := NewSym(4)
	for i := 0; i < 4; i++ {
		s.Set(i, i, 1)
	}
	b := []float64{1, -2, 3, 0.5}
	x, err := s.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if !almostEqual(x[i], b[i], 1e-12) {
			t.Fatalf("x[%d]=%g want %g", i, x[i], b[i])
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// A = [[4,2],[2,3]], b = [2, 5] -> x = [-0.5, 2].
	s := NewSym(2)
	s.Set(0, 0, 4)
	s.Set(1, 0, 2)
	s.Set(1, 1, 3)
	x, err := s.Solve([]float64{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], -0.5, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("x=%v want [-0.5 2]", x)
	}
}

func TestSolveNotPD(t *testing.T) {
	s := NewSym(2)
	s.Set(0, 0, 1)
	s.Set(1, 0, 2)
	s.Set(1, 1, 1) // eigenvalues 3, -1: not PD
	if _, err := s.Solve([]float64{1, 1}); err == nil {
		t.Fatal("Solve on indefinite matrix should fail")
	}
	if _, err := s.Solve([]float64{1}); err == nil {
		t.Fatal("Solve with wrong rhs length should fail")
	}
}

// Property: for random SPD matrices A = MᵀM + I, Solve returns x with
// A x ≈ b.
func TestQuickSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		M := make([][]float64, n)
		for i := range M {
			M[i] = make([]float64, n)
			for j := range M[i] {
				M[i][j] = r.NormFloat64()
			}
		}
		A := NewSym(n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := 0.0
				for k := 0; k < n; k++ {
					v += M[k][i] * M[k][j]
				}
				if i == j {
					v += 1
				}
				A.Set(i, j, v)
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := A.Solve(b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			got := 0.0
			for j := 0; j < n; j++ {
				got += A.At(i, j) * x[j]
			}
			if !almostEqual(got, b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRidgeErrors(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	y := []float64{1, 2}
	cases := map[string]func() error{
		"no samples":   func() error { _, err := Ridge(nil, nil, nil, 1); return err },
		"bad y":        func() error { _, err := Ridge(X, []float64{1}, nil, 1); return err },
		"bad w":        func() error { _, err := Ridge(X, y, []float64{1}, 1); return err },
		"neg lambda":   func() error { _, err := Ridge(X, y, nil, -1); return err },
		"ragged X":     func() error { _, err := Ridge([][]float64{{1, 2}, {3}}, y, nil, 1); return err },
		"no features":  func() error { _, err := Ridge([][]float64{{}, {}}, y, nil, 1); return err },
		"zero weights": func() error { _, err := Ridge(X, y, []float64{0, 0}, 1); return err },
	}
	for name, fn := range cases {
		if fn() == nil {
			t.Errorf("Ridge(%s) expected error", name)
		}
	}
}

func TestRidgeRecoversLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, p = 500, 4
	trueCoef := []float64{2, -1, 0.5, 3}
	const trueIntercept = -7.0
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, p)
		y[i] = trueIntercept
		for j := 0; j < p; j++ {
			X[i][j] = rng.NormFloat64()
			y[i] += trueCoef[j] * X[i][j]
		}
	}
	m, err := Ridge(X, y, nil, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for j := range trueCoef {
		if !almostEqual(m.Coef[j], trueCoef[j], 1e-6) {
			t.Fatalf("coef[%d]=%g want %g", j, m.Coef[j], trueCoef[j])
		}
	}
	if !almostEqual(m.Intercept, trueIntercept, 1e-6) {
		t.Fatalf("intercept=%g want %g", m.Intercept, trueIntercept)
	}
	if got := m.Predict(X[0]); !almostEqual(got, y[0], 1e-6) {
		t.Fatalf("Predict=%g want %g", got, y[0])
	}
}

func TestRidgeShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64()}
		y[i] = 5*X[i][0] + rng.NormFloat64()*0.1
	}
	small, err := Ridge(X, y, nil, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Ridge(X, y, nil, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(big.Coef[0]) >= math.Abs(small.Coef[0]) {
		t.Fatalf("lambda=1e4 coef %g not shrunk vs %g", big.Coef[0], small.Coef[0])
	}
	if math.Abs(big.Coef[0]) > 1 {
		t.Fatalf("heavily regularised coef still %g", big.Coef[0])
	}
}

func TestRidgeWeights(t *testing.T) {
	// Two populations with different slopes; weighting one to ~zero must
	// recover the other's slope.
	X := [][]float64{{0}, {1}, {2}, {0}, {1}, {2}}
	y := []float64{0, 1, 2, 0, 10, 20}
	w := []float64{1, 1, 1, 1e-9, 1e-9, 1e-9}
	m, err := Ridge(X, y, w, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Coef[0], 1, 1e-3) {
		t.Fatalf("weighted slope=%g want 1", m.Coef[0])
	}
}

func TestRidgeConstantFeature(t *testing.T) {
	// A constant column makes the centred normal matrix singular at
	// lambda=0; the jitter retry must still produce a finite answer with
	// ~zero weight on the constant feature.
	X := [][]float64{{1, 3}, {2, 3}, {3, 3}, {4, 3}}
	y := []float64{2, 4, 6, 8}
	m, err := Ridge(X, y, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Coef[0], 2, 1e-6) {
		t.Fatalf("coef[0]=%g want 2", m.Coef[0])
	}
	if math.Abs(m.Coef[1]) > 1e-6 {
		t.Fatalf("constant feature coef=%g want ~0", m.Coef[1])
	}
}

// Property: ridge predictions at the weighted mean equal the weighted mean
// response (the intercept identity).
func TestQuickRidgeMeanIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(30)
		p := 1 + r.Intn(4)
		X := make([][]float64, n)
		y := make([]float64, n)
		w := make([]float64, n)
		for i := range X {
			X[i] = make([]float64, p)
			for j := range X[i] {
				X[i][j] = r.NormFloat64()
			}
			y[i] = r.NormFloat64()
			w[i] = 0.1 + r.Float64()
		}
		m, err := Ridge(X, y, w, 0.5)
		if err != nil {
			return false
		}
		totalW, ybar := 0.0, 0.0
		xbar := make([]float64, p)
		for i := range X {
			totalW += w[i]
			ybar += w[i] * y[i]
			for j := range xbar {
				xbar[j] += w[i] * X[i][j]
			}
		}
		ybar /= totalW
		for j := range xbar {
			xbar[j] /= totalW
		}
		return almostEqual(m.Predict(xbar), ybar, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRidge1000x40(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const n, p = 1000, 40
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, p)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Ridge(X, y, nil, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSolveVec keeps the compiler from eliding the Solve benchmark.
var benchSolveVec []float64

func BenchmarkSymSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const p = 24
	// A well-conditioned SPD system: A = MᵀM + I.
	M := make([][]float64, p)
	for i := range M {
		M[i] = make([]float64, p)
		for j := range M[i] {
			M[i][j] = rng.NormFloat64()
		}
	}
	A := NewSym(p)
	for i := 0; i < p; i++ {
		for j := i; j < p; j++ {
			var dot float64
			for k := 0; k < p; k++ {
				dot += M[k][i] * M[k][j]
			}
			if i == j {
				dot++
			}
			A.Set(i, j, dot)
		}
	}
	rhs := make([]float64, p)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := A.Solve(rhs)
		if err != nil {
			b.Fatal(err)
		}
		benchSolveVec = x
	}
}

// Package linmodel implements the small dense linear algebra the
// explainers need: weighted ridge regression via normal equations and a
// Cholesky solver for symmetric positive-definite systems. LIME fits its
// interpretable surrogate with Ridge; KernelSHAP solves a constrained
// weighted least squares built on Solve.
package linmodel

import (
	"fmt"
	"math"
)

// Model is a fitted linear model y ≈ Intercept + x·Coef.
type Model struct {
	Coef      []float64
	Intercept float64
}

// Predict evaluates the model at x.
func (m *Model) Predict(x []float64) float64 {
	y := m.Intercept
	for i, c := range m.Coef {
		y += c * x[i]
	}
	return y
}

// Ridge fits weighted ridge regression:
//
//	min_β,b  Σ_i w_i (y_i - b - x_i·β)²  +  λ ‖β‖²
//
// The intercept is not penalised. X is row-major with one sample per row;
// w may be nil for unit weights. λ must be non-negative; λ = 0 degrades to
// ordinary weighted least squares (with a tiny jitter retry if the normal
// matrix is singular).
func Ridge(X [][]float64, y, w []float64, lambda float64) (*Model, error) {
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("linmodel: Ridge with no samples")
	}
	if len(y) != n {
		return nil, fmt.Errorf("linmodel: %d targets for %d samples", len(y), n)
	}
	if w != nil && len(w) != n {
		return nil, fmt.Errorf("linmodel: %d weights for %d samples", len(w), n)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("linmodel: negative lambda %g", lambda)
	}
	p := len(X[0])
	if p == 0 {
		return nil, fmt.Errorf("linmodel: samples have no features")
	}
	for i := range X {
		if len(X[i]) != p {
			return nil, fmt.Errorf("linmodel: row %d has %d features want %d", i, len(X[i]), p)
		}
	}

	// Weighted means; centering absorbs the (unpenalised) intercept.
	totalW := 0.0
	for i := 0; i < n; i++ {
		totalW += weight(w, i)
	}
	if totalW <= 0 {
		return nil, fmt.Errorf("linmodel: weights sum to %g", totalW)
	}
	xbar := make([]float64, p)
	ybar := 0.0
	for i := 0; i < n; i++ {
		wi := weight(w, i)
		for j := 0; j < p; j++ {
			xbar[j] += wi * X[i][j]
		}
		ybar += wi * y[i]
	}
	for j := range xbar {
		xbar[j] /= totalW
	}
	ybar /= totalW

	// Normal equations on centred data: (XᵀWX + λI) β = XᵀWy.
	A := NewSym(p)
	b := make([]float64, p)
	xc := make([]float64, p)
	for i := 0; i < n; i++ {
		wi := weight(w, i)
		for j := 0; j < p; j++ {
			xc[j] = X[i][j] - xbar[j]
		}
		yc := y[i] - ybar
		for j := 0; j < p; j++ {
			wx := wi * xc[j]
			b[j] += wx * yc
			row := A.row(j)
			for k := 0; k <= j; k++ {
				row[k] += wx * xc[k]
			}
		}
	}
	for j := 0; j < p; j++ {
		A.Add(j, j, lambda)
	}

	coef, err := A.Solve(b)
	if err != nil {
		// Singular normal matrix (collinear or constant features): retry
		// with a small diagonal jitter scaled to the matrix.
		jitter := 1e-10 * (1 + A.MaxDiag())
		for j := 0; j < p; j++ {
			A.Add(j, j, jitter)
		}
		coef, err = A.Solve(b)
		if err != nil {
			return nil, fmt.Errorf("linmodel: normal equations singular: %w", err)
		}
	}
	intercept := ybar
	for j := 0; j < p; j++ {
		intercept -= coef[j] * xbar[j]
	}
	return &Model{Coef: coef, Intercept: intercept}, nil
}

func weight(w []float64, i int) float64 {
	if w == nil {
		return 1
	}
	return w[i]
}

// Sym is a symmetric matrix stored as the packed lower triangle.
type Sym struct {
	n    int
	data []float64 // row-major packed lower triangle
}

// NewSym returns an n×n zero symmetric matrix.
func NewSym(n int) *Sym {
	return &Sym{n: n, data: make([]float64, n*(n+1)/2)}
}

// N returns the dimension.
func (s *Sym) N() int { return s.n }

// row returns the packed storage of row i (columns 0..i).
func (s *Sym) row(i int) []float64 {
	start := i * (i + 1) / 2
	return s.data[start : start+i+1]
}

// At returns element (i, j).
func (s *Sym) At(i, j int) float64 {
	if j > i {
		i, j = j, i
	}
	return s.data[i*(i+1)/2+j]
}

// Set sets element (i, j) (and its mirror).
func (s *Sym) Set(i, j int, v float64) {
	if j > i {
		i, j = j, i
	}
	s.data[i*(i+1)/2+j] = v
}

// Add adds v to element (i, j) (and its mirror).
func (s *Sym) Add(i, j int, v float64) {
	if j > i {
		i, j = j, i
	}
	s.data[i*(i+1)/2+j] += v
}

// MaxDiag returns the largest diagonal entry (0 for an empty matrix).
func (s *Sym) MaxDiag() float64 {
	m := 0.0
	for i := 0; i < s.n; i++ {
		if d := s.At(i, i); d > m {
			m = d
		}
	}
	return m
}

// Solve solves A x = b for symmetric positive-definite A via Cholesky
// factorisation. A is not modified. It returns an error if the matrix is
// not (numerically) positive definite. Error construction lives in the
// cold helpers below so the tagged body stays free of fmt allocations.
//
//shahin:hotpath
func (s *Sym) Solve(b []float64) ([]float64, error) {
	if len(b) != s.n {
		return nil, badRHSError(len(b), s.n)
	}
	n := s.n
	// L is the packed lower-triangular Cholesky factor.
	L := make([]float64, len(s.data))
	copy(L, s.data)
	at := func(i, j int) float64 { return L[i*(i+1)/2+j] }
	set := func(i, j int, v float64) { L[i*(i+1)/2+j] = v }
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := at(i, j)
			for k := 0; k < j; k++ {
				sum -= at(i, k) * at(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, notPDError(i, sum)
				}
				set(i, j, math.Sqrt(sum))
			} else {
				set(i, j, sum/at(j, j))
			}
		}
	}
	// Forward substitution L z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= at(i, k) * z[k]
		}
		z[i] = sum / at(i, i)
	}
	// Back substitution Lᵀ x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < n; k++ {
			sum -= at(k, i) * x[k]
		}
		x[i] = sum / at(i, i)
	}
	return x, nil
}

// badRHSError and notPDError build Solve's failure values on the cold
// path, keeping fmt out of the allocation-audited solver body.
func badRHSError(got, want int) error {
	return fmt.Errorf("linmodel: Solve rhs has %d entries want %d", got, want)
}

func notPDError(pivot int, sum float64) error {
	return fmt.Errorf("linmodel: matrix not positive definite at pivot %d (%g)", pivot, sum)
}

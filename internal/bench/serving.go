package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"shahin/internal/core"
	"shahin/internal/obs"
	"shahin/internal/serve"
)

// Serving is the online-service acceptance experiment: a live
// shahin-serve pipeline (admission queue, warm pool, explanation store)
// under a mixed workload of cfg.Batch requests — concurrent singles, a
// batch call, and exact repeats — fired at a real HTTP listener. It
// records client-observed p50/p95/p99 request latency and the warm
// pool's reuse ratio, and enforces the serving invariants: every
// request answered, no failed tuples, cross-request reuse above zero,
// repeats served from the store, and a graceful drain that answers
// queued requests before shutdown.
func Serving(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	total := cfg.Batch
	if total < 8 {
		total = 8
	}
	// Workload mix: ~1/2 concurrent singles over unique tuples, ~1/4 in
	// one batch call, ~1/4 exact repeats of the singles (store hits).
	singles := total / 2
	batched := total / 4
	repeats := total - singles - batched
	// One extra unseen tuple for the drain phase, so that request has to
	// be computed (not store-answered) while the server shuts down.
	tuples, err := env.Tuples(singles + batched + 1)
	if err != nil {
		return nil, err
	}
	late := tuples[singles+batched]

	// The experiment needs a recorder of its own authority: the serving
	// histograms feed the ledger and the queue-depth gauge synchronises
	// the drain phase below.
	if cfg.Recorder == nil {
		cfg.Recorder = obs.NewRecorder()
	}
	rec := cfg.Recorder
	opts := cfg.Options(core.LIME)
	warm, err := core.NewWarm(env.Stats, env.Classifier(), opts, 0)
	if err != nil {
		return nil, err
	}
	srv, err := serve.New(warm, serve.Config{
		BatchWindow: 5 * time.Millisecond,
		BatchMax:    64,
		Recorder:    rec,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go hsrv.Serve(ln) //shahinvet:allow errcheck — always returns ErrServerClosed after Shutdown
	base := "http://" + ln.Addr().String()
	defer hsrv.Close() //shahinvet:allow errcheck — best-effort teardown after the workload

	latencies := make([]time.Duration, 0, total)
	var latMu sync.Mutex
	observe := func(d time.Duration) {
		latMu.Lock()
		latencies = append(latencies, d)
		latMu.Unlock()
	}
	client := &http.Client{Timeout: 2 * time.Minute}

	post := func(path string, body, out any) error {
		start := time.Now() //shahinvet:allow walltime — client-observed request latency is the experiment's metric
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: HTTP %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return err
		}
		observe(time.Since(start))
		return nil
	}

	// Phase 1: concurrent singles.
	results := make([]serve.ExplainResponse, singles)
	errs := make([]error, singles)
	var wg sync.WaitGroup
	for i := 0; i < singles; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = post("/v1/explain", serve.ExplainRequest{Tuple: tuples[i]}, &results[i])
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serving: single %d: %w", i, err)
		}
		if results[i].Status != "ok" {
			return nil, fmt.Errorf("serving: single %d answered %q, want ok", i, results[i].Status)
		}
	}

	// Phase 2: one batch call over fresh tuples.
	var batchResp serve.BatchResponse
	if err := post("/v1/explain/batch", serve.BatchRequest{Tuples: tuples[singles : singles+batched]}, &batchResp); err != nil {
		return nil, fmt.Errorf("serving: batch call: %w", err)
	}
	for i, e := range batchResp.Explanations {
		if e.Status != "ok" {
			return nil, fmt.Errorf("serving: batch tuple %d answered %q, want ok", i, e.Status)
		}
	}

	// Phase 3: exact repeats of phase-1 tuples; the store must answer.
	storeHits := 0
	for i := 0; i < repeats; i++ {
		var r serve.ExplainResponse
		if err := post("/v1/explain", serve.ExplainRequest{Tuple: tuples[i%singles]}, &r); err != nil {
			return nil, fmt.Errorf("serving: repeat %d: %w", i, err)
		}
		if r.Source == "store" {
			storeHits++
		}
		// A repeat must return the identical explanation the first
		// request got — the store is a cache, not an approximation.
		if a, b := mustJSON(r.Explanation), mustJSON(results[i%singles].Explanation); a != b {
			return nil, fmt.Errorf("serving: repeat %d diverged from its original explanation", i)
		}
	}
	if storeHits != repeats {
		return nil, fmt.Errorf("serving: %d of %d repeats hit the store", storeHits, repeats)
	}

	// Graceful drain with one more request in flight: fire it, wait
	// until it is provably admitted (queue-depth gauge > 0) or already
	// answered, then drain — the request must be answered, not dropped.
	lateDone := make(chan error, 1)
	go func() {
		var r serve.ExplainResponse
		lateDone <- post("/v1/explain", serve.ExplainRequest{Tuple: late}, &r)
	}()
	depth := rec.Gauge(obs.GaugeServeQueueDepth)
	admitted := time.Now() //shahinvet:allow walltime — bounds the admission wait below
	for depth.Value() == 0 && len(lateDone) == 0 && time.Since(admitted) < 10*time.Second {
		time.Sleep(time.Millisecond) //shahinvet:allow walltime — polling an external HTTP round-trip
	}
	dctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return nil, fmt.Errorf("serving: drain: %w", err)
	}
	if err := <-lateDone; err != nil {
		return nil, fmt.Errorf("serving: request during drain: %w", err)
	}

	rep := warm.Report()
	if rep.Failed > 0 {
		return nil, fmt.Errorf("serving: %d failed tuples in the warm report", rep.Failed)
	}
	if rep.ReusedSamples == 0 {
		return nil, fmt.Errorf("serving: zero cross-request sample reuse")
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	q := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}

	t := &Table{
		Title: fmt.Sprintf("Serving: %d-request mixed workload (census, LIME), batch window 5ms",
			total),
		Header: []string{"Metric", "Value"},
	}
	t.AddRow("requests (singles/batched/repeats)", fmt.Sprintf("%d (%d/%d/%d)", total, singles, batched, repeats))
	t.AddRow("flushes", fmt.Sprintf("%d", warm.Flushes()))
	t.AddRow("pool re-mines", fmt.Sprintf("%d", warm.Remines()))
	t.AddRow("store hits", fmt.Sprintf("%d", storeHits))
	t.AddRow("request p50 (ms)", f2(q(0.50)))
	t.AddRow("request p95 (ms)", f2(q(0.95)))
	t.AddRow("request p99 (ms)", f2(q(0.99)))
	t.AddRow("reuse ratio", f3(rep.ReuseRate()))
	t.AddRow("classifier invocations", fmt.Sprintf("%d", rep.Invocations))
	t.AddRow("degraded / failed", fmt.Sprintf("%d / %d", rep.Degraded, rep.Failed))
	t.AddNote("invariants verified: all %d requests answered ok; 0 failed tuples; reuse ratio %.3f > 0; %d/%d repeats store-answered; drain answered the in-flight request",
		total, rep.ReuseRate(), storeHits, repeats)
	return t, nil
}

// mustJSON marshals for byte comparison; explanations always marshal.
func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("marshal error: %v", err)
	}
	return string(b)
}

package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"shahin/internal/core"
	"shahin/internal/obs"
	"shahin/internal/serve"
)

// Serving is the online-service acceptance experiment: a live
// shahin-serve pipeline (admission queue, warm pool, explanation store)
// under a mixed workload of cfg.Batch requests — concurrent singles, a
// batch call, and exact repeats — fired at a real HTTP listener. It
// records client-observed p50/p95/p99 request latency and the warm
// pool's reuse ratio, and enforces the serving invariants: every
// request answered, no failed tuples, cross-request reuse above zero,
// repeats served from the store, and a graceful drain that answers
// queued requests before shutdown.
func Serving(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	total := cfg.Batch
	if total < 8 {
		total = 8
	}
	// Workload mix: ~1/2 concurrent singles over unique tuples, ~1/4 in
	// one batch call, ~1/4 exact repeats of the singles (store hits).
	singles := total / 2
	batched := total / 4
	repeats := total - singles - batched
	// One extra unseen tuple for the drain phase, so that request has to
	// be computed (not store-answered) while the server shuts down.
	tuples, err := env.Tuples(singles + batched + 1)
	if err != nil {
		return nil, err
	}
	late := tuples[singles+batched]

	// The experiment needs a recorder of its own authority: the serving
	// histograms feed the ledger and the queue-depth gauge synchronises
	// the drain phase below.
	if cfg.Recorder == nil {
		cfg.Recorder = obs.NewRecorder()
	}
	rec := cfg.Recorder
	// SLO tracking over the workload: the window comfortably covers the
	// whole experiment and the latency target is generous (race-mode CI
	// runs slowly), so the objectives should be met — the point is that
	// the tracker fills, exports, and lands in the ledger's gated table.
	rec.SetSLO(obs.NewSLOTracker(obs.SLOConfig{
		Window:        time.Minute,
		LatencyTarget: 2 * time.Second,
	}))
	opts := cfg.Options(core.LIME)
	warm, err := core.NewWarm(env.Stats, env.Classifier(), opts, 0)
	if err != nil {
		return nil, err
	}
	srv, err := serve.New(warm, serve.Config{
		BatchWindow: 5 * time.Millisecond,
		BatchMax:    64,
		Recorder:    rec,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go hsrv.Serve(ln) //shahinvet:allow errcheck — always returns ErrServerClosed after Shutdown
	base := "http://" + ln.Addr().String()
	defer hsrv.Close() //shahinvet:allow errcheck — best-effort teardown after the workload

	latencies := make([]time.Duration, 0, total)
	var latMu sync.Mutex
	observe := func(d time.Duration) {
		latMu.Lock()
		latencies = append(latencies, d)
		latMu.Unlock()
	}
	client := &http.Client{Timeout: 2 * time.Minute}

	post := func(path string, body, out any) error {
		start := time.Now() // client-observed request latency is the experiment's metric
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: HTTP %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return err
		}
		observe(time.Since(start))
		return nil
	}

	// Phase 1: concurrent singles.
	results := make([]serve.ExplainResponse, singles)
	errs := make([]error, singles)
	var wg sync.WaitGroup
	for i := 0; i < singles; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = post("/v1/explain", serve.ExplainRequest{Tuple: tuples[i]}, &results[i])
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serving: single %d: %w", i, err)
		}
		if results[i].Status != "ok" {
			return nil, fmt.Errorf("serving: single %d answered %q, want ok", i, results[i].Status)
		}
		if err := checkCoverage(fmt.Sprintf("single %d", i), results[i]); err != nil {
			return nil, err
		}
	}

	// Phase 2: one batch call over fresh tuples.
	var batchResp serve.BatchResponse
	if err := post("/v1/explain/batch", serve.BatchRequest{Tuples: tuples[singles : singles+batched]}, &batchResp); err != nil {
		return nil, fmt.Errorf("serving: batch call: %w", err)
	}
	for i, e := range batchResp.Explanations {
		if e.Status != "ok" {
			return nil, fmt.Errorf("serving: batch tuple %d answered %q, want ok", i, e.Status)
		}
		if err := checkCoverage(fmt.Sprintf("batch tuple %d", i), e); err != nil {
			return nil, err
		}
	}

	// Phase 3: exact repeats of phase-1 tuples; the store must answer.
	storeHits := 0
	for i := 0; i < repeats; i++ {
		var r serve.ExplainResponse
		if err := post("/v1/explain", serve.ExplainRequest{Tuple: tuples[i%singles]}, &r); err != nil {
			return nil, fmt.Errorf("serving: repeat %d: %w", i, err)
		}
		if r.Source == "store" {
			storeHits++
		}
		// A repeat must return the identical explanation the first
		// request got — the store is a cache, not an approximation.
		if a, b := mustJSON(r.Explanation), mustJSON(results[i%singles].Explanation); a != b {
			return nil, fmt.Errorf("serving: repeat %d diverged from its original explanation", i)
		}
		if err := checkCoverage(fmt.Sprintf("repeat %d", i), r); err != nil {
			return nil, err
		}
	}
	if storeHits != repeats {
		return nil, fmt.Errorf("serving: %d of %d repeats hit the store", storeHits, repeats)
	}

	// Phase 4: trace propagation and the observability endpoints, while
	// the server is still live. A fixed W3C traceparent must be adopted
	// (same trace ID, fresh span ID), echoed on the response headers and
	// body, and resolvable through GET /requests?trace=.
	const (
		upTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"
		upSpanID  = "00f067aa0ba902b7"
	)
	tr, hdr, err := tracedRequest(client, base, tuples[0], "00-"+upTraceID+"-"+upSpanID+"-01")
	if err != nil {
		return nil, fmt.Errorf("serving: traced request: %w", err)
	}
	if tr.TraceID != upTraceID {
		return nil, fmt.Errorf("serving: traced request answered trace %q, want %q", tr.TraceID, upTraceID)
	}
	if got := hdr.Get("X-Shahin-Trace-Id"); got != upTraceID {
		return nil, fmt.Errorf("serving: X-Shahin-Trace-Id %q, want %q", got, upTraceID)
	}
	echoed, err := obs.ParseTraceparent(hdr.Get("Traceparent"))
	if err != nil || echoed.TraceID != upTraceID || echoed.SpanID == upSpanID {
		return nil, fmt.Errorf("serving: echoed traceparent %q does not extend trace %s (err %v)",
			hdr.Get("Traceparent"), upTraceID, err)
	}
	var rt obs.RequestTrace
	if err := getJSON(client, base+"/requests?trace="+upTraceID, &rt); err != nil {
		return nil, fmt.Errorf("serving: resolving traced request: %w", err)
	}
	if rt.TraceID != upTraceID || rt.ParentID != upSpanID || rt.Root == nil {
		return nil, fmt.Errorf("serving: /requests?trace returned trace %q parent %q root %v",
			rt.TraceID, rt.ParentID, rt.Root != nil)
	}
	var slo struct {
		Enabled    bool               `json:"enabled"`
		WindowMS   float64            `json:"window_ms"`
		Objectives []obs.SLOObjective `json:"objectives"`
	}
	if err := getJSON(client, base+"/slo", &slo); err != nil {
		return nil, fmt.Errorf("serving: scraping /slo: %w", err)
	}
	if !slo.Enabled || len(slo.Objectives) != 2 {
		return nil, fmt.Errorf("serving: /slo reported enabled=%v with %d objectives, want 2", slo.Enabled, len(slo.Objectives))
	}
	for _, o := range slo.Objectives {
		if o.Total == 0 || o.Compliance < 0 || o.Compliance > 1 {
			return nil, fmt.Errorf("serving: /slo objective %s malformed: total %d compliance %v", o.Name, o.Total, o.Compliance)
		}
	}
	var reqSum obs.RequestsSummary
	if err := getJSON(client, base+"/requests", &reqSum); err != nil {
		return nil, fmt.Errorf("serving: scraping /requests: %w", err)
	}
	if reqSum.Capacity == 0 || reqSum.Count == 0 || len(reqSum.Requests) == 0 {
		return nil, fmt.Errorf("serving: /requests summary empty: capacity %d count %d", reqSum.Capacity, reqSum.Count)
	}

	// Graceful drain with one more request in flight: fire it, wait
	// until it is provably admitted (queue-depth gauge > 0) or already
	// answered, then drain — the request must be answered, not dropped.
	lateDone := make(chan error, 1)
	go func() {
		var r serve.ExplainResponse
		lateDone <- post("/v1/explain", serve.ExplainRequest{Tuple: late}, &r)
	}()
	depth := rec.Gauge(obs.GaugeServeQueueDepth)
	admitted := time.Now() // bounds the admission wait below
	for depth.Value() == 0 && len(lateDone) == 0 && time.Since(admitted) < 10*time.Second {
		time.Sleep(time.Millisecond) // polling an external HTTP round-trip
	}
	dctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return nil, fmt.Errorf("serving: drain: %w", err)
	}
	if err := <-lateDone; err != nil {
		return nil, fmt.Errorf("serving: request during drain: %w", err)
	}

	rep := warm.Report()
	if rep.Failed > 0 {
		return nil, fmt.Errorf("serving: %d failed tuples in the warm report", rep.Failed)
	}
	if rep.ReusedSamples == 0 {
		return nil, fmt.Errorf("serving: zero cross-request sample reuse")
	}
	// The run is instrumented, so steady-state allocation attribution
	// must have been recorded: zero means the MemStats-delta accounting
	// around flush/pool/solve went missing, not that serving was free.
	if rep.AllocBytes == 0 {
		return nil, fmt.Errorf("serving: no allocation attribution recorded (alloc_bytes = 0)")
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	q := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}

	t := &Table{
		Title: fmt.Sprintf("Serving: %d-request mixed workload (census, LIME), batch window 5ms",
			total),
		Header: []string{"Metric", "Value"},
	}
	t.AddRow("requests (singles/batched/repeats)", fmt.Sprintf("%d (%d/%d/%d)", total, singles, batched, repeats))
	t.AddRow("flushes", fmt.Sprintf("%d", warm.Flushes()))
	t.AddRow("pool re-mines", fmt.Sprintf("%d", warm.Remines()))
	t.AddRow("store hits", fmt.Sprintf("%d", storeHits))
	t.AddRow("request p50 (ms)", f2(q(0.50)))
	t.AddRow("request p95 (ms)", f2(q(0.95)))
	t.AddRow("request p99 (ms)", f2(q(0.99)))
	t.AddRow("reuse ratio", f3(rep.ReuseRate()))
	allocBytes, allocObjs := rep.AllocPerTuple()
	t.AddRow("alloc bytes/explanation", f2(allocBytes))
	t.AddRow("alloc objects/explanation", f2(allocObjs))
	t.AddRow("classifier invocations", fmt.Sprintf("%d", rep.Invocations))
	t.AddRow("degraded / failed", fmt.Sprintf("%d / %d", rep.Degraded, rep.Failed))
	if st, ok := rec.SLOStatus(); ok {
		for _, o := range st.Objectives {
			t.AddRow(fmt.Sprintf("slo %s compliance", o.Name), f3(o.Compliance))
			t.AddRow(fmt.Sprintf("slo %s burn rate", o.Name), f2(o.BurnRate))
		}
	}
	t.AddRow("retained request exemplars", fmt.Sprintf("%d", reqSum.Count))
	t.AddNote("invariants verified: all %d requests answered ok; 0 failed tuples; reuse ratio %.3f > 0; %d/%d repeats store-answered; drain answered the in-flight request; every response's stage breakdown covers >=90%% of its wait; traceparent adopted, echoed, and resolved via /requests",
		total, rep.ReuseRate(), storeHits, repeats)
	return t, nil
}

// checkCoverage enforces the latency-attribution acceptance bar: every
// answered request carries its trace identity and a stage breakdown
// whose sum explains at least 90% of the wall latency the service
// reported for it.
func checkCoverage(label string, r serve.ExplainResponse) error {
	if r.TraceID == "" {
		return fmt.Errorf("serving: %s: response carries no trace id", label)
	}
	if r.Stages == nil {
		return fmt.Errorf("serving: %s: response carries no stage breakdown", label)
	}
	sum := float64(r.Stages.Total()) / float64(time.Millisecond)
	if sum < 0.9*r.WaitMS {
		return fmt.Errorf("serving: %s: stage sum %.3fms explains <90%% of wait %.3fms", label, sum, r.WaitMS)
	}
	return nil
}

// tracedRequest posts one explain request carrying the given traceparent
// header and returns the decoded response plus the response headers.
func tracedRequest(client *http.Client, base string, tuple []float64, traceparent string) (serve.ExplainResponse, http.Header, error) {
	var out serve.ExplainResponse
	b, err := json.Marshal(serve.ExplainRequest{Tuple: tuple})
	if err != nil {
		return out, nil, err
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/explain", bytes.NewReader(b))
	if err != nil {
		return out, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", traceparent)
	resp, err := client.Do(req)
	if err != nil {
		return out, nil, err
	}
	defer resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	if resp.StatusCode != http.StatusOK {
		return out, nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, resp.Header, err
}

// getJSON fetches one observability endpoint into out.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// mustJSON marshals for byte comparison; explanations always marshal.
func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("marshal error: %v", err)
	}
	return string(b)
}

package bench

import (
	"fmt"

	"shahin/internal/core"
)

// Figure2 regenerates the paper's Figure 2: speedup over the sequential
// baseline for Shahin-Batch vs the DIST-1/4/8 and GREEDY baselines, on
// the Census-Income twin, as the batch size grows, for every explainer.
func Figure2(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 2: speedup vs baselines (census)",
		Header: []string{"Explainer", "Batch", "Shahin", "DIST-1", "DIST-4", "DIST-8", "GREEDY"},
	}
	for _, kind := range core.Kinds() {
		opts := cfg.Options(kind)
		for _, batch := range cfg.Batches {
			tuples, err := env.Tuples(batch)
			if err != nil {
				return nil, err
			}
			seq, err := runSequential(env, opts, tuples)
			if err != nil {
				return nil, fmt.Errorf("figure2 %s/%d seq: %w", kind, batch, err)
			}
			base := seq.Report.WallTime

			shahin, err := runBatch(env, opts, tuples)
			if err != nil {
				return nil, err
			}
			dist4, err := runDist(env, opts, tuples, 4)
			if err != nil {
				return nil, err
			}
			dist8, err := runDist(env, opts, tuples, 8)
			if err != nil {
				return nil, err
			}
			greedy, err := runGreedy(env, opts, tuples)
			if err != nil {
				return nil, err
			}
			t.AddRow(kind.String(), itoa(batch),
				f2(speedup(base, shahin.Report.WallTime)),
				f2(1.0),
				f2(speedup(base, dist4.Report.WallTime)),
				f2(speedup(base, dist8.Report.WallTime)),
				f2(speedup(base, greedy.Report.WallTime)))
		}
	}
	t.AddNote("DIST-k reports the average of k workers' times over an even split (paper §4.1); GREEDY budget = 10x batch bytes")
	return t, nil
}

// Figure3 regenerates the paper's Figure 3: Shahin-Batch speedup ratio
// over the sequential baseline for every dataset and explainer as the
// batch size grows.
func Figure3(cfg Config) (*Table, error) {
	return speedupSweep(cfg, "Figure 3: Shahin-Batch speedup ratio", runBatch)
}

// Figure4 regenerates the paper's Figure 4: Shahin-Streaming speedup
// ratio over the sequential baseline for every dataset and explainer.
func Figure4(cfg Config) (*Table, error) {
	return speedupSweep(cfg, "Figure 4: Shahin-Streaming speedup ratio", runStream)
}

// speedupSweep is the shared engine of Figures 3 and 4.
func speedupSweep(cfg Config, title string, run func(*Env, core.Options, [][]float64) (*core.Result, error)) (*Table, error) {
	cfg = cfg.Fill()
	t := &Table{
		Title:  title,
		Header: []string{"Dataset", "Batch", "LIME", "Anchor", "SHAP"},
	}
	for _, name := range DatasetNames() {
		env, err := NewEnv(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, batch := range cfg.Batches {
			tuples, err := env.Tuples(batch)
			if err != nil {
				return nil, err
			}
			row := []string{name, itoa(batch)}
			for _, kind := range core.Kinds() {
				opts := cfg.Options(kind)
				seq, err := runSequential(env, opts, tuples)
				if err != nil {
					return nil, fmt.Errorf("%s %s/%s seq: %w", title, name, kind, err)
				}
				res, err := run(env, opts, tuples)
				if err != nil {
					return nil, fmt.Errorf("%s %s/%s: %w", title, name, kind, err)
				}
				row = append(row, f2(speedup(seq.Report.WallTime, res.Report.WallTime)))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Figure5 regenerates the paper's Figure 5: the percentage of wall time
// Shahin-Batch spends on housekeeping (itemset mining + pooled sample
// retrieval), LIME on the Census-Income twin, as the batch grows.
func Figure5(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	opts := cfg.Options(core.LIME)
	t := &Table{
		Title:  "Figure 5: Shahin housekeeping overhead (LIME, census)",
		Header: []string{"Batch", "Overhead %", "Mined itemsets", "Reused samples"},
	}
	for _, batch := range cfg.Batches {
		tuples, err := env.Tuples(batch)
		if err != nil {
			return nil, err
		}
		res, err := runBatch(env, opts, tuples)
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(batch),
			f2(100*res.Report.OverheadFraction()),
			itoa(res.Report.FrequentItemsets),
			fmt.Sprintf("%d", res.Report.ReusedSamples))
	}
	return t, nil
}

// Figure6 regenerates the paper's Figure 6: the impact of τ (the number
// of perturbations stored per frequent itemset) on the speedup ratio.
func Figure6(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	tuples, err := env.Tuples(cfg.Batch)
	if err != nil {
		return nil, err
	}
	// Hold the itemset count fixed across the sweep, sized so that the
	// τ = 100 point's pool build stays within ~20 % of the sequential
	// budget (the paper's batches are large enough that it always is).
	fixedSets := cfg.Batch * cfg.LIMESamples / (5 * 100)
	if fixedSets > 50 {
		fixedSets = 50
	}
	if fixedSets < 10 {
		fixedSets = 10
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 6: impact of tau (census, batch=%d, %d itemsets)", cfg.Batch, fixedSets),
		Header: []string{"Tau", "LIME", "Anchor", "SHAP"},
	}
	taus := []int{1, 10, 100, 1000}
	base := map[core.Kind]float64{}
	for _, kind := range core.Kinds() {
		seq, err := runSequential(env, cfg.Options(kind), tuples)
		if err != nil {
			return nil, err
		}
		base[kind] = seq.Report.WallTime.Seconds()
	}
	for _, tau := range taus {
		row := []string{itoa(tau)}
		for _, kind := range core.Kinds() {
			opts := cfg.Options(kind)
			opts.Tau = tau
			// The paper varies τ with F fixed; the automatic pool budget
			// would otherwise shrink F as τ grows and confound the sweep.
			opts.MaxItemsets = fixedSets
			opts.DisablePoolBudget = true
			res, err := runBatch(env, opts, tuples)
			if err != nil {
				return nil, fmt.Errorf("figure6 tau=%d %s: %w", tau, kind, err)
			}
			row = append(row, f2(base[kind]/res.Report.WallTime.Seconds()))
		}
		t.AddRow(row...)
	}
	t.AddNote("itemset count held at 50 across the sweep; at this batch size tau=1000's pool build is not amortised, so the paper's plateau appears as a decline")
	return t, nil
}

// Figure7 regenerates the paper's Figure 7: the impact of the
// perturbation cache budget on the speedup ratio. The sweep is scaled
// with the workload (the paper sweeps 16 MB–1 GB at batch 10k-50k).
func Figure7(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	tuples, err := env.Tuples(cfg.Batch)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 7: impact of cache size (census, batch=%d)", cfg.Batch),
		Header: []string{"Cache", "LIME", "Anchor", "SHAP"},
	}
	base := map[core.Kind]float64{}
	for _, kind := range core.Kinds() {
		seq, err := runSequential(env, cfg.Options(kind), tuples)
		if err != nil {
			return nil, err
		}
		base[kind] = seq.Report.WallTime.Seconds()
	}
	sizes := []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
	for _, size := range sizes {
		row := []string{fmtBytes(size)}
		for _, kind := range core.Kinds() {
			opts := cfg.Options(kind)
			opts.CacheBytes = size
			res, err := runBatch(env, opts, tuples)
			if err != nil {
				return nil, fmt.Errorf("figure7 cache=%d %s: %w", size, kind, err)
			}
			row = append(row, f2(base[kind]/res.Report.WallTime.Seconds()))
		}
		t.AddRow(row...)
	}
	t.AddNote("sizes scaled ~1/16 of the paper's sweep to match the scaled batch and tau")
	return t, nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

package bench

import "sort"

// Experiment is one runnable entry in the experiment registry: a
// human-readable description plus the runner itself.
type Experiment struct {
	// Desc is the one-line description shown by `shahin-bench -list`.
	Desc string
	// Run executes the experiment at the given config scale.
	Run func(Config) (*Table, error)
}

// registry maps experiment ids to their runners. It lives in this
// package (not in cmd/shahin-bench) so every binary that runs
// experiments — shahin-bench, shahin-prof — shares one source of
// truth.
var registry = map[string]Experiment{
	"table1":       {"Table 1: dataset characteristics + per-tuple seconds", Table1},
	"fig2":         {"Figure 2: Shahin vs DIST-k and GREEDY baselines", Figure2},
	"fig3":         {"Figure 3: Shahin-Batch speedup across datasets", Figure3},
	"fig4":         {"Figure 4: Shahin-Streaming speedup across datasets", Figure4},
	"fig5":         {"Figure 5: housekeeping overhead", Figure5},
	"fig6":         {"Figure 6: impact of tau", Figure6},
	"fig7":         {"Figure 7: impact of cache size", Figure7},
	"quality":      {"Explanation quality vs sequential baseline", Quality},
	"abl-sample":   {"Ablation A1: FIM sample-size heuristic", AblationSample},
	"abl-kernel":   {"Ablation A2: SHAP kernel size sampling", AblationKernel},
	"abl-border":   {"Ablation A3: streaming negative border", AblationBorder},
	"ext-sshap":    {"Extension: Sampling-Shapley under Shahin", ExtSampleShapley},
	"ext-approx":   {"Extension: approximation via reuse fraction", ExtApproximate},
	"ext-models":   {"Extension: speedup across classifiers", ExtModels},
	"ext-parallel": {"Extension: worker parallelism", ExtParallel},
	"smoke":        {"CI smoke: seq/batch/stream cost ledger at tiny scale", Smoke},
	"exact-shap":   {"Exact TreeSHAP vs sampled KernelSHAP: agreement, determinism, and latency at zero delay", ExactShap},
	"chaos":        {"Robustness: batch/stream under fault injection, retry, and circuit breaking", Chaos},
	"serving":      {"Serving: mixed request workload against a live shahin-serve pipeline", Serving},
	"sharded":      {"Sharded: affinity-routed replica fleet with mid-stream kill, failover, and peer snapshot recovery", Sharded},
}

// defaultOrder fixes the default execution order. The smoke, exact-shap,
// chaos, sharded, and serving experiments are CI workloads, selected
// explicitly.
var defaultOrder = []string{
	"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
	"quality", "abl-sample", "abl-kernel", "abl-border",
	"ext-sshap", "ext-approx", "ext-models", "ext-parallel",
}

// LookupExperiment returns the experiment registered under id.
func LookupExperiment(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// ExperimentIDs returns every registered experiment id, sorted.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// DefaultOrder returns the default execution order (paper experiments
// only; smoke/chaos/serving are opt-in).
func DefaultOrder() []string {
	out := make([]string, len(defaultOrder))
	copy(out, defaultOrder)
	return out
}

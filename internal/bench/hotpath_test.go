package bench

import (
	"sort"
	"testing"
)

// TestHotpathBodies: every //shahin:hotpath function has a benchmark
// body, the bodies are deterministic fixtures (no errors at build), and
// each one actually runs.
func TestHotpathBodies(t *testing.T) {
	bodies, err := hotpathBodies(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"exact.(*Explainer).Explain",
		"lime.(*Explainer).kernel",
		"lime.topKByAbs",
		"linmodel.(*Sym).Solve",
		"perturb.(*Generator).ForItemset",
		"perturb.(*Generator).ForTuple",
		"perturb.BinaryEncode",
		"perturb.MatchesBins",
		"router.(*Ring).Lookup",
		"router.Signature",
	}
	var got []string
	for name := range bodies {
		got = append(got, name)
	}
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("hotpathBodies returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hotpathBodies returned %v, want %v", got, want)
		}
	}
	// Each body must survive a small iteration count without panicking.
	for name, body := range bodies {
		name, body := name, body
		t.Run(name, func(t *testing.T) { body(3) })
	}
}

// TestHotpathResultsOne: the testing.Benchmark harness produces sane
// numbers for a single real body without running the full suite.
func TestHotpathResultsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	results, err := HotpathResults(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("HotpathResults returned %d entries, want 10", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		if names[r.Name] {
			t.Errorf("duplicate benchmark name %q", r.Name)
		}
		names[r.Name] = true
		if r.Runs <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: runs=%d ns/op=%v, want positive", r.Name, r.Runs, r.NsPerOp)
		}
		if r.AllocsPerOp < 0 || r.BytesPerOp < 0 {
			t.Errorf("%s: negative allocation stats %+v", r.Name, r)
		}
	}
	if !sort.SliceIsSorted(results, func(i, j int) bool { return results[i].Name < results[j].Name }) {
		t.Error("results not sorted by name")
	}
}

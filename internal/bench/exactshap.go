package bench

import (
	"bytes"
	"encoding/json"
	"fmt"

	"shahin/internal/core"
	"shahin/internal/metrics"
	"shahin/internal/rf"
)

// ExactShapConfig is the CI-scale workload behind the exact-shap
// compare gate. Delay is negative so the classifier is the raw forest
// (no calibrated per-call stall): the exact-vs-sampled latency claim is
// stated at -delay 0, where KernelSHAP cannot hide its sampling cost
// behind injected waiting.
func ExactShapConfig(seed int64) Config {
	return Config{
		Rows:        1500,
		Batch:       40,
		Batches:     []int{40},
		Trees:       12,
		Delay:       -1,
		Seed:        seed,
		LIMESamples: 120,
		SHAPSamples: 1024,
		Tau:         25,
	}.Fill()
}

// exactAgreement is the documented cross-validation tolerance (see
// DESIGN.md §16 and EXPERIMENTS.md "Exact vs. sampled SHAP"): exact and
// KernelSHAP attributions are compared rank-wise, because the two value
// functions sit on different scales (vote fraction vs. hard-label
// expectation) while inducing the same feature ordering on tuples the
// forest is confident about.
//
// The thresholds are calibrated against KernelSHAP's own sampling
// noise: at the CI coalition budget (1024 samples, 19 attributes),
// two independently seeded KernelSHAP runs agree with each other at
// τ ≈ 0.61 and top-3 overlap ≈ 0.80 — that self-agreement is the
// ceiling any exact method can reach. Exact-vs-sampled measures
// τ ≈ 0.50–0.55 and top-3 ≈ 0.73–0.78 across seeds, i.e. exact sits
// inside the sampler's own noise band; mismatched attributions score
// ≈ 0 on both. The gates below leave margin under the observed minima
// while staying far above the mismatch floor.
const (
	exactAgreementTau  = 0.42
	exactAgreementTop3 = 0.65
)

// ExactShap is the exact-TreeSHAP acceptance experiment: the exact fast
// path and sequential KernelSHAP explain the same batch over the same
// raw forest (recidivism twin), and the run errors out — failing CI —
// unless every invariant holds:
//
//   - the exact path takes zero pool samples and exactly one classifier
//     invocation per tuple, with node visits accounted in the report;
//   - re-running the exact path yields byte-identical explanations;
//   - exact and KernelSHAP attributions agree within the documented
//     rank tolerance;
//   - the exact path's per-tuple latency beats sampled KernelSHAP's;
//   - an opaque classifier falls back to KernelSHAP with the
//     ExactFallback marker set.
func ExactShap(cfg Config) (*Table, error) {
	// The workload is pinned to the CI scale (only the seed is taken
	// from the caller): the latency and agreement claims are stated at
	// this scale, and the committed baseline ledger must reproduce no
	// matter which CLI overrides the rest of a bench run uses. Delay is
	// negative — zero injected latency — because a calibrated stall
	// would just add the same constant to both sides of the sampled run
	// and drown the solver cost being measured.
	cfg = ExactShapConfig(cfg.Fill().Seed)
	env, err := NewEnv("recidivism", cfg)
	if err != nil {
		return nil, err
	}
	tuples, err := env.Tuples(cfg.Batch)
	if err != nil {
		return nil, err
	}

	resExact, err := runSequential(env, cfg.Options(core.ExactSHAP), tuples)
	if err != nil {
		return nil, fmt.Errorf("exact-shap: exact run: %w", err)
	}
	repX := resExact.Report
	if repX.ExactFallback {
		return nil, fmt.Errorf("exact-shap: exact path fell back on an owned forest")
	}
	if repX.NodeVisits == 0 {
		return nil, fmt.Errorf("exact-shap: exact run recorded zero node visits")
	}
	if repX.PoolInvocations != 0 || repX.ReusedSamples != 0 {
		return nil, fmt.Errorf("exact-shap: exact run touched the perturbation pool (pool=%d reused=%d)",
			repX.PoolInvocations, repX.ReusedSamples)
	}
	if repX.Invocations != int64(len(tuples)) {
		return nil, fmt.Errorf("exact-shap: %d invocations for %d tuples, want one Predict each",
			repX.Invocations, len(tuples))
	}

	// Determinism: the exact walk has no sampling in the attribution
	// path, so a re-run under the same seed must reproduce every byte.
	again, err := runSequential(env, cfg.Options(core.ExactSHAP), tuples)
	if err != nil {
		return nil, fmt.Errorf("exact-shap: re-run: %w", err)
	}
	b1, err := json.Marshal(resExact.Explanations)
	if err != nil {
		return nil, err
	}
	b2, err := json.Marshal(again.Explanations)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(b1, b2) {
		return nil, fmt.Errorf("exact-shap: re-run explanations differ; exact path is nondeterministic")
	}

	resShap, err := runSequential(env, cfg.Options(core.SHAP), tuples)
	if err != nil {
		return nil, fmt.Errorf("exact-shap: sampled run: %w", err)
	}
	repS := resShap.Report

	// Agreement: rank correlation per tuple between exact and sampled
	// attributions of the same predicted class, averaged over the batch.
	var xs, ss [][]float64
	top3 := 0.0
	for i := range tuples {
		xa, sa := resExact.Explanations[i].Attribution, resShap.Explanations[i].Attribution
		if xa == nil || sa == nil {
			return nil, fmt.Errorf("exact-shap: tuple %d missing an attribution", i)
		}
		if xa.Class != sa.Class {
			return nil, fmt.Errorf("exact-shap: tuple %d explained class differs (%d vs %d)", i, xa.Class, sa.Class)
		}
		xs = append(xs, xa.Weights)
		ss = append(ss, sa.Weights)
		top3 += metrics.TopKOverlap(xa.Weights, sa.Weights, 3)
	}
	tau := metrics.MeanKendallTau(xs, ss)
	top3 /= float64(len(tuples))
	if tau < exactAgreementTau {
		return nil, fmt.Errorf("exact-shap: mean Kendall tau %.3f below tolerance %.2f", tau, exactAgreementTau)
	}
	if top3 < exactAgreementTop3 {
		return nil, fmt.Errorf("exact-shap: mean top-3 overlap %.3f below tolerance %.2f", top3, exactAgreementTop3)
	}

	// Latency: with no injected delay the exact walk must beat sampled
	// KernelSHAP per tuple — that is the point of the fast path.
	perTupleX := float64(repX.WallTime.Nanoseconds()) / float64(len(tuples))
	perTupleS := float64(repS.WallTime.Nanoseconds()) / float64(len(tuples))
	if perTupleX >= perTupleS {
		return nil, fmt.Errorf("exact-shap: exact explain_tuple_ns %.0f >= sampled %.0f at -delay 0",
			perTupleX, perTupleS)
	}

	// Fallback: an opaque classifier (function wrapper over the same
	// forest) must silently degrade to KernelSHAP with the marker set.
	opaque := rf.Func{Classes: env.Forest.NClasses, F: env.Forest.Predict}
	resFB, err := core.Sequential(env.Stats, opaque, cfg.Options(core.ExactSHAP), tuples[:8])
	if err != nil {
		return nil, fmt.Errorf("exact-shap: fallback run: %w", err)
	}
	if !resFB.Report.ExactFallback {
		return nil, fmt.Errorf("exact-shap: opaque classifier did not set the ExactFallback marker")
	}
	if resFB.Report.NodeVisits != 0 {
		return nil, fmt.Errorf("exact-shap: fallback run recorded %d node visits", resFB.Report.NodeVisits)
	}
	for i := range resFB.Explanations {
		if resFB.Explanations[i].Attribution == nil {
			return nil, fmt.Errorf("exact-shap: fallback left tuple %d unanswered", i)
		}
	}

	t := &Table{
		Title: fmt.Sprintf("Exact vs. sampled SHAP: batch=%d (recidivism), trees=%d, delay=0",
			cfg.Batch, cfg.Trees),
		Header: []string{"Run", "Invocations", "PoolInv", "NodeVisits", "Tuple (µs)", "Tau", "Top3"},
	}
	t.AddRow("ExactSHAP", fmt.Sprintf("%d", repX.Invocations), "0",
		fmt.Sprintf("%d", repX.NodeVisits), f2(perTupleX/1e3), "1.000", "1.000")
	t.AddRow("KernelSHAP", fmt.Sprintf("%d", repS.Invocations),
		fmt.Sprintf("%d", repS.PoolInvocations), "0", f2(perTupleS/1e3), f3(tau), f3(top3))
	t.AddRow("ExactSHAP (opaque cls)", fmt.Sprintf("%d", resFB.Report.Invocations), "0", "0", "-", "-", "-")
	t.AddNote("verified: zero pool usage, one invocation per tuple, byte-identical re-run, rank agreement (tau >= %.2f, top-3 >= %.2f), exact beats sampled per tuple, opaque-classifier fallback marker", exactAgreementTau, exactAgreementTop3)
	t.AddNote("invocation and node-visit counts are seed-deterministic; per-tuple latencies are not")
	return t, nil
}

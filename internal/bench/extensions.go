package bench

import (
	"fmt"

	"shahin/internal/core"
	"shahin/internal/explain/sshap"
	"shahin/internal/gbt"
	"shahin/internal/metrics"
	"shahin/internal/nb"
	"shahin/internal/rf"
)

// ExtSampleShapley (ext-sshap) measures how far the reuse framework
// carries a fourth perturbation algorithm, Sampling Shapley — the paper's
// generality claim (§3.4) quantified. Its permutation walks consist
// mostly of large coalitions no pool can serve, so the expected speedup
// is real but smaller than for the three paper algorithms.
func ExtSampleShapley(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	tuples, err := env.Tuples(cfg.Batch)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Extension: Sampling-Shapley under Shahin (census, batch=%d)", cfg.Batch),
		Header: []string{"Explainer", "Speedup", "Marginal speedup", "Reused"},
	}
	kinds := []core.Kind{core.SHAP, core.SampleSHAP}
	for _, kind := range kinds {
		opts := cfg.Options(kind)
		opts.SSHAP = sshap.Config{Permutations: 20, BaseSamples: 50}
		seq, err := runSequential(env, opts, tuples)
		if err != nil {
			return nil, err
		}
		res, err := runBatch(env, opts, tuples)
		if err != nil {
			return nil, err
		}
		marginal := res.Report.Invocations - res.Report.PoolInvocations
		marginalSpeedup := float64(seq.Report.Invocations) / float64(marginal)
		t.AddRow(kind.String(),
			f2(speedup(seq.Report.WallTime, res.Report.WallTime)),
			f2(marginalSpeedup),
			fmt.Sprintf("%d", res.Report.ReusedSamples))
	}
	t.AddNote("marginal speedup excludes the one-time pool construction (invocation ratio)")
	return t, nil
}

// ExtApproximate (ext-approx) explores the paper's closing remark that
// "one could achieve substantial speedup by allowing certain
// approximation": sweeping LIME's reuse cap from conservative to total
// reuse, trading fidelity (Kendall-τ against the sequential baseline) for
// speed.
func ExtApproximate(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	tuples, err := env.Tuples(cfg.Batch)
	if err != nil {
		return nil, err
	}
	opts := cfg.Options(core.LIME)
	seq, err := runSequential(env, opts, tuples)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Extension: approximation via reuse fraction (LIME, census, batch=%d)", cfg.Batch),
		Header: []string{"MaxReuse", "Speedup", "Kendall-tau", "Top1-agree"},
	}
	for _, reuse := range []float64{0.25, 0.5, 0.75, 0.9, 1.0} {
		o := opts
		o.LIME.MaxReuse = reuse
		res, err := runBatch(env, o, tuples)
		if err != nil {
			return nil, err
		}
		var tau, top1 float64
		for i := range tuples {
			a := seq.Explanations[i].Attribution.Weights
			b := res.Explanations[i].Attribution.Weights
			tau += metrics.KendallTau(a, b)
			top1 += metrics.TopKOverlap(a, b, 1)
		}
		n := float64(len(tuples))
		t.AddRow(f2(reuse),
			f2(speedup(seq.Report.WallTime, res.Report.WallTime)),
			f3(tau/n), f3(top1/n))
	}
	return t, nil
}

// ExtModels (ext-models) re-runs the headline speedup measurement under
// three structurally different classifiers. The paper argues its random
// forest results generalise because the optimisation only reduces the
// number of invocations; this experiment tests that claim directly.
func ExtModels(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	tuples, err := env.Tuples(cfg.Batch)
	if err != nil {
		return nil, err
	}
	boosted, err := gbt.Train(env.Train, gbt.Config{Rounds: 60, Seed: cfg.Seed + 3})
	if err != nil {
		return nil, err
	}
	bayes, err := nb.Train(env.Train)
	if err != nil {
		return nil, err
	}
	models := []struct {
		name string
		cls  rf.Classifier
	}{
		{"random-forest", env.Forest},
		{"boosted-trees", boosted},
		{"naive-bayes", bayes},
	}
	t := &Table{
		Title:  fmt.Sprintf("Extension: speedup across classifiers (LIME, census, batch=%d)", cfg.Batch),
		Header: []string{"Classifier", "Speedup", "Invocation speedup"},
	}
	opts := cfg.Options(core.LIME)
	for _, m := range models {
		delayed := rf.NewDelayed(m.cls, cfg.Delay)
		seq, err := core.Sequential(env.Stats, delayed, opts, tuples)
		if err != nil {
			return nil, err
		}
		b, err := core.NewBatch(env.Stats, delayed, opts)
		if err != nil {
			return nil, err
		}
		res, err := b.ExplainAll(tuples)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.name,
			f2(speedup(seq.Report.WallTime, res.Report.WallTime)),
			f2(float64(seq.Report.Invocations)/float64(res.Report.Invocations)))
	}
	return t, nil
}

// ExtParallel (ext-parallel) measures the worker-pool extension: Shahin's
// algorithmic savings compose with data parallelism over a frozen pool
// snapshot.
func ExtParallel(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	tuples, err := env.Tuples(cfg.Batch)
	if err != nil {
		return nil, err
	}
	opts := cfg.Options(core.LIME)
	seq, err := runSequential(env, opts, tuples)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Extension: Shahin with worker parallelism (LIME, census, batch=%d)", cfg.Batch),
		Header: []string{"Workers", "Speedup vs sequential"},
	}
	for _, workers := range []int{1, 2, 4} {
		o := opts
		o.Workers = workers
		res, err := runBatch(env, o, tuples)
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(workers), f2(speedup(seq.Report.WallTime, res.Report.WallTime)))
	}
	t.AddNote("wall-clock scaling is bounded by the local core count; the paper's DIST-k models separate machines")
	return t, nil
}

package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"time"

	"shahin/internal/core"
	"shahin/internal/dataset"
	"shahin/internal/fault"
	"shahin/internal/obs"
	"shahin/internal/router"
	"shahin/internal/serve"
)

// Sharded is the failure-aware sharded-serving experiment: a
// shahin-router front tier over three in-process shahin-serve replicas,
// driven by an affinity-heavy workload (families of tuples identical
// after discretisation, plus repeat waves), with one replica killed and
// restarted mid-stream. It demonstrates the three sharding invariants:
//
//   - itemset-affinity routing preserves the aggregate reuse a single
//     replica gets (within 10%) and is measurably better than
//     round-robin sharding, which scatters repeats away from the
//     replica whose store and pools already hold their work;
//   - a killed replica's tuples fail over in ring order (answered and
//     marked degraded, never dropped), and the restarted replica warms
//     its store from the peer that covered for it, so repeats of
//     outage-window tuples come back as store hits;
//   - the whole run is deterministic: the experiment executes twice and
//     the two ledgers must be byte-identical.
//
// Any violated invariant is an error, so CI fails loudly.
func Sharded(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	if cfg.Recorder == nil {
		cfg.Recorder = obs.NewRecorder()
	}
	// The experiment fixes its own sample budget: with shardSamples per
	// explanation and pools bounded by shardMaxItemsets, a recompute on
	// the wrong replica pays hundreds of fresh classifier invocations,
	// so the routing policies separate cleanly instead of hiding inside
	// pool noise.
	cfg.LIMESamples = shardSamples
	first, err := shardedOnce(cfg)
	if err != nil {
		return nil, err
	}
	second, err := shardedOnce(cfg)
	if err != nil {
		return nil, fmt.Errorf("sharded: deterministic re-run failed: %w", err)
	}
	a, b := mustJSON(first), mustJSON(second)
	if a != b {
		return nil, fmt.Errorf("sharded: ledger not byte-identical across two runs with seed %d", cfg.Seed)
	}
	first.AddNote("deterministic re-run: the experiment executed twice and produced byte-identical ledgers (seed %d)", cfg.Seed)
	return first, nil
}

// Workload shape: shardFamilies centroid tuples, each expanded into
// shardVariants in-bin variants (distinct floats, identical discretised
// items), streamed interleaved, followed by shardReplays full repeat
// waves in seed-shuffled order. shardMaxItemsets bounds each replica's
// pool build so the per-replica warm-up cost amortises at this scale
// the way a production pool build amortises over real traffic volume.
const (
	shardFamilies    = 12
	shardVariants    = 10
	shardReplays     = 2
	shardReplicas    = 3
	shardSamples     = 800
	shardMaxItemsets = 24
)

// shardedOnce executes one full pass of the experiment.
func shardedOnce(cfg Config) (*Table, error) {
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	workload, distinct, err := shardWorkload(env, cfg.Seed)
	if err != nil {
		return nil, err
	}
	total := len(workload)

	// Phase 1: single-replica baseline — every tuple at one node, the
	// reuse ceiling sharding is measured against.
	single, err := runShardPhase(env, cfg, router.PolicyAffinity, 1, workload)
	if err != nil {
		return nil, fmt.Errorf("sharded: single-replica phase: %w", err)
	}
	// Phase 2: three replicas, content-blind round-robin — the naive
	// sharding baseline that scatters each family across the fleet and
	// recomputes repeats on replicas that never saw the original.
	rr, err := runShardPhase(env, cfg, router.PolicyRoundRobin, shardReplicas, workload)
	if err != nil {
		return nil, fmt.Errorf("sharded: round-robin phase: %w", err)
	}
	// Phase 3: three replicas, itemset-affinity routing — families stay
	// whole, repeats land where their explanation is already stored.
	aff, err := runShardPhase(env, cfg, router.PolicyAffinity, shardReplicas, workload)
	if err != nil {
		return nil, fmt.Errorf("sharded: affinity phase: %w", err)
	}
	// Phase 4: affinity again, with a replica killed mid-stream and
	// restarted from a peer snapshot.
	chaos, err := runShardChaos(env, cfg, workload, distinct)
	if err != nil {
		return nil, err
	}

	// Gate (a): affinity reuse within 10% of the single-replica ceiling
	// and measurably better than round-robin.
	if aff.reuse() < 0.9*single.reuse() {
		return nil, fmt.Errorf("sharded: affinity reuse %.3f fell below 90%% of single-replica %.3f",
			aff.reuse(), single.reuse())
	}
	if aff.reuse() < rr.reuse()+0.02 {
		return nil, fmt.Errorf("sharded: affinity reuse %.3f not measurably better than round-robin %.3f",
			aff.reuse(), rr.reuse())
	}
	failed := single.failed + rr.failed + aff.failed + chaos.failed
	if failed != 0 {
		return nil, fmt.Errorf("sharded: %d failed tuples across the phases", failed)
	}

	t := &Table{
		Title: fmt.Sprintf("Sharded: %d-request affinity workload (%d families x %d variants, %d repeat waves) over %d replicas, kill+restart mid-stream",
			total, shardFamilies, shardVariants, shardReplays, shardReplicas),
		Header: []string{"Metric", "Value"},
	}
	t.AddRow("requests per phase (distinct + repeats)", fmt.Sprintf("%d (%d + %d)", total, distinct, total-distinct))
	t.AddRow("aggregate reuse (single replica)", f3(single.reuse()))
	t.AddRow("aggregate reuse (round-robin, 3 replicas)", f3(rr.reuse()))
	t.AddRow("aggregate reuse (affinity, 3 replicas)", f3(aff.reuse()))
	t.AddRow("affinity / single-replica reuse", f3(aff.reuse()/single.reuse()))
	t.AddRow("classifier invocations (single / rr / affinity)", fmt.Sprintf("%d / %d / %d",
		single.invocations, rr.invocations, aff.invocations))
	t.AddRow("pooled samples reused (single / rr / affinity)", fmt.Sprintf("%d / %d / %d",
		single.reused, rr.reused, aff.reused))
	t.AddRow("aggregate reuse (chaos, incl. restarted replica)", f3(chaos.reuse()))
	t.AddRow("outage answers marked degraded", itoa(chaos.degraded))
	t.AddRow("failover re-routes (transport error)", itoa(chaos.failovers))
	t.AddRow("snapshot entries restored from peer", itoa(chaos.restored))
	t.AddRow("post-restart store hits on restarted replica", itoa(chaos.storeHits))
	t.AddRow("failed tuples", itoa(failed))
	t.AddNote("aggregate reuse = 1 - fleet classifier invocations / (requests x %d samples): the fraction of the stream's labelling demand met from pooled perturbations and stored explanations instead of fresh classifier work, per-replica pool builds included", cfg.LIMESamples)
	t.AddNote("invariants verified: all %d requests of every phase answered ok; zero failed tuples across every replica including the restarted one; every outage-window answer for the dead replica's tuples failed over and was marked degraded; the restarted replica warmed %d store entries from its ring neighbour and answered %d repeats from that snapshot",
		total, chaos.restored, chaos.storeHits)
	return t, nil
}

// shardWorkload builds the affinity-heavy request stream: for each of
// shardFamilies distinct test tuples, shardVariants rows that are
// distinct as floats (so the explanation store treats them as fresh)
// but identical after discretisation (so affinity pins the family to
// one replica and the family shares one set of perturbation pools).
// The distinct prefix interleaves families — v0 of every family, then
// v1, ... — and is followed by shardReplays full repeat waves, each in
// its own seed-shuffled order so round-robin cannot accidentally
// realign a repeat with its original replica. Returns the stream and
// the length of its distinct prefix.
func shardWorkload(env *Env, seed int64) ([][]float64, int, error) {
	numIdx := env.Stats.Schema.NumericIdx()
	if len(numIdx) == 0 {
		return nil, 0, fmt.Errorf("sharded: dataset %s has no numeric attribute to build in-bin variants from", env.Name)
	}
	// Centroids must be distinct after discretisation, or two "families"
	// would merge into one ring position with a shared store.
	rows, err := env.Tuples(shardFamilies * 4)
	if err != nil {
		return nil, 0, err
	}
	seen := map[uint64]bool{}
	var centroids [][]float64
	for _, row := range rows {
		sig := router.Signature(env.Stats.ItemizeRow(row, nil))
		if seen[sig] {
			continue
		}
		seen[sig] = true
		centroids = append(centroids, row)
		if len(centroids) == shardFamilies {
			break
		}
	}
	if len(centroids) < shardFamilies {
		return nil, 0, fmt.Errorf("sharded: only %d discretisation-distinct centroids in %d test rows", len(centroids), len(rows))
	}

	families := make([][][]float64, shardFamilies)
	for f, centroid := range centroids {
		families[f] = make([][]float64, shardVariants)
		families[f][0] = centroid
		base := env.Stats.ItemizeRow(centroid, nil)
		for v := 1; v < shardVariants; v++ {
			variant, err := inBinVariant(env.Stats, centroid, numIdx, v)
			if err != nil {
				return nil, 0, err
			}
			got := env.Stats.ItemizeRow(variant, nil)
			if router.Signature(got) != router.Signature(base) {
				return nil, 0, fmt.Errorf("sharded: family %d variant %d changed its discretised signature", f, v)
			}
			families[f][v] = variant
		}
	}
	distinct := make([][]float64, 0, shardFamilies*shardVariants)
	for v := 0; v < shardVariants; v++ {
		for f := 0; f < shardFamilies; f++ {
			distinct = append(distinct, families[f][v])
		}
	}
	workload := append([][]float64(nil), distinct...)
	rng := rand.New(rand.NewSource(seed + 41))
	for w := 0; w < shardReplays; w++ {
		perm := rng.Perm(len(distinct))
		for _, i := range perm {
			workload = append(workload, distinct[i])
		}
	}
	return workload, len(distinct), nil
}

// inBinVariant returns a copy of row with one numeric attribute nudged
// by an epsilon small enough to stay in its discretisation bin. The
// attribute cycles with v so variants differ from each other as well as
// from the centroid.
func inBinVariant(st *dataset.Stats, row []float64, numIdx []int, v int) ([]float64, error) {
	out := append([]float64(nil), row...)
	attr := numIdx[(v-1)%len(numIdx)]
	base := out[attr]
	scale := math.Max(1, math.Abs(base))
	for _, eps := range []float64{1e-7, -1e-7, 1e-10, -1e-10} {
		cand := base + float64(v)*eps*scale
		if cand != base && st.Bin(attr, cand) == st.Bin(attr, base) {
			out[attr] = cand
			return out, nil
		}
	}
	return nil, fmt.Errorf("sharded: cannot nudge attribute %d value %v without leaving its bin", attr, base)
}

// shardStack is one in-process shahin-serve replica: warm explainer,
// server, and HTTP listener on a stable address (a restart rebinds the
// same port so the ring position keeps pointing at it).
type shardStack struct {
	env  *Env
	cfg  Config
	rec  *obs.Recorder
	addr string
	warm *core.Warm
	srv  *serve.Server
	hsrv *http.Server
}

// start builds a fresh warm explainer and serve stack and begins
// listening on addr ("127.0.0.1:0" picks the stable port).
func (s *shardStack) start(addr string) error {
	opts := s.cfg.Options(core.LIME)
	// A bounded pool build keeps the per-replica warm-up cost in scale
	// with this workload, the same proportion a production pool build
	// has to real traffic volume.
	opts.MaxItemsets = shardMaxItemsets
	warm, err := core.NewWarm(s.env.Stats, s.env.Classifier(), opts, 0)
	if err != nil {
		return err
	}
	// BatchMax 1 flushes every request on its own: with the sequential
	// client below, flush composition — and therefore every reuse and
	// invocation count — is identical on every run.
	srv, err := serve.New(warm, serve.Config{
		BatchWindow: time.Millisecond,
		BatchMax:    1,
		Recorder:    s.rec,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.addr = ln.Addr().String()
	s.warm, s.srv = warm, srv
	s.hsrv = &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go s.hsrv.Serve(ln) //shahinvet:allow errcheck — always returns ErrServerClosed after Close
	return nil
}

// kill hard-stops the replica: listener and live connections close,
// nothing is drained — the store dies with the process, which is
// exactly the failure peer snapshot recovery exists for.
func (s *shardStack) kill() {
	s.hsrv.Close() //shahinvet:allow errcheck — a hard kill has no error to handle
}

// restart rebinds the replica's original port with a fresh stack. The
// OS may briefly hold the port after the kill, so binding retries.
func (s *shardStack) restart() error {
	var lastErr error
	for i := 0; i < 200; i++ {
		if lastErr = s.start(s.addr); lastErr == nil {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("sharded: rebinding %s: %w", s.addr, lastErr)
}

// newShardFleet starts n replicas and a router over them.
func newShardFleet(env *Env, cfg Config, policy router.Policy, n int) ([]*shardStack, *router.Router, error) {
	fleet := make([]*shardStack, n)
	urls := make([]string, n)
	for i := range fleet {
		fleet[i] = &shardStack{env: env, cfg: cfg, rec: cfg.Recorder}
		if err := fleet[i].start("127.0.0.1:0"); err != nil {
			return nil, nil, err
		}
		urls[i] = "http://" + fleet[i].addr
	}
	rt, err := router.New(router.Config{
		Replicas: urls,
		Stats:    env.Stats,
		Policy:   policy,
		// Probes are driven explicitly (ProbeNow) so health transitions
		// happen at deterministic points in the request stream.
		ProbeInterval: time.Hour,
		Breaker:       fault.Config{BreakerThreshold: 2, BreakerCooldownCalls: 1},
		Recorder:      cfg.Recorder,
	})
	if err != nil {
		return nil, nil, err
	}
	return fleet, rt, nil
}

// shardPhase aggregates one phase's outcome across every warm explainer
// that participated (a restarted replica contributes both instances).
type shardPhase struct {
	requests    int
	demand      int64 // requests x per-explanation sample budget
	reused      int64
	invocations int64
	failed      int
	degraded    int
	failovers   int
	restored    int
	storeHits   int
}

// reuse returns the phase's aggregate reuse: the fraction of the
// stream's total labelling demand (requests x sample budget) that was
// NOT paid as fresh classifier invocations — i.e. met from pooled
// perturbations or stored explanations. Per-replica pool builds count
// against it, so sharding only scores well when locality actually
// amortises the fleet's warm-up.
func (p *shardPhase) reuse() float64 {
	if p.demand == 0 {
		return 0
	}
	return 1 - float64(p.invocations)/float64(p.demand)
}

// absorb adds a warm explainer's report into the phase aggregate.
func (p *shardPhase) absorb(rep core.Report) {
	p.reused += rep.ReusedSamples
	p.invocations += rep.Invocations
	p.failed += rep.Failed
}

// shardPost sends one tuple through the router and requires an answered
// explanation.
func shardPost(client *http.Client, base string, tuple []float64) (router.ExplainResponse, error) {
	var out router.ExplainResponse
	b, err := json.Marshal(serve.ExplainRequest{Tuple: tuple})
	if err != nil {
		return out, err
	}
	resp, err := client.Post(base+"/v1/explain", "application/json", bytes.NewReader(b))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	if out.Status != "ok" {
		return out, fmt.Errorf("answered status %q, want ok", out.Status)
	}
	return out, nil
}

// runShardPhase streams the workload sequentially through a fresh
// fleet under the given policy and aggregates the fleet's reports.
func runShardPhase(env *Env, cfg Config, policy router.Policy, n int, workload [][]float64) (*shardPhase, error) {
	fleet, rt, err := newShardFleet(env, cfg, policy, n)
	if err != nil {
		return nil, err
	}
	defer func() {
		rt.Close()
		for _, s := range fleet {
			s.kill()
		}
	}()
	lsrv, base, err := listenRouter(rt)
	if err != nil {
		return nil, err
	}
	defer lsrv.Close() //shahinvet:allow errcheck — best-effort teardown after the workload

	client := &http.Client{Timeout: 2 * time.Minute}
	for i, tuple := range workload {
		r, err := shardPost(client, base, tuple)
		if err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
		if r.Route.Degraded {
			return nil, fmt.Errorf("request %d marked degraded with a fully healthy fleet", i)
		}
	}
	phase := &shardPhase{requests: len(workload), demand: int64(len(workload)) * int64(cfg.LIMESamples)}
	for _, s := range fleet {
		phase.absorb(s.warm.Report())
	}
	return phase, nil
}

// listenRouter mounts the router's handler on a real listener, since
// the experiment exercises the same HTTP surface operators deploy.
func listenRouter(rt *router.Router) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hsrv := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go hsrv.Serve(ln) //shahinvet:allow errcheck — always returns ErrServerClosed after Close
	return hsrv, "http://" + ln.Addr().String(), nil
}

// tupleKey identifies a tuple by its exact cell values — the same
// identity the explanation store uses.
func tupleKey(tuple []float64) string { return fmt.Sprintf("%v", tuple) }

// runShardChaos streams the workload under affinity routing, kills the
// replica owning family 0 halfway through, lets the rest of the stream
// fail over, then restarts the victim, warms it from the peer that
// covered for it, and replays the victim's tuples to prove the ones its
// fallback served come back as local store hits.
func runShardChaos(env *Env, cfg Config, workload [][]float64, distinct int) (*shardPhase, error) {
	fleet, rt, err := newShardFleet(env, cfg, router.PolicyAffinity, shardReplicas)
	if err != nil {
		return nil, err
	}
	defer func() {
		rt.Close()
		for _, s := range fleet {
			s.kill()
		}
	}()
	lsrv, base, err := listenRouter(rt)
	if err != nil {
		return nil, err
	}
	defer lsrv.Close() //shahinvet:allow errcheck — best-effort teardown after the workload

	// The router and the experiment share one ring construction, so the
	// experiment can compute each tuple's owner and failover order.
	ring := router.NewRing(shardReplicas, router.DefaultVNodes)
	owner := func(tuple []float64) int {
		return ring.Lookup(router.Signature(env.Stats.ItemizeRow(tuple, nil)))
	}
	victim := owner(workload[0]) // family 0's owner
	victimName := fmt.Sprintf("replica%d", victim)
	fallback := ring.Sequence(router.Signature(env.Stats.ItemizeRow(workload[0], nil)), nil)[1]
	fallbackName := fmt.Sprintf("replica%d", fallback)

	client := &http.Client{Timeout: 2 * time.Minute}
	phase := &shardPhase{requests: len(workload), demand: int64(len(workload)) * int64(cfg.LIMESamples)}
	killAt := len(workload) / 2
	if killAt <= distinct {
		killAt = distinct + (len(workload)-distinct)/2
	}

	// Pre-kill: healthy fleet, distinct prefix plus early repeat
	// traffic, all answered at the affinity owner.
	for i := 0; i < killAt; i++ {
		r, err := shardPost(client, base, workload[i])
		if err != nil {
			return nil, fmt.Errorf("sharded chaos: request %d: %w", i, err)
		}
		if r.Route.Degraded {
			return nil, fmt.Errorf("sharded chaos: request %d degraded before the kill", i)
		}
	}

	// Kill the victim mid-stream; its store (every family it served so
	// far) dies with it.
	retiredReport := fleet[victim].warm.Report()
	fleet[victim].kill()

	// Outage window: the victim's tuples must fail over in ring order,
	// answered and marked degraded — never dropped. servedBy records
	// which surviving replica covered each victim-owned tuple.
	servedBy := make(map[string]string)
	for i := killAt; i < len(workload); i++ {
		r, err := shardPost(client, base, workload[i])
		if err != nil {
			return nil, fmt.Errorf("sharded chaos: request %d during outage: %w", i, err)
		}
		if owner(workload[i]) == victim {
			if !r.Route.Degraded {
				return nil, fmt.Errorf("sharded chaos: request %d owned by dead %s not marked degraded", i, victimName)
			}
			if r.Route.Replica == victimName {
				return nil, fmt.Errorf("sharded chaos: request %d answered by the dead replica", i)
			}
			phase.degraded++
			servedBy[tupleKey(workload[i])] = r.Route.Replica
		} else if r.Route.Degraded {
			return nil, fmt.Errorf("sharded chaos: request %d degraded though its owner %s is alive", i, r.Route.Replica)
		}
		if r.Route.Failovers > 0 {
			phase.failovers++
		}
	}
	if phase.degraded == 0 {
		return nil, fmt.Errorf("sharded chaos: the dead replica owned no outage-window tuples — workload does not exercise failover")
	}
	if phase.failovers == 0 {
		return nil, fmt.Errorf("sharded chaos: no transport-error failover observed")
	}

	// Restart the victim on its original port and warm it from family
	// 0's first fallback — the node that covered its tuples during the
	// outage — through serve's checksummed, version-gated /snapshot.
	if err := fleet[victim].restart(); err != nil {
		return nil, err
	}
	rctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	restored, err := fleet[victim].srv.RestoreFromPeers(rctx,
		[]string{"http://" + fleet[fallback].addr}, client)
	if err != nil {
		return nil, fmt.Errorf("sharded chaos: peer snapshot recovery: %w", err)
	}
	if restored == 0 {
		return nil, fmt.Errorf("sharded chaos: peer snapshot restored nothing")
	}
	phase.restored = restored

	// Probes re-admit the replica at a deterministic point: health flag
	// up, breaker trial passed.
	rt.ProbeNow()
	rt.ProbeNow()
	rt.ProbeNow()

	// Replay every victim-owned distinct tuple. All must come back from
	// the victim, un-degraded; the ones its fallback computed during
	// the outage must be answered from the peer-restored store without
	// recomputation.
	for i := 0; i < distinct; i++ {
		tuple := workload[i]
		if owner(tuple) != victim {
			continue
		}
		r, err := shardPost(client, base, tuple)
		if err != nil {
			return nil, fmt.Errorf("sharded chaos: replay of request %d: %w", i, err)
		}
		if r.Route.Replica != victimName || r.Route.Degraded {
			return nil, fmt.Errorf("sharded chaos: replay of request %d routed to %s (degraded=%v), want recovered %s",
				i, r.Route.Replica, r.Route.Degraded, victimName)
		}
		if servedBy[tupleKey(tuple)] == fallbackName {
			if r.Source != "store" {
				return nil, fmt.Errorf("sharded chaos: replay of request %d answered from %q, want the peer-restored store", i, r.Source)
			}
			phase.storeHits++
		}
	}
	if phase.storeHits == 0 {
		return nil, fmt.Errorf("sharded chaos: no replay was answered from the peer-restored snapshot")
	}

	phase.absorb(retiredReport)
	for _, s := range fleet {
		phase.absorb(s.warm.Report())
	}
	if phase.failed != 0 {
		return nil, fmt.Errorf("sharded chaos: %d failed tuples", phase.failed)
	}
	return phase, nil
}

package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"shahin/internal/core"
	"shahin/internal/fault"
)

// ChaosFaults returns the fault profile a chaos run uses when the
// caller configured none (or only part of one): a 5 % transient error
// rate under a 5 ms per-call deadline with three retries, plus a
// deterministic call-indexed outage window long enough to trip the
// circuit breaker — so every resilience layer (retry, deadline,
// breaker, degradation ladder) demonstrably fires.
func ChaosFaults(base *fault.Config, seed int64) fault.Config {
	f := fault.Config{}
	if base != nil {
		f = *base
	}
	if f.FailRate <= 0 && f.SpikeRate <= 0 && f.OutageCalls <= 0 {
		f.FailRate = 0.05
	}
	if f.PredictTimeout <= 0 {
		f.PredictTimeout = 5 * time.Millisecond
	}
	if f.MaxRetries <= 0 {
		f.MaxRetries = 3
	}
	if f.Seed == 0 {
		f.Seed = seed + 17
	}
	if f.OutageCalls <= 0 {
		// A hard outage forces consecutive failures past the breaker
		// threshold; it starts late enough that the label cache and
		// majority tracker are warm, so the ladder degrades instead of
		// failing. Call-indexed, so deterministic under any timing.
		f.OutageStart = 500
		f.OutageCalls = 400
	}
	// Keep the breaker cooldown call-counted (deterministic) unless the
	// caller explicitly asked for a wall-clock cooldown.
	if f.BreakerCooldown <= 0 && f.BreakerCooldownCalls <= 0 {
		f.BreakerCooldownCalls = 200
	}
	return f
}

// Chaos is the robustness acceptance experiment: Shahin-Batch and
// Shahin-Streaming (LIME, census twin) against a failing backend. It
// verifies the three chaos invariants — no tuple fails (the degradation
// ladder always answers), the batch run is byte-deterministic under the
// same fault seed, and retries/degradations are visible in the report —
// and errors out if any is violated, so CI fails loudly.
func Chaos(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	fcfg := ChaosFaults(cfg.Fault, cfg.Seed)
	cfg.Fault = &fcfg

	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	tuples, err := env.Tuples(cfg.Batch)
	if err != nil {
		return nil, err
	}
	opts := cfg.Options(core.LIME)
	opts.StreamRecompute = cfg.Batch / 4

	t := &Table{
		Title: fmt.Sprintf("Chaos: LIME at batch=%d (census), fail-rate=%.2f, outage=[%d,%d), timeout=%v, retries=%d",
			cfg.Batch, fcfg.FailRate, fcfg.OutageStart, fcfg.OutageStart+fcfg.OutageCalls,
			fcfg.PredictTimeout, fcfg.MaxRetries),
		Header: []string{"Mode", "Invocations", "Reused", "Retries", "Degraded", "Failed", "Wall (ms)"},
	}
	runs := []struct {
		mode string
		run  func(*Env, core.Options, [][]float64) (*core.Result, error)
	}{
		{"batch", runBatch},
		{"stream", runStream},
	}
	var firstBatch []byte
	for _, r := range runs {
		res, err := r.run(env, opts, tuples)
		if err != nil {
			return nil, fmt.Errorf("chaos %s: %w", r.mode, err)
		}
		rep := res.Report
		if rep.Failed > 0 {
			return nil, fmt.Errorf("chaos %s: %d tuples failed — the degradation ladder should have answered them", r.mode, rep.Failed)
		}
		if r.mode == "batch" {
			firstBatch, err = json.Marshal(res.Explanations)
			if err != nil {
				return nil, err
			}
		}
		t.AddRow(r.mode,
			fmt.Sprintf("%d", rep.Invocations),
			fmt.Sprintf("%d", rep.ReusedSamples),
			fmt.Sprintf("%d", rep.Retries),
			fmt.Sprintf("%d", rep.Degraded),
			fmt.Sprintf("%d", rep.Failed),
			f2(float64(rep.WallTime)/float64(time.Millisecond)))
	}

	// Determinism under chaos: the same fault seed must inject the same
	// faults at the same calls, so a re-run is byte-identical.
	res2, err := runBatch(env, opts, tuples)
	if err != nil {
		return nil, fmt.Errorf("chaos batch re-run: %w", err)
	}
	secondBatch, err := json.Marshal(res2.Explanations)
	if err != nil {
		return nil, err
	}
	if string(firstBatch) != string(secondBatch) {
		return nil, fmt.Errorf("chaos: batch explanations are not byte-identical across two runs with fault seed %d", fcfg.Seed)
	}
	t.AddNote("invariants verified: 0 failed tuples on both paths; batch byte-identical across re-runs (fault seed %d)", fcfg.Seed)
	return t, nil
}

package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shahin/internal/obs"
)

func TestTableMarshalJSON(t *testing.T) {
	tab := &Table{
		Title:  "Smoke: cost ledger",
		Header: []string{"Explainer", "Invocations", "ReuseRate"},
	}
	tab.AddRow("LIME", "1470", "0.746")
	tab.AddRow("SHAP", "897", "0.720")
	tab.AddNote("counts are seed-deterministic")

	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title  string   `json:"title"`
		Header []string `json:"header"`
		Rows   [][]any  `json:"rows"`
		Notes  []string `json:"notes"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != tab.Title || len(got.Header) != 3 || len(got.Rows) != 2 || len(got.Notes) != 1 {
		t.Fatalf("shape %+v", got)
	}
	// Cells come back typed: strings stay strings, counts become JSON
	// numbers, decimals become floats.
	if got.Rows[0][0] != "LIME" {
		t.Errorf("string cell %v (%T)", got.Rows[0][0], got.Rows[0][0])
	}
	if got.Rows[0][1] != float64(1470) {
		t.Errorf("integer cell %v (%T)", got.Rows[0][1], got.Rows[0][1])
	}
	if got.Rows[1][2] != 0.720 {
		t.Errorf("float cell %v (%T)", got.Rows[1][2], got.Rows[1][2])
	}
}

// runSmokeLedger runs the smoke experiment on a fresh recorder and
// returns its ledger.
func runSmokeLedger(t *testing.T, seed int64) *obs.RunLedger {
	t.Helper()
	cfg := SmokeConfig(seed)
	cfg.Recorder = obs.NewRecorder()
	tab, err := Smoke(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return BuildLedger("smoke", cfg, []string{"smoke"}, []*Table{tab}, 0)
}

// TestSmokeLedgerDeterminism is the acceptance check that two same-seed
// smoke runs produce byte-identical invocation and reuse accounting:
// the counters section and the embedded result tables (minus wall-time
// columns, which are hardware noise) must match exactly.
func TestSmokeLedgerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke runs take a few hundred ms")
	}
	a := runSmokeLedger(t, 7)
	b := runSmokeLedger(t, 7)

	ca, err := json.Marshal(a.Metrics.Counters)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := json.Marshal(b.Metrics.Counters)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("counters differ across same-seed runs:\n%s\n%s", ca, cb)
	}
	if a.Metrics.Counters[obs.CounterInvocations] == 0 {
		t.Fatal("smoke run recorded no invocations")
	}
	if a.ReuseRatio() <= 0 {
		t.Fatal("smoke run recorded no reuse")
	}

	// Table rows: every column except the trailing wall-time one must be
	// byte-identical.
	ta, tb := a.Tables[0].(*Table), b.Tables[0].(*Table)
	if len(ta.Rows) != len(tb.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(ta.Rows), len(tb.Rows))
	}
	for i := range ta.Rows {
		ra, rb := ta.Rows[i], tb.Rows[i]
		for j := 0; j < len(ra)-1; j++ {
			if ra[j] != rb[j] {
				t.Errorf("row %d col %d differs: %q vs %q", i, j, ra[j], rb[j])
			}
		}
	}
}

// TestCompareFilesExitCodes covers the three CI verdicts: parity or
// improvement exits 0, a gated regression exits 1, unreadable or
// malformed artifacts exit 2.
func TestCompareFilesExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke runs take a few hundred ms")
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	l := runSmokeLedger(t, 11)
	if err := WriteLedgerFile(base, l); err != nil {
		t.Fatal(err)
	}
	th := obs.Thresholds{Invocations: 0, Wall: 10, Reuse: 0.001}

	var out bytes.Buffer
	if code := CompareFiles(&out, base, base, th); code != CompareOK {
		t.Fatalf("self-compare exit %d, want %d\n%s", code, CompareOK, out.String())
	}
	if !strings.Contains(out.String(), "verdict: ok") {
		t.Errorf("missing ok verdict:\n%s", out.String())
	}

	// Injected regression: force the invocation counter past the exact
	// threshold and the reuse ratio down.
	worse := *l
	worse.Metrics.Counters = map[string]int64{}
	for k, v := range l.Metrics.Counters {
		worse.Metrics.Counters[k] = v
	}
	worse.Metrics.Counters[obs.CounterInvocations] += 500
	worseFile := filepath.Join(dir, "worse.json")
	if err := WriteLedgerFile(worseFile, &worse); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := CompareFiles(&out, base, worseFile, th); code != CompareRegressed {
		t.Fatalf("regression exit %d, want %d\n%s", code, CompareRegressed, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "verdict: REGRESSION") {
		t.Errorf("regression verdict missing:\n%s", out.String())
	}

	// An improvement in the other direction still exits 0.
	out.Reset()
	if code := CompareFiles(&out, worseFile, base, th); code != CompareOK {
		t.Fatalf("improvement exit %d, want %d\n%s", code, CompareOK, out.String())
	}

	// Malformed: missing file, then invalid JSON.
	out.Reset()
	if code := CompareFiles(&out, base, filepath.Join(dir, "nope.json"), th); code != CompareMalformed {
		t.Fatalf("missing file exit %d, want %d", code, CompareMalformed)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := CompareFiles(&out, bad, base, th); code != CompareMalformed {
		t.Fatalf("malformed baseline exit %d, want %d", code, CompareMalformed)
	}
}

// TestLedgerFileRoundTrip checks WriteLedgerFile/ReadLedgerFile and that
// the embedded config survives as generic JSON.
func TestLedgerFileRoundTrip(t *testing.T) {
	rec := obs.NewRecorder()
	rec.Counter(obs.CounterInvocations).Add(42)
	cfg := SmokeConfig(3)
	cfg.Recorder = rec
	l := BuildLedger("unit", cfg, []string{"smoke"}, nil, 0)

	path := filepath.Join(t.TempDir(), "BENCH_unit.json")
	if err := WriteLedgerFile(path, l); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "unit" || back.Metrics.Counters[obs.CounterInvocations] != 42 {
		t.Fatalf("read back %+v", back)
	}
	cfgMap, ok := back.Config.(map[string]any)
	if !ok || cfgMap["seed"] != float64(3) || cfgMap["rows"] != float64(1200) {
		t.Fatalf("config did not survive: %v", back.Config)
	}
	if back.Env.GoVersion == "" {
		t.Fatal("fingerprint missing")
	}
}

// TestCompareFilesAllocRegression: an injected 2x allocs/op on one
// hotpath benchmark fails the file-level compare (the CI gate), and a
// schema-2-style baseline without benchmark data never fires the gate.
func TestCompareFilesAllocRegression(t *testing.T) {
	dir := t.TempDir()
	l := &obs.RunLedger{
		Schema: obs.LedgerSchemaVersion,
		Name:   "alloc-gate",
		Metrics: obs.Metrics{
			Counters: map[string]int64{obs.CounterInvocations: 100},
		},
		Benchmarks: []obs.BenchmarkResult{
			{Name: "perturb.(*Generator).ForItemset", Runs: 1000, NsPerOp: 1800, AllocsPerOp: 100, BytesPerOp: 4096},
		},
	}
	base := filepath.Join(dir, "base.json")
	if err := WriteLedgerFile(base, l); err != nil {
		t.Fatal(err)
	}
	worse := *l
	worse.Benchmarks = []obs.BenchmarkResult{
		{Name: "perturb.(*Generator).ForItemset", Runs: 1000, NsPerOp: 1800, AllocsPerOp: 200, BytesPerOp: 4096},
	}
	worseFile := filepath.Join(dir, "worse.json")
	if err := WriteLedgerFile(worseFile, &worse); err != nil {
		t.Fatal(err)
	}
	th := obs.Thresholds{Invocations: 10, Wall: 10, Reuse: 1, AllocsPerOp: 0.5, BytesPerOp: 0.5, GCCPU: 0.25}

	var out bytes.Buffer
	if code := CompareFiles(&out, base, worseFile, th); code != CompareRegressed {
		t.Fatalf("2x allocs/op exit %d, want %d\n%s", code, CompareRegressed, out.String())
	}
	if !strings.Contains(out.String(), "allocs_per_op") || !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("alloc regression not called out:\n%s", out.String())
	}

	// The same fresh run against a benchmark-less baseline compares ok.
	old := *l
	old.Schema = 2
	old.Benchmarks = nil
	oldFile := filepath.Join(dir, "old.json")
	if err := WriteLedgerFile(oldFile, &old); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := CompareFiles(&out, oldFile, worseFile, th); code != CompareOK {
		t.Fatalf("schema-2 baseline exit %d, want %d\n%s", code, CompareOK, out.String())
	}
}

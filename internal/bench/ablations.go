package bench

import (
	"fmt"

	"shahin/internal/core"
)

// AblationSample (A1) questions the paper's max(1000, 1%) mining-sample
// heuristic: does mining the whole batch buy anything over the sample?
func AblationSample(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	tuples, err := env.Tuples(cfg.Batch)
	if err != nil {
		return nil, err
	}
	opts := cfg.Options(core.LIME)
	seq, err := runSequential(env, opts, tuples)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation A1: FIM sample size (LIME, census, batch=%d)", cfg.Batch),
		Header: []string{"Mining sample", "Speedup", "Overhead %", "Itemsets"},
	}
	for _, mode := range []struct {
		label  string
		sample int
	}{
		{"heuristic max(1000,1%)", 0},
		{"whole batch", -1},
		{"tiny (50 rows)", 50},
	} {
		o := opts
		o.MineSample = mode.sample
		res, err := runBatch(env, o, tuples)
		if err != nil {
			return nil, err
		}
		t.AddRow(mode.label,
			f2(speedup(seq.Report.WallTime, res.Report.WallTime)),
			f2(100*res.Report.OverheadFraction()),
			itoa(res.Report.FrequentItemsets))
	}
	return t, nil
}

// AblationKernel (A2) questions the SHAP-kernel-proportional coalition
// size sampling (Equation 1): how much reuse does it enable compared to
// uniform coalition sizes?
func AblationKernel(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	tuples, err := env.Tuples(cfg.Batch)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation A2: SHAP coalition size sampling (census, batch=%d)", cfg.Batch),
		Header: []string{"Size sampling", "Speedup", "Reused samples", "Invocations"},
	}
	for _, mode := range []struct {
		label   string
		uniform bool
	}{
		{"kernel-proportional (Eq. 1)", false},
		{"uniform", true},
	} {
		opts := cfg.Options(core.SHAP)
		opts.SHAP.UniformSizes = mode.uniform
		seq, err := runSequential(env, opts, tuples)
		if err != nil {
			return nil, err
		}
		res, err := runBatch(env, opts, tuples)
		if err != nil {
			return nil, err
		}
		t.AddRow(mode.label,
			f2(speedup(seq.Report.WallTime, res.Report.WallTime)),
			fmt.Sprintf("%d", res.Report.ReusedSamples),
			fmt.Sprintf("%d", res.Report.Invocations))
	}
	return t, nil
}

// AblationBorder (A3) questions the streaming variant's negative-border
// tracking: does promoting border itemsets between re-mines help?
func AblationBorder(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	// Use the largest batch so several re-mine windows elapse.
	batch := cfg.Batches[len(cfg.Batches)-1]
	tuples, err := env.Tuples(batch)
	if err != nil {
		return nil, err
	}
	opts := cfg.Options(core.LIME)
	opts.StreamRecompute = batch / 4
	seq, err := runSequential(env, opts, tuples)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation A3: streaming negative border (LIME, census, stream=%d)", batch),
		Header: []string{"Negative border", "Speedup", "Invocations", "Reused samples"},
	}
	for _, mode := range []struct {
		label string
		on    bool
	}{
		{"on (paper §3.5)", true},
		{"off", false},
	} {
		o := opts
		border := mode.on
		o.StreamBorder = &border
		res, err := runStream(env, o, tuples)
		if err != nil {
			return nil, err
		}
		t.AddRow(mode.label,
			f2(speedup(seq.Report.WallTime, res.Report.WallTime)),
			fmt.Sprintf("%d", res.Report.Invocations),
			fmt.Sprintf("%d", res.Report.ReusedSamples))
	}
	return t, nil
}

package bench

import (
	"fmt"
	"math"

	"shahin/internal/core"
	"shahin/internal/dataset"
	"shahin/internal/metrics"
)

// Quality regenerates the paper's §4.2 "Explanation Quality" evaluation:
// fidelity of Shahin-Batch explanations against the sequential baseline
// on the Census-Income twin — Kendall-τ rank correlation and deviation of
// the importance vectors for LIME and SHAP, and rule agreement for
// Anchor.
func Quality(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	tuples, err := env.Tuples(cfg.Batch)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Explanation quality: Shahin-Batch vs sequential (census, batch=%d)", cfg.Batch),
		Header: []string{"Comparison", "Kendall-tau", "Top1-agree", "Mean-Euclid", "Max-dev", "Same-rule %"},
	}
	for _, kind := range core.Kinds() {
		opts := cfg.Options(kind)
		seq, err := runSequential(env, opts, tuples)
		if err != nil {
			return nil, err
		}
		sh, err := runBatch(env, opts, tuples)
		if err != nil {
			return nil, err
		}
		// The paper's yardstick: how much do two *sequential* runs with
		// different seeds disagree? Shahin only has to stay within that
		// noise floor.
		opts2 := opts
		opts2.Seed += 7919
		seq2, err := runSequential(env, opts2, tuples)
		if err != nil {
			return nil, err
		}

		switch kind {
		case core.Anchor:
			t.AddRow(ruleAgreement(kind.String()+" Shahin-vs-seq", seq, sh, tuples)...)
			t.AddRow(ruleAgreement(kind.String()+" seq-vs-seq", seq, seq2, tuples)...)
		default:
			t.AddRow(attrAgreement(kind.String()+" Shahin-vs-seq", seq, sh, tuples)...)
			t.AddRow(attrAgreement(kind.String()+" seq-vs-seq", seq, seq2, tuples)...)
		}
	}
	t.AddNote("seq-vs-seq rows are the baseline's own seed-to-seed variation (the paper's noise floor)")
	t.AddNote("Max-dev column for Anchor is the mean |precision difference|; Same-rule %% is exact predicate-set agreement")
	return t, nil
}

// attrAgreement summarises attribution fidelity between two runs.
func attrAgreement(label string, a, b *core.Result, tuples [][]float64) []string {
	var taus, euclid, top1 float64
	maxDev := 0.0
	for i := range tuples {
		wa := a.Explanations[i].Attribution.Weights
		wb := b.Explanations[i].Attribution.Weights
		taus += metrics.KendallTau(wa, wb)
		euclid += metrics.Euclidean(wa, wb)
		if d := metrics.MaxAbsDev(wa, wb); d > maxDev {
			maxDev = d
		}
		top1 += metrics.TopKOverlap(wa, wb, 1)
	}
	n := float64(len(tuples))
	return []string{label, f3(taus / n), f3(top1 / n), f3(euclid / n), f3(maxDev), "-"}
}

// ruleAgreement summarises rule fidelity between two runs.
func ruleAgreement(label string, a, b *core.Result, tuples [][]float64) []string {
	same := 0
	var precDev float64
	for i := range tuples {
		ra, rb := a.Explanations[i].Rule, b.Explanations[i].Rule
		if sameRule(ra.Items, rb.Items) {
			same++
		}
		precDev += math.Abs(ra.Precision - rb.Precision)
	}
	n := float64(len(tuples))
	return []string{label, "-", "-", "-", f3(precDev / n), f2(100 * float64(same) / n)}
}

// sameRule reports exact predicate-set equality of two canonical rules.
func sameRule(a, b dataset.Itemset) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"shahin/internal/core"
	"shahin/internal/fault"
	"shahin/internal/obs"
)

// configJSON is the serializable view of a Config embedded in every run
// ledger (the Recorder itself is runtime state, not configuration).
type configJSON struct {
	Rows        int           `json:"rows"`
	Batch       int           `json:"batch"`
	Batches     []int         `json:"batches"`
	Trees       int           `json:"trees"`
	DelayNS     int64         `json:"delay_ns"`
	Delay       string        `json:"delay"`
	Seed        int64         `json:"seed"`
	LIMESamples int           `json:"lime_samples"`
	SHAPSamples int           `json:"shap_samples"`
	Tau         int           `json:"tau"`
	Fault       *fault.Config `json:"fault,omitempty"`
	Experiments []string      `json:"experiments,omitempty"`
}

// ledgerView converts the config (post-Fill) to its ledger form.
func (c Config) ledgerView(experiments []string) configJSON {
	return configJSON{
		Rows:        c.Rows,
		Batch:       c.Batch,
		Batches:     c.Batches,
		Trees:       c.Trees,
		DelayNS:     c.Delay.Nanoseconds(),
		Delay:       c.Delay.String(),
		Seed:        c.Seed,
		LIMESamples: c.LIMESamples,
		SHAPSamples: c.SHAPSamples,
		Tau:         c.Tau,
		Fault:       c.Fault,
		Experiments: experiments,
	}
}

// BuildLedger assembles the persistent run artifact of a bench
// invocation: the recorder's metric snapshot, stage totals and event
// drop count (via obs.Ledger), the serialized config, the experiment
// ids that ran, and every result table in typed-JSON form. wall, when
// positive, overrides the recorder uptime as the run's wall time.
func BuildLedger(name string, cfg Config, experiments []string, tables []*Table, wall time.Duration) *obs.RunLedger {
	l := cfg.Recorder.Ledger(name)
	l.Config = cfg.ledgerView(experiments)
	for _, t := range tables {
		l.Tables = append(l.Tables, t)
	}
	if wall > 0 {
		l.WallMS = float64(wall) / float64(time.Millisecond)
	}
	return l
}

// WriteLedgerFile writes the ledger to path as canonical JSON.
func WriteLedgerFile(path string, l *obs.RunLedger) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteLedger(f, l); err != nil {
		f.Close() //shahinvet:allow errcheck — close error is secondary; the write error wins
		return err
	}
	return f.Close()
}

// ReadLedgerFile parses a ledger previously written by WriteLedgerFile.
func ReadLedgerFile(path string) (*obs.RunLedger, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	return obs.ReadLedger(f)
}

// Compare exit codes: improvement or parity is success, a gated-metric
// regression is 1, and unreadable/malformed ledgers are 2 so CI can
// tell "got slower" from "the artifact is broken".
const (
	CompareOK        = 0
	CompareRegressed = 1
	CompareMalformed = 2
)

// CompareFiles diffs the baseline ledger at prevPath against the fresh
// run at currPath, prints per-metric deltas to w, and returns the
// process exit code for the verdict. Alongside the invocation, wall,
// and reuse thresholds, SLO compliance per objective is gated when the
// baseline ledger carries SLO data (th.SLO sets the allowed drop).
func CompareFiles(w io.Writer, prevPath, currPath string, th obs.Thresholds) int {
	prev, err := ReadLedgerFile(prevPath)
	if err != nil {
		fmt.Fprintf(w, "compare: baseline %s: %v\n", prevPath, err)
		return CompareMalformed
	}
	curr, err := ReadLedgerFile(currPath)
	if err != nil {
		fmt.Fprintf(w, "compare: current %s: %v\n", currPath, err)
		return CompareMalformed
	}
	deltas, regressed := obs.CompareLedgers(prev, curr, th)

	t := &Table{
		Title:  fmt.Sprintf("Ledger diff: %s -> %s", prev.Name, curr.Name),
		Header: []string{"Metric", "Old", "New", "Delta", "Verdict"},
	}
	for _, d := range deltas {
		verdict := ""
		switch {
		case d.Regressed:
			verdict = "REGRESSED"
		case d.Gated:
			verdict = "ok"
		}
		t.AddRow(d.Metric, trimFloat(d.Old), trimFloat(d.New), trimFloat(d.Diff), verdict)
	}
	t.AddNote("gated metrics: %s (max +%.0f%%), reuse_ratio (max -%.3f), wall_ms (max +%.0f%%), slo compliance (max -%.3f, when the baseline has SLO data)",
		obs.CounterInvocations, 100*th.Invocations, th.Reuse, 100*th.Wall, th.SLO)
	t.AddNote("when the baseline carries them: per-benchmark allocs/op (max +%.0f%%), bytes/op (max +%.0f%%), and gc_cpu_fraction (max +%.3f absolute)",
		100*th.AllocsPerOp, 100*th.BytesPerOp, th.GCCPU)
	t.Fprint(w)
	if regressed {
		fmt.Fprintln(w, "verdict: REGRESSION")
		return CompareRegressed
	}
	fmt.Fprintln(w, "verdict: ok")
	return CompareOK
}

// trimFloat renders a delta value compactly: integers without decimals,
// everything else with three.
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// SmokeConfig is the tiny deterministic workload behind the CI compare
// gate: seconds of wall time, yet it exercises mining, pool build,
// batch, streaming, and the sequential baseline, and its invocation
// counts are exactly reproducible from the seed.
func SmokeConfig(seed int64) Config {
	return Config{
		Rows:        1200,
		Batch:       40,
		Batches:     []int{40},
		Trees:       12,
		Delay:       time.Microsecond,
		Seed:        seed,
		LIMESamples: 120,
		SHAPSamples: 64,
		Tau:         25,
	}.Fill()
}

// Smoke runs the CI-scale benchmark: sequential baseline, Shahin-Batch,
// and Shahin-Streaming on the census twin for LIME and SHAP, reporting
// the cost ledger of each run.
func Smoke(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	env, err := NewEnv("census", cfg)
	if err != nil {
		return nil, err
	}
	tuples, err := env.Tuples(cfg.Batch)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Smoke: cost ledger at batch=%d (census)", cfg.Batch),
		Header: []string{"Explainer", "Mode", "Invocations", "PoolInv", "Reused", "ReuseRate", "Wall (ms)"},
	}
	runs := []struct {
		mode string
		run  func(*Env, core.Options, [][]float64) (*core.Result, error)
	}{
		{"seq", runSequential},
		{"batch", runBatch},
		{"stream", runStream},
	}
	for _, kind := range []core.Kind{core.LIME, core.SHAP} {
		opts := cfg.Options(kind)
		// Re-mine early enough that the streaming variant builds a pool
		// and reuses samples within the tiny smoke batch.
		opts.StreamRecompute = cfg.Batch / 4
		for _, r := range runs {
			res, err := r.run(env, opts, tuples)
			if err != nil {
				return nil, fmt.Errorf("smoke %s/%s: %w", kind, r.mode, err)
			}
			rep := res.Report
			t.AddRow(kind.String(), r.mode,
				fmt.Sprintf("%d", rep.Invocations),
				fmt.Sprintf("%d", rep.PoolInvocations),
				fmt.Sprintf("%d", rep.ReusedSamples),
				f3(rep.ReuseRate()),
				f2(float64(rep.WallTime)/float64(time.Millisecond)))
		}
	}
	t.AddNote("invocation, pool, and reuse counts are seed-deterministic; wall times are not")
	return t, nil
}

// Package bench is the experiment harness: for every table and figure in
// the paper's evaluation section it provides a runner that regenerates
// the same rows/series on the synthetic dataset twins, plus the ablation
// studies DESIGN.md calls out.
//
// Absolute numbers differ from the paper (different hardware, language,
// and scaled workloads) but the harness is built so the paper's *shape*
// reproduces: classifier invocations dominate cost (a calibrated per-call
// delay restores the Python cost profile), speedups are measured against
// the same sequential baseline, and every knob the paper sweeps (batch
// size, τ, cache size) is swept here.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"shahin/internal/core"
	"shahin/internal/datagen"
	"shahin/internal/dataset"
	"shahin/internal/explain/anchor"
	"shahin/internal/explain/lime"
	"shahin/internal/explain/shap"
	"shahin/internal/fault"
	"shahin/internal/obs"
	"shahin/internal/rf"
)

// Config scales the whole experiment suite. The zero value (via fill)
// runs laptop-sized workloads; cmd/shahin-bench -full approaches paper
// scale.
type Config struct {
	Rows    int           // dataset rows generated per dataset (default 6000)
	Batch   int           // default batch size for single-batch experiments (default 200)
	Batches []int         // batch-size sweep for Figures 2-4 (default 50, 200, 500)
	Trees   int           // random forest size (default 50)
	Delay   time.Duration // artificial per-invocation latency (default 20µs)
	Seed    int64         // master seed (default 1)

	LIMESamples int // LIME perturbation budget N (default 400)
	SHAPSamples int // SHAP coalition budget M (default 256)
	Tau         int // perturbations per frequent itemset (default 100)

	// Fault, when non-nil, runs every experiment against a fallible
	// classifier backend: injected transient errors, latency spikes,
	// outage windows, per-call deadlines, retry/backoff, and the circuit
	// breaker, all per the config. nil keeps the backend infallible.
	Fault *fault.Config

	// Recorder, when non-nil, instruments every run of the suite: spans
	// per stage, live counters, and latency histograms, servable over
	// HTTP while experiments are in flight. nil keeps runs uninstrumented
	// (the zero-overhead default the testing.B benchmarks measure).
	Recorder *obs.Recorder
}

// Fill returns the config with defaults applied.
func (c Config) Fill() Config {
	if c.Rows <= 0 {
		c.Rows = 6000
	}
	if c.Batch <= 0 {
		c.Batch = 200
	}
	if len(c.Batches) == 0 {
		c.Batches = []int{50, 200, 500}
	}
	if c.Trees <= 0 {
		c.Trees = 50
	}
	if c.Delay == 0 {
		// Calibrated so the classifier accounts for ~90 % of a sequential
		// explanation's wall time, matching the paper's profiling (88-95 %).
		c.Delay = 50 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.LIMESamples <= 0 {
		c.LIMESamples = 400
	}
	if c.SHAPSamples <= 0 {
		c.SHAPSamples = 256
	}
	if c.Tau <= 0 {
		c.Tau = 100
	}
	return c
}

// Quick returns a reduced config for the testing.B benchmarks, small
// enough that every experiment completes in seconds.
func Quick() Config {
	return Config{
		Rows:        3000,
		Batch:       60,
		Batches:     []int{25, 75},
		Trees:       30,
		Delay:       10 * time.Microsecond,
		Seed:        1,
		LIMESamples: 250,
		SHAPSamples: 160,
		Tau:         50,
	}.Fill()
}

// Options builds the core.Options for an explainer kind under this
// config. Anchor's per-rule pull budget is capped so that tuples whose
// best rule hovers at the precision threshold cannot dominate a run.
func (c Config) Options(kind core.Kind) core.Options {
	return core.Options{
		Explainer: kind,
		LIME:      lime.Config{NumSamples: c.LIMESamples},
		SHAP:      shap.Config{NumSamples: c.SHAPSamples, BaseSamples: 50},
		Anchor:    anchor.Config{MaxPulls: 2000, BatchPulls: 25},
		Tau:       c.Tau,
		Seed:      c.Seed + 100,
		Fault:     c.Fault,
		Recorder:  c.Recorder,
	}
}

// Env is a prepared benchmark environment: synthetic dataset, trained
// forest, training statistics, and the batch of tuples to explain.
type Env struct {
	Name   string
	Spec   *datagen.Config
	Train  *dataset.Dataset
	Test   *dataset.Dataset
	Stats  *dataset.Stats
	Forest *rf.Forest
	delay  time.Duration
}

// NewEnv generates a dataset twin, splits 1/3 train : 2/3 explain
// (the paper's protocol), trains the forest, and computes stats.
func NewEnv(name string, cfg Config) (*Env, error) {
	cfg = cfg.Fill()
	spec, err := datagen.Spec(name)
	if err != nil {
		return nil, err
	}
	data, err := spec.Generate(cfg.Rows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	train, test := data.Split(1.0/3, rng)
	st, err := dataset.Compute(train)
	if err != nil {
		return nil, err
	}
	forest, err := rf.Train(train, rf.Config{NumTrees: cfg.Trees, MaxDepth: 10, Seed: cfg.Seed + 2})
	if err != nil {
		return nil, err
	}
	return &Env{Name: name, Spec: spec, Train: train, Test: test, Stats: st, Forest: forest, delay: cfg.Delay}, nil
}

// Classifier returns the black box under test: the forest wrapped with
// the calibrated per-invocation delay that restores the paper's cost
// profile (classifier ≈ 90 % of explanation time).
func (e *Env) Classifier() rf.Classifier {
	if e.delay <= 0 {
		return e.Forest
	}
	return rf.NewDelayed(e.Forest, e.delay)
}

// Tuples returns the first n test tuples (clamped to availability).
func (e *Env) Tuples(n int) ([][]float64, error) {
	if n > e.Test.NumRows() {
		return nil, fmt.Errorf("bench: need %d tuples but %s test split has %d (raise -rows)",
			n, e.Name, e.Test.NumRows())
	}
	return e.Test.Rows(0, n), nil
}

// DatasetNames returns the benchmark datasets in Table 1 order.
func DatasetNames() []string {
	return []string{"census", "recidivism", "lending", "kddcup99", "covertype"}
}

package bench

import (
	"strings"
	"testing"

	"shahin/internal/obs"
)

// TestServing runs the full serving acceptance experiment — a
// 200-request mixed workload (concurrent singles, one batch call, exact
// repeats, one request in flight during drain) against a live HTTP
// listener — at reduced per-request cost. The experiment errors out
// internally if any serving invariant breaks (unanswered request,
// failed tuple, zero reuse, repeat missing the store, dropped drain
// request), so the test mostly asserts it completes and that the
// recorder captured the request-latency histogram the ledger persists.
func TestServing(t *testing.T) {
	cfg := tiny()
	cfg.Batch = 200
	cfg.Recorder = obs.NewRecorder()
	tab, err := Serving(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Title, "200-request") {
		t.Fatalf("table title %q does not reflect the workload size", tab.Title)
	}
	var rows int
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "request p") && row[1] == "0.00" {
			t.Fatalf("latency quantile %s recorded as zero", row[0])
		}
		rows++
	}
	if rows == 0 {
		t.Fatal("serving table has no rows")
	}
	hist := cfg.Recorder.Metrics().Histograms[obs.HistServeRequest]
	if hist.Count < 200 {
		t.Fatalf("request-latency histogram recorded %d observations, want >= 200", hist.Count)
	}
	if cfg.Recorder.Counter(obs.CounterServeFlushes).Value() == 0 {
		t.Fatal("no serving flushes counted")
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a printable experiment result: a title, a header row, and data
// rows, rendered with aligned columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	total := len(t.Header) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// tableJSON is the MarshalJSON shape of a Table: the header names the
// columns and each row carries typed cells, so ledger consumers can
// compute over figures without re-parsing rendered text.
type tableJSON struct {
	Title  string   `json:"title"`
	Header []string `json:"header"`
	Rows   [][]any  `json:"rows"`
	Notes  []string `json:"notes,omitempty"`
}

// MarshalJSON implements json.Marshaler: cells that parse as integers
// or floats are emitted as JSON numbers, everything else as strings.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := make([][]any, len(t.Rows))
	for i, row := range t.Rows {
		cells := make([]any, len(row))
		for j, c := range row {
			cells[j] = typedCell(c)
		}
		rows[i] = cells
	}
	return json.Marshal(tableJSON{Title: t.Title, Header: t.Header, Rows: rows, Notes: t.Notes})
}

// typedCell converts a rendered cell back to its natural JSON type.
func typedCell(c string) any {
	if c == "" {
		return c
	}
	if v, err := strconv.ParseInt(c, 10, 64); err == nil {
		return v
	}
	if v, err := strconv.ParseFloat(c, 64); err == nil {
		return v
	}
	return c
}

// f2 formats a float with 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f3 formats a float with 3 decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// itoa formats an int.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

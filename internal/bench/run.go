package bench

import (
	"time"

	"shahin/internal/core"
	"shahin/internal/rf"
)

// runSequential runs the sequential baseline over the tuples.
func runSequential(env *Env, opts core.Options, tuples [][]float64) (*core.Result, error) {
	return core.Sequential(env.Stats, env.Classifier(), opts, tuples)
}

// runBatch runs Shahin-Batch over the tuples.
func runBatch(env *Env, opts core.Options, tuples [][]float64) (*core.Result, error) {
	b, err := core.NewBatch(env.Stats, env.Classifier(), opts)
	if err != nil {
		return nil, err
	}
	return b.ExplainAll(tuples)
}

// runStream feeds the tuples one at a time through Shahin-Streaming and
// returns the explanations plus the accumulated report.
func runStream(env *Env, opts core.Options, tuples [][]float64) (*core.Result, error) {
	s, err := core.NewStream(env.Stats, env.Classifier(), opts)
	if err != nil {
		return nil, err
	}
	out := make([]core.Explanation, 0, len(tuples))
	for _, t := range tuples {
		exp, err := s.Explain(t)
		if err != nil {
			return nil, err
		}
		out = append(out, exp)
	}
	return &core.Result{Explanations: out, Report: s.Report()}, nil
}

// runDist runs the DIST-k baseline.
func runDist(env *Env, opts core.Options, tuples [][]float64, k int) (*core.Result, error) {
	return core.Dist(env.Stats, env.Classifier(), opts, tuples, k)
}

// runGreedy runs the GREEDY baseline with the paper's default budget of
// 10x the raw batch size.
func runGreedy(env *Env, opts core.Options, tuples [][]float64) (*core.Result, error) {
	budget := int64(10 * len(tuples) * len(tuples[0]) * 8)
	return core.Greedy(env.Stats, env.Classifier(), opts, tuples, budget)
}

// speedup returns baseline / measured wall-time ratio.
func speedup(baseline, measured time.Duration) float64 {
	if measured <= 0 {
		return 0
	}
	return float64(baseline) / float64(measured)
}

// secondsPerTuple renders a report as seconds per explanation.
func secondsPerTuple(rep core.Report) float64 {
	if rep.Tuples == 0 {
		return 0
	}
	return rep.WallTime.Seconds() / float64(rep.Tuples)
}

var _ rf.Classifier = (*rf.Delayed)(nil)

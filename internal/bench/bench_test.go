package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"shahin/internal/core"
)

// tiny returns the smallest config that still exercises every code path.
func tiny() Config {
	return Config{
		Rows:        2400,
		Batch:       30,
		Batches:     []int{20, 40},
		Trees:       15,
		Delay:       2 * time.Microsecond,
		Seed:        1,
		LIMESamples: 150,
		SHAPSamples: 96,
		Tau:         30,
	}.Fill()
}

func TestConfigFill(t *testing.T) {
	c := Config{}.Fill()
	if c.Rows != 6000 || c.Batch != 200 || c.Trees != 50 {
		t.Fatalf("defaults %+v", c)
	}
	if c.Delay != 50*time.Microsecond || len(c.Batches) != 3 {
		t.Fatalf("defaults %+v", c)
	}
	q := Quick()
	if q.Batch <= 0 || q.Rows <= 0 {
		t.Fatal("Quick config degenerate")
	}
}

func TestNewEnv(t *testing.T) {
	env, err := NewEnv("recidivism", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if env.Train.NumRows()+env.Test.NumRows() != 2400 {
		t.Fatal("split lost rows")
	}
	if env.Forest == nil || env.Stats == nil {
		t.Fatal("env incomplete")
	}
	if _, err := env.Tuples(10_000_000); err == nil {
		t.Fatal("oversized tuple request accepted")
	}
	if _, err := NewEnv("nope", tiny()); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	// The delayed classifier must agree with the raw forest.
	cls := env.Classifier()
	row := env.Test.Rows(0, 1)[0]
	if cls.Predict(row) != env.Forest.Predict(row) {
		t.Fatal("delay wrapper changed predictions")
	}
}

func TestTablePrinting(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("n=%d", 5)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "a", "bb", "note: n=5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

// parseSpeedup extracts a float cell.
func parseSpeedup(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestFigure2ShahinWins(t *testing.T) {
	tab, err := Figure2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 3 explainers x 2 batch sizes
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// Per-cell wall ratios at a 2µs delay are noisy; assert the
	// contention-robust aggregate: mean Shahin speedup at the largest
	// batch clearly exceeds 1 and no cell collapses.
	var sum float64
	n := 0
	for _, row := range tab.Rows {
		if row[1] != "40" {
			continue
		}
		shahin := parseSpeedup(t, row[2])
		if shahin < 0.4 {
			t.Errorf("%s: Shahin speedup %.2f collapsed", row[0], shahin)
		}
		sum += shahin
		n++
	}
	if mean := sum / float64(n); mean <= 1.2 {
		t.Errorf("mean Shahin speedup at largest batch %.2f <= 1.2", mean)
	}
}

func TestFigure3SpeedupGrowsWithBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 3 sweeps 5 datasets x 3 explainers x batch sizes")
	}
	cfg := tiny()
	tab, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(DatasetNames())*len(cfg.Batches) {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// Individual cells are wall-clock ratios at a 2µs delay and swing
	// under machine contention; assert the contention-robust aggregate:
	// the mean speedup at the largest batch clearly exceeds 1, and no
	// cell collapses outright.
	var sum float64
	n := 0
	for _, row := range tab.Rows {
		if row[1] != "40" {
			continue
		}
		for col := 2; col <= 4; col++ {
			v := parseSpeedup(t, row[col])
			if v < 0.25 {
				t.Errorf("%s col %d speedup %.2f collapsed", row[0], col, v)
			}
			sum += v
			n++
		}
	}
	if mean := sum / float64(n); mean <= 1.2 {
		t.Errorf("mean speedup at largest batch %.2f <= 1.2", mean)
	}
}

func TestFigure5OverheadSmall(t *testing.T) {
	tab, err := Figure5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if v := parseSpeedup(t, row[1]); v > 50 {
			t.Errorf("batch %s overhead %.1f%% implausibly high", row[0], v)
		}
	}
}

func TestFigure6TauShape(t *testing.T) {
	cfg := tiny()
	tab, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// LIME speedup at tau=100 must exceed tau=1 (more reusable samples).
	t1 := parseSpeedup(t, tab.Rows[0][1])
	t100 := parseSpeedup(t, tab.Rows[2][1])
	if t100 <= t1 {
		t.Errorf("LIME speedup tau=100 (%.2f) not above tau=1 (%.2f)", t100, t1)
	}
}

// Quality: Shahin's deviation from the baseline must stay within the
// baseline's own seed-to-seed variation (the paper's fidelity claim).
func TestQualityWithinNoiseFloor(t *testing.T) {
	tab, err := Quality(tiny())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range tab.Rows {
		rows[row[0]] = row
	}
	for _, kind := range []string{"LIME", "SHAP"} {
		sh, ok1 := rows[kind+" Shahin-vs-seq"]
		noise, ok2 := rows[kind+" seq-vs-seq"]
		if !ok1 || !ok2 {
			t.Fatalf("%s rows missing: %v", kind, tab.Rows)
		}
		shTau := parseSpeedup(t, sh[1])
		noiseTau := parseSpeedup(t, noise[1])
		if shTau < noiseTau-0.2 {
			t.Errorf("%s: Shahin tau %.3f well below noise floor %.3f", kind, shTau, noiseTau)
		}
		shTop := parseSpeedup(t, sh[2])
		noiseTop := parseSpeedup(t, noise[2])
		if shTop < noiseTop-0.25 {
			t.Errorf("%s: Shahin top-1 %.3f well below noise floor %.3f", kind, shTop, noiseTop)
		}
	}
	if _, ok := rows["Anchor Shahin-vs-seq"]; !ok {
		t.Error("Anchor quality row missing")
	}
}

func TestAblations(t *testing.T) {
	cfg := tiny()
	for name, fn := range map[string]func(Config) (*Table, error){
		"A1": AblationSample,
		"A2": AblationKernel,
		"A3": AblationBorder,
	} {
		tab, err := fn(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) < 2 {
			t.Fatalf("%s produced %d rows", name, len(tab.Rows))
		}
	}
}

func TestTable1Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 covers 5 datasets x 3 explainers x 3 modes")
	}
	cfg := tiny()
	cfg.Batch = 20
	tab, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// Shape columns must match the paper exactly.
	want := map[string][3]string{
		"census":     {"27", "15", "18"},
		"recidivism": {"14", "5", "20"},
		"lending":    {"26", "24", "837"},
		"kddcup99":   {"13", "27", "490"},
		"covertype":  {"44", "10", "7"},
	}
	for _, row := range tab.Rows {
		w := want[row[0]]
		if row[2] != w[0] || row[3] != w[1] || row[4] != w[2] {
			t.Errorf("%s shape columns %v want %v", row[0], row[2:5], w)
		}
	}
	_ = core.Kinds()
}

func TestExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments train extra models")
	}
	cfg := tiny()
	for name, fn := range map[string]func(Config) (*Table, error){
		"ext-sshap":    ExtSampleShapley,
		"ext-approx":   ExtApproximate,
		"ext-models":   ExtModels,
		"ext-parallel": ExtParallel,
	} {
		tab, err := fn(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) < 2 {
			t.Fatalf("%s produced %d rows", name, len(tab.Rows))
		}
	}
}

// The approximation sweep must show speedup increasing with the reuse
// fraction.
func TestExtApproximateMonotoneSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs five batch configurations")
	}
	tab, err := ExtApproximate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	first := parseSpeedup(t, tab.Rows[0][1])
	last := parseSpeedup(t, tab.Rows[len(tab.Rows)-1][1])
	if last <= first {
		t.Fatalf("full reuse (%.2f) not faster than 25%% reuse (%.2f)", last, first)
	}
}

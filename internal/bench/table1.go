package bench

import (
	"fmt"

	"shahin/internal/core"
)

// Table1 regenerates the paper's Table 1: per dataset, the shape columns
// (#Tuples at paper scale, #CatA, #NumA, #MaxDC) and the average seconds
// per explained tuple for the sequential baseline, Shahin-Batch, and
// Shahin-Streaming, for each of LIME, Anchor, and SHAP.
func Table1(cfg Config) (*Table, error) {
	cfg = cfg.Fill()
	t := &Table{
		Title:  fmt.Sprintf("Table 1: dataset characteristics and per-tuple seconds (seq, batch, stream) at batch=%d", cfg.Batch),
		Header: []string{"Dataset", "#Tuples", "#CatA", "#NumA", "#MaxDC", "LIME (s)", "Anchor (s)", "SHAP (s)"},
	}
	for _, name := range DatasetNames() {
		env, err := NewEnv(name, cfg)
		if err != nil {
			return nil, err
		}
		tuples, err := env.Tuples(cfg.Batch)
		if err != nil {
			return nil, err
		}
		row := []string{
			name,
			itoa(env.Spec.Rows), // paper-scale tuple count (shape column)
			itoa(len(env.Spec.Cat)),
			itoa(len(env.Spec.Num)),
			itoa(env.Test.Schema.MaxCardinality()),
		}
		for _, kind := range core.Kinds() {
			opts := cfg.Options(kind)
			seq, err := runSequential(env, opts, tuples)
			if err != nil {
				return nil, fmt.Errorf("table1 %s/%s seq: %w", name, kind, err)
			}
			batch, err := runBatch(env, opts, tuples)
			if err != nil {
				return nil, fmt.Errorf("table1 %s/%s batch: %w", name, kind, err)
			}
			stream, err := runStream(env, opts, tuples)
			if err != nil {
				return nil, fmt.Errorf("table1 %s/%s stream: %w", name, kind, err)
			}
			row = append(row, fmt.Sprintf("%.3f, %.3f, %.3f",
				secondsPerTuple(seq.Report),
				secondsPerTuple(batch.Report),
				secondsPerTuple(stream.Report)))
		}
		t.AddRow(row...)
	}
	t.AddNote("#Tuples is the paper-scale row count of the synthetic twin; runs use %d generated rows per dataset", cfg.Rows)
	t.AddNote("per-invocation classifier delay %v restores the paper's cost profile", cfg.Delay)
	return t, nil
}

package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"shahin/internal/datagen"
	"shahin/internal/dataset"
	"shahin/internal/explain/exact"
	"shahin/internal/explain/lime"
	"shahin/internal/linmodel"
	"shahin/internal/obs"
	"shahin/internal/perturb"
	"shahin/internal/router"
)

// Benchmark sinks: package-level so the compiler cannot dead-code-
// eliminate the hotpath calls the benchmark bodies exist to measure.
var (
	hotSinkSample   perturb.Sample
	hotSinkFloats   []float64
	hotSinkVec      []float64
	hotSinkBool     bool
	hotSinkSolveErr error
	hotSinkUint64   uint64
	hotSinkInt      int
)

// hotpathBodies builds one benchmark body per //shahin:hotpath
// function in the codebase, keyed by qualified function name. Inputs
// are derived deterministically from seed on the census dataset twin,
// so allocs/op and bytes/op are stable across runs (ns/op is not, and
// is never gated).
func hotpathBodies(seed int64) (map[string]func(n int), error) {
	spec, err := datagen.Spec("census")
	if err != nil {
		return nil, err
	}
	data, err := spec.Generate(600, seed)
	if err != nil {
		return nil, err
	}
	st, err := dataset.Compute(data)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 3))
	gen := perturb.NewGenerator(st, rng)
	p := st.Schema.NumAttrs()
	tuple := data.Rows(0, 1)[0]
	tItems := st.ItemizeRow(tuple, nil)
	// Freeze two spread-out attributes; the pooled sample below is
	// generated from the same itemset so MatchesBins exercises its
	// true (all-match) path, the one the reuse loop takes.
	frozen := dataset.Itemset{tItems[0], tItems[p/2]}
	freeze := make([]bool, p)
	freeze[0], freeze[p/2] = true, true
	pooled := gen.ForItemset(frozen)

	// A well-conditioned SPD system for Solve: A = MᵀM + I.
	const dim = 12
	mrng := rand.New(rand.NewSource(seed + 7))
	m := make([][]float64, 2*dim)
	for i := range m {
		row := make([]float64, dim)
		for j := range row {
			row[j] = mrng.NormFloat64()
		}
		m[i] = row
	}
	sym := linmodel.NewSym(dim)
	for i := 0; i < dim; i++ {
		for j := 0; j <= i; j++ {
			v := 0.0
			for _, row := range m {
				v += row[i] * row[j]
			}
			if i == j {
				v++
			}
			sym.Set(i, j, v)
		}
	}
	rhs := make([]float64, dim)
	for i := range rhs {
		rhs[i] = mrng.NormFloat64()
	}
	if _, err := sym.Solve(rhs); err != nil {
		return nil, fmt.Errorf("bench: hotpath Solve fixture not positive definite: %w", err)
	}

	// The routing hotpaths: a production-shaped ring (3 replicas at the
	// default vnode density) looked up with the fixture tuple's own
	// itemset signature.
	routerRing := router.NewRing(3, router.DefaultVNodes)

	bodies := map[string]func(n int){
		"perturb.(*Generator).ForItemset": func(n int) {
			for i := 0; i < n; i++ {
				hotSinkSample = gen.ForItemset(frozen)
			}
		},
		"perturb.(*Generator).ForTuple": func(n int) {
			for i := 0; i < n; i++ {
				hotSinkSample = gen.ForTuple(tuple, freeze)
			}
		},
		"perturb.BinaryEncode": func(n int) {
			out := make([]float64, p)
			for i := 0; i < n; i++ {
				out = perturb.BinaryEncode(tItems, pooled.Items, out)
			}
			hotSinkVec = out
		},
		"perturb.MatchesBins": func(n int) {
			for i := 0; i < n; i++ {
				hotSinkBool = perturb.MatchesBins(frozen, pooled.Items)
			}
		},
		"linmodel.(*Sym).Solve": func(n int) {
			for i := 0; i < n; i++ {
				hotSinkFloats, hotSinkSolveErr = sym.Solve(rhs)
			}
		},
		"router.Signature": func(n int) {
			for i := 0; i < n; i++ {
				hotSinkUint64 = router.Signature(tItems)
			}
		},
		"router.(*Ring).Lookup": func(n int) {
			ring := routerRing
			sig := router.Signature(tItems)
			for i := 0; i < n; i++ {
				hotSinkInt = ring.Lookup(sig)
			}
		},
	}
	for name, body := range lime.HotpathBenchBodies(p) {
		bodies[name] = body
	}
	for name, body := range exact.HotpathBenchBodies(p) {
		bodies[name] = body
	}
	return bodies, nil
}

// HotpathResults measures every //shahin:hotpath function with
// testing.Benchmark under -benchmem semantics and returns the results
// sorted by name. allocs/op and bytes/op are the gated columns;
// ns/op is recorded for context only.
func HotpathResults(seed int64) ([]obs.BenchmarkResult, error) {
	bodies, err := hotpathBodies(seed)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(bodies))
	for name := range bodies {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]obs.BenchmarkResult, 0, len(names))
	for _, name := range names {
		body := bodies[name]
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			body(b.N)
		})
		out = append(out, obs.BenchmarkResult{
			Name:        name,
			Runs:        r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out, nil
}

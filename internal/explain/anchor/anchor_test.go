package anchor

import (
	"math/rand"
	"testing"

	"shahin/internal/datagen"
	"shahin/internal/dataset"
	"shahin/internal/rf"
)

// env builds a dataset, its stats, and a coverage sample.
func env(t *testing.T, seed int64) (*dataset.Dataset, *dataset.Stats, []dataset.Itemset) {
	t.Helper()
	cfg := &datagen.Config{
		Name: "at",
		Cat:  []datagen.CatSpec{{Card: 4, Skew: 1}, {Card: 3, Skew: 0.5}, {Card: 5, Skew: 1.2}},
		Num:  []datagen.NumSpec{{Mean: 0, Std: 1}},
	}
	d, err := cfg.Generate(3000, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	cov := CoverageRows(st, d, 500, rand.New(rand.NewSource(seed+1)))
	return d, st, cov
}

func attr0Classifier(v int) rf.Classifier {
	return rf.Func{Classes: 2, F: func(x []float64) int {
		if int(x[0]) == v {
			return 1
		}
		return 0
	}}
}

func TestExplainWrongArity(t *testing.T) {
	_, st, cov := env(t, 1)
	e := New(st, attr0Classifier(0), cov, Config{}, rand.New(rand.NewSource(2)))
	if _, err := e.Explain([]float64{1}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

// A concept decided by a single attribute must yield a one-predicate
// anchor on that attribute with near-perfect precision.
func TestExplainSingleAttributeConcept(t *testing.T) {
	_, st, cov := env(t, 3)
	e := New(st, attr0Classifier(2), cov, Config{}, rand.New(rand.NewSource(4)))
	rule, err := e.Explain([]float64{2, 1, 3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rule.Class != 1 {
		t.Fatalf("class=%d want 1", rule.Class)
	}
	if len(rule.Items) != 1 {
		t.Fatalf("rule has %d predicates want 1 (%v)", len(rule.Items), rule.Items)
	}
	if rule.Items[0].Attr() != 0 || rule.Items[0].Bin() != 2 {
		t.Fatalf("rule predicate %v want a0=b2", rule.Items[0])
	}
	if rule.Precision < 0.9 {
		t.Fatalf("precision %.3f < 0.9", rule.Precision)
	}
	if rule.Coverage <= 0 {
		t.Fatalf("coverage %.3f should be positive", rule.Coverage)
	}
}

// The negative class of the same concept: "attr0 != 2" is not expressible
// as one predicate unless the tuple's own value pins it; the anchor on
// attr0=v (v != 2) has precision 1 for class 0.
func TestExplainNegativeClass(t *testing.T) {
	_, st, cov := env(t, 5)
	e := New(st, attr0Classifier(2), cov, Config{}, rand.New(rand.NewSource(6)))
	rule, err := e.Explain([]float64{0, 1, 3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rule.Class != 0 {
		t.Fatalf("class=%d want 0", rule.Class)
	}
	if rule.Precision < 0.9 {
		t.Fatalf("precision %.3f", rule.Precision)
	}
	// The anchor must pin attr0 (any other single predicate has precision
	// ~P(attr0 != 2) < 0.95 under the skewed marginal... unless bin 2 is
	// rare enough; accept either but require attr0 among predicates when
	// more than one predicate is needed).
	found := false
	for _, it := range rule.Items {
		if it.Attr() == 0 {
			found = true
		}
	}
	if !found && rule.Precision < 0.95 {
		t.Fatalf("rule %v neither pins attr0 nor clears precision", rule.Items)
	}
}

// A two-attribute AND concept should produce an anchor containing both
// attributes when the tuple satisfies the concept.
func TestExplainConjunctionConcept(t *testing.T) {
	_, st, cov := env(t, 7)
	cls := rf.Func{Classes: 2, F: func(x []float64) int {
		if int(x[0]) == 1 && int(x[1]) == 0 {
			return 1
		}
		return 0
	}}
	e := New(st, cls, cov, Config{}, rand.New(rand.NewSource(8)))
	rule, err := e.Explain([]float64{1, 0, 3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rule.Class != 1 {
		t.Fatalf("class=%d", rule.Class)
	}
	attrs := map[int]bool{}
	for _, it := range rule.Items {
		attrs[it.Attr()] = true
	}
	if !attrs[0] || !attrs[1] {
		t.Fatalf("rule %v must pin attrs 0 and 1", rule.Items)
	}
	if rule.Precision < 0.9 {
		t.Fatalf("precision %.3f", rule.Precision)
	}
}

// Sharing state across tuples with a common anchor must reduce classifier
// invocations for the later tuples (the whole point of Shahin-Anchor).
func TestSharedStateSavesInvocations(t *testing.T) {
	_, st, cov := env(t, 9)
	counting := rf.NewCounting(attr0Classifier(2))
	e := New(st, counting, cov, Config{}, rand.New(rand.NewSource(10)))
	sh := NewShared(2, 0)

	tup := []float64{2, 1, 3, 0.5}
	if _, err := e.ExplainShared(tup, sh); err != nil {
		t.Fatal(err)
	}
	first := counting.Invocations()

	// A different tuple sharing the decisive attr0=2 value.
	tup2 := []float64{2, 0, 1, -0.7}
	if _, err := e.ExplainShared(tup2, sh); err != nil {
		t.Fatal(err)
	}
	second := counting.Invocations() - first
	if second >= first/2 {
		t.Fatalf("shared state saved too little: first=%d second=%d", first, second)
	}
}

func TestCoverageMemoised(t *testing.T) {
	_, st, cov := env(t, 11)
	e := New(st, attr0Classifier(1), cov, Config{}, rand.New(rand.NewSource(12)))
	sh := NewShared(2, 0)
	rule := dataset.Itemset{dataset.MakeItem(0, 1)}
	rr, _ := sh.Inv.Lookup(rule.Key())
	got := e.coverage(rule, rr)
	// Recount directly.
	hits := 0
	for _, row := range cov {
		if rule.ContainsAll(row) {
			hits++
		}
	}
	want := float64(hits) / float64(len(cov))
	if got != want {
		t.Fatalf("coverage=%g want %g", got, want)
	}
	if !rr.HasCoverage {
		t.Fatal("coverage not memoised")
	}
	rr.Coverage = 0.123 // poke the memo; a second call must return it
	if e.coverage(rule, rr) != 0.123 {
		t.Fatal("memoised coverage not used")
	}
}

func TestCoverageEmptySample(t *testing.T) {
	_, st, _ := env(t, 13)
	e := New(st, attr0Classifier(1), nil, Config{}, rand.New(rand.NewSource(14)))
	sh := NewShared(2, 0)
	rr, _ := sh.Inv.Lookup(dataset.Itemset{dataset.MakeItem(0, 0)}.Key())
	if got := e.coverage(dataset.Itemset{dataset.MakeItem(0, 0)}, rr); got != 0 {
		t.Fatalf("coverage without sample=%g", got)
	}
}

func TestExtendBeam(t *testing.T) {
	tItems := []dataset.Item{
		dataset.MakeItem(0, 1), dataset.MakeItem(1, 0), dataset.MakeItem(2, 2),
	}
	// From the empty rule: one candidate per attribute.
	cands := extendBeam([]dataset.Itemset{nil}, tItems)
	if len(cands) != 3 {
		t.Fatalf("empty-rule extensions=%d want 3", len(cands))
	}
	// From a rule on attr 1: two extensions, never repeating attr 1.
	base := dataset.Itemset{dataset.MakeItem(1, 0)}
	cands = extendBeam([]dataset.Itemset{base}, tItems)
	if len(cands) != 2 {
		t.Fatalf("extensions=%d want 2", len(cands))
	}
	for _, c := range cands {
		if len(c) != 2 {
			t.Fatalf("extension %v has %d items", c, len(c))
		}
		attrs := map[int]int{}
		for _, it := range c {
			attrs[it.Attr()]++
		}
		if attrs[1] != 1 {
			t.Fatalf("extension %v lost or duplicated attr 1", c)
		}
	}
	// Duplicate candidates across beam rules are emitted once.
	beam := []dataset.Itemset{
		{dataset.MakeItem(0, 1)},
		{dataset.MakeItem(1, 0)},
	}
	cands = extendBeam(beam, tItems)
	seen := map[dataset.ItemsetKey]int{}
	for _, c := range cands {
		seen[c.Key()]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("candidate %v emitted %d times", k.Itemset(), n)
		}
	}
}

func TestInsertItemKeepsOrder(t *testing.T) {
	rule := dataset.Itemset{dataset.MakeItem(1, 0), dataset.MakeItem(3, 2)}
	got := insertItem(rule, dataset.MakeItem(2, 1))
	want := dataset.Itemset{dataset.MakeItem(1, 0), dataset.MakeItem(2, 1), dataset.MakeItem(3, 2)}
	if len(got) != 3 {
		t.Fatalf("len=%d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Insert at front and back.
	if got := insertItem(rule, dataset.MakeItem(0, 0)); got[0].Attr() != 0 {
		t.Fatalf("front insert: %v", got)
	}
	if got := insertItem(rule, dataset.MakeItem(5, 0)); got[2].Attr() != 5 {
		t.Fatalf("back insert: %v", got)
	}
}

// Bootstrapping a superset rule from stored subset samples must add free
// trials (no classifier calls).
func TestBootstrapFromSubsetSamples(t *testing.T) {
	_, st, cov := env(t, 15)
	counting := rf.NewCounting(attr0Classifier(1))
	e := New(st, counting, cov, Config{BatchPulls: 50, StorePerRule: 200}, rand.New(rand.NewSource(16)))
	sh := NewShared(2, 0)

	// Pull trials for the single-item rule, which stores samples.
	sub := dataset.Itemset{dataset.MakeItem(0, 1)}
	rrSub, _ := sh.Inv.Lookup(sub.Key())
	arm := &ruleArm{e: e, sh: sh, items: sub, rr: rrSub, target: 1}
	arm.Pull(200)
	base := counting.Invocations()

	// Bootstrap the superset rule.
	super := dataset.Itemset{dataset.MakeItem(0, 1), dataset.MakeItem(1, 0)}
	rrSuper, _ := sh.Inv.Lookup(super.Key())
	e.bootstrap(super, rrSuper, sh.Repo)
	if counting.Invocations() != base {
		t.Fatal("bootstrap invoked the classifier")
	}
	if rrSuper.Pulls == 0 {
		t.Fatal("bootstrap added no trials")
	}
	// All bootstrapped trials came from samples where attr0=bin1, so the
	// classifier labelled them 1: precision toward class 1 must be 1.
	if rrSuper.Precision(1) != 1 {
		t.Fatalf("bootstrapped precision=%g want 1", rrSuper.Precision(1))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.fill()
	if c.Precision != 0.95 || c.Eps != 0.1 || c.Delta != 0.05 {
		t.Fatalf("defaults %+v", c)
	}
	if c.MaxPredicates != dataset.MaxItemsetLen {
		t.Fatalf("MaxPredicates=%d", c.MaxPredicates)
	}
	over := Config{MaxPredicates: 99}.fill()
	if over.MaxPredicates != dataset.MaxItemsetLen {
		t.Fatalf("MaxPredicates not clamped: %d", over.MaxPredicates)
	}
}

func BenchmarkExplainSequential(b *testing.B) {
	cfg := &datagen.Config{
		Name: "ab",
		Cat:  []datagen.CatSpec{{Card: 4, Skew: 1}, {Card: 3, Skew: 0.5}},
		Num:  []datagen.NumSpec{{Mean: 0, Std: 1}},
	}
	d, err := cfg.Generate(2000, 17)
	if err != nil {
		b.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	cov := CoverageRows(st, d, 300, rng)
	e := New(st, attr0Classifier(1), cov, Config{}, rng)
	tup := []float64{1, 0, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(tup); err != nil {
			b.Fatal(err)
		}
	}
}

// Package anchor implements the Anchor explanation algorithm (Ribeiro,
// Singh, Guestrin, AAAI 2018) for tabular data: a beam search over
// predicate rules built from the tuple's (discretised) attribute values,
// with rule precision estimated by a KL-LUCB multi-armed bandit over
// rule-consistent perturbations, and coverage measured against a data
// sample.
//
// The Shahin adaptations (paper §3.2) enter through two shared caches:
// an invariant cache memoising each rule's precision trials and coverage
// across the whole batch, and a perturbation repository whose samples
// bootstrap the precision of superset rules without classifier calls.
// Running with per-tuple fresh caches reproduces sequential Anchor.
package anchor

import (
	"fmt"
	"math"
	"math/rand"

	"shahin/internal/cache"
	"shahin/internal/dataset"
	"shahin/internal/explain"
	"shahin/internal/mab"
	"shahin/internal/perturb"
	"shahin/internal/rf"
	"shahin/internal/sample"
)

// Config controls an Anchor explainer. Zero values select the noted
// defaults, which follow the reference implementation (ε = 0.1, δ = 0.05,
// precision threshold 0.95).
type Config struct {
	Precision     float64 // target precision τ (default 0.95)
	Eps           float64 // bandit tolerance (default 0.1)
	Delta         float64 // bandit failure probability (default 0.05)
	BeamWidth     int     // candidates kept per rule size (default 2)
	MaxPredicates int     // longest rule (default dataset.MaxItemsetLen)
	BatchPulls    int     // perturbations per bandit pull (default 20)
	MaxPulls      int     // per-selection pull budget (default 5000)
	StorePerRule  int     // perturbations retained per rule for reuse (default 100, the paper's τ)
}

func (c Config) fill() Config {
	if c.Precision <= 0 || c.Precision > 1 {
		c.Precision = 0.95
	}
	if c.Eps <= 0 {
		c.Eps = 0.1
	}
	if c.Delta <= 0 {
		c.Delta = 0.05
	}
	if c.BeamWidth <= 0 {
		c.BeamWidth = 1
	}
	if c.MaxPredicates <= 0 || c.MaxPredicates > dataset.MaxItemsetLen {
		c.MaxPredicates = dataset.MaxItemsetLen
	}
	if c.BatchPulls <= 0 {
		c.BatchPulls = 20
	}
	if c.MaxPulls <= 0 {
		c.MaxPulls = 5000
	}
	if c.StorePerRule <= 0 {
		c.StorePerRule = 100
	}
	return c
}

// Shared is the batch-level state Shahin threads through every
// explanation: the rule-invariant cache and the labelled-perturbation
// repository. Sequential Anchor uses a fresh Shared per tuple.
type Shared struct {
	Inv  *cache.Invariants
	Repo *cache.Repo
}

// NewShared creates an empty shared state for a classifier with nClasses
// classes and the given repository byte budget (<= 0 for unbounded).
func NewShared(nClasses int, repoBudget int64) *Shared {
	return &Shared{Inv: cache.NewInvariants(nClasses), Repo: cache.NewRepo(repoBudget)}
}

// Explainer runs Anchor against a fixed classifier and training
// distribution. It is not safe for concurrent use.
type Explainer struct {
	cfg     Config
	st      *dataset.Stats
	cls     rf.Classifier
	gen     *perturb.Generator
	covRows []dataset.Itemset
}

// New builds an Anchor explainer. covRows is the itemised data sample
// coverage is measured against (see CoverageRows); rng drives all
// perturbation sampling.
func New(st *dataset.Stats, cls rf.Classifier, covRows []dataset.Itemset, cfg Config, rng *rand.Rand) *Explainer {
	return &Explainer{
		cfg:     cfg.fill(),
		st:      st,
		cls:     cls,
		gen:     perturb.NewGenerator(st, rng),
		covRows: covRows,
	}
}

// CoverageRows itemises up to maxRows uniformly sampled rows of d for use
// as an Explainer's coverage sample.
func CoverageRows(st *dataset.Stats, d *dataset.Dataset, maxRows int, rng *rand.Rand) []dataset.Itemset {
	idx := sample.UniformIndices(rng, d.NumRows(), maxRows)
	out := make([]dataset.Itemset, len(idx))
	row := make([]float64, d.NumAttrs())
	for i, ri := range idx {
		row = d.Row(ri, row)
		out[i] = append(dataset.Itemset(nil), st.ItemizeRow(row, nil)...)
	}
	return out
}

// Explain runs sequential Anchor (fresh caches) for tuple t.
func (e *Explainer) Explain(t []float64) (*explain.Rule, error) {
	return e.ExplainShared(t, NewShared(e.cls.NumClasses(), 0))
}

// ExplainShared explains t using (and updating) the given shared state.
func (e *Explainer) ExplainShared(t []float64, sh *Shared) (*explain.Rule, error) {
	p := e.st.Schema.NumAttrs()
	if len(t) != p {
		return nil, fmt.Errorf("anchor: tuple has %d attributes want %d", len(t), p)
	}
	if sh == nil {
		sh = NewShared(e.cls.NumClasses(), 0)
	}
	target := e.cls.Predict(t)
	tItems := e.st.ItemizeRow(t, nil)

	beam := []dataset.Itemset{nil} // start from the empty rule
	var fallback *explain.Rule     // best-precision rule if none verifies

	for size := 1; size <= e.cfg.MaxPredicates; size++ {
		cands := extendBeam(beam, tItems)
		if len(cands) == 0 {
			break
		}
		arms := make([]mab.Arm, len(cands))
		prior := make([]mab.Counts, len(cands))
		results := make([]*cache.RuleResult, len(cands))
		for i, cand := range cands {
			rr, known := sh.Inv.Lookup(cand.Key())
			if !known {
				e.bootstrap(cand, rr, sh.Repo)
			}
			results[i] = rr
			arms[i] = &ruleArm{e: e, sh: sh, items: cand, rr: rr, target: target}
			prior[i] = mab.Counts{Pulls: rr.Pulls, Successes: rr.ClassCounts[target]}
		}

		// Fast path (paper §3.2): a memoised rule whose cached trials
		// already clear the precision threshold anchors every tuple that
		// contains it — no bandit, no classifier calls.
		var cached *explain.Rule
		for i, cand := range cands {
			rr := results[i]
			if rr.Pulls < e.cfg.BatchPulls {
				continue
			}
			lb := mab.LowerBound(rr.Precision(target), rr.Pulls, verifyBeta(1, e.cfg.Delta))
			if lb > e.cfg.Precision-e.cfg.Eps {
				cov := e.coverage(cand, rr)
				if cached == nil || cov > cached.Coverage {
					cached = &explain.Rule{
						Items:     cand,
						Class:     target,
						Precision: rr.Precision(target),
						Coverage:  cov,
					}
				}
			}
		}
		if cached != nil {
			return cached, nil
		}
		keep := e.cfg.BeamWidth
		if keep > len(cands) {
			keep = len(cands)
		}
		sel, _, err := mab.TopN(arms, keep, mab.Config{
			Eps:      e.cfg.Eps,
			Delta:    e.cfg.Delta,
			Batch:    e.cfg.BatchPulls,
			MaxPulls: e.cfg.MaxPulls,
			Prior:    prior,
		})
		if err != nil {
			return nil, fmt.Errorf("anchor: beam selection: %w", err)
		}

		// Verify selected candidates against the precision threshold,
		// preferring (at this smallest viable size) the best coverage.
		var verified *explain.Rule
		beam = beam[:0]
		for _, ci := range sel {
			cand, rr := cands[ci], results[ci]
			beam = append(beam, cand)
			if e.verify(cand, rr, target, sh) {
				cov := e.coverage(cand, rr)
				if verified == nil || cov > verified.Coverage {
					verified = &explain.Rule{
						Items:     cand,
						Class:     target,
						Precision: rr.Precision(target),
						Coverage:  cov,
					}
				}
			}
			prec := rr.Precision(target)
			if fallback == nil || prec > fallback.Precision {
				fallback = &explain.Rule{
					Items:     cand,
					Class:     target,
					Precision: prec,
					Coverage:  e.coverage(cand, rr),
				}
			}
		}
		if verified != nil {
			return verified, nil // smallest rule size wins (paper §3.2)
		}
	}
	if fallback == nil {
		return nil, fmt.Errorf("anchor: no candidate rules for tuple")
	}
	return fallback, nil
}

// extendBeam returns all distinct one-item extensions of the beam rules
// with items of the tuple whose attribute the rule does not yet test.
func extendBeam(beam []dataset.Itemset, tItems []dataset.Item) []dataset.Itemset {
	seen := make(map[dataset.ItemsetKey]bool)
	var out []dataset.Itemset
	for _, rule := range beam {
		used := make(map[int]bool, len(rule))
		for _, it := range rule {
			used[it.Attr()] = true
		}
		for _, it := range tItems {
			if used[it.Attr()] {
				continue
			}
			ext := insertItem(rule, it)
			k := ext.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, ext)
			}
		}
	}
	return out
}

// insertItem returns rule ∪ {it} in canonical order.
func insertItem(rule dataset.Itemset, it dataset.Item) dataset.Itemset {
	out := make(dataset.Itemset, 0, len(rule)+1)
	placed := false
	for _, r := range rule {
		if !placed && it < r {
			out = append(out, it)
			placed = true
		}
		out = append(out, r)
	}
	if !placed {
		out = append(out, it)
	}
	return out
}

// bootstrap seeds a fresh rule's trials by scanning the repository entries
// of its immediate sub-rules for samples that also satisfy the new rule —
// the paper's "bootstrap the computation of precision for candidate rules
// containing a superset of frequent itemsets". No classifier calls occur.
func (e *Explainer) bootstrap(rule dataset.Itemset, rr *cache.RuleResult, repo *cache.Repo) {
	if len(rule) < 1 {
		return
	}
	hist := make([]int, e.cls.NumClasses())
	sub := make(dataset.Itemset, 0, len(rule)-1)
	any := false
	for skip := range rule {
		sub = sub[:0]
		for i, it := range rule {
			if i != skip {
				sub = append(sub, it)
			}
		}
		samples, ok := repo.Get(sub.Key())
		if !ok {
			continue
		}
		for i := range samples {
			if samples[i].Label >= 0 && perturb.MatchesBins(rule, samples[i].Items) {
				hist[samples[i].Label]++
				any = true
			}
		}
	}
	if any {
		rr.AddTrials(hist)
	}
}

// verify decides whether the rule's precision clears the threshold with
// bandit confidence, pulling more rule-consistent perturbations as needed.
// Acceptance follows the Anchor paper: LB > τ − ε accepts, UB < τ − ε
// rejects.
func (e *Explainer) verify(rule dataset.Itemset, rr *cache.RuleResult, target int, sh *Shared) bool {
	arm := &ruleArm{e: e, sh: sh, items: rule, rr: rr, target: target}
	tau := e.cfg.Precision
	round := 1
	for {
		mean := rr.Precision(target)
		lb := mab.LowerBound(mean, rr.Pulls, verifyBeta(round, e.cfg.Delta))
		ub := mab.UpperBound(mean, rr.Pulls, verifyBeta(round, e.cfg.Delta))
		if rr.Pulls > 0 && lb > tau-e.cfg.Eps {
			return true
		}
		if rr.Pulls > 0 && ub < tau-e.cfg.Eps {
			return false
		}
		if rr.Pulls >= e.cfg.MaxPulls {
			return mean >= tau-e.cfg.Eps
		}
		arm.Pull(e.cfg.BatchPulls)
		round++
	}
}

// verifyBeta is the single-arm KL-LUCB exploration rate:
// log(405.5 · t^1.1 / δ).
func verifyBeta(round int, delta float64) float64 {
	t := float64(round)
	if t < 1 {
		t = 1
	}
	return math.Log(405.5 * math.Pow(t, 1.1) / delta)
}

// coverage returns (computing and memoising on first use) the fraction of
// the coverage sample satisfying the rule.
func (e *Explainer) coverage(rule dataset.Itemset, rr *cache.RuleResult) float64 {
	if rr.HasCoverage {
		return rr.Coverage
	}
	if len(e.covRows) == 0 {
		rr.HasCoverage = true
		rr.Coverage = 0
		return 0
	}
	hits := 0
	for _, row := range e.covRows {
		if rule.ContainsAll(row) {
			hits++
		}
	}
	rr.Coverage = float64(hits) / float64(len(e.covRows))
	rr.HasCoverage = true
	return rr.Coverage
}

// ruleArm adapts a candidate rule to the bandit Arm interface: each pull
// generates rule-consistent perturbations, labels them with the
// classifier, stores up to StorePerRule of them in the repository for
// later bootstrap/reuse, and folds the trials into the shared invariant
// cache.
type ruleArm struct {
	e      *Explainer
	sh     *Shared
	items  dataset.Itemset
	rr     *cache.RuleResult
	target int
}

// Pull implements mab.Arm.
func (a *ruleArm) Pull(n int) int {
	hist := make([]int, a.e.cls.NumClasses())
	var store []perturb.Sample
	stored, _ := a.sh.Repo.Get(a.items.Key())
	room := a.e.cfg.StorePerRule - len(stored)
	for i := 0; i < n; i++ {
		s := a.e.gen.ForItemset(a.items)
		s.Label = a.e.cls.Predict(s.Row)
		hist[s.Label]++
		if room > 0 {
			store = append(store, s)
			room--
		}
	}
	a.rr.AddTrials(hist)
	if len(store) > 0 {
		a.sh.Repo.Append(a.items.Key(), store)
	}
	return hist[a.target]
}

package exact

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"

	"shahin/internal/dataset"
	"shahin/internal/gbt"
	"shahin/internal/rf"
)

// tinyData builds a 4-feature binary dataset whose label mixes an XOR
// of the first two features with a threshold on the third, so trained
// trees split on repeated features along one path (exercising the
// unwind logic).
func tinyData(n int, seed int64) *dataset.Dataset {
	s := &dataset.Schema{
		Attrs: []dataset.Attr{
			{Name: "x0", Kind: dataset.Numeric},
			{Name: "x1", Kind: dataset.Numeric},
			{Name: "x2", Kind: dataset.Numeric},
			{Name: "x3", Kind: dataset.Numeric},
		},
		Classes: []string{"neg", "pos"},
	}
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(s, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		label := 0
		if (x[0] > 0) != (x[1] > 0) || x[2] > 0.8 {
			label = 1
		}
		d.AppendRow(x, label)
	}
	return d
}

func tinyForest(t *testing.T, d *dataset.Dataset, trees, depth int) *rf.Forest {
	t.Helper()
	f, err := rf.Train(d, rf.Config{NumTrees: trees, MaxDepth: depth, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func tinyStats(t *testing.T, d *dataset.Dataset) *dataset.Stats {
	t.Helper()
	st, err := dataset.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMatchesBruteForceRF checks the fast path against the exponential
// Shapley definition over the identical value function on a ≤4-feature,
// ≤3-tree forest.
func TestMatchesBruteForceRF(t *testing.T) {
	d := tinyData(400, 1)
	st := tinyStats(t, d)
	f := tinyForest(t, d, 3, 4)
	e, err := New(st, f, Config{Background: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		fast, err := e.Explain(x)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := e.BruteForce(x)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Class != slow.Class {
			t.Fatalf("trial %d: class %d vs %d", trial, fast.Class, slow.Class)
		}
		if math.Abs(fast.Intercept-slow.Intercept) > 1e-9 {
			t.Fatalf("trial %d: intercept %g vs %g", trial, fast.Intercept, slow.Intercept)
		}
		for i := range fast.Weights {
			if math.Abs(fast.Weights[i]-slow.Weights[i]) > 1e-9 {
				t.Fatalf("trial %d attr %d: fast %g brute %g", trial, i, fast.Weights[i], slow.Weights[i])
			}
		}
	}
}

// TestMatchesBruteForceGBT does the same over a small boosted ensemble.
func TestMatchesBruteForceGBT(t *testing.T) {
	d := tinyData(400, 2)
	st := tinyStats(t, d)
	m, err := gbt.Train(d, gbt.Config{Rounds: 3, MaxDepth: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(st, m, Config{Background: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		fast, err := e.Explain(x)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := e.BruteForce(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fast.Weights {
			if math.Abs(fast.Weights[i]-slow.Weights[i]) > 1e-9 {
				t.Fatalf("trial %d attr %d: fast %g brute %g", trial, i, fast.Weights[i], slow.Weights[i])
			}
		}
	}
}

// TestEfficiencyIdentity checks Σφ + intercept equals the explained
// model output exactly: the target-class vote fraction for the forest,
// the signed margin for the boosted ensemble.
func TestEfficiencyIdentity(t *testing.T) {
	d := tinyData(400, 3)
	st := tinyStats(t, d)
	f := tinyForest(t, d, 7, 6)
	ef, err := New(st, f, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := gbt.Train(d, gbt.Config{Rounds: 10, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	eg, err := New(st, m, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}

		at, err := ef.Explain(x)
		if err != nil {
			t.Fatal(err)
		}
		sum := at.Intercept
		for _, w := range at.Weights {
			sum += w
		}
		want := f.Prob(x)[at.Class]
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("rf trial %d: Σφ+b = %g, vote fraction %g", trial, sum, want)
		}

		ag, err := eg.Explain(x)
		if err != nil {
			t.Fatal(err)
		}
		sum = ag.Intercept
		for _, w := range ag.Weights {
			sum += w
		}
		want = m.Score(x)
		if ag.Class == 0 {
			want = -want
		}
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("gbt trial %d: Σφ+b = %g, signed margin %g", trial, sum, want)
		}
	}
}

// TestDeterminism checks same seed → byte-identical attributions, and
// that two independently built explainers agree (the parallel workers'
// situation).
func TestDeterminism(t *testing.T) {
	d := tinyData(300, 4)
	st := tinyStats(t, d)
	f := tinyForest(t, d, 5, 5)
	x := []float64{0.3, -1.2, 0.9, 0.1}

	run := func() []byte {
		e, err := New(st, f, Config{Background: 128, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		at, err := e.Explain(x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(at)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same seed, different output:\n%s\n%s", a, b)
	}
	e2, err := New(st, f, Config{Background: 128, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Explain(x); err != nil {
		t.Fatal(err)
	}
}

// TestUnwrapsInstrumentation verifies the counting/delay chain unwraps
// and each Explain issues exactly one counted invocation.
func TestUnwrapsInstrumentation(t *testing.T) {
	d := tinyData(300, 5)
	st := tinyStats(t, d)
	f := tinyForest(t, d, 3, 4)
	cnt := rf.NewCounting(rf.NewDelayed(f, 0))
	if !Supported(cnt) {
		t.Fatal("wrapped forest not supported")
	}
	e, err := New(st, cnt, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	before := cnt.Invocations()
	if _, err := e.Explain([]float64{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if got := cnt.Invocations() - before; got != 1 {
		t.Fatalf("Explain issued %d invocations, want 1", got)
	}
	if e.NodeVisits() == 0 {
		t.Fatal("NodeVisits not counted")
	}
}

// TestUnsupportedClassifier verifies opaque classifiers are rejected
// with ErrUnsupported (the fallback trigger).
func TestUnsupportedClassifier(t *testing.T) {
	d := tinyData(300, 6)
	st := tinyStats(t, d)
	opaque := rf.Func{Classes: 2, F: func(x []float64) int { return 0 }}
	if Supported(opaque) {
		t.Fatal("opaque func reported supported")
	}
	if _, err := New(st, opaque, Config{}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("New error = %v, want ErrUnsupported", err)
	}
}

// TestWidthMismatch checks tuple-width validation on both paths.
func TestWidthMismatch(t *testing.T) {
	d := tinyData(300, 7)
	st := tinyStats(t, d)
	f := tinyForest(t, d, 2, 3)
	e, err := New(st, f, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Explain([]float64{1, 2}); err == nil {
		t.Fatal("short tuple accepted by Explain")
	}
	if _, err := e.BruteForce([]float64{1, 2}); err == nil {
		t.Fatal("short tuple accepted by BruteForce")
	}
}

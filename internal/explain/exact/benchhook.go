package exact

import (
	"shahin/internal/explain"
	"shahin/internal/rf"
)

// Benchmark sinks: package-level so the compiler cannot dead-code-
// eliminate the hotpath calls the closures below exist to measure.
var (
	benchSinkAttr *explain.Attribution
	benchSinkErr  error
)

// benchTree builds a complete binary tree of the given depth with
// rotating split features, deterministic thresholds, and geometric
// cover splits — enough branch/unwind structure to exercise the walker
// without training a model.
func benchTree(p, depth int, salt int32) []shNode {
	var nodes []shNode
	var build func(d int, cover float64) int32
	build = func(d int, cover float64) int32 {
		self := int32(len(nodes))
		if d == depth {
			nodes = append(nodes, shNode{
				feature: -1,
				class:   (self + salt) % 2,
				value:   float64((self+salt)%7) - 3,
				cover:   cover,
			})
			return self
		}
		nodes = append(nodes, shNode{
			feature:   (int32(d)*5 + salt) % int32(p),
			threshold: float64((self+salt)%9)/10 - 0.4,
			cover:     cover,
		})
		left := build(d+1, cover*0.6)
		right := build(d+1, cover*0.4)
		nodes[self].left = left
		nodes[self].right = right
		return self
	}
	build(0, 256)
	return nodes
}

// benchExplainer assembles a synthetic Explainer (trees, arena, base)
// without a dataset, mirroring what New builds from a fitted forest.
func benchExplainer(p, trees, depth int) *Explainer {
	e := &Explainer{
		predict:  rf.Func{Classes: 2, F: func(x []float64) int { return 1 }},
		nclasses: 2,
		nattrs:   p,
		rate:     1,
	}
	e.trees = make([][]shNode, trees)
	for i := range e.trees {
		e.trees[i] = benchTree(p, depth, int32(i*3+1))
	}
	e.computeBase()
	e.arena = make([][]pathElem, depth+2)
	for i := range e.arena {
		e.arena[i] = make([]pathElem, depth+2)
	}
	return e
}

// HotpathBenchBodies returns benchmark bodies for this package's
// //shahin:hotpath functions, keyed by qualified function name. The
// walker's helpers (walk, unwind, unwoundSum, findFeat) only run inside
// Explain, so one body over the full per-tuple recursion covers the
// entire hot surface. p is the attribute count of the synthetic inputs;
// each body runs its function n times.
func HotpathBenchBodies(p int) map[string]func(n int) {
	if p < 2 {
		p = 2
	}
	e := benchExplainer(p, 8, 6)
	x := make([]float64, p)
	for i := range x {
		x[i] = float64((i*3)%5)/10 - 0.2
	}
	return map[string]func(n int){
		"exact.(*Explainer).Explain": func(n int) {
			for i := 0; i < n; i++ {
				benchSinkAttr, benchSinkErr = e.Explain(x)
			}
		},
	}
}

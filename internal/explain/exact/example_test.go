package exact_test

import (
	"fmt"
	"math"

	"shahin/internal/dataset"
	"shahin/internal/explain/exact"
	"shahin/internal/rf"
)

// ExampleNew trains a small forest, builds the exact explainer over it,
// and verifies the Shapley efficiency identity: the attribution weights
// plus the intercept reproduce the target-class vote fraction exactly,
// with a single classifier invocation and no perturbation sampling.
func ExampleNew() {
	schema := &dataset.Schema{
		Attrs: []dataset.Attr{
			{Name: "income", Kind: dataset.Numeric},
			{Name: "debt", Kind: dataset.Numeric},
		},
		Classes: []string{"deny", "approve"},
	}
	d := dataset.New(schema, 8)
	rows := [][]float64{
		{10, 9}, {20, 8}, {30, 2}, {40, 1},
		{15, 7}, {25, 6}, {35, 3}, {45, 2},
	}
	for _, r := range rows {
		label := 0
		if r[0] > 22 {
			label = 1
		}
		d.AppendRow(r, label)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		panic(err)
	}
	forest, err := rf.Train(d, rf.Config{NumTrees: 5, MaxDepth: 3, Seed: 1})
	if err != nil {
		panic(err)
	}

	e, err := exact.New(st, forest, exact.Config{Background: 64, Seed: 7})
	if err != nil {
		panic(err)
	}
	at, err := e.Explain([]float64{42, 1})
	if err != nil {
		panic(err)
	}

	sum := at.Intercept
	for _, w := range at.Weights {
		sum += w
	}
	gap := math.Abs(sum - forest.Prob([]float64{42, 1})[at.Class])
	fmt.Printf("class: %s\n", schema.Classes[at.Class])
	fmt.Printf("weights: %d\n", len(at.Weights))
	fmt.Printf("efficiency gap < 1e-9: %v\n", gap < 1e-9)
	// Output:
	// class: approve
	// weights: 2
	// efficiency gap < 1e-9: true
}

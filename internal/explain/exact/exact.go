// Package exact computes exact Shapley attributions for the tree
// ensembles this repository owns end-to-end (the random forest in
// internal/rf and the boosted ensemble in internal/gbt) in polynomial
// time, using the TreeSHAP path-weight recursion (Lundberg et al.,
// "Consistent Individualized Feature Attribution for Tree Ensembles";
// see also "On the Tractability of SHAP Explanations" in PAPERS.md for
// why tree families admit this).
//
// Where KernelSHAP estimates Shapley values from perturbation samples —
// and therefore pays the classifier-invocation cost the paper shows
// dominates explanation time — the exact walker reads the tree
// structure directly. One Explain call issues exactly one classifier
// invocation (to pick the target class) and zero perturbations. The
// background distribution is the same product-of-training-marginals
// distribution every sampled explainer perturbs from: New draws
// Config.Background rows with the shared perturbation generator and
// routes them down every tree once, recording per-node visit counts
// ("covers") that weight the recursion exactly like the sampled
// estimators' expectation over fill-ins.
//
// The fast path is only legal when the model is owned in-process:
// Supported reports whether a classifier (possibly wrapped in
// instrumentation such as rf.Counting or rf.Delayed) unwraps to a tree
// ensemble this package can walk. Remote or fault-injected backends do
// not, and callers (internal/core) fall back to KernelSHAP for them.
//
// An Explainer is not safe for concurrent use: it reuses an internal
// path arena across calls. Build one per goroutine, like
// perturb.Generator.
package exact

import (
	"errors"
	"fmt"
	"math/rand"

	"shahin/internal/dataset"
	"shahin/internal/explain"
	"shahin/internal/gbt"
	"shahin/internal/perturb"
	"shahin/internal/rf"
)

// ErrUnsupported is returned (wrapped) by New when the classifier does
// not unwrap to a tree ensemble this package can walk. Callers use it
// to decide on the KernelSHAP fallback.
var ErrUnsupported = errors.New("exact: classifier is not an owned tree ensemble")

// errWidth is returned by Explain for a tuple of the wrong width. It is
// a package-level value so the hotpath stays allocation-free.
var errWidth = errors.New("exact: tuple width does not match training schema")

// Config controls the exact explainer. Zero values select the noted
// defaults.
type Config struct {
	// Background is the number of background rows drawn from the
	// discretised training distribution to compute per-node cover
	// weights (default 256). More rows sharpen the conditional
	// expectation estimate; the cost is paid once at construction.
	Background int
	// Seed drives the background draw. internal/core derives it from
	// Options.Seed when left zero so parallel workers agree on the
	// background sample.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Background <= 0 {
		c.Background = 256
	}
	return c
}

// pathElem is one entry of the TreeSHAP unique path: the feature that
// split at this depth, the fraction of background cover that follows
// the split (z), the indicator that the explained tuple follows it (o),
// and the accumulated permutation weight (w).
type pathElem struct {
	feat int32
	z    float64
	o    float64
	w    float64
}

// shNode is the unified flat node representation the walker operates
// on, built once at New from either ensemble's trees.
type shNode struct {
	feature   int32 // split attribute, -1 for leaves
	class     int32 // rf leaf class
	left      int32
	right     int32
	threshold float64
	value     float64 // gbt leaf value
	cover     float64 // background rows routed through this node
}

// Explainer computes exact Shapley attributions over one owned tree
// ensemble. It is not safe for concurrent use; build one per goroutine.
type Explainer struct {
	predict  rf.Classifier // full instrumentation chain: one Predict per Explain
	trees    [][]shNode
	gbt      bool
	nclasses int
	nattrs   int
	rate     float64 // gbt shrinkage (1 for rf)
	bias     float64 // gbt initial log-odds
	base     []float64
	arena    [][]pathElem
	visits   int64
}

// unwrapper is implemented by instrumentation wrappers (rf.Counting,
// rf.Delayed) that expose the classifier they decorate.
type unwrapper interface{ Inner() rf.Classifier }

// unwrap follows Inner() through the instrumentation chain until it
// reaches a classifier that is not a wrapper.
func unwrap(cls rf.Classifier) rf.Classifier {
	for {
		u, ok := cls.(unwrapper)
		if !ok {
			return cls
		}
		inner := u.Inner()
		if inner == nil {
			return cls
		}
		cls = inner
	}
}

// Supported reports whether cls (possibly wrapped in instrumentation)
// unwraps to a tree ensemble the exact walker can handle.
func Supported(cls rf.Classifier) bool {
	switch unwrap(cls).(type) {
	case *rf.Forest, *gbt.Model:
		return true
	}
	return false
}

// New builds an exact explainer over the ensemble underneath cls. The
// passed classifier is kept for the single target-class Predict each
// Explain issues, so invocation counters and calibrated delays still
// apply to that one call; the tree structure is read from the unwrapped
// model. It returns an error wrapping ErrUnsupported when cls does not
// unwrap to an owned ensemble.
func New(st *dataset.Stats, cls rf.Classifier, cfg Config) (*Explainer, error) {
	cfg = cfg.withDefaults()
	e := &Explainer{predict: cls, nattrs: st.Schema.NumAttrs()}
	maxDepth := 0
	switch m := unwrap(cls).(type) {
	case *rf.Forest:
		e.nclasses = m.NClasses
		e.rate = 1
		e.trees = make([][]shNode, len(m.Trees))
		for i, t := range m.Trees {
			e.trees[i] = convertRF(t)
			if d := t.Depth(); d > maxDepth {
				maxDepth = d
			}
		}
	case *gbt.Model:
		e.gbt = true
		e.nclasses = 2
		e.rate = m.Rate
		e.bias = m.Bias
		e.trees = make([][]shNode, len(m.Trees))
		for i := range m.Trees {
			e.trees[i] = convertGBT(&m.Trees[i])
		}
		maxDepth = m.MaxDepth()
	default:
		return nil, fmt.Errorf("%w (got %T)", ErrUnsupported, m)
	}

	e.computeCovers(st, cfg)
	e.computeBase()

	// One path row per recursion level. A path can hold at most one
	// element per ancestor split plus the sentinel, so depth+2 rows of
	// capacity depth+2 cover the deepest tree.
	e.arena = make([][]pathElem, maxDepth+2)
	for i := range e.arena {
		e.arena[i] = make([]pathElem, maxDepth+2)
	}
	return e, nil
}

// convertRF flattens one forest tree into the unified node form.
func convertRF(t *rf.Tree) []shNode {
	nodes := make([]shNode, len(t.Nodes))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		nodes[i] = shNode{
			feature:   n.Feature,
			class:     n.Class,
			left:      n.Left,
			right:     n.Right,
			threshold: n.Threshold,
		}
	}
	return nodes
}

// convertGBT flattens one regression tree into the unified node form.
func convertGBT(t *gbt.RegTree) []shNode {
	nodes := make([]shNode, len(t.Nodes))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		nodes[i] = shNode{
			feature:   n.Feature,
			left:      n.Left,
			right:     n.Right,
			threshold: n.Threshold,
			value:     n.Value,
		}
	}
	return nodes
}

// computeCovers draws the background sample and routes every row down
// every tree once, recording per-node visit counts.
func (e *Explainer) computeCovers(st *dataset.Stats, cfg Config) {
	gen := perturb.NewGenerator(st, rand.New(rand.NewSource(cfg.Seed)))
	for b := 0; b < cfg.Background; b++ {
		// A nil frozen itemset yields a pure draw from the training
		// product distribution — the same background every sampled
		// explainer perturbs against.
		row := gen.ForItemset(nil).Row
		for _, nodes := range e.trees {
			j := int32(0)
			for {
				nodes[j].cover++
				n := &nodes[j]
				if n.feature < 0 {
					break
				}
				if row[n.feature] <= n.threshold {
					j = n.left
				} else {
					j = n.right
				}
			}
		}
	}
}

// computeBase precomputes the background expectation of the model
// output: per-class leaf-indicator expectations for the forest, the
// expected margin for the boosted ensemble.
func (e *Explainer) computeBase() {
	if e.gbt {
		base := e.bias
		for _, nodes := range e.trees {
			root := nodes[0].cover
			if root == 0 {
				continue
			}
			for i := range nodes {
				if nodes[i].feature < 0 {
					base += e.rate * nodes[i].value * nodes[i].cover / root
				}
			}
		}
		e.base = []float64{base}
		return
	}
	e.base = make([]float64, e.nclasses)
	nt := float64(len(e.trees))
	for _, nodes := range e.trees {
		root := nodes[0].cover
		if root == 0 {
			continue
		}
		for i := range nodes {
			if nodes[i].feature < 0 {
				e.base[nodes[i].class] += nodes[i].cover / root / nt
			}
		}
	}
}

// NodeVisits returns the cumulative number of tree nodes visited by the
// path recursion across all Explain calls. Provenance events report the
// per-tuple delta of this counter in place of pooled/fresh sample
// counts.
func (e *Explainer) NodeVisits() int64 { return e.visits }

// NumTrees returns the number of trees the explainer walks per tuple.
func (e *Explainer) NumTrees() int { return len(e.trees) }

// Explain computes the exact Shapley attribution of x toward the
// model's predicted class. For the forest the explained output is the
// vote fraction of the predicted class; for the boosted ensemble it is
// the raw margin, signed toward the predicted class. In both cases the
// efficiency identity holds exactly: the attribution weights plus the
// intercept sum to the model output on x.
//
//shahin:hotpath
func (e *Explainer) Explain(x []float64) (*explain.Attribution, error) {
	if len(x) != e.nattrs {
		return nil, errWidth
	}
	target := e.predict.Predict(x)
	phi := make([]float64, e.nattrs)
	for _, nodes := range e.trees {
		e.walk(nodes, x, phi, int32(target), 0, nil, 0, 1, 1, -1)
	}
	return e.finish(phi, target), nil
}

// finish scales the per-tree sums into the final attribution for the
// given target class.
func (e *Explainer) finish(phi []float64, target int) *explain.Attribution {
	if e.gbt {
		sign := 1.0
		if target == 0 {
			sign = -1
		}
		for i := range phi {
			phi[i] *= sign * e.rate
		}
		return &explain.Attribution{Weights: phi, Intercept: sign * e.base[0], Class: target}
	}
	nt := float64(len(e.trees))
	for i := range phi {
		phi[i] /= nt
	}
	return &explain.Attribution{Weights: phi, Intercept: e.base[target], Class: target}
}

// walk implements the TreeSHAP recursion over one tree. parent is the
// unique path accumulated above node j (it shrinks when a feature
// reappears, so it is passed explicitly rather than implied by depth);
// pz/po/pf describe the split that led here. Each level copies the
// parent path into its own arena row before extending, so unwinding
// never corrupts ancestors.
//
//shahin:hotpath
func (e *Explainer) walk(nodes []shNode, x, phi []float64, target int32, depth int, parent []pathElem, j int32, pz, po float64, pf int32) {
	e.visits++
	l := len(parent)
	m := e.arena[depth][:l+1]
	copy(m, parent)
	// Extend the path with the incoming split, redistributing the
	// permutation weights over the longer subsets.
	m[l] = pathElem{feat: pf, z: pz, o: po}
	if l == 0 {
		m[l].w = 1
	}
	for i := l - 1; i >= 0; i-- {
		m[i+1].w += po * m[i].w * float64(i+1) / float64(l+1)
		m[i].w = pz * m[i].w * float64(l-i) / float64(l+1)
	}

	n := &nodes[j]
	if n.feature < 0 {
		v := n.value
		if !e.gbt {
			if n.class == target {
				v = 1
			} else {
				v = 0
			}
		}
		for i := 1; i < len(m); i++ {
			phi[m[i].feat] += unwoundSum(m, i) * (m[i].o - m[i].z) * v
		}
		return
	}

	hot, cold := n.left, n.right
	if x[n.feature] > n.threshold {
		hot, cold = n.right, n.left
	}
	var hotZ, coldZ float64
	if n.cover > 0 {
		hotZ = nodes[hot].cover / n.cover
		coldZ = nodes[cold].cover / n.cover
	}
	// If this feature already split above, undo its previous extension
	// and fold its fractions into the new one (each feature appears on
	// the unique path at most once).
	iz, io := 1.0, 1.0
	if k := findFeat(m, n.feature); k >= 0 {
		iz, io = m[k].z, m[k].o
		m = unwind(m, k)
	}
	// A branch whose zero and one fractions both vanish zeroes every
	// path weight below it and contributes nothing; skip it.
	if hotZ*iz != 0 || io != 0 {
		e.walk(nodes, x, phi, target, depth+1, m, hot, hotZ*iz, io, n.feature)
	}
	if coldZ*iz != 0 {
		e.walk(nodes, x, phi, target, depth+1, m, cold, coldZ*iz, 0, n.feature)
	}
}

// findFeat returns the path index holding feature f, or -1. Index 0 is
// the sentinel root element (feat -1) and never matches.
//
//shahin:hotpath
func findFeat(m []pathElem, f int32) int {
	for i := 1; i < len(m); i++ {
		if m[i].feat == f {
			return i
		}
	}
	return -1
}

// unwoundSum returns the total permutation weight the path would carry
// with element i removed, without mutating the path. This is the leaf
// contribution weight for element i's feature.
//
//shahin:hotpath
func unwoundSum(m []pathElem, i int) float64 {
	ud := len(m) - 1
	one, zero := m[i].o, m[i].z
	total := 0.0
	if one != 0 {
		next := m[ud].w
		for j := ud - 1; j >= 0; j-- {
			tmp := next / (float64(j+1) * one)
			total += tmp
			next = m[j].w - tmp*zero*float64(ud-j)
		}
	} else if zero != 0 {
		for j := ud - 1; j >= 0; j-- {
			total += m[j].w / (zero * float64(ud-j))
		}
	}
	return total * float64(ud+1)
}

// unwind removes element k from the path, redistributing the
// permutation weights back over the shorter subsets, and returns the
// shortened path. It is the inverse of the extension in walk.
//
//shahin:hotpath
func unwind(m []pathElem, k int) []pathElem {
	ud := len(m) - 1
	one, zero := m[k].o, m[k].z
	next := m[ud].w
	for j := ud - 1; j >= 0; j-- {
		if one != 0 {
			tmp := m[j].w
			m[j].w = next * float64(ud+1) / (float64(j+1) * one)
			next = tmp - m[j].w*zero*float64(ud-j)/float64(ud+1)
		} else {
			m[j].w = m[j].w * float64(ud+1) / (zero * float64(ud-j))
		}
	}
	for j := k; j < ud; j++ {
		m[j].feat, m[j].z, m[j].o = m[j+1].feat, m[j+1].z, m[j+1].o
	}
	return m[:ud]
}

// maxBruteForceAttrs bounds BruteForce's subset enumeration; beyond ~20
// attributes the 2^p walk is both slow and numerically pointless.
const maxBruteForceAttrs = 20

// BruteForce computes the same attribution as Explain by enumerating
// all 2^p feature subsets — the Shapley definition applied directly to
// the cover-weighted conditional value function the fast path uses. It
// exists as the ground-truth oracle for tests and the bench experiment
// and refuses schemas wider than 20 attributes.
func (e *Explainer) BruteForce(x []float64) (*explain.Attribution, error) {
	if len(x) != e.nattrs {
		return nil, errWidth
	}
	p := e.nattrs
	if p > maxBruteForceAttrs {
		return nil, fmt.Errorf("exact: brute force limited to %d attributes, schema has %d", maxBruteForceAttrs, p)
	}
	target := e.predict.Predict(x)

	// v(S) for every subset mask, summed over trees.
	vals := make([]float64, 1<<p)
	for mask := range vals {
		v := 0.0
		for _, nodes := range e.trees {
			v += e.condExp(nodes, x, uint32(mask), int32(target), 0)
		}
		vals[mask] = v
	}

	// Shapley weights |S|! (p-1-|S|)! / p! by subset size.
	fact := make([]float64, p+1)
	fact[0] = 1
	for i := 1; i <= p; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	phi := make([]float64, p)
	for i := 0; i < p; i++ {
		bit := uint32(1) << i
		for mask := uint32(0); mask < uint32(len(vals)); mask++ {
			if mask&bit != 0 {
				continue
			}
			s := popcount(mask)
			w := fact[s] * fact[p-1-s] / fact[p]
			phi[i] += w * (vals[mask|bit] - vals[mask])
		}
	}
	return e.finish(phi, target), nil
}

// condExp returns the cover-weighted conditional expectation of the
// subtree at node j: features in mask follow x, the rest mix children
// by background cover.
func (e *Explainer) condExp(nodes []shNode, x []float64, mask uint32, target, j int32) float64 {
	n := &nodes[j]
	if n.feature < 0 {
		if e.gbt {
			return n.value
		}
		if n.class == target {
			return 1
		}
		return 0
	}
	if mask&(1<<uint32(n.feature)) != 0 {
		if x[n.feature] <= n.threshold {
			return e.condExp(nodes, x, mask, target, n.left)
		}
		return e.condExp(nodes, x, mask, target, n.right)
	}
	if n.cover == 0 {
		return 0
	}
	return nodes[n.left].cover/n.cover*e.condExp(nodes, x, mask, target, n.left) +
		nodes[n.right].cover/n.cover*e.condExp(nodes, x, mask, target, n.right)
}

func popcount(m uint32) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}

// Package explain holds the types shared by the three explainer
// implementations (LIME, Anchor, KernelSHAP): the attribution result
// format and the perturbation-pool interface through which Shahin injects
// materialised perturbations for reuse.
package explain

import (
	"fmt"
	"sort"
	"strings"

	"shahin/internal/dataset"
	"shahin/internal/perturb"
)

// Attribution is a feature-importance explanation: one weight per
// attribute, where larger positive weights push the prediction toward the
// explained class. LIME and KernelSHAP produce attributions.
type Attribution struct {
	Weights   []float64
	Intercept float64
	Class     int // the class being explained (the tuple's prediction)
}

// Ranking returns attribute indices ordered by decreasing |weight|.
func (a *Attribution) Ranking() []int {
	idx := make([]int, len(a.Weights))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return abs(a.Weights[idx[x]]) > abs(a.Weights[idx[y]])
	})
	return idx
}

// TopK returns the k most important attribute indices.
func (a *Attribution) TopK(k int) []int {
	r := a.Ranking()
	if k > len(r) {
		k = len(r)
	}
	return r[:k]
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Describe renders the attribution for humans: the predicted class and
// the k most influential attributes with the tuple's actual values and
// signed weights, e.g.
//
//	class=pos because color=red (+0.320), size=12.5 (-0.210)
func (a *Attribution) Describe(schema *dataset.Schema, tuple []float64, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "class=%s because ", schema.Classes[a.Class])
	for i, attr := range a.TopK(k) {
		if i > 0 {
			b.WriteString(", ")
		}
		at := &schema.Attrs[attr]
		if at.Kind == dataset.Categorical && attr < len(tuple) {
			fmt.Fprintf(&b, "%s=%s", at.Name, at.Values[int(tuple[attr])])
		} else if attr < len(tuple) {
			fmt.Fprintf(&b, "%s=%.4g", at.Name, tuple[attr])
		} else {
			b.WriteString(at.Name)
		}
		fmt.Fprintf(&b, " (%+.3f)", a.Weights[attr])
	}
	return b.String()
}

// Rule is an Anchor explanation: IF all predicates hold THEN the
// classifier predicts Class, with the measured precision and coverage.
type Rule struct {
	Items     dataset.Itemset // the predicates, as (attribute, bin) items
	Class     int
	Precision float64
	Coverage  float64
}

// String renders the rule for humans using the schema's attribute names.
func (r *Rule) Describe(schema *dataset.Schema) string {
	if len(r.Items) == 0 {
		return fmt.Sprintf("IF (anything) THEN class=%s", schema.Classes[r.Class])
	}
	s := "IF "
	for i, it := range r.Items {
		if i > 0 {
			s += " AND "
		}
		attr := &schema.Attrs[it.Attr()]
		if attr.Kind == dataset.Categorical {
			s += fmt.Sprintf("%s=%s", attr.Name, attr.Values[it.Bin()])
		} else {
			s += fmt.Sprintf("%s∈bin%d", attr.Name, it.Bin())
		}
	}
	return fmt.Sprintf("%s THEN class=%s (precision %.2f, coverage %.2f)",
		s, schema.Classes[r.Class], r.Precision, r.Coverage)
}

// Pool supplies pre-labelled perturbations for reuse. A nil Pool means
// sequential operation (no reuse). Implementations consume samples from a
// per-tuple allowance so the same pooled sample is not handed out twice
// for one explanation.
type Pool interface {
	// ForTuple returns up to max labelled samples reusable for a tuple
	// with the given full-row item encoding: samples whose frozen itemset
	// the tuple contains.
	ForTuple(tupleItems []dataset.Item, max int) []perturb.Sample
	// ForItemset returns up to max labelled samples whose rows contain
	// all the required items (used by KernelSHAP's subset reuse and
	// Anchor's precision bootstrap).
	ForItemset(required dataset.Itemset, max int) []perturb.Sample
}

// Observer is an optional extension of Pool: explainers push every fresh
// labelled perturbation they generate to an observing pool, which is how
// the GREEDY baseline (paper §4.1) accumulates its cache of past
// perturbations.
type Observer interface {
	Observe(s perturb.Sample)
}

package explain

import (
	"strings"
	"testing"

	"shahin/internal/dataset"
)

func TestAttributionRanking(t *testing.T) {
	a := &Attribution{Weights: []float64{0.1, -0.9, 0.5, 0}}
	r := a.Ranking()
	want := []int{1, 2, 0, 3} // by |weight| descending
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranking=%v want %v", r, want)
		}
	}
}

func TestAttributionRankingStableOnTies(t *testing.T) {
	a := &Attribution{Weights: []float64{0.5, -0.5, 0.5}}
	r := a.Ranking()
	if r[0] != 0 || r[1] != 1 || r[2] != 2 {
		t.Fatalf("tie ordering not stable: %v", r)
	}
}

func TestAttributionTopK(t *testing.T) {
	a := &Attribution{Weights: []float64{3, 1, 2}}
	if got := a.TopK(2); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("TopK(2)=%v", got)
	}
	if got := a.TopK(99); len(got) != 3 {
		t.Fatalf("TopK clamping failed: %v", got)
	}
	if got := a.TopK(0); len(got) != 0 {
		t.Fatalf("TopK(0)=%v", got)
	}
}

func testSchema() *dataset.Schema {
	return &dataset.Schema{
		Attrs: []dataset.Attr{
			{Name: "color", Kind: dataset.Categorical, Values: []string{"red", "green"}},
			{Name: "size", Kind: dataset.Numeric},
		},
		Classes: []string{"neg", "pos"},
	}
}

func TestRuleDescribe(t *testing.T) {
	r := &Rule{
		Items:     dataset.Itemset{dataset.MakeItem(0, 1), dataset.MakeItem(1, 2)},
		Class:     1,
		Precision: 0.97,
		Coverage:  0.25,
	}
	s := r.Describe(testSchema())
	for _, want := range []string{"color=green", "size∈bin2", "class=pos", "0.97", "0.25", "AND"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Describe=%q missing %q", s, want)
		}
	}
}

func TestRuleDescribeEmpty(t *testing.T) {
	r := &Rule{Class: 0}
	s := r.Describe(testSchema())
	if !strings.Contains(s, "anything") || !strings.Contains(s, "class=neg") {
		t.Fatalf("empty rule: %q", s)
	}
}

func TestAttributionDescribe(t *testing.T) {
	a := &Attribution{Weights: []float64{0.32, -0.21}, Class: 1}
	got := a.Describe(testSchema(), []float64{1, 12.5}, 2)
	for _, want := range []string{"class=pos", "color=green", "+0.320", "size=12.5", "-0.210"} {
		if !strings.Contains(got, want) {
			t.Fatalf("Describe=%q missing %q", got, want)
		}
	}
	// k larger than dimension clamps without panicking.
	if s := a.Describe(testSchema(), []float64{0, 1}, 10); s == "" {
		t.Fatal("empty description")
	}
}

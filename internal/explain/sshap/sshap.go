// Package sshap implements Sampling Shapley (Štrumbelj & Kononenko,
// "Explaining prediction models and individual predictions with feature
// contributions", KAIS 2014 — reference [34] of the Shahin paper): Monte
// Carlo estimation of Shapley values by walking random feature
// permutations and accumulating marginal contributions.
//
// It exists to substantiate the paper's §3.4 claim that Shahin's
// materialise-and-reuse principles generalise beyond LIME / Anchor /
// KernelSHAP: the same explain.Pool serves this explainer too. Two of the
// paper's optimisation principles apply directly — the empty-coalition
// value is a tuple-independent invariant (cached like SHAP's base rate),
// and small prefix coalitions reuse pooled perturbations. Because most of
// a permutation walk consists of large coalitions that no pool can serve,
// the attainable speedup is structurally smaller than for the three paper
// algorithms; the ext-sshap experiment quantifies exactly that.
package sshap

import (
	"fmt"
	"math/rand"

	"shahin/internal/dataset"
	"shahin/internal/explain"
	"shahin/internal/perturb"
	"shahin/internal/rf"
)

// Config controls a Sampling-Shapley explainer.
type Config struct {
	// Permutations is the number of Monte Carlo permutations K
	// (default 20; each costs about one classifier call per attribute).
	Permutations int
	// BaseSamples estimates the empty-coalition value (default 100).
	BaseSamples int
}

func (c Config) fill() Config {
	if c.Permutations <= 0 {
		c.Permutations = 20
	}
	if c.BaseSamples <= 0 {
		c.BaseSamples = 100
	}
	return c
}

// Explainer estimates Shapley values by permutation sampling. Not safe
// for concurrent use.
type Explainer struct {
	cfg Config
	st  *dataset.Stats
	cls rf.Classifier
	gen *perturb.Generator
	rng *rand.Rand

	baseRate  []float64
	haveBase  []bool
	basePulls int64
}

// New builds a Sampling-Shapley explainer.
func New(st *dataset.Stats, cls rf.Classifier, cfg Config, rng *rand.Rand) *Explainer {
	return &Explainer{
		cfg:      cfg.fill(),
		st:       st,
		cls:      cls,
		gen:      perturb.NewGenerator(st, rng),
		rng:      rng,
		baseRate: make([]float64, cls.NumClasses()),
		haveBase: make([]bool, cls.NumClasses()),
	}
}

// Explain estimates the attribution without reuse.
func (e *Explainer) Explain(t []float64) (*explain.Attribution, error) {
	return e.ExplainWithPool(t, nil)
}

// ExplainWithPool estimates the attribution, reusing pooled labels for
// the small prefix coalitions a pool can actually serve.
func (e *Explainer) ExplainWithPool(t []float64, pool explain.Pool) (*explain.Attribution, error) {
	m := e.st.Schema.NumAttrs()
	if len(t) != m {
		return nil, fmt.Errorf("sshap: tuple has %d attributes want %d", len(t), m)
	}
	target := e.cls.Predict(t)
	tItems := e.st.ItemizeRow(t, nil)
	phi0 := e.base(target)

	phi := make([]float64, m)
	x := make([]float64, m)
	required := make(dataset.Itemset, 0, m)
	for k := 0; k < e.cfg.Permutations; k++ {
		perm := e.rng.Perm(m)
		// The chain starts at the empty coalition, whose value is the
		// cached invariant base rate, and walks toward the full tuple,
		// whose value is 1 by construction — so neither endpoint costs a
		// classifier call.
		bg := e.gen.ForItemset(nil)
		copy(x, bg.Row)
		prev := phi0
		required = required[:0]
		for i, a := range perm {
			x[a] = t[a]
			required = insertSorted(required, tItems[a])

			var cur float64
			switch {
			case i == m-1:
				cur = 1 // v(all features) = 1{C(t)=target} = 1
			case pool != nil && i < dataset.MaxItemsetLen+2:
				if got := pool.ForItemset(required, 1); len(got) == 1 {
					cur = indicator(got[0].Label == target)
					break
				}
				fallthrough
			default:
				cur = indicator(e.cls.Predict(x) == target)
			}
			phi[a] += cur - prev
			prev = cur
		}
	}
	for a := range phi {
		phi[a] /= float64(e.cfg.Permutations)
	}
	return &explain.Attribution{Weights: phi, Intercept: phi0, Class: target}, nil
}

// base measures (once per class) the empty-coalition value: the
// probability that a fully random perturbation is predicted the class.
func (e *Explainer) base(class int) float64 {
	if e.haveBase[class] {
		return e.baseRate[class]
	}
	hits := 0
	for i := 0; i < e.cfg.BaseSamples; i++ {
		s := e.gen.ForItemset(nil)
		if e.cls.Predict(s.Row) == class {
			hits++
		}
		e.basePulls++
	}
	e.baseRate[class] = float64(hits) / float64(e.cfg.BaseSamples)
	e.haveBase[class] = true
	return e.baseRate[class]
}

// BaseInvocations reports the classifier calls spent on base rates.
func (e *Explainer) BaseInvocations() int64 { return e.basePulls }

func indicator(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// insertSorted inserts it into the canonical itemset (it is never already
// present: permutations visit each attribute once).
func insertSorted(is dataset.Itemset, it dataset.Item) dataset.Itemset {
	i := len(is)
	is = append(is, it)
	for i > 0 && is[i-1] > it {
		is[i] = is[i-1]
		i--
	}
	is[i] = it
	return is
}

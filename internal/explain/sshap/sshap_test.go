package sshap

import (
	"math"
	"math/rand"
	"testing"

	"shahin/internal/datagen"
	"shahin/internal/dataset"
	"shahin/internal/perturb"
	"shahin/internal/rf"
)

func env(t *testing.T, seed int64) *dataset.Stats {
	t.Helper()
	cfg := &datagen.Config{
		Name: "sst",
		Cat:  []datagen.CatSpec{{Card: 4, Skew: 1}, {Card: 3, Skew: 0.5}, {Card: 5, Skew: 1.2}},
		Num:  []datagen.NumSpec{{Mean: 0, Std: 1}},
	}
	d, err := cfg.Generate(3000, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func attr0Classifier(v int) rf.Classifier {
	return rf.Func{Classes: 2, F: func(x []float64) int {
		if int(x[0]) == v {
			return 1
		}
		return 0
	}}
}

func TestExplainWrongArity(t *testing.T) {
	st := env(t, 1)
	e := New(st, attr0Classifier(0), Config{Permutations: 5, BaseSamples: 10}, rand.New(rand.NewSource(2)))
	if _, err := e.Explain([]float64{1}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

// Efficiency: phi0 + sum(phi) telescopes to exactly 1 by construction.
func TestAdditivityExact(t *testing.T) {
	st := env(t, 3)
	e := New(st, attr0Classifier(1), Config{Permutations: 7, BaseSamples: 30}, rand.New(rand.NewSource(4)))
	att, err := e.Explain([]float64{1, 0, 2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sum := att.Intercept
	for _, w := range att.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("phi0 + sum(phi) = %g want 1 (telescoping)", sum)
	}
}

func TestDecisiveFeatureDominates(t *testing.T) {
	st := env(t, 5)
	e := New(st, attr0Classifier(2), Config{Permutations: 60, BaseSamples: 200}, rand.New(rand.NewSource(6)))
	att, err := e.Explain([]float64{2, 1, 3, -0.2})
	if err != nil {
		t.Fatal(err)
	}
	if top := att.Ranking()[0]; top != 0 {
		t.Fatalf("top feature=%d want 0 (phi=%v)", top, att.Weights)
	}
	// For a single decisive feature phi[0] should approach 1 - baseRate.
	want := 1 - att.Intercept
	if math.Abs(att.Weights[0]-want) > 0.15 {
		t.Fatalf("phi[0]=%g want ~%g", att.Weights[0], want)
	}
	// The irrelevant features must be near zero.
	for a := 1; a < 4; a++ {
		if math.Abs(att.Weights[a]) > 0.15 {
			t.Fatalf("irrelevant phi[%d]=%g", a, att.Weights[a])
		}
	}
}

func TestBaseRateCached(t *testing.T) {
	st := env(t, 7)
	counting := rf.NewCounting(attr0Classifier(1))
	e := New(st, counting, Config{Permutations: 5, BaseSamples: 40}, rand.New(rand.NewSource(8)))
	tup := []float64{1, 0, 2, 0.5}
	if _, err := e.Explain(tup); err != nil {
		t.Fatal(err)
	}
	first := counting.Invocations()
	if _, err := e.Explain(tup); err != nil {
		t.Fatal(err)
	}
	second := counting.Invocations() - first
	if second > first-30 {
		t.Fatalf("base rate not cached: first=%d second=%d", first, second)
	}
	if e.BaseInvocations() != 40 {
		t.Fatalf("BaseInvocations=%d", e.BaseInvocations())
	}
}

// Endpoint shortcut: the chain's last step must cost no classifier call
// (v(full) = 1 is known). With m attributes and K permutations the walk
// costs K·(m-1) calls plus the tuple's own prediction and base rate.
func TestInvocationBudget(t *testing.T) {
	st := env(t, 9)
	counting := rf.NewCounting(attr0Classifier(1))
	const K, m = 10, 4
	e := New(st, counting, Config{Permutations: K, BaseSamples: 20}, rand.New(rand.NewSource(10)))
	if _, err := e.Explain([]float64{1, 0, 2, 0.5}); err != nil {
		t.Fatal(err)
	}
	want := int64(20 + 1 + K*(m-1))
	if got := counting.Invocations(); got != want {
		t.Fatalf("invocations=%d want %d", got, want)
	}
}

// prefixPool serves pooled labels for small required itemsets.
type prefixPool struct {
	samples map[dataset.ItemsetKey][]perturb.Sample
	serves  int
}

func (p *prefixPool) ForTuple([]dataset.Item, int) []perturb.Sample { return nil }

func (p *prefixPool) ForItemset(required dataset.Itemset, max int) []perturb.Sample {
	if got, ok := p.samples[required.Key()]; ok && len(got) > 0 {
		p.serves++
		return got[:1]
	}
	return nil
}

func TestPoolReducesInvocations(t *testing.T) {
	st := env(t, 11)
	cls := attr0Classifier(2)
	tup := []float64{2, 1, 0, 0.0}
	tItems := st.ItemizeRow(tup, nil)

	// Stock labels for every single- and double-item prefix of the tuple.
	gen := perturb.NewGenerator(st, rand.New(rand.NewSource(12)))
	pool := &prefixPool{samples: map[dataset.ItemsetKey][]perturb.Sample{}}
	for i := 0; i < len(tItems); i++ {
		one := dataset.Itemset{tItems[i]}
		s := gen.ForItemset(one)
		s.Label = cls.Predict(s.Row)
		pool.samples[one.Key()] = []perturb.Sample{s}
		for j := i + 1; j < len(tItems); j++ {
			two := dataset.Itemset{tItems[i], tItems[j]}
			s2 := gen.ForItemset(two)
			s2.Label = cls.Predict(s2.Row)
			pool.samples[two.Key()] = []perturb.Sample{s2}
		}
	}

	counting := rf.NewCounting(cls)
	e := New(st, counting, Config{Permutations: 20, BaseSamples: 20}, rand.New(rand.NewSource(13)))
	att, err := e.ExplainWithPool(tup, pool)
	if err != nil {
		t.Fatal(err)
	}
	if pool.serves == 0 {
		t.Fatal("pool never served")
	}
	// Without the pool: 20 + 1 + 20*3 = 81. With prefixes 1 and 2 served:
	// only the size-3 step costs a call -> 20 + 1 + 20*1 = 41.
	if got := counting.Invocations(); got > 45 {
		t.Fatalf("invocations=%d, pool saved too little", got)
	}
	if top := att.Ranking()[0]; top != 0 {
		t.Fatalf("top feature with pool=%d", top)
	}
}

func TestInsertSorted(t *testing.T) {
	var is dataset.Itemset
	for _, a := range []int{3, 0, 2, 1} {
		is = insertSorted(is, dataset.MakeItem(a, 0))
	}
	for i := 0; i < 4; i++ {
		if is[i].Attr() != i {
			t.Fatalf("not sorted: %v", is)
		}
	}
}

func TestExplainDeterministic(t *testing.T) {
	st := env(t, 14)
	tup := []float64{1, 0, 2, 0.3}
	a, err := New(st, attr0Classifier(1), Config{Permutations: 10, BaseSamples: 20}, rand.New(rand.NewSource(15))).Explain(tup)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(st, attr0Classifier(1), Config{Permutations: 10, BaseSamples: 20}, rand.New(rand.NewSource(15))).Explain(tup)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatal("same-seed explanations differ")
		}
	}
}

// Package shap implements KernelSHAP (Lundberg & Lee, NeurIPS 2017) for
// black-box classifiers over tabular data: sample feature coalitions in
// proportion to the SHAP kernel, impute the complement from the training
// distribution, label the imputed perturbations with the classifier, and
// solve the constrained weighted least squares whose solution approximates
// the Shapley values of each attribute.
//
// The explain.Pool hook implements Algorithm 3 of the Shahin paper: when a
// sampled coalition is a superset of a cached frequent itemset the tuple
// contains, an already-labelled pooled perturbation is consumed instead of
// invoking the classifier.
package shap

import (
	"fmt"
	"math/rand"
	"sort"

	"shahin/internal/dataset"
	"shahin/internal/explain"
	"shahin/internal/linmodel"
	"shahin/internal/perturb"
	"shahin/internal/rf"
	"shahin/internal/sample"
)

// Config controls a KernelSHAP explainer.
type Config struct {
	// NumSamples is the number of sampled coalitions M (default 1024).
	NumSamples int
	// BaseSamples is how many empty-coalition perturbations estimate the
	// base rate E[f] (default 100).
	BaseSamples int
	// Ridge is a tiny stabiliser added to the WLS normal matrix diagonal
	// (default 1e-6).
	Ridge float64
	// MaxReuse caps the fraction of the coalition budget served from the
	// pool (default 0.9). A fresh remainder keeps coalition diversity.
	MaxReuse float64
	// UniformSizes disables the SHAP-kernel-proportional coalition size
	// sampling (Equation 1) in favour of uniform sizes. Exists for the
	// A2 ablation; keep it off in production.
	UniformSizes bool
}

func (c Config) fill() Config {
	if c.NumSamples <= 0 {
		c.NumSamples = 1024
	}
	if c.BaseSamples <= 0 {
		c.BaseSamples = 100
	}
	if c.Ridge <= 0 {
		c.Ridge = 1e-6
	}
	if c.MaxReuse <= 0 || c.MaxReuse > 1 {
		c.MaxReuse = 0.9
	}
	return c
}

// Explainer computes Shapley-value attributions. It is not safe for
// concurrent use.
type Explainer struct {
	cfg Config
	st  *dataset.Stats
	cls rf.Classifier
	gen *perturb.Generator
	rng *rand.Rand

	sizeSampler *sample.Alias // coalition sizes 1..m-1 ∝ SHAP kernel mass

	// baseRate caches E[1{C(x)=class}] under the product marginal: a
	// tuple-independent invariant (paper §3.4), computed once per class.
	baseRate  []float64
	haveBase  []bool
	basePulls int64 // classifier invocations spent on base rates
}

// New builds a KernelSHAP explainer.
func New(st *dataset.Stats, cls rf.Classifier, cfg Config, rng *rand.Rand) *Explainer {
	m := st.Schema.NumAttrs()
	e := &Explainer{
		cfg:      cfg.fill(),
		st:       st,
		cls:      cls,
		gen:      perturb.NewGenerator(st, rng),
		rng:      rng,
		baseRate: make([]float64, cls.NumClasses()),
		haveBase: make([]bool, cls.NumClasses()),
	}
	if m >= 2 {
		// P(|S| = s) ∝ π(m,s)·C(m,s) = (m-1)/(s(m-s)); this is the
		// "sample coalition sizes by kernel weight" optimisation the paper
		// adopts (Equation 1). The uniform alternative exists only for
		// the ablation study.
		w := make([]float64, m-1)
		for s := 1; s < m; s++ {
			if e.cfg.UniformSizes {
				w[s-1] = 1
			} else {
				w[s-1] = float64(m-1) / (float64(s) * float64(m-s))
			}
		}
		e.sizeSampler = sample.MustAlias(w)
	}
	return e
}

// KernelWeight returns the SHAP kernel π(m, s) from Equation 1 of the
// paper, for subset size s of m features.
func KernelWeight(m, s int) float64 {
	if s <= 0 || s >= m {
		return 0
	}
	return float64(m-1) / (binom(m, s) * float64(s) * float64(m-s))
}

func binom(n, k int) float64 {
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}

// Explain computes the attribution for t without reuse.
func (e *Explainer) Explain(t []float64) (*explain.Attribution, error) {
	return e.ExplainWithPool(t, nil)
}

// ExplainWithPool computes the attribution for t, consuming pooled
// perturbations where a sampled coalition admits one.
func (e *Explainer) ExplainWithPool(t []float64, pool explain.Pool) (*explain.Attribution, error) {
	m := e.st.Schema.NumAttrs()
	if len(t) != m {
		return nil, fmt.Errorf("shap: tuple has %d attributes want %d", len(t), m)
	}
	if m < 2 {
		return nil, fmt.Errorf("shap: need at least 2 attributes, have %d", m)
	}
	target := e.cls.Predict(t)
	tItems := e.st.ItemizeRow(t, nil)
	phi0 := e.base(target)
	const fx = 1.0 // f(t) = 1{C(t)=target} by construction

	// Coalition masks use the bin-agreement convention for discretised
	// tabular data: mask[a] = 1 when the perturbation agrees with the
	// tuple's bin on attribute a, whether because a was frozen or because
	// the imputed value landed in the same bin. This makes pooled and
	// fresh samples exchangeable.
	masks := make([][]bool, 0, e.cfg.NumSamples)
	ys := make([]float64, 0, e.cfg.NumSamples)
	addSample := func(items []dataset.Item, label int) {
		mask := make([]bool, m)
		for a := 0; a < m; a++ {
			mask[a] = items[a] == tItems[a]
		}
		masks = append(masks, mask)
		if label == target {
			ys = append(ys, 1)
		} else {
			ys = append(ys, 0)
		}
	}

	// Algorithm 3, lines 7–8: pooled perturbations of frequent itemsets
	// the tuple contains fill the budget first, already labelled.
	if pool != nil {
		maxReuse := int(e.cfg.MaxReuse * float64(e.cfg.NumSamples))
		for _, s := range pool.ForTuple(tItems, maxReuse) {
			addSample(s.Items, s.Label)
		}
	}

	// Remaining budget: sample coalition sizes by SHAP-kernel mass, and
	// before paying a classifier call check whether the coalition is a
	// superset of a pooled itemset with a matching cached perturbation
	// (Algorithm 3, lines 9–13).
	freeze := make([]bool, m)
	for len(masks) < e.cfg.NumSamples {
		size := 1 + e.sizeSampler.Draw(e.rng)
		attrs := sample.UniformIndices(e.rng, m, size)
		sort.Ints(attrs)
		for a := range freeze {
			freeze[a] = false
		}
		required := make(dataset.Itemset, 0, size)
		for _, a := range attrs {
			freeze[a] = true
			required = append(required, tItems[a])
		}

		if pool != nil {
			if got := pool.ForItemset(required, 1); len(got) == 1 {
				addSample(got[0].Items, got[0].Label)
				continue
			}
		}
		s := e.gen.ForTuple(t, freeze)
		s.Label = e.cls.Predict(s.Row)
		if obs, ok := pool.(explain.Observer); ok {
			obs.Observe(s)
		}
		addSample(s.Items, s.Label)
	}

	phi, err := solveConstrained(masks, ys, phi0, fx, e.cfg.Ridge)
	if err != nil {
		return nil, fmt.Errorf("shap: %w", err)
	}
	return &explain.Attribution{Weights: phi, Intercept: phi0, Class: target}, nil
}

// base returns the cached base rate for a class, measuring it on first
// use with BaseSamples empty-coalition perturbations.
func (e *Explainer) base(class int) float64 {
	if e.haveBase[class] {
		return e.baseRate[class]
	}
	hits := 0
	for i := 0; i < e.cfg.BaseSamples; i++ {
		s := e.gen.ForItemset(nil)
		if e.cls.Predict(s.Row) == class {
			hits++
		}
		e.basePulls++
	}
	e.baseRate[class] = float64(hits) / float64(e.cfg.BaseSamples)
	e.haveBase[class] = true
	return e.baseRate[class]
}

// BaseInvocations reports the classifier calls spent estimating base
// rates (for overhead accounting).
func (e *Explainer) BaseInvocations() int64 { return e.basePulls }

// solveConstrained solves the KernelSHAP regression
//
//	y_i ≈ φ0 + Σ_j φ_j z_ij   subject to   Σ_j φ_j = fx − φ0
//
// with unit sample weights (the kernel is folded into the coalition
// sampling distribution). The constraint is enforced by eliminating the
// last feature, leaving an (m−1)-dimensional ordinary least squares that
// is solved via Cholesky with a tiny ridge.
func solveConstrained(masks [][]bool, ys []float64, phi0, fx, ridge float64) ([]float64, error) {
	if len(masks) == 0 {
		return nil, fmt.Errorf("no coalition samples")
	}
	m := len(masks[0])
	p := m - 1
	A := linmodel.NewSym(p)
	bvec := make([]float64, p)
	feat := make([]float64, p)
	for i, mask := range masks {
		zm := 0.0
		if mask[m-1] {
			zm = 1
		}
		for j := 0; j < p; j++ {
			zj := 0.0
			if mask[j] {
				zj = 1
			}
			feat[j] = zj - zm
		}
		target := ys[i] - phi0 - zm*(fx-phi0)
		for j := 0; j < p; j++ {
			if feat[j] == 0 {
				continue
			}
			bvec[j] += feat[j] * target
			for k := 0; k <= j; k++ {
				if feat[k] != 0 {
					A.Add(j, k, feat[j]*feat[k])
				}
			}
		}
	}
	scale := A.MaxDiag()
	if scale == 0 {
		scale = 1
	}
	for j := 0; j < p; j++ {
		A.Add(j, j, ridge*scale)
	}
	head, err := A.Solve(bvec)
	if err != nil {
		return nil, err
	}
	phi := make([]float64, m)
	copy(phi, head)
	last := fx - phi0
	for _, v := range head {
		last -= v
	}
	phi[m-1] = last
	return phi, nil
}

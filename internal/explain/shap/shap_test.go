package shap

import (
	"math"
	"math/rand"
	"testing"

	"shahin/internal/datagen"
	"shahin/internal/dataset"
	"shahin/internal/perturb"
	"shahin/internal/rf"
)

func env(t *testing.T, seed int64) *dataset.Stats {
	t.Helper()
	cfg := &datagen.Config{
		Name: "st",
		Cat:  []datagen.CatSpec{{Card: 4, Skew: 1}, {Card: 3, Skew: 0.5}, {Card: 5, Skew: 1.2}},
		Num:  []datagen.NumSpec{{Mean: 0, Std: 1}},
	}
	d, err := cfg.Generate(3000, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func attr0Classifier(v int) rf.Classifier {
	return rf.Func{Classes: 2, F: func(x []float64) int {
		if int(x[0]) == v {
			return 1
		}
		return 0
	}}
}

func TestKernelWeight(t *testing.T) {
	// Symmetric in s <-> m-s and larger at the extremes.
	m := 10
	for s := 1; s < m; s++ {
		if math.Abs(KernelWeight(m, s)-KernelWeight(m, m-s)) > 1e-12 {
			t.Fatalf("kernel not symmetric at s=%d", s)
		}
	}
	if KernelWeight(m, 1) <= KernelWeight(m, 5) {
		t.Fatal("kernel should prefer extreme subset sizes")
	}
	if KernelWeight(m, 0) != 0 || KernelWeight(m, m) != 0 {
		t.Fatal("kernel must be 0 at s=0 and s=m")
	}
}

func TestExplainErrors(t *testing.T) {
	st := env(t, 1)
	e := New(st, attr0Classifier(0), Config{NumSamples: 50, BaseSamples: 20}, rand.New(rand.NewSource(2)))
	if _, err := e.Explain([]float64{1}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

// Efficiency: phi0 + sum(phi) must equal f(t) = 1 exactly (the constraint
// is enforced algebraically).
func TestAdditivity(t *testing.T) {
	st := env(t, 3)
	e := New(st, attr0Classifier(1), Config{NumSamples: 300, BaseSamples: 50}, rand.New(rand.NewSource(4)))
	att, err := e.Explain([]float64{1, 0, 2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sum := att.Intercept
	for _, w := range att.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("phi0 + sum(phi) = %g want 1", sum)
	}
}

func TestDecisiveFeatureDominates(t *testing.T) {
	st := env(t, 5)
	e := New(st, attr0Classifier(2), Config{NumSamples: 2000, BaseSamples: 200}, rand.New(rand.NewSource(6)))
	att, err := e.Explain([]float64{2, 1, 3, -0.2})
	if err != nil {
		t.Fatal(err)
	}
	if top := att.Ranking()[0]; top != 0 {
		t.Fatalf("top feature=%d want 0 (phi=%v)", top, att.Weights)
	}
	if att.Weights[0] <= 0 {
		t.Fatalf("decisive phi=%g should be positive", att.Weights[0])
	}
	// phi_0 should approximate 1 - baseRate (all credit to attr 0).
	want := 1 - att.Intercept
	if math.Abs(att.Weights[0]-want) > 0.15 {
		t.Fatalf("phi[0]=%g want ~%g", att.Weights[0], want)
	}
}

func TestBaseRateCachedAcrossExplanations(t *testing.T) {
	st := env(t, 7)
	counting := rf.NewCounting(attr0Classifier(1))
	e := New(st, counting, Config{NumSamples: 100, BaseSamples: 50}, rand.New(rand.NewSource(8)))
	tup := []float64{1, 0, 2, 0.5}
	if _, err := e.Explain(tup); err != nil {
		t.Fatal(err)
	}
	first := counting.Invocations()
	if _, err := e.Explain(tup); err != nil {
		t.Fatal(err)
	}
	second := counting.Invocations() - first
	// The second explanation must not pay the BaseSamples cost again.
	if second > first-int64(40) {
		t.Fatalf("base rate not cached: first=%d second=%d", first, second)
	}
	if e.BaseInvocations() != 50 {
		t.Fatalf("BaseInvocations=%d want 50", e.BaseInvocations())
	}
}

// subsetPool answers ForItemset with a pre-labelled sample when the
// required items match a stocked itemset exactly or as a subset.
type subsetPool struct {
	st     *dataset.Stats
	cls    rf.Classifier
	gen    *perturb.Generator
	stock  [][]perturb.Sample // ordered, so serving order is deterministic
	serves int
}

func (p *subsetPool) ForTuple(tupleItems []dataset.Item, max int) []perturb.Sample { return nil }

func (p *subsetPool) ForItemset(required dataset.Itemset, max int) []perturb.Sample {
	var out []perturb.Sample
	for _, samples := range p.stock {
		for i := range samples {
			if len(out) >= max {
				return out
			}
			if perturb.MatchesBins(required, samples[i].Items) {
				out = append(out, samples[i])
				p.serves++
			}
		}
	}
	return out
}

func TestExplainWithPoolSavesInvocations(t *testing.T) {
	st := env(t, 9)
	cls := attr0Classifier(2)
	tup := []float64{2, 1, 0, 0.0}
	tItems := st.ItemizeRow(tup, nil)

	// Stock the pool with many samples frozen on the tuple's attr-0 item:
	// single-attribute coalitions {0} will hit them, and larger coalitions
	// may match by chance.
	gen := perturb.NewGenerator(st, rand.New(rand.NewSource(10)))
	frozen := dataset.Itemset{tItems[0]}
	samples := make([]perturb.Sample, 2000)
	for i := range samples {
		s := gen.ForItemset(frozen)
		s.Label = cls.Predict(s.Row)
		samples[i] = s
	}
	pool := &subsetPool{
		st:    st,
		cls:   cls,
		stock: [][]perturb.Sample{samples},
	}

	counting := rf.NewCounting(cls)
	e := New(st, counting, Config{NumSamples: 600, BaseSamples: 50}, rand.New(rand.NewSource(11)))
	att, err := e.ExplainWithPool(tup, pool)
	if err != nil {
		t.Fatal(err)
	}
	if pool.serves == 0 {
		t.Fatal("pool never served a sample")
	}
	// Invocations = 1 (tuple) + 50 (base) + fresh coalitions < 600.
	if got := counting.Invocations(); got >= 600+51 {
		t.Fatalf("invocations=%d; reuse saved nothing", got)
	}
	if top := att.Ranking()[0]; top != 0 {
		t.Fatalf("top feature with pool=%d want 0", top)
	}
	// Additivity must survive reuse.
	sum := att.Intercept
	for _, w := range att.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("additivity broken with pool: %g", sum)
	}
}

func TestExplainDeterministic(t *testing.T) {
	st := env(t, 12)
	tup := []float64{1, 0, 2, 0.3}
	a, err := New(st, attr0Classifier(1), Config{NumSamples: 200, BaseSamples: 30}, rand.New(rand.NewSource(13))).Explain(tup)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(st, attr0Classifier(1), Config{NumSamples: 200, BaseSamples: 30}, rand.New(rand.NewSource(13))).Explain(tup)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatal("same-seed SHAP explanations differ")
		}
	}
}

func BenchmarkExplainSequential(b *testing.B) {
	cfg := &datagen.Config{
		Name: "sb",
		Cat:  []datagen.CatSpec{{Card: 4, Skew: 1}, {Card: 3, Skew: 0.5}},
		Num:  []datagen.NumSpec{{Mean: 0, Std: 1}},
	}
	d, err := cfg.Generate(2000, 14)
	if err != nil {
		b.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		b.Fatal(err)
	}
	e := New(st, attr0Classifier(1), Config{NumSamples: 500, BaseSamples: 50}, rand.New(rand.NewSource(15)))
	tup := []float64{1, 0, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(tup); err != nil {
			b.Fatal(err)
		}
	}
}

package lime

// Benchmark sinks: package-level so the compiler cannot dead-code-
// eliminate the hotpath calls the closures below exist to measure.
var (
	benchSinkInts  []int
	benchSinkFloat float64
)

// HotpathBenchBodies returns benchmark bodies for this package's
// //shahin:hotpath functions, keyed by qualified function name. Both
// hot functions here are unexported (they are implementation details
// of the surrogate fit), so the allocation-benchmark harness in
// internal/bench reaches them through this hook instead of reflection.
// p is the attribute count of the synthetic inputs; each body runs its
// function n times.
func HotpathBenchBodies(p int) map[string]func(n int) {
	if p < 2 {
		p = 2
	}
	// kernel reads only cfg.KernelWidth, so a bare Explainer with
	// filled defaults is a faithful harness.
	e := &Explainer{cfg: Config{}.fill(p)}
	z := make([]float64, p)
	v := make([]float64, p)
	for i := range z {
		if i%2 == 0 {
			z[i] = 1
		}
		v[i] = float64((i*7)%13) - 6
	}
	k := p / 2
	return map[string]func(n int){
		"lime.topKByAbs": func(n int) {
			for i := 0; i < n; i++ {
				benchSinkInts = topKByAbs(v, k)
			}
		},
		"lime.(*Explainer).kernel": func(n int) {
			for i := 0; i < n; i++ {
				benchSinkFloat = e.kernel(z)
			}
		},
	}
}

// Package lime implements tabular LIME (Ribeiro, Singh, Guestrin, KDD
// 2016): perturb the tuple by sampling each attribute independently from
// the training distribution, label the perturbations with the black-box
// classifier, weight them by an exponential proximity kernel over the
// binary "same bin as the instance" encoding, and fit a weighted ridge
// surrogate whose coefficients are the explanation.
//
// The optional explain.Pool hook is Shahin's entry point (Algorithm 1 of
// the paper): pooled perturbations frozen on frequent itemsets the tuple
// contains are consumed first, and only the remainder of the sample budget
// is generated (and labelled) fresh.
package lime

import (
	"fmt"
	"math"
	"math/rand"

	"shahin/internal/dataset"
	"shahin/internal/explain"
	"shahin/internal/linmodel"
	"shahin/internal/perturb"
	"shahin/internal/rf"
)

// Config controls a LIME explainer. Zero values select the defaults noted
// per field.
type Config struct {
	// NumSamples is the perturbation budget N per explanation
	// (default 1000, LIME's num_samples=5000 scaled to tabular practice).
	NumSamples int
	// KernelWidth is the proximity kernel width; default 0.75·sqrt(p),
	// LIME's tabular default.
	KernelWidth float64
	// Lambda is the ridge penalty of the surrogate (default 1.0, matching
	// sklearn Ridge(alpha=1)).
	Lambda float64
	// MaxReuse caps the fraction of the budget served from the pool
	// (default 0.9). Keeping a fresh remainder preserves sample diversity
	// for the surrogate fit.
	MaxReuse float64
	// TopFeatures restricts the surrogate to the K most important
	// attributes (LIME's num_features): after an initial fit, the
	// smallest-|weight| attributes are dropped and the model refit, so
	// their reported weights become exactly zero. 0 (default) keeps all
	// attributes.
	TopFeatures int
}

func (c Config) fill(p int) Config {
	if c.NumSamples <= 0 {
		c.NumSamples = 1000
	}
	if c.KernelWidth <= 0 {
		c.KernelWidth = 0.75 * math.Sqrt(float64(p))
	}
	if c.Lambda <= 0 {
		c.Lambda = 1
	}
	if c.MaxReuse <= 0 || c.MaxReuse > 1 {
		c.MaxReuse = 0.9
	}
	return c
}

// Explainer produces LIME attributions against a fixed classifier and
// training distribution. It is not safe for concurrent use.
type Explainer struct {
	cfg Config
	st  *dataset.Stats
	cls rf.Classifier
	gen *perturb.Generator
}

// New builds a LIME explainer. rng drives all perturbation sampling.
func New(st *dataset.Stats, cls rf.Classifier, cfg Config, rng *rand.Rand) *Explainer {
	return &Explainer{
		cfg: cfg.fill(st.Schema.NumAttrs()),
		st:  st,
		cls: cls,
		gen: perturb.NewGenerator(st, rng),
	}
}

// Explain generates the LIME attribution for tuple t with no reuse
// (the sequential baseline).
func (e *Explainer) Explain(t []float64) (*explain.Attribution, error) {
	return e.ExplainWithPool(t, nil)
}

// ExplainWithPool generates the LIME attribution for t, serving as much of
// the perturbation budget as possible from the pool (Algorithm 1, lines
// 6–8) before generating and labelling fresh samples.
func (e *Explainer) ExplainWithPool(t []float64, pool explain.Pool) (*explain.Attribution, error) {
	p := e.st.Schema.NumAttrs()
	if len(t) != p {
		return nil, fmt.Errorf("lime: tuple has %d attributes want %d", len(t), p)
	}
	target := e.cls.Predict(t)
	tItems := e.st.ItemizeRow(t, nil)

	n := e.cfg.NumSamples
	X := make([][]float64, 0, n+1)
	y := make([]float64, 0, n+1)
	w := make([]float64, 0, n+1)

	addSample := func(items []dataset.Item, label int) {
		z := perturb.BinaryEncode(tItems, items, nil)
		X = append(X, z)
		if label == target {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
		w = append(w, e.kernel(z))
	}

	// The instance itself anchors the local fit (z = all ones), as in the
	// reference implementation.
	addSample(tItems, target)

	// Reused, already-labelled perturbations first.
	if pool != nil {
		maxReuse := int(e.cfg.MaxReuse * float64(n))
		for _, s := range pool.ForTuple(tItems, maxReuse) {
			addSample(s.Items, s.Label)
		}
	}

	// Fresh perturbations for the remaining budget: classic LIME sampling
	// (every attribute drawn independently from the training marginal).
	obs, _ := pool.(explain.Observer)
	noFreeze := make([]bool, p)
	for len(X) < n+1 {
		s := e.gen.ForTuple(t, noFreeze)
		s.Label = e.cls.Predict(s.Row)
		addSample(s.Items, s.Label)
		if obs != nil {
			obs.Observe(s)
		}
	}

	m, err := linmodel.Ridge(X, y, w, e.cfg.Lambda)
	if err != nil {
		return nil, fmt.Errorf("lime: surrogate fit: %w", err)
	}
	weights, intercept := m.Coef, m.Intercept
	if k := e.cfg.TopFeatures; k > 0 && k < p {
		weights, intercept, err = e.refitTop(X, y, w, m.Coef, k)
		if err != nil {
			return nil, fmt.Errorf("lime: top-%d refit: %w", k, err)
		}
	}
	return &explain.Attribution{Weights: weights, Intercept: intercept, Class: target}, nil
}

// refitTop implements LIME's "highest weights" feature selection: keep
// the k largest-|weight| attributes of the pilot fit, refit the
// surrogate on just those columns, and report zeros elsewhere.
func (e *Explainer) refitTop(X [][]float64, y, w, pilot []float64, k int) ([]float64, float64, error) {
	keep := topKByAbs(pilot, k)
	Xk := make([][]float64, len(X))
	for i, row := range X {
		sub := make([]float64, k)
		for j, a := range keep {
			sub[j] = row[a]
		}
		Xk[i] = sub
	}
	m, err := linmodel.Ridge(Xk, y, w, e.cfg.Lambda)
	if err != nil {
		return nil, 0, err
	}
	out := make([]float64, len(pilot))
	for j, a := range keep {
		out[a] = m.Coef[j]
	}
	return out, m.Intercept, nil
}

// topKByAbs returns the indices of the k largest-|v| entries.
//
//shahin:hotpath
func topKByAbs(v []float64, k int) []int {
	used := make([]bool, len(v))
	out := make([]int, 0, k)
	for len(out) < k {
		best, bestAbs := -1, -1.0
		for i, x := range v {
			if used[i] {
				continue
			}
			if a := math.Abs(x); a > bestAbs {
				best, bestAbs = i, a
			}
		}
		used[best] = true
		out = append(out, best)
	}
	return out
}

// kernel is LIME's exponential proximity kernel over binary encodings:
// exp(-d² / width²), where d² is the number of attributes whose bin
// differs from the instance.
//
//shahin:hotpath
func (e *Explainer) kernel(z []float64) float64 {
	d2 := 0.0
	for _, v := range z {
		if v == 0 {
			d2++
		}
	}
	return math.Exp(-d2 / (e.cfg.KernelWidth * e.cfg.KernelWidth))
}

package lime

import (
	"math"
	"math/rand"
	"testing"

	"shahin/internal/datagen"
	"shahin/internal/dataset"
	"shahin/internal/explain"
	"shahin/internal/perturb"
	"shahin/internal/rf"
)

// env builds stats over a 3-categorical + 1-numeric dataset.
func env(t *testing.T, seed int64) *dataset.Stats {
	t.Helper()
	cfg := &datagen.Config{
		Name: "lt",
		Cat:  []datagen.CatSpec{{Card: 4, Skew: 1}, {Card: 3, Skew: 0.5}, {Card: 5, Skew: 1.2}},
		Num:  []datagen.NumSpec{{Mean: 0, Std: 1}},
	}
	d, err := cfg.Generate(3000, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// attr0Classifier predicts 1 iff categorical attribute 0 equals v.
func attr0Classifier(v int) rf.Classifier {
	return rf.Func{Classes: 2, F: func(x []float64) int {
		if int(x[0]) == v {
			return 1
		}
		return 0
	}}
}

func TestExplainWrongArity(t *testing.T) {
	st := env(t, 1)
	e := New(st, attr0Classifier(0), Config{}, rand.New(rand.NewSource(2)))
	if _, err := e.Explain([]float64{1, 2}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestExplainShape(t *testing.T) {
	st := env(t, 3)
	e := New(st, attr0Classifier(1), Config{NumSamples: 200}, rand.New(rand.NewSource(4)))
	att, err := e.Explain([]float64{1, 0, 2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(att.Weights) != 4 {
		t.Fatalf("weights len=%d want 4", len(att.Weights))
	}
	if att.Class != 1 {
		t.Fatalf("explained class=%d want 1", att.Class)
	}
}

// The single decisive attribute must dominate the attribution.
func TestExplainFindsDecisiveFeature(t *testing.T) {
	st := env(t, 5)
	e := New(st, attr0Classifier(2), Config{NumSamples: 1500}, rand.New(rand.NewSource(6)))
	att, err := e.Explain([]float64{2, 1, 3, -0.2})
	if err != nil {
		t.Fatal(err)
	}
	if top := att.Ranking()[0]; top != 0 {
		t.Fatalf("top feature=%d want 0 (weights %v)", top, att.Weights)
	}
	if att.Weights[0] <= 0 {
		t.Fatalf("decisive feature weight %g should be positive", att.Weights[0])
	}
	// The other attributes should carry much smaller weight.
	for a := 1; a < 4; a++ {
		if math.Abs(att.Weights[a]) > 0.5*att.Weights[0] {
			t.Fatalf("irrelevant attr %d weight %g vs decisive %g", a, att.Weights[a], att.Weights[0])
		}
	}
}

// A negated decisive feature (tuple lacks the winning value) must get the
// dominant weight too, still positive toward the predicted (0) class.
func TestExplainNegativeClass(t *testing.T) {
	st := env(t, 7)
	e := New(st, attr0Classifier(2), Config{NumSamples: 1500}, rand.New(rand.NewSource(8)))
	att, err := e.Explain([]float64{0, 1, 3, 0.1}) // predicted class 0
	if err != nil {
		t.Fatal(err)
	}
	if att.Class != 0 {
		t.Fatalf("class=%d want 0", att.Class)
	}
	if top := att.Ranking()[0]; top != 0 {
		t.Fatalf("top feature=%d want 0", top)
	}
}

func TestExplainDeterministic(t *testing.T) {
	st := env(t, 9)
	tup := []float64{1, 0, 2, 0.3}
	a, err := New(st, attr0Classifier(1), Config{NumSamples: 300}, rand.New(rand.NewSource(10))).Explain(tup)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(st, attr0Classifier(1), Config{NumSamples: 300}, rand.New(rand.NewSource(10))).Explain(tup)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatal("same-seed explanations differ")
		}
	}
}

// fakePool serves pre-labelled samples frozen on a fixed itemset.
type fakePool struct {
	samples  []perturb.Sample
	tupleReq int // ForTuple calls seen
}

func (p *fakePool) ForTuple(tupleItems []dataset.Item, max int) []perturb.Sample {
	p.tupleReq++
	if max > len(p.samples) {
		max = len(p.samples)
	}
	return p.samples[:max]
}

func (p *fakePool) ForItemset(required dataset.Itemset, max int) []perturb.Sample {
	return nil
}

func TestExplainWithPoolSavesInvocations(t *testing.T) {
	st := env(t, 11)
	tup := []float64{2, 1, 0, 0.0}

	// Build pooled samples frozen on attr0=bin2 (the tuple's bin), already
	// labelled by the classifier.
	cls := attr0Classifier(2)
	gen := perturb.NewGenerator(st, rand.New(rand.NewSource(12)))
	frozen := dataset.Itemset{dataset.MakeItem(0, 2)}
	pooled := make([]perturb.Sample, 400)
	for i := range pooled {
		s := gen.ForItemset(frozen)
		s.Label = cls.Predict(s.Row)
		pooled[i] = s
	}
	pool := &fakePool{samples: pooled}

	counting := rf.NewCounting(cls)
	e := New(st, counting, Config{NumSamples: 800, MaxReuse: 0.5}, rand.New(rand.NewSource(13)))
	att, err := e.ExplainWithPool(tup, pool)
	if err != nil {
		t.Fatal(err)
	}
	if pool.tupleReq != 1 {
		t.Fatalf("pool queried %d times", pool.tupleReq)
	}
	// 1 call for the tuple itself + (800-400) fresh samples. The instance
	// anchor costs one extra call.
	wantMax := int64(1 + 800 - 400 + 1)
	if got := counting.Invocations(); got > wantMax {
		t.Fatalf("invocations=%d want <= %d (reuse failed)", got, wantMax)
	}
	// Explanation must still surface the decisive feature.
	if top := att.Ranking()[0]; top != 0 {
		t.Fatalf("top feature with pool=%d want 0", top)
	}
}

// Pooled vs sequential explanations must agree on the feature ordering
// (the paper's quality claim for LIME: same ranking, tiny deviations).
func TestPoolPreservesRanking(t *testing.T) {
	st := env(t, 14)
	tup := []float64{2, 1, 0, 0.0}
	cls := attr0Classifier(2)

	seq, err := New(st, cls, Config{NumSamples: 2000}, rand.New(rand.NewSource(15))).Explain(tup)
	if err != nil {
		t.Fatal(err)
	}

	gen := perturb.NewGenerator(st, rand.New(rand.NewSource(16)))
	frozen := dataset.Itemset{dataset.MakeItem(0, 2)}
	pooled := make([]perturb.Sample, 500)
	for i := range pooled {
		s := gen.ForItemset(frozen)
		s.Label = cls.Predict(s.Row)
		pooled[i] = s
	}
	withPool, err := New(st, cls, Config{NumSamples: 2000}, rand.New(rand.NewSource(17))).
		ExplainWithPool(tup, &fakePool{samples: pooled})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Ranking()[0] != withPool.Ranking()[0] {
		t.Fatalf("top feature differs: seq=%d pool=%d", seq.Ranking()[0], withPool.Ranking()[0])
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.fill(16)
	if c.NumSamples != 1000 || c.Lambda != 1 || c.MaxReuse != 0.9 {
		t.Fatalf("defaults %+v", c)
	}
	if math.Abs(c.KernelWidth-3) > 1e-12 { // 0.75*sqrt(16)
		t.Fatalf("kernel width %g want 3", c.KernelWidth)
	}
}

var _ explain.Pool = (*fakePool)(nil)

func BenchmarkExplainSequential(b *testing.B) {
	cfg := &datagen.Config{
		Name: "lb",
		Cat:  []datagen.CatSpec{{Card: 4, Skew: 1}, {Card: 3, Skew: 0.5}},
		Num:  []datagen.NumSpec{{Mean: 0, Std: 1}},
	}
	d, err := cfg.Generate(2000, 18)
	if err != nil {
		b.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		b.Fatal(err)
	}
	e := New(st, attr0Classifier(1), Config{NumSamples: 500}, rand.New(rand.NewSource(19)))
	tup := []float64{1, 0, 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(tup); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTopFeaturesSelection(t *testing.T) {
	st := env(t, 20)
	e := New(st, attr0Classifier(2), Config{NumSamples: 1200, TopFeatures: 2}, rand.New(rand.NewSource(21)))
	att, err := e.Explain([]float64{2, 1, 3, -0.2})
	if err != nil {
		t.Fatal(err)
	}
	nonZero := 0
	for _, w := range att.Weights {
		if w != 0 {
			nonZero++
		}
	}
	if nonZero > 2 {
		t.Fatalf("TopFeatures=2 left %d non-zero weights: %v", nonZero, att.Weights)
	}
	// The decisive attribute must survive selection.
	if att.Weights[0] == 0 {
		t.Fatalf("decisive attribute dropped: %v", att.Weights)
	}
	// TopFeatures >= p is a no-op path.
	full := New(st, attr0Classifier(2), Config{NumSamples: 300, TopFeatures: 99}, rand.New(rand.NewSource(22)))
	fatt, err := full.Explain([]float64{2, 1, 3, -0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fatt.Weights) != 4 {
		t.Fatal("no-op path broken")
	}
}

func TestTopKByAbs(t *testing.T) {
	got := topKByAbs([]float64{0.1, -5, 2, 0}, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("topKByAbs=%v", got)
	}
}

// Sinks defeating dead-code elimination in the hotpath benchmarks.
var (
	benchTopK   []int
	benchKernel float64
)

func BenchmarkTopKByAbs(b *testing.B) {
	const p = 40
	v := make([]float64, p)
	for i := range v {
		v[i] = float64((i*7)%13) - 6
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTopK = topKByAbs(v, p/2)
	}
}

func BenchmarkKernel(b *testing.B) {
	const p = 40
	e := &Explainer{cfg: Config{}.fill(p)}
	z := make([]float64, p)
	for i := range z {
		z[i] = float64(i % 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchKernel = e.kernel(z)
	}
}

package router

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"shahin/internal/fault"
)

// runProber actively checks every replica's /healthz on the configured
// interval. Probes ride the same per-replica breaker as forwarded
// traffic, so a recovered replica's first successful probe is the
// half-open trial that closes its breaker and a dead replica's breaker
// stays open without burning request latency on it.
func (rt *Router) runProber() {
	defer rt.probeWG.Done()
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.lifecycle.Done():
			return
		case <-ticker.C:
			rt.probeAll()
		}
	}
}

// probeAll runs one probe round over every replica.
func (rt *Router) probeAll() {
	for _, rp := range rt.replicas {
		rt.probe(rp)
	}
}

// probe health-checks one replica through its breaker and records the
// verdict. A probe rejected by an open breaker leaves the health flag
// untouched — the breaker is already saying "down", and its cooldown
// accounting advances toward the next half-open trial.
func (rt *Router) probe(rp *replica) {
	err := rp.breaker.Do(rt.lifecycle, func(ctx context.Context) error {
		pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, rp.base+"/healthz", nil)
		if err != nil {
			return fmt.Errorf("%w: building probe: %w", errReplicaFailed, err)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			return fmt.Errorf("%w: probe: %w", errReplicaFailed, err)
		}
		resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%w: probe answered %s", errReplicaFailed, resp.Status)
		}
		return nil
	})
	switch {
	case err == nil:
		rp.setHealthy(true)
	case errors.Is(err, fault.ErrBreakerOpen):
		// The breaker already says "down"; its cooldown accounting just
		// advanced toward the next half-open trial. Leave the flag.
	default:
		rp.setHealthy(false)
	}
}

// ReplicaStatus is one row of the GET /replicas answer.
type ReplicaStatus struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Breaker string `json:"breaker"`
}

// Status reports every replica's current health and breaker state, in
// replica order.
func (rt *Router) Status() []ReplicaStatus {
	out := make([]ReplicaStatus, len(rt.replicas))
	for i, rp := range rt.replicas {
		out[i] = ReplicaStatus{
			Name:    rp.name,
			URL:     rp.base,
			Healthy: rp.healthy.Load(),
			Breaker: rp.breaker.State().String(),
		}
	}
	return out
}

// ProbeNow runs one synchronous probe round; tests and experiments use
// it to advance health state deterministically instead of waiting out
// the ticker.
func (rt *Router) ProbeNow() { rt.probeAll() }

// Healthy reports how many replicas are currently marked healthy.
func (rt *Router) Healthy() int {
	n := 0
	for _, rp := range rt.replicas {
		if rp.healthy.Load() {
			n++
		}
	}
	return n
}

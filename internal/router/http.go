package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"shahin/internal/dataset"
	"shahin/internal/obs"
	"shahin/internal/serve"
)

// Route is the routing provenance attached to every answer: which
// replica served the tuple, how many failovers it took to get there,
// and whether the routing itself was degraded (served by a fallback
// node instead of the affinity owner — pool reuse suffers but the
// answer is real).
type Route struct {
	Replica   string `json:"replica"`
	Failovers int    `json:"failovers,omitempty"`
	Degraded  bool   `json:"degraded,omitempty"`
}

// ExplainResponse is the router's POST /v1/explain answer: the serving
// replica's response plus routing provenance.
type ExplainResponse struct {
	serve.ExplainResponse
	Route Route `json:"route"`
}

// BatchResponse is the router's POST /v1/explain/batch answer, one
// ExplainResponse per input tuple in input order.
type BatchResponse struct {
	Explanations []ExplainResponse `json:"explanations"`
	Count        int               `json:"count"`
}

// errorResponse is the JSON body of every non-2xx router-originated
// answer; replica-originated errors pass through as received.
type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes mirrors serve's request-body bound.
const maxBodyBytes = 8 << 20

// Handler returns the router's HTTP API:
//
//	POST /v1/explain        route one tuple to its affinity replica
//	POST /v1/explain/batch  route a batch, tuples individually
//	GET  /healthz           router liveness
//	GET  /readyz            readiness (503 until >= 1 replica healthy)
//	GET  /replicas          per-replica health and breaker state
//
// The explain endpoints propagate an incoming W3C traceparent through
// the hop — the replica's spans join the caller's trace — and echo the
// router's own trace identity back, exactly like shahin-serve does.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/explain", rt.handleExplain)
	mux.HandleFunc("POST /v1/explain/batch", rt.handleBatch)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if rt.Healthy() == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "no healthy replicas")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /replicas", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, rt.Status())
	})
	return mux
}

// admitOne acquires one in-flight slot without blocking; the release
// func is nil when the router is saturated and the request must shed.
func (rt *Router) admitOne() func() {
	select {
	case rt.inflight <- struct{}{}:
		return func() { <-rt.inflight }
	default:
		return nil
	}
}

// handleExplain answers POST /v1/explain by forwarding the tuple to
// its routed replica, failing over in ring order.
func (rt *Router) handleExplain(w http.ResponseWriter, r *http.Request) {
	release := rt.admitOne()
	if release == nil {
		rt.rec.Counter(obs.CounterRouterShed).Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "router: too many in-flight requests"})
		return
	}
	defer release()
	start := time.Now() //shahinvet:allow walltime — request latency feeds the router histogram
	rt.rec.Counter(obs.CounterRouterRequests).Inc()
	defer func() {
		if rt.rec != nil {
			rt.rec.Histogram(obs.HistRouterRequest).Observe(time.Since(start))
		}
	}()

	var req serve.ExplainRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if err := rt.checkTuple(req.Tuple); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	tc := rt.requestTrace(r, w)
	resp, code := rt.explainOne(r, req.Tuple, tc)
	if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, resp)
}

// explainOne routes one tuple and maps the outcome to a response and
// status code. It never hangs and never drops: the worst case is a 503
// with a JSON body saying every replica failed.
func (rt *Router) explainOne(r *http.Request, tuple []float64, tc obs.TraceContext) (any, int) {
	var items []dataset.Item
	seq := rt.route(tuple, items, nil)
	preferred := seq[0]
	ordered := rt.orderByHealth(seq, make([]int, 0, len(seq)))

	body, err := json.Marshal(serve.ExplainRequest{Tuple: tuple})
	if err != nil {
		return errorResponse{Error: err.Error()}, http.StatusInternalServerError
	}
	res, served, failovers, err := rt.explainVia(r.Context(), ordered, "/v1/explain", body, tc.Traceparent())
	if err != nil {
		return errorResponse{Error: err.Error()}, http.StatusServiceUnavailable
	}
	var inner serve.ExplainResponse
	if jerr := json.Unmarshal(res.body, &inner); jerr != nil {
		// A 4xx replica answer (e.g. 400 bad tuple) may carry a plain
		// error body; pass it through under the replica's status code.
		var passthrough json.RawMessage = res.body
		return passthrough, res.status
	}
	return ExplainResponse{
		ExplainResponse: inner,
		Route: Route{
			Replica:   rt.replicas[served].name,
			Failovers: failovers,
			Degraded:  served != preferred,
		},
	}, res.status
}

// handleBatch answers POST /v1/explain/batch: tuples are routed
// individually — preserving per-tuple affinity — and the response
// keeps input order. The overall status is the worst per-tuple status.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	release := rt.admitOne()
	if release == nil {
		rt.rec.Counter(obs.CounterRouterShed).Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "router: too many in-flight requests"})
		return
	}
	defer release()
	rt.rec.Counter(obs.CounterRouterRequests).Inc()

	var req serve.BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if len(req.Tuples) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty tuple batch"})
		return
	}
	for i, tuple := range req.Tuples {
		if err := rt.checkTuple(tuple); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("tuple %d: %v", i, err)})
			return
		}
	}
	tc := rt.requestTrace(r, w)
	resp := BatchResponse{Explanations: make([]ExplainResponse, len(req.Tuples)), Count: len(req.Tuples)}
	codes := make([]int, len(req.Tuples))
	var wg sync.WaitGroup
	for i, tuple := range req.Tuples {
		itc := tc.Child()
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, code := rt.explainOne(r, tuple, itc)
			codes[i] = code
			if er, ok := out.(ExplainResponse); ok {
				resp.Explanations[i] = er
				return
			}
			// Router- or replica-originated error: surface it in place so
			// the batch stays positional.
			resp.Explanations[i] = ExplainResponse{
				ExplainResponse: serve.ExplainResponse{Status: "failed", Source: "rejected", Error: fmt.Sprintf("HTTP %d", code)},
			}
		}()
	}
	wg.Wait()
	code := http.StatusOK
	for _, c := range codes {
		if c > code {
			code = c
		}
	}
	if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, resp)
}

// checkTuple validates a tuple's width against the router's schema so
// malformed requests are refused before burning a forward.
func (rt *Router) checkTuple(tuple []float64) error {
	if rt.cfg.Stats == nil {
		return nil
	}
	if want := rt.cfg.Stats.NumAttrs(); len(tuple) != want {
		return fmt.Errorf("tuple has %d cells, schema expects %d", len(tuple), want)
	}
	return nil
}

// requestTrace resolves the hop's trace identity — a child of the
// caller's traceparent when one is present — and echoes it on the
// response, so the chain caller → router → replica is one trace.
func (rt *Router) requestTrace(r *http.Request, w http.ResponseWriter) obs.TraceContext {
	var tc obs.TraceContext
	if in, err := obs.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
		tc = in.Child()
	} else {
		tc = obs.NewTraceContext()
	}
	w.Header().Set("Traceparent", tc.Traceparent())
	w.Header().Set("X-Shahin-Trace-Id", tc.TraceID)
	return tc
}

// decodeBody parses a bounded JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //shahinvet:allow errcheck — the status line is already sent; a broken client pipe has no recovery
}

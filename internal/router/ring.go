package router

import "shahin/internal/dataset"

// fnvOffset64 and fnvPrime64 are the FNV-1a 64-bit parameters, inlined
// so Signature allocates nothing (hash/fnv's object would escape).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Signature hashes a tuple's discretised item vector — the output of
// Stats.ItemizeRow, one (attribute, bin) item per attribute in
// ascending order — into the 64-bit routing key. Tuples identical
// after discretisation share a signature, so the ring pins them to the
// same replica and their perturbation pools stay shared. FNV-1a over
// each item's four packed bytes, little-endian.
//
//shahin:hotpath
func Signature(items []dataset.Item) uint64 {
	h := fnvOffset64
	for _, it := range items {
		v := uint32(it)
		h = (h ^ uint64(v&0xff)) * fnvPrime64
		h = (h ^ uint64((v>>8)&0xff)) * fnvPrime64
		h = (h ^ uint64((v>>16)&0xff)) * fnvPrime64
		h = (h ^ uint64(v>>24)) * fnvPrime64
	}
	return h
}

// vnode is one virtual point on the hash ring.
type vnode struct {
	hash    uint64
	replica int
}

// Ring is a consistent-hash ring: each of n replicas owns vnodesPer
// virtual points, and a signature routes to the replica owning the
// first point at or clockwise after it. Virtual points smooth the key
// distribution and keep reassignment local when a replica leaves —
// only the keys on its own points move, everyone else's stay put.
// A Ring is immutable after NewRing and safe for concurrent use.
type Ring struct {
	vnodes   []vnode
	replicas int
}

// DefaultVNodes is the virtual-point count per replica when the
// configuration does not override it.
const DefaultVNodes = 64

// NewRing builds a ring over replicas 0..n-1 with vnodesPer virtual
// points each (DefaultVNodes when <= 0). Point placement is a
// deterministic hash of (replica, point index): the same inputs build
// byte-identical rings in every process.
func NewRing(n, vnodesPer int) *Ring {
	if vnodesPer <= 0 {
		vnodesPer = DefaultVNodes
	}
	r := &Ring{vnodes: make([]vnode, 0, n*vnodesPer), replicas: n}
	for rep := 0; rep < n; rep++ {
		for i := 0; i < vnodesPer; i++ {
			r.vnodes = append(r.vnodes, vnode{
				hash:    mix64(uint64(rep)<<32 | uint64(i)),
				replica: rep,
			})
		}
	}
	sortVnodes(r.vnodes)
	return r
}

// mix64 is splitmix64's finalizer: a cheap, stateless bijection that
// spreads the (replica, index) pairs uniformly around the ring.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sortVnodes is an insertion-free heapless sort over the vnode slice.
// Ties on hash (astronomically unlikely) break by replica index so the
// ring is a total deterministic order.
func sortVnodes(v []vnode) {
	// The slice is built once at startup; simple heapsort avoids
	// pulling sort.Slice's closure machinery into the package.
	n := len(v)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(v, i, n)
	}
	for end := n - 1; end > 0; end-- {
		v[0], v[end] = v[end], v[0]
		siftDown(v, 0, end)
	}
}

func vnodeLess(a, b vnode) bool {
	if a.hash != b.hash {
		return a.hash < b.hash
	}
	return a.replica < b.replica
}

func siftDown(v []vnode, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && vnodeLess(v[child], v[child+1]) {
			child++
		}
		if !vnodeLess(v[root], v[child]) {
			return
		}
		v[root], v[child] = v[child], v[root]
		root = child
	}
}

// Lookup maps a signature to its owning replica: the replica of the
// first virtual point with hash >= sig, wrapping to the ring's start.
// Manual binary search — sort.Search's closure would allocate on the
// per-request routing path.
//
//shahin:hotpath
func (r *Ring) Lookup(sig uint64) int {
	v := r.vnodes
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid].hash < sig {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(v) {
		lo = 0
	}
	return v[lo].replica
}

// Sequence writes the failover order for sig into buf: the owning
// replica first, then each further distinct replica in ring order. The
// result always lists every replica exactly once, so a caller that
// walks it to the end has offered the request to the whole fleet. buf
// is reused when large enough.
func (r *Ring) Sequence(sig uint64, buf []int) []int {
	if cap(buf) < r.replicas {
		buf = make([]int, r.replicas)
	}
	buf = buf[:0]
	v := r.vnodes
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid].hash < sig {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(v) {
		lo = 0
	}
	for i := 0; i < len(v) && len(buf) < r.replicas; i++ {
		rep := v[(lo+i)%len(v)].replica
		seen := false
		for _, b := range buf {
			if b == rep {
				seen = true
				break
			}
		}
		if !seen {
			buf = append(buf, rep)
		}
	}
	return buf
}

// Replicas returns the replica count the ring was built over.
func (r *Ring) Replicas() int { return r.replicas }

package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"shahin/internal/datagen"
	"shahin/internal/dataset"
	"shahin/internal/fault"
	"shahin/internal/obs"
	"shahin/internal/serve"
)

func testStats(t *testing.T) *dataset.Stats {
	t.Helper()
	cfg := &datagen.Config{
		Name: "router",
		Cat: []datagen.CatSpec{
			{Card: 4, Skew: 1.2}, {Card: 3, Skew: 1.0}, {Card: 5, Skew: 1.2},
		},
		Num: []datagen.NumSpec{{Mean: 0, Std: 1}},
	}
	d, err := cfg.Generate(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSignatureDeterministicAndDiscretised(t *testing.T) {
	st := testStats(t)
	a := []float64{1, 2, 3, 0.5}
	b := []float64{1, 2, 3, 0.5}
	sa := Signature(st.ItemizeRow(a, nil))
	sb := Signature(st.ItemizeRow(b, nil))
	if sa != sb {
		t.Fatalf("identical tuples: signatures %#x != %#x", sa, sb)
	}
	// A different categorical value must (with these cards) change a bin
	// and therefore the signature.
	c := []float64{2, 2, 3, 0.5}
	if sc := Signature(st.ItemizeRow(c, nil)); sc == sa {
		t.Fatalf("distinct bins collided: %#x", sc)
	}
	// Numeric values inside the same quartile bin share the signature.
	items := st.ItemizeRow(a, nil)
	itemsShift := st.ItemizeRow([]float64{1, 2, 3, 0.5000001}, nil)
	if fmt.Sprint(items) == fmt.Sprint(itemsShift) && Signature(items) != Signature(itemsShift) {
		t.Fatal("same item vector, different signature")
	}
}

func TestRingDeterminismAndCoverage(t *testing.T) {
	r1 := NewRing(3, 64)
	r2 := NewRing(3, 64)
	hit := map[int]int{}
	for i := 0; i < 10_000; i++ {
		sig := mix64(uint64(i))
		a, b := r1.Lookup(sig), r2.Lookup(sig)
		if a != b {
			t.Fatalf("rings disagree at %#x: %d vs %d", sig, a, b)
		}
		hit[a]++
	}
	for rep := 0; rep < 3; rep++ {
		if hit[rep] < 1000 {
			t.Fatalf("replica %d owns only %d/10000 keys — ring badly unbalanced: %v", rep, hit[rep], hit)
		}
	}
	// Sequence: every replica exactly once, owner first.
	for i := 0; i < 100; i++ {
		sig := mix64(uint64(i) ^ 0xabcdef)
		seq := r1.Sequence(sig, nil)
		if len(seq) != 3 {
			t.Fatalf("Sequence len=%d, want 3", len(seq))
		}
		if seq[0] != r1.Lookup(sig) {
			t.Fatalf("Sequence head %d != Lookup %d", seq[0], r1.Lookup(sig))
		}
		seen := map[int]bool{}
		for _, rep := range seq {
			if seen[rep] {
				t.Fatalf("Sequence repeats replica %d: %v", rep, seq)
			}
			seen[rep] = true
		}
	}
}

// fakeReplica is a minimal shahin-serve stand-in: /healthz and
// /v1/explain with a canned answer, a togglable failure mode, and a
// request count.
type fakeReplica struct {
	ts      *httptest.Server
	calls   atomic.Int64
	failing atomic.Bool
	lastTP  atomic.Value // last traceparent header seen
}

func newFakeReplica(t *testing.T, name string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if f.failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/explain", func(w http.ResponseWriter, r *http.Request) {
		if f.failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		f.calls.Add(1)
		f.lastTP.Store(r.Header.Get("traceparent"))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.ExplainResponse{Status: "ok", Source: name}) //shahinvet:allow errcheck — test fixture write
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func newTestRouter(t *testing.T, st *dataset.Stats, rec *obs.Recorder, replicas ...*fakeReplica) *Router {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, f := range replicas {
		urls[i] = f.ts.URL
	}
	rt, err := New(Config{
		Replicas:      urls,
		Stats:         st,
		ProbeInterval: time.Hour, // tests drive probes via ProbeNow
		Breaker:       fault.Config{BreakerThreshold: 2, BreakerCooldownCalls: 1},
		Recorder:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func postTuple(t *testing.T, url string, tuple []float64, header http.Header) (ExplainResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(serve.ExplainRequest{Tuple: tuple})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/explain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	var out ExplainResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding router response: %v", err)
		}
	}
	return out, resp
}

// TestRouterAffinityPinsTuples: the same tuple always lands on the
// same replica, and the response names it.
func TestRouterAffinityPinsTuples(t *testing.T) {
	st := testStats(t)
	a, b, c := newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")
	rt := newTestRouter(t, st, nil, a, b, c)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	tuple := []float64{1, 2, 3, 0.25}
	first, resp := postTuple(t, ts.URL, tuple, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if first.Route.Degraded || first.Route.Failovers != 0 {
		t.Fatalf("clean route marked degraded: %+v", first.Route)
	}
	for i := 0; i < 5; i++ {
		again, _ := postTuple(t, ts.URL, tuple, nil)
		if again.Route.Replica != first.Route.Replica {
			t.Fatalf("tuple moved: %s then %s", first.Route.Replica, again.Route.Replica)
		}
	}
	total := a.calls.Load() + b.calls.Load() + c.calls.Load()
	if total != 6 {
		t.Fatalf("replicas saw %d calls, want 6", total)
	}
	// All six went to one replica.
	if a.calls.Load() != 6 && b.calls.Load() != 6 && c.calls.Load() != 6 {
		t.Fatalf("affinity split calls: a=%d b=%d c=%d", a.calls.Load(), b.calls.Load(), c.calls.Load())
	}
}

// TestRouterFailoverMarksDegraded: with the affinity owner down, the
// request fails over in ring order, is answered, and is marked
// degraded — never dropped.
func TestRouterFailoverMarksDegraded(t *testing.T) {
	st := testStats(t)
	a, b, c := newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")
	replicas := []*fakeReplica{a, b, c}
	rec := obs.NewRecorder()
	rt := newTestRouter(t, st, rec, a, b, c)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	tuple := []float64{1, 2, 3, 0.25}
	first, _ := postTuple(t, ts.URL, tuple, nil)
	var owner *fakeReplica
	for i, f := range replicas {
		if fmt.Sprintf("replica%d", i) == first.Route.Replica {
			owner = f
		}
	}
	if owner == nil {
		t.Fatalf("unknown owner %q", first.Route.Replica)
	}

	owner.failing.Store(true)
	out, resp := postTuple(t, ts.URL, tuple, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover request: HTTP %d", resp.StatusCode)
	}
	if !out.Route.Degraded || out.Route.Failovers == 0 {
		t.Fatalf("failover not marked degraded: %+v", out.Route)
	}
	if out.Route.Replica == first.Route.Replica {
		t.Fatalf("still routed to the dead owner %s", out.Route.Replica)
	}
	if rec.Counter(obs.CounterRouterFailovers).Value() == 0 {
		t.Fatal("failover counter not incremented")
	}

	// Once the owner is marked unhealthy, requests route around it
	// without retrying — it's the active prober that accumulates the
	// failures that trip its breaker (threshold 2).
	rt.ProbeNow()
	rt.ProbeNow()
	st2 := rt.Status()
	tripped := false
	for _, s := range st2 {
		if s.Name == first.Route.Replica && s.Breaker != "closed" {
			tripped = true
		}
	}
	if !tripped {
		t.Fatalf("owner breaker still closed after repeated failures: %+v", st2)
	}

	// Recovery: owner comes back, probes close the breaker, and
	// affinity routing resumes.
	owner.failing.Store(false)
	for i := 0; i < 5; i++ {
		rt.ProbeNow()
	}
	back, _ := postTuple(t, ts.URL, tuple, nil)
	if back.Route.Replica != first.Route.Replica || back.Route.Degraded {
		t.Fatalf("affinity did not recover: %+v", back.Route)
	}
}

// TestRouterAllReplicasDown: when the whole fleet is down the answer
// is a 503 with a JSON error body — not a hang, not a dropped tuple.
func TestRouterAllReplicasDown(t *testing.T) {
	st := testStats(t)
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	rec := obs.NewRecorder()
	rt := newTestRouter(t, st, rec, a, b)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	a.failing.Store(true)
	b.failing.Store(true)

	body, _ := json.Marshal(serve.ExplainRequest{Tuple: []float64{1, 2, 3, 0.25}})
	resp, err := http.Post(ts.URL+"/v1/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want 503", resp.StatusCode)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("Content-Type %q", resp.Header.Get("Content-Type"))
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "every replica failed") {
		t.Fatalf("error %q", er.Error)
	}
	if rec.Counter(obs.CounterRouterUnrouted).Value() == 0 {
		t.Fatal("unrouted counter not incremented")
	}
}

// TestRouterShedsPastMaxInflight: with the admission semaphore
// saturated, requests are shed with 429 + Retry-After.
func TestRouterShedsPastMaxInflight(t *testing.T) {
	st := testStats(t)
	a := newFakeReplica(t, "a")
	rec := obs.NewRecorder()
	rt, err := New(Config{
		Replicas:      []string{a.ts.URL},
		Stats:         st,
		MaxInflight:   1,
		ProbeInterval: time.Hour,
		Recorder:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	rt.inflight <- struct{}{} // saturate the semaphore
	body, _ := json.Marshal(serve.ExplainRequest{Tuple: []float64{1, 2, 3, 0.25}})
	resp, err := http.Post(ts.URL+"/v1/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After header")
	}
	if rec.Counter(obs.CounterRouterShed).Value() != 1 {
		t.Fatalf("shed counter = %d, want 1", rec.Counter(obs.CounterRouterShed).Value())
	}
	<-rt.inflight
	if _, resp := postTuple(t, ts.URL, []float64{1, 2, 3, 0.25}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release request: HTTP %d", resp.StatusCode)
	}
}

// TestRouterTracePropagation: the router joins the caller's trace and
// forwards a child traceparent so the replica joins the same trace.
func TestRouterTracePropagation(t *testing.T) {
	st := testStats(t)
	a := newFakeReplica(t, "a")
	rt := newTestRouter(t, st, nil, a)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	in := obs.NewTraceContext()
	hdr := http.Header{}
	hdr.Set("traceparent", in.Traceparent())
	_, resp := postTuple(t, ts.URL, []float64{1, 2, 3, 0.25}, hdr)
	echo := resp.Header.Get("X-Shahin-Trace-Id")
	if echo != in.TraceID {
		t.Fatalf("router echoed trace %q, want caller's %q", echo, in.TraceID)
	}
	fwd, _ := a.lastTP.Load().(string)
	parsed, err := obs.ParseTraceparent(fwd)
	if err != nil {
		t.Fatalf("replica saw traceparent %q: %v", fwd, err)
	}
	if parsed.TraceID != in.TraceID {
		t.Fatalf("replica trace %q, want %q", parsed.TraceID, in.TraceID)
	}
	if parsed.SpanID == in.SpanID {
		t.Fatal("router forwarded the caller's span ID instead of a child")
	}
}

// TestRouterReadyzAndReplicas: readiness tracks replica health and
// GET /replicas reports the per-replica view.
func TestRouterReadyzAndReplicas(t *testing.T) {
	st := testStats(t)
	a := newFakeReplica(t, "a")
	rt := newTestRouter(t, st, nil, a)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz HTTP %d with a healthy replica", resp.StatusCode)
	}

	a.failing.Store(true)
	// Two probes: the first opens nothing (threshold 2), the second
	// trips the breaker; either way the health flag drops immediately.
	rt.ProbeNow()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz HTTP %d with no healthy replicas, want 503", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/replicas")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	var status []ReplicaStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status) != 1 || status[0].Healthy || status[0].Name != "replica0" {
		t.Fatalf("replica status %+v", status)
	}
}

// TestRouterRoundRobinSpreads: the baseline policy ignores content and
// cycles the fleet.
func TestRouterRoundRobinSpreads(t *testing.T) {
	st := testStats(t)
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	rt, err := New(Config{
		Replicas:      []string{a.ts.URL, b.ts.URL},
		Stats:         st,
		Policy:        PolicyRoundRobin,
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	tuple := []float64{1, 2, 3, 0.25}
	for i := 0; i < 6; i++ {
		if _, resp := postTuple(t, ts.URL, tuple, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: HTTP %d", i, resp.StatusCode)
		}
	}
	if a.calls.Load() != 3 || b.calls.Load() != 3 {
		t.Fatalf("round robin split a=%d b=%d, want 3/3", a.calls.Load(), b.calls.Load())
	}
}

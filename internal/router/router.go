// Package router implements the failure-aware sharded front tier
// behind cmd/shahin-router: it consistent-hashes each tuple's
// discretised frequent-itemset signature onto N shahin-serve replicas
// so the cross-tuple pool and store reuse that makes Shahin fast
// survives the split into shards — tuples identical after
// discretisation always land on the same replica, where the warm pool
// already holds their itemsets' perturbations.
//
// Robustness is the headline: every replica is watched by an active
// /healthz prober and passive error accounting, both riding one
// per-replica circuit breaker (fault.NewOpBreaker), so a dead or
// misbehaving replica is failed over in ring order — the answer is
// marked as routed degraded, never silently dropped — and requests are
// only refused (503 with a JSON body) when every replica in the
// sequence has failed. Admission is bounded: past MaxInflight
// concurrent requests the router sheds load with 429 + Retry-After
// instead of queue collapse. A restarted replica warms its explanation
// store from a healthy ring neighbour via serve's checksummed,
// version-gated /snapshot endpoint (serve.RestoreFromPeers).
package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"shahin/internal/dataset"
	"shahin/internal/fault"
	"shahin/internal/obs"
)

// Policy selects how the router spreads tuples over replicas.
type Policy string

const (
	// PolicyAffinity consistent-hashes the tuple's itemset signature
	// (the default; preserves warm-pool reuse).
	PolicyAffinity Policy = "affinity"
	// PolicyRoundRobin ignores tuple content — the naive baseline the
	// Sharded experiment measures affinity against.
	PolicyRoundRobin Policy = "roundrobin"
)

// Config assembles a Router. Replicas and Stats are required; zero
// values elsewhere select the noted defaults.
type Config struct {
	// Replicas are the shahin-serve base URLs, e.g.
	// "http://127.0.0.1:18081". Order is identity: replica i keeps ring
	// position i across restarts.
	Replicas []string
	// Stats is the shared training-distribution statistics used to
	// discretise tuples into items; it must match the replicas'
	// discretiser or affinity breaks silently.
	Stats *dataset.Stats
	// VNodes is the virtual-point count per replica (DefaultVNodes).
	VNodes int
	// Policy is the routing policy (PolicyAffinity).
	Policy Policy
	// MaxInflight bounds concurrent in-flight requests; excess load is
	// shed with 429 + Retry-After (default 256).
	MaxInflight int
	// ForwardTimeout bounds one forward attempt to one replica
	// (default 30s).
	ForwardTimeout time.Duration
	// ProbeInterval is the active health-check period (default 1s);
	// ProbeTimeout bounds one probe (default ProbeInterval/2).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// Breaker tunes the per-replica circuit breakers. When neither
	// cooldown field is set, BreakerCooldownCalls defaults to 2 so a
	// recovered replica is re-trialled after two rejected calls or
	// probes rather than fault.Config's chain default of 100.
	Breaker fault.Config
	// Recorder receives router metrics and per-replica breaker events;
	// nil disables instrumentation.
	Recorder *obs.Recorder
	// Client overrides the forwarding HTTP client (nil uses a default
	// client; probes and forwards share it).
	Client *http.Client
}

// withDefaults fills zero Config fields.
func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Policy == "" {
		c.Policy = PolicyAffinity
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval / 2
	}
	if c.Breaker.BreakerCooldown <= 0 && c.Breaker.BreakerCooldownCalls <= 0 {
		c.Breaker.BreakerCooldownCalls = 2
	}
	return c
}

// replica is the router's view of one shahin-serve backend.
type replica struct {
	name    string
	base    string
	breaker *fault.Breaker
	healthy atomic.Bool
	upGauge *obs.Gauge
}

// setHealthy flips the health flag and mirrors it into the up gauge.
func (rp *replica) setHealthy(up bool) {
	rp.healthy.Store(up)
	if up {
		rp.upGauge.Set(1)
	} else {
		rp.upGauge.Set(0)
	}
}

// Router is the sharded serving front tier. Create one with New, mount
// Handler on an HTTP server, and call Close on shutdown.
type Router struct {
	cfg      Config
	ring     *Ring
	replicas []*replica
	client   *http.Client
	rec      *obs.Recorder

	inflight chan struct{} // admission semaphore, capacity MaxInflight
	rr       atomic.Uint64 // round-robin cursor

	lifecycle context.Context
	endLife   context.CancelFunc
	probeWG   sync.WaitGroup
}

// New builds a Router over cfg.Replicas and starts the active health
// prober. Stats is required for affinity routing.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("router: New needs at least one replica URL")
	}
	cfg = cfg.withDefaults()
	if cfg.Policy != PolicyAffinity && cfg.Policy != PolicyRoundRobin {
		return nil, fmt.Errorf("router: unknown policy %q", cfg.Policy)
	}
	if cfg.Policy == PolicyAffinity && cfg.Stats == nil {
		return nil, errors.New("router: affinity routing needs dataset stats")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	// The prober's lifecycle is deliberately detached from any request
	// context: it ends when Close runs, not when a caller gives up.
	ctx, cancel := context.WithCancel(obs.RootContext())
	rt := &Router{
		cfg:       cfg,
		ring:      NewRing(len(cfg.Replicas), cfg.VNodes),
		client:    client,
		rec:       cfg.Recorder,
		inflight:  make(chan struct{}, cfg.MaxInflight),
		lifecycle: ctx,
		endLife:   cancel,
	}
	for i, base := range cfg.Replicas {
		name := fmt.Sprintf("replica%d", i)
		rp := &replica{
			name:    name,
			base:    base,
			breaker: fault.NewOpBreaker(cfg.Breaker, cfg.Recorder, name),
			upGauge: rt.rec.Gauge(obs.GaugeReplicaUpPrefix + name),
		}
		// Optimistic start: replicas are presumed up until a probe or a
		// forward says otherwise, so a cold router routes immediately.
		rp.setHealthy(true)
		rt.replicas = append(rt.replicas, rp)
	}
	rt.probeWG.Add(1)
	go rt.runProber()
	return rt, nil
}

// Close stops the health prober. It does not touch the replicas.
func (rt *Router) Close() {
	rt.endLife()
	rt.probeWG.Wait()
}

// route computes the failover sequence for one tuple under the
// configured policy: the preferred replica first, then every other
// replica exactly once.
func (rt *Router) route(tuple []float64, items []dataset.Item, seq []int) []int {
	switch rt.cfg.Policy {
	case PolicyRoundRobin:
		n := len(rt.replicas)
		start := int(rt.rr.Add(1)-1) % n
		if cap(seq) < n {
			seq = make([]int, n)
		}
		seq = seq[:n]
		for i := range seq {
			seq[i] = (start + i) % n
		}
		return seq
	default:
		items = rt.cfg.Stats.ItemizeRow(tuple, items)
		return rt.ring.Sequence(Signature(items), seq)
	}
}

// orderByHealth stably partitions a failover sequence so replicas
// currently marked healthy are tried before unhealthy ones. Unhealthy
// replicas stay in the sequence — when the whole fleet is down they
// are still offered the request rather than dropping it — they just
// stop shielding healthy nodes behind them.
func (rt *Router) orderByHealth(seq, out []int) []int {
	out = out[:0]
	for _, i := range seq {
		if rt.replicas[i].healthy.Load() {
			out = append(out, i)
		}
	}
	for _, i := range seq {
		if !rt.replicas[i].healthy.Load() {
			out = append(out, i)
		}
	}
	return out
}

// forwardResult is one replica's answer to a forwarded explain call.
type forwardResult struct {
	status int
	body   []byte
	header http.Header
}

// errReplicaFailed classifies a forward answer that should fail over:
// transport errors, 5xx, and 429 (another replica may have capacity).
var errReplicaFailed = errors.New("replica failed")

// forward posts one explain request to a replica and classifies the
// outcome: nil error for answers the router should return to the
// caller (2xx and client-caused 4xx), errReplicaFailed-wrapped errors
// for answers that should trip the breaker and fail over.
func (rt *Router) forward(ctx context.Context, rp *replica, path string, body []byte, traceparent string) (forwardResult, error) {
	fctx, cancel := context.WithTimeout(ctx, rt.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, rp.base+path, bytes.NewReader(body))
	if err != nil {
		return forwardResult{}, fmt.Errorf("%w: building request: %w", errReplicaFailed, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return forwardResult{}, ctx.Err() // the caller gave up; don't blame the replica
		}
		return forwardResult{}, fmt.Errorf("%w: %w", errReplicaFailed, err)
	}
	defer resp.Body.Close() //shahinvet:allow errcheck — read-only close cannot lose data
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		if ctx.Err() != nil {
			return forwardResult{}, ctx.Err()
		}
		return forwardResult{}, fmt.Errorf("%w: reading body: %w", errReplicaFailed, err)
	}
	if resp.StatusCode >= http.StatusInternalServerError || resp.StatusCode == http.StatusTooManyRequests {
		return forwardResult{}, fmt.Errorf("%w: %s answered %s", errReplicaFailed, rp.name, resp.Status)
	}
	return forwardResult{status: resp.StatusCode, body: buf.Bytes(), header: resp.Header}, nil
}

// explainVia walks the failover sequence, offering the request to each
// replica through its breaker, and returns the first non-failing
// answer plus the index of the replica that served it and how many
// failovers it took. A replica whose breaker is open is skipped in
// O(1) without a network round trip.
func (rt *Router) explainVia(ctx context.Context, seq []int, path string, body []byte, traceparent string) (forwardResult, int, int, error) {
	var res forwardResult
	failovers := 0
	var lastErr error
	for n, i := range seq {
		rp := rt.replicas[i]
		err := rp.breaker.Do(ctx, func(c context.Context) error {
			r, err := rt.forward(c, rp, path, body, traceparent)
			if err == nil {
				res = r
			}
			return err
		})
		if err == nil {
			rp.setHealthy(true)
			if n > 0 {
				rt.rec.Counter(obs.CounterRouterFailovers).Inc()
			}
			return res, i, failovers, nil
		}
		if ctx.Err() != nil {
			return forwardResult{}, -1, failovers, ctx.Err()
		}
		if !errors.Is(err, fault.ErrBreakerOpen) {
			rp.setHealthy(false)
		}
		lastErr = err
		failovers++
	}
	rt.rec.Counter(obs.CounterRouterUnrouted).Inc()
	return forwardResult{}, -1, failovers, fmt.Errorf("router: every replica failed: %w", lastErr)
}

package rf

import (
	"sync/atomic"
	"time"
)

// Counting wraps a Classifier and counts Predict invocations. It is the
// measurement instrument behind every speedup number in the experiments:
// Shahin's optimisations reduce exactly this counter.
type Counting struct {
	inner Classifier
	n     atomic.Int64
	hook  atomic.Pointer[func(time.Duration)]
}

// NewCounting wraps c.
func NewCounting(c Classifier) *Counting { return &Counting{inner: c} }

// SetPredictHook installs fn to receive the latency of every Predict
// call (the observability recorder feeds its invocation counter and
// latency histogram this way). A nil hook — the default — skips the
// timing entirely. The hook is held in an atomic pointer, so it may be
// installed or swapped even after the classifier is shared across
// goroutines; the hook itself must be goroutine-safe.
func (c *Counting) SetPredictHook(fn func(time.Duration)) {
	if fn == nil {
		c.hook.Store(nil)
		return
	}
	c.hook.Store(&fn)
}

// NumClasses implements Classifier.
func (c *Counting) NumClasses() int { return c.inner.NumClasses() }

// Predict implements Classifier, incrementing the invocation counter.
func (c *Counting) Predict(x []float64) int {
	c.n.Add(1)
	if p := c.hook.Load(); p != nil {
		hook := *p
		start := time.Now() //shahinvet:allow walltime — predict-latency hook measurement
		y := c.inner.Predict(x)
		hook(time.Since(start))
		return y
	}
	return c.inner.Predict(x)
}

// Invocations returns the number of Predict calls so far.
func (c *Counting) Invocations() int64 { return c.n.Load() }

// Inner returns the wrapped classifier. Structure-aware explainers (the
// exact TreeSHAP fast path) unwrap the instrumentation chain through
// this method to reach a model whose trees they can walk directly.
func (c *Counting) Inner() Classifier { return c.inner }

// Reset zeroes the invocation counter.
func (c *Counting) Reset() { c.n.Store(0) }

// Delayed wraps a Classifier and adds a fixed busy-wait to every Predict
// call. The benchmark harness uses it to reproduce the paper's cost
// profile — in the authors' Python setup a single random-forest prediction
// costs on the order of a millisecond, making classifier invocation ~90 %
// of explanation time, whereas this Go forest answers in microseconds.
// Busy-waiting (rather than sleeping) keeps sub-millisecond delays
// accurate and deterministic under load.
type Delayed struct {
	inner Classifier
	delay time.Duration
}

// NewDelayed wraps c with a per-call delay. A non-positive delay returns a
// wrapper that adds nothing.
func NewDelayed(c Classifier, delay time.Duration) *Delayed {
	return &Delayed{inner: c, delay: delay}
}

// NumClasses implements Classifier.
func (d *Delayed) NumClasses() int { return d.inner.NumClasses() }

// Inner returns the wrapped classifier. The delay simulates invocation
// cost, not remoteness: the model underneath is still owned in-process,
// so structure-aware explainers may unwrap through it (each Predict they
// do issue still pays the calibrated delay).
func (d *Delayed) Inner() Classifier { return d.inner }

// Predict implements Classifier with the configured extra latency.
func (d *Delayed) Predict(x []float64) int {
	y := d.inner.Predict(x)
	if d.delay > 0 {
		spin(d.delay)
	}
	return y
}

// spinSleepMargin is how much of a long delay is left to the busy-wait
// tail after the bulk sleep: generous enough to absorb typical timer
// overshoot, small enough that the spin burns microseconds, not a core.
const spinSleepMargin = 500 * time.Microsecond

// spin waits for roughly dur. Below one millisecond it busy-waits so
// sub-millisecond calibration stays accurate and deterministic under
// load; above it, it sleeps the bulk of the delay and busy-waits only
// the final margin, so large calibrated delays (simulating a remote
// model server) do not burn a full core per in-flight call.
func spin(dur time.Duration) {
	deadline := time.Now().Add(dur) //shahinvet:allow walltime — busy-wait deadline for the calibrated delay
	if dur > time.Millisecond {
		time.Sleep(dur - spinSleepMargin)
	}
	for time.Now().Before(deadline) { //shahinvet:allow walltime — busy-wait deadline for the calibrated delay
	}
}

// Func adapts a plain function to the Classifier interface; handy in tests
// and for users wrapping external models. Classes reports NumClasses.
type Func struct {
	Classes int
	F       func(x []float64) int
}

// NumClasses implements Classifier.
func (f Func) NumClasses() int { return f.Classes }

// Predict implements Classifier.
func (f Func) Predict(x []float64) int { return f.F(x) }

package rf

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shahin/internal/datagen"
	"shahin/internal/dataset"
)

// xorData builds a dataset a single shallow tree cannot learn but a
// forest (or deeper tree) can: label = (x0 > 0) XOR (x1 > 0).
func xorData(n int, seed int64) *dataset.Dataset {
	s := &dataset.Schema{
		Attrs: []dataset.Attr{
			{Name: "x0", Kind: dataset.Numeric},
			{Name: "x1", Kind: dataset.Numeric},
		},
		Classes: []string{"neg", "pos"},
	}
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(s, n)
	for i := 0; i < n; i++ {
		x0, x1 := rng.NormFloat64(), rng.NormFloat64()
		label := 0
		if (x0 > 0) != (x1 > 0) {
			label = 1
		}
		d.AppendRow([]float64{x0, x1}, label)
	}
	return d
}

func TestTrainErrors(t *testing.T) {
	d := xorData(50, 1)
	unlabelled := dataset.New(d.Schema, 0)
	unlabelled.AppendRow([]float64{1, 2}, -1)
	unlabelled.Labels = nil
	if _, err := Train(unlabelled, Config{}); err == nil {
		t.Fatal("training without labels should fail")
	}
	empty := dataset.New(d.Schema, 0)
	empty.Labels = []int{}
	if _, err := Train(empty, Config{}); err == nil {
		t.Fatal("training on empty data should fail")
	}
}

func TestValidateInput(t *testing.T) {
	cols := [][]float64{{1, 2}, {3, 4}}
	if err := validateInput(cols, []int{0, 1}, 2); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	cases := map[string]func() error{
		"no cols":    func() error { return validateInput(nil, nil, 2) },
		"ragged":     func() error { return validateInput([][]float64{{1, 2}, {3}}, []int{0, 1}, 2) },
		"bad labels": func() error { return validateInput(cols, []int{0}, 2) },
		"one class":  func() error { return validateInput(cols, []int{0, 0}, 1) },
		"label oob":  func() error { return validateInput(cols, []int{0, 5}, 2) },
	}
	for name, fn := range cases {
		if fn() == nil {
			t.Errorf("%s should be rejected", name)
		}
	}
}

func TestForestLearnsXOR(t *testing.T) {
	train := xorData(2000, 2)
	test := xorData(500, 3)
	f, err := Train(train, Config{NumTrees: 50, MaxDepth: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := f.Accuracy(test); acc < 0.9 {
		t.Fatalf("XOR accuracy %.3f < 0.9", acc)
	}
}

func TestForestLearnsSyntheticDataset(t *testing.T) {
	cfg, err := datagen.Spec("recidivism")
	if err != nil {
		t.Fatal(err)
	}
	d, err := cfg.Generate(3000, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	trainD, testD := d.Split(1.0/3, rng)
	f, err := Train(trainD, Config{NumTrees: 60, MaxDepth: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	acc := f.Accuracy(testD)
	// The planted rule has 5% flip noise; a decent learner clears 0.75.
	if acc < 0.75 {
		t.Fatalf("synthetic accuracy %.3f < 0.75", acc)
	}
}

func TestTrainDeterministic(t *testing.T) {
	d := xorData(500, 8)
	a, err := Train(d, Config{NumTrees: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(d, Config{NumTrees: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestPredictPure(t *testing.T) {
	// All rows share one label: every prediction must return it without
	// growing any splits.
	s := &dataset.Schema{
		Attrs:   []dataset.Attr{{Name: "x", Kind: dataset.Numeric}},
		Classes: []string{"a", "b"},
	}
	d := dataset.New(s, 10)
	for i := 0; i < 10; i++ {
		d.AppendRow([]float64{float64(i)}, 1)
	}
	f, err := Train(d, Config{NumTrees: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{99}); got != 1 {
		t.Fatalf("pure forest predicted %d", got)
	}
	for _, tr := range f.Trees {
		if tr.Depth() != 0 {
			t.Fatalf("pure data grew a tree of depth %d", tr.Depth())
		}
	}
}

func TestMaxDepthRespected(t *testing.T) {
	d := xorData(1000, 11)
	f, err := Train(d, Config{NumTrees: 5, MaxDepth: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range f.Trees {
		if depth := tr.Depth(); depth > 3 {
			t.Fatalf("tree %d depth %d > 3", i, depth)
		}
	}
}

func TestProbSumsToOne(t *testing.T) {
	d := xorData(500, 13)
	f, err := Train(d, Config{NumTrees: 20, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 50; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		p := f.Prob(x)
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("Prob sums to %g", sum)
		}
		// Predict must agree with argmax Prob.
		best := 0
		for c := range p {
			if p[c] > p[best] {
				best = c
			}
		}
		if f.Predict(x) != best {
			t.Fatal("Predict disagrees with argmax Prob")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := xorData(500, 16)
	f, err := Train(d, Config{NumTrees: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 100; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		if f.Predict(x) != g.Predict(x) {
			t.Fatal("loaded forest disagrees with original")
		}
	}
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("Load(garbage) should fail")
	}
}

func TestCountingWrapper(t *testing.T) {
	d := xorData(200, 19)
	f, err := Train(d, Config{NumTrees: 5, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounting(f)
	if c.NumClasses() != 2 {
		t.Fatalf("NumClasses=%d", c.NumClasses())
	}
	x := []float64{0.5, -0.5}
	want := f.Predict(x)
	for i := 0; i < 7; i++ {
		if got := c.Predict(x); got != want {
			t.Fatal("Counting changed the prediction")
		}
	}
	if c.Invocations() != 7 {
		t.Fatalf("Invocations=%d want 7", c.Invocations())
	}
	c.Reset()
	if c.Invocations() != 0 {
		t.Fatal("Reset did not zero the counter")
	}
}

func TestDelayedWrapper(t *testing.T) {
	base := Func{Classes: 2, F: func([]float64) int { return 1 }}
	d := NewDelayed(base, 200*time.Microsecond)
	if d.NumClasses() != 2 {
		t.Fatalf("NumClasses=%d", d.NumClasses())
	}
	start := time.Now()
	const calls = 20
	for i := 0; i < calls; i++ {
		if d.Predict(nil) != 1 {
			t.Fatal("Delayed changed the prediction")
		}
	}
	elapsed := time.Since(start)
	if elapsed < calls*150*time.Microsecond {
		t.Fatalf("20 delayed calls took only %v", elapsed)
	}
	// Zero delay must add (almost) nothing.
	fast := NewDelayed(base, 0)
	start = time.Now()
	for i := 0; i < 1000; i++ {
		fast.Predict(nil)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("zero-delay wrapper is slow")
	}
}

func TestFuncAdapter(t *testing.T) {
	calls := 0
	f := Func{Classes: 3, F: func(x []float64) int { calls++; return int(x[0]) }}
	if f.NumClasses() != 3 {
		t.Fatal("NumClasses")
	}
	if f.Predict([]float64{2}) != 2 || calls != 1 {
		t.Fatal("Predict did not delegate")
	}
}

func BenchmarkForestPredict(b *testing.B) {
	d := xorData(2000, 21)
	f, err := Train(d, Config{NumTrees: 100, MaxDepth: 12, Seed: 22})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.3, -1.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(x)
	}
}

func BenchmarkForestTrain(b *testing.B) {
	d := xorData(2000, 23)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(d, Config{NumTrees: 20, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDelayedHybridSleep covers the long-delay path of spin: delays
// above one millisecond sleep the bulk and busy-wait only the margin,
// yet must still take at least the requested duration.
func TestDelayedHybridSleep(t *testing.T) {
	base := Func{Classes: 2, F: func([]float64) int { return 1 }}
	d := NewDelayed(base, 3*time.Millisecond)
	start := time.Now()
	const calls = 5
	for i := 0; i < calls; i++ {
		if d.Predict(nil) != 1 {
			t.Fatal("Delayed changed the prediction")
		}
	}
	elapsed := time.Since(start)
	if elapsed < calls*3*time.Millisecond {
		t.Fatalf("%d calls at 3ms took only %v (delay undershoots)", calls, elapsed)
	}
	// Generous upper bound: sleep overshoot is bounded, so the hybrid
	// must not balloon the delay either (the old pure busy-wait would
	// pass this too, but a broken sleep-too-long path would not).
	if elapsed > calls*30*time.Millisecond {
		t.Fatalf("%d calls at 3ms took %v", calls, elapsed)
	}
}

// TestCountingHookConcurrentSwap installs and clears the predict hook
// while other goroutines are mid-Predict; under -race this pins down
// the atomic hook swap the observability layer relies on.
func TestCountingHookConcurrentSwap(t *testing.T) {
	base := Func{Classes: 2, F: func([]float64) int { return 1 }}
	c := NewCounting(base)
	var observed atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			c.SetPredictHook(func(time.Duration) { observed.Add(1) })
			c.SetPredictHook(nil)
		}
		c.SetPredictHook(func(time.Duration) { observed.Add(1) })
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if c.Predict(nil) != 1 {
					t.Error("hook swap changed the prediction")
				}
			}
		}()
	}
	wg.Wait()
	<-done
	if c.Invocations() != 2000 {
		t.Fatalf("Invocations=%d want 2000", c.Invocations())
	}
	// With the final hook installed, one more call must observe it.
	before := observed.Load()
	c.Predict(nil)
	if observed.Load() != before+1 {
		t.Fatal("installed hook did not observe the call")
	}
}

package rf

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"shahin/internal/dataset"
)

// Config controls random forest training. The zero value is filled with
// reasonable defaults by Train.
type Config struct {
	NumTrees    int // default 100
	MaxDepth    int // default 12
	MinLeaf     int // default 2
	FeaturesTry int // features per split; default floor(sqrt(p))
	Seed        int64
}

func (c Config) fill(p int) Config {
	if c.NumTrees <= 0 {
		c.NumTrees = 100
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.FeaturesTry <= 0 {
		c.FeaturesTry = int(math.Sqrt(float64(p)))
		if c.FeaturesTry < 1 {
			c.FeaturesTry = 1
		}
	}
	return c
}

// Forest is a bagged ensemble of CART trees; it is the black-box
// classifier of the paper's experiments.
type Forest struct {
	Trees    []*Tree
	NClasses int
}

var _ Classifier = (*Forest)(nil)

// Train fits a random forest on a labelled dataset: one bootstrap sample
// per tree, Gini splits over a random feature subset per node. Trees are
// grown in parallel but the result is deterministic for a given seed.
func Train(d *dataset.Dataset, cfg Config) (*Forest, error) {
	if d.Labels == nil {
		return nil, fmt.Errorf("rf: training data has no labels")
	}
	nClasses := d.Schema.NumClasses()
	if err := validateInput(d.Cols, d.Labels, nClasses); err != nil {
		return nil, err
	}
	cfg = cfg.fill(d.NumAttrs())
	n := d.NumRows()

	f := &Forest{Trees: make([]*Tree, cfg.NumTrees), NClasses: nClasses}
	// Derive one seed per tree up front so parallel growth stays
	// deterministic.
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	seeds := make([]int64, cfg.NumTrees)
	for i := range seeds {
		seeds[i] = seedRng.Int63()
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.NumTrees {
		workers = cfg.NumTrees
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				rng := rand.New(rand.NewSource(seeds[t]))
				idx := make([]int, n)
				for i := range idx {
					idx[i] = rng.Intn(n) // bootstrap with replacement
				}
				f.Trees[t] = growTree(d.Cols, d.Labels, nClasses, idx, treeConfig{
					maxDepth:    cfg.MaxDepth,
					minLeaf:     cfg.MinLeaf,
					featuresTry: cfg.FeaturesTry,
				}, rng)
			}
		}()
	}
	for t := 0; t < cfg.NumTrees; t++ {
		next <- t
	}
	close(next)
	wg.Wait()
	return f, nil
}

// NumClasses implements Classifier.
func (f *Forest) NumClasses() int { return f.NClasses }

// Predict returns the majority vote over the trees.
func (f *Forest) Predict(x []float64) int {
	votes := make([]int, f.NClasses)
	for _, t := range f.Trees {
		votes[t.Predict(x)]++
	}
	best, bestN := 0, -1
	for c, v := range votes {
		if v > bestN {
			best, bestN = c, v
		}
	}
	return best
}

// Prob returns the per-class vote fractions. The slice is freshly
// allocated per call.
func (f *Forest) Prob(x []float64) []float64 {
	p := make([]float64, f.NClasses)
	for _, t := range f.Trees {
		p[t.Predict(x)]++
	}
	for c := range p {
		p[c] /= float64(len(f.Trees))
	}
	return p
}

// Accuracy returns the fraction of rows in d the forest classifies
// correctly.
func (f *Forest) Accuracy(d *dataset.Dataset) float64 {
	if d.NumRows() == 0 {
		return 0
	}
	correct := 0
	row := make([]float64, d.NumAttrs())
	for i := 0; i < d.NumRows(); i++ {
		row = d.Row(i, row)
		if f.Predict(row) == d.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.NumRows())
}

// Save serialises the forest with encoding/gob.
func (f *Forest) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(f)
}

// Load deserialises a forest written by Save.
func Load(r io.Reader) (*Forest, error) {
	var f Forest
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("rf: decoding forest: %w", err)
	}
	if len(f.Trees) == 0 || f.NClasses < 2 {
		return nil, fmt.Errorf("rf: decoded forest is empty or degenerate")
	}
	return &f, nil
}

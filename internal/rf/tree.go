// Package rf implements the black-box classifier substrate: CART decision
// trees with Gini impurity, bootstrap-bagged random forests with per-node
// feature subsampling, and the instrumentation wrappers (invocation
// counting, calibrated per-call delay) the benchmark harness uses to
// reproduce the paper's cost regime, where classifier invocation accounts
// for ~90 % of explanation time.
package rf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Classifier is the black-box prediction interface the explainers see: a
// tuple in, a class index out. Everything Shahin optimises is the number
// of Predict calls.
type Classifier interface {
	NumClasses() int
	Predict(x []float64) int
}

// treeNode is one node of a decision tree in flat-array form. Leaves have
// feature == -1 and carry the majority class.
type treeNode struct {
	Feature   int32 // -1 for leaves
	Class     int32 // majority class (leaves)
	Threshold float64
	Left      int32 // index of the <=-threshold child
	Right     int32 // index of the >-threshold child
}

// Tree is a single CART classification tree.
type Tree struct {
	Nodes    []treeNode
	NClasses int
}

// treeConfig bounds tree growth.
type treeConfig struct {
	maxDepth    int
	minLeaf     int // minimum samples in a leaf
	featuresTry int // features examined per split
}

// Predict returns the class for x.
func (t *Tree) Predict(x []float64) int {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return int(n.Class)
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Depth returns the maximum depth of the tree (a root-only tree has
// depth 0). Used by tests and diagnostics.
func (t *Tree) Depth() int {
	var walk func(i int32) int
	walk = func(i int32) int {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return 0
		}
		l, r := walk(n.Left), walk(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// treeBuilder carries the shared training state for one tree.
type treeBuilder struct {
	cols     [][]float64 // column-major training data
	labels   []int
	nClasses int
	cfg      treeConfig
	rng      *rand.Rand
	nodes    []treeNode
	// scratch reused across nodes
	sortBuf []int
}

// growTree builds one tree on the given sample indices.
func growTree(cols [][]float64, labels []int, nClasses int, idx []int, cfg treeConfig, rng *rand.Rand) *Tree {
	b := &treeBuilder{cols: cols, labels: labels, nClasses: nClasses, cfg: cfg, rng: rng}
	b.build(idx, 0)
	return &Tree{Nodes: b.nodes, NClasses: nClasses}
}

// build grows the subtree over idx and returns its root node index. It
// partitions idx in place.
func (b *treeBuilder) build(idx []int, depth int) int32 {
	counts := make([]int, b.nClasses)
	for _, i := range idx {
		counts[b.labels[i]]++
	}
	major, majorN := 0, -1
	for c, n := range counts {
		if n > majorN {
			major, majorN = c, n
		}
	}
	pure := majorN == len(idx)
	if pure || depth >= b.cfg.maxDepth || len(idx) < 2*b.cfg.minLeaf {
		return b.leaf(major)
	}

	feat, thr, ok := b.bestSplit(idx, counts)
	if !ok {
		return b.leaf(major)
	}
	// Partition in place around the threshold.
	lo, hi := 0, len(idx)
	for lo < hi {
		if b.cols[feat][idx[lo]] <= thr {
			lo++
		} else {
			hi--
			idx[lo], idx[hi] = idx[hi], idx[lo]
		}
	}
	if lo == 0 || lo == len(idx) {
		return b.leaf(major) // degenerate split; shouldn't happen, be safe
	}
	self := int32(len(b.nodes))
	b.nodes = append(b.nodes, treeNode{Feature: int32(feat), Threshold: thr})
	left := b.build(idx[:lo], depth+1)
	right := b.build(idx[lo:], depth+1)
	b.nodes[self].Left = left
	b.nodes[self].Right = right
	return self
}

func (b *treeBuilder) leaf(class int) int32 {
	i := int32(len(b.nodes))
	b.nodes = append(b.nodes, treeNode{Feature: -1, Class: int32(class)})
	return i
}

// bestSplit searches a random subset of features for the threshold with
// the lowest weighted Gini impurity. counts are the class counts of idx.
func (b *treeBuilder) bestSplit(idx []int, counts []int) (feat int, thr float64, ok bool) {
	n := len(idx)
	p := len(b.cols)
	tryN := b.cfg.featuresTry
	if tryN <= 0 || tryN > p {
		tryN = p
	}
	bestGini := math.Inf(1)
	// Reservoir-free feature subsample: shuffle a feature index list.
	feats := b.rng.Perm(p)[:tryN]

	if cap(b.sortBuf) < n {
		b.sortBuf = make([]int, n)
	}
	order := b.sortBuf[:n]
	leftCounts := make([]int, b.nClasses)

	for _, f := range feats {
		col := b.cols[f]
		copy(order, idx)
		sort.Slice(order, func(i, j int) bool { return col[order[i]] < col[order[j]] })
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		nl := 0
		for i := 0; i < n-1; i++ {
			leftCounts[b.labels[order[i]]]++
			nl++
			v, next := col[order[i]], col[order[i+1]]
			if v == next {
				continue // not a valid cut point
			}
			if nl < b.cfg.minLeaf || n-nl < b.cfg.minLeaf {
				continue
			}
			g := weightedGini(leftCounts, counts, nl, n)
			if g < bestGini {
				bestGini = g
				feat = f
				thr = v + (next-v)/2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// weightedGini computes the size-weighted Gini impurity of a split given
// left class counts, total class counts, and the left/total sizes.
func weightedGini(left, total []int, nl, n int) float64 {
	nr := n - nl
	var gl, gr float64 // sum of squared class fractions
	for c, lc := range left {
		rc := total[c] - lc
		if nl > 0 {
			fl := float64(lc) / float64(nl)
			gl += fl * fl
		}
		if nr > 0 {
			fr := float64(rc) / float64(nr)
			gr += fr * fr
		}
	}
	giniL := 1 - gl
	giniR := 1 - gr
	return (float64(nl)*giniL + float64(nr)*giniR) / float64(n)
}

// validateInput checks training inputs shared by trees and forests.
func validateInput(cols [][]float64, labels []int, nClasses int) error {
	if len(cols) == 0 {
		return fmt.Errorf("rf: no feature columns")
	}
	n := len(cols[0])
	if n == 0 {
		return fmt.Errorf("rf: no training rows")
	}
	for i, c := range cols {
		if len(c) != n {
			return fmt.Errorf("rf: column %d has %d rows want %d", i, len(c), n)
		}
	}
	if len(labels) != n {
		return fmt.Errorf("rf: %d labels for %d rows", len(labels), n)
	}
	if nClasses < 2 {
		return fmt.Errorf("rf: need at least 2 classes, got %d", nClasses)
	}
	for i, l := range labels {
		if l < 0 || l >= nClasses {
			return fmt.Errorf("rf: label %d of row %d outside [0,%d)", l, i, nClasses)
		}
	}
	return nil
}

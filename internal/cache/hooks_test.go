package cache

import "testing"

func TestHitRate(t *testing.T) {
	if got := (Stats{}).HitRate(); got != 0 {
		t.Fatalf("zero-lookup HitRate = %v, want 0", got)
	}
	if got := (Stats{Hits: 3, Misses: 1}).HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", got)
	}
	if got := (Stats{Misses: 5}).HitRate(); got != 0 {
		t.Fatalf("all-miss HitRate = %v, want 0", got)
	}
}

// TestHooksFire verifies every repository event reaches its callback and
// that the hook counts stay in lockstep with Stats.
func TestHooksFire(t *testing.T) {
	var hits, misses, evictions int
	r := NewRepo(3 * sampleBytes())
	r.SetHooks(Hooks{
		Hit:   func() { hits++ },
		Miss:  func() { misses++ },
		Evict: func() { evictions++ },
	})

	if _, ok := r.Get(key(0, 0)); ok {
		t.Fatal("unexpected hit")
	}
	r.Put(key(0, 0), mkSamples(2))
	if _, ok := r.Get(key(0, 0)); !ok {
		t.Fatal("expected hit")
	}
	r.Put(key(0, 1), mkSamples(2)) // over budget: evicts key(0,0)
	if _, ok := r.Get(key(0, 0)); ok {
		t.Fatal("evicted entry still resident")
	}

	if hits != 1 || misses != 2 || evictions != 1 {
		t.Fatalf("hooks saw hits=%d misses=%d evictions=%d, want 1/2/1", hits, misses, evictions)
	}
	st := r.Stats()
	if int(st.Hits) != hits || int(st.Misses) != misses || int(st.Evictions) != evictions {
		t.Fatalf("stats %+v disagree with hooks (%d/%d/%d)", st, hits, misses, evictions)
	}
}

// TestNoHooks makes sure the repo works with no hooks installed (the
// default) and with a partially filled Hooks struct.
func TestNoHooks(t *testing.T) {
	r := NewRepo(2 * sampleBytes())
	r.Put(key(0, 0), mkSamples(1))
	r.Get(key(0, 0))
	r.Get(key(0, 1))
	r.Put(key(0, 1), mkSamples(1))
	r.Put(key(0, 2), mkSamples(1)) // forces an eviction with a nil Evict hook

	var hits int
	r.SetHooks(Hooks{Hit: func() { hits++ }}) // Miss and Evict stay nil
	r.Get(key(0, 2))
	r.Get(key(9, 9))
	r.Put(key(0, 3), mkSamples(1))
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

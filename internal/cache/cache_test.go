package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shahin/internal/dataset"
	"shahin/internal/perturb"
)

func key(attr, bin int) dataset.ItemsetKey {
	return dataset.Itemset{dataset.MakeItem(attr, bin)}.Key()
}

// mkSamples builds n samples of a fixed size (2 attrs).
func mkSamples(n int) []perturb.Sample {
	out := make([]perturb.Sample, n)
	for i := range out {
		out[i] = perturb.Sample{
			Row:   []float64{float64(i), 0},
			Items: []dataset.Item{dataset.MakeItem(0, 0), dataset.MakeItem(1, 0)},
			Label: i % 2,
		}
	}
	return out
}

func sampleBytes() int64 {
	s := mkSamples(1)
	return s[0].Bytes()
}

func TestPutGet(t *testing.T) {
	r := NewRepo(0) // unbounded
	if _, ok := r.Get(key(0, 0)); ok {
		t.Fatal("empty repo returned an entry")
	}
	r.Put(key(0, 0), mkSamples(3))
	got, ok := r.Get(key(0, 0))
	if !ok || len(got) != 3 {
		t.Fatalf("Get=(%d,%v)", len(got), ok)
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("HitRate=%g", st.HitRate())
	}
}

func TestPutReplaces(t *testing.T) {
	r := NewRepo(0)
	r.Put(key(0, 0), mkSamples(5))
	r.Put(key(0, 0), mkSamples(2))
	got, _ := r.Get(key(0, 0))
	if len(got) != 2 {
		t.Fatalf("replacement kept %d samples", len(got))
	}
	if r.Len() != 1 {
		t.Fatalf("Len=%d", r.Len())
	}
	want := 2 * sampleBytes()
	if r.Stats().BytesUsed != want {
		t.Fatalf("BytesUsed=%d want %d", r.Stats().BytesUsed, want)
	}
}

func TestAppend(t *testing.T) {
	r := NewRepo(0)
	r.Append(key(0, 0), mkSamples(2))
	r.Append(key(0, 0), mkSamples(3))
	got, _ := r.Get(key(0, 0))
	if len(got) != 5 {
		t.Fatalf("Append total=%d want 5", len(got))
	}
	if r.Stats().BytesUsed != 5*sampleBytes() {
		t.Fatalf("BytesUsed=%d", r.Stats().BytesUsed)
	}
}

func TestLRUEviction(t *testing.T) {
	sb := sampleBytes()
	r := NewRepo(10 * sb) // room for 10 samples
	r.Put(key(0, 0), mkSamples(4))
	r.Put(key(0, 1), mkSamples(4))
	// Touch (0,0) so (0,1) becomes the LRU victim.
	if _, ok := r.Get(key(0, 0)); !ok {
		t.Fatal("missing entry")
	}
	r.Put(key(0, 2), mkSamples(4)) // 12 samples > budget: evict (0,1)
	if r.Contains(key(0, 1)) {
		t.Fatal("LRU entry survived")
	}
	if !r.Contains(key(0, 0)) || !r.Contains(key(0, 2)) {
		t.Fatal("wrong entry evicted")
	}
	if r.Stats().Evictions != 1 {
		t.Fatalf("Evictions=%d", r.Stats().Evictions)
	}
	if r.Stats().BytesUsed > 10*sb {
		t.Fatal("budget exceeded after eviction")
	}
}

func TestOversizeEntryRejected(t *testing.T) {
	sb := sampleBytes()
	r := NewRepo(2 * sb)
	if r.Put(key(0, 0), mkSamples(5)) {
		t.Fatal("oversize entry reported resident")
	}
	if r.Len() != 0 {
		t.Fatal("oversize entry stored")
	}
}

func TestAppendEvictsWhenOverBudget(t *testing.T) {
	sb := sampleBytes()
	r := NewRepo(4 * sb)
	r.Put(key(0, 0), mkSamples(2))
	r.Put(key(0, 1), mkSamples(2))
	// Appending to (0,1) pushes over budget; (0,0) is LRU and must go.
	resident := r.Append(key(0, 1), mkSamples(2))
	if !resident {
		t.Fatal("appended entry not resident")
	}
	if r.Contains(key(0, 0)) {
		t.Fatal("LRU entry survived append eviction")
	}
}

func TestDelete(t *testing.T) {
	r := NewRepo(0)
	r.Put(key(1, 1), mkSamples(2))
	r.Delete(key(1, 1))
	if r.Contains(key(1, 1)) || r.Len() != 0 || r.Stats().BytesUsed != 0 {
		t.Fatal("Delete left state behind")
	}
	r.Delete(key(9, 9)) // deleting a missing key is a no-op
}

func TestKeysMRUOrder(t *testing.T) {
	r := NewRepo(0)
	r.Put(key(0, 0), mkSamples(1))
	r.Put(key(0, 1), mkSamples(1))
	r.Put(key(0, 2), mkSamples(1))
	r.Get(key(0, 0)) // now MRU
	keys := r.Keys()
	if len(keys) != 3 {
		t.Fatalf("Keys len=%d", len(keys))
	}
	if keys[0] != key(0, 0) {
		t.Fatalf("MRU key=%v", keys[0].Itemset())
	}
	if keys[2] != key(0, 1) {
		t.Fatalf("LRU key=%v", keys[2].Itemset())
	}
}

func TestStatsZeroTraffic(t *testing.T) {
	r := NewRepo(100)
	if r.Stats().HitRate() != 0 {
		t.Fatal("HitRate without traffic should be 0")
	}
}

func TestInvariants(t *testing.T) {
	iv := NewInvariants(2)
	rr, known := iv.Lookup(key(0, 0))
	if known {
		t.Fatal("fresh rule reported known")
	}
	if rr.Precision(0) != 0 || rr.Precision(1) != 0 {
		t.Fatal("untried rule has precision")
	}
	rr.AddTrials([]int{1, 9})
	rr.Coverage = 0.4
	rr.HasCoverage = true

	again, known := iv.Lookup(key(0, 0))
	if !known {
		t.Fatal("memoised rule reported unknown")
	}
	if again.Precision(1) != 0.9 || again.Precision(0) != 0.1 {
		t.Fatalf("per-class precision wrong: %+v", again)
	}
	if again.Pulls != 10 || again.Coverage != 0.4 {
		t.Fatalf("memoised state lost: %+v", again)
	}
	if iv.Len() != 1 {
		t.Fatalf("Len=%d", iv.Len())
	}
	if iv.HitRate() != 0.5 {
		t.Fatalf("HitRate=%g", iv.HitRate())
	}
}

func TestInvariantsAccumulate(t *testing.T) {
	iv := NewInvariants(3)
	rr, _ := iv.Lookup(key(1, 0))
	rr.AddTrials([]int{2, 3, 5})
	rr.AddTrials([]int{0, 1, 0})
	if rr.Pulls != 11 {
		t.Fatalf("Pulls=%d want 11", rr.Pulls)
	}
	if rr.Precision(1) != 4.0/11 {
		t.Fatalf("Precision(1)=%g", rr.Precision(1))
	}
}

func TestInvariantsZeroTraffic(t *testing.T) {
	if NewInvariants(2).HitRate() != 0 {
		t.Fatal("HitRate without traffic should be 0")
	}
}

// Model-based property test: a random sequence of Put/Append/Get/Delete
// against the Repo must agree with a naive reference implementation, and
// byte accounting must track exactly.
func TestQuickRepoMatchesReference(t *testing.T) {
	type refEntry struct {
		samples []perturb.Sample
	}
	run := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRepo(0) // unbounded: reference has no eviction
		ref := map[dataset.ItemsetKey]*refEntry{}
		keys := []dataset.ItemsetKey{key(0, 0), key(0, 1), key(1, 0), key(2, 3)}
		for step := 0; step < 200; step++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(4) {
			case 0: // Put
				n := rng.Intn(4)
				s := mkSamples(n)
				r.Put(k, s)
				ref[k] = &refEntry{samples: s}
				if n == 0 {
					// empty entries are legal
					ref[k] = &refEntry{}
				}
			case 1: // Append
				n := 1 + rng.Intn(3)
				s := mkSamples(n)
				r.Append(k, s)
				if e, ok := ref[k]; ok {
					e.samples = append(e.samples, s...)
				} else {
					ref[k] = &refEntry{samples: s}
				}
			case 2: // Get
				got, ok := r.Get(k)
				e, refOK := ref[k]
				if ok != refOK {
					return false
				}
				if ok && len(got) != len(e.samples) {
					return false
				}
			case 3: // Delete
				r.Delete(k)
				delete(ref, k)
			}
			if r.Len() != len(ref) {
				return false
			}
			var wantBytes int64
			for _, e := range ref {
				for i := range e.samples {
					wantBytes += e.samples[i].Bytes()
				}
			}
			if r.Stats().BytesUsed != wantBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: under any budget and op sequence, BytesUsed never exceeds the
// budget after an operation completes.
func TestQuickRepoRespectsBudget(t *testing.T) {
	sb := sampleBytes()
	run := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := sb * int64(1+rng.Intn(10))
		r := NewRepo(budget)
		for step := 0; step < 150; step++ {
			k := key(rng.Intn(3), rng.Intn(3))
			if rng.Intn(2) == 0 {
				r.Put(k, mkSamples(1+rng.Intn(5)))
			} else {
				r.Append(k, mkSamples(1+rng.Intn(3)))
			}
			if r.Stats().BytesUsed > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Package cache implements Shahin's perturbation repository: labelled
// perturbations keyed by the frozen itemset they were generated for, under
// a byte budget with least-recently-used eviction (paper §3.5). It also
// provides the invariant-result cache used by the Anchor adaptation to
// memoise rule precision and coverage (paper §3.4, "Caching Other
// Invariant Results").
package cache

import (
	"container/list"
	"fmt"

	"shahin/internal/dataset"
	"shahin/internal/perturb"
)

// Stats reports the repository's activity counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	BytesUsed int64 `json:"bytes_used"`
	Budget    int64 `json:"budget"`
}

// HitRate returns hits / (hits + misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Hooks observes repository events as they happen (the observability
// recorder wires live counters in this way). Any field may be nil; the
// callbacks themselves must be cheap — they run inline with lookups and
// evictions.
type Hooks struct {
	Hit   func()
	Miss  func()
	Evict func()
}

// Repo is a byte-budgeted, LRU-evicting store of labelled perturbations
// keyed by itemset. It is not safe for concurrent use; Shahin runs
// single-core by design (paper §4.1 disables multiprocessing to isolate
// algorithmic gains).
type Repo struct {
	budget    int64
	used      int64
	entries   map[dataset.ItemsetKey]*entry
	lru       *list.List // front = most recently used; values are *entry
	hits      int64
	misses    int64
	evictions int64
	hooks     Hooks
}

// SetHooks installs event callbacks; install before use.
func (r *Repo) SetHooks(h Hooks) { r.hooks = h }

type entry struct {
	key     dataset.ItemsetKey
	samples []perturb.Sample
	bytes   int64
	elem    *list.Element
}

// NewRepo creates a repository with the given byte budget. A non-positive
// budget means unbounded.
func NewRepo(budgetBytes int64) *Repo {
	return &Repo{
		budget:  budgetBytes,
		entries: make(map[dataset.ItemsetKey]*entry),
		lru:     list.New(),
	}
}

// Put stores (replacing any previous entry) the samples for an itemset and
// evicts least-recently-used entries if the budget is exceeded. It reports
// whether the entry is resident after eviction (an entry larger than the
// whole budget is rejected).
func (r *Repo) Put(key dataset.ItemsetKey, samples []perturb.Sample) bool {
	if old, ok := r.entries[key]; ok {
		r.remove(old, false)
	}
	var bytes int64
	for i := range samples {
		bytes += samples[i].Bytes()
	}
	if r.budget > 0 && bytes > r.budget {
		return false
	}
	e := &entry{key: key, samples: samples, bytes: bytes}
	e.elem = r.lru.PushFront(e)
	r.entries[key] = e
	r.used += bytes
	r.evictOverBudget()
	_, resident := r.entries[key]
	return resident
}

// Append adds samples to an existing entry (creating it if absent),
// then enforces the budget. It reports residency like Put.
func (r *Repo) Append(key dataset.ItemsetKey, samples []perturb.Sample) bool {
	e, ok := r.entries[key]
	if !ok {
		return r.Put(key, samples)
	}
	var bytes int64
	for i := range samples {
		bytes += samples[i].Bytes()
	}
	e.samples = append(e.samples, samples...)
	e.bytes += bytes
	r.used += bytes
	r.lru.MoveToFront(e.elem)
	r.evictOverBudget()
	_, resident := r.entries[key]
	return resident
}

// Get returns the samples stored for the itemset and marks the entry as
// recently used. The second result reports presence; hit/miss counters are
// updated. Callers must not modify the returned slice.
func (r *Repo) Get(key dataset.ItemsetKey) ([]perturb.Sample, bool) {
	e, ok := r.entries[key]
	if !ok {
		r.misses++
		if r.hooks.Miss != nil {
			r.hooks.Miss()
		}
		return nil, false
	}
	r.hits++
	if r.hooks.Hit != nil {
		r.hooks.Hit()
	}
	r.lru.MoveToFront(e.elem)
	return e.samples, true
}

// Contains reports presence without touching recency or counters.
func (r *Repo) Contains(key dataset.ItemsetKey) bool {
	_, ok := r.entries[key]
	return ok
}

// Delete removes an entry if present.
func (r *Repo) Delete(key dataset.ItemsetKey) {
	if e, ok := r.entries[key]; ok {
		r.remove(e, false)
	}
}

// Keys returns the resident itemset keys in most-recently-used order.
func (r *Repo) Keys() []dataset.ItemsetKey {
	out := make([]dataset.ItemsetKey, 0, len(r.entries))
	for el := r.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// Len returns the number of resident entries.
func (r *Repo) Len() int { return len(r.entries) }

// Stats returns a snapshot of the activity counters.
func (r *Repo) Stats() Stats {
	return Stats{
		Hits:      r.hits,
		Misses:    r.misses,
		Evictions: r.evictions,
		Entries:   len(r.entries),
		BytesUsed: r.used,
		Budget:    r.budget,
	}
}

// evictOverBudget drops LRU entries until the budget holds.
func (r *Repo) evictOverBudget() {
	if r.budget <= 0 {
		return
	}
	for r.used > r.budget {
		back := r.lru.Back()
		if back == nil {
			panic(fmt.Sprintf("cache: used=%d over budget=%d with empty LRU", r.used, r.budget))
		}
		r.remove(back.Value.(*entry), true)
	}
}

func (r *Repo) remove(e *entry, evicted bool) {
	r.lru.Remove(e.elem)
	delete(r.entries, e.key)
	r.used -= e.bytes
	if evicted {
		r.evictions++
		if r.hooks.Evict != nil {
			r.hooks.Evict()
		}
	}
}

// Snapshot is an immutable view of a repository's contents: a plain map
// safe for any number of concurrent readers. Shahin's parallel batch mode
// freezes the pool after construction and hands each worker the snapshot,
// avoiding locks on the LRU bookkeeping.
type Snapshot map[dataset.ItemsetKey][]perturb.Sample

// Snapshot captures the current contents. Sample slices are shared (they
// are treated as immutable by all consumers), so the copy is shallow.
func (r *Repo) Snapshot() Snapshot {
	out := make(Snapshot, len(r.entries))
	for key, e := range r.entries {
		out[key] = e.samples
	}
	return out
}

// Get implements the pool's sample source without recency bookkeeping.
func (s Snapshot) Get(key dataset.ItemsetKey) ([]perturb.Sample, bool) {
	samples, ok := s[key]
	return samples, ok
}

// RuleResult is a memoised invariant computation for one candidate rule:
// its coverage (fraction of data satisfying the rule's predicates) and the
// accumulated precision trials. Trials record the predicted class of each
// rule-consistent perturbation, so the same trials answer precision
// queries for any target class — this tuple-independence is what makes
// the reuse exact (paper §3.6).
type RuleResult struct {
	Pulls       int   // rule-consistent perturbations labelled so far
	ClassCounts []int // predicted-class histogram over those perturbations
	Coverage    float64
	HasCoverage bool
}

// AddTrials folds n new trials with the given predicted-class histogram
// into the result. hist must have len == len(ClassCounts).
func (rr *RuleResult) AddTrials(hist []int) {
	for c, n := range hist {
		rr.ClassCounts[c] += n
		rr.Pulls += n
	}
}

// Precision returns the empirical precision toward a target class
// (0 when untried).
func (rr *RuleResult) Precision(class int) float64 {
	if rr.Pulls == 0 {
		return 0
	}
	return float64(rr.ClassCounts[class]) / float64(rr.Pulls)
}

// Invariants memoises per-rule invariant results keyed by the rule's
// predicate itemset.
type Invariants struct {
	m        map[dataset.ItemsetKey]*RuleResult
	nClasses int
	hits     int64
	misses   int64
}

// NewInvariants creates an empty invariant cache for a classifier with
// nClasses classes.
func NewInvariants(nClasses int) *Invariants {
	return &Invariants{m: make(map[dataset.ItemsetKey]*RuleResult), nClasses: nClasses}
}

// Lookup returns the (mutable) result for a rule, creating it on first
// use. The second result reports whether the rule was already known.
func (iv *Invariants) Lookup(key dataset.ItemsetKey) (*RuleResult, bool) {
	if rr, ok := iv.m[key]; ok {
		iv.hits++
		return rr, true
	}
	iv.misses++
	rr := &RuleResult{ClassCounts: make([]int, iv.nClasses)}
	iv.m[key] = rr
	return rr, false
}

// Len returns the number of memoised rules.
func (iv *Invariants) Len() int { return len(iv.m) }

// HitRate returns the fraction of lookups that found an existing entry.
func (iv *Invariants) HitRate() float64 {
	total := iv.hits + iv.misses
	if total == 0 {
		return 0
	}
	return float64(iv.hits) / float64(total)
}

package perturb

import (
	"math"
	"math/rand"
	"testing"

	"shahin/internal/datagen"
	"shahin/internal/dataset"
)

// env builds a small mixed dataset with stats and a generator.
func env(t *testing.T, seed int64) (*dataset.Dataset, *dataset.Stats, *Generator) {
	t.Helper()
	cfg := &datagen.Config{
		Name: "t",
		Cat:  []datagen.CatSpec{{Card: 4, Skew: 1}, {Card: 3, Skew: 0.5}},
		Num:  []datagen.NumSpec{{Mean: 5, Std: 2}},
	}
	d, err := cfg.Generate(2000, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, st, NewGenerator(st, rand.New(rand.NewSource(seed+1)))
}

func TestForItemsetFreezesBins(t *testing.T) {
	_, st, g := env(t, 1)
	frozen := dataset.Itemset{dataset.MakeItem(0, 2), dataset.MakeItem(2, 1)}
	for trial := 0; trial < 200; trial++ {
		s := g.ForItemset(frozen)
		if len(s.Row) != 3 || len(s.Items) != 3 {
			t.Fatalf("sample shape row=%d items=%d", len(s.Row), len(s.Items))
		}
		if s.Label != -1 {
			t.Fatal("fresh sample has a label")
		}
		if st.Bin(0, s.Row[0]) != 2 {
			t.Fatalf("attr 0 bin=%d want 2", st.Bin(0, s.Row[0]))
		}
		if st.Bin(2, s.Row[2]) != 1 {
			t.Fatalf("attr 2 bin=%d want 1", st.Bin(2, s.Row[2]))
		}
		if !MatchesBins(frozen, s.Items) {
			t.Fatal("MatchesBins rejects its own frozen sample")
		}
	}
}

func TestForItemsetFillsFromDistribution(t *testing.T) {
	_, st, g := env(t, 2)
	frozen := dataset.Itemset{dataset.MakeItem(0, 0)}
	const n = 30000
	counts := make([]int, st.NumBins(1))
	for i := 0; i < n; i++ {
		s := g.ForItemset(frozen)
		counts[int(s.Row[1])]++
	}
	for b := range counts {
		got := float64(counts[b]) / n
		if math.Abs(got-st.Freq[1][b]) > 0.02 {
			t.Errorf("attr 1 bin %d sampled freq %.3f want %.3f", b, got, st.Freq[1][b])
		}
	}
}

func TestForItemsetEmptyFreeze(t *testing.T) {
	_, st, g := env(t, 3)
	s := g.ForItemset(nil)
	if len(s.Row) != st.Schema.NumAttrs() {
		t.Fatal("unfrozen sample has wrong arity")
	}
}

func TestForTupleFreezesExactValues(t *testing.T) {
	d, _, g := env(t, 4)
	tup := d.Row(0, nil)
	freeze := []bool{true, false, true}
	for trial := 0; trial < 100; trial++ {
		s := g.ForTuple(tup, freeze)
		if s.Row[0] != tup[0] || s.Row[2] != tup[2] {
			t.Fatal("frozen attributes changed")
		}
	}
	// The unfrozen attribute must actually vary.
	varied := false
	first := g.ForTuple(tup, freeze).Row[1]
	for trial := 0; trial < 50; trial++ {
		if g.ForTuple(tup, freeze).Row[1] != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("unfrozen attribute never varied")
	}
}

func TestBinaryEncode(t *testing.T) {
	_, st, g := env(t, 5)
	tup := []float64{2, 5.0, 1}
	tItems := st.ItemizeRow(tup, nil)
	s := g.ForTuple(tup, []bool{true, true, true})
	z := BinaryEncode(tItems, s.Items, nil)
	for a, v := range z {
		if v != 1 {
			t.Fatalf("fully frozen sample has z[%d]=%g", a, v)
		}
	}
	// Perturb everything: encoding entries must be exactly the bin
	// agreement indicator.
	for trial := 0; trial < 100; trial++ {
		s := g.ForItemset(nil)
		z = BinaryEncode(tItems, s.Items, z)
		for a := range z {
			want := 0.0
			if tItems[a] == s.Items[a] {
				want = 1
			}
			if z[a] != want {
				t.Fatalf("z[%d]=%g want %g", a, z[a], want)
			}
		}
	}
}

func TestBinaryEncodeReusesBuffer(t *testing.T) {
	a := []dataset.Item{dataset.MakeItem(0, 0)}
	b := []dataset.Item{dataset.MakeItem(0, 0)}
	buf := make([]float64, 4)
	out := BinaryEncode(a, b, buf)
	if &out[0] != &buf[0] {
		t.Fatal("BinaryEncode did not reuse buffer")
	}
}

func TestMatchesBins(t *testing.T) {
	items := []dataset.Item{dataset.MakeItem(0, 1), dataset.MakeItem(1, 2)}
	if !MatchesBins(dataset.Itemset{dataset.MakeItem(0, 1)}, items) {
		t.Fatal("matching itemset rejected")
	}
	if MatchesBins(dataset.Itemset{dataset.MakeItem(0, 2)}, items) {
		t.Fatal("mismatching itemset accepted")
	}
	if !MatchesBins(nil, items) {
		t.Fatal("empty itemset must match everything")
	}
}

func TestSampleBytes(t *testing.T) {
	s := Sample{Row: make([]float64, 10), Items: make([]dataset.Item, 10)}
	want := int64(10*8 + 10*4 + 48)
	if got := s.Bytes(); got != want {
		t.Fatalf("Bytes=%d want %d", got, want)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	_, st, _ := env(t, 6)
	g1 := NewGenerator(st, rand.New(rand.NewSource(99)))
	g2 := NewGenerator(st, rand.New(rand.NewSource(99)))
	for trial := 0; trial < 50; trial++ {
		a := g1.ForItemset(nil)
		b := g2.ForItemset(nil)
		for i := range a.Row {
			if a.Row[i] != b.Row[i] {
				t.Fatal("same-seed generators diverge")
			}
		}
	}
}

func BenchmarkForItemset(b *testing.B) {
	cfg, err := datagen.Spec("census")
	if err != nil {
		b.Fatal(err)
	}
	d, err := cfg.Generate(5000, 7)
	if err != nil {
		b.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		b.Fatal(err)
	}
	g := NewGenerator(st, rand.New(rand.NewSource(8)))
	frozen := dataset.Itemset{dataset.MakeItem(0, 0), dataset.MakeItem(5, 1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSample = g.ForItemset(frozen)
	}
}

// Package-level sinks keep the compiler from eliding benchmark bodies.
var (
	benchSample Sample
	benchVec    []float64
	benchBool   bool
)

func benchEnv(b *testing.B) (*dataset.Dataset, *dataset.Stats, *Generator) {
	b.Helper()
	cfg, err := datagen.Spec("census")
	if err != nil {
		b.Fatal(err)
	}
	d, err := cfg.Generate(5000, 7)
	if err != nil {
		b.Fatal(err)
	}
	st, err := dataset.Compute(d)
	if err != nil {
		b.Fatal(err)
	}
	return d, st, NewGenerator(st, rand.New(rand.NewSource(8)))
}

func BenchmarkForTuple(b *testing.B) {
	d, _, g := benchEnv(b)
	tup := d.Rows(0, 1)[0]
	freeze := make([]bool, len(tup))
	freeze[0], freeze[len(tup)/2] = true, true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSample = g.ForTuple(tup, freeze)
	}
}

func BenchmarkBinaryEncode(b *testing.B) {
	d, st, g := benchEnv(b)
	tItems := st.ItemizeRow(d.Rows(0, 1)[0], nil)
	s := g.ForItemset(nil)
	out := make([]float64, len(tItems))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchVec = BinaryEncode(tItems, s.Items, out[:0])
	}
}

func BenchmarkMatchesBins(b *testing.B) {
	d, st, g := benchEnv(b)
	tItems := st.ItemizeRow(d.Rows(0, 1)[0], nil)
	frozen := dataset.Itemset{tItems[0], tItems[len(tItems)/2]}
	s := g.ForItemset(frozen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchBool = MatchesBins(frozen, s.Items)
	}
}

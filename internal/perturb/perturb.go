// Package perturb implements the shared perturbation template every
// explainer in this repository uses (paper §3, "Key Idea"): freeze a
// subset of a tuple's attributes and fill the remaining attributes
// independently from the training frequency distribution.
//
// Shahin's reuse rests on one observation about this template: the filled
// attributes are drawn from a distribution that does not depend on the
// tuple being explained, and the frozen attributes only matter at the
// granularity of their discretised bin (LIME and Anchor reason about
// perturbations through the binary "same bin as the instance" encoding).
// A perturbation frozen on itemset f is therefore exchangeable between
// any two tuples that contain f.
package perturb

import (
	"math/rand"

	"shahin/internal/dataset"
)

// Sample is one perturbation: the raw row, its discretised item encoding,
// and (once the classifier has been invoked) its predicted label.
type Sample struct {
	Row   []float64
	Items []dataset.Item
	Label int // classifier prediction; -1 while unlabelled
}

// Bytes estimates the in-memory footprint of the sample, used by the
// byte-budgeted perturbation repository.
func (s *Sample) Bytes() int64 {
	return int64(len(s.Row))*8 + int64(len(s.Items))*4 + 48
}

// Generator draws perturbations from a fixed training distribution.
// It is not safe for concurrent use; create one per goroutine with an
// independent rand.Rand.
type Generator struct {
	stats *dataset.Stats
	rng   *rand.Rand
}

// NewGenerator builds a generator over the given training statistics.
func NewGenerator(st *dataset.Stats, rng *rand.Rand) *Generator {
	return &Generator{stats: st, rng: rng}
}

// Stats returns the training statistics the generator samples from.
func (g *Generator) Stats() *dataset.Stats { return g.stats }

// ForItemset generates one perturbation with the itemset frozen: every
// item's attribute receives a value inside the item's bin, and all other
// attributes are filled from the training distribution. This is the pooled
// perturbation of Algorithms 1–3.
//
//shahin:hotpath
func (g *Generator) ForItemset(frozen dataset.Itemset) Sample {
	n := g.stats.Schema.NumAttrs()
	row := make([]float64, n)
	fi := 0
	for a := 0; a < n; a++ {
		if fi < len(frozen) && frozen[fi].Attr() == a {
			row[a] = g.stats.ValueInBin(a, frozen[fi].Bin(), g.rng)
			fi++
			continue
		}
		row[a] = g.stats.SampleValue(a, g.rng)
	}
	return Sample{
		Row:   row,
		Items: g.stats.ItemizeRow(row, nil),
		Label: -1,
	}
}

// ForTuple generates one perturbation of tuple t with the attributes in
// freeze kept at t's exact values and the rest filled from the training
// distribution. freeze must have one flag per attribute. This is the
// classic per-tuple perturbation of LIME / Anchor / KernelSHAP.
//
//shahin:hotpath
func (g *Generator) ForTuple(t []float64, freeze []bool) Sample {
	row := make([]float64, len(t))
	for a := range t {
		if freeze[a] {
			row[a] = t[a]
		} else {
			row[a] = g.stats.SampleValue(a, g.rng)
		}
	}
	return Sample{
		Row:   row,
		Items: g.stats.ItemizeRow(row, nil),
		Label: -1,
	}
}

// BinaryEncode computes the interpretable representation of a sample
// relative to the tuple being explained: out[a] = 1 when the sample's
// attribute a falls in the same bin as the tuple's (same category, or same
// quartile bin for numerics), else 0. Both item slices must be canonical
// per-attribute encodings as produced by Stats.ItemizeRow.
//
//shahin:hotpath
func BinaryEncode(tupleItems, sampleItems []dataset.Item, out []float64) []float64 {
	n := len(tupleItems)
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	for a := 0; a < n; a++ {
		if tupleItems[a] == sampleItems[a] {
			out[a] = 1
		} else {
			out[a] = 0
		}
	}
	return out
}

// MatchesBins reports whether the sample agrees with the tuple's bins on
// every attribute of the itemset — the condition under which a pooled
// perturbation is reusable for the tuple.
//
//shahin:hotpath
func MatchesBins(itemset dataset.Itemset, sampleItems []dataset.Item) bool {
	return itemset.ContainsAll(sampleItems)
}

package prof

import (
	"errors"
	"fmt"
)

// Protobuf wire types (the subset pprof profiles use).
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// errTruncated reports input that ends mid-value.
var errTruncated = errors.New("prof: truncated input")

// wireReader is a cursor over protobuf wire-format bytes: varints,
// tags, length-delimited fields, and skipping — everything a pprof
// profile needs, with no generated code.
type wireReader struct {
	buf []byte
	pos int
}

// eof reports whether the cursor consumed the whole buffer.
func (r *wireReader) eof() bool { return r.pos >= len(r.buf) }

// varint decodes one base-128 varint (at most 10 bytes for a 64-bit
// value).
func (r *wireReader) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.pos >= len(r.buf) {
			return 0, errTruncated
		}
		b := r.buf[r.pos]
		r.pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, errors.New("prof: varint overflows 64 bits")
}

// tag decodes one field tag into its number and wire type.
func (r *wireReader) tag() (num int, typ int, err error) {
	v, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	num = int(v >> 3)
	typ = int(v & 7)
	if num == 0 {
		return 0, 0, errors.New("prof: field number 0")
	}
	return num, typ, nil
}

// bytes decodes one length-delimited field and returns its payload.
func (r *wireReader) bytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)-r.pos) {
		return nil, errTruncated
	}
	out := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

// skip advances past one field of the given wire type.
func (r *wireReader) skip(typ int) error {
	switch typ {
	case wireVarint:
		_, err := r.varint()
		return err
	case wireFixed64:
		if len(r.buf)-r.pos < 8 {
			return errTruncated
		}
		r.pos += 8
		return nil
	case wireBytes:
		_, err := r.bytes()
		return err
	case wireFixed32:
		if len(r.buf)-r.pos < 4 {
			return errTruncated
		}
		r.pos += 4
		return nil
	default:
		return fmt.Errorf("prof: unsupported wire type %d", typ)
	}
}

// uint64s appends one repeated-uint64 field occurrence to dst,
// handling both the packed (length-delimited) and unpacked (one varint
// per occurrence) encodings — encoders may emit either.
func (r *wireReader) uint64s(typ int, dst []uint64) ([]uint64, error) {
	switch typ {
	case wireVarint:
		v, err := r.varint()
		if err != nil {
			return dst, err
		}
		return append(dst, v), nil
	case wireBytes:
		payload, err := r.bytes()
		if err != nil {
			return dst, err
		}
		sub := wireReader{buf: payload}
		for !sub.eof() {
			v, err := sub.varint()
			if err != nil {
				return dst, err
			}
			dst = append(dst, v)
		}
		return dst, nil
	default:
		return dst, fmt.Errorf("prof: repeated uint64 with wire type %d", typ)
	}
}

// int64s is uint64s for repeated int64 fields (pprof encodes them as
// plain two's-complement varints, not zigzag).
func (r *wireReader) int64s(typ int, dst []int64) ([]int64, error) {
	tmp, err := r.uint64s(typ, nil)
	if err != nil {
		return dst, err
	}
	for _, v := range tmp {
		dst = append(dst, int64(v))
	}
	return dst, nil
}

package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"testing"
)

// profTestSink keeps the heap-profile test's allocations live so the
// profiler must record them.
var profTestSink [64][]byte

// gunzip decompresses a fixture so tests can feed Parse the raw
// protobuf body directly.
func gunzip(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer zr.Close() //nolint:errcheck // read-only close in a test helper
	return io.ReadAll(zr)
}

// TestParseGolden decodes the checked-in fixture — a hand-encoded
// profile mixing packed and unpacked repeated fields, with one inlined
// location — and asserts the fully decoded model.
func TestParseGolden(t *testing.T) {
	data, err := os.ReadFile("testdata/small.pb.gz")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}

	wantTypes := []ValueType{{"samples", "count"}, {"cpu", "nanoseconds"}}
	if !reflect.DeepEqual(p.SampleTypes, wantTypes) {
		t.Errorf("SampleTypes = %v, want %v", p.SampleTypes, wantTypes)
	}
	if len(p.Samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(p.Samples))
	}
	// The second sample uses the unpacked encoding; both must decode
	// identically.
	if want := (Sample{LocationIDs: []uint64{2, 3}, Values: []int64{1, 100}}); !reflect.DeepEqual(p.Samples[1], want) {
		t.Errorf("Samples[1] = %+v, want %+v", p.Samples[1], want)
	}
	if p.TimeNanos != 111 || p.DurationNanos != 999 || p.Period != 10 {
		t.Errorf("metadata = (%d, %d, %d), want (111, 999, 10)", p.TimeNanos, p.DurationNanos, p.Period)
	}
	if p.PeriodType != (ValueType{"cpu", "nanoseconds"}) {
		t.Errorf("PeriodType = %v", p.PeriodType)
	}
	if got := p.Functions[2]; got.Name != "main.mid" || got.File != "mid.go" {
		t.Errorf("Functions[2] = %+v", got)
	}
	if got := len(p.Locations[2].Lines); got != 2 {
		t.Errorf("inlined location has %d lines, want 2", got)
	}

	if got := p.ValueIndex("cpu"); got != 1 {
		t.Errorf("ValueIndex(cpu) = %d, want 1", got)
	}
	if got := p.ValueIndex("absent"); got != -1 {
		t.Errorf("ValueIndex(absent) = %d, want -1", got)
	}

	// Flat goes to the innermost frame of the leaf location (the
	// inlined main.mid of location 2, not its caller main.cold); cum
	// counts every distinct function once per sample.
	wantTop := []HotFunc{
		{Name: "main.cold", File: "main.go", Flat: 300, Cum: 600},
		{Name: "main.hot", File: "main.go", Flat: 200, Cum: 200},
		{Name: "main.mid", File: "mid.go", Flat: 100, Cum: 300},
	}
	if got := p.Top(1, 10); !reflect.DeepEqual(got, wantTop) {
		t.Errorf("Top(1, 10) = %+v, want %+v", got, wantTop)
	}
	// Truncation to n and the other value dimension.
	wantTop0 := []HotFunc{
		{Name: "main.cold", File: "main.go", Flat: 3, Cum: 6},
		{Name: "main.hot", File: "main.go", Flat: 2, Cum: 2},
	}
	if got := p.Top(0, 2); !reflect.DeepEqual(got, wantTop0) {
		t.Errorf("Top(0, 2) = %+v, want %+v", got, wantTop0)
	}
	if got := p.Top(-1, 10); got != nil {
		t.Errorf("Top(-1, 10) = %v, want nil", got)
	}
	if got := p.Top(1, 0); got != nil {
		t.Errorf("Top(1, 0) = %v, want nil", got)
	}
}

// TestParseRaw covers the ungzipped path: the gunzipped fixture body
// must decode to the same profile.
func TestParseRaw(t *testing.T) {
	data, err := os.ReadFile("testdata/small.pb.gz")
	if err != nil {
		t.Fatal(err)
	}
	gz, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	raw := mustGunzip(t, data)
	p, err := Parse(raw)
	if err != nil {
		t.Fatalf("raw parse: %v", err)
	}
	if !reflect.DeepEqual(p.Samples, gz.Samples) || !reflect.DeepEqual(p.SampleTypes, gz.SampleTypes) {
		t.Error("raw and gzipped parses disagree")
	}
}

// TestParseErrors exercises the malformed-input paths: truncation at
// several byte boundaries must error, never panic or loop.
func TestParseErrors(t *testing.T) {
	data, err := os.ReadFile("testdata/small.pb.gz")
	if err != nil {
		t.Fatal(err)
	}
	raw := mustGunzip(t, data)
	for _, n := range []int{1, 2, 5, len(raw) / 2, len(raw) - 1} {
		if _, err := Parse(raw[:n]); err == nil {
			t.Errorf("Parse of %d-byte prefix succeeded, want error", n)
		}
	}
	if _, err := Parse([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Error("Parse of truncated gzip header succeeded, want error")
	}
}

// TestParseRealHeapProfile feeds the decoder a live profile from this
// very process, pinning the decoder to what runtime/pprof actually
// emits: the canonical heap sample types must resolve and the value
// counts must line up.
func TestParseRealHeapProfile(t *testing.T) {
	// Allocate well past the default 512 KiB sampling rate so the
	// profile is guaranteed to carry samples, and force a GC so the
	// profile snapshot (which lags by a cycle) includes them.
	for i := range profTestSink {
		profTestSink[i] = make([]byte, 64<<10)
	}
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.WriteHeapProfile(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []string{"alloc_objects", "alloc_space", "inuse_objects", "inuse_space"} {
		if p.ValueIndex(typ) < 0 {
			t.Errorf("heap profile missing sample type %q (have %v)", typ, p.SampleTypes)
		}
	}
	idx := p.ValueIndex("alloc_space")
	rows := p.Top(idx, 5)
	if len(rows) == 0 {
		t.Fatal("live heap profile produced no hot functions")
	}
	for _, r := range rows {
		if r.Cum < r.Flat {
			t.Errorf("%s: cum %d < flat %d", r.Name, r.Cum, r.Flat)
		}
	}
}

// mustGunzip decompresses via the production Parse path's own gzip
// handling being bypassed: tests need the raw body.
func mustGunzip(t *testing.T, data []byte) []byte {
	t.Helper()
	raw, err := gunzip(data)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

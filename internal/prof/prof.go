// Package prof decodes Go pprof profiles (the gzipped protobuf format
// written by runtime/pprof) using only the standard library, and
// aggregates them into flat/cumulative hot-function tables.
//
// The decoder understands exactly the subset of profile.proto that Go
// profiles populate — sample types, samples, locations, functions, the
// string table, and period/duration metadata — and skips everything
// else, so it stays a few hundred lines instead of pulling in a
// protobuf dependency. It exists so shahin-prof can turn CPU, heap,
// mutex, and block profiles into ledger-recordable top-N tables
// without shelling out to `go tool pprof`.
package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// ValueType names one sample value dimension, e.g. {Type: "cpu",
// Unit: "nanoseconds"} or {Type: "alloc_space", Unit: "bytes"}.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one stack sample: a leaf-first location stack and one
// value per sample type.
type Sample struct {
	LocationIDs []uint64
	Values      []int64
}

// Line attributes part of a location to a source line of a function.
type Line struct {
	FunctionID uint64
	Line       int64
}

// Location is one address in a profile. Multiple lines mean inlining:
// the first line is the innermost (leaf) inlined call, the last is the
// physical caller.
type Location struct {
	ID    uint64
	Lines []Line
}

// Function is one function referenced by profile locations.
type Function struct {
	ID   uint64
	Name string
	File string
}

// Profile is a decoded pprof profile.
type Profile struct {
	SampleTypes []ValueType
	Samples     []Sample
	Locations   map[uint64]Location
	Functions   map[uint64]Function

	TimeNanos     int64
	DurationNanos int64
	PeriodType    ValueType
	Period        int64
}

// ValueIndex returns the index into Sample.Values for the named sample
// type (e.g. "cpu", "alloc_space", "delay"), or -1 if absent.
func (p *Profile) ValueIndex(typ string) int {
	for i, vt := range p.SampleTypes {
		if vt.Type == typ {
			return i
		}
	}
	return -1
}

// Parse decodes a pprof profile, transparently gunzipping when the
// input carries the gzip magic (runtime/pprof always gzips; a raw
// protobuf body is accepted too for fixtures).
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		data, err = io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
	}

	p := &Profile{
		Locations: make(map[uint64]Location),
		Functions: make(map[uint64]Function),
	}
	// String-table indexes are resolved after the walk: the table is a
	// repeated field and may appear after its first referents.
	var strtab []string
	var sampleTypeIdx, periodTypeIdx [][2]uint64 // (type, unit) string indexes
	var funcStrIdx []map[string]uint64           // per-function {name, file} indexes, parallel to funcOrder
	var funcOrder []uint64

	r := wireReader{buf: data}
	for !r.eof() {
		num, typ, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			payload, err := r.bytes()
			if err != nil {
				return nil, err
			}
			ti, ui, err := parseValueType(payload)
			if err != nil {
				return nil, err
			}
			sampleTypeIdx = append(sampleTypeIdx, [2]uint64{ti, ui})
		case 2: // sample
			payload, err := r.bytes()
			if err != nil {
				return nil, err
			}
			s, err := parseSample(payload)
			if err != nil {
				return nil, err
			}
			p.Samples = append(p.Samples, s)
		case 4: // location
			payload, err := r.bytes()
			if err != nil {
				return nil, err
			}
			loc, err := parseLocation(payload)
			if err != nil {
				return nil, err
			}
			p.Locations[loc.ID] = loc
		case 5: // function
			payload, err := r.bytes()
			if err != nil {
				return nil, err
			}
			id, idx, err := parseFunction(payload)
			if err != nil {
				return nil, err
			}
			funcOrder = append(funcOrder, id)
			funcStrIdx = append(funcStrIdx, idx)
		case 6: // string_table
			payload, err := r.bytes()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(payload))
		case 9: // time_nanos
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			p.TimeNanos = int64(v)
		case 10: // duration_nanos
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			p.DurationNanos = int64(v)
		case 11: // period_type
			payload, err := r.bytes()
			if err != nil {
				return nil, err
			}
			ti, ui, err := parseValueType(payload)
			if err != nil {
				return nil, err
			}
			periodTypeIdx = append(periodTypeIdx, [2]uint64{ti, ui})
		case 12: // period
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			p.Period = int64(v)
		default: // mapping, drop/keep_frames, comment, …
			if err := r.skip(typ); err != nil {
				return nil, err
			}
		}
	}

	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}
	for _, ti := range sampleTypeIdx {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(ti[0]), Unit: str(ti[1])})
	}
	if len(periodTypeIdx) > 0 {
		last := periodTypeIdx[len(periodTypeIdx)-1]
		p.PeriodType = ValueType{Type: str(last[0]), Unit: str(last[1])}
	}
	for i, id := range funcOrder {
		p.Functions[id] = Function{
			ID:   id,
			Name: str(funcStrIdx[i]["name"]),
			File: str(funcStrIdx[i]["file"]),
		}
	}
	for _, s := range p.Samples {
		if len(s.Values) != len(p.SampleTypes) {
			return nil, fmt.Errorf("prof: sample has %d values, profile has %d sample types",
				len(s.Values), len(p.SampleTypes))
		}
	}
	return p, nil
}

// parseValueType decodes a ValueType message into its raw string-table
// indexes.
func parseValueType(payload []byte) (typIdx, unitIdx uint64, err error) {
	r := wireReader{buf: payload}
	for !r.eof() {
		num, typ, err := r.tag()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case 1:
			if typIdx, err = r.varint(); err != nil {
				return 0, 0, err
			}
		case 2:
			if unitIdx, err = r.varint(); err != nil {
				return 0, 0, err
			}
		default:
			if err := r.skip(typ); err != nil {
				return 0, 0, err
			}
		}
	}
	return typIdx, unitIdx, nil
}

// parseSample decodes a Sample message (location stack + values).
func parseSample(payload []byte) (Sample, error) {
	var s Sample
	r := wireReader{buf: payload}
	for !r.eof() {
		num, typ, err := r.tag()
		if err != nil {
			return s, err
		}
		switch num {
		case 1:
			if s.LocationIDs, err = r.uint64s(typ, s.LocationIDs); err != nil {
				return s, err
			}
		case 2:
			if s.Values, err = r.int64s(typ, s.Values); err != nil {
				return s, err
			}
		default:
			if err := r.skip(typ); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// parseLocation decodes a Location message (id + line records).
func parseLocation(payload []byte) (Location, error) {
	var loc Location
	r := wireReader{buf: payload}
	for !r.eof() {
		num, typ, err := r.tag()
		if err != nil {
			return loc, err
		}
		switch num {
		case 1:
			v, err := r.varint()
			if err != nil {
				return loc, err
			}
			loc.ID = v
		case 4:
			payload, err := r.bytes()
			if err != nil {
				return loc, err
			}
			ln, err := parseLine(payload)
			if err != nil {
				return loc, err
			}
			loc.Lines = append(loc.Lines, ln)
		default:
			if err := r.skip(typ); err != nil {
				return loc, err
			}
		}
	}
	return loc, nil
}

// parseLine decodes a Line message.
func parseLine(payload []byte) (Line, error) {
	var ln Line
	r := wireReader{buf: payload}
	for !r.eof() {
		num, typ, err := r.tag()
		if err != nil {
			return ln, err
		}
		switch num {
		case 1:
			v, err := r.varint()
			if err != nil {
				return ln, err
			}
			ln.FunctionID = v
		case 2:
			v, err := r.varint()
			if err != nil {
				return ln, err
			}
			ln.Line = int64(v)
		default:
			if err := r.skip(typ); err != nil {
				return ln, err
			}
		}
	}
	return ln, nil
}

// parseFunction decodes a Function message into its id and raw
// string-table indexes for name and filename.
func parseFunction(payload []byte) (id uint64, strIdx map[string]uint64, err error) {
	strIdx = map[string]uint64{}
	r := wireReader{buf: payload}
	for !r.eof() {
		num, typ, err := r.tag()
		if err != nil {
			return 0, nil, err
		}
		switch num {
		case 1:
			if id, err = r.varint(); err != nil {
				return 0, nil, err
			}
		case 2:
			v, err := r.varint()
			if err != nil {
				return 0, nil, err
			}
			strIdx["name"] = v
		case 4:
			v, err := r.varint()
			if err != nil {
				return 0, nil, err
			}
			strIdx["file"] = v
		default:
			if err := r.skip(typ); err != nil {
				return 0, nil, err
			}
		}
	}
	return id, strIdx, nil
}

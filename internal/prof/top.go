package prof

import "sort"

// HotFunc is one row of a top-N hot-function table.
type HotFunc struct {
	// Name is the fully qualified function name.
	Name string `json:"name"`
	// File is the source file the function lives in.
	File string `json:"file,omitempty"`
	// Flat is the value attributed to the function itself (samples
	// whose innermost frame is this function).
	Flat int64 `json:"flat"`
	// Cum is the value attributed to the function and everything it
	// called (samples with this function anywhere on the stack).
	Cum int64 `json:"cum"`
}

// Top aggregates the profile into its n hottest functions by flat
// value for the given sample-value index (see ValueIndex). Flat charges
// each sample to the innermost frame of its leaf location; Cum charges
// it to every distinct function on the stack once. Rows sort by Flat
// descending, ties by Name, so the table is deterministic.
func (p *Profile) Top(valueIndex, n int) []HotFunc {
	if valueIndex < 0 || n <= 0 {
		return nil
	}
	type agg struct {
		flat, cum int64
	}
	byFunc := make(map[uint64]*agg)
	for _, s := range p.Samples {
		if valueIndex >= len(s.Values) {
			continue
		}
		v := s.Values[valueIndex]
		if v == 0 || len(s.LocationIDs) == 0 {
			continue
		}
		// Location stacks are leaf-first; within a location, lines are
		// innermost-inline-first. The very first function we see is the
		// flat owner; every distinct function on the stack gets cum.
		seen := make(map[uint64]bool)
		flatDone := false
		for _, locID := range s.LocationIDs {
			loc, ok := p.Locations[locID]
			if !ok {
				continue
			}
			for _, ln := range loc.Lines {
				a := byFunc[ln.FunctionID]
				if a == nil {
					a = &agg{}
					byFunc[ln.FunctionID] = a
				}
				if !flatDone {
					a.flat += v
					flatDone = true
				}
				if !seen[ln.FunctionID] {
					a.cum += v
					seen[ln.FunctionID] = true
				}
			}
		}
	}

	rows := make([]HotFunc, 0, len(byFunc))
	// Deterministic despite map iteration: every row is collected, then
	// fully ordered by (Flat desc, Name asc) before truncation.
	for id, a := range byFunc {
		fn := p.Functions[id]
		name := fn.Name
		if name == "" {
			name = "<unknown>"
		}
		rows = append(rows, HotFunc{Name: name, File: fn.File, Flat: a.flat, Cum: a.cum})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Flat != rows[j].Flat {
			return rows[i].Flat > rows[j].Flat
		}
		return rows[i].Name < rows[j].Name
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

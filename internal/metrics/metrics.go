// Package metrics implements the fidelity measures the paper's
// "Explanation Quality" evaluation uses: Euclidean distance and maximum
// absolute deviation between feature-importance vectors, and Kendall-τ
// rank correlation between the feature orderings two explainers induce.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Euclidean returns the L2 distance between two equal-length vectors.
func Euclidean(a, b []float64) float64 {
	mustSameLen("Euclidean", a, b)
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// MaxAbsDev returns the largest absolute per-coordinate deviation.
func MaxAbsDev(a, b []float64) float64 {
	mustSameLen("MaxAbsDev", a, b)
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// KendallTau returns the Kendall τ-b rank correlation between the
// orderings induced by two score vectors (ties handled by the τ-b
// correction). It is 1 for identical orderings, -1 for reversed, and 0
// when one vector is constant (no ordering information).
func KendallTau(a, b []float64) float64 {
	mustSameLen("KendallTau", a, b)
	n := len(a)
	if n < 2 {
		return 1
	}
	var concordant, discordant, tiesA, tiesB float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := sign(a[i] - a[j])
			db := sign(b[i] - b[j])
			switch {
			case da == 0 && db == 0:
				// Joint tie: excluded from both correction terms.
			case da == 0:
				tiesA++
			case db == 0:
				tiesB++
			case da == db:
				concordant++
			default:
				discordant++
			}
		}
	}
	denom := math.Sqrt((concordant + discordant + tiesA) * (concordant + discordant + tiesB))
	if denom == 0 {
		return 0
	}
	return (concordant - discordant) / denom
}

// Spearman returns the Spearman rank correlation of two score vectors:
// the Pearson correlation of their (average-tied) ranks. 1 for identical
// orderings, -1 for reversed, 0 when either vector is constant.
func Spearman(a, b []float64) float64 {
	mustSameLen("Spearman", a, b)
	n := len(a)
	if n < 2 {
		return 1
	}
	ra := ranks(a)
	rb := ranks(b)
	meanA, meanB := 0.0, 0.0
	for i := 0; i < n; i++ {
		meanA += ra[i]
		meanB += rb[i]
	}
	meanA /= float64(n)
	meanB /= float64(n)
	var cov, varA, varB float64
	for i := 0; i < n; i++ {
		da, db := ra[i]-meanA, rb[i]-meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0
	}
	return cov / math.Sqrt(varA*varB)
}

// ranks returns average ranks (1-based) with ties sharing their mean rank.
func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return v[idx[i]] < v[idx[j]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		mean := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = mean
		}
		i = j + 1
	}
	return out
}

// MeanKendallTau averages KendallTau over paired rows (the paper computes
// the τ of every tuple in the batch and averages).
func MeanKendallTau(as, bs [][]float64) float64 {
	if len(as) != len(bs) {
		panic(fmt.Sprintf("metrics: MeanKendallTau over %d vs %d rows", len(as), len(bs)))
	}
	if len(as) == 0 {
		return 0
	}
	s := 0.0
	for i := range as {
		s += KendallTau(as[i], bs[i])
	}
	return s / float64(len(as))
}

// TopKOverlap returns |topK(a) ∩ topK(b)| / k, comparing the k highest
// |score| features of each vector — a coarse but interpretable agreement
// measure used by the quality report alongside τ.
func TopKOverlap(a, b []float64, k int) float64 {
	mustSameLen("TopKOverlap", a, b)
	if k <= 0 || len(a) == 0 {
		return 1
	}
	if k > len(a) {
		k = len(a)
	}
	ta := topKIdx(a, k)
	tb := topKIdx(b, k)
	inA := make(map[int]bool, k)
	for _, i := range ta {
		inA[i] = true
	}
	hits := 0
	for _, i := range tb {
		if inA[i] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// topKIdx returns the indices of the k largest |v| entries (selection by
// repeated max; k and len are tiny).
func topKIdx(v []float64, k int) []int {
	used := make([]bool, len(v))
	out := make([]int, 0, k)
	for len(out) < k {
		best, bestAbs := -1, -1.0
		for i := range v {
			if used[i] {
				continue
			}
			if a := math.Abs(v[i]); a > bestAbs {
				best, bestAbs = i, a
			}
		}
		used[best] = true
		out = append(out, best)
	}
	return out
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

func mustSameLen(op string, a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: %s over vectors of length %d and %d", op, len(a), len(b)))
	}
}

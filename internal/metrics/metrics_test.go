package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEuclidean(t *testing.T) {
	if got := Euclidean([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Fatalf("Euclidean=%g want 5", got)
	}
	if got := Euclidean([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("identical vectors distance %g", got)
	}
}

func TestMaxAbsDev(t *testing.T) {
	if got := MaxAbsDev([]float64{1, 5, -2}, []float64{1.5, 4, -2}); got != 1 {
		t.Fatalf("MaxAbsDev=%g want 1", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Euclidean":  func() { Euclidean([]float64{1}, []float64{1, 2}) },
		"MaxAbsDev":  func() { MaxAbsDev([]float64{1}, []float64{1, 2}) },
		"KendallTau": func() { KendallTau([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestKendallTauExtremes(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := KendallTau(a, a); got != 1 {
		t.Fatalf("tau(a,a)=%g want 1", got)
	}
	rev := []float64{4, 3, 2, 1}
	if got := KendallTau(a, rev); got != -1 {
		t.Fatalf("tau(a,rev)=%g want -1", got)
	}
	// Constant vector has no ordering: tau 0.
	if got := KendallTau(a, []float64{7, 7, 7, 7}); got != 0 {
		t.Fatalf("tau(a,const)=%g want 0", got)
	}
	// Short vectors are trivially concordant.
	if got := KendallTau([]float64{1}, []float64{9}); got != 1 {
		t.Fatalf("tau singleton=%g want 1", got)
	}
}

func TestKendallTauKnownValue(t *testing.T) {
	// One discordant pair out of three: tau = (2-1)/3 = 1/3.
	a := []float64{1, 2, 3}
	b := []float64{1, 3, 2}
	if got := KendallTau(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("tau=%g want 1/3", got)
	}
}

func TestKendallTauTies(t *testing.T) {
	// a has a tie; tau-b must stay within [-1, 1] and be positive for a
	// mostly concordant pairing.
	a := []float64{1, 1, 2, 3}
	b := []float64{1, 2, 3, 4}
	got := KendallTau(a, b)
	if got <= 0 || got > 1 {
		t.Fatalf("tau with ties = %g", got)
	}
}

// Property: tau is symmetric, bounded, and invariant under strictly
// increasing transforms of either argument.
func TestQuickKendallTau(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		tau := KendallTau(a, b)
		if tau < -1-1e-12 || tau > 1+1e-12 {
			return false
		}
		if math.Abs(tau-KendallTau(b, a)) > 1e-12 {
			return false
		}
		// Monotone transform: x -> 2x + 1 preserves order exactly.
		a2 := make([]float64, n)
		for i := range a {
			a2[i] = 2*a[i] + 1
		}
		return math.Abs(tau-KendallTau(a2, b)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanKendallTau(t *testing.T) {
	as := [][]float64{{1, 2, 3}, {1, 2, 3}}
	bs := [][]float64{{1, 2, 3}, {3, 2, 1}}
	if got := MeanKendallTau(as, bs); got != 0 {
		t.Fatalf("mean tau=%g want 0 ((1 + -1)/2)", got)
	}
	if got := MeanKendallTau(nil, nil); got != 0 {
		t.Fatalf("empty mean tau=%g", got)
	}
}

func TestMeanKendallTauMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("row-count mismatch did not panic")
		}
	}()
	MeanKendallTau([][]float64{{1}}, nil)
}

func TestTopKOverlap(t *testing.T) {
	a := []float64{10, -9, 1, 0.5}
	b := []float64{8, -7, 0.2, 0.1}
	if got := TopKOverlap(a, b, 2); got != 1 {
		t.Fatalf("TopKOverlap=%g want 1", got)
	}
	c := []float64{0.1, 0.2, 9, 8}
	if got := TopKOverlap(a, c, 2); got != 0 {
		t.Fatalf("TopKOverlap disjoint=%g want 0", got)
	}
	// k larger than dimension clamps.
	if got := TopKOverlap(a, a, 10); got != 1 {
		t.Fatalf("TopKOverlap self with big k=%g want 1", got)
	}
	if got := TopKOverlap(a, c, 0); got != 1 {
		t.Fatalf("TopKOverlap k=0 should be vacuous 1, got %g", got)
	}
}

func TestSpearmanExtremes(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := Spearman(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman(a,a)=%g", got)
	}
	rev := []float64{4, 3, 2, 1}
	if got := Spearman(a, rev); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Spearman(a,rev)=%g", got)
	}
	if got := Spearman(a, []float64{7, 7, 7, 7}); got != 0 {
		t.Fatalf("Spearman(a,const)=%g", got)
	}
	if got := Spearman([]float64{1}, []float64{5}); got != 1 {
		t.Fatalf("Spearman singleton=%g", got)
	}
}

func TestSpearmanTiedRanks(t *testing.T) {
	// Ties get averaged ranks; correlation stays within [-1, 1] and a
	// mostly concordant pairing is positive.
	a := []float64{1, 1, 2, 3}
	b := []float64{2, 3, 5, 9}
	got := Spearman(a, b)
	if got <= 0 || got > 1 {
		t.Fatalf("Spearman with ties=%g", got)
	}
}

// Property: Spearman is invariant under strictly increasing transforms
// and symmetric, like Kendall.
func TestQuickSpearman(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		s := Spearman(a, b)
		if s < -1-1e-9 || s > 1+1e-9 {
			return false
		}
		if math.Abs(s-Spearman(b, a)) > 1e-12 {
			return false
		}
		a2 := make([]float64, n)
		for i := range a {
			a2[i] = 3*a[i] - 2
		}
		return math.Abs(s-Spearman(a2, b)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

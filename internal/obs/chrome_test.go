package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestChromeTrace(t *testing.T) {
	r := NewRecorder()
	batch := r.StartSpan(StageBatch)
	batch.SetAttr("tuples", 3)
	mine := batch.Child(StageMine)
	time.Sleep(time.Millisecond)
	mine.End()
	batch.Child(StageExplain).End()
	batch.End()
	stream := r.StartSpan(StageStream) // second root, left in flight

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}

	lastTS := map[int]float64{}
	names := map[string]ChromeEvent{}
	for _, e := range events {
		if e.Ph != "X" || e.Cat != "shahin" || e.PID != 1 {
			t.Errorf("event %+v not a complete shahin event", e)
		}
		if e.TID < 1 {
			t.Errorf("event %q has tid %d", e.Name, e.TID)
		}
		if prev, ok := lastTS[e.TID]; ok && e.TS < prev {
			t.Errorf("ts not monotone on tid %d: %v after %v (%q)", e.TID, e.TS, prev, e.Name)
		}
		lastTS[e.TID] = e.TS
		names[e.Name] = e
	}
	if names[StageMine].TID != names[StageBatch].TID {
		t.Error("child span landed on a different tid than its root")
	}
	if names[StageStream].TID == names[StageBatch].TID {
		t.Error("second root should get its own tid")
	}
	if names[StageBatch].Args["tuples"] != float64(3) {
		t.Errorf("batch args %+v", names[StageBatch].Args)
	}
	if names[StageStream].Args["in_flight"] != true {
		t.Errorf("in-flight root args %+v", names[StageStream].Args)
	}
	if names[StageMine].Dur <= 0 {
		t.Errorf("mine dur = %v", names[StageMine].Dur)
	}
	stream.End()
}

func TestChromeTraceNil(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("nil trace not a JSON array: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("nil recorder produced %d events", len(events))
	}
}

// TestChromeTraceRuntimeEvents: runtime telemetry events become counter
// tracks (heap, goroutines) and a process-scoped GC instant on track 0.
func TestChromeTraceRuntimeEvents(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Type: EventHeapSample, Tuple: -1, Bytes: 4096, Goroutines: 7})
	r.Emit(Event{Type: EventGCCycle, Tuple: -1, Itemsets: 2, Bytes: 2048, DurMS: 0.25})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	byName := map[string]ChromeEvent{}
	for _, e := range events {
		byName[e.Name] = e
	}

	heap, ok := byName["heap_live_bytes"]
	if !ok {
		t.Fatal("no heap_live_bytes counter event")
	}
	if heap.Ph != "C" || heap.Cat != "shahin-runtime" || heap.TID != 0 {
		t.Errorf("heap counter = %+v", heap)
	}
	if heap.Args["bytes"] != float64(4096) {
		t.Errorf("heap counter args %+v", heap.Args)
	}
	gor, ok := byName["goroutines"]
	if !ok {
		t.Fatal("no goroutines counter event")
	}
	if gor.Ph != "C" || gor.Args["count"] != float64(7) {
		t.Errorf("goroutines counter = %+v", gor)
	}

	gc, ok := byName["gc_cycle"]
	if !ok {
		t.Fatal("no gc_cycle instant event")
	}
	if gc.Ph != "i" || gc.S != "p" || gc.Cat != "shahin-runtime" {
		t.Errorf("gc_cycle = %+v", gc)
	}
	if gc.Args["cycles"] != float64(2) || gc.Args["heap_bytes"] != float64(2048) || gc.Args["max_pause_ms"] != 0.25 {
		t.Errorf("gc_cycle args %+v", gc.Args)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestChromeTrace(t *testing.T) {
	r := NewRecorder()
	batch := r.StartSpan(StageBatch)
	batch.SetAttr("tuples", 3)
	mine := batch.Child(StageMine)
	time.Sleep(time.Millisecond)
	mine.End()
	batch.Child(StageExplain).End()
	batch.End()
	stream := r.StartSpan(StageStream) // second root, left in flight

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}

	lastTS := map[int]float64{}
	names := map[string]ChromeEvent{}
	for _, e := range events {
		if e.Ph != "X" || e.Cat != "shahin" || e.PID != 1 {
			t.Errorf("event %+v not a complete shahin event", e)
		}
		if e.TID < 1 {
			t.Errorf("event %q has tid %d", e.Name, e.TID)
		}
		if prev, ok := lastTS[e.TID]; ok && e.TS < prev {
			t.Errorf("ts not monotone on tid %d: %v after %v (%q)", e.TID, e.TS, prev, e.Name)
		}
		lastTS[e.TID] = e.TS
		names[e.Name] = e
	}
	if names[StageMine].TID != names[StageBatch].TID {
		t.Error("child span landed on a different tid than its root")
	}
	if names[StageStream].TID == names[StageBatch].TID {
		t.Error("second root should get its own tid")
	}
	if names[StageBatch].Args["tuples"] != float64(3) {
		t.Errorf("batch args %+v", names[StageBatch].Args)
	}
	if names[StageStream].Args["in_flight"] != true {
		t.Errorf("in-flight root args %+v", names[StageStream].Args)
	}
	if names[StageMine].Dur <= 0 {
		t.Errorf("mine dur = %v", names[StageMine].Dur)
	}
	stream.End()
}

func TestChromeTraceNil(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("nil trace not a JSON array: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("nil recorder produced %d events", len(events))
	}
}

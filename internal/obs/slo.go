package obs

import (
	"sync"
	"time"
)

// SLO objective names as they appear in status JSON, Prometheus export,
// and ledger deltas.
const (
	// SLOLatency is the latency objective: fraction of requests at or
	// under the latency target.
	SLOLatency = "latency"
	// SLOAvailability is the availability objective: fraction of
	// requests answered successfully (no 5xx-class outcome).
	SLOAvailability = "availability"
)

// SLOConfig parameterises an SLOTracker. Zero fields take defaults.
type SLOConfig struct {
	// Window is the rolling window objectives are evaluated over
	// (default 5m).
	Window time.Duration
	// Buckets subdivides the window; old buckets age out whole, so
	// more buckets mean a smoother roll (default 30).
	Buckets int
	// LatencyTarget is the per-request latency objective threshold
	// (default 250ms).
	LatencyTarget time.Duration
	// LatencyGoal is the target fraction of requests at or under
	// LatencyTarget (default 0.99).
	LatencyGoal float64
	// AvailabilityGoal is the target fraction of successful requests
	// (default 0.999).
	AvailabilityGoal float64
	// Clock supplies time; inject a fake for deterministic tests
	// (default time.Now).
	Clock func() time.Time
}

// withDefaults fills zero fields.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = 5 * time.Minute
	}
	if c.Buckets <= 0 {
		c.Buckets = 30
	}
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = 250 * time.Millisecond
	}
	if c.LatencyGoal <= 0 || c.LatencyGoal >= 1 {
		c.LatencyGoal = 0.99
	}
	if c.AvailabilityGoal <= 0 || c.AvailabilityGoal >= 1 {
		c.AvailabilityGoal = 0.999
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// sloBucket is one time slice of the rolling window. seq is the
// bucket's absolute sequence number since the tracker's epoch; a slot
// whose seq is stale is reset on first touch, so aged-out data never
// needs a sweeper goroutine.
type sloBucket struct {
	seq   int64
	total int64
	slow  int64 // latency > target
	bad   int64 // unsuccessful outcome
}

// SLOTracker evaluates rolling-window latency and availability
// objectives with burn-rate computation. All methods are safe for
// concurrent use and no-op (or return zero status) on a nil receiver.
type SLOTracker struct {
	cfg   SLOConfig
	width time.Duration // bucket width = Window / Buckets

	mu      sync.Mutex
	epoch   time.Time
	buckets []sloBucket
}

// NewSLOTracker builds a tracker from cfg (zero fields take defaults).
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	t := &SLOTracker{
		cfg:   cfg,
		width: cfg.Window / time.Duration(cfg.Buckets),
		epoch: cfg.Clock(),
		// One extra slot so a full window of closed buckets coexists
		// with the live one.
		buckets: make([]sloBucket, cfg.Buckets+1),
	}
	for i := range t.buckets {
		t.buckets[i].seq = -1
	}
	return t
}

// Config returns the tracker's effective (defaulted) configuration.
func (t *SLOTracker) Config() SLOConfig {
	if t == nil {
		return SLOConfig{}
	}
	return t.cfg
}

// bucket returns the live bucket for now, recycling stale slots in
// place. Caller holds t.mu.
func (t *SLOTracker) bucket(now time.Time) *sloBucket {
	seq := int64(now.Sub(t.epoch) / t.width)
	if seq < 0 {
		seq = 0
	}
	slot := &t.buckets[seq%int64(len(t.buckets))]
	if slot.seq != seq {
		*slot = sloBucket{seq: seq}
	}
	return slot
}

// Record folds one served request into the window: its latency and
// whether it was answered successfully. Nil-safe.
func (t *SLOTracker) Record(latency time.Duration, ok bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.bucket(t.cfg.Clock())
	b.total++
	if latency > t.cfg.LatencyTarget {
		b.slow++
	}
	if !ok {
		b.bad++
	}
}

// SLOObjective is one objective's rolling-window evaluation.
type SLOObjective struct {
	// Name is SLOLatency or SLOAvailability.
	Name string `json:"name"`
	// Goal is the target good-event fraction.
	Goal float64 `json:"goal"`
	// TargetMS is the latency threshold (latency objective only).
	TargetMS float64 `json:"target_ms,omitempty"`
	// Total counts requests in the window.
	Total int64 `json:"total"`
	// Bad counts objective violations in the window.
	Bad int64 `json:"bad"`
	// Compliance is the good-event fraction (1 on an empty window).
	Compliance float64 `json:"compliance"`
	// BurnRate is the error-budget burn rate: the bad fraction divided
	// by the budget (1 − goal). 1.0 burns the budget exactly at the
	// window's pace; above 1 the objective is being missed.
	BurnRate float64 `json:"burn_rate"`
	// Met reports compliance ≥ goal.
	Met bool `json:"met"`
}

// SLOStatus is the tracker's full evaluation, as served by /slo and
// embedded in run ledgers.
type SLOStatus struct {
	// WindowMS is the rolling window in milliseconds.
	WindowMS float64 `json:"window_ms"`
	// Objectives holds the latency and availability evaluations.
	Objectives []SLOObjective `json:"objectives"`
}

// makeObjective evaluates one objective from window sums.
func makeObjective(name string, goal, targetMS float64, total, bad int64) SLOObjective {
	o := SLOObjective{Name: name, Goal: goal, TargetMS: targetMS, Total: total, Bad: bad, Compliance: 1, Met: true}
	if total > 0 {
		badFrac := float64(bad) / float64(total)
		o.Compliance = 1 - badFrac
		o.BurnRate = badFrac / (1 - goal)
		o.Met = o.Compliance >= goal
	}
	return o
}

// Status evaluates both objectives over the current window. Nil-safe
// (zero status).
func (t *SLOTracker) Status() SLOStatus {
	if t == nil {
		return SLOStatus{}
	}
	t.mu.Lock()
	now := t.cfg.Clock()
	cur := int64(now.Sub(t.epoch) / t.width)
	oldest := cur - int64(t.cfg.Buckets)
	var total, slow, bad int64
	for i := range t.buckets {
		b := t.buckets[i]
		if b.seq > oldest && b.seq <= cur {
			total += b.total
			slow += b.slow
			bad += b.bad
		}
	}
	t.mu.Unlock()
	return SLOStatus{
		WindowMS: durToMS(t.cfg.Window),
		Objectives: []SLOObjective{
			makeObjective(SLOLatency, t.cfg.LatencyGoal, durToMS(t.cfg.LatencyTarget), total, slow),
			makeObjective(SLOAvailability, t.cfg.AvailabilityGoal, 0, total, bad),
		},
	}
}

// SetSLO attaches an SLO tracker to the recorder; the serving layer
// feeds it via RecordSLO and /slo, Prometheus export, and run ledgers
// read it back. Nil-safe.
func (r *Recorder) SetSLO(t *SLOTracker) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.slo = t
	r.mu.Unlock()
}

// SLO returns the attached tracker (nil when none). Nil-safe.
func (r *Recorder) SLO() *SLOTracker {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.slo
}

// RecordSLO folds one served request into the attached tracker; a no-op
// without one. Nil-safe.
func (r *Recorder) RecordSLO(latency time.Duration, ok bool) {
	r.SLO().Record(latency, ok)
}

// SLOStatus evaluates the attached tracker, reporting false when none
// is attached. Nil-safe.
func (r *Recorder) SLOStatus() (SLOStatus, bool) {
	t := r.SLO()
	if t == nil {
		return SLOStatus{}, false
	}
	return t.Status(), true
}

package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"sync/atomic"
)

// TraceContext is the request-scoped distributed-tracing identity the
// serving stack threads through context.Context: a 128-bit trace ID
// shared by every span of one request's journey and a 64-bit span ID
// naming the current hop, both lowercase hex per the W3C Trace Context
// specification. The zero value is invalid (all-zero IDs are reserved).
type TraceContext struct {
	// TraceID is 32 lowercase hex characters, not all zero.
	TraceID string
	// SpanID is 16 lowercase hex characters, not all zero.
	SpanID string
	// Flags is the trace-flags octet (bit 0 = sampled).
	Flags byte
}

// Valid reports whether both IDs are well-formed (correct length,
// lowercase hex, not all zero).
func (tc TraceContext) Valid() bool {
	return validHexID(tc.TraceID, 32) && validHexID(tc.SpanID, 16)
}

// validHexID checks an n-character lowercase-hex ID that is not all
// zeros, per the traceparent grammar.
func validHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// Traceparent renders the context as a version-00 W3C traceparent
// header value: "00-<trace-id>-<span-id>-<flags>".
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", tc.TraceID, tc.SpanID, tc.Flags)
}

// ParseTraceparent parses a W3C traceparent header value. Unknown
// versions are accepted as long as the first four fields are
// well-formed (the spec requires forward compatibility); version "ff"
// and malformed or all-zero IDs are rejected.
func ParseTraceparent(s string) (TraceContext, error) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: want version-traceid-spanid-flags", s)
	}
	version := strings.ToLower(parts[0])
	if len(version) != 2 || !isHex(version) || version == "ff" {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: bad version %q", s, parts[0])
	}
	if version == "00" && len(parts) != 4 {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: version 00 takes exactly four fields", s)
	}
	flagsHex := strings.ToLower(parts[3])
	if len(flagsHex) != 2 || !isHex(flagsHex) {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: bad flags %q", s, parts[3])
	}
	var flags byte
	if b, err := hex.DecodeString(flagsHex); err == nil {
		flags = b[0]
	}
	tc := TraceContext{
		TraceID: strings.ToLower(parts[1]),
		SpanID:  strings.ToLower(parts[2]),
		Flags:   flags,
	}
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: invalid trace or span id", s)
	}
	return tc, nil
}

// isHex reports whether s is entirely lowercase hex.
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// NewTraceContext mints a fresh sampled trace: random trace and span
// IDs from the OS entropy source.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: randHex(16), SpanID: randHex(8), Flags: 1}
}

// Child derives the context of a new span within the same trace: the
// trace ID and flags are inherited, the span ID is fresh. The receiver
// becomes the child's parent.
func (tc TraceContext) Child() TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: randHex(8), Flags: tc.Flags}
}

// idCounter backs ID generation if the entropy source ever fails:
// process-local uniqueness is all the exemplar ring needs.
var idCounter atomic.Uint64

// randHex returns 2n lowercase hex characters of randomness, never all
// zero.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := crand.Read(b); err != nil {
		binary.BigEndian.PutUint64(b[len(b)-8:], idCounter.Add(1)|1<<63)
	}
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		b[len(b)-1] = 1
	}
	return hex.EncodeToString(b)
}

// traceCtxKey and spanCtxKey key the context.Context plumbing.
type (
	traceCtxKey struct{}
	spanCtxKey  struct{}
)

// ContextWithTrace returns ctx carrying tc, so a request's trace
// identity survives the hop from the HTTP handler through the admission
// queue into the core explain paths. Invalid contexts are not attached.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts the trace identity attached by
// ContextWithTrace, reporting whether one was present.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// ContextWithSpan returns ctx carrying a live span, so layers deep in
// the stack (the fault chain's retries, breaker transitions, and
// degradation rungs) can attach child spans to the stage that invoked
// them without threading the span explicitly. A nil span is not
// attached.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext extracts the span attached by ContextWithSpan (nil
// when absent, so the result can be used directly — span methods no-op
// on nil).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// RootContext returns a fresh detached context for lifecycle roots:
// server-lifetime cancellation, background batchers, and other state
// that deliberately outlives any single request. It is the repo's one
// sanctioned constructor for such roots — request paths must forward
// their incoming context instead (the ctxflow check enforces this on
// serve/fault packages and *Ctx functions), so grepping for
// obs.RootContext inventories every place a detached root is created
// on purpose.
func RootContext() context.Context {
	return context.Background()
}

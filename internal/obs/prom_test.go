package obs

import (
	"bytes"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"classifier_invocations": "classifier_invocations",
		"pool-build":             "pool_build",
		"explain.tuple":          "explain_tuple",
		"a b":                    "a_b",
		"9lives":                 "_9lives",
		"":                       "_",
		"ns:stage":               "ns:stage",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promSampleLine matches one Prometheus text-format sample:
// name{labels} value.
var promSampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9][0-9eE+.\-]*$`)

func TestWritePrometheusParses(t *testing.T) {
	r := NewRecorder()
	r.Counter("weird-name.metric").Add(3)
	r.Counter(CounterInvocations).Add(1234)
	r.Gauge(GaugeTuplesTotal).Set(40)
	h := r.Histogram("explain.tuple")
	h.Observe(100 * time.Microsecond)
	h.Observe(3 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"shahin_weird_name_metric 3",
		"shahin_classifier_invocations 1234",
		"shahin_tuples_total 40",
		"# TYPE shahin_explain_tuple histogram",
		`shahin_explain_tuple_bucket{le="+Inf"} 2`,
		"shahin_explain_tuple_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Every line must be a comment or a well-formed sample, HELP/TYPE
	// must precede their metric, and histogram buckets must be cumulative.
	typed := map[string]bool{}
	var lastCum int64 = -1
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if !promSampleLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Errorf("sample %q has no preceding HELP/TYPE", name)
		}
		if strings.HasPrefix(line, "shahin_explain_tuple_bucket{") {
			fields := strings.Fields(line)
			v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if v < lastCum {
				t.Errorf("bucket counts not cumulative: %d after %d in %q", v, lastCum, line)
			}
			lastCum = v
		}
	}

	var nilRec *Recorder
	buf.Reset()
	if err := nilRec.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil recorder wrote %q, err %v", buf.String(), err)
	}
}

// TestWritePrometheusBuildInfo: the fingerprint gauge must render with
// its full sorted label set and a constant value of 1.
func TestWritePrometheusBuildInfo(t *testing.T) {
	r := NewRecorder()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE shahin_build_info gauge",
		`goversion="` + runtime.Version() + `"`,
		`goos="` + runtime.GOOS + `"`,
		`goarch="` + runtime.GOARCH + `"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("build_info output missing %q", want)
		}
	}
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "shahin_build_info{") {
			line = l
		}
	}
	if line == "" || !strings.HasSuffix(line, "} 1") {
		t.Fatalf("build_info sample line %q, want constant 1", line)
	}
	for _, label := range []string{"dirty=", "goarch=", "goos=", "goversion=", "num_cpu=", "revision="} {
		if !strings.Contains(line, label) {
			t.Errorf("build_info line missing label %s: %q", label, line)
		}
	}
}

// TestWritePrometheusCuratedHelp: well-known metrics carry their
// curated HELP text; unknown ones fall back to the generic line.
func TestWritePrometheusCuratedHelp(t *testing.T) {
	r := NewRecorder()
	r.Counter(CounterInvocations).Add(1)
	r.Gauge(GaugeBreakerState).Set(0)
	r.Gauge("some_adhoc_gauge").Set(7)
	r.StartRuntimeSampling(time.Hour) // one immediate sample registers the runtime metrics
	r.StopRuntimeSampling()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP shahin_classifier_invocations " + promHelp[CounterInvocations],
		"# HELP shahin_fault_breaker_state " + promHelp[GaugeBreakerState],
		"# HELP shahin_runtime_heap_live_bytes " + promHelp[GaugeRuntimeHeapLive],
		"# HELP shahin_runtime_gc_pause_ns " + promHelp[HistRuntimeGCPause],
		`# HELP shahin_some_adhoc_gauge Shahin gauge "some_adhoc_gauge".`,
		"shahin_runtime_goroutines ",
		"# TYPE shahin_runtime_sched_latency_ns histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeEndpoints(t *testing.T) {
	rec := NewRecorder()
	rec.Counter(CounterTuplesDone).Add(5)
	rec.Gauge(GaugeTuplesTotal).Set(10)
	rec.Histogram(HistPredict).Observe(20 * time.Microsecond)
	span := rec.StartSpan(StageBatch)
	span.Child(StageMine).End()
	span.End()

	srv, err := Serve("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Fatal("no bound address")
	}
	base := "http://" + srv.Addr()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return body
	}

	var m Metrics
	if err := json.Unmarshal(get("/metrics"), &m); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if m.Counters[CounterTuplesDone] != 5 || m.Histograms[HistPredict].Count != 1 {
		t.Fatalf("metrics %+v", m)
	}

	var p Progress
	if err := json.Unmarshal(get("/progress"), &p); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if p.TuplesDone != 5 || p.TuplesTotal != 10 {
		t.Fatalf("progress %+v", p)
	}

	var tf struct {
		Spans []*SpanDump `json:"spans"`
	}
	if err := json.Unmarshal(get("/trace"), &tf); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(tf.Spans) != 1 || tf.Spans[0].Name != StageBatch {
		t.Fatalf("trace %+v", tf.Spans)
	}

	get("/")             // index
	get("/debug/pprof/") // pprof index
	if resp, err := http.Get(base + "/nope"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("/nope status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestServeFormatsAndEvents covers the export adapters on the HTTP
// surface: Prometheus text at /metrics?format=prom, Chrome trace-event
// JSON at /trace?format=chrome, and the JSONL event log at /events.
func TestServeFormatsAndEvents(t *testing.T) {
	rec := NewRecorder()
	rec.Counter(CounterInvocations).Add(7)
	span := rec.StartSpan(StageBatch)
	span.End()
	rec.Emit(Event{Type: EventTupleExplained, Tuple: 0, Explainer: "LIME", Fresh: 121})
	rec.Emit(Event{Type: EventTupleExplained, Tuple: 1, Explainer: "LIME", Pooled: 80, Fresh: 41})

	srv, err := Serve("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path, wantType string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != wantType {
			t.Errorf("GET %s: Content-Type %q, want %q", path, ct, wantType)
		}
		return body
	}

	prom := string(get("/metrics?format=prom", "text/plain; version=0.0.4; charset=utf-8"))
	if !strings.Contains(prom, "shahin_classifier_invocations 7") {
		t.Errorf("prom exposition missing counter:\n%s", prom)
	}

	var chrome []ChromeEvent
	if err := json.Unmarshal(get("/trace?format=chrome", "application/json"), &chrome); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v", err)
	}
	if len(chrome) != 1 || chrome[0].Name != StageBatch || chrome[0].Ph != "X" {
		t.Fatalf("chrome events %+v", chrome)
	}

	lines := strings.Split(strings.TrimRight(string(get("/events", "application/x-ndjson")), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d event lines", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("event line not JSON: %v", err)
	}
	if ev.Tuple != 1 || ev.Pooled != 80 {
		t.Fatalf("event %+v", ev)
	}
}

func TestServeNilRecorder(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("Serve(nil) should fail")
	}
}

func TestServerNilSafety(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Fatal("nil server address")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", NewRecorder()); err == nil {
		t.Fatal("bad address should fail")
	}
}

func ExampleServe() {
	rec := NewRecorder()
	srv, err := Serve("127.0.0.1:0", rec)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()
	fmt.Println(srv.Addr() != "")
	// Output: true
}

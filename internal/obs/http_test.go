package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestServeEndpoints(t *testing.T) {
	rec := NewRecorder()
	rec.Counter(CounterTuplesDone).Add(5)
	rec.Gauge(GaugeTuplesTotal).Set(10)
	rec.Histogram(HistPredict).Observe(20 * time.Microsecond)
	span := rec.StartSpan(StageBatch)
	span.Child(StageMine).End()
	span.End()

	srv, err := Serve("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Fatal("no bound address")
	}
	base := "http://" + srv.Addr()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return body
	}

	var m Metrics
	if err := json.Unmarshal(get("/metrics"), &m); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if m.Counters[CounterTuplesDone] != 5 || m.Histograms[HistPredict].Count != 1 {
		t.Fatalf("metrics %+v", m)
	}

	var p Progress
	if err := json.Unmarshal(get("/progress"), &p); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if p.TuplesDone != 5 || p.TuplesTotal != 10 {
		t.Fatalf("progress %+v", p)
	}

	var tf struct {
		Spans []*SpanDump `json:"spans"`
	}
	if err := json.Unmarshal(get("/trace"), &tf); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(tf.Spans) != 1 || tf.Spans[0].Name != StageBatch {
		t.Fatalf("trace %+v", tf.Spans)
	}

	get("/")             // index
	get("/debug/pprof/") // pprof index
	if resp, err := http.Get(base + "/nope"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("/nope status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestServeNilRecorder(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("Serve(nil) should fail")
	}
}

func TestServerNilSafety(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Fatal("nil server address")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", NewRecorder()); err == nil {
		t.Fatal("bad address should fail")
	}
}

func ExampleServe() {
	rec := NewRecorder()
	srv, err := Serve("127.0.0.1:0", rec)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()
	fmt.Println(srv.Addr() != "")
	// Output: true
}

package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, err := ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", tp, err)
	}
	if tc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || tc.SpanID != "00f067aa0ba902b7" || tc.Flags != 1 {
		t.Fatalf("parsed %+v", tc)
	}
	if got := tc.Traceparent(); got != tp {
		t.Fatalf("Traceparent() = %q, want %q", got, tp)
	}

	// Uppercase hex is normalised to lowercase.
	up, err := ParseTraceparent("00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01")
	if err != nil || up.TraceID != tc.TraceID || up.SpanID != tc.SpanID {
		t.Fatalf("uppercase parse: %+v, %v", up, err)
	}

	// A future version with extra fields still parses (forward compat).
	if _, err := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Fatalf("future version rejected: %v", err)
	}

	bad := []string{
		"",
		"00-short-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // all-zero span
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", // bad flags
		"00-xyz92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
}

func TestTraceContextChild(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("NewTraceContext invalid: %+v", tc)
	}
	c := tc.Child()
	if c.TraceID != tc.TraceID {
		t.Fatalf("child changed trace ID: %q vs %q", c.TraceID, tc.TraceID)
	}
	if c.SpanID == tc.SpanID || !c.Valid() {
		t.Fatalf("child span ID not fresh: %+v", c)
	}
	if strings.Count(tc.Traceparent(), "-") != 3 {
		t.Fatalf("malformed traceparent %q", tc.Traceparent())
	}
}

func TestTraceContextOnContext(t *testing.T) {
	tc := NewTraceContext()
	ctx := ContextWithTrace(t.Context(), tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFromContext = %+v, %v", got, ok)
	}
	if _, ok := TraceFromContext(t.Context()); ok {
		t.Fatal("bare context reported a trace")
	}
}

// fakeClock is a deterministic SLO clock the test advances by hand.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestSLOTracker(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	tr := NewSLOTracker(SLOConfig{
		Window:           time.Minute,
		Buckets:          6,
		LatencyTarget:    100 * time.Millisecond,
		LatencyGoal:      0.9,
		AvailabilityGoal: 0.95,
		Clock:            clk.Now,
	})

	// Empty window: full compliance, objectives met, zero burn.
	st := tr.Status()
	if len(st.Objectives) != 2 {
		t.Fatalf("objectives: %+v", st.Objectives)
	}
	for _, o := range st.Objectives {
		if o.Compliance != 1 || !o.Met || o.BurnRate != 0 {
			t.Fatalf("empty-window objective %+v", o)
		}
	}

	// 10 requests: 2 slow, 1 failed.
	for i := 0; i < 8; i++ {
		tr.Record(10*time.Millisecond, true)
	}
	tr.Record(200*time.Millisecond, true)
	tr.Record(300*time.Millisecond, false)
	st = tr.Status()
	lat, avail := st.Objectives[0], st.Objectives[1]
	if lat.Name != SLOLatency || lat.Total != 10 || lat.Bad != 2 {
		t.Fatalf("latency objective %+v", lat)
	}
	if lat.Compliance != 0.8 || lat.Met {
		t.Fatalf("latency compliance %+v", lat)
	}
	// burn = badFrac / (1-goal) = 0.2 / 0.1 = 2.
	if lat.BurnRate < 1.99 || lat.BurnRate > 2.01 {
		t.Fatalf("latency burn rate %v", lat.BurnRate)
	}
	if avail.Name != SLOAvailability || avail.Bad != 1 || avail.Compliance != 0.9 || avail.Met {
		t.Fatalf("availability objective %+v", avail)
	}

	// Half a window later the samples still count ...
	clk.Advance(30 * time.Second)
	if st := tr.Status(); st.Objectives[0].Total != 10 {
		t.Fatalf("mid-window total %d", st.Objectives[0].Total)
	}
	// ... and a fresh sample lands in a new bucket.
	tr.Record(10*time.Millisecond, true)
	if st := tr.Status(); st.Objectives[0].Total != 11 {
		t.Fatalf("post-advance total %d", st.Objectives[0].Total)
	}

	// Past the full window everything ages out.
	clk.Advance(2 * time.Minute)
	st = tr.Status()
	if st.Objectives[0].Total != 0 || st.Objectives[0].Compliance != 1 || !st.Objectives[0].Met {
		t.Fatalf("aged-out objective %+v", st.Objectives[0])
	}

	// Bucket slots are recycled in place, not leaked: record again and
	// the window only sees the new data.
	tr.Record(10*time.Millisecond, true)
	if st := tr.Status(); st.Objectives[0].Total != 1 {
		t.Fatalf("recycled-slot total %d", st.Objectives[0].Total)
	}
}

func TestRecorderSLO(t *testing.T) {
	rec := NewRecorder()
	if _, ok := rec.SLOStatus(); ok {
		t.Fatal("recorder without tracker reported SLO status")
	}
	rec.RecordSLO(time.Millisecond, true) // no tracker: must not panic
	rec.SetSLO(NewSLOTracker(SLOConfig{Window: time.Minute}))
	rec.RecordSLO(time.Millisecond, true)
	rec.RecordSLO(time.Second, false)
	st, ok := rec.SLOStatus()
	if !ok || st.Objectives[1].Bad != 1 || st.Objectives[0].Total != 2 {
		t.Fatalf("recorder SLO status %+v ok=%v", st, ok)
	}

	var nilRec *Recorder
	nilRec.RecordSLO(time.Millisecond, true)
	nilRec.SetSLO(nil)
	if _, ok := nilRec.SLOStatus(); ok {
		t.Fatal("nil recorder reported SLO status")
	}
}

func TestRequestRingTopK(t *testing.T) {
	ring := newRequestRing(3)
	for i, ms := range []float64{5, 1, 9, 3, 7} {
		ring.offer(RequestTrace{TraceID: strings.Repeat("a", 31) + string(rune('0'+i)), DurMS: ms})
	}
	snap := ring.snapshot(false)
	if len(snap) != 3 {
		t.Fatalf("ring holds %d entries, want 3", len(snap))
	}
	// Slowest-first, the three slowest of {5,1,9,3,7}.
	if snap[0].DurMS != 9 || snap[1].DurMS != 7 || snap[2].DurMS != 5 {
		t.Fatalf("ring kept %v %v %v", snap[0].DurMS, snap[1].DurMS, snap[2].DurMS)
	}
}

func TestRequestRingDuplicateTrace(t *testing.T) {
	ring := newRequestRing(4)
	id := strings.Repeat("b", 32)
	ring.offer(RequestTrace{TraceID: id, DurMS: 2, Source: "store"})
	ring.offer(RequestTrace{TraceID: id, DurMS: 8, Source: "computed"})
	ring.offer(RequestTrace{TraceID: id, DurMS: 1, Source: "store"})
	got, ok := ring.byTrace(id)
	if !ok || got.DurMS != 8 || got.Source != "computed" {
		t.Fatalf("duplicate trace kept %+v ok=%v", got, ok)
	}
	if snap := ring.snapshot(false); len(snap) != 1 {
		t.Fatalf("duplicates occupy %d slots", len(snap))
	}
}

func TestRecorderRequests(t *testing.T) {
	rec := NewRecorder()
	root := rec.StartDetachedSpan("request")
	root.SetTrace(strings.Repeat("c", 32), strings.Repeat("1", 16), "")
	root.Child("queue_wait").End()
	root.End()
	rec.OfferRequest(RequestTrace{
		TraceID: strings.Repeat("c", 32), SpanID: strings.Repeat("1", 16),
		Name: "request", Source: "computed", DurMS: 4, Root: root.Dump(),
	})

	sum := rec.RequestsSummary()
	if sum.Count != 1 || sum.Capacity != DefaultRequestCapacity || len(sum.Requests) != 1 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.Requests[0].Root != nil {
		t.Fatal("summary kept span dumps; they belong only to the full view")
	}
	full := rec.Requests()
	if len(full) != 1 || full[0].Root == nil || len(full[0].Root.Children) != 1 {
		t.Fatalf("full view %+v", full)
	}
	if _, ok := rec.RequestByTrace(strings.Repeat("c", 32)); !ok {
		t.Fatal("RequestByTrace missed a retained trace")
	}
	if _, ok := rec.RequestByTrace("missing"); ok {
		t.Fatal("RequestByTrace resolved an unknown trace")
	}

	// Detached roots must not leak into the recorder's span forest.
	for _, d := range rec.Trace() {
		if d.Name == "request" {
			t.Fatal("detached request root landed in the trace forest")
		}
	}

	var nilRec *Recorder
	nilRec.OfferRequest(RequestTrace{TraceID: "x"})
	if s := nilRec.RequestsSummary(); s.Count != 0 {
		t.Fatalf("nil recorder summary %+v", s)
	}
}

func TestStageBreakdownJSON(t *testing.T) {
	bd := StageBreakdown{
		QueueWait:     2 * time.Millisecond,
		BatchAssembly: time.Millisecond,
		PoolSample:    500 * time.Microsecond,
		Classify:      3 * time.Millisecond,
		Solve:         4 * time.Millisecond,
	}
	if bd.IsZero() {
		t.Fatal("populated breakdown reported zero")
	}
	if got, want := bd.Total(), 10500*time.Microsecond; got != want {
		t.Fatalf("Total() = %v, want %v", got, want)
	}
	b, err := bd.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back StageBreakdown
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back != bd {
		t.Fatalf("round trip %+v != %+v", back, bd)
	}
	if !new(StageBreakdown).IsZero() {
		t.Fatal("zero breakdown not IsZero")
	}
}

func TestObserveStagesSkipsZero(t *testing.T) {
	rec := NewRecorder()
	rec.ObserveStages(StageBreakdown{QueueWait: time.Millisecond})
	m := rec.Metrics()
	if h, ok := m.Histograms[HistStageQueueWait]; !ok || h.Count != 1 {
		t.Fatalf("queue_wait histogram %+v", m.Histograms[HistStageQueueWait])
	}
	for _, name := range []string{HistStageBatchAssembly, HistStagePoolSample, HistStageClassify, HistStageSolve} {
		if h, ok := m.Histograms[name]; ok && h.Count != 0 {
			t.Fatalf("zero stage %s was observed: %+v", name, h)
		}
	}
	var nilRec *Recorder
	nilRec.ObserveStages(StageBreakdown{Solve: time.Second}) // must not panic
}

func TestSpanTraceIdentity(t *testing.T) {
	rec := NewRecorder()
	s := rec.StartSpan("root")
	s.SetTrace("trace-1", "span-1", "parent-1")
	c := s.Child("child")
	g := c.Child("grandchild")
	a := s.AddChild("stage", time.Now(), time.Millisecond, map[string]any{"k": 1})
	g.End()
	c.End()
	a.End()
	s.End()

	d := s.Dump()
	if d.TraceID != "trace-1" || d.SpanID != "span-1" || d.ParentID != "parent-1" {
		t.Fatalf("root dump %+v", d)
	}
	for _, cd := range d.Children {
		if cd.TraceID != "trace-1" {
			t.Fatalf("child %q lost trace identity: %+v", cd.Name, cd)
		}
	}
	if d.Children[1].Attrs["k"] != 1 {
		t.Fatalf("AddChild attrs %+v", d.Children[1].Attrs)
	}
	if d.Children[0].Children[0].TraceID != "trace-1" {
		t.Fatal("grandchild lost trace identity")
	}
}

// TestSpanDrainRace hammers one span tree from many goroutines — child
// creation, attribute writes, ends, and concurrent dumps/trace walks —
// to prove the locking drains cleanly under the race detector.
func TestSpanDrainRace(t *testing.T) {
	rec := NewRecorder()
	root := rec.StartSpan("root")
	root.SetTrace(strings.Repeat("d", 32), strings.Repeat("2", 16), "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.Child("work")
				c.SetAttr("i", i)
				gc := c.AddChild("sub", time.Now(), time.Microsecond, nil)
				_ = gc.Dump()
				c.End()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = root.Dump()
			_ = rec.Trace()
			root.SetTrace(strings.Repeat("d", 32), strings.Repeat("2", 16), "")
		}
	}()
	wg.Wait()
	root.End()
	d := root.Dump()
	if len(d.Children) != 8*50 {
		t.Fatalf("root holds %d children, want %d", len(d.Children), 8*50)
	}
}

func TestChromeTraceFlowEvents(t *testing.T) {
	rec := NewRecorder()
	flush := rec.StartSpan(StageWarmFlush)
	flush.SetAttr("flush", 3)
	flush.End()

	traceID := strings.Repeat("e", 32)
	root := rec.StartDetachedSpan("request")
	root.SetTrace(traceID, strings.Repeat("3", 16), "")
	root.AddChild(StageQueueWait, time.Now(), time.Millisecond, nil)
	root.End()
	rec.OfferRequest(RequestTrace{
		TraceID: traceID, Name: "request", Flush: 3, DurMS: 5, Root: root.Dump(),
	})
	// A store hit (flush 0) must not grow a flow arrow.
	hit := rec.StartDetachedSpan("request")
	hit.End()
	rec.OfferRequest(RequestTrace{TraceID: strings.Repeat("f", 32), Name: "request", DurMS: 1, Root: hit.Dump()})

	events := rec.ChromeTrace()
	var start, finish *ChromeEvent
	var flushTID, reqTID int
	for i := range events {
		ev := &events[i]
		switch {
		case ev.Name == StageWarmFlush:
			flushTID = ev.TID
		case ev.Name == "request" && ev.Args["trace_id"] == traceID:
			reqTID = ev.TID
		case ev.Cat == "shahin-flow" && ev.Ph == "s":
			start = ev
		case ev.Cat == "shahin-flow" && ev.Ph == "f":
			finish = ev
		}
	}
	if start == nil || finish == nil {
		t.Fatalf("flow pair missing: start=%v finish=%v", start, finish)
	}
	if start.ID != traceID || finish.ID != traceID {
		t.Fatalf("flow IDs %q / %q, want trace ID", start.ID, finish.ID)
	}
	if start.TID != reqTID {
		t.Fatalf("flow start on tid %d, request track is %d", start.TID, reqTID)
	}
	if finish.TID != flushTID || finish.BP != "e" {
		t.Fatalf("flow finish %+v, want flush tid %d bp e", finish, flushTID)
	}
	// Exactly one pair: the store hit contributed none.
	var flows int
	for _, ev := range events {
		if ev.Cat == "shahin-flow" {
			flows++
		}
	}
	if flows != 2 {
		t.Fatalf("%d flow events, want 2", flows)
	}
}

func TestCompareLedgersSLO(t *testing.T) {
	mk := func(latency, avail float64) *RunLedger {
		l := mkLedger(1000, 3000, 100)
		l.SLO = &SLOStatus{
			WindowMS: 60000,
			Objectives: []SLOObjective{
				{Name: SLOLatency, Goal: 0.99, Compliance: latency, Met: latency >= 0.99},
				{Name: SLOAvailability, Goal: 0.999, Compliance: avail, Met: avail >= 0.999},
			},
		}
		return l
	}
	th := Thresholds{Wall: 10, Reuse: 1, Invocations: 10, SLO: 0.01}

	// Within threshold: not regressed.
	_, regressed := CompareLedgers(mk(0.995, 1), mk(0.99, 1), th)
	if regressed {
		t.Fatal("compliance drop within threshold flagged as regression")
	}
	// Beyond threshold: regressed, and the delta is gated.
	deltas, regressed := CompareLedgers(mk(0.99, 1), mk(0.9, 1), th)
	if !regressed {
		t.Fatal("large compliance drop not flagged")
	}
	found := false
	for _, d := range deltas {
		if d.Metric == "slo_compliance_"+SLOLatency {
			found = true
			if !d.Gated || !d.Regressed {
				t.Fatalf("slo delta %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("no slo_compliance delta emitted")
	}
	// SLO data vanishing from the current run is itself a regression.
	curr := mkLedger(1000, 3000, 100)
	if _, regressed := CompareLedgers(mk(1, 1), curr, th); !regressed {
		t.Fatal("missing SLO in current ledger not flagged")
	}
	// A baseline without SLO gates nothing (schema-1 ledgers stay green).
	deltas, regressed = CompareLedgers(mkLedger(1000, 3000, 100), mk(0.5, 0.5), th)
	if regressed {
		t.Fatal("SLO gated without baseline data")
	}
	for _, d := range deltas {
		if strings.HasPrefix(d.Metric, "slo_") {
			t.Fatalf("unexpected SLO delta %+v without baseline", d)
		}
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRecorder()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	m := r.Metrics()
	if m.Counters["c"] != 5 || m.Gauges["g"] != 5 {
		t.Fatalf("metrics snapshot %+v", m)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRecorder()
	h := r.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if want := 5050 * time.Microsecond; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	s := h.Snapshot()
	if s.MinNS != int64(time.Microsecond) || s.MaxNS != int64(100*time.Microsecond) {
		t.Fatalf("min/max = %d/%d", s.MinNS, s.MaxNS)
	}
	// Quantiles are bucket-resolution: p50 must bracket the true median
	// within a factor of two, and never exceed the observed max.
	p50 := time.Duration(s.P50NS)
	if p50 < 25*time.Microsecond || p50 > 100*time.Microsecond {
		t.Fatalf("p50 = %v outside [25µs, 100µs]", p50)
	}
	if s.P99NS > s.MaxNS {
		t.Fatalf("p99 %d exceeds max %d", s.P99NS, s.MaxNS)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 100 {
		t.Fatalf("bucket counts sum to %d", total)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	r := NewRecorder()
	h := r.Histogram("lat")
	if h.Quantile(0.5) != 0 {
		t.Fatal("quantile of empty histogram should be 0")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot %+v", s)
	}
	h.Observe(-time.Second) // clamped to 0, must not panic or corrupt
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("after negative observe: count=%d sum=%v", h.Count(), h.Sum())
	}
}

// Every instrumentation method must no-op on nil receivers: that is the
// zero-overhead contract Options.Recorder == nil relies on.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	if r.Counter("x").Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(time.Second)
	if r.Histogram("h").Count() != 0 {
		t.Fatal("nil histogram should read 0")
	}
	s := r.StartSpan("root")
	s.SetAttr("k", 1)
	c := s.Child("child")
	c.End()
	if s.End() != 0 || s.Duration() != 0 {
		t.Fatal("nil span should report zero duration")
	}
	if r.Trace() != nil || r.StageTotals() != nil {
		t.Fatal("nil recorder should trace nothing")
	}
	if p := r.Progress(); p != (Progress{}) {
		t.Fatalf("nil progress %+v", p)
	}
	m := r.Metrics()
	if len(m.Counters) != 0 || len(m.Gauges) != 0 || len(m.Histograms) != 0 {
		t.Fatalf("nil metrics %+v", m)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		Spans []json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("nil trace not valid JSON: %v", err)
	}
	if tf.Spans == nil {
		t.Fatal("nil trace should still carry an empty spans array")
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRecorder()
	root := r.StartSpan("batch")
	root.SetAttr("tuples", 42)
	mine := root.Child("mine")
	time.Sleep(2 * time.Millisecond)
	mine.End()
	open := root.Child("explain") // left open on purpose
	time.Sleep(time.Millisecond)

	if d := open.Duration(); d <= 0 {
		t.Fatalf("open span duration = %v", d)
	}
	dumps := r.Trace()
	if len(dumps) != 1 {
		t.Fatalf("got %d roots", len(dumps))
	}
	d := dumps[0]
	if d.Name != "batch" || !d.InFlight {
		t.Fatalf("root dump %+v", d)
	}
	if d.Attrs["tuples"] != 42 {
		t.Fatalf("attrs %+v", d.Attrs)
	}
	if len(d.Children) != 2 {
		t.Fatalf("got %d children", len(d.Children))
	}
	if d.Children[0].Name != "mine" || d.Children[0].InFlight {
		t.Fatalf("mine dump %+v", d.Children[0])
	}
	if d.Children[1].Name != "explain" || !d.Children[1].InFlight {
		t.Fatalf("explain dump %+v", d.Children[1])
	}
	if d.Children[0].StartMS < d.StartMS {
		t.Fatal("child starts before parent")
	}

	first := mine.End()
	time.Sleep(time.Millisecond)
	if again := mine.End(); again != first {
		t.Fatalf("End not idempotent: %v then %v", first, again)
	}
	root.End()

	totals := r.StageTotals()
	for _, name := range []string{"batch", "mine", "explain"} {
		if totals[name] <= 0 {
			t.Fatalf("missing stage total %q in %v", name, totals)
		}
	}
	line := FormatStageTotals(totals)
	if !strings.Contains(line, "batch") || !strings.Contains(line, "mine") {
		t.Fatalf("stage line %q", line)
	}
	if FormatStageTotals(nil) != "(no spans recorded)" {
		t.Fatal("empty totals line")
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	r := NewRecorder()
	root := r.StartSpan("stream")
	root.Child("re-mine").End()
	root.End()

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		UptimeMS float64     `json:"uptime_ms"`
		Spans    []*SpanDump `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace not parseable: %v\n%s", err, buf.String())
	}
	if len(tf.Spans) != 1 || tf.Spans[0].Name != "stream" {
		t.Fatalf("spans %+v", tf.Spans)
	}
	if len(tf.Spans[0].Children) != 1 || tf.Spans[0].Children[0].Name != "re-mine" {
		t.Fatalf("children %+v", tf.Spans[0].Children)
	}
	if tf.UptimeMS <= 0 {
		t.Fatalf("uptime_ms = %v", tf.UptimeMS)
	}
}

func TestProgress(t *testing.T) {
	r := NewRecorder()
	r.Counter(CounterTuplesDone).Add(30)
	r.Gauge(GaugeTuplesTotal).Set(100)
	r.Counter(CounterInvocations).Add(400)
	r.Counter(CounterReusedSamples).Add(600)
	r.Counter(CounterCacheHits).Add(9)
	r.Counter(CounterCacheMisses).Add(1)
	p := r.Progress()
	if p.TuplesDone != 30 || p.TuplesTotal != 100 || p.Invocations != 400 {
		t.Fatalf("progress %+v", p)
	}
	if p.ReuseRate != 0.6 {
		t.Fatalf("reuse rate = %v, want 0.6", p.ReuseRate)
	}
	if p.CacheHits != 9 || p.CacheMisses != 1 {
		t.Fatalf("cache counters %+v", p)
	}
}

// TestConcurrentUse hammers one recorder from many goroutines; run under
// -race it proves counters, histograms, and spans are goroutine-safe.
func TestConcurrentUse(t *testing.T) {
	r := NewRecorder()
	root := r.StartSpan("batch")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctr := r.Counter("n")
			hist := r.Histogram("lat")
			for i := 0; i < 1000; i++ {
				ctr.Inc()
				hist.Observe(time.Duration(i))
				if i%100 == 0 {
					child := root.Child("explain")
					child.SetAttr("i", i)
					child.End()
				}
			}
			r.Metrics() // snapshot while writers are live
			r.Trace()
		}()
	}
	wg.Wait()
	root.End()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("lat").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := len(r.Trace()[0].Children); got != 80 {
		t.Fatalf("children = %d, want 80", got)
	}
}

package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a recorder over HTTP while a run is in flight:
//
//	/metrics   JSON snapshot of every counter, gauge, and histogram
//	           (?format=prom switches to Prometheus text exposition)
//	/progress  tuples done, reuse rate, invocations so far
//	/trace     the span dump (same shape as -trace-out;
//	           ?format=chrome emits Chrome trace-event JSON for Perfetto)
//	/events    the structured event log as JSONL (same shape as -events-out)
//	/slo       rolling-window SLO status (latency/availability, burn rates)
//	/requests  slow-request exemplar ring (?trace=<id> for one full span dump)
//	/debug/pprof/  the standard Go profiling endpoints
//
// Use Serve with addr ":0" to pick a free port; Addr reports the bound
// address.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and serves rec's endpoints on a background
// goroutine until Close.
func Serve(addr string, rec *Recorder) (*Server, error) {
	if rec == nil {
		return nil, errors.New("obs: Serve needs a non-nil recorder")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "shahin observability\n\n/metrics (?format=prom)\n/progress\n/trace (?format=chrome)\n/events\n/slo\n/requests (?trace=<id>)\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := rec.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		writeJSON(w, rec.Metrics())
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, rec.Progress())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var err error
		if req.URL.Query().Get("format") == "chrome" {
			err = rec.WriteChromeTrace(w)
		} else {
			err = rec.WriteTrace(w)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := rec.WriteEvents(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/slo", SLOHandler(rec))
	mux.HandleFunc("/requests", RequestsHandler(rec))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln) //shahinvet:allow errcheck — always returns ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:43781"), useful with ":0".
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server immediately. Nil-safe.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// sloResponse is the /slo body: Enabled reports whether a tracker is
// attached, and the status fields inline when it is.
type sloResponse struct {
	Enabled bool `json:"enabled"`
	SLOStatus
}

// SLOHandler serves the rolling-window SLO status of rec's attached
// tracker as JSON ({"enabled": false} when no tracker — or no recorder
// — is attached). Shared by the obs debug server and the serving API.
func SLOHandler(rec *Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		st, ok := rec.SLOStatus()
		writeJSON(w, sloResponse{Enabled: ok, SLOStatus: st})
	}
}

// RequestsHandler serves the slow-request exemplar ring: without
// parameters, the slowest-first listing (span dumps stripped); with
// ?trace=<id>, the full span dump of one request, or 404 when the trace
// ID is not retained. Shared by the obs debug server and the serving
// API.
func RequestsHandler(rec *Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if traceID := req.URL.Query().Get("trace"); traceID != "" {
			rt, ok := rec.RequestByTrace(traceID)
			if !ok {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusNotFound)
				writeJSONBody(w, map[string]string{"error": "trace id not retained: " + traceID})
				return
			}
			writeJSON(w, rt)
			return
		}
		writeJSON(w, rec.RequestsSummary())
	}
}

// writeJSONBody encodes v after the status line has been written.
func writeJSONBody(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //shahinvet:allow errcheck — the status line is already sent; a broken client pipe has no recovery
}

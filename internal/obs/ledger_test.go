package obs

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestFingerprint(t *testing.T) {
	fp := Fingerprint()
	if fp.GoVersion != runtime.Version() {
		t.Errorf("go version %q", fp.GoVersion)
	}
	if fp.GOOS != runtime.GOOS || fp.GOARCH != runtime.GOARCH {
		t.Errorf("platform %s/%s", fp.GOOS, fp.GOARCH)
	}
	if fp.NumCPU < 1 {
		t.Errorf("num cpu %d", fp.NumCPU)
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Counter(CounterInvocations).Add(1000)
	r.Counter(CounterReusedSamples).Add(3000)
	r.Histogram(HistExplainTuple).Observe(2 * time.Millisecond)
	span := r.StartSpan(StageBatch)
	span.End()
	r.Emit(Event{Type: EventPoolBuild, Tuple: -1})

	l := r.Ledger("roundtrip")
	l.Config = map[string]any{"seed": 1}
	if got := l.ReuseRatio(); got != 0.75 {
		t.Fatalf("reuse ratio = %v, want 0.75", got)
	}
	if l.WallMS < 0 || l.Schema != LedgerSchemaVersion {
		t.Fatalf("ledger header %+v", l)
	}
	if _, ok := l.StageTotalsMS[StageBatch]; !ok {
		t.Fatalf("stage totals %v missing %q", l.StageTotalsMS, StageBatch)
	}
	if h := l.Metrics.Histograms[HistExplainTuple]; h.P95NS <= 0 {
		t.Fatalf("ledger histogram lacks p95: %+v", h)
	}

	var buf bytes.Buffer
	if err := WriteLedger(&buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "roundtrip" || back.Schema != LedgerSchemaVersion {
		t.Fatalf("read back %+v", back)
	}
	if back.Metrics.Counters[CounterInvocations] != 1000 {
		t.Fatalf("counters %v", back.Metrics.Counters)
	}
	if back.ReuseRatio() != 0.75 {
		t.Fatalf("reuse ratio after round trip = %v", back.ReuseRatio())
	}
}

func TestNilRecorderLedger(t *testing.T) {
	var r *Recorder
	l := r.Ledger("empty")
	if l == nil || l.Schema != LedgerSchemaVersion || l.Name != "empty" {
		t.Fatalf("nil recorder ledger %+v", l)
	}
	if l.ReuseRatio() != 0 {
		t.Fatal("empty ledger reuse ratio should be 0")
	}
}

func TestReadLedgerRejects(t *testing.T) {
	if _, err := ReadLedger(strings.NewReader("{")); err == nil {
		t.Fatal("malformed JSON should fail")
	}
	if _, err := ReadLedger(strings.NewReader(`{"name":"x"}`)); err == nil {
		t.Fatal("missing schema stamp should fail")
	}
	if _, err := ReadLedger(strings.NewReader(`{"schema":999,"name":"x"}`)); err == nil {
		t.Fatal("future schema should fail")
	}
}

// mkLedger builds a minimal ledger with the given gated-metric values.
func mkLedger(invocations, reused int64, wallMS float64) *RunLedger {
	return &RunLedger{
		Schema: LedgerSchemaVersion,
		WallMS: wallMS,
		Metrics: Metrics{Counters: map[string]int64{
			CounterInvocations:   invocations,
			CounterReusedSamples: reused,
		}},
	}
}

func TestCompareLedgers(t *testing.T) {
	th := Thresholds{Invocations: 0, Wall: 0.5, Reuse: 0.001}
	base := mkLedger(1000, 3000, 100)

	check := func(name string, curr *RunLedger, wantRegressed bool) {
		t.Helper()
		deltas, regressed := CompareLedgers(base, curr, th)
		if regressed != wantRegressed {
			t.Errorf("%s: regressed = %v, want %v (%+v)", name, regressed, wantRegressed, deltas)
		}
	}

	check("parity", mkLedger(1000, 3000, 100), false)
	check("improvement", mkLedger(900, 3100, 80), false)
	check("one extra invocation regresses at threshold 0", mkLedger(1001, 3000, 100), true)
	check("reuse drop beyond threshold", mkLedger(1000, 2000, 100), true)
	check("wall within generous threshold", mkLedger(1000, 3000, 149), false)
	check("wall beyond threshold", mkLedger(1000, 3000, 151), true)

	// The delta rows must cover every counter plus the two derived rows,
	// sorted, with gating flags on exactly the three gated metrics.
	deltas, _ := CompareLedgers(base, mkLedger(1000, 3000, 100), th)
	gated := 0
	for i, d := range deltas {
		if i > 0 && deltas[i-1].Metric != "reuse_ratio" && deltas[i-1].Metric != "wall_ms" &&
			d.Metric != "reuse_ratio" && d.Metric != "wall_ms" && deltas[i-1].Metric > d.Metric {
			t.Errorf("counter deltas not sorted: %q before %q", deltas[i-1].Metric, d.Metric)
		}
		if d.Gated {
			gated++
		}
	}
	if gated != 3 {
		t.Errorf("%d gated metrics, want 3 (%+v)", gated, deltas)
	}

	// A counter present only in the new run still shows up in the diff.
	extra := mkLedger(1000, 3000, 100)
	extra.Metrics.Counters["cache_evictions"] = 5
	deltas, _ = CompareLedgers(base, extra, th)
	found := false
	for _, d := range deltas {
		if d.Metric == "cache_evictions" && d.New == 5 && d.Old == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("new-only counter missing from diff: %+v", deltas)
	}
}

package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a log-scale latency histogram: 64 power-of-two buckets
// over nanoseconds (bucket i counts observations in [2^(i-1), 2^i)),
// plus exact count, sum, min, and max. Observe is a handful of atomic
// operations, cheap enough for per-Predict call sites; quantiles are
// bucket-resolution estimates (within a factor of two), which is the
// right fidelity for "where does the time go" questions.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [64]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketOf maps a nanosecond value to its power-of-two bucket index.
func bucketOf(ns int64) int {
	idx := bits.Len64(uint64(ns))
	if idx > 63 {
		idx = 63
	}
	return idx
}

// Observe records one duration. No-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// observeBucketed folds n observations of approximately ns nanoseconds
// into the histogram in one shot — the runtime sampler uses it to
// replay runtime/metrics bucket-count deltas (which can be thousands of
// scheduler-latency events per tick) without n individual Observes.
// Bucket placement, min/max, count, and sum all update as if Observe
// had been called n times with ns.
func (h *Histogram) observeBucketed(ns, n int64) {
	if h == nil || n <= 0 {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.count.Add(n)
	h.sum.Add(ns * n)
	h.buckets[bucketOf(ns)].Add(n)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-th quantile at bucket resolution: the upper
// bound of the bucket holding the q-th ranked observation, clamped into
// the observed [min, max] so a single-sample histogram answers that
// sample for every q. q is clamped to [0, 1]: q <= 0 returns the
// observed min, q >= 1 the observed max. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 || math.IsNaN(q) {
		return time.Duration(h.min.Load())
	}
	if q >= 1 {
		return time.Duration(h.max.Load())
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			upper := int64(1)<<uint(i) - 1
			if m := h.max.Load(); upper > m {
				upper = m
			}
			if m := h.min.Load(); upper < m {
				upper = m
			}
			return time.Duration(upper)
		}
	}
	return time.Duration(h.max.Load())
}

// HistogramBucket is one non-empty bucket of a snapshot: Count
// observations at or below UpperNS (and above the previous bucket's
// upper bound).
type HistogramBucket struct {
	UpperNS int64 `json:"upper_ns"`
	Count   int64 `json:"count"`
}

// HistogramSnapshot is the JSON-friendly view of a histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumNS   int64             `json:"sum_ns"`
	MeanNS  float64           `json:"mean_ns"`
	MinNS   int64             `json:"min_ns"`
	MaxNS   int64             `json:"max_ns"`
	P50NS   int64             `json:"p50_ns"`
	P90NS   int64             `json:"p90_ns"`
	P95NS   int64             `json:"p95_ns"`
	P99NS   int64             `json:"p99_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Quantile re-estimates the q-th quantile from the snapshot's buckets,
// with the same bucket-resolution and clamping semantics as
// Histogram.Quantile — so ledger readers can compute any quantile, not
// just the pre-serialized three. q is clamped to [0, 1]: q <= 0 returns
// MinNS, q >= 1 MaxNS, and bucket answers land inside [MinNS, MaxNS]
// (a single-sample snapshot answers that sample for every q). Returns
// 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 || math.IsNaN(q) {
		return time.Duration(s.MinNS)
	}
	if q >= 1 {
		return time.Duration(s.MaxNS)
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			upper := b.UpperNS
			if upper > s.MaxNS {
				upper = s.MaxNS
			}
			if upper < s.MinNS {
				upper = s.MinNS
			}
			return time.Duration(upper)
		}
	}
	return time.Duration(s.MaxNS)
}

// Snapshot captures the histogram's current state (zero value on a nil
// receiver or when empty).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	if s.Count == 0 {
		return s
	}
	s.SumNS = h.sum.Load()
	s.MeanNS = float64(s.SumNS) / float64(s.Count)
	s.MinNS = h.min.Load()
	s.MaxNS = h.max.Load()
	s.P50NS = h.Quantile(0.50).Nanoseconds()
	s.P90NS = h.Quantile(0.90).Nanoseconds()
	s.P95NS = h.Quantile(0.95).Nanoseconds()
	s.P99NS = h.Quantile(0.99).Nanoseconds()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{
				UpperNS: int64(1)<<uint(i) - 1,
				Count:   n,
			})
		}
	}
	return s
}

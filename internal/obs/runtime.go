package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime telemetry metric names, maintained by the RuntimeSampler.
// The gauges mirror runtime/metrics readings; the histograms accumulate
// the runtime's own GC-pause and scheduler-latency distributions folded
// into the recorder's power-of-two buckets, so they render on /metrics
// (Prometheus included) and in the ledger exactly like the pipeline's
// latency histograms.
const (
	// GaugeRuntimeHeapLive is the live heap (bytes occupied by reachable
	// plus not-yet-swept objects); GaugeRuntimeHeapGoal the heap size the
	// GC is currently aiming for.
	GaugeRuntimeHeapLive = "runtime_heap_live_bytes"
	GaugeRuntimeHeapGoal = "runtime_heap_goal_bytes"
	// GaugeRuntimeAllocBytes / GaugeRuntimeAllocObjects are cumulative
	// allocation totals since process start.
	GaugeRuntimeAllocBytes   = "runtime_alloc_bytes_total"
	GaugeRuntimeAllocObjects = "runtime_alloc_objects_total"
	// GaugeRuntimeGoroutines is the live goroutine count.
	GaugeRuntimeGoroutines = "runtime_goroutines"
	// GaugeRuntimeGCCycles counts completed GC cycles.
	GaugeRuntimeGCCycles = "runtime_gc_cycles"
	// GaugeRuntimeGCCPUPPM is the fraction of available CPU time spent
	// in the garbage collector since process start, in parts per million
	// (gauges are integers; 10000 ppm = 1 %).
	GaugeRuntimeGCCPUPPM = "runtime_gc_cpu_ppm"
	// HistRuntimeGCPause / HistRuntimeSchedLatency hold the runtime's
	// stop-the-world pause and goroutine scheduling latency
	// distributions, folded in at bucket resolution.
	HistRuntimeGCPause      = "runtime_gc_pause_ns"
	HistRuntimeSchedLatency = "runtime_sched_latency_ns"
)

// runtime/metrics sample names the sampler reads, all present since
// go1.20 so the go.mod floor (1.22) is safe.
const (
	sampleHeapLive   = "/memory/classes/heap/objects:bytes"
	sampleHeapGoal   = "/gc/heap/goal:bytes"
	sampleAllocBytes = "/gc/heap/allocs:bytes"
	sampleAllocObjs  = "/gc/heap/allocs:objects"
	sampleGoroutines = "/sched/goroutines:goroutines"
	sampleGCCycles   = "/gc/cycles/total:gc-cycles"
	sampleGCPauses   = "/gc/pauses:seconds"
	sampleSchedLat   = "/sched/latencies:seconds"
	sampleGCCPU      = "/cpu/classes/gc/total:cpu-seconds"
	sampleTotalCPU   = "/cpu/classes/total:cpu-seconds"
)

// DefaultRuntimeSampleInterval is the sampler tick used when
// StartRuntimeSampling is given a non-positive interval.
const DefaultRuntimeSampleInterval = 100 * time.Millisecond

// heap_sample event decimation: the first runtimeEventDense ticks each
// emit an event (so short bench runs get full resolution), after which
// only every runtimeEventStride-th tick does — a long-running server
// sampling at 100 ms would otherwise crowd every provenance event out
// of the bounded ring.
const (
	runtimeEventDense  = 512
	runtimeEventStride = 16
)

// RuntimeStatus is the ledger-facing summary of the sampler's view: the
// latest gauge readings plus quantiles of the accumulated GC-pause and
// scheduler-latency distributions. It is the `runtime` section of a
// schema-3 RunLedger.
type RuntimeStatus struct {
	// Samples is how many sampler ticks contributed (including the
	// initial and final reads).
	Samples int64 `json:"samples"`
	// IntervalMS is the configured tick interval.
	IntervalMS float64 `json:"interval_ms"`
	// HeapLiveBytes / HeapGoalBytes are the latest heap readings.
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	HeapGoalBytes uint64 `json:"heap_goal_bytes"`
	// TotalAllocBytes / TotalAllocObjects are cumulative since process
	// start (not since the sampler started).
	TotalAllocBytes   uint64 `json:"total_alloc_bytes"`
	TotalAllocObjects uint64 `json:"total_alloc_objects"`
	// Goroutines is the latest live goroutine count.
	Goroutines int64 `json:"goroutines"`
	// GCCycles is the number of completed GC cycles since process start.
	GCCycles uint64 `json:"gc_cycles"`
	// GCCPUFraction is the fraction of available CPU spent in the
	// garbage collector since process start (0..1).
	GCCPUFraction float64 `json:"gc_cpu_fraction"`
	// GC pause quantiles (bucket-resolution) over every pause the
	// sampler has folded in.
	GCPauseP50NS int64 `json:"gc_pause_p50_ns"`
	GCPauseP95NS int64 `json:"gc_pause_p95_ns"`
	GCPauseMaxNS int64 `json:"gc_pause_max_ns"`
	// Scheduler latency quantiles (bucket-resolution).
	SchedLatencyP50NS int64 `json:"sched_latency_p50_ns"`
	SchedLatencyP99NS int64 `json:"sched_latency_p99_ns"`
}

// RuntimeSampler periodically reads runtime/metrics into a recorder:
// heap and GC gauges, GC-pause and scheduler-latency histogram deltas,
// and bounded gc_cycle / heap_sample events so Chrome traces show GC
// activity against request spans. Start it with
// Recorder.StartRuntimeSampling; it takes one sample immediately, one
// per tick, and a final one on Stop, so even sub-interval runs populate
// the runtime section.
type RuntimeSampler struct {
	rec      *Recorder
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}

	// Gauges and histograms resolved once at start.
	heapLive, heapGoal, allocBytes, allocObjs *Gauge
	goroutines, gcCycles, gcCPU               *Gauge
	pauseHist, schedHist                      *Histogram

	mu         sync.Mutex
	samples    []metrics.Sample
	prevPause  []uint64
	prevSched  []uint64
	prevCycles uint64
	ticks      int64
	status     RuntimeStatus
}

// sampleNames is the fixed read order; indexes below must match.
var sampleNames = []string{
	sampleHeapLive, sampleHeapGoal, sampleAllocBytes, sampleAllocObjs,
	sampleGoroutines, sampleGCCycles, sampleGCPauses, sampleSchedLat,
	sampleGCCPU, sampleTotalCPU,
}

const (
	idxHeapLive = iota
	idxHeapGoal
	idxAllocBytes
	idxAllocObjs
	idxGoroutines
	idxGCCycles
	idxGCPauses
	idxSchedLat
	idxGCCPU
	idxTotalCPU
)

// StartRuntimeSampling attaches a runtime telemetry sampler to the
// recorder and starts its tick loop (interval <= 0 selects
// DefaultRuntimeSampleInterval). Idempotent: if a sampler is already
// running it is returned unchanged. Returns nil on a nil receiver.
func (r *Recorder) StartRuntimeSampling(interval time.Duration) *RuntimeSampler {
	if r == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultRuntimeSampleInterval
	}
	r.mu.Lock()
	if r.runtime != nil {
		s := r.runtime
		r.mu.Unlock()
		return s
	}
	s := &RuntimeSampler{
		rec:        r,
		interval:   interval,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		heapLive:   r.gaugeLocked(GaugeRuntimeHeapLive),
		heapGoal:   r.gaugeLocked(GaugeRuntimeHeapGoal),
		allocBytes: r.gaugeLocked(GaugeRuntimeAllocBytes),
		allocObjs:  r.gaugeLocked(GaugeRuntimeAllocObjects),
		goroutines: r.gaugeLocked(GaugeRuntimeGoroutines),
		gcCycles:   r.gaugeLocked(GaugeRuntimeGCCycles),
		gcCPU:      r.gaugeLocked(GaugeRuntimeGCCPUPPM),
		pauseHist:  r.histogramLocked(HistRuntimeGCPause),
		schedHist:  r.histogramLocked(HistRuntimeSchedLatency),
		samples:    make([]metrics.Sample, len(sampleNames)),
	}
	for i, name := range sampleNames {
		s.samples[i].Name = name
	}
	r.runtime = s
	r.mu.Unlock()
	s.sampleOnce(false)
	go s.loop()
	return s
}

// StopRuntimeSampling stops the attached sampler after one final
// sample, blocking until its goroutine exits. Idempotent and nil-safe;
// the final RuntimeStatus stays readable after stopping.
func (r *Recorder) StopRuntimeSampling() {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := r.runtime
	r.runtime = nil
	r.mu.Unlock()
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}

// RuntimeStatus returns the latest runtime telemetry summary and
// whether a sampler has ever contributed one. It keeps answering after
// StopRuntimeSampling (the final sample is retained), so ledgers built
// post-run still carry the runtime section. Nil-safe.
func (r *Recorder) RuntimeStatus() (RuntimeStatus, bool) {
	if r == nil {
		return RuntimeStatus{}, false
	}
	r.mu.RLock()
	st, ok := r.runtimeStatus, r.runtimeSeen
	r.mu.RUnlock()
	return st, ok
}

// gaugeLocked and histogramLocked are Gauge/Histogram with the
// recorder's registry lock already held by the caller.
func (r *Recorder) gaugeLocked(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

func (r *Recorder) histogramLocked(name string) *Histogram {
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// loop is the sampler goroutine: one sample per tick until stopped,
// then a final sample so short runs still capture their endgame.
func (s *RuntimeSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sampleOnce(false)
		case <-s.stop:
			s.sampleOnce(true)
			return
		}
	}
}

// sampleOnce reads every runtime metric, updates the gauges, folds the
// histogram deltas, emits bounded events, and refreshes the status the
// ledger reads. final marks the closing sample taken by Stop.
func (s *RuntimeSampler) sampleOnce(final bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)

	heapLive := sampleUint64(s.samples[idxHeapLive])
	heapGoal := sampleUint64(s.samples[idxHeapGoal])
	allocB := sampleUint64(s.samples[idxAllocBytes])
	allocO := sampleUint64(s.samples[idxAllocObjs])
	goroutines := int64(sampleUint64(s.samples[idxGoroutines]))
	cycles := sampleUint64(s.samples[idxGCCycles])

	s.heapLive.Set(int64(heapLive))
	s.heapGoal.Set(int64(heapGoal))
	s.allocBytes.Set(int64(allocB))
	s.allocObjs.Set(int64(allocO))
	s.goroutines.Set(goroutines)
	s.gcCycles.Set(int64(cycles))

	gcFrac := cpuFraction(s.samples[idxGCCPU], s.samples[idxTotalCPU])
	s.gcCPU.Set(int64(gcFrac * 1e6))

	var maxPause int64
	s.prevPause, maxPause = foldFloat64Histogram(s.samples[idxGCPauses], s.prevPause, s.pauseHist)
	s.prevSched, _ = foldFloat64Histogram(s.samples[idxSchedLat], s.prevSched, s.schedHist)

	// gc_cycle fires whenever cycles completed since the last tick;
	// heap_sample is decimated after the dense prefix (see the stride
	// constants) so the bounded event ring keeps its provenance tail.
	if cycles > s.prevCycles && s.ticks > 0 {
		s.rec.Emit(Event{
			Type: EventGCCycle, Tuple: -1,
			Itemsets: int(cycles - s.prevCycles),
			Bytes:    int64(heapLive),
			DurMS:    float64(maxPause) / float64(time.Millisecond),
		})
	}
	s.prevCycles = cycles
	if s.ticks < runtimeEventDense || s.ticks%runtimeEventStride == 0 || final {
		s.rec.Emit(Event{
			Type: EventHeapSample, Tuple: -1,
			Bytes:      int64(heapLive),
			Goroutines: goroutines,
		})
	}
	s.ticks++

	st := RuntimeStatus{
		Samples:           s.ticks,
		IntervalMS:        float64(s.interval) / float64(time.Millisecond),
		HeapLiveBytes:     heapLive,
		HeapGoalBytes:     heapGoal,
		TotalAllocBytes:   allocB,
		TotalAllocObjects: allocO,
		Goroutines:        goroutines,
		GCCycles:          cycles,
		GCCPUFraction:     gcFrac,
		GCPauseP50NS:      s.pauseHist.Quantile(0.50).Nanoseconds(),
		GCPauseP95NS:      s.pauseHist.Quantile(0.95).Nanoseconds(),
		GCPauseMaxNS:      s.pauseHist.Quantile(1).Nanoseconds(),
		SchedLatencyP50NS: s.schedHist.Quantile(0.50).Nanoseconds(),
		SchedLatencyP99NS: s.schedHist.Quantile(0.99).Nanoseconds(),
	}
	s.status = st
	rec := s.rec
	rec.mu.Lock()
	rec.runtimeStatus = st
	rec.runtimeSeen = true
	rec.mu.Unlock()
}

// sampleUint64 reads a numeric sample defensively: the kinds here are
// all KindUint64 today, but a kind change in a future runtime must not
// panic the sampler.
func sampleUint64(s metrics.Sample) uint64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return s.Value.Uint64()
	case metrics.KindFloat64:
		if v := s.Value.Float64(); v > 0 {
			return uint64(v)
		}
	}
	return 0
}

// cpuFraction derives gc/total CPU time, clamped to [0, 1]; 0 when the
// runtime does not expose the CPU classes.
func cpuFraction(gc, total metrics.Sample) float64 {
	if gc.Value.Kind() != metrics.KindFloat64 || total.Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	t := total.Value.Float64()
	if t <= 0 {
		return 0
	}
	f := gc.Value.Float64() / t
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// foldFloat64Histogram folds the delta between a runtime histogram and
// its previous snapshot into a recorder histogram (each runtime bucket
// lands at its upper bound, converted seconds → ns) and returns the new
// snapshot plus the largest bucket bound that gained counts. The first
// fold takes the whole process history — deliberate, so a sampler
// started at run begin captures every pause.
func foldFloat64Histogram(s metrics.Sample, prev []uint64, dst *Histogram) ([]uint64, int64) {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return prev, 0
	}
	h := s.Value.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return prev, 0
	}
	if len(prev) != len(h.Counts) {
		prev = make([]uint64, len(h.Counts))
	}
	var maxNS int64
	for i, c := range h.Counts {
		d := c - prev[i]
		prev[i] = c
		if d == 0 {
			continue
		}
		ns := runtimeBucketNS(h.Buckets, i)
		dst.observeBucketed(ns, int64(d))
		if ns > maxNS {
			maxNS = ns
		}
	}
	return prev, maxNS
}

// runtimeBucketNS converts runtime histogram bucket i (bracketed by
// Buckets[i] and Buckets[i+1], in seconds) to a representative
// nanosecond value: the upper bound, falling back to the lower bound
// for the +Inf tail bucket.
func runtimeBucketNS(bounds []float64, i int) int64 {
	if i+1 >= len(bounds) {
		return 0
	}
	v := bounds[i+1]
	if math.IsInf(v, 1) {
		v = bounds[i]
	}
	if math.IsInf(v, -1) || math.IsNaN(v) || v < 0 {
		return 0
	}
	return int64(v * 1e9)
}
